#!/bin/sh
# Regenerate the full reproduction record: build, run every test suite,
# and regenerate every experiment table (EXPERIMENTS.md's source data).
set -e
dune build @all
dune runtest --force --no-buffer 2>&1 | tee test_output.txt
dune exec bench/main.exe 2>&1 | tee bench_output.txt
echo "done: see test_output.txt and bench_output.txt"
