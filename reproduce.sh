#!/usr/bin/env bash
# Regenerate the full reproduction record: build, run every test suite,
# regenerate every experiment table (EXPERIMENTS.md's source data), run
# a multicore sweep over the flat-array runtime (static, dynamic
# scenario, and multi-rumor legs), and smoke the gossipd daemon.
#
# The heavyweight experiments read their scale from the environment so
# a laptop reproduction finishes in minutes; unset them (or raise them)
# to reproduce the paper-scale numbers:
#
#   E17_N   unknown-latency unified run size   (default here 4000;  full 200000)
#   E18_N   int32/SoA scale-ceiling run size   (default here 50000; full 10^7)
#   E19_N   k-rumor / all-to-all run size      (default here 600;   full 1504)
#   E19_K   rumors in the k-rumor sweeps       (default here 8;     full 16)
#
# bash, not sh: the test and bench stages pipe through tee, and without
# pipefail a failing left-hand command would be masked by tee's exit 0.
set -euo pipefail

: "${E17_N:=4000}"
: "${E18_N:=50000}"
: "${E19_N:=600}"
: "${E19_K:=8}"
export E17_N E18_N E19_N E19_K

dune build @all
dune runtest --force --no-buffer 2>&1 | tee test_output.txt
dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Static sweep: the flat-array runtime over seeded trials, multicore.
dune exec bin/gossip_cli.exe -- sweep --family barabasi-albert -n 100000 \
  --attach 3 --latency uniform:1-8 --trials 8 --seed 1 --out sweep.json

# Dynamic-network leg: the same sweep under a latency-drift + random
# churn scenario (lib/dyn), exercising the scenario compiler end to end.
cat > scenario_drift.json <<'EOF'
{ "name": "drift-churn",
  "schedules": [
    { "kind": "linear", "rate": 0.02, "cap": 3.0,
      "filter": { "kind": "lat-ge", "latency": 4 } } ],
  "churn": [
    { "kind": "random", "fraction": 0.01, "leave": 30, "down": 15, "period": 8 } ] }
EOF
dune exec bin/gossip_cli.exe -- sweep --family ring-of-cliques -n 4096 \
  --size 8 --bridge 8 --trials 4 --seed 1 --scenario scenario_drift.json \
  --out sweep_scenario.json

# Multi-rumor leg: all-to-all dissemination with a bounded message
# budget through the same sweep machinery (rumor-state kernels).
dune exec bin/gossip_cli.exe -- sweep --family ring-of-cliques -n 4096 \
  --size 8 --bridge 8 --trials 4 --seed 1 \
  --protocol k-rumor --rumors "$E19_K" --budget 2 --out sweep_rumor.json

# Daemon smoke: serve a job over the JSONL socket protocol and read the
# results back, then shut the daemon down cleanly.
SOCK="$(mktemp -u /tmp/gossipd.XXXXXX.sock)"
dune exec bin/gossip_cli.exe -- serve --socket "$SOCK" \
  --journal gossipd_journal.jsonl &
SRV=$!
for _ in $(seq 1 150); do [ -S "$SOCK" ] && break; sleep 0.1; done
dune exec bin/gossip_cli.exe -- client --socket "$SOCK" ping
dune exec bin/gossip_cli.exe -- client --socket "$SOCK" submit \
  --family ring-of-cliques --n 128 --size 8 --trials 3 --seed 11
dune exec bin/gossip_cli.exe -- client --socket "$SOCK" wait job-1
dune exec bin/gossip_cli.exe -- client --socket "$SOCK" results job-1 \
  > daemon_results.jsonl
dune exec bin/gossip_cli.exe -- client --socket "$SOCK" shutdown
wait "$SRV"
test "$(grep -c '"resp":"result"' daemon_results.jsonl)" = 3

echo "done: see test_output.txt, bench_output.txt, sweep.json," \
  "sweep_scenario.json, sweep_rumor.json, and daemon_results.jsonl"
