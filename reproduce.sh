#!/usr/bin/env bash
# Regenerate the full reproduction record: build, run every test suite,
# regenerate every experiment table (EXPERIMENTS.md's source data), and
# run a multicore sweep over the flat-array runtime.
#
# bash, not sh: the test and bench stages pipe through tee, and without
# pipefail a failing left-hand command would be masked by tee's exit 0.
set -euo pipefail
dune build @all
dune runtest --force --no-buffer 2>&1 | tee test_output.txt
dune exec bench/main.exe 2>&1 | tee bench_output.txt
dune exec bin/gossip_cli.exe -- sweep --family barabasi-albert -n 100000 \
  --attach 3 --latency uniform:1-8 --trials 8 --seed 1 --out sweep.json
echo "done: see test_output.txt, bench_output.txt, and sweep.json"
