(* gossip-cli: run the paper's algorithms and analyses from the shell.

   Subcommands:
     analyze  - graph statistics and weighted conductance (Definition 2)
     run      - execute a dissemination algorithm and report rounds
     game     - play the guessing game with an Alice strategy (Lemmas 4-5)
     gadget   - build and describe a lower-bound gadget (Section 3.2)

   Examples:
     gossip-cli analyze --family ring-of-cliques --cliques 4 --size 8 --bridge 12
     gossip-cli run --algorithm push-pull --family er --nodes 64 --prob 0.1 --latency uniform:1-8
     gossip-cli game --side 64 --prob 0.1 --strategy random-guessing
     gossip-cli gadget --which theorem8 --layers 6 --size 8 --ell 16 *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Gadgets = Gossip_graph.Gadgets
module Paths = Gossip_graph.Paths
module Weighted = Gossip_conductance.Weighted
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsing *)

let seed_arg =
  let doc = "Seed for all randomness (runs are reproducible)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Values that must be strictly positive are rejected at parse time —
   a clear usage error beats a deep engine failure minutes into a
   sweep. *)
let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    | Some v when v < 1 -> Error (`Msg (Printf.sprintf "must be >= 1 (got %d)" v))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "expected a number, got %S" s))
    | Some v when not (Float.is_finite v) ->
        Error (`Msg (Printf.sprintf "must be finite (got %s)" s))
    | Some v when v <= 0.0 -> Error (`Msg (Printf.sprintf "must be > 0 (got %g)" v))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_float)

let latency_spec_conv =
  let parse s =
    let fail () = Error (`Msg (Printf.sprintf "bad latency spec %S" s)) in
    match String.split_on_char ':' s with
    | [ "unit" ] -> Ok Gen.Unit
    | [ "fixed"; k ] -> (
        match int_of_string_opt k with Some k -> Ok (Gen.Fixed k) | None -> fail ())
    | [ "uniform"; range ] -> (
        match String.split_on_char '-' range with
        | [ lo; hi ] -> (
            match (int_of_string_opt lo, int_of_string_opt hi) with
            | Some lo, Some hi -> Ok (Gen.Uniform (lo, hi))
            | _ -> fail ())
        | _ -> fail ())
    | [ "bimodal"; args ] -> (
        match String.split_on_char ',' args with
        | [ f; s'; p ] -> (
            match (int_of_string_opt f, int_of_string_opt s', float_of_string_opt p) with
            | Some fast, Some slow, Some p_fast -> Ok (Gen.Bimodal { fast; slow; p_fast })
            | _ -> fail ())
        | _ -> fail ())
    | [ "powerlaw"; args ] -> (
        match String.split_on_char ',' args with
        | [ a; b; e ] -> (
            match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt e) with
            | Some min_latency, Some max_latency, Some exponent ->
                Ok (Gen.Power_law { min_latency; max_latency; exponent })
            | _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let print ppf = function
    | Gen.Unit -> Format.fprintf ppf "unit"
    | Gen.Fixed k -> Format.fprintf ppf "fixed:%d" k
    | Gen.Uniform (lo, hi) -> Format.fprintf ppf "uniform:%d-%d" lo hi
    | Gen.Bimodal { fast; slow; p_fast } ->
        Format.fprintf ppf "bimodal:%d,%d,%g" fast slow p_fast
    | Gen.Power_law { min_latency; max_latency; exponent } ->
        Format.fprintf ppf "powerlaw:%d,%d,%g" min_latency max_latency exponent
  in
  Arg.conv (parse, print)

let latency_arg =
  let doc =
    "Latency distribution: unit, fixed:K, uniform:LO-HI, bimodal:FAST,SLOW,P, \
     powerlaw:MIN,MAX,EXP."
  in
  Arg.(value & opt latency_spec_conv Gen.Unit & info [ "latency" ] ~docv:"SPEC" ~doc)

let scenario_arg =
  let doc =
    "Load a dynamic-network scenario (JSON) and run under it: time-varying latency \
     schedules, churn, and adversarial jitter, with live conductance tracking when the \
     scenario asks for it.  Wheel-engine runs only; see DESIGN.md for the schema."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"FILE" ~doc)

(* Scenario files are user input: a parse or validation failure exits
   with the offending path and the validator's message, not an
   uncaught-exception backtrace. *)
let load_scenario path =
  match Gossip_dyn.Scenario.load path with
  | s -> s
  | exception Gossip_dyn.Scenario.Invalid_scenario msg ->
      Printf.eprintf "gossip-cli: --scenario %s: %s\n" path msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "gossip-cli: --scenario: %s\n" msg;
      exit 2

(* --rumors / --budget override the rumor count k and the per-message
   word budget of a rumor-state descriptor (k-rumor, rotation,
   algebraic).  They are meaningless on the single-rumor protocols, so
   using them there is a loud usage error, not a silent no-op. *)
let apply_rumor_overrides ~rumors ~budget protocol =
  let module Wheel = Gossip_scale.Wheel_engine in
  let k0 k = Option.value rumors ~default:k in
  let b0 b = Option.value budget ~default:b in
  match protocol with
  | _ when rumors = None && budget = None -> protocol
  | Wheel.K_rumor { k; budget = b } -> Wheel.K_rumor { k = k0 k; budget = b0 b }
  | Wheel.Rumor_rotation { k; budget = b } ->
      Wheel.Rumor_rotation { k = k0 k; budget = b0 b }
  | Wheel.Algebraic { k; budget = b } -> Wheel.Algebraic { k = k0 k; budget = b0 b }
  | p ->
      failwith
        (Printf.sprintf
           "--rumors/--budget apply to the rumor-state protocols (k-rumor, rotation, \
            algebraic), not %S"
           (Wheel.protocol_name p))

let rumors_arg =
  let doc =
    "Number of rumors K for the rumor-state protocols (k-rumor, rotation, algebraic): \
     rumor $(i,j) starts at node $(i,j), completion is holding all K.  Overrides the K \
     in the $(b,--protocol) descriptor; defaults to min(n, 16)."
  in
  Arg.(value & opt (some pos_int_conv) None & info [ "rumors" ] ~docv:"K" ~doc)

let budget_arg =
  let doc =
    "Per-message payload budget in 32-bit words for the rumor-state protocols (each \
     message carries at most B rumor ids, or B coefficient words for algebraic).  \
     Overrides the B in the $(b,--protocol) descriptor."
  in
  Arg.(value & opt (some pos_int_conv) None & info [ "budget" ] ~docv:"B" ~doc)

type family_args = {
  family : string;
  n : int;
  p : float;
  d : int;
  cliques : int;
  size : int;
  bridge : int;
  bridges : int;
  rows : int;
  cols : int;
  latency : Gen.latency_spec;
  seed : int;
}

let family_term =
  let family =
    let doc =
      "Graph family: clique, star, path, cycle, grid, torus, hypercube, tree, er, \
       regular, ring-of-cliques, dumbbell; wheel runs ($(b,--protocol)) additionally \
       accept barabasi-albert, watts-strogatz, and braided-ring, built directly in CSR \
       form."
    in
    Arg.(value & opt string "clique" & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let n = Arg.(value & opt int 32 & info [ "nodes" ] ~docv:"N" ~doc:"Node count.") in
  let p =
    Arg.(value & opt float 0.2 & info [ "prob" ] ~docv:"P" ~doc:"Edge probability for er.")
  in
  let d = Arg.(value & opt int 4 & info [ "deg" ] ~docv:"D" ~doc:"Degree for regular.") in
  let cliques =
    Arg.(value & opt int 4 & info [ "cliques" ] ~docv:"K" ~doc:"Cliques in the ring.")
  in
  let size =
    Arg.(value & opt int 8 & info [ "size" ] ~docv:"S" ~doc:"Clique / side size.")
  in
  let bridge =
    Arg.(value & opt int 8 & info [ "bridge" ] ~docv:"L" ~doc:"Bridge latency.")
  in
  let bridges =
    Arg.(
      value & opt int 2
      & info [ "bridges" ] ~docv:"B"
          ~doc:"Parallel bridges between adjacent cliques (braided-ring).")
  in
  let rows = Arg.(value & opt int 6 & info [ "rows" ] ~docv:"R" ~doc:"Grid rows.") in
  let cols = Arg.(value & opt int 6 & info [ "cols" ] ~docv:"C" ~doc:"Grid columns.") in
  let make family n p d cliques size bridge bridges rows cols latency seed =
    { family; n; p; d; cliques; size; bridge; bridges; rows; cols; latency; seed }
  in
  Term.(
    const make $ family $ n $ p $ d $ cliques $ size $ bridge $ bridges $ rows $ cols
    $ latency_arg $ seed_arg)

let build_graph a =
  let rng = Rng.of_int a.seed in
  let base =
    match a.family with
    | "clique" -> Gen.clique a.n
    | "star" -> Gen.star a.n
    | "path" -> Gen.path a.n
    | "cycle" -> Gen.cycle a.n
    | "grid" -> Gen.grid a.rows a.cols
    | "torus" -> Gen.torus a.rows a.cols
    | "hypercube" ->
        let rec log2 acc v = if v >= a.n then acc else log2 (acc + 1) (2 * v) in
        Gen.hypercube (max 1 (log2 0 1))
    | "tree" -> Gen.binary_tree a.n
    | "er" -> Gen.erdos_renyi_connected rng ~n:a.n ~p:a.p
    | "regular" -> Gen.random_regular rng ~n:a.n ~d:a.d
    | "ring-of-cliques" ->
        Gen.ring_of_cliques ~cliques:a.cliques ~size:a.size ~bridge_latency:a.bridge
    | "dumbbell" -> Gen.dumbbell ~size:a.size ~bridge_latency:a.bridge
    | other -> failwith (Printf.sprintf "unknown family %S" other)
  in
  match a.latency with
  | Gen.Unit -> base
  | spec -> Gen.with_latencies rng spec base

(* Direct CSR construction for wheel-engine runs: the three scale
   families never pass through the boxed graph, so a 10^6-node run
   builds only flat arrays.  ($(b,--deg) doubles as the attach count
   for barabasi-albert and the base degree for watts-strogatz, as in
   the sweep subcommand.) *)
let build_csr a =
  let module Scsr = Gossip_scale.Csr in
  let direct =
    match a.family with
    | "ring-of-cliques" ->
        Some (Scsr.ring_of_cliques ~cliques:a.cliques ~size:a.size ~bridge_latency:a.bridge)
    | "braided-ring" ->
        Some
          (Scsr.braided_ring ~cliques:a.cliques ~size:a.size ~bridges:a.bridges
             ~bridge_latency:a.bridge)
    | "barabasi-albert" ->
        Some (Scsr.barabasi_albert (Rng.of_int a.seed) ~n:a.n ~attach:a.d)
    | "watts-strogatz" ->
        Some (Scsr.watts_strogatz (Rng.of_int a.seed) ~n:a.n ~k:a.d ~beta:a.p)
    | _ -> None
  in
  match direct with
  | Some csr -> (
      match a.latency with
      | Gen.Unit -> csr
      | spec -> Scsr.with_latencies (Rng.of_int a.seed) spec csr)
  | None -> Scsr.of_graph (build_graph a)

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  max 1 (go 0 1)

(* One wheel-engine run through a protocol kernel: parses the protocol
   name, builds the contact structure (including the Baswana-Sen
   spanner an rr-spanner kernel needs), runs, and optionally dumps the
   telemetry registry -- kernel-tagged counters included -- as JSONL. *)
let run_wheel_protocol args ~pname ~rumors ~budget ~domains ~source ~max_rounds ~telemetry
    ~scenario =
  let module Wheel = Gossip_scale.Wheel_engine in
  let module Scsr = Gossip_scale.Csr in
  let module Kernel = Gossip_scale.Kernel in
  let module Scenario = Gossip_dyn.Scenario in
  let module Obs = Gossip_obs in
  let module Json = Gossip_util.Json in
  let protocol =
    match Wheel.protocol_of_string pname with
    | Some p -> apply_rumor_overrides ~rumors ~budget p
    | None ->
        failwith
          (Printf.sprintf "unknown protocol %S (known: %s)" pname
             (String.concat ", " Wheel.known_protocols))
  in
  (* Validate the scenario file before any graph is built — a typo in
     the JSON should fail in milliseconds, not after a 10^6-node
     construction. *)
  let scenario = Option.map load_scenario scenario in
  let csr = build_csr args in
  let n = Scsr.n csr in
  let rng = Rng.of_int (args.seed + 17) in
  let reg =
    match telemetry with
    | None -> None
    | Some _ ->
        let ring = Obs.Ring.create ~capacity:65536 () in
        Some (Obs.Registry.create ~ring ())
  in
  let dump_telemetry label =
    match (telemetry, reg) with
    | Some path, Some reg ->
        Obs.Sink.with_jsonl path (fun sink ->
            Obs.Sink.event sink
              ([
                 ("ev", Json.String "meta");
                 ("tool", Json.String "gossip-cli run");
                 ("protocol", Json.String label);
                 ("family", Json.String args.family);
                 ("n", Json.Int n);
                 ("domains", Json.Int domains);
                 ("seed", Json.Int args.seed);
               ]
              @ (match scenario with
                | None -> []
                | Some s -> [ ("scenario", Json.String s.Scenario.name) ]));
            Obs.Sink.registry sink reg;
            match Obs.Registry.ring reg with
            | None -> ()
            | Some ring -> Obs.Sink.ring sink ring);
        Printf.printf "telemetry written to %s\n" path
    | _ -> ()
  in
  (* The two Theorem 20 chains are kernel-chain drivers, not single
     kernels: they compile the scenario without a spanner orientation
     (each attempt builds its own, from discovered latencies) and
     budget their own phases. *)
  let run_chain () =
    let compiled =
      match scenario with
      | None -> None
      | Some s -> (
          match Scenario.compile s ~csr ~source with
          | c -> Some c
          | exception Scenario.Invalid_scenario msg ->
              Printf.eprintf "gossip-cli: --scenario: %s\n" msg;
              exit 2)
    in
    let env = Option.map (fun c -> c.Scenario.env) compiled in
    let wheel_latency = Option.map (fun c -> c.Scenario.wheel_latency) compiled in
    let t0 = Unix.gettimeofday () in
    let metrics, label =
      match protocol with
      | Wheel.Unknown_eid ->
          let r =
            Gossip_core.Eid.run_unknown_scale ?telemetry:reg ~domains ?env ?wheel_latency
              rng csr ~source ()
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          Printf.printf
            "wheel unknown-eid (domains=%d): %d rounds in %.2fs on %d nodes (%s, k_final=%d, \
             %d attempt%s, unanimous=%b)\n"
            domains r.Gossip_core.Eid.u_rounds elapsed n
            (if r.Gossip_core.Eid.u_success then "success" else "FAILED")
            r.Gossip_core.Eid.u_k_final
            (List.length r.Gossip_core.Eid.u_attempts)
            (if List.length r.Gossip_core.Eid.u_attempts = 1 then "" else "s")
            r.Gossip_core.Eid.u_unanimous;
          List.iter
            (fun a ->
              Printf.printf
                "  k=%d: discovery %d + schedule %d + rr %d + check %d rounds, %d edges known\n"
                a.Gossip_core.Eid.ua_k a.Gossip_core.Eid.ua_discovery_rounds
                a.Gossip_core.Eid.ua_schedule_rounds a.Gossip_core.Eid.ua_rr_rounds
                a.Gossip_core.Eid.ua_check_rounds a.Gossip_core.Eid.ua_edges_known)
            r.Gossip_core.Eid.u_attempts;
          (r.Gossip_core.Eid.u_metrics, "unknown-eid")
      | Wheel.Unified ->
          let r =
            Gossip_core.Dissemination.broadcast_scale ?telemetry:reg ~domains ?env
              ?wheel_latency rng csr ~source ~max_rounds ()
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          Printf.printf
            "wheel unified (domains=%d): %d rounds in %.2fs on %d nodes (winner: %s, \
             push-pull %s, spanner route %d)\n"
            domains r.Gossip_core.Dissemination.b_rounds elapsed n
            (match r.Gossip_core.Dissemination.b_winner with
            | Gossip_core.Dissemination.Scale_push_pull_won -> "push-pull"
            | Gossip_core.Dissemination.Scale_spanner_route_won -> "spanner route")
            (match r.Gossip_core.Dissemination.b_pushpull_rounds with
            | Some rr -> string_of_int rr
            | None -> "capped")
            r.Gossip_core.Dissemination.b_spanner_rounds;
          (r.Gossip_core.Dissemination.b_metrics, "unified")
      | _ -> assert false
    in
    Printf.printf "initiations: %d, deliveries: %d\n" metrics.Gossip_sim.Engine.initiations
      metrics.Gossip_sim.Engine.deliveries;
    dump_telemetry label
  in
  match protocol with
  | Wheel.Unknown_eid | Wheel.Unified -> run_chain ()
  | _ ->
  let kernel, oriented =
    match protocol with
    | Wheel.Rr_spanner { stretch_k } ->
        let k_sp = if stretch_k > 0 then stretch_k else ceil_log2 n in
        let t0 = Unix.gettimeofday () in
        let spanner =
          Gossip_core.Spanner.build
            (Rng.of_int (args.seed + 29))
            (Scsr.to_graph csr) ~k:k_sp ~n_hat:n ()
        in
        let oriented = Scsr.of_oriented_spanner spanner.Gossip_core.Spanner.out_edges in
        Printf.printf
          "spanner (k = %d): %d directed edges, max out-degree %d, built in %.1fs\n%!" k_sp
          (Scsr.oriented_edge_count oriented)
          (Scsr.oriented_max_out_degree oriented)
          (Unix.gettimeofday () -. t0);
        (Kernel.rr_broadcast ~k:(Scsr.oriented_max_latency oriented) oriented, Some oriented)
    | p -> (Kernel.of_protocol csr p, None)
  in
  let compiled =
    match scenario with
    | None -> None
    | Some s -> (
        match Scenario.compile ?oriented s ~csr ~source with
        | c -> Some c
        | exception Scenario.Invalid_scenario msg ->
            Printf.eprintf "gossip-cli: --scenario: %s\n" msg;
            exit 2)
  in
  let env = Option.map (fun c -> c.Scenario.env) compiled in
  let wheel_latency = Option.map (fun c -> c.Scenario.wheel_latency) compiled in
  let on_round =
    match (compiled, reg) with
    | Some c, Some reg -> Some (Scenario.observer c ~csr ~telemetry:reg)
    | _ -> None
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Wheel.broadcast_kernel ?telemetry:reg ~domains ?env ?wheel_latency ?on_round rng csr
      ~kernel ~source ~max_rounds
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r.Wheel.rounds with
  | Some rounds ->
      Printf.printf "wheel %s (domains=%d): %d rounds in %.2fs on %d nodes\n"
        (Kernel.name kernel) domains rounds elapsed n
  | None ->
      Printf.printf "wheel %s (domains=%d): hit the %d-round cap (%.2fs, %d nodes)\n"
        (Kernel.name kernel) domains max_rounds elapsed n);
  Printf.printf "initiations: %d, deliveries: %d\n"
    r.Wheel.metrics.Gossip_sim.Engine.initiations
    r.Wheel.metrics.Gossip_sim.Engine.deliveries;
  dump_telemetry (Kernel.name kernel)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let run args =
    let g = build_graph args in
    Format.printf "%a@." Graph.pp g;
    Printf.printf "connected: %b\n" (Graph.is_connected g);
    Printf.printf "weighted diameter D = %d, hop diameter = %d, radius = %d\n"
      (Paths.weighted_diameter g) (Paths.hop_diameter g) (Paths.weighted_radius g);
    if Graph.is_connected g && Graph.n g >= 2 then begin
      let wc = Weighted.weighted_conductance g in
      Printf.printf "weighted conductance phi* = %.5f at critical latency ell* = %d\n"
        wc.Weighted.phi_star wc.Weighted.ell_star;
      print_endline "latency profile (Definition 1):";
      List.iter
        (fun (ell, phi) -> Printf.printf "  phi_%-5d = %.5f   phi/ell = %.6f\n" ell phi (phi /. float_of_int ell))
        wc.Weighted.profile;
      Printf.printf "Theorem 12 push-pull bound: %.0f rounds\n"
        (Weighted.pushpull_round_bound g)
    end
  in
  let doc = "Graph statistics and weighted conductance (Definitions 1-2)." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ family_term)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let algorithm =
    let doc =
      "Algorithm: push-pull, push-pull-all, flood, push-only, dtg, eid, eid-known-d, \
       path-discovery, unified, or a flat-array wheel engine run: wheel-$(i,PROTO) for \
       any $(b,--protocol) name (these honor $(b,--domains))."
    in
    Arg.(value & opt string "push-pull" & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)
  in
  let protocol =
    let doc =
      Printf.sprintf
        "Run the wheel engine with this protocol kernel (%s); rr-spanner first builds a \
         Baswana-Sen spanner and runs RR Broadcast over its orientation.  Builds \
         ring-of-cliques, barabasi-albert, and watts-strogatz directly in CSR form (no \
         boxed graph), honors $(b,--domains) and $(b,--telemetry), and overrides \
         $(b,--algorithm)."
        (String.concat ", " Gossip_scale.Wheel_engine.known_protocols)
    in
    Arg.(value & opt (some string) None & info [ "protocol" ] ~docv:"PROTO" ~doc)
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Shard a wheel-* run across D OCaml domains; the trajectory is bit-identical \
             to --domains 1.")
  in
  let source =
    Arg.(value & opt int 0 & info [ "source" ] ~docv:"NODE" ~doc:"Broadcast source.")
  in
  let max_rounds =
    Arg.(value & opt int 1_000_000 & info [ "max-rounds" ] ~docv:"R" ~doc:"Round cap.")
  in
  let crash =
    Arg.(
      value & opt float 0.0
      & info [ "crash" ] ~docv:"FRAC"
          ~doc:"Crash-stop this fraction of nodes at round 3 (push-pull only).")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"RATE" ~doc:"Lose each exchange with this probability (push-pull only).")
  in
  let capacity =
    Arg.(
      value & opt (some int) None
      & info [ "capacity" ] ~docv:"C"
          ~doc:"Bounded in-degree: serve at most C requests per round (push-pull only).")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the informed-set trajectory as CSV (push-pull only).")
  in
  let telemetry =
    Arg.(
      value & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Write engine telemetry (per-round counters, histograms, trace ring) as \
             JSONL (plain push-pull and wheel protocol runs); inspect with \
             $(b,gossip-cli report).")
  in
  let run args algorithm protocol rumors budget domains source max_rounds crash drop
      capacity trace telemetry scenario =
    (* A wheel run never touches the boxed graph: dispatch before
       build_graph so --protocol works at 10^6 nodes. *)
    let wheel_protocol =
      match protocol with
      | Some p -> Some p
      | None ->
          let pfx = "wheel-" in
          let pl = String.length pfx in
          if String.length algorithm > pl && String.sub algorithm 0 pl = pfx then
            Some (String.sub algorithm pl (String.length algorithm - pl))
          else None
    in
    (match (scenario, wheel_protocol) with
    | Some _, None ->
        prerr_endline
          "gossip-cli: --scenario applies to wheel-engine runs only (use --protocol or \
           --algorithm wheel-PROTO)";
        exit 2
    | _ -> ());
    (match (rumors, budget, wheel_protocol) with
    | (Some _, _, None | _, Some _, None) ->
        prerr_endline
          "gossip-cli: --rumors/--budget apply to wheel-engine runs only (use --protocol \
           k-rumor, rotation, or algebraic)";
        exit 2
    | _ -> ());
    match wheel_protocol with
    | Some pname ->
        run_wheel_protocol args ~pname ~rumors ~budget ~domains ~source ~max_rounds
          ~telemetry ~scenario
    | None ->
    let g = build_graph args in
    let rng = Rng.of_int (args.seed + 17) in
    let show label = function
      | Some rounds -> Printf.printf "%s: %d rounds\n" label rounds
      | None -> Printf.printf "%s: hit the %d-round cap\n" label max_rounds
    in
    let plain_push_pull =
      algorithm = "push-pull" && crash = 0.0 && drop = 0.0 && capacity = None
    in
    (match telemetry with
    | Some _ when not plain_push_pull ->
        print_endline "note: --telemetry applies to plain push-pull only; ignored"
    | _ -> ());
    match algorithm with
    | "push-pull" when crash > 0.0 || drop > 0.0 ->
        let module R = Gossip_core.Robustness in
        let plan =
          R.combine
            [
              R.crash_fraction (Rng.of_int (args.seed + 1)) ~n:(Graph.n g) ~fraction:crash
                ~from_round:3 ~protect:[ source ];
              R.drop_rate (Rng.of_int (args.seed + 2)) ~rate:drop;
            ]
        in
        let r = R.pushpull_broadcast rng g ~source ~plan ~max_rounds in
        show "push-pull broadcast (faulty)" r.R.rounds;
        Printf.printf "live coverage: %d/%d, dropped messages: %d\n" r.R.informed_live
          r.R.live r.R.metrics.Gossip_sim.Engine.dropped
    | "push-pull" -> (
        match capacity with
        | Some c ->
            let module R = Gossip_core.Robustness in
            let r = R.pushpull_bounded_indegree rng g ~source ~capacity:c ~max_rounds in
            show "push-pull broadcast (bounded in-degree)" r.R.rounds;
            Printf.printf "rejected requests: %d\n" r.R.metrics.Gossip_sim.Engine.rejected
        | None ->
            let module Obs = Gossip_obs in
            let reg =
              match telemetry with
              | None -> None
              | Some _ ->
                  let ring = Obs.Ring.create ~capacity:65536 () in
                  Some (Obs.Registry.create ~ring ())
            in
            let r = Gossip_core.Push_pull.broadcast ?telemetry:reg rng g ~source ~max_rounds in
            show "push-pull broadcast" r.Gossip_core.Push_pull.rounds;
            (match trace with
            | None -> ()
            | Some path ->
                let t = Gossip_sim.Trace.create ~name:"informed" in
                List.iter
                  (fun (round, informed) ->
                    Gossip_sim.Trace.record t ~round (float_of_int informed))
                  r.Gossip_core.Push_pull.history;
                Gossip_sim.Trace.write_csv path [ t ];
                Printf.printf "trace written to %s\n" path);
            (match (telemetry, reg) with
            | Some path, Some reg ->
                let module Json = Gossip_util.Json in
                Obs.Sink.with_jsonl path (fun sink ->
                    Obs.Sink.event sink
                      [
                        ("ev", Json.String "meta");
                        ("tool", Json.String "gossip-cli run");
                        ("algorithm", Json.String "push-pull");
                        ("family", Json.String args.family);
                        ("n", Json.Int (Graph.n g));
                        ("seed", Json.Int args.seed);
                      ];
                    Obs.Sink.registry sink reg;
                    match Obs.Registry.ring reg with
                    | None -> ()
                    | Some ring -> Obs.Sink.ring sink ring);
                Printf.printf "telemetry written to %s\n" path
            | _ -> ()))
    | "push-pull-all" ->
        let r = Gossip_core.Push_pull.all_to_all rng g ~max_rounds in
        show "push-pull all-to-all" r.Gossip_core.Push_pull.rounds
    | "flood" ->
        let r = Gossip_core.Flooding.flood_all g ~max_rounds in
        show "round-robin flooding" r.Gossip_core.Flooding.rounds
    | "push-only" ->
        let r = Gossip_core.Flooding.push_round_robin g ~source ~blocking:true ~max_rounds in
        show "blocking push-only" r.Gossip_core.Flooding.rounds
    | "dtg" ->
        let r, ok = Gossip_core.Dtg.local_broadcast g ~max_rounds in
        show "DTG local broadcast" r.Gossip_core.Dtg.rounds;
        Printf.printf "local broadcast complete: %b\n" ok
    | "eid" ->
        let r = Gossip_core.Eid.run rng g () in
        Printf.printf "General EID: %d rounds, k_final = %d, attempts = %d, success = %b\n"
          r.Gossip_core.Eid.rounds r.Gossip_core.Eid.k_final
          (List.length r.Gossip_core.Eid.attempts)
          r.Gossip_core.Eid.success
    | "eid-known-d" ->
        let d = Paths.weighted_diameter g in
        let r = Gossip_core.Eid.run_known_diameter rng g ~d () in
        Printf.printf "EID(D = %d): %d rounds, success = %b\n" d r.Gossip_core.Eid.rounds
          r.Gossip_core.Eid.success
    | "path-discovery" ->
        let r = Gossip_core.Path_discovery.run g in
        Printf.printf "Path Discovery: %d rounds, k_final = %d, success = %b\n"
          r.Gossip_core.Path_discovery.rounds r.Gossip_core.Path_discovery.k_final
          r.Gossip_core.Path_discovery.success
    | "unified" ->
        let r =
          Gossip_core.Dissemination.all_to_all rng g
            ~knowledge:Gossip_core.Dissemination.Known_latencies ~max_rounds
        in
        Printf.printf "unified: %d rounds (winner: %s; push-pull %s, spanner %d)\n"
          r.Gossip_core.Dissemination.rounds
          (match r.Gossip_core.Dissemination.winner with
          | Gossip_core.Dissemination.Push_pull_won -> "push-pull"
          | Gossip_core.Dissemination.Spanner_route_won -> "spanner")
          (match r.Gossip_core.Dissemination.pushpull_rounds with
          | Some x -> string_of_int x
          | None -> "cap")
          r.Gossip_core.Dissemination.spanner_rounds
    | other -> failwith (Printf.sprintf "unknown algorithm %S" other)
  in
  let doc = "Run a dissemination algorithm and report round counts." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ family_term $ algorithm $ protocol $ rumors_arg $ budget_arg $ domains
      $ source $ max_rounds $ crash $ drop $ capacity $ trace $ telemetry $ scenario_arg)

(* ------------------------------------------------------------------ *)
(* game *)

let game_cmd =
  let m = Arg.(value & opt int 32 & info [ "side" ] ~docv:"M" ~doc:"Side size of A and B.") in
  let p =
    Arg.(
      value
      & opt (some float) None
      & info [ "prob" ] ~docv:"P" ~doc:"Random_p target density (omit for a singleton).")
  in
  let strategy =
    Arg.(
      value
      & opt string "fresh-pairs"
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Alice strategy: random-guessing, fresh-pairs, sequential-scan.")
  in
  let run m p strategy seed =
    let rng = Rng.of_int seed in
    let target =
      match p with
      | None -> Gadgets.singleton_target rng ~m
      | Some p -> Gadgets.random_p_target rng ~m ~p
    in
    let game = Gossip_game.Game.create ~m ~target in
    Printf.printf "Guessing(2m = %d, |T| = %d), strategy %s\n" (2 * m)
      (Gossip_game.Game.target_size game)
      strategy;
    match List.assoc_opt strategy Gossip_game.Strategies.all with
    | None -> failwith (Printf.sprintf "unknown strategy %S" strategy)
    | Some s -> (
        match s rng game ~max_rounds:10_000_000 with
        | Some o ->
            Printf.printf "solved in %d rounds with %d guesses\n" o.Gossip_game.Strategies.rounds
              o.Gossip_game.Strategies.guesses
        | None -> print_endline "not solved within the round cap")
  in
  let doc = "Play the guessing game of Section 3.1." in
  Cmd.v (Cmd.info "game" ~doc) Term.(const run $ m $ p $ strategy $ seed_arg)

(* ------------------------------------------------------------------ *)
(* reduce *)

let reduce_cmd =
  let m = Arg.(value & opt int 16 & info [ "side" ] ~docv:"M" ~doc:"Gadget side size.") in
  let p =
    Arg.(
      value & opt (some float) None
      & info [ "prob" ] ~docv:"P" ~doc:"Random_p target density (omit for a singleton).")
  in
  let symmetric =
    Arg.(value & flag & info [ "symmetric" ] ~doc:"Use the G_sym(P) gadget.")
  in
  let run m p symmetric seed =
    let rng = Rng.of_int seed in
    let target =
      match p with
      | None -> Gadgets.singleton_target rng ~m
      | Some p -> Gadgets.random_p_target rng ~m ~p
    in
    let o =
      Gossip_core.Reduction.simulate_push_pull rng ~m ~target ~fast_latency:1 ~symmetric
        ~max_rounds:1_000_000
    in
    let show = function Some r -> string_of_int r | None -> "never" in
    Printf.printf
      "Lemma 3 simulation on %s (m = %d, |T| = %d):\n\
      \  game solved at round %s, local broadcast at round %s\n\
      \  guesses submitted: %d; Lemma 3 holds: %b\n"
      (if symmetric then "G_sym(P)" else "G(P)")
      m (List.length target)
      (show o.Gossip_core.Reduction.game_rounds)
      (show o.Gossip_core.Reduction.broadcast_rounds)
      o.Gossip_core.Reduction.guesses_submitted o.Gossip_core.Reduction.lemma3_holds
  in
  let doc = "Simulate push-pull on a gadget as a guessing game (Lemma 3)." in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run $ m $ p $ symmetric $ seed_arg)

(* ------------------------------------------------------------------ *)
(* spanner *)

let spanner_cmd =
  let k =
    Arg.(value & opt int 3 & info [ "stretch-k" ] ~docv:"K" ~doc:"Spanner parameter (stretch 2k-1).")
  in
  let algorithm =
    Arg.(
      value & opt string "baswana-sen"
      & info [ "spanner-algorithm" ] ~docv:"A" ~doc:"baswana-sen or greedy.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the (oriented) spanner as Graphviz DOT.")
  in
  let run args k algorithm dot =
    let g = build_graph args in
    let rng = Rng.of_int (args.seed + 3) in
    match algorithm with
    | "baswana-sen" ->
        let s = Gossip_core.Spanner.build rng g ~k () in
        Printf.printf
          "Baswana-Sen spanner: %d/%d edges, max out-degree %d, stretch %.2f (bound %d)\n"
          (Gossip_core.Spanner.edge_count s) (Graph.m g)
          (Gossip_core.Spanner.max_out_degree s)
          (Gossip_core.Spanner.stretch s)
          ((2 * k) - 1);
        (match dot with
        | None -> ()
        | Some path ->
            Gossip_graph.Dot.write path
              (Gossip_graph.Dot.oriented_to_dot ~out_edges:s.Gossip_core.Spanner.out_edges g);
            Printf.printf "oriented spanner written to %s\n" path)
    | "greedy" ->
        let s = Gossip_core.Greedy_spanner.build g ~r:((2 * k) - 1) in
        Printf.printf "greedy spanner: %d/%d edges, stretch %.2f (bound %d)\n"
          (Gossip_core.Greedy_spanner.edge_count s)
          (Graph.m g)
          (Gossip_core.Greedy_spanner.stretch s)
          ((2 * k) - 1);
        (match dot with
        | None -> ()
        | Some path ->
            Gossip_graph.Dot.write path
              (Gossip_graph.Dot.to_dot s.Gossip_core.Greedy_spanner.spanner);
            Printf.printf "spanner written to %s\n" path)
    | other -> failwith (Printf.sprintf "unknown spanner algorithm %S" other)
  in
  let doc = "Build a spanner of the graph (Appendix D / greedy baseline)." in
  Cmd.v (Cmd.info "spanner" ~doc) Term.(const run $ family_term $ k $ algorithm $ dot)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_cmd =
  let module Sweep = Gossip_sweep.Sweep in
  let module Pool = Gossip_sweep.Pool in
  let module Wheel = Gossip_scale.Wheel_engine in
  let module Json = Gossip_util.Json in
  let family =
    let doc =
      "Scale family: ring-of-cliques, braided-ring, barabasi-albert, watts-strogatz."
    in
    Arg.(value & opt string "ring-of-cliques" & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let n =
    Arg.(value & opt int 10_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Node count.")
  in
  let protocol =
    let doc =
      Printf.sprintf "Protocol: %s." (String.concat ", " Wheel.known_protocols)
    in
    Arg.(value & opt string "push-pull" & info [ "protocol" ] ~docv:"PROTO" ~doc)
  in
  let trials =
    Arg.(value & opt int 8 & info [ "trials" ] ~docv:"T" ~doc:"Independent seeded trials.")
  in
  let jobs =
    Arg.(
      value & opt (some int) None
      & info [ "jobs" ] ~docv:"J" ~doc:"Worker domains (default: cores - 1).")
  in
  let domains =
    Arg.(
      value & opt pos_int_conv 1
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Engine domains per job (sharded wheel engine; trajectory-identical to 1). \
             Workers are budgeted so jobs × domains never oversubscribes the machine.")
  in
  let size =
    Arg.(value & opt int 8 & info [ "size" ] ~docv:"S" ~doc:"Clique size (ring-of-cliques).")
  in
  let bridge =
    Arg.(
      value & opt int 8
      & info [ "bridge" ] ~docv:"L" ~doc:"Bridge latency (ring-of-cliques, braided-ring).")
  in
  let bridges =
    Arg.(
      value & opt int 2
      & info [ "bridges" ] ~docv:"B"
          ~doc:"Parallel bridges between adjacent cliques (braided-ring).")
  in
  let attach =
    Arg.(
      value & opt int 3
      & info [ "attach" ] ~docv:"M" ~doc:"Edges per new node (barabasi-albert).")
  in
  let ws_k =
    Arg.(
      value & opt int 6
      & info [ "ws-k" ] ~docv:"K" ~doc:"Even base degree (watts-strogatz).")
  in
  let beta =
    Arg.(
      value & opt float 0.1
      & info [ "beta" ] ~docv:"B" ~doc:"Rewiring probability (watts-strogatz).")
  in
  let latency =
    Arg.(
      value & opt (some latency_spec_conv) None
      & info [ "latency" ] ~docv:"SPEC"
          ~doc:"Redraw edge latencies: unit, fixed:K, uniform:LO-HI, bimodal:F,S,P, \
                powerlaw:MIN,MAX,EXP.")
  in
  let max_rounds =
    Arg.(value & opt int 1_000_000 & info [ "max-rounds" ] ~docv:"R" ~doc:"Round cap.")
  in
  let retries =
    Arg.(
      value & opt pos_int_conv 0
      & info [ "retries" ] ~docv:"K"
          ~doc:"Re-run each failing job up to K extra times before recording a failure.")
  in
  let job_timeout =
    Arg.(
      value & opt (some pos_float_conv) None
      & info [ "job-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-job wall-clock budget, checked cooperatively between rounds; an \
             over-budget job is recorded as failed, not killed mid-round.")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Append each job's outcome to FILE (JSONL) as it finishes, so a killed \
             sweep can restart with $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Skip jobs already recorded in the $(b,--checkpoint) file and append new \
             outcomes to it instead of truncating.")
  in
  let inject_crash =
    Arg.(
      value & opt (some int) None
      & info [ "inject-crash" ] ~docv:"SEED"
          ~doc:"Testing hook: crash the job with this seed on every attempt.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write raw results and summaries as JSON.")
  in
  let telemetry =
    Arg.(
      value & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Write per-job outcomes and pool metrics (worker busy time, job-latency \
             histogram, queue depth) as JSONL; inspect with $(b,gossip-cli report).")
  in
  let run family n protocol rumors budget trials jobs domains size bridge bridges attach
      ws_k beta latency max_rounds retries job_timeout checkpoint resume inject_crash out
      telemetry scenario seed =
    let family =
      match family with
      | "ring-of-cliques" -> Sweep.Ring_of_cliques { size; bridge_latency = bridge }
      | "braided-ring" -> Sweep.Braided_ring { size; bridges; bridge_latency = bridge }
      | "barabasi-albert" -> Sweep.Barabasi_albert { attach }
      | "watts-strogatz" -> Sweep.Watts_strogatz { k = ws_k; beta }
      | other -> failwith (Printf.sprintf "unknown sweep family %S" other)
    in
    let protocol =
      match Wheel.protocol_of_string protocol with
      | Some p -> apply_rumor_overrides ~rumors ~budget p
      | None ->
          failwith
            (Printf.sprintf "unknown protocol %S (known: %s)" protocol
               (String.concat ", " Wheel.known_protocols))
    in
    let scenario = Option.map load_scenario scenario in
    let jobs_list =
      Sweep.make_jobs ~family ~n ~protocol ~trials ~base_seed:seed ~max_rounds ?latency
        ?scenario ()
    in
    let workers =
      let requested = match jobs with Some j -> max 1 j | None -> Pool.default_workers () in
      if domains > 1 then Pool.budget_workers ~workers:requested ~domains_per_job:domains ()
      else requested
    in
    if resume && checkpoint = None then
      failwith "--resume requires --checkpoint FILE";
    let registry =
      match telemetry with
      | None -> None
      | Some _ -> Some (Gossip_obs.Registry.create ())
    in
    let inject =
      Option.map
        (fun crash_seed (j : Sweep.job) ->
          if j.Sweep.seed = crash_seed then
            failwith (Printf.sprintf "injected crash (seed %d)" crash_seed))
        inject_crash
    in
    let report =
      Sweep.run_ft ~workers ~retries ?timeout_s:job_timeout ~domains ?checkpoint ~resume
        ?inject ?telemetry:registry jobs_list
    in
    let outcomes = report.Sweep.completed in
    let failures = report.Sweep.failed in
    if report.Sweep.skipped > 0 then
      Printf.printf "resume: %d/%d jobs already recorded in the checkpoint\n"
        report.Sweep.skipped (List.length jobs_list);
    List.iter
      (fun s ->
        Printf.printf "%s n=%d %s: %d/%d trials completed%s\n" s.Sweep.family s.Sweep.n
          s.Sweep.protocol s.Sweep.completed s.Sweep.trials
          (if s.Sweep.failed > 0 then Printf.sprintf ", %d failed" s.Sweep.failed else "");
        match s.Sweep.rounds with
        | None -> ()
        | Some st ->
            Printf.printf
              "  rounds: mean %.1f, median %.1f, min %.0f, max %.0f over %d runs\n"
              st.Gossip_util.Stats.mean st.Gossip_util.Stats.median
              st.Gossip_util.Stats.min st.Gossip_util.Stats.max st.Gossip_util.Stats.n)
      (Sweep.summarize ~failures outcomes);
    List.iter
      (fun (f : Sweep.failure) ->
        Printf.printf "FAILED %s n=%d seed=%d %s after %d attempt%s: %s\n"
          (Sweep.family_name f.Sweep.failed_job.Sweep.family)
          f.Sweep.failed_job.Sweep.n f.Sweep.failed_job.Sweep.seed
          (Gossip_scale.Wheel_engine.protocol_name f.Sweep.failed_job.Sweep.protocol)
          f.Sweep.attempts
          (if f.Sweep.attempts = 1 then "" else "s")
          f.Sweep.message)
      failures;
    let meta =
      [
        ("tool", Json.String "gossip-cli sweep");
        ("seed", Json.Int seed);
        ("workers", Json.Int workers);
        ("domains", Json.Int domains);
      ]
    in
    (match out with
    | None -> ()
    | Some path ->
        Sweep.write_json path ~meta ~failures outcomes;
        Printf.printf "results written to %s\n" path);
    (match (telemetry, registry) with
    | Some path, Some reg ->
        Sweep.write_telemetry path ~meta ~registry:reg ~failures
          ~retries:report.Sweep.retried outcomes;
        Printf.printf "telemetry written to %s\n" path
    | _ -> ());
    if failures <> [] then exit 1
  in
  let doc = "Sweep a protocol over seeded trials of a large graph family (multicore)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ family $ n $ protocol $ rumors_arg $ budget_arg $ trials $ jobs
      $ domains $ size $ bridge $ bridges $ attach $ ws_k $ beta $ latency $ max_rounds
      $ retries $ job_timeout $ checkpoint $ resume $ inject_crash $ out $ telemetry
      $ scenario_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the gossip daemon *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let module Server = Gossip_serve.Server in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Persist every accepted job and finished trial to FILE (JSONL, the PR-3 \
             checkpoint format); a restarted daemon replays it and resumes the queue.")
  in
  let telemetry =
    Arg.(
      value & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "On shutdown write the $(b,serve.*) counters and gauges to FILE (JSONL); \
             inspect with $(b,gossip-cli report).")
  in
  let capacity =
    Arg.(
      value & opt pos_int_conv 64
      & info [ "capacity" ] ~docv:"N"
          ~doc:
            "Bound on incomplete jobs (queued + running); a submit over the bound is \
             rejected with a typed $(b,queue_full) error, never a hang.")
  in
  let retries =
    Arg.(
      value & opt pos_int_conv 0
      & info [ "retries" ] ~docv:"K"
          ~doc:"Re-run each failing trial up to K extra times before recording a failure.")
  in
  let job_timeout =
    Arg.(
      value & opt (some pos_float_conv) None
      & info [ "job-timeout" ] ~docv:"SECS"
          ~doc:"Cooperative per-trial wall-clock budget, checked between rounds.")
  in
  let run socket journal telemetry capacity retries job_timeout =
    let cfg =
      {
        (Server.default ~socket_path:socket) with
        Server.journal;
        telemetry;
        capacity;
        retries;
        timeout_s = job_timeout;
      }
    in
    Printf.printf "gossipd listening on %s\n%!" socket;
    Server.run cfg;
    print_endline "gossipd: drained, exiting"
  in
  let doc = "Run the gossip daemon: queued sweeps over a Unix-socket JSONL protocol." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ journal $ telemetry $ capacity $ retries $ job_timeout)

let client_cmd =
  let module P = Gossip_serve.Protocol in
  let module C = Gossip_serve.Client in
  let module Sweep = Gossip_sweep.Sweep in
  let module Wheel = Gossip_scale.Wheel_engine in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:
            "One of: ping, submit, status, watch, results, cancel, wait, stats, \
             shutdown.")
  in
  let job =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"JOB" ~doc:"Job id (status, watch, results, cancel, wait).")
  in
  let family =
    let doc =
      "Sweep family: ring-of-cliques, braided-ring, barabasi-albert, watts-strogatz."
    in
    Arg.(value & opt string "ring-of-cliques" & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let n = Arg.(value & opt pos_int_conv 10_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Node count.") in
  let protocol =
    let doc = Printf.sprintf "Protocol: %s." (String.concat ", " Wheel.known_protocols) in
    Arg.(value & opt string "push-pull" & info [ "protocol" ] ~docv:"PROTO" ~doc)
  in
  let trials =
    Arg.(value & opt pos_int_conv 8 & info [ "trials" ] ~docv:"T" ~doc:"Independent seeded trials.")
  in
  let size =
    Arg.(value & opt int 8 & info [ "size" ] ~docv:"S" ~doc:"Clique size (ring-of-cliques).")
  in
  let bridge =
    Arg.(
      value & opt int 8
      & info [ "bridge" ] ~docv:"L" ~doc:"Bridge latency (ring-of-cliques, braided-ring).")
  in
  let bridges =
    Arg.(
      value & opt int 2
      & info [ "bridges" ] ~docv:"B"
          ~doc:"Parallel bridges between adjacent cliques (braided-ring).")
  in
  let attach =
    Arg.(value & opt int 3 & info [ "attach" ] ~docv:"M" ~doc:"Edges per new node (barabasi-albert).")
  in
  let ws_k =
    Arg.(value & opt int 6 & info [ "ws-k" ] ~docv:"K" ~doc:"Even base degree (watts-strogatz).")
  in
  let beta =
    Arg.(value & opt float 0.1 & info [ "beta" ] ~docv:"B" ~doc:"Rewiring probability (watts-strogatz).")
  in
  let latency =
    Arg.(
      value & opt (some latency_spec_conv) None
      & info [ "latency" ] ~docv:"SPEC"
          ~doc:"Redraw edge latencies: unit, fixed:K, uniform:LO-HI, bimodal:F,S,P, \
                powerlaw:MIN,MAX,EXP.")
  in
  let max_rounds =
    Arg.(value & opt pos_int_conv 1_000_000 & info [ "max-rounds" ] ~docv:"R" ~doc:"Round cap.")
  in
  let wait_timeout =
    Arg.(
      value & opt pos_float_conv 60.0
      & info [ "wait-timeout" ] ~docv:"SECS" ~doc:"Give up on $(b,wait) after this long.")
  in
  let run socket action job family n protocol rumors budget trials size bridge bridges
      attach ws_k beta latency max_rounds scenario wait_timeout seed =
    let print_resp r = print_string (Gossip_serve.Frame.frame (P.response_to_json r)) in
    let finish r =
      print_resp r;
      match r with P.Error _ -> exit 1 | _ -> ()
    in
    let need_job () =
      match job with
      | Some j -> j
      | None -> failwith (Printf.sprintf "client %s needs a JOB argument" action)
    in
    let with_connect f =
      match C.with_connect socket f with
      | v -> v
      | exception Unix.Unix_error (e, "connect", _) ->
          failwith
            (Printf.sprintf "cannot connect to %s: %s (is the daemon running?)" socket
               (Unix.error_message e))
      | exception C.Closed -> failwith "the daemon closed the connection mid-exchange"
    in
    with_connect (fun c ->
        match action with
        | "ping" -> finish (C.rpc c P.Ping)
        | "submit" ->
            let family =
              match family with
              | "ring-of-cliques" -> Sweep.Ring_of_cliques { size; bridge_latency = bridge }
              | "braided-ring" ->
                  Sweep.Braided_ring { size; bridges; bridge_latency = bridge }
              | "barabasi-albert" -> Sweep.Barabasi_albert { attach }
              | "watts-strogatz" -> Sweep.Watts_strogatz { k = ws_k; beta }
              | other -> failwith (Printf.sprintf "unknown sweep family %S" other)
            in
            let protocol =
              match Wheel.protocol_of_string protocol with
              | Some p -> apply_rumor_overrides ~rumors ~budget p
              | None ->
                  failwith
                    (Printf.sprintf "unknown protocol %S (known: %s)" protocol
                       (String.concat ", " Wheel.known_protocols))
            in
            let scenario = Option.map load_scenario scenario in
            finish
              (C.rpc c
                 (P.Submit
                    {
                      P.family;
                      n;
                      protocol;
                      trials;
                      base_seed = seed;
                      max_rounds;
                      latency;
                      scenario;
                    }))
        | "status" -> finish (C.rpc c (P.Status (need_job ())))
        | "cancel" -> finish (C.rpc c (P.Cancel (need_job ())))
        | "stats" -> finish (C.rpc c P.Stats)
        | "shutdown" -> finish (C.rpc c P.Shutdown)
        | "watch" ->
            C.stream c
              (P.Watch (need_job ()))
              (fun r ->
                print_resp r;
                match r with
                | P.Job_done _ -> `Stop
                | P.Error _ -> exit 1
                | _ -> `Continue)
        | "results" ->
            C.stream c
              (P.Results (need_job ()))
              (fun r ->
                print_resp r;
                match r with
                | P.Results_end _ -> `Stop
                | P.Error _ -> exit 1
                | _ -> `Continue)
        | "wait" ->
            let job = need_job () in
            let deadline = Unix.gettimeofday () +. wait_timeout in
            let rec poll () =
              match C.rpc c (P.Status job) with
              | P.Job_status s as r -> (
                  match s.P.s_state with
                  | P.Done | P.Failed | P.Cancelled -> print_resp r
                  | P.Queued | P.Running ->
                      if Unix.gettimeofday () > deadline then begin
                        print_resp r;
                        prerr_endline "wait: timed out";
                        exit 2
                      end
                      else begin
                        Unix.sleepf 0.05;
                        poll ()
                      end)
              | r -> finish r
            in
            poll ()
        | other -> failwith (Printf.sprintf "unknown client action %S" other))
  in
  let doc = "Talk to a running gossip daemon (submit, follow, and fetch jobs)." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ action $ job $ family $ n $ protocol $ rumors_arg
      $ budget_arg $ trials $ size $ bridge $ bridges $ attach $ ws_k $ beta $ latency
      $ max_rounds $ scenario_arg $ wait_timeout $ seed_arg)

(* ------------------------------------------------------------------ *)
(* report *)

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Telemetry JSONL file to summarize.")
  in
  let run file =
    if not (Sys.file_exists file) then
      failwith (Printf.sprintf "no such file %S" file);
    Format.printf "%a@?" Gossip_obs.Report.pp (Gossip_obs.Report.of_file file)
  in
  let doc = "Summarize a telemetry JSONL file (event counts, job latency, metrics)." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* gadget *)

let gadget_cmd =
  let which =
    Arg.(
      value
      & opt string "theorem7"
      & info [ "which" ] ~docv:"W" ~doc:"Gadget: g-p, g-sym, theorem6, theorem7, theorem8.")
  in
  let m = Arg.(value & opt int 8 & info [ "side" ] ~docv:"M" ~doc:"Bipartite side size.") in
  let n = Arg.(value & opt int 64 & info [ "nodes" ] ~docv:"N" ~doc:"Network size.") in
  let delta = Arg.(value & opt int 8 & info [ "delta" ] ~docv:"D" ~doc:"Theorem 6 delta.") in
  let ell = Arg.(value & opt int 4 & info [ "ell" ] ~docv:"L" ~doc:"Fast latency.") in
  let phi = Arg.(value & opt float 0.2 & info [ "phi" ] ~docv:"PHI" ~doc:"Theorem 7 phi.") in
  let layers = Arg.(value & opt int 6 & info [ "layers" ] ~docv:"K" ~doc:"Theorem 8 layers.") in
  let size = Arg.(value & opt int 8 & info [ "size" ] ~docv:"S" ~doc:"Theorem 8 layer size.") in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the gadget as Graphviz DOT (fast edges bold).")
  in
  let run which m n delta ell phi layers size dot seed =
    let rng = Rng.of_int seed in
    let describe g label =
      (match dot with
      | None -> ()
      | Some path ->
          Gossip_graph.Dot.write path (Gossip_graph.Dot.to_dot ~fast_threshold:ell g);
          Printf.printf "gadget written to %s\n" path);
      Printf.printf "%s\n" label;
      Format.printf "  %a@." Graph.pp g;
      Printf.printf "  weighted diameter %d, max degree %d\n" (Paths.weighted_diameter g)
        (Graph.max_degree g);
      if Graph.is_connected g && Graph.n g <= 4096 then begin
        let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
        Printf.printf "  phi* = %.4f at ell* = %d\n" wc.Weighted.phi_star wc.Weighted.ell_star
      end
    in
    match which with
    | "g-p" ->
        let target = Gadgets.random_p_target rng ~m ~p:phi in
        let g = Gadgets.g_p ~m ~target ~fast_latency:ell ~slow_latency:(2 * m) in
        print_string (Gadgets.describe_gadget ~fast_latency:ell g ~m);
        describe g "G(P)"
    | "g-sym" ->
        let target = Gadgets.random_p_target rng ~m ~p:phi in
        let g = Gadgets.g_sym_p ~m ~target ~fast_latency:ell ~slow_latency:(2 * m) in
        print_string (Gadgets.describe_gadget ~fast_latency:ell g ~m);
        describe g "G_sym(P)"
    | "theorem6" ->
        let info = Gadgets.theorem6 rng ~n ~delta in
        describe info.Gadgets.h_graph (Printf.sprintf "Theorem 6 network H(n=%d, delta=%d)" n delta)
    | "theorem7" ->
        let info = Gadgets.theorem7 rng ~n ~ell ~phi in
        Printf.printf "target size %d (expected %.0f)\n"
          (List.length info.Gadgets.t7_target)
          (phi *. float_of_int (n * n));
        describe info.Gadgets.t7_graph
          (Printf.sprintf "Theorem 7 gadget (n=%d, ell=%d, phi=%.3f)" n ell phi)
    | "theorem8" ->
        let info = Gadgets.theorem8 rng ~layers ~layer_size:size ~ell in
        Printf.printf "analytic phi_ell (Lemma 9) = %.4f, diameter bound ~ k/2 = %d\n"
          info.Gadgets.t8_phi_analytic info.Gadgets.t8_diameter_bound;
        describe info.Gadgets.t8_graph
          (Printf.sprintf "Theorem 8 layered ring (k=%d, s=%d, ell=%d)" layers size ell)
    | other -> failwith (Printf.sprintf "unknown gadget %S" other)
  in
  let doc = "Build and describe a lower-bound gadget (Section 3.2)." in
  Cmd.v (Cmd.info "gadget" ~doc)
    Term.(const run $ which $ m $ n $ delta $ ell $ phi $ layers $ size $ dot $ seed_arg)

let () =
  let doc = "Gossiping with latencies: algorithms, gadgets, and analyses." in
  let info = Cmd.info "gossip-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd;
            run_cmd;
            game_cmd;
            gadget_cmd;
            spanner_cmd;
            reduce_cmd;
            sweep_cmd;
            serve_cmd;
            client_cmd;
            report_cmd;
          ]))
