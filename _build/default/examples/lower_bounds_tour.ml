(* A guided tour of the paper's lower bounds.

   The paper's hard instances are not exotic: they hide a few fast
   edges among many slow ones and charge any algorithm for finding
   them.  This example builds each gadget, plays the guessing game on
   it, and runs push-pull to watch the bounds bite.

   Run with:  dune exec examples/lower_bounds_tour.exe *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gadgets = Gossip_graph.Gadgets
module Paths = Gossip_graph.Paths
module Game = Gossip_game.Game
module Strategies = Gossip_game.Strategies
module Reduction = Gossip_core.Reduction
module Push_pull = Gossip_core.Push_pull

let banner title = Printf.printf "\n--- %s ---\n" title

let () =
  let rng = Rng.of_int 2017 in

  (* 1. The guessing game itself (Section 3.1). *)
  banner "The guessing game: find the hidden pairs";
  let m = 32 in
  let target = Gadgets.random_p_target (Rng.split rng) ~m ~p:0.1 in
  Printf.printf "Guessing(2m = %d) with a Random_0.1 target of %d pairs\n" (2 * m)
    (List.length target);
  List.iter
    (fun (name, strategy) ->
      let game = Game.create ~m ~target in
      match strategy (Rng.split rng) game ~max_rounds:1_000_000 with
      | Some o ->
          Printf.printf "  %-16s solved in %4d rounds (%5d guesses)\n" name
            o.Strategies.rounds o.Strategies.guesses
      | None -> Printf.printf "  %-16s did not finish\n" name)
    Strategies.all;
  print_endline "  (fresh-pairs ~ 1/p; random guessing pays the extra log m: Lemma 5)";

  (* 2. Theorem 6: the degree gadget. *)
  banner "Theorem 6: one fast edge among Delta^2 (Omega(Delta))";
  List.iter
    (fun delta ->
      let t = Gadgets.singleton_target (Rng.split rng) ~m:delta in
      let o =
        Reduction.simulate_push_pull (Rng.split rng) ~m:delta ~target:t ~fast_latency:1
          ~symmetric:false ~max_rounds:1_000_000
      in
      match o.Reduction.game_rounds with
      | Some r -> Printf.printf "  Delta = %3d: push-pull found the fast edge after %4d rounds\n" delta r
      | None -> Printf.printf "  Delta = %3d: not found\n" delta)
    [ 16; 32; 64; 128 ];

  (* 3. Theorem 7: the conductance gadget. *)
  banner "Theorem 7: conductance gates dissemination (Omega(1/phi + ell))";
  List.iter
    (fun phi ->
      let info = Gadgets.theorem7 (Rng.split rng) ~n:48 ~ell:2 ~phi in
      let g = info.Gadgets.t7_graph in
      let r = Push_pull.local_broadcast (Rng.split rng) g ~max_rounds:1_000_000 in
      match r.Push_pull.rounds with
      | Some rounds ->
          Printf.printf "  phi = %.2f: diameter %2d, local broadcast in %4d rounds\n" phi
            (Paths.weighted_diameter g) rounds
      | None -> Printf.printf "  phi = %.2f: capped\n" phi)
    [ 0.4; 0.2; 0.1 ];

  (* 4. Theorem 8: the layered ring and its crossover. *)
  banner "Theorem 8: min(Delta + D, ell/phi) on the layered ring";
  let layers = 6 and layer_size = 12 in
  Printf.printf "  ring of %d layers x %d nodes; search cap ~ (k/2) * (3s/2) = %d\n" layers
    layer_size
    (layers / 2 * (3 * layer_size / 2));
  List.iter
    (fun ell ->
      let info = Gadgets.theorem8 (Rng.split rng) ~layers ~layer_size ~ell in
      let r =
        Push_pull.broadcast (Rng.split rng) info.Gadgets.t8_graph ~source:0
          ~max_rounds:1_000_000
      in
      match r.Push_pull.rounds with
      | Some rounds ->
          Printf.printf "  ell = %3d: broadcast in %4d rounds (latency branch would be %d)\n" ell
            rounds
            (layers / 2 * ell)
      | None -> Printf.printf "  ell = %3d: capped\n" ell)
    [ 2; 8; 32; 128 ];
  print_endline
    "  Small ell: rounds track the latency branch.  Large ell: they\n\
    \  saturate at the search branch — the min() of Theorem 8."
