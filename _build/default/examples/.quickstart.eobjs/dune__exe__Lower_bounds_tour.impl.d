examples/lower_bounds_tour.ml: Gossip_core Gossip_game Gossip_graph Gossip_util List Printf
