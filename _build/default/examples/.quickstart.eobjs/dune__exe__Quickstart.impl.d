examples/quickstart.ml: Format Gossip_conductance Gossip_core Gossip_graph Gossip_util List Printf
