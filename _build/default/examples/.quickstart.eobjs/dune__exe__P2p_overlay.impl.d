examples/p2p_overlay.ml: Gossip_core Gossip_graph Gossip_util List Printf
