examples/replication.mli:
