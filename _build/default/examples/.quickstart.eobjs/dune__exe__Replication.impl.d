examples/replication.ml: Gossip_conductance Gossip_core Gossip_graph Gossip_sim Gossip_util List Printf
