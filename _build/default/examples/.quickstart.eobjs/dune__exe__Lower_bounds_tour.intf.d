examples/lower_bounds_tour.mli:
