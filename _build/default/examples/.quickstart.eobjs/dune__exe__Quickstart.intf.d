examples/quickstart.mli:
