examples/sensor_grid.ml: Array Gossip_core Gossip_graph Gossip_util List Printf String
