(* Geo-replicated database anti-entropy.

   A classic use of gossip (Demers et al. 1987): every replica holds a
   set of updates and reconciles with peers until all replicas agree.
   Here the fleet spans four regions; intra-region links are fast,
   cross-region links are slow, and the question the paper answers is
   which reconciliation strategy to run:

   - push-pull anti-entropy (unknown latencies, small messages, robust);
   - the spanner route (known latencies, optimal in D up to polylogs);
   - naive round-robin flooding as a baseline.

   Run with:  dune exec examples/replication.exe *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Weighted = Gossip_conductance.Weighted
module Table = Gossip_util.Table

let build_fleet rng ~regions ~replicas_per_region ~wan_latency =
  (* Regions are cliques; each region is bridged to the next (a WAN
     ring) and to a random replica two regions over (a backbone
     shortcut). *)
  let base = Gen.ring_of_cliques ~cliques:regions ~size:replicas_per_region ~bridge_latency:wan_latency in
  let shortcut_edges =
    List.init (regions / 2) (fun i ->
        let r1 = 2 * i and r2 = (2 * i) + (regions / 2) in
        let pick r = (r mod regions * replicas_per_region) + Rng.int rng (replicas_per_region - 1) in
        (pick r1, pick r2, wan_latency + (wan_latency / 2)))
  in
  let existing = Graph.edges base in
  let all =
    List.map (fun { Graph.u; v; latency } -> (u, v, latency)) existing
    @ List.filter
        (fun (u, v, _) -> u <> v && not (Graph.mem_edge base u v))
        shortcut_edges
  in
  Graph.of_edges ~n:(Graph.n base) all

let () =
  let rng = Rng.of_int 42 in
  let fleet = build_fleet rng ~regions:4 ~replicas_per_region:10 ~wan_latency:25 in
  Printf.printf "replica fleet: %d replicas, %d links, D = %d, Delta = %d\n"
    (Graph.n fleet) (Graph.m fleet)
    (Paths.weighted_diameter fleet)
    (Graph.max_degree fleet);
  let wc = Weighted.weighted_conductance fleet in
  Printf.printf "phi* = %.4f at ell* = %d  =>  push-pull bound %.0f rounds\n\n"
    wc.Weighted.phi_star wc.Weighted.ell_star
    (Weighted.pushpull_round_bound fleet);

  (* One update is written in region 0; how long until every replica
     has it under each strategy? *)
  let t =
    Table.create ~title:"time for one update to reach every replica (rounds)"
      ~columns:[ ("strategy", Table.Left); ("rounds", Table.Right); ("messages", Table.Right) ]
  in
  let pp = Gossip_core.Push_pull.broadcast (Rng.split rng) fleet ~source:0 ~max_rounds:1_000_000 in
  (match pp.Gossip_core.Push_pull.rounds with
  | Some r ->
      Table.add_row t
        [
          "push-pull anti-entropy";
          string_of_int r;
          string_of_int pp.Gossip_core.Push_pull.metrics.Gossip_sim.Engine.deliveries;
        ]
  | None -> Table.add_row t [ "push-pull anti-entropy"; "cap"; "-" ]);
  let flood =
    Gossip_core.Flooding.push_round_robin fleet ~source:0 ~blocking:false ~max_rounds:1_000_000
  in
  (match flood.Gossip_core.Flooding.rounds with
  | Some r ->
      Table.add_row t
        [
          "push-only flooding";
          string_of_int r;
          string_of_int flood.Gossip_core.Flooding.metrics.Gossip_sim.Engine.deliveries;
        ]
  | None -> Table.add_row t [ "push-only flooding"; "cap"; "-" ]);
  Table.print t;

  (* Full anti-entropy: every replica starts with its own updates and
     all must converge (all-to-all dissemination, Section 5). *)
  let t =
    Table.create ~title:"full reconciliation (all-to-all)"
      ~columns:[ ("strategy", Table.Left); ("rounds", Table.Right); ("notes", Table.Left) ]
  in
  let pp = Gossip_core.Push_pull.all_to_all (Rng.split rng) fleet ~max_rounds:1_000_000 in
  (match pp.Gossip_core.Push_pull.rounds with
  | Some r -> Table.add_row t [ "push-pull"; string_of_int r; "robust, small messages" ]
  | None -> Table.add_row t [ "push-pull"; "cap"; "" ]);
  let eid = Gossip_core.Eid.run (Rng.split rng) fleet () in
  Table.add_row t
    [
      "General EID (spanner route)";
      string_of_int eid.Gossip_core.Eid.rounds;
      Printf.sprintf "k_final=%d, %d attempts, success=%b" eid.Gossip_core.Eid.k_final
        (List.length eid.Gossip_core.Eid.attempts)
        eid.Gossip_core.Eid.success;
    ];
  let pd = Gossip_core.Path_discovery.run fleet in
  Table.add_row t
    [
      "Path Discovery (T(k))";
      string_of_int pd.Gossip_core.Path_discovery.rounds;
      Printf.sprintf "needs no bound on n, success=%b" pd.Gossip_core.Path_discovery.success;
    ];
  Table.print t;
  print_endline
    "As Theorem 20 predicts, the conductance route (push-pull) wins when\n\
     ell*/phi* is moderate; the spanner route's polylog factors only pay\n\
     off on much larger, worse-connected fleets."

(* Operational reality: replicas crash and WAN links lose packets.
   Push-pull anti-entropy keeps converging for the survivors — the
   robustness Section 7 of the paper highlights. *)
let () =
  print_newline ();
  let rng = Rng.of_int 77 in
  let fleet = build_fleet rng ~regions:4 ~replicas_per_region:10 ~wan_latency:25 in
  let module R = Gossip_core.Robustness in
  let t =
    Table.create ~title:"one update under faults (push-pull anti-entropy)"
      ~columns:
        [ ("scenario", Table.Left); ("rounds", Table.Right); ("live coverage", Table.Left) ]
  in
  List.iter
    (fun (name, plan) ->
      let r = R.pushpull_broadcast (Rng.split rng) fleet ~source:0 ~plan ~max_rounds:1_000_000 in
      Table.add_row t
        [
          name;
          (match r.R.rounds with Some x -> string_of_int x | None -> "cap");
          Printf.sprintf "%d/%d" r.R.informed_live r.R.live;
        ])
    [
      ("healthy fleet", R.no_faults);
      ( "one region lost at round 5",
        R.crash_fraction (Rng.split rng) ~n:(Graph.n fleet) ~fraction:0.25 ~from_round:5
          ~protect:[ 0 ] );
      ("10% packet loss", R.drop_rate (Rng.split rng) ~rate:0.10);
      ("WAN jitter +0..10", R.jitter_up_to (Rng.split rng) ~extra:10);
    ];
  Table.print t
