(* Quickstart: build a latency-weighted network, inspect its weighted
   conductance, and broadcast a rumor with push-pull.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Weighted = Gossip_conductance.Weighted
module Push_pull = Gossip_core.Push_pull

let () =
  (* A deterministic seed makes every run reproducible. *)
  let rng = Rng.of_int 2026 in

  (* Three datacenters of 12 machines each: LAN edges at latency 1,
     WAN bridges at latency 20. *)
  let network = Gen.ring_of_cliques ~cliques:3 ~size:12 ~bridge_latency:20 in
  Format.printf "network: %a@." Graph.pp network;
  Printf.printf "weighted diameter D = %d, hop diameter = %d\n"
    (Paths.weighted_diameter network)
    (Paths.hop_diameter network);

  (* The paper's key quantity: weighted conductance phi* and critical
     latency ell* (Definition 2).  For this topology the critical
     latency is the WAN bridge latency: the network is only "well
     connected" once the bridges are usable. *)
  let wc = Weighted.weighted_conductance network in
  Printf.printf "weighted conductance phi* = %.4f at critical latency ell* = %d\n"
    wc.Weighted.phi_star wc.Weighted.ell_star;
  List.iter
    (fun (ell, phi) -> Printf.printf "  phi_%-3d = %.4f\n" ell phi)
    wc.Weighted.profile;

  (* Theorem 12: push-pull broadcast completes in
     O((ell_star/phi_star) log n) rounds. *)
  let bound = Weighted.pushpull_round_bound network in
  let result = Push_pull.broadcast rng network ~source:0 ~max_rounds:100_000 in
  (match result.Push_pull.rounds with
  | Some rounds ->
      Printf.printf "push-pull broadcast from node 0: %d rounds (bound %.0f)\n" rounds bound
  | None -> print_endline "push-pull did not finish (raise max_rounds)");

  (* The informed-set trajectory — the Markov process in the proof of
     Theorem 12. *)
  print_endline "informed nodes over time:";
  List.iter
    (fun (round, informed) -> Printf.printf "  round %4d: %d/%d\n" round informed (Graph.n network))
    result.Push_pull.history
