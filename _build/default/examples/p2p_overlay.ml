(* Peer-to-peer publish/subscribe overlay.

   A random-regular overlay with heavy-tailed link latencies (peers
   spread across the internet).  The operator knows the measured
   latencies and wants a sparse broadcast overlay: we build the
   oriented Baswana-Sen spanner (Appendix D), which caps every peer's
   out-degree at O(log n) while stretching routes by at most 2k-1,
   then run RR Broadcast over it and compare with flooding the full
   overlay.

   Run with:  dune exec examples/p2p_overlay.exe *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Spanner = Gossip_core.Spanner
module Table = Gossip_util.Table

let () =
  let rng = Rng.of_int 1337 in
  let n = 200 and degree = 32 in
  let overlay =
    Gen.with_latencies rng
      (Gen.Power_law { min_latency = 1; max_latency = 64; exponent = 2.2 })
      (Gen.random_regular rng ~n ~d:degree)
  in
  Printf.printf "overlay: %d peers, %d links, degree %d, D = %d, l_max = %d\n" n
    (Graph.m overlay) degree
    (Paths.weighted_diameter overlay)
    (Graph.max_latency overlay);

  (* Build spanners at several k and report the size/stretch
     trade-off. *)
  let t =
    Table.create ~title:"spanner trade-off (Appendix D)"
      ~columns:
        [
          ("k", Table.Right);
          ("edges kept", Table.Right);
          ("max out-degree", Table.Right);
          ("stretch", Table.Right);
          ("guarantee 2k-1", Table.Right);
        ]
  in
  let spanners =
    List.map
      (fun k ->
        let s = Spanner.build (Rng.split rng) overlay ~k () in
        Table.add_row t
          [
            string_of_int k;
            Printf.sprintf "%d/%d" (Spanner.edge_count s) (Graph.m overlay);
            string_of_int (Spanner.max_out_degree s);
            Printf.sprintf "%.2f" (Spanner.stretch s);
            string_of_int ((2 * k) - 1);
          ];
        (k, s))
      [ 2; 3; 4 ]
  in
  Table.print t;

  (* Publish from one peer over the k = 3 spanner using RR Broadcast
     with parameter stretch * D. *)
  let _, s3 = List.nth spanners 1 in
  let d = Paths.weighted_diameter overlay in
  let k_rr = 5 * d in
  let rr = Gossip_core.Rr_broadcast.run_on_spanner s3 ~k:k_rr () in
  Printf.printf
    "RR broadcast over the k=3 spanner: %d rounds; every peer reached: %b\n"
    rr.Gossip_core.Rr_broadcast.rounds
    (Gossip_core.Rumor.all_to_all_done rr.Gossip_core.Rr_broadcast.sets);

  (* Compare against push-pull on the raw overlay (no spanner, no
     latency knowledge). *)
  let pp = Gossip_core.Push_pull.broadcast (Rng.split rng) overlay ~source:0 ~max_rounds:1_000_000 in
  (match pp.Gossip_core.Push_pull.rounds with
  | Some r -> Printf.printf "push-pull single-source broadcast on the raw overlay: %d rounds\n" r
  | None -> print_endline "push-pull capped");
  print_endline
    "The spanner keeps every peer's fan-out logarithmic — the property\n\
     Lemma 15 charges for RR broadcast's running time — at the cost of a\n\
     bounded stretch in latency."
