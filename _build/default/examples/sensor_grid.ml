(* Sensor-network data aggregation on a radio grid.

   A field of sensors arranged as a torus; most radio links are fast
   but a fraction are degraded (retransmissions make them slow).  Each
   sensor holds one reading and the whole field must aggregate all
   readings — all-to-all dissemination with unknown network size, the
   setting of Appendix E's Path Discovery.

   Run with:  dune exec examples/sensor_grid.exe *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Bitset = Gossip_util.Bitset

let () =
  let rng = Rng.of_int 7 in
  let rows = 8 and cols = 8 in
  (* 20% of the links are degraded: latency 12 instead of 1. *)
  let field =
    Gen.with_latencies rng
      (Gen.Bimodal { fast = 1; slow = 12; p_fast = 0.8 })
      (Gen.torus rows cols)
  in
  Printf.printf "sensor field: %dx%d torus, %d links (%d degraded), D = %d\n" rows cols
    (Graph.m field)
    (List.length (List.filter (fun e -> e.Graph.latency > 1) (Graph.edges field)))
    (Paths.weighted_diameter field);

  (* Step 1: neighbor discovery via local broadcast (Haeupler's DTG,
     Appendix C): every sensor learns all its radio neighbors'
     readings in O(l_max log^2 n) rounds. *)
  let dtg, ok = Gossip_core.Dtg.local_broadcast field ~max_rounds:1_000_000 in
  (match dtg.Gossip_core.Dtg.rounds with
  | Some r -> Printf.printf "local broadcast (DTG): %d rounds, complete = %b\n" r ok
  | None -> print_endline "local broadcast capped");

  (* Step 2: field-wide aggregation with Path Discovery — no sensor
     knows how many sensors there are, and the T(k) schedule uses the
     degraded links only when it must. *)
  let pd = Gossip_core.Path_discovery.run field in
  Printf.printf "path discovery: %d rounds, final estimate k = %d, success = %b\n"
    pd.Gossip_core.Path_discovery.rounds pd.Gossip_core.Path_discovery.k_final
    pd.Gossip_core.Path_discovery.success;
  let complete =
    Array.for_all Bitset.is_full pd.Gossip_core.Path_discovery.sets
  in
  Printf.printf "every sensor aggregated every reading: %b\n" complete;

  (* Step 3: compare against push-pull for the same job. *)
  let pp = Gossip_core.Push_pull.all_to_all (Rng.split rng) field ~max_rounds:1_000_000 in
  (match pp.Gossip_core.Push_pull.rounds with
  | Some r -> Printf.printf "push-pull all-to-all for comparison: %d rounds\n" r
  | None -> print_endline "push-pull capped");

  (* The T(k) schedule that was executed (Appendix E). *)
  let schedule = Gossip_core.Path_discovery.t_sequence pd.Gossip_core.Path_discovery.k_final in
  Printf.printf "T(%d) schedule: %s\n" pd.Gossip_core.Path_discovery.k_final
    (String.concat " " (List.map string_of_int schedule))
