(* Tests for RR Broadcast (Algorithm 2, Lemma 15, Corollary 16). *)

module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Spanner = Gossip_core.Spanner
module Rr = Gossip_core.Rr_broadcast
module Rumor = Gossip_core.Rumor

let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

let full_out g = Array.init (Graph.n g) (fun u -> Graph.neighbors g u)

let test_full_adjacency_all_to_all () =
  (* With k >= diameter and every edge oriented both ways, RR broadcast
     solves all-to-all. *)
  let g = Gen.grid 4 4 in
  let k = Paths.weighted_diameter g in
  let r = Rr.run ~base:g ~out_edges:(full_out g) ~k () in
  checkb "all-to-all" true (Rumor.all_to_all_done r.Rr.sets)

let test_lemma15_distance_k_pairs_exchanged () =
  (* After RR(k), any pair at distance <= k exchanged rumors — checked
     exhaustively on a weighted path. *)
  let g = Graph.of_edges ~n:6 [ (0, 1, 2); (1, 2, 1); (2, 3, 3); (3, 4, 1); (4, 5, 2) ] in
  let k = 4 in
  let r = Rr.run ~base:g ~out_edges:(full_out g) ~k () in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let dist = Paths.dijkstra g u in
    for v = 0 to n - 1 do
      if dist.(v) <= k then begin
        if not (Bitset.mem r.Rr.sets.(u) v && Bitset.mem r.Rr.sets.(v) u) then
          Alcotest.failf "pair (%d,%d) at distance %d not exchanged" u v dist.(v)
      end
    done
  done

let test_ignores_edges_above_k () =
  (* A latency-9 bridge is not usable by RR(2). *)
  let g = Gen.dumbbell ~size:3 ~bridge_latency:9 in
  let r = Rr.run ~base:g ~out_edges:(full_out g) ~k:2 () in
  checkb "bridge rumor absent" false (Bitset.mem r.Rr.sets.(0) 5)

let test_runs_on_spanner_orientation () =
  let rng = Rng.of_int 1 in
  let g = Gen.erdos_renyi_connected rng ~n:30 ~p:0.3 in
  let s = Spanner.build rng g ~k:3 () in
  let d = Paths.weighted_diameter g in
  (* Spanner stretch <= 5, so parameter 5D covers every pair. *)
  let r = Rr.run_on_spanner s ~k:(5 * d) () in
  checkb "all-to-all over spanner" true (Rumor.all_to_all_done r.Rr.sets)

let test_rounds_formula () =
  (* Default iterations = k * delta_out + k plus the k-round drain. *)
  let g = Gen.cycle 8 in
  let k = 3 in
  let r = Rr.run ~base:g ~out_edges:(full_out g) ~k () in
  (* delta_out = 2 on a cycle. *)
  Alcotest.check Alcotest.int "rounds" ((k * 2) + k + k) r.Rr.rounds

let test_explicit_iterations () =
  let g = Gen.cycle 8 in
  let r = Rr.run ~base:g ~out_edges:(full_out g) ~k:1 ~iterations:2 () in
  Alcotest.check Alcotest.int "rounds" 3 r.Rr.rounds

let test_accumulates_into_given_rumors () =
  let g = Gen.path 4 in
  let rumors = Rumor.initial g in
  Bitset.add rumors.(0) 3;
  (* pre-seeded knowledge *)
  let r = Rr.run ~base:g ~out_edges:(full_out g) ~k:3 ~rumors () in
  checkb "alias kept" true (r.Rr.sets == rumors);
  checkb "preseed propagated" true (Bitset.mem rumors.(1) 3)

let prop_rr_with_full_adjacency_solves =
  QCheck.Test.make ~name:"RR(diameter) solves all-to-all" ~count:15
    QCheck.(pair (int_range 5 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n ~p:0.35)
      in
      let k = Paths.weighted_diameter g in
      let r = Rr.run ~base:g ~out_edges:(full_out g) ~k () in
      Rumor.all_to_all_done r.Rr.sets)

let () =
  Alcotest.run "gossip_rr_broadcast"
    [
      ( "rr",
        [
          Alcotest.test_case "full adjacency all-to-all" `Quick test_full_adjacency_all_to_all;
          Alcotest.test_case "Lemma 15 distance-k pairs" `Quick
            test_lemma15_distance_k_pairs_exchanged;
          Alcotest.test_case "ignores edges above k" `Quick test_ignores_edges_above_k;
          Alcotest.test_case "spanner orientation" `Quick test_runs_on_spanner_orientation;
          Alcotest.test_case "rounds formula" `Quick test_rounds_formula;
          Alcotest.test_case "explicit iterations" `Quick test_explicit_iterations;
          Alcotest.test_case "accumulates rumors" `Quick test_accumulates_into_given_rumors;
          qtest prop_rr_with_full_adjacency_solves;
        ] );
    ]
