test/test_conductance.mli:
