test/test_dtg.mli:
