test/test_extensions.ml: Alcotest Array Gossip_core Gossip_graph Gossip_util List QCheck QCheck_alcotest
