test/test_dissemination.ml: Alcotest Gossip_core Gossip_graph Gossip_util
