test/test_proc.ml: Alcotest Array Gossip_graph Gossip_sim Option
