test/test_pushpull.ml: Alcotest Gossip_conductance Gossip_core Gossip_graph Gossip_util List QCheck QCheck_alcotest
