test/test_flooding.ml: Alcotest Gossip_core Gossip_graph Gossip_util
