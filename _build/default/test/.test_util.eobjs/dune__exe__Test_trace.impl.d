test/test_trace.ml: Alcotest Array Filename Gossip_core Gossip_graph Gossip_sim Gossip_util List QCheck QCheck_alcotest Sys
