test/test_util.ml: Alcotest Array Float Gen Gossip_util List QCheck QCheck_alcotest String
