test/test_graph.ml: Alcotest Array Gossip_graph Gossip_util List QCheck QCheck_alcotest String
