test/test_conductance.ml: Alcotest Float Gossip_conductance Gossip_graph Gossip_util List QCheck QCheck_alcotest
