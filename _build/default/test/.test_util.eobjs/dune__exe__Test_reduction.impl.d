test/test_reduction.ml: Alcotest Gossip_core Gossip_graph Gossip_util QCheck QCheck_alcotest
