test/test_rr_broadcast.ml: Alcotest Array Gossip_core Gossip_graph Gossip_util QCheck QCheck_alcotest
