test/test_gadgets.ml: Alcotest Array Gossip_conductance Gossip_graph Gossip_util List QCheck QCheck_alcotest String
