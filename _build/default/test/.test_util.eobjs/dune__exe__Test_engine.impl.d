test/test_engine.ml: Alcotest Array Gossip_core Gossip_graph Gossip_sim Gossip_util QCheck QCheck_alcotest
