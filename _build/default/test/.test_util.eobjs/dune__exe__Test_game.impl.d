test/test_game.ml: Alcotest Gossip_game Gossip_graph Gossip_util List QCheck QCheck_alcotest
