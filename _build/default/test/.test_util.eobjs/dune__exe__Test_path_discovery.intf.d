test/test_path_discovery.mli:
