test/test_rr_broadcast.mli:
