test/test_eid.mli:
