(* Tests for the lower-bound gadget constructions (Section 3.2,
   Theorems 6-8, Figures 1-2). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gadgets = Gossip_graph.Gadgets
module Paths = Gossip_graph.Paths

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_singleton_target () =
  let rng = Rng.of_int 1 in
  for _ = 1 to 100 do
    match Gadgets.singleton_target rng ~m:10 with
    | [ (a, b) ] -> checkb "in range" true (a >= 0 && a < 10 && b >= 0 && b < 10)
    | _ -> Alcotest.fail "not a singleton"
  done

let test_random_p_target_density () =
  let rng = Rng.of_int 2 in
  let t = Gadgets.random_p_target rng ~m:40 ~p:0.25 in
  let count = List.length t in
  (* Expected 400; allow generous slack. *)
  checkb "density near p*m^2" true (count > 280 && count < 520)

let test_random_p_target_extremes () =
  let rng = Rng.of_int 3 in
  checki "p tiny is near-empty" 0
    (List.length (Gadgets.random_p_target rng ~m:5 ~p:1e-12));
  checki "p=1 full" 25 (List.length (Gadgets.random_p_target rng ~m:5 ~p:1.0))

let test_g_p_structure () =
  let m = 6 in
  let target = [ (0, 0); (2, 3) ] in
  let g = Gadgets.g_p ~m ~target ~fast_latency:1 ~slow_latency:12 in
  checki "2m nodes" 12 (Graph.n g);
  (* L-clique + m^2 cross edges. *)
  checki "edges" ((m * (m - 1) / 2) + (m * m)) (Graph.m g);
  (* L degrees: m-1 clique + m cross; R degrees: m cross. *)
  checki "L degree" ((m - 1) + m) (Graph.degree g 0);
  checki "R degree" m (Graph.degree g (m + 1));
  Alcotest.check (Alcotest.option Alcotest.int) "fast edge" (Some 1) (Graph.latency g 0 m);
  Alcotest.check (Alcotest.option Alcotest.int) "fast edge 2" (Some 1)
    (Graph.latency g 2 (m + 3));
  Alcotest.check (Alcotest.option Alcotest.int) "slow edge" (Some 12)
    (Graph.latency g 1 m)

let test_g_sym_p_structure () =
  let m = 5 in
  let g = Gadgets.g_sym_p ~m ~target:[ (1, 1) ] ~fast_latency:1 ~slow_latency:10 in
  checki "edges" ((2 * (m * (m - 1) / 2)) + (m * m)) (Graph.m g);
  (* Both sides now have degree (m-1) + m. *)
  checki "R degree" ((m - 1) + m) (Graph.degree g (m + 2))

let test_g_p_target_validation () =
  Alcotest.check_raises "target out of range"
    (Invalid_argument "Gadgets: target pair out of range") (fun () ->
      ignore (Gadgets.g_p ~m:4 ~target:[ (4, 0) ] ~fast_latency:1 ~slow_latency:8))

let test_theorem6_structure () =
  let rng = Rng.of_int 4 in
  let n = 64 and delta = 12 in
  let { Gadgets.h_graph = g; h_target; h_delta } = Gadgets.theorem6 rng ~n ~delta in
  checki "n nodes" n (Graph.n g);
  checki "delta recorded" delta h_delta;
  checki "singleton target" 1 (List.length h_target);
  checkb "connected" true (Graph.is_connected g);
  (* Max degree dominated by the big clique or the gadget: clique nodes
     have degree n - 2*delta - 1 (+1 for the attachment). *)
  checkb "max degree Theta" true (Graph.max_degree g >= (2 * delta) - 1);
  (* Weighted diameter is O(1)-ish: cliques of latency 1 plus one fast
     cross edge; slow edges cap it at n but the fast paths keep it small
     only through the target edge. *)
  checkb "diameter bounded by slow latency" true (Paths.weighted_diameter g <= (2 * n) + 4)

let test_theorem6_validation () =
  let rng = Rng.of_int 5 in
  Alcotest.check_raises "n too small" (Invalid_argument "Gadgets.theorem6: need n >= 2*delta")
    (fun () -> ignore (Gadgets.theorem6 rng ~n:10 ~delta:6))

let test_theorem7_structure () =
  let rng = Rng.of_int 6 in
  let n = 48 and ell = 4 in
  let info = Gadgets.theorem7 rng ~n ~ell ~phi:0.25 in
  let g = info.Gadgets.t7_graph in
  checki "2n nodes" (2 * n) (Graph.n g);
  checkb "connected" true (Graph.is_connected g);
  (* W.h.p. every R node has a fast edge: weighted diameter O(ell). *)
  checkb "diameter O(ell)" true (Paths.weighted_diameter g <= (3 * ell) + 2);
  (* Fast cross-edge count matches the target list. *)
  let fast = ref 0 in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      let cross = (u < n) <> (v < n) in
      if cross && latency = ell then incr fast)
    g;
  checki "fast edges = target" (List.length info.Gadgets.t7_target) !fast

let test_theorem8_params () =
  let p = Gadgets.theorem8_params ~n:100 ~alpha:0.2 in
  checkb "c in [1, 1.5)" true (p.Gadgets.c >= 1.0 && p.Gadgets.c < 1.5);
  checkb "even layers" true (p.Gadgets.layers mod 2 = 0);
  checkb "layer size sane" true (p.Gadgets.layer_size >= 2)

let test_theorem8_regularity () =
  (* Observation 23: the ring network is (3s-1)-regular. *)
  let rng = Rng.of_int 7 in
  let layers = 6 and layer_size = 5 in
  let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell:9 in
  let g = info.Gadgets.t8_graph in
  checki "k*s nodes" (layers * layer_size) (Graph.n g);
  for v = 0 to Graph.n g - 1 do
    checki "(3s-1)-regular" ((3 * layer_size) - 1) (Graph.degree g v)
  done

let test_theorem8_fast_edges () =
  let rng = Rng.of_int 8 in
  let layers = 4 and layer_size = 4 in
  let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell:7 in
  let g = info.Gadgets.t8_graph in
  checki "one fast edge per layer pair" layers (Array.length info.Gadgets.t8_fast_edges);
  Array.iter
    (fun (u, v) ->
      Alcotest.check (Alcotest.option Alcotest.int) "fast edge latency 1" (Some 1)
        (Graph.latency g u v))
    info.Gadgets.t8_fast_edges;
  (* All other cross edges have latency ell: count them. *)
  let fast = ref 0 and slow = ref 0 and intra = ref 0 in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      let lu = u / layer_size and lv = v / layer_size in
      if lu = lv then incr intra
      else if latency = 1 then incr fast
      else incr slow)
    g;
  checki "fast count" layers !fast;
  checki "slow count" ((layers * layer_size * layer_size) - layers) !slow;
  checki "intra count" (layers * (layer_size * (layer_size - 1) / 2)) !intra

let test_theorem8_diameter () =
  let rng = Rng.of_int 9 in
  let info = Gadgets.theorem8 rng ~layers:8 ~layer_size:4 ~ell:50 in
  let g = info.Gadgets.t8_graph in
  (* Adjacent layers joined by a latency-1 edge and layer cliques are
     latency 1, so D = Theta(k/2): each layer hop costs at most 3. *)
  let d = Paths.weighted_diameter g in
  checkb "D >= k/2" true (d >= info.Gadgets.t8_diameter_bound);
  checkb "D <= 3(k/2)+3" true (d <= (3 * info.Gadgets.t8_diameter_bound) + 3)

let test_theorem8_node_numbering () =
  checki "layer-major" 13 (Gadgets.theorem8_node ~layer_size:5 ~layer:2 ~index:3)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_describe_gadget () =
  let rng = Rng.of_int 10 in
  let target = Gadgets.singleton_target rng ~m:4 in
  let g = Gadgets.g_p ~m:4 ~target ~fast_latency:1 ~slow_latency:8 in
  let s = Gadgets.describe_gadget g ~m:4 in
  checkb "mentions fast count" true (contains_substring s "1 fast")

let test_lemma9_half_ring_cut () =
  (* Lemma 9: the half-ring cut C has phi_ell(C) exactly equal to the
     analytic value 2 s^2 / Vol(C).  Evaluate the cut explicitly. *)
  let rng = Rng.of_int 11 in
  let layers = 6 and layer_size = 4 in
  let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell:9 in
  let g = info.Gadgets.t8_graph in
  (* First half of the layers. *)
  let members =
    List.concat_map
      (fun layer -> List.init layer_size (fun index -> Gadgets.theorem8_node ~layer_size ~layer ~index))
      (List.init (layers / 2) (fun i -> i))
  in
  let side = Gossip_conductance.Cut.of_list g members in
  let phi = Gossip_conductance.Cut.phi_ell g side 9 in
  Alcotest.check (Alcotest.float 1e-9) "cut matches Lemma 9" info.Gadgets.t8_phi_analytic phi

let prop_theorem8_analytic_phi_positive =
  QCheck.Test.make ~name:"theorem8 analytic phi in (0,1)" ~count:30
    QCheck.(pair (int_range 4 10) (int_range 2 8))
    (fun (layers, layer_size) ->
      let layers = 2 * (layers / 2) in
      let layers = max 4 layers in
      let rng = Rng.of_int (layers + (100 * layer_size)) in
      let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell:5 in
      info.Gadgets.t8_phi_analytic > 0.0 && info.Gadgets.t8_phi_analytic < 1.0)

let () =
  Alcotest.run "gossip_gadgets"
    [
      ( "targets",
        [
          Alcotest.test_case "singleton" `Quick test_singleton_target;
          Alcotest.test_case "random_p density" `Quick test_random_p_target_density;
          Alcotest.test_case "random_p extremes" `Quick test_random_p_target_extremes;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "G(P) structure" `Quick test_g_p_structure;
          Alcotest.test_case "Gsym(P) structure" `Quick test_g_sym_p_structure;
          Alcotest.test_case "target validation" `Quick test_g_p_target_validation;
          Alcotest.test_case "describe (Fig. 1)" `Quick test_describe_gadget;
        ] );
      ( "theorem6",
        [
          Alcotest.test_case "structure" `Quick test_theorem6_structure;
          Alcotest.test_case "validation" `Quick test_theorem6_validation;
        ] );
      ("theorem7", [ Alcotest.test_case "structure" `Quick test_theorem7_structure ]);
      ( "theorem8",
        [
          Alcotest.test_case "params" `Quick test_theorem8_params;
          Alcotest.test_case "regularity (Obs. 23)" `Quick test_theorem8_regularity;
          Alcotest.test_case "fast edges" `Quick test_theorem8_fast_edges;
          Alcotest.test_case "diameter" `Quick test_theorem8_diameter;
          Alcotest.test_case "node numbering" `Quick test_theorem8_node_numbering;
          Alcotest.test_case "Lemma 9 half-ring cut" `Quick test_lemma9_half_ring_cut;
          qtest prop_theorem8_analytic_phi_positive;
        ] );
    ]
