(* Tests for the Baswana-Sen spanner with orientation (Appendix D,
   Lemma 13). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Spanner = Gossip_core.Spanner

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_k1_is_identity () =
  let g = Gen.clique 8 in
  let s = Spanner.build (Rng.of_int 1) g ~k:1 () in
  checki "all edges kept" (Graph.m g) (Spanner.edge_count s);
  Alcotest.check (Alcotest.float 1e-9) "stretch 1" 1.0 (Spanner.stretch s)

let test_connectivity_preserved () =
  List.iter
    (fun (name, g) ->
      let s = Spanner.build (Rng.of_int 2) g ~k:3 () in
      if not (Graph.is_connected s.Spanner.spanner) then
        Alcotest.failf "%s spanner disconnected" name)
    [
      ("clique", Gen.clique 20);
      ("grid", Gen.grid 5 5);
      ("cycle", Gen.cycle 15);
      ("ring-of-cliques", Gen.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:3);
    ]

let test_stretch_bound_k2 () =
  let rng = Rng.of_int 3 in
  let g = Gen.erdos_renyi_connected rng ~n:40 ~p:0.3 in
  let s = Spanner.build rng g ~k:2 () in
  checkb "stretch <= 3" true (Spanner.stretch s <= 3.0 +. 1e-9)

let test_stretch_bound_k3_weighted () =
  let rng = Rng.of_int 4 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 10)) (Gen.erdos_renyi_connected rng ~n:40 ~p:0.3) in
  let s = Spanner.build rng g ~k:3 () in
  checkb "stretch <= 5" true (Spanner.stretch s <= 5.0 +. 1e-9)

let test_sparsification () =
  (* On a dense graph, k = log n should keep O(n log n) edges. *)
  let rng = Rng.of_int 5 in
  let n = 64 in
  let g = Gen.clique n in
  let k = 6 in
  let s = Spanner.build rng g ~k () in
  let nf = float_of_int n in
  checkb "far fewer edges than the clique" true
    (float_of_int (Spanner.edge_count s) <= 8.0 *. nf *. log nf);
  checkb "sparser than base" true (Spanner.edge_count s < Graph.m g / 4)

let test_out_degree_bound () =
  (* Lemma 13 shape: out-degree O(n^(1/k) log n). *)
  let rng = Rng.of_int 6 in
  let n = 64 in
  let g = Gen.clique n in
  let k = 6 in
  let s = Spanner.build rng g ~k () in
  let bound = 8.0 *. (float_of_int n ** (1.0 /. float_of_int k)) *. log (float_of_int n) in
  checkb "out-degree bounded" true (float_of_int (Spanner.max_out_degree s) <= bound)

let test_deterministic_given_seed () =
  let g = Gen.erdos_renyi_connected (Rng.of_int 7) ~n:30 ~p:0.3 in
  let s1 = Spanner.build (Rng.of_int 42) g ~k:3 () in
  let s2 = Spanner.build (Rng.of_int 42) g ~k:3 () in
  checki "same edge count" (Spanner.edge_count s1) (Spanner.edge_count s2);
  checkb "same edges" true
    (Graph.edges s1.Spanner.spanner = Graph.edges s2.Spanner.spanner)

let test_n_hat_overestimate_still_works () =
  (* Lemma 13: running with n_hat = n^2 degrades only the degree
     bound. *)
  let rng = Rng.of_int 8 in
  let g = Gen.erdos_renyi_connected rng ~n:30 ~p:0.4 in
  let s = Spanner.build rng g ~k:4 ~n_hat:(30 * 30) () in
  checkb "still connected" true (Graph.is_connected s.Spanner.spanner);
  checkb "stretch <= 7" true (Spanner.stretch s <= 7.0 +. 1e-9)

let test_out_edges_cover_spanner () =
  let rng = Rng.of_int 9 in
  let g = Gen.grid 4 4 in
  let s = Spanner.build rng g ~k:2 () in
  let oriented = Array.fold_left (fun acc a -> acc + Array.length a) 0 s.Spanner.out_edges in
  checki "each spanner edge oriented exactly once" (Spanner.edge_count s) oriented

let test_invalid_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Spanner.build: need k >= 1") (fun () ->
      ignore (Spanner.build (Rng.of_int 1) (Gen.path 3) ~k:0 ()))

let test_disconnected_base () =
  (* Spanners of disconnected graphs span each component. *)
  let g = Graph.of_edges ~n:6 [ (0, 1, 1); (1, 2, 1); (3, 4, 1); (4, 5, 1) ] in
  let s = Spanner.build (Rng.of_int 10) g ~k:2 () in
  checkb "components spanned" true
    (Gossip_graph.Paths.distance s.Spanner.spanner 0 2 < Gossip_graph.Paths.unreachable)

let prop_stretch_respects_2k_minus_1 =
  QCheck.Test.make ~name:"stretch <= 2k-1 on random weighted graphs" ~count:20
    QCheck.(triple (int_range 8 32) (int_range 1 4) (int_range 0 1000))
    (fun (n, k, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 8)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      let s = Spanner.build rng g ~k () in
      Spanner.stretch s <= float_of_int ((2 * k) - 1) +. 1e-9)

let prop_spanner_subgraph =
  QCheck.Test.make ~name:"spanner edges are base edges with same latency" ~count:20
    QCheck.(pair (int_range 6 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 9)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      let s = Spanner.build rng g ~k:3 () in
      List.for_all
        (fun { Graph.u; v; latency } -> Graph.latency g u v = Some latency)
        (Graph.edges s.Spanner.spanner))

let prop_spanner_spans =
  QCheck.Test.make ~name:"spanner of connected base is spanning" ~count:20
    QCheck.(pair (int_range 5 30) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.4 in
      let s = Spanner.build rng g ~k:3 () in
      Graph.is_connected s.Spanner.spanner && Spanner.edge_count s >= n - 1)

let () =
  Alcotest.run "gossip_spanner"
    [
      ( "spanner",
        [
          Alcotest.test_case "k=1 identity" `Quick test_k1_is_identity;
          Alcotest.test_case "connectivity preserved" `Quick test_connectivity_preserved;
          Alcotest.test_case "stretch k=2" `Quick test_stretch_bound_k2;
          Alcotest.test_case "stretch k=3 weighted" `Quick test_stretch_bound_k3_weighted;
          Alcotest.test_case "sparsification" `Quick test_sparsification;
          Alcotest.test_case "out-degree bound (Lemma 13)" `Quick test_out_degree_bound;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
          Alcotest.test_case "n_hat overestimate" `Quick test_n_hat_overestimate_still_works;
          Alcotest.test_case "orientation covers" `Quick test_out_edges_cover_spanner;
          Alcotest.test_case "invalid k" `Quick test_invalid_k;
          Alcotest.test_case "disconnected base" `Quick test_disconnected_base;
          qtest prop_stretch_respects_2k_minus_1;
          qtest prop_spanner_subgraph;
          qtest prop_spanner_spans;
        ] );
    ]
