(* Tests for push-pull (Theorem 12). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Push_pull = Gossip_core.Push_pull
module Weighted = Gossip_conductance.Weighted

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let rounds_of r =
  match r.Push_pull.rounds with Some x -> x | None -> Alcotest.fail "capped"

let test_broadcast_clique_logarithmic () =
  let rng = Rng.of_int 1 in
  let n = 128 in
  let r = Push_pull.broadcast rng (Gen.clique n) ~source:0 ~max_rounds:10_000 in
  let rounds = rounds_of r in
  (* O(log n): generous constant. *)
  checkb "completes fast" true (rounds <= 8 * int_of_float (log (float_of_int n)))

let test_broadcast_star_constant () =
  (* Leaves pull from the hub in one exchange: O(1). *)
  let rng = Rng.of_int 2 in
  let r = Push_pull.broadcast rng (Gen.star 100) ~source:0 ~max_rounds:100 in
  checkb "O(1) on star" true (rounds_of r <= 4)

let test_broadcast_path_needs_diameter () =
  let rng = Rng.of_int 3 in
  let n = 30 in
  let r = Push_pull.broadcast rng (Gen.path n) ~source:0 ~max_rounds:10_000 in
  checkb "at least diameter" true (rounds_of r >= n - 1)

let test_broadcast_latency_scales_rounds () =
  (* Same topology, all latencies x5: completion should take ~5x. *)
  let run latency seed =
    let rng = Rng.of_int seed in
    let g = Gen.with_latencies rng (Gen.Fixed latency) (Gen.cycle 16) in
    rounds_of (Push_pull.broadcast (Rng.of_int seed) g ~source:0 ~max_rounds:100_000)
  in
  let r1 = run 1 4 and r5 = run 5 4 in
  (* A one-way information hop over a latency-5 edge takes at least
     floor(5/2) rounds (the response leg), so expect >= 2x. *)
  checkb "5x latency >= 2x rounds" true (r5 >= 2 * r1)

let test_broadcast_cap () =
  let rng = Rng.of_int 5 in
  let r = Push_pull.broadcast rng (Gen.path 50) ~source:0 ~max_rounds:3 in
  checkb "capped" true (r.Push_pull.rounds = None)

let test_history_monotone_and_complete () =
  let rng = Rng.of_int 6 in
  let n = 64 in
  let r = Push_pull.broadcast rng (Gen.clique n) ~source:0 ~max_rounds:1_000 in
  let counts = List.map snd r.Push_pull.history in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "history monotone" true (monotone counts);
  checki "starts at 1" 1 (List.hd counts);
  checki "ends informed" n (List.nth counts (List.length counts - 1))

let test_all_to_all_clique () =
  let rng = Rng.of_int 7 in
  let r = Push_pull.all_to_all rng (Gen.clique 32) ~max_rounds:10_000 in
  checkb "completes" true (r.Push_pull.rounds <> None)

let test_all_to_all_ring_of_cliques () =
  let rng = Rng.of_int 8 in
  let g = Gen.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:6 in
  let r = Push_pull.all_to_all rng g ~max_rounds:100_000 in
  checkb "completes" true (r.Push_pull.rounds <> None)

let test_local_broadcast_le_all_to_all () =
  let g = Gen.ring_of_cliques ~cliques:4 ~size:4 ~bridge_latency:6 in
  let lb = Push_pull.local_broadcast (Rng.of_int 9) g ~max_rounds:100_000 in
  let a2a = Push_pull.all_to_all (Rng.of_int 9) g ~max_rounds:100_000 in
  checkb "local broadcast no slower than all-to-all" true
    (rounds_of lb <= rounds_of a2a)

let test_theorem12_bound_holds_with_slack () =
  (* Measured rounds at most c * (ell_star/phi_star) * log n for a
     modest c across a few families (Theorem 12 upper bound shape). *)
  let families =
    [
      ("clique", Gen.clique 64);
      ("ring-of-cliques", Gen.ring_of_cliques ~cliques:4 ~size:8 ~bridge_latency:4);
      ("dumbbell", Gen.dumbbell ~size:10 ~bridge_latency:8);
    ]
  in
  List.iter
    (fun (name, g) ->
      let bound = Weighted.pushpull_round_bound ~backend:Weighted.Sweep g in
      let r = Push_pull.broadcast (Rng.of_int 10) g ~source:0 ~max_rounds:1_000_000 in
      let rounds = float_of_int (rounds_of r) in
      if rounds > 12.0 *. bound then
        Alcotest.failf "%s: %.0f rounds vs bound %.0f" name rounds bound)
    families

let prop_broadcast_always_succeeds_on_connected =
  QCheck.Test.make ~name:"push-pull completes on connected graphs" ~count:20
    QCheck.(pair (int_range 4 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n ~p:0.3)
      in
      let r = Push_pull.broadcast (Rng.of_int (seed + 1)) g ~source:0 ~max_rounds:1_000_000 in
      r.Push_pull.rounds <> None)

let prop_broadcast_at_least_eccentricity =
  QCheck.Test.make ~name:"rounds >= source eccentricity" ~count:20
    QCheck.(int_range 4 30)
    (fun n ->
      let rng = Rng.of_int (n * 13) in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected rng ~n ~p:0.3)
      in
      let ecc = Paths.eccentricity g 0 in
      (* Information travels one-way legs of >= floor(l/2) per edge, so
         half the eccentricity lower-bounds the rounds. *)
      let r = Push_pull.broadcast (Rng.of_int n) g ~source:0 ~max_rounds:1_000_000 in
      match r.Push_pull.rounds with Some rounds -> rounds >= ecc / 2 | None -> false)

let () =
  Alcotest.run "gossip_pushpull"
    [
      ( "broadcast",
        [
          Alcotest.test_case "clique O(log n)" `Quick test_broadcast_clique_logarithmic;
          Alcotest.test_case "star O(1)" `Quick test_broadcast_star_constant;
          Alcotest.test_case "path needs diameter" `Quick test_broadcast_path_needs_diameter;
          Alcotest.test_case "latency scales rounds" `Quick test_broadcast_latency_scales_rounds;
          Alcotest.test_case "cap" `Quick test_broadcast_cap;
          Alcotest.test_case "history monotone" `Quick test_history_monotone_and_complete;
          Alcotest.test_case "Theorem 12 bound shape" `Slow test_theorem12_bound_holds_with_slack;
          qtest prop_broadcast_always_succeeds_on_connected;
          qtest prop_broadcast_at_least_eccentricity;
        ] );
      ( "all-to-all",
        [
          Alcotest.test_case "clique" `Quick test_all_to_all_clique;
          Alcotest.test_case "ring of cliques" `Quick test_all_to_all_ring_of_cliques;
          Alcotest.test_case "local <= all-to-all" `Quick test_local_broadcast_le_all_to_all;
        ] );
    ]
