(* Tests for gossip_graph: Graph, Gen, Paths. *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let triangle () = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 2); (0, 2, 3) ]

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_basic () =
  let g = triangle () in
  checki "n" 3 (Graph.n g);
  checki "m" 3 (Graph.m g);
  checki "degree" 2 (Graph.degree g 0);
  checki "max degree" 2 (Graph.max_degree g)

let test_graph_neighbors_sorted () =
  let g = Graph.of_edges ~n:4 [ (2, 0, 1); (2, 3, 1); (2, 1, 1) ] in
  let ids = Array.map fst (Graph.neighbors g 2) in
  Alcotest.check (Alcotest.array Alcotest.int) "sorted" [| 0; 1; 3 |] ids

let test_graph_latency () =
  let g = triangle () in
  Alcotest.check (Alcotest.option Alcotest.int) "lat(1,2)" (Some 2) (Graph.latency g 1 2);
  Alcotest.check (Alcotest.option Alcotest.int) "lat(2,1)" (Some 2) (Graph.latency g 2 1);
  checkb "mem" true (Graph.mem_edge g 0 2);
  Alcotest.check (Alcotest.option Alcotest.int) "absent" None
    (Graph.latency (Gen.path 4) 0 3)

let test_graph_validation () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  raises "Graph.of_edges: self-loop" (fun () -> ignore (Graph.of_edges ~n:2 [ (0, 0, 1) ]));
  raises "Graph.of_edges: parallel edge" (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 1, 1); (1, 0, 2) ]));
  raises "Graph.of_edges: latency must be >= 1" (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 1, 0) ]));
  raises "Graph.of_edges: endpoint out of range" (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 2, 1) ]))

let test_graph_edges_listing () =
  let g = triangle () in
  let es = Graph.edges g in
  checki "3 edges" 3 (List.length es);
  List.iter (fun { Graph.u; v; _ } -> checkb "u<v" true (u < v)) es

let test_graph_latency_queries () =
  let g = triangle () in
  checki "max latency" 3 (Graph.max_latency g);
  Alcotest.check (Alcotest.list Alcotest.int) "distinct" [ 1; 2; 3 ]
    (Graph.distinct_latencies g)

let test_graph_subgraph_le () =
  let g = triangle () in
  let s = Graph.subgraph_le g 2 in
  checki "2 edges kept" 2 (Graph.m s);
  checkb "slow edge dropped" false (Graph.mem_edge s 0 2);
  checki "same n" 3 (Graph.n s)

let test_graph_map_latencies () =
  let g = triangle () in
  let doubled = Graph.map_latencies (fun _ _ l -> 2 * l) g in
  Alcotest.check (Alcotest.option Alcotest.int) "doubled" (Some 4) (Graph.latency doubled 1 2)

let test_graph_connectivity () =
  checkb "path connected" true (Graph.is_connected (Gen.path 5));
  checkb "two components" false
    (Graph.is_connected (Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ]));
  checkb "single node" true (Graph.is_connected (Graph.of_edges ~n:1 []))

let test_graph_volume () =
  let g = Gen.star 5 in
  checki "hub volume" 4 (Graph.volume g [ 0 ]);
  checki "leaves volume" 4 (Graph.volume g [ 1; 2; 3; 4 ]);
  checki "total volume" (2 * Graph.m g) (Graph.volume g [ 0; 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Gen *)

let test_gen_clique () =
  let g = Gen.clique 6 in
  checki "edges" 15 (Graph.m g);
  checki "degree" 5 (Graph.max_degree g);
  checkb "connected" true (Graph.is_connected g)

let test_gen_star () =
  let g = Gen.star 7 in
  checki "edges" 6 (Graph.m g);
  checki "hub degree" 6 (Graph.degree g 0);
  checki "leaf degree" 1 (Graph.degree g 3)

let test_gen_path_cycle () =
  let p = Gen.path 5 in
  checki "path edges" 4 (Graph.m p);
  checki "end degree" 1 (Graph.degree p 0);
  let c = Gen.cycle 5 in
  checki "cycle edges" 5 (Graph.m c);
  for v = 0 to 4 do
    checki "cycle degree 2" 2 (Graph.degree c v)
  done

let test_gen_grid_torus () =
  let g = Gen.grid 3 4 in
  checki "grid n" 12 (Graph.n g);
  checki "grid edges" ((2 * 4) + (3 * 3)) (Graph.m g);
  let t = Gen.torus 3 4 in
  for v = 0 to 11 do
    checki "torus 4-regular" 4 (Graph.degree t v)
  done

let test_gen_hypercube () =
  let g = Gen.hypercube 4 in
  checki "n" 16 (Graph.n g);
  for v = 0 to 15 do
    checki "d-regular" 4 (Graph.degree g v)
  done;
  checkb "connected" true (Graph.is_connected g)

let test_gen_binary_tree () =
  let g = Gen.binary_tree 10 in
  checki "edges" 9 (Graph.m g);
  checkb "connected" true (Graph.is_connected g)

let test_gen_erdos_renyi_extremes () =
  let rng = Rng.of_int 1 in
  let full = Gen.erdos_renyi rng ~n:8 ~p:1.0 in
  checki "p=1 is clique" 28 (Graph.m full);
  let empty = Gen.erdos_renyi rng ~n:8 ~p:0.0 in
  checki "p=0 empty" 0 (Graph.m empty)

let test_gen_erdos_renyi_connected () =
  let rng = Rng.of_int 2 in
  let g = Gen.erdos_renyi_connected rng ~n:40 ~p:0.2 in
  checkb "connected" true (Graph.is_connected g)

let test_gen_random_regular () =
  let rng = Rng.of_int 3 in
  let g = Gen.random_regular rng ~n:20 ~d:4 in
  for v = 0 to 19 do
    checki "regular" 4 (Graph.degree g v)
  done

let test_gen_random_regular_validation () =
  let rng = Rng.of_int 4 in
  Alcotest.check_raises "odd product" (Invalid_argument "Gen.random_regular: n*d must be even")
    (fun () -> ignore (Gen.random_regular rng ~n:5 ~d:3))

let test_gen_ring_of_cliques () =
  let g = Gen.ring_of_cliques ~cliques:4 ~size:5 ~bridge_latency:9 in
  checki "n" 20 (Graph.n g);
  checkb "connected" true (Graph.is_connected g);
  checki "max latency is bridge" 9 (Graph.max_latency g);
  (* 4 cliques of C(5,2)=10 edges plus 4 bridges. *)
  checki "edges" 44 (Graph.m g)

let test_gen_dumbbell () =
  let g = Gen.dumbbell ~size:4 ~bridge_latency:5 in
  checki "n" 8 (Graph.n g);
  checki "edges" 13 (Graph.m g);
  Alcotest.check (Alcotest.option Alcotest.int) "bridge" (Some 5) (Graph.latency g 3 4)

let test_gen_latency_specs () =
  let rng = Rng.of_int 5 in
  checki "unit" 1 (Gen.draw_latency rng Gen.Unit);
  checki "fixed" 7 (Gen.draw_latency rng (Gen.Fixed 7));
  for _ = 1 to 200 do
    let u = Gen.draw_latency rng (Gen.Uniform (3, 9)) in
    checkb "uniform range" true (u >= 3 && u <= 9);
    let b = Gen.draw_latency rng (Gen.Bimodal { fast = 1; slow = 50; p_fast = 0.5 }) in
    checkb "bimodal values" true (b = 1 || b = 50);
    let p =
      Gen.draw_latency rng
        (Gen.Power_law { min_latency = 2; max_latency = 100; exponent = 2.0 })
    in
    checkb "power-law range" true (p >= 2 && p <= 100)
  done

let test_gen_with_latencies () =
  let rng = Rng.of_int 6 in
  let g = Gen.with_latencies rng (Gen.Fixed 4) (Gen.cycle 6) in
  checki "structure kept" 6 (Graph.m g);
  Graph.iter_edges (fun e -> checki "latency 4" 4 e.Graph.latency) g

let prop_gen_er_connected =
  QCheck.Test.make ~name:"er_connected always connected" ~count:20
    QCheck.(int_range 5 40)
    (fun n ->
      let rng = Rng.of_int n in
      Graph.is_connected (Gen.erdos_renyi_connected rng ~n ~p:0.4))

(* ------------------------------------------------------------------ *)
(* Paths *)

let test_paths_dijkstra_path_graph () =
  let g = Gen.path 5 in
  let d = Paths.dijkstra g 0 in
  Alcotest.check (Alcotest.array Alcotest.int) "distances" [| 0; 1; 2; 3; 4 |] d

let test_paths_dijkstra_weighted () =
  (* 0-1 lat 10, 0-2 lat 1, 2-1 lat 2: shortest 0->1 is 3 via 2. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 10); (0, 2, 1); (2, 1, 2) ] in
  checki "via detour" 3 (Paths.distance g 0 1)

let test_paths_diameters () =
  let g = Gen.dumbbell ~size:3 ~bridge_latency:5 in
  checki "weighted diameter" 7 (Paths.weighted_diameter g);
  checki "hop diameter" 3 (Paths.hop_diameter g)

let test_paths_eccentricity_radius () =
  let g = Gen.path 5 in
  checki "end ecc" 4 (Paths.eccentricity g 0);
  checki "center ecc" 2 (Paths.eccentricity g 2);
  checki "radius" 2 (Paths.weighted_radius g);
  checki "diameter" 4 (Paths.weighted_diameter g)

let test_paths_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1) ] in
  checki "unreachable" Paths.unreachable (Paths.distance g 0 2);
  checki "diameter unreachable" Paths.unreachable (Paths.weighted_diameter g)

let test_paths_bfs_hops () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 100); (1, 2, 100) ] in
  Alcotest.check (Alcotest.array Alcotest.int) "hops ignore latency" [| 0; 1; 2 |]
    (Paths.bfs_hops g 0)

let test_paths_stretch_identity () =
  let g = Gen.clique 6 in
  Alcotest.check (Alcotest.float 1e-9) "stretch 1" 1.0 (Paths.stretch ~of_:g ~wrt:g)

let test_paths_stretch_star_spanner () =
  (* The star spans the triangle with stretch 2: edge (1,2) must detour
     through the hub. *)
  let g = Gen.clique 3 in
  let s = Gen.star 3 in
  Alcotest.check (Alcotest.float 1e-9) "stretch 2" 2.0 (Paths.stretch ~of_:s ~wrt:g)

let test_paths_stretch_disconnected () =
  let g = Gen.path 3 in
  let s = Graph.of_edges ~n:3 [ (0, 1, 1) ] in
  Alcotest.check (Alcotest.float 0.0) "infinite" infinity (Paths.stretch ~of_:s ~wrt:g)

let prop_paths_triangle_inequality =
  QCheck.Test.make ~name:"dijkstra triangle inequality" ~count:30
    QCheck.(int_range 4 25)
    (fun n ->
      let rng = Rng.of_int (n * 31) in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 10)) (Gen.erdos_renyi_connected rng ~n ~p:0.3)
      in
      let d0 = Paths.dijkstra g 0 in
      let ok = ref true in
      Graph.iter_edges
        (fun { Graph.u; v; latency } ->
          if d0.(v) > d0.(u) + latency || d0.(u) > d0.(v) + latency then ok := false)
        g;
      !ok)

(* ------------------------------------------------------------------ *)
(* Dot *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_dot_undirected () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 7) ] in
  let dot = Gossip_graph.Dot.to_dot ~name:"demo" g in
  checkb "graph header" true (contains dot "graph demo {");
  checkb "fast edge bold" true (contains dot "0 -- 1 [style=bold]");
  checkb "slow edge labelled" true (contains dot "1 -- 2 [style=dashed, label=\"7\"]")

let test_dot_oriented () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 3) ] in
  let out = [| [| (1, 3) |]; [||] |] in
  let dot = Gossip_graph.Dot.oriented_to_dot ~out_edges:out g in
  checkb "digraph" true (contains dot "digraph G {");
  checkb "arc" true (contains dot "0 -> 1 [label=\"3\"]")

let test_dot_size_mismatch () =
  let g = Gen.path 3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Dot.oriented_to_dot: orientation size mismatch")
    (fun () -> ignore (Gossip_graph.Dot.oriented_to_dot ~out_edges:[| [||] |] g))

let () =
  Alcotest.run "gossip_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "neighbors sorted" `Quick test_graph_neighbors_sorted;
          Alcotest.test_case "latency lookup" `Quick test_graph_latency;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "edge listing" `Quick test_graph_edges_listing;
          Alcotest.test_case "latency queries" `Quick test_graph_latency_queries;
          Alcotest.test_case "subgraph_le" `Quick test_graph_subgraph_le;
          Alcotest.test_case "map_latencies" `Quick test_graph_map_latencies;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "volume" `Quick test_graph_volume;
        ] );
      ( "gen",
        [
          Alcotest.test_case "clique" `Quick test_gen_clique;
          Alcotest.test_case "star" `Quick test_gen_star;
          Alcotest.test_case "path/cycle" `Quick test_gen_path_cycle;
          Alcotest.test_case "grid/torus" `Quick test_gen_grid_torus;
          Alcotest.test_case "hypercube" `Quick test_gen_hypercube;
          Alcotest.test_case "binary tree" `Quick test_gen_binary_tree;
          Alcotest.test_case "erdos-renyi extremes" `Quick test_gen_erdos_renyi_extremes;
          Alcotest.test_case "erdos-renyi connected" `Quick test_gen_erdos_renyi_connected;
          Alcotest.test_case "random regular" `Quick test_gen_random_regular;
          Alcotest.test_case "random regular validation" `Quick
            test_gen_random_regular_validation;
          Alcotest.test_case "ring of cliques" `Quick test_gen_ring_of_cliques;
          Alcotest.test_case "dumbbell" `Quick test_gen_dumbbell;
          Alcotest.test_case "latency specs" `Quick test_gen_latency_specs;
          Alcotest.test_case "with_latencies" `Quick test_gen_with_latencies;
          qtest prop_gen_er_connected;
        ] );
      ( "paths",
        [
          Alcotest.test_case "dijkstra path graph" `Quick test_paths_dijkstra_path_graph;
          Alcotest.test_case "dijkstra weighted detour" `Quick test_paths_dijkstra_weighted;
          Alcotest.test_case "diameters" `Quick test_paths_diameters;
          Alcotest.test_case "eccentricity/radius" `Quick test_paths_eccentricity_radius;
          Alcotest.test_case "disconnected" `Quick test_paths_disconnected;
          Alcotest.test_case "bfs hops" `Quick test_paths_bfs_hops;
          Alcotest.test_case "stretch identity" `Quick test_paths_stretch_identity;
          Alcotest.test_case "stretch star spanner" `Quick test_paths_stretch_star_spanner;
          Alcotest.test_case "stretch disconnected" `Quick test_paths_stretch_disconnected;
          qtest prop_paths_triangle_inequality;
        ] );
      ( "dot",
        [
          Alcotest.test_case "undirected" `Quick test_dot_undirected;
          Alcotest.test_case "oriented" `Quick test_dot_oriented;
          Alcotest.test_case "size mismatch" `Quick test_dot_size_mismatch;
        ] );
    ]
