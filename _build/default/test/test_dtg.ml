(* Tests for l-DTG local broadcast (Appendix C / Algorithm 5). *)

module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Dtg = Gossip_core.Dtg
module Rumor = Gossip_core.Rumor

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_local_broadcast_clique () =
  let _, ok = Dtg.local_broadcast (Gen.clique 16) ~max_rounds:100_000 in
  checkb "goal reached" true ok

let test_local_broadcast_grid () =
  let _, ok = Dtg.local_broadcast (Gen.grid 5 5) ~max_rounds:100_000 in
  checkb "goal reached" true ok

let test_local_broadcast_star () =
  let _, ok = Dtg.local_broadcast (Gen.star 20) ~max_rounds:100_000 in
  checkb "goal reached" true ok

let test_local_broadcast_weighted () =
  let rng = Rng.of_int 1 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected rng ~n:24 ~p:0.3) in
  let _, ok = Dtg.local_broadcast g ~max_rounds:1_000_000 in
  checkb "goal reached" true ok

let test_phase_respects_ell () =
  (* Bridge latency 10 must not be crossed by a phase with ell = 1. *)
  let g = Gen.dumbbell ~size:4 ~bridge_latency:10 in
  let r = Dtg.phase g ~ell:1 ~max_rounds:100_000 () in
  checkb "finished" true (r.Dtg.rounds <> None);
  (* Node 3 (bridge endpoint) must not know node 4's rumor. *)
  checkb "bridge not crossed" false (Bitset.mem r.Dtg.sets.(3) 4);
  (* But within the clique everything is known. *)
  checkb "clique known" true (Bitset.mem r.Dtg.sets.(0) 3)

let test_phase_ell_latency_scaling () =
  (* Same topology; ell = 4 phases pad every step to 4 rounds, so the
     run takes ~4x the unit-latency run. *)
  let g = Gen.cycle 12 in
  let r1 = Dtg.phase g ~ell:1 ~max_rounds:100_000 () in
  let g4 = Gen.with_latencies (Rng.of_int 2) (Gen.Fixed 4) (Gen.cycle 12) in
  let r4 = Dtg.phase g4 ~ell:4 ~max_rounds:100_000 () in
  match (r1.Dtg.rounds, r4.Dtg.rounds) with
  | Some a, Some b ->
      checkb "roughly 4x" true (b >= 3 * a && b <= 6 * a)
  | _ -> Alcotest.fail "capped"

let test_phase_chaining_extends_knowledge () =
  (* On a path, one phase gives 1-hop knowledge; t phases give t hops
     (the EID discovery property). *)
  let n = 10 in
  let g = Gen.path n in
  let sets = Rumor.initial g in
  let run_phase () = ignore (Dtg.phase g ~ell:1 ~max_rounds:100_000 ~rumors:sets ()) in
  (* DTG also spreads rumors transitively, so t phases guarantee AT
     LEAST the t-hop neighborhood (possibly more). *)
  let knows_hops t =
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if abs (u - v) <= t && not (Bitset.mem sets.(u) v) then ok := false
      done
    done;
    !ok
  in
  run_phase ();
  checkb "1 hop known" true (knows_hops 1);
  run_phase ();
  checkb "2 hops known after 2 phases" true (knows_hops 2);
  run_phase ();
  checkb "3 hops known after 3 phases" true (knows_hops 3)

let test_phase_rumor_array_validated () =
  let g = Gen.path 3 in
  Alcotest.check_raises "size mismatch" (Invalid_argument "Dtg.phase: rumor array size mismatch")
    (fun () -> ignore (Dtg.phase g ~ell:1 ~max_rounds:10 ~rumors:(Rumor.initial (Gen.path 4)) ()))

let test_phase_cap () =
  let g = Gen.clique 12 in
  let r = Dtg.phase g ~ell:1 ~max_rounds:1 () in
  checkb "capped" true (r.Dtg.rounds = None)

let test_dtg_polylog_shape () =
  (* DTG on a clique should take O(log^2 n) rounds, far below n. *)
  let n = 64 in
  let r, ok = Dtg.local_broadcast (Gen.clique n) ~max_rounds:1_000_000 in
  checkb "ok" true ok;
  match r.Dtg.rounds with
  | Some rounds ->
      let log2n = log (float_of_int n) /. log 2.0 in
      checkb "O(log^2 n) shape" true (float_of_int rounds <= 8.0 *. log2n *. log2n)
  | None -> Alcotest.fail "capped"

let test_isolated_in_gl_terminates () =
  (* With ell below every latency, every node is isolated in G_l and
     the phase ends immediately. *)
  let g = Gen.with_latencies (Rng.of_int 3) (Gen.Fixed 9) (Gen.cycle 8) in
  let r = Dtg.phase g ~ell:1 ~max_rounds:100 () in
  match r.Dtg.rounds with
  | Some rounds ->
      (* Fibers start and finish during the first step. *)
      checki "immediate" 1 rounds
  | None -> Alcotest.fail "capped"

let test_iteration_bound_itrees () =
  (* Appendix C: a node active in iteration i roots a vertex-disjoint
     binomial tree of 2^i nodes, so no node runs more than ~log2 n
     iterations.  Check the measured link counts. *)
  List.iter
    (fun n ->
      let r = Dtg.phase (Gen.clique n) ~ell:1 ~max_rounds:1_000_000 () in
      let log2n =
        let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
        go 0 1
      in
      let worst = Array.fold_left max 0 r.Dtg.link_counts in
      if worst > (2 * log2n) + 2 then
        Alcotest.failf "clique-%d: %d iterations > 2 log n + 2" n worst)
    [ 16; 32; 64; 128 ]

let test_iteration_bound_random () =
  let rng = Rng.of_int 9 in
  let g = Gen.erdos_renyi_connected rng ~n:48 ~p:0.3 in
  let r = Dtg.phase g ~ell:1 ~max_rounds:1_000_000 () in
  let worst = Array.fold_left max 0 r.Dtg.link_counts in
  checkb "O(log n) iterations" true (worst <= 14)

let prop_local_broadcast_on_random_graphs =
  QCheck.Test.make ~name:"dtg local broadcast on random graphs" ~count:15
    QCheck.(pair (int_range 5 30) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 4)) (Gen.erdos_renyi_connected rng ~n ~p:0.35)
      in
      let _, ok = Dtg.local_broadcast g ~max_rounds:1_000_000 in
      ok)

let () =
  Alcotest.run "gossip_dtg"
    [
      ( "local-broadcast",
        [
          Alcotest.test_case "clique" `Quick test_local_broadcast_clique;
          Alcotest.test_case "grid" `Quick test_local_broadcast_grid;
          Alcotest.test_case "star" `Quick test_local_broadcast_star;
          Alcotest.test_case "weighted random" `Quick test_local_broadcast_weighted;
          Alcotest.test_case "polylog shape" `Quick test_dtg_polylog_shape;
          Alcotest.test_case "i-tree iteration bound (clique)" `Quick
            test_iteration_bound_itrees;
          Alcotest.test_case "i-tree iteration bound (random)" `Quick
            test_iteration_bound_random;
          qtest prop_local_broadcast_on_random_graphs;
        ] );
      ( "phase",
        [
          Alcotest.test_case "respects ell" `Quick test_phase_respects_ell;
          Alcotest.test_case "ell scales time" `Quick test_phase_ell_latency_scaling;
          Alcotest.test_case "chaining extends knowledge" `Quick
            test_phase_chaining_extends_knowledge;
          Alcotest.test_case "rumor validation" `Quick test_phase_rumor_array_validated;
          Alcotest.test_case "cap" `Quick test_phase_cap;
          Alcotest.test_case "isolated terminates" `Quick test_isolated_in_gl_terminates;
        ] );
    ]
