(* Tests for the unified algorithm (Theorem 20). *)

module Rng = Gossip_util.Rng
module Gen = Gossip_graph.Gen
module Dis = Gossip_core.Dissemination

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_known_latencies_succeeds () =
  let g = Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:4 in
  let r = Dis.all_to_all (Rng.of_int 1) g ~knowledge:Dis.Known_latencies ~max_rounds:1_000_000 in
  checkb "success" true r.Dis.success;
  checki "no discovery cost" 0 r.Dis.discovery_rounds

let test_unknown_latencies_pays_discovery () =
  let g = Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:4 in
  let r =
    Dis.all_to_all (Rng.of_int 2) g ~knowledge:Dis.Unknown_latencies ~max_rounds:1_000_000
  in
  checkb "success" true r.Dis.success;
  checkb "discovery charged" true (r.Dis.discovery_rounds > 0)

let test_winner_is_minimum () =
  let g = Gen.dumbbell ~size:6 ~bridge_latency:3 in
  let r = Dis.all_to_all (Rng.of_int 3) g ~knowledge:Dis.Known_latencies ~max_rounds:1_000_000 in
  (match (r.Dis.winner, r.Dis.pushpull_rounds) with
  | Dis.Push_pull_won, Some pp ->
      checki "rounds = push-pull" pp r.Dis.rounds;
      checkb "pp <= spanner" true (pp <= r.Dis.spanner_rounds)
  | Dis.Spanner_route_won, Some pp ->
      checki "rounds = spanner" r.Dis.spanner_rounds r.Dis.rounds;
      checkb "spanner < pp" true (r.Dis.spanner_rounds < pp)
  | Dis.Spanner_route_won, None -> checki "rounds = spanner" r.Dis.spanner_rounds r.Dis.rounds
  | Dis.Push_pull_won, None -> Alcotest.fail "push-pull cannot win while capped");
  checkb "success" true r.Dis.success

let test_pushpull_wins_on_expander () =
  (* A clique is the best case for push-pull (l*/phi* small) and the
     worst case for the spanner route's polylog overhead. *)
  let g = Gen.clique 32 in
  let r = Dis.all_to_all (Rng.of_int 4) g ~knowledge:Dis.Known_latencies ~max_rounds:1_000_000 in
  checkb "push-pull wins" true (r.Dis.winner = Dis.Push_pull_won)

let test_capped_pushpull_leaves_spanner () =
  let g = Gen.ring_of_cliques ~cliques:3 ~size:3 ~bridge_latency:8 in
  let r = Dis.all_to_all (Rng.of_int 5) g ~knowledge:Dis.Known_latencies ~max_rounds:1 in
  checkb "spanner wins when pp capped" true (r.Dis.winner = Dis.Spanner_route_won);
  checkb "still succeeds" true r.Dis.success

let () =
  Alcotest.run "gossip_dissemination"
    [
      ( "unified",
        [
          Alcotest.test_case "known latencies" `Quick test_known_latencies_succeeds;
          Alcotest.test_case "unknown pays discovery" `Quick
            test_unknown_latencies_pays_discovery;
          Alcotest.test_case "winner is minimum" `Quick test_winner_is_minimum;
          Alcotest.test_case "push-pull wins on expander" `Quick test_pushpull_wins_on_expander;
          Alcotest.test_case "capped push-pull" `Quick test_capped_pushpull_leaves_spanner;
        ] );
    ]
