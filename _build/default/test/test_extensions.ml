(* Tests for the extension substrates: edge subdivision (footnote 3),
   the greedy spanner baseline, randomized DTG linking, and the
   social-network generators. *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Subdivision = Gossip_graph.Subdivision
module Greedy = Gossip_core.Greedy_spanner
module Dtg = Gossip_core.Dtg
module Rumor = Gossip_core.Rumor

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Subdivision *)

let test_subdivide_unit_graph_identity () =
  let g = Gen.clique 6 in
  let sub = Subdivision.subdivide g in
  checki "same nodes" 6 (Graph.n sub.Subdivision.subdivided);
  checki "same edges" (Graph.m g) (Graph.m sub.Subdivision.subdivided)

let test_subdivide_counts () =
  (* One latency-5 edge becomes 5 unit edges through 4 new nodes. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 5) ] in
  let sub = Subdivision.subdivide g in
  checki "nodes" 6 (Graph.n sub.Subdivision.subdivided);
  checki "edges" 5 (Graph.m sub.Subdivision.subdivided);
  checki "original marker" 2 sub.Subdivision.original_nodes;
  checkb "original" true (Subdivision.is_original sub 1);
  checkb "auxiliary" false (Subdivision.is_original sub 2)

let test_subdivide_latency2 () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 2) ] in
  let sub = Subdivision.subdivide g in
  checki "nodes" 3 (Graph.n sub.Subdivision.subdivided);
  checki "edges" 2 (Graph.m sub.Subdivision.subdivided)

let test_subdivide_preserves_distances () =
  let rng = Rng.of_int 1 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected rng ~n:12 ~p:0.4)
  in
  let sub = Subdivision.subdivide g in
  let s = sub.Subdivision.subdivided in
  for u = 0 to Graph.n g - 1 do
    let dg = Paths.dijkstra g u and ds = Paths.dijkstra s u in
    for v = 0 to Graph.n g - 1 do
      checki "distance preserved" dg.(v) ds.(v)
    done
  done

let test_subdivide_all_unit_latencies () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 3); (1, 2, 4) ] in
  let sub = Subdivision.subdivide g in
  Graph.iter_edges
    (fun e -> checki "unit" 1 e.Graph.latency)
    sub.Subdivision.subdivided

let prop_subdivision_size =
  QCheck.Test.make ~name:"subdivision node/edge counts" ~count:30
    QCheck.(pair (int_range 4 15) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 8)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      let total_latency =
        List.fold_left (fun acc e -> acc + e.Graph.latency) 0 (Graph.edges g)
      in
      let sub = Subdivision.subdivide g in
      Graph.m sub.Subdivision.subdivided = total_latency
      && Graph.n sub.Subdivision.subdivided = n + total_latency - Graph.m g)

(* ------------------------------------------------------------------ *)
(* Greedy spanner *)

let test_greedy_r1_keeps_everything () =
  (* r = 1: an edge is kept unless an equal-or-shorter path exists;
     on a clique with distinct weights nothing shortcuts exactly, so
     most edges stay — specifically all edges on a unit clique form
     triangles of length 2 > 1, so all are kept. *)
  let g = Gen.clique 5 in
  let t = Greedy.build g ~r:1 in
  checki "keeps all" (Graph.m g) (Greedy.edge_count t)

let test_greedy_r3_on_clique () =
  (* r = 3 on a unit clique: after a spanning structure exists, every
     remaining edge has a 2-hop detour (length 2 <= 3), so the result
     is sparse. *)
  let g = Gen.clique 12 in
  let t = Greedy.build g ~r:3 in
  checkb "sparse" true (Greedy.edge_count t < Graph.m g / 2);
  checkb "stretch honored" true (Greedy.stretch t <= 3.0 +. 1e-9)

let test_greedy_stretch_guarantee_weighted () =
  let rng = Rng.of_int 2 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 9)) (Gen.erdos_renyi_connected rng ~n:30 ~p:0.4)
  in
  List.iter
    (fun r ->
      let t = Greedy.build g ~r in
      if Greedy.stretch t > float_of_int r +. 1e-9 then
        Alcotest.failf "stretch %f exceeds r=%d" (Greedy.stretch t) r)
    [ 1; 3; 5; 7 ]

let test_greedy_connectivity () =
  let rng = Rng.of_int 3 in
  let g = Gen.erdos_renyi_connected rng ~n:25 ~p:0.3 in
  let t = Greedy.build g ~r:5 in
  checkb "connected" true (Graph.is_connected t.Greedy.spanner)

let test_greedy_invalid () =
  Alcotest.check_raises "r=0" (Invalid_argument "Greedy_spanner.build: need r >= 1") (fun () ->
      ignore (Greedy.build (Gen.path 3) ~r:0))

let prop_greedy_never_larger_than_base =
  QCheck.Test.make ~name:"greedy spanner subset of base" ~count:20
    QCheck.(pair (int_range 5 20) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      let t = Greedy.build g ~r:3 in
      Greedy.edge_count t <= Graph.m g
      && List.for_all
           (fun { Graph.u; v; latency } -> Graph.latency g u v = Some latency)
           (Graph.edges t.Greedy.spanner))

(* ------------------------------------------------------------------ *)
(* Randomized DTG linking *)

let test_dtg_random_linking_completes () =
  List.iter
    (fun (name, g) ->
      let r =
        Dtg.phase g ~ell:(Graph.max_latency g) ~max_rounds:1_000_000
          ~link_rng:(Rng.of_int 7) ()
      in
      (match r.Dtg.rounds with
      | Some _ -> ()
      | None -> Alcotest.failf "%s capped" name);
      if not (Rumor.local_broadcast_done g r.Dtg.sets) then
        Alcotest.failf "%s incomplete" name)
    [
      ("clique", Gen.clique 12);
      ("grid", Gen.grid 4 4);
      ("star", Gen.star 15);
      ("weighted cycle", Gen.with_latencies (Rng.of_int 4) (Gen.Uniform (1, 3)) (Gen.cycle 10));
    ]

let test_dtg_random_linking_deterministic_given_seed () =
  let g = Gen.grid 4 4 in
  let run () =
    let r = Dtg.phase g ~ell:1 ~max_rounds:100_000 ~link_rng:(Rng.of_int 11) () in
    r.Dtg.rounds
  in
  Alcotest.check (Alcotest.option Alcotest.int) "replayable" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Social-network generators *)

let test_ba_basic () =
  let g = Gen.barabasi_albert (Rng.of_int 5) ~n:100 ~attach:3 in
  checki "n" 100 (Graph.n g);
  checkb "connected" true (Graph.is_connected g);
  (* Seed clique C(4,2) = 6 edges plus 3 per new node. *)
  checki "edges" (6 + (3 * 96)) (Graph.m g)

let test_ba_degree_skew () =
  (* Preferential attachment produces hubs: the max degree should far
     exceed the minimum (which is >= attach). *)
  let g = Gen.barabasi_albert (Rng.of_int 6) ~n:300 ~attach:2 in
  let min_deg = ref max_int in
  for v = 0 to 299 do
    min_deg := min !min_deg (Graph.degree g v)
  done;
  checkb "min degree >= attach" true (!min_deg >= 2);
  checkb "hub exists" true (Graph.max_degree g >= 5 * !min_deg)

let test_ba_validation () =
  Alcotest.check_raises "attach >= n"
    (Invalid_argument "Gen.barabasi_albert: need n > attach >= 1") (fun () ->
      ignore (Gen.barabasi_albert (Rng.of_int 7) ~n:3 ~attach:3))

let test_ws_basic () =
  let g = Gen.watts_strogatz (Rng.of_int 8) ~n:40 ~k:3 ~beta:0.0 in
  checki "n" 40 (Graph.n g);
  (* beta = 0: the pristine ring lattice, n*k edges, 2k-regular. *)
  checki "edges" (40 * 3) (Graph.m g);
  for v = 0 to 39 do
    checki "2k-regular" 6 (Graph.degree g v)
  done

let test_ws_rewiring_changes_structure () =
  let lattice = Gen.watts_strogatz (Rng.of_int 9) ~n:60 ~k:2 ~beta:0.0 in
  let rewired = Gen.watts_strogatz (Rng.of_int 9) ~n:60 ~k:2 ~beta:0.5 in
  checki "edge count preserved" (Graph.m lattice) (Graph.m rewired);
  (* Shortcuts shrink the diameter. *)
  checkb "small world" true
    (Graph.is_connected rewired
    && Paths.hop_diameter rewired < Paths.hop_diameter lattice)

let test_ws_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Gen.watts_strogatz: need n > 2k >= 2")
    (fun () -> ignore (Gen.watts_strogatz (Rng.of_int 10) ~n:6 ~k:3 ~beta:0.1))

let prop_ba_connected =
  QCheck.Test.make ~name:"BA graphs always connected" ~count:20
    QCheck.(pair (int_range 10 100) (int_range 0 1000))
    (fun (n, seed) ->
      Graph.is_connected (Gen.barabasi_albert (Rng.of_int seed) ~n ~attach:2))

let () =
  Alcotest.run "gossip_extensions"
    [
      ( "subdivision",
        [
          Alcotest.test_case "unit identity" `Quick test_subdivide_unit_graph_identity;
          Alcotest.test_case "counts" `Quick test_subdivide_counts;
          Alcotest.test_case "latency 2" `Quick test_subdivide_latency2;
          Alcotest.test_case "preserves distances" `Quick test_subdivide_preserves_distances;
          Alcotest.test_case "unit latencies" `Quick test_subdivide_all_unit_latencies;
          qtest prop_subdivision_size;
        ] );
      ( "greedy-spanner",
        [
          Alcotest.test_case "r=1" `Quick test_greedy_r1_keeps_everything;
          Alcotest.test_case "r=3 clique" `Quick test_greedy_r3_on_clique;
          Alcotest.test_case "stretch guarantee" `Quick test_greedy_stretch_guarantee_weighted;
          Alcotest.test_case "connectivity" `Quick test_greedy_connectivity;
          Alcotest.test_case "invalid" `Quick test_greedy_invalid;
          qtest prop_greedy_never_larger_than_base;
        ] );
      ( "dtg-linking",
        [
          Alcotest.test_case "random completes" `Quick test_dtg_random_linking_completes;
          Alcotest.test_case "replayable" `Quick test_dtg_random_linking_deterministic_given_seed;
        ] );
      ( "generators",
        [
          Alcotest.test_case "BA basic" `Quick test_ba_basic;
          Alcotest.test_case "BA degree skew" `Quick test_ba_degree_skew;
          Alcotest.test_case "BA validation" `Quick test_ba_validation;
          Alcotest.test_case "WS basic" `Quick test_ws_basic;
          Alcotest.test_case "WS rewiring" `Quick test_ws_rewiring_changes_structure;
          Alcotest.test_case "WS validation" `Quick test_ws_validation;
          qtest prop_ba_connected;
        ] );
    ]
