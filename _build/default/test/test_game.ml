(* Tests for the guessing game (Section 3.1) and Alice strategies
   (Lemmas 4-5). *)

module Rng = Gossip_util.Rng
module Game = Gossip_game.Game
module Strategies = Gossip_game.Strategies

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_create_and_accessors () =
  let g = Game.create ~m:5 ~target:[ (1, 2); (3, 2); (0, 4) ] in
  checki "m" 5 (Game.m g);
  checki "size" 3 (Game.target_size g);
  Alcotest.check (Alcotest.list Alcotest.int) "T1^B" [ 2; 4 ] (Game.initial_target_b g);
  checkb "not solved" false (Game.is_solved g)

let test_empty_target_solved () =
  let g = Game.create ~m:4 ~target:[] in
  checkb "solved at start" true (Game.is_solved g)

let test_pair_validation () =
  Alcotest.check_raises "range" (Invalid_argument "Game: pair index out of range") (fun () ->
      ignore (Game.create ~m:3 ~target:[ (3, 0) ]))

let test_guess_hit_and_miss () =
  let g = Game.create ~m:4 ~target:[ (1, 1) ] in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "miss" [] (Game.guess g [ (0, 0); (2, 2) ]);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "hit" [ (1, 1) ]
    (Game.guess g [ (1, 1) ]);
  checkb "solved" true (Game.is_solved g)

let test_eq2_b_component_removal () =
  (* Hitting (0, 1) must also remove (2, 1) and (3, 1) (same B side),
     but not (0, 0). *)
  let g = Game.create ~m:4 ~target:[ (0, 1); (2, 1); (3, 1); (0, 0) ] in
  let hits = Game.guess g [ (0, 1) ] in
  checki "one hit" 1 (List.length hits);
  checki "only (0,0) remains" 1 (Game.target_size g);
  let hits2 = Game.guess g [ (2, 1) ] in
  checki "removed pair no longer hits" 0 (List.length hits2);
  ignore (Game.guess g [ (0, 0) ]);
  checkb "solved" true (Game.is_solved g)

let test_counters () =
  let g = Game.create ~m:3 ~target:[ (0, 0) ] in
  ignore (Game.guess g [ (1, 1); (2, 2) ]);
  ignore (Game.guess g [ (0, 0) ]);
  checki "rounds" 2 (Game.rounds_played g);
  checki "guesses" 3 (Game.total_guesses g)

let test_guess_budget () =
  let g = Game.create ~m:2 ~target:[ (0, 0) ] in
  Alcotest.check_raises "over 2m" (Invalid_argument "Game.guess: more than 2m guesses")
    (fun () -> ignore (Game.guess g [ (0, 0); (0, 1); (1, 0); (1, 1); (0, 0) ]))

let test_guess_after_solved () =
  let g = Game.create ~m:2 ~target:[ (0, 0) ] in
  ignore (Game.guess g [ (0, 0) ]);
  Alcotest.check_raises "solved" (Invalid_argument "Game.guess: game already solved")
    (fun () -> ignore (Game.guess g [ (1, 1) ]))

(* ------------------------------------------------------------------ *)
(* Strategies *)

let solve strategy ~m ~target ~seed =
  let rng = Rng.of_int seed in
  let game = Game.create ~m ~target in
  strategy rng game ~max_rounds:100_000

let test_all_strategies_solve_singleton () =
  List.iter
    (fun (name, strategy) ->
      match solve strategy ~m:16 ~target:[ (7, 9) ] ~seed:3 with
      | Some _ -> ()
      | None -> Alcotest.failf "%s failed on singleton" name)
    Strategies.all

let test_sequential_scan_exact_rounds () =
  (* Pair (a, b) sits at index a*m + b of the scan; 2m guesses per
     round. *)
  let m = 10 in
  match solve Strategies.sequential_scan ~m ~target:[ (7, 3) ] ~seed:0 with
  | Some o -> checki "rounds = ceil((a*m+b+1)/2m)" (((7 * m) + 3) / (2 * m) + 1) o.Strategies.rounds
  | None -> Alcotest.fail "no solve"

let test_sequential_scan_worst_case_omega_m () =
  (* Lemma 4 shape: the worst-case singleton costs ~m/2 rounds. *)
  let m = 20 in
  match solve Strategies.sequential_scan ~m ~target:[ (m - 1, m - 1) ] ~seed:0 with
  | Some o -> checkb "Omega(m) rounds" true (o.Strategies.rounds >= m / 2)
  | None -> Alcotest.fail "no solve"

let test_fresh_pairs_never_repeats () =
  (* On a dense target the adaptive strategy needs very few rounds. *)
  let rng = Rng.of_int 5 in
  let target = Gossip_graph.Gadgets.random_p_target rng ~m:16 ~p:0.5 in
  match solve Strategies.fresh_pairs ~m:16 ~target ~seed:6 with
  | Some o -> checkb "few rounds on dense target" true (o.Strategies.rounds <= 8)
  | None -> Alcotest.fail "no solve"

let test_cap_returns_none () =
  let rng = Rng.of_int 7 in
  let game = Game.create ~m:8 ~target:[ (0, 0) ] in
  checkb "capped" true (Strategies.random_guessing rng game ~max_rounds:0 = None)

let mean_rounds strategy ~m ~p ~trials =
  let total = ref 0 in
  for seed = 1 to trials do
    let rng = Rng.of_int (seed * 1237) in
    let target = Gossip_graph.Gadgets.random_p_target rng ~m ~p in
    let game = Game.create ~m ~target in
    match strategy (Rng.of_int seed) game ~max_rounds:1_000_000 with
    | Some o -> total := !total + o.Strategies.rounds
    | None -> Alcotest.fail "strategy capped"
  done;
  float_of_int !total /. float_of_int trials

let test_lemma5_random_needs_log_factor_more () =
  (* Lemma 5: general (fresh-pairs) ~ 1/p rounds; oblivious random
     guessing ~ log m / p.  With m = 64, log m ~ 4: random guessing
     should cost at least twice as many rounds. *)
  let m = 64 and p = 0.1 in
  let fresh = mean_rounds Strategies.fresh_pairs ~m ~p ~trials:10 in
  let rand = mean_rounds Strategies.random_guessing ~m ~p ~trials:10 in
  checkb "random >= 2x fresh" true (rand >= 2.0 *. fresh)

let test_lemma5_scaling_in_p () =
  (* Halving p should roughly double fresh-pairs rounds (Theta(1/p)). *)
  let m = 64 in
  let r1 = mean_rounds Strategies.fresh_pairs ~m ~p:0.2 ~trials:10 in
  let r2 = mean_rounds Strategies.fresh_pairs ~m ~p:0.05 ~trials:10 in
  checkb "rounds grow with 1/p" true (r2 >= 2.0 *. r1)

let prop_strategies_always_solve =
  QCheck.Test.make ~name:"strategies solve random targets" ~count:30
    QCheck.(pair (int_range 4 20) (int_range 0 1000))
    (fun (m, seed) ->
      let rng = Rng.of_int seed in
      let target = Gossip_graph.Gadgets.random_p_target rng ~m ~p:0.3 in
      List.for_all
        (fun (_, strategy) ->
          let game = Game.create ~m ~target in
          match strategy (Rng.of_int (seed + 1)) game ~max_rounds:1_000_000 with
          | Some _ -> true
          | None -> target = [])
        Strategies.all)

let prop_target_monotone_nonincreasing =
  QCheck.Test.make ~name:"target size never grows" ~count:50
    QCheck.(pair (int_range 3 12) (int_range 0 1000))
    (fun (m, seed) ->
      let rng = Rng.of_int seed in
      let target = Gossip_graph.Gadgets.random_p_target rng ~m ~p:0.4 in
      let game = Game.create ~m ~target in
      let ok = ref true in
      let rounds = ref 0 in
      while (not (Game.is_solved game)) && !rounds < 1000 do
        let before = Game.target_size game in
        let guesses = List.init (2 * m) (fun _ -> (Rng.int rng m, Rng.int rng m)) in
        let (_ : Game.pair list) = Game.guess game guesses in
        if Game.target_size game > before then ok := false;
        incr rounds
      done;
      !ok)

let () =
  Alcotest.run "gossip_game"
    [
      ( "game",
        [
          Alcotest.test_case "create/accessors" `Quick test_create_and_accessors;
          Alcotest.test_case "empty target" `Quick test_empty_target_solved;
          Alcotest.test_case "pair validation" `Quick test_pair_validation;
          Alcotest.test_case "hit/miss" `Quick test_guess_hit_and_miss;
          Alcotest.test_case "Eq. 2 removal" `Quick test_eq2_b_component_removal;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "guess budget" `Quick test_guess_budget;
          Alcotest.test_case "guess after solved" `Quick test_guess_after_solved;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "all solve singleton" `Quick test_all_strategies_solve_singleton;
          Alcotest.test_case "sequential exact rounds" `Quick test_sequential_scan_exact_rounds;
          Alcotest.test_case "sequential Omega(m) (Lemma 4)" `Quick
            test_sequential_scan_worst_case_omega_m;
          Alcotest.test_case "fresh pairs dense" `Quick test_fresh_pairs_never_repeats;
          Alcotest.test_case "cap returns None" `Quick test_cap_returns_none;
          Alcotest.test_case "Lemma 5: random vs fresh" `Slow
            test_lemma5_random_needs_log_factor_more;
          Alcotest.test_case "Lemma 5: 1/p scaling" `Slow test_lemma5_scaling_in_p;
          qtest prop_strategies_always_solve;
          qtest prop_target_monotone_nonincreasing;
        ] );
    ]
