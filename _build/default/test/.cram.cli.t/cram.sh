  $ gossip-cli analyze --family dumbbell --size 4 --bridge 6
  $ gossip-cli run --algorithm push-pull --family clique --nodes 16 --seed 5
  $ gossip-cli run --algorithm path-discovery --family cycle --nodes 9
  $ gossip-cli run --algorithm push-pull --family star --nodes 16 --capacity 1
  $ gossip-cli game --side 16 --strategy sequential-scan --seed 2
  $ gossip-cli reduce --side 12 --prob 0.2 --seed 3
  $ gossip-cli gadget --which g-p --side 4 --phi 0.3 --seed 4
  $ gossip-cli spanner --family clique --nodes 24 --stretch-k 3 --seed 6
