(* Tests for flooding baselines, including the footnote-2 star
   separation (push-only vs push-pull). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Flooding = Gossip_core.Flooding
module Push_pull = Gossip_core.Push_pull

let checkb = Alcotest.check Alcotest.bool

let rounds_of r =
  match r.Flooding.rounds with Some x -> x | None -> Alcotest.fail "capped"

let test_push_only_star_linear () =
  (* The hub must serve each leaf; blocking push takes ~(n-1) * D. *)
  let n = 20 and d = 5 in
  let g = Gen.with_latencies (Rng.of_int 1) (Gen.Fixed d) (Gen.star n) in
  let r = Flooding.push_round_robin g ~source:0 ~blocking:true ~max_rounds:100_000 in
  checkb "Omega(n*D) on star" true (rounds_of r >= (n - 2) * d)

let test_push_only_nonblocking_faster () =
  let n = 20 and d = 5 in
  let g = Gen.with_latencies (Rng.of_int 2) (Gen.Fixed d) (Gen.star n) in
  let blocking = Flooding.push_round_robin g ~source:0 ~blocking:true ~max_rounds:100_000 in
  let pipelined = Flooding.push_round_robin g ~source:0 ~blocking:false ~max_rounds:100_000 in
  checkb "pipelining helps" true (rounds_of pipelined < rounds_of blocking);
  checkb "nonblocking ~ n + D" true (rounds_of pipelined <= n + d + 2)

let test_push_pull_beats_push_only_on_star () =
  (* Footnote 2: with pull, the star broadcast is O(D); push-only is
     Omega(n). *)
  let n = 40 and d = 3 in
  let g = Gen.with_latencies (Rng.of_int 3) (Gen.Fixed d) (Gen.star n) in
  let push_only = Flooding.push_round_robin g ~source:0 ~blocking:true ~max_rounds:1_000_000 in
  let pp = Push_pull.broadcast (Rng.of_int 3) g ~source:0 ~max_rounds:1_000_000 in
  let pp_rounds = match pp.Push_pull.rounds with Some x -> x | None -> max_int in
  checkb "push-pull much faster" true (10 * pp_rounds < rounds_of push_only)

let test_push_only_leaf_source () =
  (* A leaf source must first inform the hub, then the hub serves. *)
  let g = Gen.star 10 in
  let r = Flooding.push_round_robin g ~source:3 ~blocking:true ~max_rounds:10_000 in
  checkb "completes" true (r.Flooding.rounds <> None)

let test_flood_all_path () =
  let g = Gen.path 12 in
  let r = Flooding.flood_all g ~max_rounds:10_000 in
  checkb "completes" true (r.Flooding.rounds <> None)

let test_flood_all_respects_latency () =
  let fast = Gen.cycle 10 in
  let slow = Gen.with_latencies (Rng.of_int 4) (Gen.Fixed 7) (Gen.cycle 10) in
  let rf = Flooding.flood_all fast ~max_rounds:100_000 in
  let rs = Flooding.flood_all slow ~max_rounds:100_000 in
  checkb "slower with latency" true (rounds_of rs > rounds_of rf)

let test_flood_all_cap () =
  let r = Flooding.flood_all (Gen.path 30) ~max_rounds:2 in
  checkb "capped" true (r.Flooding.rounds = None)

let () =
  Alcotest.run "gossip_flooding"
    [
      ( "push-only",
        [
          Alcotest.test_case "star Omega(nD) blocking" `Quick test_push_only_star_linear;
          Alcotest.test_case "nonblocking pipelining" `Quick test_push_only_nonblocking_faster;
          Alcotest.test_case "push-pull beats push-only" `Quick
            test_push_pull_beats_push_only_on_star;
          Alcotest.test_case "leaf source" `Quick test_push_only_leaf_source;
        ] );
      ( "flood-all",
        [
          Alcotest.test_case "path" `Quick test_flood_all_path;
          Alcotest.test_case "latency slows" `Quick test_flood_all_respects_latency;
          Alcotest.test_case "cap" `Quick test_flood_all_cap;
        ] );
    ]
