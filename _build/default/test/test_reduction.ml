(* Tests for the gossip-to-game reduction (Lemma 3). *)

module Rng = Gossip_util.Rng
module Gadgets = Gossip_graph.Gadgets
module Reduction = Gossip_core.Reduction

let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

let test_game_solved_before_broadcast_singleton () =
  let rng = Rng.of_int 1 in
  let target = Gadgets.singleton_target rng ~m:12 in
  let o =
    Reduction.simulate_push_pull rng ~m:12 ~target ~fast_latency:1 ~symmetric:false
      ~max_rounds:10_000
  in
  checkb "lemma 3 holds" true o.Reduction.lemma3_holds;
  checkb "broadcast finished" true (o.Reduction.broadcast_rounds <> None)

let test_game_solved_before_broadcast_random_p () =
  let rng = Rng.of_int 2 in
  let target = Gadgets.random_p_target rng ~m:16 ~p:0.2 in
  let o =
    Reduction.simulate_push_pull rng ~m:16 ~target ~fast_latency:1 ~symmetric:false
      ~max_rounds:10_000
  in
  checkb "lemma 3 holds" true o.Reduction.lemma3_holds

let test_symmetric_gadget () =
  let rng = Rng.of_int 3 in
  let target = Gadgets.random_p_target rng ~m:10 ~p:0.3 in
  let o =
    Reduction.simulate_push_pull rng ~m:10 ~target ~fast_latency:1 ~symmetric:true
      ~max_rounds:10_000
  in
  checkb "lemma 3 holds on Gsym" true o.Reduction.lemma3_holds

let test_guess_budget_respected () =
  (* Push-pull submits at most 2m guesses per round: total guesses are
     bounded by 2m * game rounds. *)
  let rng = Rng.of_int 4 in
  let m = 10 in
  let target = Gadgets.random_p_target rng ~m ~p:0.3 in
  let o =
    Reduction.simulate_push_pull rng ~m ~target ~fast_latency:1 ~symmetric:false
      ~max_rounds:10_000
  in
  match o.Reduction.game_rounds with
  | Some gr -> checkb "2m budget" true (o.Reduction.guesses_submitted <= 2 * m * max 1 gr)
  | None -> Alcotest.fail "game unsolved"

let test_empty_target_trivial () =
  let rng = Rng.of_int 5 in
  let o =
    Reduction.simulate_push_pull rng ~m:8 ~target:[] ~fast_latency:1 ~symmetric:false
      ~max_rounds:5_000
  in
  Alcotest.check (Alcotest.option Alcotest.int) "solved at 0" (Some 0) o.Reduction.game_rounds

let prop_lemma3_many_seeds =
  QCheck.Test.make ~name:"lemma 3 across seeds" ~count:10
    QCheck.(pair (int_range 6 16) (int_range 0 1000))
    (fun (m, seed) ->
      let rng = Rng.of_int seed in
      let target = Gadgets.random_p_target rng ~m ~p:0.25 in
      let o =
        Reduction.simulate_push_pull rng ~m ~target ~fast_latency:1 ~symmetric:false
          ~max_rounds:50_000
      in
      o.Reduction.lemma3_holds)

let () =
  Alcotest.run "gossip_reduction"
    [
      ( "reduction",
        [
          Alcotest.test_case "singleton target" `Quick
            test_game_solved_before_broadcast_singleton;
          Alcotest.test_case "random_p target" `Quick test_game_solved_before_broadcast_random_p;
          Alcotest.test_case "symmetric gadget" `Quick test_symmetric_gadget;
          Alcotest.test_case "guess budget" `Quick test_guess_budget_respected;
          Alcotest.test_case "empty target" `Quick test_empty_target_trivial;
          qtest prop_lemma3_many_seeds;
        ] );
    ]
