(* Tests for EID / General EID and the Termination Check (Section 5,
   Theorems 14 & 19, Lemma 18). *)

module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Eid = Gossip_core.Eid
module Tc = Gossip_core.Termination_check
module Rumor = Gossip_core.Rumor

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let full_out g = Array.init (Graph.n g) (fun u -> Graph.neighbors g u)

(* ------------------------------------------------------------------ *)
(* Termination check *)

let test_check_passes_when_complete () =
  let g = Gen.cycle 8 in
  let sets = Array.init 8 (fun _ -> Bitset.full 8) in
  let r = Tc.run ~base:g ~out_edges:(full_out g) ~k:(Paths.weighted_diameter g) ~sets in
  checkb "no failure" false (Array.exists (fun f -> f) r.Tc.failed);
  checkb "unanimous" true r.Tc.unanimous

let test_check_fails_on_missing_neighbor () =
  let g = Gen.cycle 8 in
  let sets = Rumor.initial g in
  (* Singletons: every node is missing both neighbors. *)
  let r = Tc.run ~base:g ~out_edges:(full_out g) ~k:(Paths.weighted_diameter g) ~sets in
  checkb "fails" true (Array.for_all (fun f -> f) r.Tc.failed);
  checkb "unanimous" true r.Tc.unanimous

let test_check_fails_on_unequal_sets () =
  (* Every node knows its neighbors (no flags) but node 0 knows more:
     fingerprint mismatch must flood. *)
  let g = Gen.cycle 6 in
  let sets =
    Array.init 6 (fun u -> Bitset.of_list 6 [ (u + 5) mod 6; u; (u + 1) mod 6 ])
  in
  Bitset.add sets.(0) 3;
  let r = Tc.run ~base:g ~out_edges:(full_out g) ~k:(Paths.weighted_diameter g) ~sets in
  checkb "fails" true (Array.exists (fun f -> f) r.Tc.failed);
  checkb "unanimous (Lemma 18)" true r.Tc.unanimous

let test_check_does_not_modify_sets () =
  let g = Gen.cycle 6 in
  let sets = Rumor.initial g in
  let before = Array.map Bitset.copy sets in
  ignore (Tc.run ~base:g ~out_edges:(full_out g) ~k:3 ~sets);
  Array.iteri (fun i s -> checkb "unchanged" true (Bitset.equal s before.(i))) sets

(* ------------------------------------------------------------------ *)
(* EID with known diameter *)

let known_d_families =
  [
    ("cycle", Gen.cycle 10);
    ("grid", Gen.grid 4 4);
    ("ring-of-cliques", Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:4);
    ("dumbbell", Gen.dumbbell ~size:5 ~bridge_latency:3);
  ]

let test_eid_known_diameter_succeeds () =
  List.iter
    (fun (name, g) ->
      let d = Paths.weighted_diameter g in
      let r = Eid.run_known_diameter (Rng.of_int 11) g ~d () in
      if not r.Eid.success then Alcotest.failf "%s: EID(D) failed" name)
    known_d_families

let test_eid_attempt_breakdown () =
  let g = Gen.cycle 10 in
  let d = Paths.weighted_diameter g in
  let r = Eid.run_known_diameter (Rng.of_int 12) g ~d () in
  checki "one attempt" 1 (List.length r.Eid.attempts);
  let a = List.hd r.Eid.attempts in
  checkb "discovery counted" true (a.Eid.discovery_rounds > 0);
  checkb "rr counted" true (a.Eid.rr_rounds > 0);
  checki "total is the sum" (a.Eid.discovery_rounds + a.Eid.rr_rounds) r.Eid.rounds

let test_eid_small_d_fails_cleanly () =
  (* d = 1 on a latency-5 cycle: G_1 is edgeless; dissemination cannot
     complete. *)
  let g = Gen.with_latencies (Rng.of_int 13) (Gen.Fixed 5) (Gen.cycle 8) in
  let r = Eid.run_known_diameter (Rng.of_int 13) g ~d:1 () in
  checkb "no success" false r.Eid.success

(* ------------------------------------------------------------------ *)
(* General EID (unknown diameter) *)

let test_general_eid_succeeds () =
  List.iter
    (fun (name, g) ->
      let r = Eid.run (Rng.of_int 14) g () in
      if not r.Eid.success then Alcotest.failf "%s: General EID failed" name;
      if not r.Eid.unanimous then Alcotest.failf "%s: verdicts not unanimous" name)
    known_d_families

let test_general_eid_k_final_bounded () =
  (* Guess-and-double never overshoots 2D (with the next-power slack). *)
  let g = Gen.ring_of_cliques ~cliques:4 ~size:3 ~bridge_latency:5 in
  let d = Paths.weighted_diameter g in
  let r = Eid.run (Rng.of_int 15) g () in
  checkb "k_final <= 2 * next_pow2(D)" true (r.Eid.k_final <= 4 * d);
  checkb "success" true r.Eid.success

let test_general_eid_attempts_double () =
  let g = Gen.dumbbell ~size:4 ~bridge_latency:6 in
  let r = Eid.run (Rng.of_int 16) g () in
  let ks = List.map (fun a -> a.Eid.k) r.Eid.attempts in
  let rec doubling = function
    | a :: (b :: _ as rest) -> b = 2 * a && doubling rest
    | _ -> true
  in
  checkb "estimates double" true (doubling ks);
  checki "starts at 1" 1 (List.hd ks)

let test_general_eid_weighted_random () =
  let rng = Rng.of_int 17 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n:20 ~p:0.3)
  in
  let r = Eid.run (Rng.of_int 18) g () in
  checkb "success" true r.Eid.success;
  checkb "all-to-all" true (Rumor.all_to_all_done r.Eid.sets)

let test_general_eid_charges_checks () =
  (* Every general-EID attempt pays for its termination check. *)
  let g = Gen.dumbbell ~size:4 ~bridge_latency:6 in
  let r = Eid.run (Rng.of_int 19) g () in
  List.iter
    (fun a -> checkb "check rounds charged" true (a.Eid.check_rounds > 0))
    r.Eid.attempts;
  (* The total is the sum of the per-attempt parts. *)
  let total =
    List.fold_left
      (fun acc a -> acc + a.Eid.discovery_rounds + a.Eid.rr_rounds + a.Eid.check_rounds)
      0 r.Eid.attempts
  in
  checki "total is the sum of attempts" total r.Eid.rounds

let test_eid_n_hat_overestimate () =
  (* Lemma 13: a polynomial overestimate still succeeds, just slower. *)
  let g = Gen.cycle 12 in
  let exactish = Eid.run (Rng.of_int 20) g () in
  let over = Eid.run (Rng.of_int 20) g ~n_hat:(12 * 12) () in
  checkb "both succeed" true (exactish.Eid.success && over.Eid.success);
  checkb "overestimate costs more rounds" true (over.Eid.rounds >= exactish.Eid.rounds)

let prop_general_eid_on_random_graphs =
  QCheck.Test.make ~name:"General EID succeeds on random weighted graphs" ~count:8
    QCheck.(pair (int_range 6 16) (int_range 0 100))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 4)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      let r = Eid.run (Rng.of_int (seed + 500)) g () in
      r.Eid.success && r.Eid.unanimous)

let () =
  Alcotest.run "gossip_eid"
    [
      ( "termination-check",
        [
          Alcotest.test_case "passes when complete" `Quick test_check_passes_when_complete;
          Alcotest.test_case "fails on missing neighbor" `Quick
            test_check_fails_on_missing_neighbor;
          Alcotest.test_case "fails on unequal sets" `Quick test_check_fails_on_unequal_sets;
          Alcotest.test_case "does not modify sets" `Quick test_check_does_not_modify_sets;
        ] );
      ( "eid-known-d",
        [
          Alcotest.test_case "succeeds" `Quick test_eid_known_diameter_succeeds;
          Alcotest.test_case "attempt breakdown" `Quick test_eid_attempt_breakdown;
          Alcotest.test_case "small d fails cleanly" `Quick test_eid_small_d_fails_cleanly;
        ] );
      ( "general-eid",
        [
          Alcotest.test_case "succeeds" `Quick test_general_eid_succeeds;
          Alcotest.test_case "k_final bounded" `Quick test_general_eid_k_final_bounded;
          Alcotest.test_case "attempts double" `Quick test_general_eid_attempts_double;
          Alcotest.test_case "weighted random" `Quick test_general_eid_weighted_random;
          Alcotest.test_case "charges checks" `Quick test_general_eid_charges_checks;
          Alcotest.test_case "n_hat overestimate" `Quick test_eid_n_hat_overestimate;
          qtest prop_general_eid_on_random_graphs;
        ] );
    ]
