(* Tests for the synchronous latency engine: exchange timing semantics,
   non-blocking initiations, metrics, determinism. *)

module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Build a two-node graph with one edge of the given latency, where node
   0 initiates exactly once (at round [when_]) and both sides log event
   rounds. *)
let timing_run ~latency ~when_ ~rounds =
  let g = Graph.of_edges ~n:2 [ (0, 1, latency) ] in
  let request_at = ref (-1) and response_at = ref (-1) in
  let handlers u =
    {
      Engine.on_round =
        (fun ~round -> if u = 0 && round = when_ then Some (1, "ping") else None);
      on_request =
        (fun ~peer:_ ~round payload ->
          request_at := round;
          payload ^ "-pong");
      on_push = (fun ~peer:_ ~round:_ _payload -> ());
      on_response = (fun ~peer:_ ~round _payload -> response_at := round);
    }
  in
  let engine = Engine.create g ~handlers in
  for _ = 1 to rounds do
    Engine.step engine
  done;
  (!request_at, !response_at, Engine.metrics engine)

let test_latency1_roundtrip () =
  let req, resp, _ = timing_run ~latency:1 ~when_:0 ~rounds:5 in
  checki "request arrives at 1" 1 req;
  checki "response arrives at 1" 1 resp

let test_latency2_roundtrip () =
  let req, resp, _ = timing_run ~latency:2 ~when_:0 ~rounds:5 in
  checki "request at ceil(2/2)=1" 1 req;
  checki "response at 2" 2 resp

let test_latency5_roundtrip () =
  let req, resp, _ = timing_run ~latency:5 ~when_:0 ~rounds:10 in
  checki "request at ceil(5/2)=3" 3 req;
  checki "response at 5 (round trip = latency)" 5 resp

let test_latency_offset_start () =
  let req, resp, _ = timing_run ~latency:4 ~when_:3 ~rounds:10 in
  checki "request at 3+2" 5 req;
  checki "response at 3+4" 7 resp

let test_metrics_counts () =
  let _, _, m = timing_run ~latency:3 ~when_:0 ~rounds:6 in
  checki "one initiation" 1 m.Engine.initiations;
  checki "two deliveries" 2 m.Engine.deliveries;
  checki "rounds counted" 6 m.Engine.rounds

let test_non_neighbor_rejected () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1) ] in
  let handlers u =
    {
      Engine.on_round = (fun ~round:_ -> if u = 0 then Some (2, ()) else None);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round:_ () -> ());
    }
  in
  let engine = Engine.create g ~handlers in
  Alcotest.check_raises "non-neighbor"
    (Invalid_argument "Engine.step: initiation toward a non-neighbor") (fun () ->
      Engine.step engine)

let test_non_blocking_initiations () =
  (* Node 0 initiates every round over a latency-10 edge; all exchanges
     must be accepted and eventually delivered. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 10) ] in
  let responses = ref 0 in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u = 0 && round < 5 then Some (1, round) else None);
      on_request = (fun ~peer:_ ~round:_ payload -> payload);
      on_push = (fun ~peer:_ ~round:_ _payload -> ());
      on_response = (fun ~peer:_ ~round:_ _ -> incr responses);
    }
  in
  let engine = Engine.create g ~handlers in
  for _ = 1 to 20 do
    Engine.step engine
  done;
  checki "five overlapping exchanges all completed" 5 !responses;
  checki "initiations" 5 (Engine.metrics engine).Engine.initiations

let test_response_reflects_responder_state () =
  (* The responder's reply is computed when the request arrives, not
     when the exchange was initiated: over a latency-6 edge, a counter
     incremented at round 2 must be visible in a reply generated at
     round 3. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 6) ] in
  let counter = ref 0 in
  let got = ref (-1) in
  let handlers u =
    {
      Engine.on_round =
        (fun ~round ->
          if u = 1 && round = 2 then counter := 42;
          if u = 0 && round = 0 then Some (1, 0) else None);
      on_request = (fun ~peer:_ ~round:_ _ -> !counter);
      on_push = (fun ~peer:_ ~round:_ _payload -> ());
      on_response = (fun ~peer:_ ~round:_ payload -> got := payload);
    }
  in
  let engine = Engine.create g ~handlers in
  for _ = 1 to 8 do
    Engine.step engine
  done;
  checki "reply sees state at arrival time" 42 !got

let test_run_until () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 4) ] in
  let done_flag = ref false in
  let handlers u =
    {
      Engine.on_round = (fun ~round -> if u = 0 && round = 0 then Some (1, ()) else None);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round:_ () -> done_flag := true);
    }
  in
  let engine = Engine.create g ~handlers in
  (match Engine.run_until engine ~max_rounds:100 (fun () -> !done_flag) with
  | Some r -> checki "completed at latency+1 steps" 5 r
  | None -> Alcotest.fail "should complete");
  (* A predicate that never holds exhausts the budget. *)
  let engine2 = Engine.create g ~handlers in
  checkb "cap returns None" true (Engine.run_until engine2 ~max_rounds:3 (fun () -> false) = None)

let test_deterministic_replay () =
  (* Same protocol run twice gives identical metrics. *)
  let run () =
    let rng = Gossip_util.Rng.of_int 99 in
    let g = Gossip_graph.Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:3 in
    let r = Gossip_core.Push_pull.broadcast rng g ~source:0 ~max_rounds:10_000 in
    (r.Gossip_core.Push_pull.rounds, r.Gossip_core.Push_pull.metrics.Engine.initiations)
  in
  let a = run () and b = run () in
  checkb "identical replay" true (a = b)

let test_current_round_advances () =
  let g = Graph.of_edges ~n:1 [] in
  let handlers _ =
    {
      Engine.on_round = (fun ~round:_ -> None);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response = (fun ~peer:_ ~round:_ () -> ());
    }
  in
  let engine = Engine.create g ~handlers in
  checki "starts at 0" 0 (Engine.current_round engine);
  Engine.step engine;
  Engine.step engine;
  checki "advances" 2 (Engine.current_round engine)

let test_no_same_round_chaining () =
  (* Regression for the synchronous discipline: on a unit path
     0-1-2 where 1 and 2 pull simultaneously, node 2's pull at round t
     must see node 1's state from the start of the round — information
     must NOT hop two edges in one round. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 1) ] in
  let informed = [| true; false; false |] in
  let informed_at = [| 0; -1; -1 |] in
  let handlers u =
    {
      Engine.on_round =
        (fun ~round:_ ->
          (* 1 pulls from 0 and 2 pulls from 1, every round. *)
          if u = 1 then Some (0, false) else if u = 2 then Some (1, false) else None);
      on_request = (fun ~peer:_ ~round:_ _ -> informed.(u));
      on_push = (fun ~peer:_ ~round:_ _ -> ());
      on_response =
        (fun ~peer:_ ~round payload ->
          if payload && not informed.(u) then begin
            informed.(u) <- true;
            informed_at.(u) <- round
          end);
    }
  in
  let engine = Engine.create g ~handlers in
  for _ = 1 to 6 do
    Engine.step engine
  done;
  checki "node 1 informed at round 1" 1 informed_at.(1);
  (* Node 2's round-1 pull was answered from node 1's start-of-round-1
     state (uninformed); only the round-2 pull succeeds. *)
  checki "node 2 informed one round later" 2 informed_at.(2)

let prop_roundtrip_equals_latency =
  QCheck.Test.make ~name:"round trip always equals the edge latency" ~count:100
    QCheck.(pair (int_range 1 50) (int_range 0 20))
    (fun (latency, when_) ->
      let _, resp, _ = timing_run ~latency ~when_ ~rounds:(when_ + latency + 2) in
      resp = when_ + latency)

let prop_request_at_half =
  QCheck.Test.make ~name:"request leg is ceil(latency/2)" ~count:100
    QCheck.(int_range 1 50)
    (fun latency ->
      let req, _, _ = timing_run ~latency ~when_:0 ~rounds:(latency + 2) in
      req = (latency + 1) / 2)

let () =
  Alcotest.run "gossip_engine"
    [
      ( "timing",
        [
          Alcotest.test_case "latency 1" `Quick test_latency1_roundtrip;
          Alcotest.test_case "latency 2" `Quick test_latency2_roundtrip;
          Alcotest.test_case "latency 5" `Quick test_latency5_roundtrip;
          Alcotest.test_case "offset start" `Quick test_latency_offset_start;
          Alcotest.test_case "responder state at arrival" `Quick
            test_response_reflects_responder_state;
        ] );
      ( "engine",
        [
          Alcotest.test_case "metrics" `Quick test_metrics_counts;
          Alcotest.test_case "non-neighbor rejected" `Quick test_non_neighbor_rejected;
          Alcotest.test_case "non-blocking initiations" `Quick test_non_blocking_initiations;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "round counter" `Quick test_current_round_advances;
          Alcotest.test_case "no same-round chaining" `Quick test_no_same_round_chaining;
          QCheck_alcotest.to_alcotest prop_roundtrip_equals_latency;
          QCheck_alcotest.to_alcotest prop_request_at_half;
        ] );
    ]
