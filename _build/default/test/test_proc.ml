(* Tests for the effects-based sequential process layer (Proc): blocking
   exchange timing, waits, completion, concurrent responders. *)

module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

module P = Gossip_sim.Proc.Make (struct
  type payload = int
end)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let echo _u ~peer:_ ~round:_ payload = payload * 2

let absorb _u ~peer:_ ~round:_ _payload = ()

(* Run programs on a graph; [programs.(u)] is node u's body.  Returns
   rounds until all fibers finished. *)
let run_programs g programs ~on_request ~max_rounds =
  let ctxs = Array.make (Graph.n g) None in
  let handlers u =
    let ctx, handlers = P.make g u ~program:programs.(u) ~on_request:(on_request u) ~on_push:(absorb u) in
    ctxs.(u) <- Some ctx;
    handlers
  in
  let engine = Engine.create g ~handlers in
  let all_done () =
    Array.for_all (function Some c -> P.is_done c | None -> false) ctxs
  in
  Engine.run_until engine ~max_rounds all_done

let test_exchange_takes_latency_rounds () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 7) ] in
  let elapsed = ref (-1) in
  let reply = ref (-1) in
  let programs =
    [|
      (fun ctx ->
        let start = P.round ctx in
        reply := P.exchange ctx ~peer:1 21;
        elapsed := P.round ctx - start);
      (fun _ -> ());
    |]
  in
  (match run_programs g programs ~on_request:echo ~max_rounds:100 with
  | Some _ -> ()
  | None -> Alcotest.fail "did not finish");
  checki "exchange took exactly the latency" 7 !elapsed;
  checki "reply payload doubled" 42 !reply

let test_wait () =
  let g = Graph.of_edges ~n:1 [] in
  let elapsed = ref (-1) in
  let programs =
    [|
      (fun ctx ->
        let start = P.round ctx in
        P.wait ctx 5;
        elapsed := P.round ctx - start);
    |]
  in
  ignore (run_programs g programs ~on_request:echo ~max_rounds:100);
  checki "waited 5" 5 !elapsed

let test_wait_nonpositive_is_noop () =
  let g = Graph.of_edges ~n:1 [] in
  let elapsed = ref (-1) in
  let programs =
    [|
      (fun ctx ->
        let start = P.round ctx in
        P.wait ctx 0;
        P.wait ctx (-3);
        elapsed := P.round ctx - start);
    |]
  in
  ignore (run_programs g programs ~on_request:echo ~max_rounds:100);
  checki "no time passed" 0 !elapsed

let test_sequential_exchanges_accumulate () =
  (* Two exchanges over latencies 3 and 4 back to back: 7 rounds. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 3); (0, 2, 4) ] in
  let elapsed = ref (-1) in
  let programs =
    [|
      (fun ctx ->
        let start = P.round ctx in
        ignore (P.exchange ctx ~peer:1 1);
        ignore (P.exchange ctx ~peer:2 1);
        elapsed := P.round ctx - start);
      (fun _ -> ());
      (fun _ -> ());
    |]
  in
  ignore (run_programs g programs ~on_request:echo ~max_rounds:100);
  checki "3 + 4 rounds" 7 !elapsed

let test_responder_serves_while_running () =
  (* Node 1's fiber sleeps forever-ish but its on_request callback still
     answers node 0's exchange: the model's automatic responses. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 2) ] in
  let reply = ref (-1) in
  let programs =
    [|
      (fun ctx -> reply := P.exchange ctx ~peer:1 5);
      (fun ctx -> P.wait ctx 50);
    |]
  in
  (* Node 1's program takes 50 rounds, so all_done needs > 50. *)
  (match run_programs g programs ~on_request:echo ~max_rounds:200 with
  | Some _ -> ()
  | None -> Alcotest.fail "did not finish");
  checki "served during sleep" 10 !reply

let test_ping_pong () =
  (* Fibers exchange in both directions; each gets the other's answer. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let got = Array.make 2 (-1) in
  let programs =
    [|
      (fun ctx -> got.(0) <- P.exchange ctx ~peer:1 100);
      (fun ctx -> got.(1) <- P.exchange ctx ~peer:0 200);
    |]
  in
  ignore (run_programs g programs ~on_request:echo ~max_rounds:100);
  checki "node0 got" 200 got.(0);
  checki "node1 got" 400 got.(1)

let test_all_done_and_is_done () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 1) ] in
  let ctxs = Array.make 2 None in
  let programs = [| (fun _ -> ()); (fun ctx -> P.wait ctx 3) |] in
  let handlers u =
    let ctx, handlers = P.make g u ~program:programs.(u) ~on_request:(echo u) ~on_push:(absorb u) in
    ctxs.(u) <- Some ctx;
    handlers
  in
  let engine = Engine.create g ~handlers in
  let get u = match ctxs.(u) with Some c -> c | None -> assert false in
  Engine.step engine;
  checkb "fast fiber done" true (P.is_done (get 0));
  checkb "slow fiber not done" false (P.is_done (get 1));
  for _ = 1 to 5 do
    Engine.step engine
  done;
  checkb "all done" true (P.all_done (Array.map (fun c -> Option.get c) ctxs))

let test_exchange_counts_one_initiation_per_round () =
  (* A blocking fiber initiates at most once per latency period. *)
  let g = Graph.of_edges ~n:2 [ (0, 1, 4) ] in
  let programs =
    [|
      (fun ctx ->
        for _ = 1 to 3 do
          ignore (P.exchange ctx ~peer:1 0)
        done);
      (fun _ -> ());
    |]
  in
  let ctxs = Array.make 2 None in
  let handlers u =
    let ctx, handlers = P.make g u ~program:programs.(u) ~on_request:(echo u) ~on_push:(absorb u) in
    ctxs.(u) <- Some ctx;
    handlers
  in
  let engine = Engine.create g ~handlers in
  let all_done () =
    Array.for_all (function Some c -> P.is_done c | None -> false) ctxs
  in
  (match Engine.run_until engine ~max_rounds:100 all_done with
  | Some r ->
      (* 3 exchanges x latency 4 = 12 rounds of work; the final resume
         is observed after stepping round 12, i.e. 13 steps. *)
      checki "3 exchanges x latency 4" 13 r
  | None -> Alcotest.fail "did not finish");
  checki "three initiations" 3 (Engine.metrics engine).Engine.initiations

let () =
  Alcotest.run "gossip_proc"
    [
      ( "proc",
        [
          Alcotest.test_case "exchange timing" `Quick test_exchange_takes_latency_rounds;
          Alcotest.test_case "wait" `Quick test_wait;
          Alcotest.test_case "wait <= 0 noop" `Quick test_wait_nonpositive_is_noop;
          Alcotest.test_case "sequential exchanges" `Quick test_sequential_exchanges_accumulate;
          Alcotest.test_case "responder during sleep" `Quick test_responder_serves_while_running;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "is_done/all_done" `Quick test_all_done_and_is_done;
          Alcotest.test_case "blocking initiation rate" `Quick
            test_exchange_counts_one_initiation_per_round;
        ] );
    ]
