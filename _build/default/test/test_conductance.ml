(* Tests for gossip_conductance: Cut, Exact, Spectral, Weighted
   (Definitions 1-2). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Cut = Gossip_conductance.Cut
module Exact = Gossip_conductance.Exact
module Spectral = Gossip_conductance.Spectral
module Weighted = Gossip_conductance.Weighted

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Cut *)

let test_cut_of_list_mask () =
  let g = Gen.path 4 in
  let a = Cut.of_list g [ 0; 1 ] in
  let b = Cut.of_mask 4 0b0011 in
  Alcotest.check (Alcotest.array Alcotest.bool) "same side" a b

let test_cut_volumes () =
  let g = Gen.path 4 in
  (* Degrees 1,2,2,1. *)
  let side = Cut.of_list g [ 0; 1 ] in
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "volumes" (3, 3)
    (Cut.volumes g side)

let test_cut_edges_le () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 5); (2, 3, 1); (0, 3, 5) ] in
  let side = Cut.of_list g [ 0; 1 ] in
  checki "all latencies" 2 (Cut.cut_edges_le g side 5);
  checki "only fast" 0 (Cut.cut_edges_le g side 1)

let test_cut_phi_ell () =
  let g = Gen.path 4 in
  let side = Cut.of_list g [ 0; 1 ] in
  checkf "phi of middle cut" (1.0 /. 3.0) (Cut.phi_ell g side 1)

let test_cut_empty_side () =
  let g = Gen.path 3 in
  let side = Cut.of_list g [] in
  checkb "infinite" true (Cut.phi_ell g side 1 = infinity)

(* ------------------------------------------------------------------ *)
(* Exact *)

let test_exact_path4 () =
  (* P4: the minimizing cut is the middle edge: 1 / min(3,3). *)
  checkf "P4" (1.0 /. 3.0) (Exact.phi_ell (Gen.path 4) 1)

let test_exact_two_nodes () = checkf "K2" 1.0 (Exact.phi_ell (Gen.path 2) 1)

let test_exact_clique () =
  (* K4: min over cuts; the singleton cut gives 3/3 = 1, the 2-2 cut
     gives 4/6 = 2/3. *)
  checkf "K4" (2.0 /. 3.0) (Exact.phi_ell (Gen.clique 4) 1)

let test_exact_dumbbell () =
  (* Two K4s and a bridge: min cut is the bridge, 1 / (2*6+1). *)
  let g = Gen.dumbbell ~size:4 ~bridge_latency:1 in
  checkf "dumbbell" (1.0 /. 13.0) (Exact.phi_ell g 1)

let test_exact_weight_threshold () =
  (* Bridge has latency 5: phi_1 must ignore it (bridge cut has zero
     fast edges) while phi_5 counts it. *)
  let g = Gen.dumbbell ~size:3 ~bridge_latency:5 in
  checkf "phi_1 = 0" 0.0 (Exact.phi_ell g 1);
  checkf "phi_5 positive" (1.0 /. 7.0) (Exact.phi_ell g 5)

let test_exact_monotone_in_ell () =
  let rng = Rng.of_int 11 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.erdos_renyi_connected rng ~n:10 ~p:0.4)
  in
  let prev = ref 0.0 in
  List.iter
    (fun l ->
      let phi = Exact.phi_ell g l in
      checkb "monotone nondecreasing" true (phi >= !prev -. 1e-12);
      prev := phi)
    (Graph.distinct_latencies g)

let test_exact_with_cut_consistent () =
  let g = Gen.dumbbell ~size:3 ~bridge_latency:1 in
  let phi, side = Exact.phi_ell_with_cut g 1 in
  checkf "cut evaluates to phi" phi (Cut.phi_ell g side 1)

let test_exact_too_large () =
  Alcotest.check_raises "n > 22" (Invalid_argument "Exact: n too large for exhaustive enumeration")
    (fun () -> ignore (Exact.phi_ell (Gen.clique 23) 1))

let prop_exact_lower_bounds_random_cuts =
  QCheck.Test.make ~name:"exact <= any random cut" ~count:50
    QCheck.(pair (int_range 4 10) (int_range 1 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.5 in
      let exact = Exact.phi_ell g 1 in
      let mask = 1 + Rng.int rng ((1 lsl n) - 2) in
      let side = Cut.of_mask n mask in
      exact <= Cut.phi_ell g side 1 +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Spectral *)

let sweep_brackets_exact g l =
  let exact = Exact.phi_ell g l in
  let sweep = Spectral.phi_ell g l in
  (* Cheeger: exact <= sweep <= sqrt(2 * exact); allow slack for power
     iteration error. *)
  sweep >= exact -. 1e-9 && sweep <= sqrt (2.0 *. exact) +. 0.05

let test_spectral_dumbbell () =
  checkb "brackets exact" true (sweep_brackets_exact (Gen.dumbbell ~size:5 ~bridge_latency:1) 1)

let test_spectral_cycle () =
  checkb "brackets exact" true (sweep_brackets_exact (Gen.cycle 12) 1)

let test_spectral_clique () =
  checkb "brackets exact" true (sweep_brackets_exact (Gen.clique 10) 1)

let test_spectral_ring_of_cliques () =
  let g = Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:1 in
  checkb "brackets exact" true (sweep_brackets_exact g 1)

let test_spectral_weight_threshold () =
  let g = Gen.dumbbell ~size:4 ~bridge_latency:7 in
  checkf "disconnected G_1 has phi 0" 0.0 (Spectral.phi_ell g 1)

let test_spectral_with_cut_consistent () =
  let g = Gen.dumbbell ~size:5 ~bridge_latency:1 in
  let phi, side = Spectral.phi_ell_with_cut g 1 in
  checkf "cut evaluates to sweep value" phi (Cut.phi_ell g side 1)

let prop_spectral_upper_bounds_exact =
  QCheck.Test.make ~name:"sweep >= exact on random graphs" ~count:25
    QCheck.(int_range 5 12)
    (fun n ->
      let rng = Rng.of_int (n * 77) in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.5 in
      Spectral.phi_ell g 1 >= Exact.phi_ell g 1 -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Weighted *)

let test_weighted_unit_graph () =
  (* All latencies 1: ell* = 1 and phi* is the classical conductance. *)
  let g = Gen.clique 8 in
  let r = Weighted.weighted_conductance ~backend:Weighted.Exact g in
  checki "ell*" 1 r.Weighted.ell_star;
  checkf "phi* classical" (Exact.phi_ell g 1) r.Weighted.phi_star

let test_weighted_ring_of_cliques () =
  (* Bridges at latency 9: phi_1 = 0 (cliques disconnected), so the
     maximiser must pick ell = 9. *)
  let g = Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:9 in
  let r = Weighted.weighted_conductance ~backend:Weighted.Exact g in
  checki "ell* = bridge" 9 r.Weighted.ell_star;
  checkb "phi* positive" true (r.Weighted.phi_star > 0.0)

let test_weighted_fast_beats_slow () =
  (* A clique at latency 1 plus one slow chord cannot move ell*. *)
  let g =
    Graph.map_latencies
      (fun u v l -> if (u, v) = (0, 3) || (v, u) = (0, 3) then 50 else l)
      (Gen.clique 5)
  in
  let r = Weighted.weighted_conductance ~backend:Weighted.Exact g in
  checki "ell* stays 1" 1 r.Weighted.ell_star

let test_weighted_profile () =
  let g = Gen.dumbbell ~size:3 ~bridge_latency:4 in
  let r = Weighted.weighted_conductance ~backend:Weighted.Exact g in
  checki "profile at distinct latencies" 2 (List.length r.Weighted.profile);
  let ells = List.map fst r.Weighted.profile in
  Alcotest.check (Alcotest.list Alcotest.int) "profile ells" [ 1; 4 ] ells;
  (* Maximiser consistency: phi*/ell* >= phi_l/l for all profile
     entries. *)
  let ratio = r.Weighted.phi_star /. float_of_int r.Weighted.ell_star in
  List.iter
    (fun (l, phi) -> checkb "argmax" true (ratio >= (phi /. float_of_int l) -. 1e-12))
    r.Weighted.profile

let test_weighted_disconnected_raises () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Weighted.weighted_conductance: graph must be connected") (fun () ->
      ignore (Weighted.weighted_conductance g))

let test_weighted_pushpull_bound () =
  let g = Gen.clique 8 in
  let b = Weighted.pushpull_round_bound ~backend:Weighted.Exact g in
  checkb "positive and finite" true (b > 0.0 && Float.is_finite b)

let test_weighted_backends_agree_small () =
  let g = Gen.dumbbell ~size:4 ~bridge_latency:3 in
  let e = Weighted.weighted_conductance ~backend:Weighted.Exact g in
  let s = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
  (* The sweep is within the Cheeger bracket of exact on every profile
     entry; critical latency should coincide on this clean bimodal
     instance. *)
  checki "same ell*" e.Weighted.ell_star s.Weighted.ell_star;
  checkb "sweep >= exact" true (s.Weighted.phi_star >= e.Weighted.phi_star -. 1e-9)

let test_weighted_auto_backend () =
  (* Auto picks Exact below 17 nodes and Sweep above; both must agree
     with their explicit counterparts. *)
  let small = Gen.dumbbell ~size:4 ~bridge_latency:3 in
  let auto = Weighted.weighted_conductance ~backend:Weighted.Auto small in
  let exact = Weighted.weighted_conductance ~backend:Weighted.Exact small in
  checkf "small auto = exact" exact.Weighted.phi_star auto.Weighted.phi_star;
  let big = Gen.ring_of_cliques ~cliques:4 ~size:8 ~bridge_latency:5 in
  let auto = Weighted.weighted_conductance ~backend:Weighted.Auto big in
  let sweep = Weighted.weighted_conductance ~backend:Weighted.Sweep big in
  checkf "large auto = sweep" sweep.Weighted.phi_star auto.Weighted.phi_star

let test_spectral_params () =
  (* More iterations and different seeds may only change the answer
     within the Cheeger bracket; with a fixed seed it is replayable. *)
  let g = Gen.dumbbell ~size:5 ~bridge_latency:1 in
  let a = Spectral.phi_ell ~iterations:50 ~seed:3 g 1 in
  let b = Spectral.phi_ell ~iterations:50 ~seed:3 g 1 in
  checkf "replayable" a b;
  let c = Spectral.phi_ell ~iterations:400 ~seed:9 g 1 in
  let exact = Exact.phi_ell g 1 in
  checkb "still >= exact" true (c >= exact -. 1e-9)

let prop_latency_scaling_invariance =
  (* Scaling every latency by c leaves each phi value unchanged and
     scales the critical latency: phi_{c*l}(scaled G) = phi_l(G), so
     ell*(scaled) = c * ell*(G) and phi*(scaled) = phi*(G). *)
  QCheck.Test.make ~name:"phi* invariant under latency scaling" ~count:20
    QCheck.(triple (int_range 4 10) (int_range 2 5) (int_range 0 1000))
    (fun (n, c, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 5)) (Gen.erdos_renyi_connected rng ~n ~p:0.5)
      in
      let scaled = Graph.map_latencies (fun _ _ l -> c * l) g in
      let a = Weighted.weighted_conductance ~backend:Weighted.Exact g in
      let b = Weighted.weighted_conductance ~backend:Weighted.Exact scaled in
      b.Weighted.ell_star = c * a.Weighted.ell_star
      && Float.abs (b.Weighted.phi_star -. a.Weighted.phi_star) < 1e-12)

let () =
  Alcotest.run "gossip_conductance"
    [
      ( "cut",
        [
          Alcotest.test_case "of_list/of_mask" `Quick test_cut_of_list_mask;
          Alcotest.test_case "volumes" `Quick test_cut_volumes;
          Alcotest.test_case "cut_edges_le" `Quick test_cut_edges_le;
          Alcotest.test_case "phi_ell of cut" `Quick test_cut_phi_ell;
          Alcotest.test_case "empty side" `Quick test_cut_empty_side;
        ] );
      ( "exact",
        [
          Alcotest.test_case "P4" `Quick test_exact_path4;
          Alcotest.test_case "K2" `Quick test_exact_two_nodes;
          Alcotest.test_case "K4" `Quick test_exact_clique;
          Alcotest.test_case "dumbbell" `Quick test_exact_dumbbell;
          Alcotest.test_case "weight threshold" `Quick test_exact_weight_threshold;
          Alcotest.test_case "monotone in ell" `Quick test_exact_monotone_in_ell;
          Alcotest.test_case "with_cut consistent" `Quick test_exact_with_cut_consistent;
          Alcotest.test_case "n too large" `Quick test_exact_too_large;
          qtest prop_exact_lower_bounds_random_cuts;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "dumbbell" `Quick test_spectral_dumbbell;
          Alcotest.test_case "cycle" `Quick test_spectral_cycle;
          Alcotest.test_case "clique" `Quick test_spectral_clique;
          Alcotest.test_case "ring of cliques" `Quick test_spectral_ring_of_cliques;
          Alcotest.test_case "weight threshold" `Quick test_spectral_weight_threshold;
          Alcotest.test_case "with_cut consistent" `Quick test_spectral_with_cut_consistent;
          qtest prop_spectral_upper_bounds_exact;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "unit graph" `Quick test_weighted_unit_graph;
          Alcotest.test_case "ring of cliques" `Quick test_weighted_ring_of_cliques;
          Alcotest.test_case "fast beats slow" `Quick test_weighted_fast_beats_slow;
          Alcotest.test_case "profile" `Quick test_weighted_profile;
          Alcotest.test_case "disconnected raises" `Quick test_weighted_disconnected_raises;
          Alcotest.test_case "push-pull bound" `Quick test_weighted_pushpull_bound;
          Alcotest.test_case "backends agree" `Quick test_weighted_backends_agree_small;
          qtest prop_latency_scaling_invariance;
          Alcotest.test_case "auto backend" `Quick test_weighted_auto_backend;
          Alcotest.test_case "spectral params" `Quick test_spectral_params;
        ] );
    ]
