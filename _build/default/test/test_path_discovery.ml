(* Tests for T(k) and Path Discovery (Appendix E, Lemmas 24-26). *)

module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Pd = Gossip_core.Path_discovery
module Rumor = Gossip_core.Rumor

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_t_sequence_values () =
  Alcotest.check (Alcotest.list Alcotest.int) "T(1)" [ 1 ] (Pd.t_sequence 1);
  Alcotest.check (Alcotest.list Alcotest.int) "T(2)" [ 1; 2; 1 ] (Pd.t_sequence 2);
  Alcotest.check (Alcotest.list Alcotest.int) "T(4)" [ 1; 2; 1; 4; 1; 2; 1 ] (Pd.t_sequence 4);
  Alcotest.check (Alcotest.list Alcotest.int) "T(8)"
    [ 1; 2; 1; 4; 1; 2; 1; 8; 1; 2; 1; 4; 1; 2; 1 ]
    (Pd.t_sequence 8)

let test_t_sequence_rounds_up () =
  Alcotest.check (Alcotest.list Alcotest.int) "T(3) ~ T(4)" (Pd.t_sequence 4) (Pd.t_sequence 3)

let test_t_sequence_length () =
  (* |T(k)| = 2k - 1 for k a power of two. *)
  List.iter
    (fun k -> checki "length 2k-1" ((2 * k) - 1) (List.length (Pd.t_sequence k)))
    [ 1; 2; 4; 8; 16 ]

let test_t_sequence_max_is_k () =
  checki "max element" 16 (List.fold_left max 0 (Pd.t_sequence 16))

let test_t_sequence_total_cost () =
  (* S(1) = 1, S(2k) = 2 S(k) + 2k gives S(k) = k (log2 k + 1): the
     schedule spends only a log factor more than k itself, which is
     where Lemma 25's k log D term comes from. *)
  List.iter
    (fun k ->
      let total = List.fold_left ( + ) 0 (Pd.t_sequence k) in
      let log2k =
        let rec go acc v = if v >= k then acc else go (acc + 1) (2 * v) in
        go 0 1
      in
      checki "S(k) = k(log2 k + 1)" (k * (log2k + 1)) total)
    [ 1; 2; 4; 8; 16; 32; 64 ]

let test_lemma24_distance_k_exchange () =
  (* Weighted path 0 -2- 1 -1- 2 -4- 3 -1- 4: after T(8) every pair at
     distance <= 8 must have exchanged; pair (0,4) at distance 8. *)
  let g = Graph.of_edges ~n:5 [ (0, 1, 2); (1, 2, 1); (2, 3, 4); (3, 4, 1) ] in
  let r = Pd.run_known_diameter g ~d:8 in
  checkb "success" true r.Pd.success;
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let dist = Paths.dijkstra g u in
    for v = 0 to n - 1 do
      if dist.(v) <= 8 && not (Bitset.mem r.Pd.sets.(u) v) then
        Alcotest.failf "pair (%d,%d) at distance %d missing" u v dist.(v)
    done
  done

let test_known_diameter_families () =
  List.iter
    (fun (name, g) ->
      let d = Paths.weighted_diameter g in
      let r = Pd.run_known_diameter g ~d in
      if not r.Pd.success then Alcotest.failf "%s failed" name)
    [
      ("cycle", Gen.cycle 9);
      ("grid", Gen.grid 3 4);
      ("ring-of-cliques", Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:4);
      ("dumbbell", Gen.dumbbell ~size:4 ~bridge_latency:6);
    ]

let test_known_diameter_too_small_fails () =
  let g = Gen.with_latencies (Rng.of_int 1) (Gen.Fixed 6) (Gen.path 6) in
  let r = Pd.run_known_diameter g ~d:2 in
  checkb "insufficient d" false r.Pd.success

let test_unknown_diameter_run () =
  let g = Gen.ring_of_cliques ~cliques:4 ~size:3 ~bridge_latency:5 in
  let r = Pd.run g in
  checkb "success" true r.Pd.success;
  checkb "unanimous" true r.Pd.unanimous;
  let d = Paths.weighted_diameter g in
  checkb "k_final sane" true (r.Pd.k_final <= 4 * d);
  checkb "attempts >= 1" true (r.Pd.attempts >= 1)

let test_blocking_friendly () =
  (* Appendix E notes the schedule works even with blocking
     communication; our DTG steps are blocking exchanges already, so a
     high-latency graph still completes. *)
  let g = Gen.with_latencies (Rng.of_int 2) (Gen.Uniform (1, 8)) (Gen.cycle 8) in
  let r = Pd.run g in
  checkb "success" true r.Pd.success

let prop_path_discovery_random =
  QCheck.Test.make ~name:"path discovery on random weighted graphs" ~count:6
    QCheck.(pair (int_range 5 14) (int_range 0 100))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 4)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      let r = Pd.run g in
      r.Pd.success && Rumor.all_to_all_done r.Pd.sets)

let () =
  Alcotest.run "gossip_path_discovery"
    [
      ( "t-sequence",
        [
          Alcotest.test_case "values" `Quick test_t_sequence_values;
          Alcotest.test_case "rounds up" `Quick test_t_sequence_rounds_up;
          Alcotest.test_case "length" `Quick test_t_sequence_length;
          Alcotest.test_case "max element" `Quick test_t_sequence_max_is_k;
          Alcotest.test_case "total cost identity" `Quick test_t_sequence_total_cost;
        ] );
      ( "path-discovery",
        [
          Alcotest.test_case "Lemma 24 exchange property" `Quick
            test_lemma24_distance_k_exchange;
          Alcotest.test_case "known diameter families" `Quick test_known_diameter_families;
          Alcotest.test_case "too-small d fails" `Quick test_known_diameter_too_small_fails;
          Alcotest.test_case "unknown diameter" `Quick test_unknown_diameter_run;
          Alcotest.test_case "blocking friendly" `Quick test_blocking_friendly;
          qtest prop_path_discovery_random;
        ] );
    ]
