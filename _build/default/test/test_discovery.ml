(* Tests for latency discovery (Section 4.2). *)

module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Discovery = Gossip_core.Discovery

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let test_probe_discovers_all () =
  let rng = Rng.of_int 1 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 6)) (Gen.cycle 10) in
  let r = Discovery.probe g ~d_bound:(Graph.max_latency g) in
  checkb "complete" true r.Discovery.complete

let test_probe_latencies_correct () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 3); (1, 2, 5) ] in
  let r = Discovery.probe g ~d_bound:10 in
  checki "lat(0,1)" 3 (List.assoc 1 r.Discovery.known.(0));
  checki "lat(1,0)" 3 (List.assoc 0 r.Discovery.known.(1));
  checki "lat(1,2)" 5 (List.assoc 2 r.Discovery.known.(1))

let test_probe_bound_filters () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 2); (1, 2, 9) ] in
  let r = Discovery.probe g ~d_bound:3 in
  checkb "fast edge known" true (List.mem_assoc 1 r.Discovery.known.(0));
  checkb "slow edge unknown" false (List.mem_assoc 2 r.Discovery.known.(1));
  checkb "incomplete for max latency" true r.Discovery.complete
  (* complete refers to edges of latency <= d_bound only *)

let test_probe_rounds_formula () =
  (* Rounds = Delta + d_bound exactly. *)
  let g = Gen.star 8 in
  let r = Discovery.probe g ~d_bound:4 in
  checki "Delta + d" (Graph.max_degree g + 4) r.Discovery.rounds

let test_probe_doubling_reaches_target () =
  let rng = Rng.of_int 2 in
  let g = Gen.with_latencies rng (Gen.Uniform (1, 7)) (Gen.cycle 8) in
  let r = Discovery.probe_doubling g ~target:(Graph.max_latency g) in
  checkb "complete" true r.Discovery.complete;
  (* Accumulated rounds exceed a single probe's. *)
  let single = Discovery.probe g ~d_bound:(Graph.max_latency g) in
  checkb "doubling costs more" true (r.Discovery.rounds >= single.Discovery.rounds)

let test_probe_invalid () =
  Alcotest.check_raises "bad bound" (Invalid_argument "Discovery.probe: need d_bound >= 1")
    (fun () -> ignore (Discovery.probe (Gen.path 3) ~d_bound:0))

let prop_probe_complete_on_random =
  QCheck.Test.make ~name:"probe with d=lmax discovers everything" ~count:20
    QCheck.(pair (int_range 4 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 9)) (Gen.erdos_renyi_connected rng ~n ~p:0.4)
      in
      (Discovery.probe g ~d_bound:(Graph.max_latency g)).Discovery.complete)

let () =
  Alcotest.run "gossip_discovery"
    [
      ( "discovery",
        [
          Alcotest.test_case "discovers all" `Quick test_probe_discovers_all;
          Alcotest.test_case "latencies correct" `Quick test_probe_latencies_correct;
          Alcotest.test_case "bound filters" `Quick test_probe_bound_filters;
          Alcotest.test_case "rounds formula" `Quick test_probe_rounds_formula;
          Alcotest.test_case "doubling" `Quick test_probe_doubling_reaches_target;
          Alcotest.test_case "invalid" `Quick test_probe_invalid;
          qtest prop_probe_complete_on_random;
        ] );
    ]
