module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type result = {
  rounds : int;
  metrics : Engine.metrics;
  sets : Rumor.t array;
}

let run ~base ~out_edges ~k ?rumors ?iterations () =
  if k < 1 then invalid_arg "Rr_broadcast.run: need k >= 1";
  let n = Graph.n base in
  if Array.length out_edges <> n then invalid_arg "Rr_broadcast.run: orientation size mismatch";
  let sets = match rumors with Some r -> r | None -> Rumor.initial base in
  let usable =
    Array.map (fun l -> Array.of_list (List.filter (fun (_, lat) -> lat <= k) (Array.to_list l))) out_edges
  in
  let delta_out = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 usable in
  let iterations =
    match iterations with Some i -> i | None -> (k * delta_out) + k
  in
  let handlers u =
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round ->
          if round >= iterations || Array.length usable.(u) = 0 then None
          else begin
            let peer, _ = usable.(u).(!cursor mod Array.length usable.(u)) in
            incr cursor;
            Some (peer, Bitset.copy sets.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> Bitset.copy sets.(u));
      on_push =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
      on_response =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
    }
  in
  let engine = Engine.create ~payload_size:Bitset.cardinal base ~handlers in
  (* Initiation window plus a drain period for in-flight exchanges. *)
  for _ = 1 to iterations + k do
    Engine.step engine
  done;
  { rounds = Engine.current_round engine; metrics = Engine.metrics engine; sets }

let run_on_spanner (s : Spanner.t) ~k ?rumors ?iterations () =
  run ~base:s.Spanner.base ~out_edges:s.Spanner.out_edges ~k ?rumors ?iterations ()
