(** Rumor sets and dissemination goals.

    A rumor is identified with the node that originated it, so a rumor
    set is a set of node identifiers (a {!Gossip_util.Bitset.t}).  In
    protocols where a rumor carries content (e.g. a node's adjacency in
    EID's neighborhood discovery), knowing an identifier stands for
    knowing that node's content — the content is a deterministic
    function of the originator, so the bitset is the whole state.

    The three completion predicates below are the paper's three
    problems: one-to-all broadcast, all-to-all dissemination, and local
    broadcast. *)

type t = Gossip_util.Bitset.t

(** [initial g] gives every node the singleton rumor set [{v}]. *)
val initial : Gossip_graph.Graph.t -> t array

(** [broadcast_done ~source sets] — every node knows [source]'s
    rumor. *)
val broadcast_done : source:Gossip_graph.Graph.node -> t array -> bool

(** [all_to_all_done sets] — every node knows every rumor. *)
val all_to_all_done : t array -> bool

(** [local_broadcast_done g ?ell sets] — for every edge [(u, v)] of
    latency [<= ell] (default: every edge), [u] knows [v]'s rumor and
    vice versa.  This is the [ℓ]-local broadcast goal of Section 5.1. *)
val local_broadcast_done : Gossip_graph.Graph.t -> ?ell:int -> t array -> bool

(** [count_knowing ~source sets] — how many nodes know [source]'s
    rumor (the informed-set size of Theorem 12's Markov process). *)
val count_knowing : source:Gossip_graph.Graph.node -> t array -> int
