module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type result = {
  rounds : int;
  known : (Graph.node * int) list array;
  complete : bool;
  metrics : Engine.metrics;
}

let probe g ~d_bound =
  if d_bound < 1 then invalid_arg "Discovery.probe: need d_bound >= 1";
  let n = Graph.n g in
  let known = Array.make n [] in
  let pending : (int, int) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let handlers u =
    let nbrs = Graph.neighbors g u in
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round ->
          if !cursor >= Array.length nbrs then None
          else begin
            let peer, _ = nbrs.(!cursor) in
            incr cursor;
            Hashtbl.replace pending.(u) peer round;
            Some (peer, ())
          end);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response =
        (fun ~peer ~round () ->
          match Hashtbl.find_opt pending.(u) peer with
          | Some start ->
              Hashtbl.remove pending.(u) peer;
              let latency = round - start in
              if latency <= d_bound then known.(u) <- (peer, latency) :: known.(u)
          | None -> ());
    }
  in
  let engine = Engine.create g ~handlers in
  let delta = Graph.max_degree g in
  (* Probe for Delta rounds, then wait d_bound for late responses. *)
  for _ = 1 to delta + d_bound do
    Engine.step engine
  done;
  let complete =
    let ok = ref true in
    Graph.iter_edges
      (fun { Graph.u; v; latency } ->
        if latency <= d_bound then begin
          let have side peer = List.mem_assoc peer known.(side) in
          if not (have u v && have v u) then ok := false
        end)
      g;
    !ok
  in
  { rounds = Engine.current_round engine; known; complete; metrics = Engine.metrics engine }

let probe_doubling g ~target =
  if target < 1 then invalid_arg "Discovery.probe_doubling: need target >= 1";
  let rec go d acc_rounds =
    let r = probe g ~d_bound:d in
    let acc_rounds = acc_rounds + r.rounds in
    if d >= target then { r with rounds = acc_rounds } else go (2 * d) acc_rounds
  in
  go 1 0
