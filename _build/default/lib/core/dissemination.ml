module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph

type knowledge = Known_latencies | Unknown_latencies

type winner = Push_pull_won | Spanner_route_won

type result = {
  rounds : int;
  winner : winner;
  pushpull_rounds : int option;
  spanner_rounds : int;
  discovery_rounds : int;
  success : bool;
}

let all_to_all rng g ~knowledge ~max_rounds =
  let pp = Push_pull.all_to_all (Rng.split rng) g ~max_rounds in
  let discovery_rounds =
    match knowledge with
    | Known_latencies -> 0
    | Unknown_latencies ->
        (* Guess-and-double latency discovery up to the weighted
           diameter; the real protocol detects sufficiency through the
           same termination check EID runs (Section 4.2). *)
        let d = Gossip_graph.Paths.weighted_diameter g in
        (Discovery.probe_doubling g ~target:(max 1 d)).Discovery.rounds
  in
  let eid = Eid.run (Rng.split rng) g () in
  let spanner_rounds = discovery_rounds + eid.Eid.rounds in
  let pushpull_rounds = pp.Push_pull.rounds in
  let winner, rounds =
    match pushpull_rounds with
    | Some r when r <= spanner_rounds -> (Push_pull_won, r)
    | Some _ | None -> (Spanner_route_won, spanner_rounds)
  in
  {
    rounds;
    winner;
    pushpull_rounds;
    spanner_rounds;
    discovery_rounds;
    success = eid.Eid.success || pushpull_rounds <> None;
  }
