module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph

type t = {
  base : Graph.t;
  spanner : Graph.t;
  out_edges : (Graph.node * int) array array;
  k : int;
}

(* Distinct weights: compare latency first, then the unordered endpoint
   pair — the paper's tie-break by node ids. *)
let edge_key u v lat = (lat, min u v, max u v)

let build rng g ~k ?n_hat () =
  if k < 1 then invalid_arg "Spanner.build: need k >= 1";
  let n = Graph.n g in
  let n_hat = match n_hat with Some h -> max h n | None -> n in
  let p_keep = float_of_int n_hat ** (-1.0 /. float_of_int k) in
  let alive = Array.init n (fun _ -> Hashtbl.create 8) in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      Hashtbl.replace alive.(u) v latency;
      Hashtbl.replace alive.(v) u latency)
    g;
  let discard u v =
    Hashtbl.remove alive.(u) v;
    Hashtbl.remove alive.(v) u
  in
  let out = Array.make n [] in
  let add_oriented v (x, lat) =
    out.(v) <- (x, lat) :: out.(v);
    discard v x
  in
  (* cluster.(v) is the center of v's cluster in C_{i-1}; -1 once v has
     fallen out of Phase 1 (Rule 1). *)
  let cluster = Array.init n (fun v -> v) in
  (* Least-weight alive edge from v into each adjacent cluster. *)
  let adjacent_clusters v =
    let best = Hashtbl.create 8 in
    Hashtbl.iter
      (fun x lat ->
        let c = cluster.(x) in
        if c >= 0 && c <> cluster.(v) then begin
          match Hashtbl.find_opt best c with
          | Some (x', lat') when edge_key v x' lat' <= edge_key v x lat -> ()
          | _ -> Hashtbl.replace best c (x, lat)
        end)
      alive.(v);
    best
  in
  let discard_all_into v c =
    let to_remove =
      Hashtbl.fold (fun x _ acc -> if cluster.(x) = c then x :: acc else acc) alive.(v) []
    in
    List.iter (discard v) to_remove
  in
  (* Phase 1: k-1 sampling iterations. *)
  for _i = 1 to k - 1 do
    let sampled = Hashtbl.create 16 in
    Array.iter
      (fun c ->
        if c >= 0 && not (Hashtbl.mem sampled c) then
          Hashtbl.replace sampled c (Rng.bernoulli rng p_keep))
      cluster;
    let is_sampled c = c >= 0 && Hashtbl.find sampled c in
    let new_cluster = Array.map (fun c -> if is_sampled c then c else -1) cluster in
    for v = 0 to n - 1 do
      if cluster.(v) >= 0 && not (is_sampled cluster.(v)) then begin
        let best = adjacent_clusters v in
        let sampled_best =
          Hashtbl.fold
            (fun c (x, lat) acc ->
              if is_sampled c then
                match acc with
                | Some (_, (x', lat')) when edge_key v x' lat' <= edge_key v x lat -> acc
                | _ -> Some (c, (x, lat))
              else acc)
            best None
        in
        match sampled_best with
        | None ->
            (* Rule 1: no sampled neighbor cluster — connect once to
               every adjacent cluster and leave Phase 1. *)
            Hashtbl.iter
              (fun c e ->
                add_oriented v e;
                discard_all_into v c)
              best
        | Some (c_join, ((_, e_lat) as e)) ->
            (* Rule 2: join the nearest sampled cluster, plus one edge
               to every strictly closer cluster. *)
            let ex, _ = e in
            new_cluster.(v) <- c_join;
            add_oriented v e;
            discard_all_into v c_join;
            Hashtbl.iter
              (fun c ((x', lat') as e') ->
                if c <> c_join && edge_key v x' lat' < edge_key v ex e_lat then begin
                  add_oriented v e';
                  discard_all_into v c
                end)
              best
      end
    done;
    Array.blit new_cluster 0 cluster 0 n;
    (* Intra-cluster edges are never needed again. *)
    for v = 0 to n - 1 do
      if cluster.(v) >= 0 then begin
        let same =
          Hashtbl.fold
            (fun x _ acc -> if cluster.(x) = cluster.(v) then x :: acc else acc)
            alive.(v) []
        in
        List.iter (discard v) same
      end
    done
  done;
  (* Phase 2: every vertex connects once to each adjacent surviving
     cluster. *)
  for v = 0 to n - 1 do
    let best = adjacent_clusters v in
    Hashtbl.iter (fun _c e -> add_oriented v e) best
  done;
  let out_edges = Array.map Array.of_list out in
  let spanner_edges =
    let acc = ref [] in
    Array.iteri (fun v l -> Array.iter (fun (x, lat) -> acc := (v, x, lat) :: !acc) l) out_edges;
    !acc
  in
  { base = g; spanner = Graph.of_edges ~n spanner_edges; out_edges; k }

let max_out_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.out_edges

let edge_count t = Graph.m t.spanner

let stretch t = Gossip_graph.Paths.stretch ~of_:t.spanner ~wrt:t.base
