module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

(* Exchanges carry the phase-local "heard from" set (which drives DTG's
   linking and termination) alongside the accumulated rumor set (the
   actual information being disseminated).  Keeping them separate lets
   T(k) and EID chain phases: every phase re-broadcasts the accumulated
   rumors to all G_l-neighbors even when their ids are already known. *)
type payload = { heard : Bitset.t; rumors : Bitset.t }

module P = Gossip_sim.Proc.Make (struct
  type nonrec payload = payload
end)

type result = {
  rounds : int option;
  metrics : Engine.metrics;
  sets : Rumor.t array;
  link_counts : int array;
}

type node_state = {
  mutable heard : Bitset.t;
  sets : Rumor.t array;
  mutable links : int;
}

(* One DTG step: exchange the working sets with [peer], fold the reply
   in, and pad to exactly [ell] rounds so all nodes advance in lockstep
   (the "simulate 1 round as ell rounds" of Section 5.1). *)
let dtg_step ctx ~ell ~peer ~peer_latency (wh, wr) =
  let reply =
    P.exchange ctx ~peer { heard = Bitset.copy wh; rumors = Bitset.copy wr }
  in
  let (_ : bool) = Bitset.union_into ~into:wh reply.heard in
  let (_ : bool) = Bitset.union_into ~into:wr reply.rumors in
  P.wait ctx (ell - peer_latency)

let program states ell pick ctx =
  let u = P.id ctx in
  let st = states.(u) in
  let n = Bitset.capacity st.heard in
  let nbrs =
    Array.to_list (P.neighbors ctx) |> List.filter (fun (_, lat) -> lat <= ell)
  in
  let session = ref [] in
  (* [session] is kept newest-first: the PUSH order j = i .. 1. *)
  let push_order () = !session in
  let pull_order () = List.rev !session in
  let run_sequence orders working =
    List.iter
      (fun order ->
        List.iter
          (fun (peer, peer_latency) -> dtg_step ctx ~ell ~peer ~peer_latency working)
          order)
      orders
  in
  let fresh_working () = (Bitset.singleton n u, Bitset.copy st.sets.(u)) in
  let absorb (wh, wr) =
    let (_ : bool) = Bitset.union_into ~into:st.heard wh in
    let (_ : bool) = Bitset.union_into ~into:st.sets.(u) wr in
    ()
  in
  let rec loop () =
    match pick (List.filter (fun (v, _) -> not (Bitset.mem st.heard v)) nbrs) with
    | None -> ()
    | Some link ->
        st.links <- st.links + 1;
        session := link :: !session;
        (* PUSH then PULL with R'. *)
        let w1 = fresh_working () in
        run_sequence [ push_order (); pull_order () ] w1;
        (* PULL then PUSH with R'' (the symmetry pass). *)
        let w2 = fresh_working () in
        run_sequence [ pull_order (); push_order () ] w2;
        absorb w1;
        absorb w2;
        loop ()
  in
  loop ()

let phase g ~ell ~max_rounds ?rumors ?link_rng () =
  let n = Graph.n g in
  let sets = match rumors with Some r -> r | None -> Rumor.initial g in
  if Array.length sets <> n then invalid_arg "Dtg.phase: rumor array size mismatch";
  let states = Array.init n (fun u -> { heard = Bitset.singleton n u; sets; links = 0 }) in
  let ctxs = Array.make n None in
  let handlers u =
    let on_request ~peer:_ ~round:_ (_payload : payload) =
      let st = states.(u) in
      { heard = Bitset.copy st.heard; rumors = Bitset.copy st.sets.(u) }
    in
    let on_push ~peer:_ ~round:_ (payload : payload) =
      let st = states.(u) in
      let (_ : bool) = Bitset.union_into ~into:st.heard payload.heard in
      let (_ : bool) = Bitset.union_into ~into:st.sets.(u) payload.rumors in
      ()
    in
    let pick =
      match link_rng with
      | None -> (fun candidates -> match candidates with [] -> None | c :: _ -> Some c)
      | Some rng ->
          let node_rng = Gossip_util.Rng.split rng in
          fun candidates ->
            (match candidates with
            | [] -> None
            | _ -> Some (Gossip_util.Rng.pick_list node_rng candidates))
    in
    let ctx, handlers =
      P.make g u ~program:(program states ell pick) ~on_request ~on_push
    in
    ctxs.(u) <- Some ctx;
    handlers
  in
  let payload_size (p : payload) = Bitset.cardinal p.heard + Bitset.cardinal p.rumors in
  let engine = Engine.create ~payload_size g ~handlers in
  let all_done () =
    Array.for_all (function Some ctx -> P.is_done ctx | None -> false) ctxs
  in
  let rounds = Engine.run_until engine ~max_rounds all_done in
  {
    rounds;
    metrics = Engine.metrics engine;
    sets;
    link_counts = Array.map (fun st -> st.links) states;
  }

let local_broadcast g ~max_rounds =
  let result = phase g ~ell:(Graph.max_latency g) ~max_rounds () in
  (result, Rumor.local_broadcast_done g result.sets)
