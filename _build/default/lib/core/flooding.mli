(** Flooding baselines.

    Two deliberately weak comparators:

    - [push_round_robin]: informed nodes cycle deterministically through
      their neighbors, pushing only; responses are discarded
      ("pull disabled").  Footnote 2 of the paper observes that without
      pull a star takes [Ω(nD)] time when the hub must serve leaves one
      at a time over latency-[D] edges — the [blocking:true] mode
      reproduces that by letting each node keep at most one exchange in
      flight.
    - [flood_all]: every node (informed or not) cycles through
      neighbors exchanging full rumor sets — simple flooding, the
      baseline that matches the [Ω(nD)] bound on a star and [O(mD)]
      generally. *)

type result = { rounds : int option; metrics : Gossip_sim.Engine.metrics }

(** [push_round_robin g ~source ~blocking ~max_rounds] floods
    [source]'s rumor with pushes only. *)
val push_round_robin :
  Gossip_graph.Graph.t ->
  source:Gossip_graph.Graph.node ->
  blocking:bool ->
  max_rounds:int ->
  result

(** [flood_all g ~max_rounds] runs full-rumor-set round-robin flooding
    to the all-to-all goal. *)
val flood_all : Gossip_graph.Graph.t -> max_rounds:int -> result
