(** Termination Check (Algorithm 1; Section 5.3; Lemma 18).

    After one execution of all-to-all dissemination with diameter
    estimate [k], every node [v] checks whether the estimate sufficed:

    + [v]'s {e flag} is set when some neighbor is missing from its
      rumor set;
    + [v] broadcasts its (frozen) rumor set and flag through its
      [k]-distance neighborhood and fails when it sees a different
      rumor set or a set flag;
    + a second broadcast floods the "failed" verdict so that everyone
      reaches the same decision (Lemma 18: either all nodes terminate,
      or none do, in the same round).

    The broadcasts run as round-robin exchanges over a supplied edge
    orientation (the spanner inside EID, the full adjacency inside Path
    Discovery) — any Lemma 15-style [k]-distance broadcast works here,
    as the paper notes.

    Rumor sets are compared {e frozen} (as of check start): exchanges
    during the check compare fingerprints rather than merging, so a
    genuine disagreement cannot be masked by the check itself. *)

type result = {
  failed : bool array;  (** per-node verdict after both passes *)
  rounds : int;  (** engine rounds consumed by the check *)
  unanimous : bool;  (** Lemma 18: all verdicts equal *)
}

(** [run ~base ~out_edges ~k ~sets] performs the check.  [sets] is read
    (frozen copies are taken), never modified. *)
val run :
  base:Gossip_graph.Graph.t ->
  out_edges:(Gossip_graph.Graph.node * int) array array ->
  k:int ->
  sets:Rumor.t array ->
  result
