module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type payload = { heard : Bitset.t; rumors : Bitset.t }

type result = {
  rounds : int option;
  metrics : Engine.metrics;
  sets : Rumor.t array;
}

let phase rng g ~ell ~max_rounds ?rumors () =
  let n = Graph.n g in
  let sets = match rumors with Some r -> r | None -> Rumor.initial g in
  if Array.length sets <> n then invalid_arg "Random_local.phase: rumor array size mismatch";
  let heard = Array.init n (fun u -> Bitset.singleton n u) in
  let fast_neighbors =
    Array.init n (fun u ->
        Array.of_list
          (List.filter (fun (_, lat) -> lat <= ell) (Array.to_list (Graph.neighbors g u))))
  in
  let node_done u =
    Array.for_all (fun (v, _) -> Bitset.mem heard.(u) v) fast_neighbors.(u)
  in
  let handlers u =
    let node_rng = Rng.split rng in
    {
      Engine.on_round =
        (fun ~round:_ ->
          let unheard =
            Array.of_list
              (List.filter
                 (fun (v, _) -> not (Bitset.mem heard.(u) v))
                 (Array.to_list fast_neighbors.(u)))
          in
          if Array.length unheard = 0 then None
          else begin
            let peer, _ = Rng.pick node_rng unheard in
            Some (peer, { heard = Bitset.copy heard.(u); rumors = Bitset.copy sets.(u) })
          end);
      on_request =
        (fun ~peer:_ ~round:_ (_ : payload) ->
          { heard = Bitset.copy heard.(u); rumors = Bitset.copy sets.(u) });
      on_push =
        (fun ~peer:_ ~round:_ (p : payload) ->
          let (_ : bool) = Bitset.union_into ~into:heard.(u) p.heard in
          let (_ : bool) = Bitset.union_into ~into:sets.(u) p.rumors in
          ());
      on_response =
        (fun ~peer:_ ~round:_ (p : payload) ->
          let (_ : bool) = Bitset.union_into ~into:heard.(u) p.heard in
          let (_ : bool) = Bitset.union_into ~into:sets.(u) p.rumors in
          ());
    }
  in
  let payload_size (p : payload) = Bitset.cardinal p.heard + Bitset.cardinal p.rumors in
  let engine = Engine.create ~payload_size g ~handlers in
  let all_done () =
    let rec go u = u >= n || (node_done u && go (u + 1)) in
    go 0
  in
  let rounds = Engine.run_until engine ~max_rounds all_done in
  { rounds; metrics = Engine.metrics engine; sets }

let local_broadcast rng g ~max_rounds =
  let result = phase rng g ~ell:(Graph.max_latency g) ~max_rounds () in
  (result, Rumor.local_broadcast_done g result.sets)
