module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph

type attempt = {
  k : int;
  discovery_rounds : int;
  rr_rounds : int;
  check_rounds : int;
  spanner_out_degree : int;
  spanner_edges : int;
}

type result = {
  rounds : int;
  attempts : attempt list;
  k_final : int;
  sets : Rumor.t array;
  success : bool;
  unanimous : bool;
}

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  max 1 (go 0 1)

(* One EID(k) pass: discovery, spanner, RR broadcast.  [sets] is
   updated in place; returns the attempt record (check_rounds = 0) and
   the spanner orientation for the caller's termination check. *)
let eid_once rng g ~k ~n_hat ~sets =
  let iterations = ceil_log2 n_hat in
  let discovery_rounds = ref 0 in
  (* A DTG phase can only deadlock-guard on the cap; each phase is
     O(k log^2 n), so this cap is generous. *)
  let phase_cap = max 1000 (64 * k * iterations * iterations * 4) in
  for _ = 1 to iterations do
    let r = Dtg.phase g ~ell:k ~max_rounds:phase_cap ~rumors:sets () in
    match r.Dtg.rounds with
    | Some rounds -> discovery_rounds := !discovery_rounds + rounds
    | None -> discovery_rounds := !discovery_rounds + phase_cap
  done;
  let gk = Graph.subgraph_le g k in
  let k_spanner = ceil_log2 n_hat in
  let spanner = Spanner.build rng gk ~k:k_spanner ~n_hat () in
  let k_rr = k * ((2 * k_spanner) - 1) in
  let rr =
    Rr_broadcast.run ~base:g ~out_edges:spanner.Spanner.out_edges ~k:k_rr ~rumors:sets ()
  in
  let attempt =
    {
      k;
      discovery_rounds = !discovery_rounds;
      rr_rounds = rr.Rr_broadcast.rounds;
      check_rounds = 0;
      spanner_out_degree = Spanner.max_out_degree spanner;
      spanner_edges = Spanner.edge_count spanner;
    }
  in
  (attempt, spanner, k_rr)

let run_known_diameter rng g ~d ?n_hat () =
  if d < 1 then invalid_arg "Eid.run_known_diameter: need d >= 1";
  let n_hat = match n_hat with Some h -> max h (Graph.n g) | None -> Graph.n g in
  let sets = Rumor.initial g in
  let attempt, _spanner, _k_rr = eid_once rng g ~k:d ~n_hat ~sets in
  {
    rounds = attempt.discovery_rounds + attempt.rr_rounds;
    attempts = [ attempt ];
    k_final = d;
    sets;
    success = Rumor.all_to_all_done sets;
    unanimous = true;
  }

let run rng g ?n_hat () =
  let n_hat = match n_hat with Some h -> max h (Graph.n g) | None -> Graph.n g in
  let sets = Rumor.initial g in
  (* The estimate can never usefully exceed the sum of all latencies. *)
  let latency_sum =
    let acc = ref 0 in
    Graph.iter_edges (fun e -> acc := !acc + e.Graph.latency) g;
    max 1 !acc
  in
  let rec attempt_loop k acc_attempts acc_rounds unanimous =
    let attempt, spanner, k_rr = eid_once rng g ~k ~n_hat ~sets in
    let check =
      Termination_check.run ~base:g ~out_edges:spanner.Spanner.out_edges ~k:k_rr ~sets
    in
    let attempt = { attempt with check_rounds = check.Termination_check.rounds } in
    let rounds =
      acc_rounds + attempt.discovery_rounds + attempt.rr_rounds + attempt.check_rounds
    in
    let attempts = attempt :: acc_attempts in
    let unanimous = unanimous && check.Termination_check.unanimous in
    let failed = Array.exists (fun f -> f) check.Termination_check.failed in
    if not failed then
      {
        rounds;
        attempts = List.rev attempts;
        k_final = k;
        sets;
        success = Rumor.all_to_all_done sets;
        unanimous;
      }
    else if k > 2 * latency_sum then
      {
        rounds;
        attempts = List.rev attempts;
        k_final = k;
        sets;
        success = false;
        unanimous;
      }
    else attempt_loop (2 * k) attempts rounds unanimous
  in
  attempt_loop 1 [] 0 true
