(** RR Broadcast (Algorithm 2; Lemma 15).

    Deterministic round-robin dissemination over an {e oriented} edge
    set: with parameter [k], every node cycles through its out-edges of
    latency [<= k], exchanging its entire rumor set over one edge per
    round, for [k·Δ_out + k] initiation rounds.  Lemma 15: after the
    run, any two nodes at weighted distance [<= k] {e in the graph the
    orientation spans} have exchanged rumors.

    Exchanges are bidirectional, so rumors flow against the orientation
    too; orientation only bounds how many edges each node must serve. *)

type result = {
  rounds : int;  (** engine rounds executed (initiations + drain) *)
  metrics : Gossip_sim.Engine.metrics;
  sets : Rumor.t array;
}

(** [run ~base ~out_edges ~k ?rumors ?iterations ()] runs RR broadcast
    on [base] along [out_edges].  [iterations] defaults to the lemma's
    [k·Δ_out + k] (with [Δ_out] counting only latency-[<= k]
    out-edges); after the last initiation the engine drains in-flight
    exchanges for [k] more rounds.  [rumors] (default singletons) is
    updated in place. *)
val run :
  base:Gossip_graph.Graph.t ->
  out_edges:(Gossip_graph.Graph.node * int) array array ->
  k:int ->
  ?rumors:Rumor.t array ->
  ?iterations:int ->
  unit ->
  result

(** [run_on_spanner spanner ~k ?rumors ?iterations ()] is [run] with
    the spanner's base graph and orientation. *)
val run_on_spanner :
  Spanner.t ->
  k:int ->
  ?rumors:Rumor.t array ->
  ?iterations:int ->
  unit ->
  result
