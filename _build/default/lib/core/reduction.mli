(** Gossip-to-guessing-game reduction (Lemma 3).

    Alice simulates a gossip algorithm on the gadget [G(P)] /
    [G_sym(P)] while playing [Guessing(2m, P)]: every time the
    algorithm activates a cross edge [(v_i, u_j)], she submits
    [(id(v_i), id(u_j))] as a guess; the oracle's answer reveals the
    edge's latency (fast iff in the target set).

    This module realises the simulation concretely: it runs push-pull
    (the canonical gossip algorithm) on the gadget inside the engine,
    mirrors each round's cross-edge activations into a {!Gossip_game}
    instance, and reports when the game was solved versus when every
    target [B]-side node first received a rumor over a fast edge.
    Lemma 3's content — the game finishes no later than local
    broadcast — is checked by construction. *)

type outcome = {
  game_rounds : int option;
      (** first round the mirrored game was solved ([None]: never) *)
  broadcast_rounds : int option;
      (** rounds until local broadcast on the gadget ([None]: capped) *)
  game_solved_first : bool;
      (** game solved no later than local broadcast *)
  lemma3_holds : bool;
      (** Lemma 3's actual content: either the game was solved by
          broadcast time, or the broadcast was slow — it crossed a
          latency-[2m] edge, taking at least [m] rounds (in which case
          the [Ω]-bound the reduction feeds is met trivially).  On
          [G_sym(P)], rumors can reach [R] transitively through the
          [R]-clique after a single slow crossing, so the disjunction
          is the faithful statement. *)
  guesses_submitted : int;
}

(** [simulate_push_pull rng ~m ~target ~fast_latency ~symmetric
    ~max_rounds] builds the gadget (slow latency [2m]), runs push-pull
    local broadcast on it, and mirrors cross activations into the
    game. *)
val simulate_push_pull :
  Gossip_util.Rng.t ->
  m:int ->
  target:Gossip_graph.Gadgets.target ->
  fast_latency:int ->
  symmetric:bool ->
  max_rounds:int ->
  outcome
