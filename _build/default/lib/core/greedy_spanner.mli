(** Greedy spanner (Althöfer et al. 1993) — a quality baseline.

    The classical sequential greedy algorithm: scan edges by increasing
    weight and keep an edge only if the spanner built so far does not
    already connect its endpoints within stretch [r] times its weight.
    It produces a [r]-spanner with the best known size bounds but is
    inherently sequential and needs global knowledge — the reason the
    paper builds on the distributed Baswana–Sen construction instead.
    The [ablation-spanner] bench compares the two. *)

type t = {
  base : Gossip_graph.Graph.t;
  spanner : Gossip_graph.Graph.t;
  r : int;  (** the stretch parameter *)
}

(** [build g ~r] runs the greedy scan.  Requires [r >= 1]; ties are
    broken by endpoint ids like in {!Spanner}. *)
val build : Gossip_graph.Graph.t -> r:int -> t

val edge_count : t -> int

(** [stretch t] is the measured stretch (guaranteed [<= r]). *)
val stretch : t -> float
