module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Gadgets = Gossip_graph.Gadgets
module Engine = Gossip_sim.Engine
module Game = Gossip_game.Game

type outcome = {
  game_rounds : int option;
  broadcast_rounds : int option;
  game_solved_first : bool;
  lemma3_holds : bool;
  guesses_submitted : int;
}

let simulate_push_pull rng ~m ~target ~fast_latency ~symmetric ~max_rounds =
  let slow = 2 * m in
  let g =
    if symmetric then Gadgets.g_sym_p ~m ~target ~fast_latency ~slow_latency:slow
    else Gadgets.g_p ~m ~target ~fast_latency ~slow_latency:slow
  in
  let game = Game.create ~m ~target in
  let sets = Rumor.initial g in
  (* Cross activations of the current engine round, as game pairs. *)
  let current_guesses = ref [] in
  let record u peer =
    let cross = (u < m) <> (peer < m) in
    if cross then begin
      let a, b = if u < m then (u, peer - m) else (peer, u - m) in
      current_guesses := (a, b) :: !current_guesses
    end
  in
  let handlers u =
    let node_rng = Rng.split rng in
    let nbrs = Graph.neighbors g u in
    {
      Engine.on_round =
        (fun ~round:_ ->
          let peer, _ = Rng.pick node_rng nbrs in
          record u peer;
          Some (peer, Bitset.copy sets.(u)));
      on_request = (fun ~peer:_ ~round:_ _payload -> Bitset.copy sets.(u));
      on_push =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
      on_response =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
    }
  in
  let engine = Engine.create g ~handlers in
  let game_rounds = ref None in
  let broadcast_rounds = ref None in
  let rec go () =
    let finished = !game_rounds <> None && !broadcast_rounds <> None in
    if finished || Engine.current_round engine >= max_rounds then ()
    else begin
      current_guesses := [];
      Engine.step engine;
      let round = Engine.current_round engine in
      if (not (Game.is_solved game)) && !current_guesses <> [] then begin
        let (_ : Game.pair list) = Game.guess game !current_guesses in
        ()
      end;
      if !game_rounds = None && Game.is_solved game then game_rounds := Some round;
      if !broadcast_rounds = None && Rumor.local_broadcast_done g sets then
        broadcast_rounds := Some round;
      go ()
    end
  in
  (* A target-free game is solved before any round. *)
  if Game.is_solved game then game_rounds := Some 0;
  go ();
  let game_solved_first =
    match (!game_rounds, !broadcast_rounds) with
    | Some gr, Some br -> gr <= br
    | Some _, None -> true
    | None, _ -> false
  in
  let lemma3_holds =
    game_solved_first
    || match !broadcast_rounds with Some br -> br >= m | None -> false
  in
  {
    game_rounds = !game_rounds;
    broadcast_rounds = !broadcast_rounds;
    game_solved_first;
    lemma3_holds;
    guesses_submitted = Game.total_guesses game;
  }
