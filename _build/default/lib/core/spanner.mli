(** Baswana–Sen spanner construction with edge orientation
    (Appendix D; Lemma 13).

    For a parameter [k], the algorithm computes a [(2k-1)]-spanner in
    [k] iterations of randomized cluster sampling.  Following the
    paper's modification, every spanner edge is {e oriented}: it is an
    out-edge of the vertex whose rule added it, and with
    [k = Θ(log n)] each vertex's out-degree is [O(log n)] w.h.p. —
    the property RR Broadcast's running time rests on (Lemma 15).

    Edge weights are the latencies; ties are broken by endpoint ids so
    weights are effectively distinct, as [7] requires.  Cluster
    sampling uses the estimate [n̂] of [n] ([n <= n̂ <= n^c]); Lemma 13
    shows the out-degree only degrades to [O(n̂^(1/k) log n)]. *)

type t = {
  base : Gossip_graph.Graph.t;  (** the spanned graph *)
  spanner : Gossip_graph.Graph.t;  (** spanner as an undirected graph *)
  out_edges : (Gossip_graph.Graph.node * int) array array;
      (** [out_edges.(v)] are the oriented [(peer, latency)] edges
          added by [v] *)
  k : int;
}

(** [build rng g ~k ?n_hat ()] runs the construction.  [n_hat]
    defaults to [n].  Requires [k >= 1]; [k = 1] yields the graph
    itself. *)
val build :
  Gossip_util.Rng.t -> Gossip_graph.Graph.t -> k:int -> ?n_hat:int -> unit -> t

(** [max_out_degree t] is [Δ_out] over the orientation. *)
val max_out_degree : t -> int

(** [edge_count t] is the number of spanner edges. *)
val edge_count : t -> int

(** [stretch t] is the multiplicative stretch of the spanner w.r.t.
    its base graph (should be [<= 2k - 1]). *)
val stretch : t -> float
