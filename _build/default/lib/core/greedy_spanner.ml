module Graph = Gossip_graph.Graph
module Heap = Gossip_util.Heap

type t = { base : Graph.t; spanner : Graph.t; r : int }

(* Dijkstra over the partial spanner's mutable adjacency, abandoning
   paths longer than [limit]; returns the distance to [target] or
   [max_int]. *)
let bounded_distance adj ~source ~target ~limit =
  let n = Array.length adj in
  let dist = Array.make n max_int in
  let heap = Heap.create () in
  dist.(source) <- 0;
  Heap.push heap 0 source;
  let result = ref max_int in
  (try
     while not (Heap.is_empty heap) do
       let d, u = Heap.pop_min heap in
       if u = target then begin
         result := d;
         raise Exit
       end;
       if d = dist.(u) && d <= limit then
         List.iter
           (fun (v, w) ->
             let nd = d + w in
             if nd <= limit && nd < dist.(v) then begin
               dist.(v) <- nd;
               Heap.push heap nd v
             end)
           adj.(u)
     done
   with Exit -> ());
  !result

let build g ~r =
  if r < 1 then invalid_arg "Greedy_spanner.build: need r >= 1";
  let n = Graph.n g in
  let edges =
    List.sort
      (fun a b ->
        compare
          (a.Graph.latency, a.Graph.u, a.Graph.v)
          (b.Graph.latency, b.Graph.u, b.Graph.v))
      (Graph.edges g)
  in
  let adj = Array.make n [] in
  let kept = ref [] in
  List.iter
    (fun { Graph.u; v; latency } ->
      let limit = r * latency in
      let d = bounded_distance adj ~source:u ~target:v ~limit in
      if d > limit then begin
        adj.(u) <- (v, latency) :: adj.(u);
        adj.(v) <- (u, latency) :: adj.(v);
        kept := (u, v, latency) :: !kept
      end)
    edges;
  { base = g; spanner = Graph.of_edges ~n !kept; r }

let edge_count t = Graph.m t.spanner

let stretch t = Gossip_graph.Paths.stretch ~of_:t.spanner ~wrt:t.base
