(** Unified information dissemination (Theorem 20).

    The paper's final algorithm runs push-pull and the spanner route in
    parallel and stops with whichever finishes first:

    - latencies {e unknown}:
      [O(min((D + Delta) log^3 n, (l_star/phi_star) log n))] — the spanner route must
      first discover latencies (Section 4.2);
    - latencies {e known}:
      [O(min(D log^3 n, (l_star/phi_star) log n))].

    Running two protocols in parallel in the model costs a factor of
    two (alternate rounds between them); we simulate each branch
    separately and report the minimum and the winner, which preserves
    every asymptotic claim. *)

type knowledge = Known_latencies | Unknown_latencies

type winner = Push_pull_won | Spanner_route_won

type result = {
  rounds : int;  (** the minimum of the two branches *)
  winner : winner;
  pushpull_rounds : int option;  (** [None] when push-pull hit the cap *)
  spanner_rounds : int;  (** EID (+ discovery when unknown) total *)
  discovery_rounds : int;  (** 0 with known latencies *)
  success : bool;
}

(** [all_to_all rng g ~knowledge ~max_rounds] solves all-to-all
    dissemination both ways and reports the unified outcome.
    [max_rounds] caps the push-pull branch only. *)
val all_to_all :
  Gossip_util.Rng.t ->
  Gossip_graph.Graph.t ->
  knowledge:knowledge ->
  max_rounds:int ->
  result
