(** The T(k) doubling schedule and Path Discovery (Appendix E).

    [T(k)] is a recursively defined sequence of ℓ-DTG invocations:

    [T(1) = 1-DTG],  [T(2k) = T(k) · 2k-DTG · T(k)]

    so the parameter pattern for [k = 8] is
    [1 2 1 4 1 2 1 8 1 2 1 4 1 2 1].  Lemma 24: after executing
    [T(k)], any two nodes at weighted distance [<= k] have exchanged
    rumors.  Lemma 25: executing [T(D)] solves all-to-all
    dissemination in [O(D log² n log D)] time.  The schedule needs no
    bound on [n], and uses the heavy (latency-[2k]) edges only once
    between the two recursive halves — information is accumulated near
    a heavy edge before it is crossed.

    Path Discovery (Algorithm 6) handles unknown [D] by
    guess-and-double over [T(k)] with the Termination Check (the check
    broadcast rides on round-robin flooding over the latency-[<= k]
    adjacency, a valid [k]-distance broadcast per Section 5.3). *)

(** [t_sequence k] is the list of ℓ-DTG parameters of [T(k)]; [k] is
    rounded up to a power of two.  Length [2^log k + ... = 2·k' - 1]
    for [k'] the rounded value... precisely [2^(log2 k' + 1) - 1]
    entries. *)
val t_sequence : int -> int list

type result = {
  rounds : int;  (** total engine rounds *)
  k_final : int;
  attempts : int;  (** guess-and-double iterations (1 for known D) *)
  sets : Rumor.t array;
  success : bool;
  unanimous : bool;
}

(** [run_known_diameter g ~d] executes [T(d)] once. *)
val run_known_diameter : Gossip_graph.Graph.t -> d:int -> result

(** [run g] is Path Discovery with unknown diameter. *)
val run : Gossip_graph.Graph.t -> result
