(** Latency discovery (Section 4.2).

    When nodes do not know the latencies of their incident edges, they
    can measure them: probe each neighbor in sequence (one initiation
    per round, non-blocking) and time the responses.  After [Δ] probing
    rounds plus a [d]-round wait, every edge of latency [<= d] is
    known, in [Δ + d] rounds total.  With guess-and-double over [d]
    this is the [Õ(D + Δ)] preprocessing that turns the known-latency
    spanner algorithm into an unknown-latency one (Theorem 20's first
    branch). *)

type result = {
  rounds : int;  (** engine rounds consumed ([Δ + d]) *)
  known : (Gossip_graph.Graph.node * int) list array;
      (** per node, the discovered [(neighbor, latency)] pairs *)
  complete : bool;  (** every edge of latency [<= d] was discovered *)
  metrics : Gossip_sim.Engine.metrics;
}

(** [probe g ~d_bound] runs one probing pass with wait bound
    [d_bound]. *)
val probe : Gossip_graph.Graph.t -> d_bound:int -> result

(** [probe_doubling g ~target] repeats [probe] with
    [d = 1, 2, 4, ...] until [d >= target], accumulating rounds — the
    guess-and-double cost [O(Δ log D + D)].  Returns the accumulated
    result with [rounds] summed over attempts. *)
val probe_doubling : Gossip_graph.Graph.t -> target:int -> result
