module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph

type t = Bitset.t

let initial g = Array.init (Graph.n g) (fun v -> Bitset.singleton (Graph.n g) v)

let broadcast_done ~source sets = Array.for_all (fun s -> Bitset.mem s source) sets

let all_to_all_done sets = Array.for_all Bitset.is_full sets

let local_broadcast_done g ?ell sets =
  let ell = match ell with Some l -> l | None -> Graph.max_latency g in
  let ok = ref true in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      if latency <= ell && not (Bitset.mem sets.(u) v && Bitset.mem sets.(v) u) then ok := false)
    g;
  !ok

let count_knowing ~source sets =
  Array.fold_left (fun acc s -> if Bitset.mem s source then acc + 1 else acc) 0 sets
