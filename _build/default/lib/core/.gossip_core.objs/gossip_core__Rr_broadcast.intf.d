lib/core/rr_broadcast.mli: Gossip_graph Gossip_sim Rumor Spanner
