lib/core/greedy_spanner.mli: Gossip_graph
