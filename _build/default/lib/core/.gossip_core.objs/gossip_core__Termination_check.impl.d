lib/core/termination_check.ml: Array Gossip_graph Gossip_sim Gossip_util List
