lib/core/flooding.ml: Array Gossip_graph Gossip_sim Gossip_util Rumor
