lib/core/termination_check.mli: Gossip_graph Rumor
