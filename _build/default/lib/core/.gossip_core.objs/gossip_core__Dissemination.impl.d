lib/core/dissemination.ml: Discovery Eid Gossip_graph Gossip_util Push_pull
