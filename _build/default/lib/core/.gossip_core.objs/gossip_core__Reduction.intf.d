lib/core/reduction.mli: Gossip_graph Gossip_util
