lib/core/rumor.mli: Gossip_graph Gossip_util
