lib/core/random_local.mli: Gossip_graph Gossip_sim Gossip_util Rumor
