lib/core/robustness.ml: Array Gossip_graph Gossip_sim Gossip_util List Spanner
