lib/core/path_discovery.ml: Array Dtg Gossip_graph List Rumor Termination_check
