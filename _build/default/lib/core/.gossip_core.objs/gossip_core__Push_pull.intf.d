lib/core/push_pull.mli: Gossip_graph Gossip_sim Gossip_util
