lib/core/random_local.ml: Array Gossip_graph Gossip_sim Gossip_util List Rumor
