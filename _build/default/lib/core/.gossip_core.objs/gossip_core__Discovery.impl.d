lib/core/discovery.ml: Array Gossip_graph Gossip_sim Hashtbl List
