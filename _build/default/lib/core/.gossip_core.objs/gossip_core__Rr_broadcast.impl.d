lib/core/rr_broadcast.ml: Array Gossip_graph Gossip_sim Gossip_util List Rumor Spanner
