lib/core/dissemination.mli: Gossip_graph Gossip_util
