lib/core/eid.ml: Array Dtg Gossip_graph Gossip_util List Rr_broadcast Rumor Spanner Termination_check
