lib/core/flooding.mli: Gossip_graph Gossip_sim
