lib/core/rumor.ml: Array Gossip_graph Gossip_util
