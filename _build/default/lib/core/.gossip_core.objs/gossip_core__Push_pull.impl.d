lib/core/push_pull.ml: Array Gossip_graph Gossip_sim Gossip_util List Rumor
