lib/core/reduction.ml: Array Gossip_game Gossip_graph Gossip_sim Gossip_util Rumor
