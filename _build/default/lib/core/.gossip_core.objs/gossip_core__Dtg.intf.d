lib/core/dtg.mli: Gossip_graph Gossip_sim Gossip_util Rumor
