lib/core/path_discovery.mli: Gossip_graph Rumor
