lib/core/spanner.mli: Gossip_graph Gossip_util
