lib/core/greedy_spanner.ml: Array Gossip_graph Gossip_util List
