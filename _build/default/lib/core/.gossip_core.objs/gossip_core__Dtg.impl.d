lib/core/dtg.ml: Array Gossip_graph Gossip_sim Gossip_util List Rumor
