lib/core/eid.mli: Gossip_graph Gossip_util Rumor
