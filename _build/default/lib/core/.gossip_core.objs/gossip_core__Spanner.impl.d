lib/core/spanner.ml: Array Gossip_graph Gossip_util Hashtbl List
