lib/core/discovery.mli: Gossip_graph Gossip_sim
