lib/core/robustness.mli: Gossip_graph Gossip_sim Gossip_util Spanner
