(** ℓ-DTG: Deterministic Tree Gossip local broadcast (Appendix C).

    Haeupler's DTG solves local broadcast — every node exchanges rumors
    with all of its neighbors — in [O(log² n)] rounds on unweighted
    graphs.  The ℓ-DTG variant (Algorithm 5 in the paper) runs DTG on
    the subgraph [G_ℓ] of edges with latency [<= ℓ] and charges [ℓ]
    rounds per DTG step, for [O(ℓ log² n)] total.

    Each node runs the sequential program: while some [G_ℓ]-neighbor's
    rumor is missing, link a new neighbor [u_i], then run the pipelined
    PUSH ([j = i .. 1]) and PULL ([j = 1 .. i]) exchange sequences over
    the session list [u_1 .. u_i] with a working set [R'], repeat with
    [R''] in PULL–PUSH order, and fold both into the rumor set [R].
    Every step is one engine exchange padded to exactly [ℓ] rounds, so
    nodes stay in lockstep as the unweighted analysis assumes. *)

type result = {
  rounds : int option;  (** engine rounds until every node finished *)
  metrics : Gossip_sim.Engine.metrics;
  sets : Rumor.t array;  (** final rumor sets (aliases the input) *)
  link_counts : int array;
      (** how many neighbors each node linked — the number of DTG
          iterations it ran.  Appendix C's i-tree argument bounds this
          by [O(log n)]: a node active in iteration [i] roots a
          vertex-disjoint binomial tree of [2^i] nodes. *)
}

(** [phase g ~ell ~max_rounds ?rumors ?link_rng ()] runs one ℓ-DTG
    phase.  [rumors] (default: singletons) is updated in place, which
    lets EID and [T(k)] chain phases over accumulated rumor sets.  On
    normal completion, every node's set contains all its
    [G_ℓ]-neighbors' ids.

    [link_rng] switches "link to any new neighbor" from the
    deterministic lowest-id choice to a uniformly random one — the
    randomized flavour of Censor-Hillel et al.'s Superstep linking;
    the [ablation-dtg-linking] bench compares the two. *)
val phase :
  Gossip_graph.Graph.t ->
  ell:int ->
  max_rounds:int ->
  ?rumors:Rumor.t array ->
  ?link_rng:Gossip_util.Rng.t ->
  unit ->
  result

(** [local_broadcast g ~max_rounds] is a fresh full-latency DTG run:
    [phase] with [ell = max_latency g], reporting whether the local
    broadcast goal was reached. *)
val local_broadcast : Gossip_graph.Graph.t -> max_rounds:int -> result * bool
