module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type result = { rounds : int option; metrics : Engine.metrics }

let push_round_robin g ~source ~blocking ~max_rounds =
  let n = Graph.n g in
  let informed = Array.make n false in
  informed.(source) <- true;
  let count = ref 1 in
  let mark v =
    if not informed.(v) then begin
      informed.(v) <- true;
      incr count
    end
  in
  let handlers u =
    let nbrs = Graph.neighbors g u in
    let cursor = ref 0 in
    let in_flight = ref 0 in
    {
      Engine.on_round =
        (fun ~round:_ ->
          (* Push-only: uninformed nodes stay silent (they cannot pull),
             informed nodes cycle through neighbors. *)
          if (not informed.(u)) || Array.length nbrs = 0 then None
          else if blocking && !in_flight > 0 then None
          else begin
            let peer, _ = nbrs.(!cursor mod Array.length nbrs) in
            incr cursor;
            incr in_flight;
            Some (peer, true)
          end);
      on_request =
        (fun ~peer:_ ~round:_ _payload ->
          (* The response exists in the model but push-only protocols
             ignore its content: respond "nothing". *)
          false);
      on_push = (fun ~peer:_ ~round:_ payload -> if payload then mark u);
      on_response =
        (fun ~peer:_ ~round:_ _payload -> in_flight := max 0 (!in_flight - 1));
    }
  in
  let engine = Engine.create g ~handlers in
  let rounds = Engine.run_until engine ~max_rounds (fun () -> !count = n) in
  { rounds; metrics = Engine.metrics engine }

let flood_all g ~max_rounds =
  let sets = Rumor.initial g in
  let handlers u =
    let nbrs = Graph.neighbors g u in
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round:_ ->
          if Array.length nbrs = 0 then None
          else begin
            let peer, _ = nbrs.(!cursor mod Array.length nbrs) in
            incr cursor;
            Some (peer, Bitset.copy sets.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> Bitset.copy sets.(u));
      on_push =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
      on_response =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
    }
  in
  let engine = Engine.create ~payload_size:Bitset.cardinal g ~handlers in
  let rounds = Engine.run_until engine ~max_rounds (fun () -> Rumor.all_to_all_done sets) in
  { rounds; metrics = Engine.metrics engine }
