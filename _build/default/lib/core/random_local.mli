(** Randomized local broadcast baseline ("random unheard neighbor").

    The simplest protocol for the local broadcast problem: in every
    round each node initiates an exchange with a uniformly random
    [G_ℓ]-neighbor it has not yet heard from (directly or
    transitively), carrying its full heard-set and rumor set, and stops
    once it has heard from all of them.

    This is the flat randomized strategy that both Censor-Hillel et
    al.'s Superstep algorithm and Haeupler's DTG improve upon: without
    DTG's pipelined i-trees its worst case degrades toward [O(Δ)]
    (e.g. on stars where one hub must be heard by everyone), which is
    exactly the gap the [ablation-dtg-linking] bench exhibits.  It is
    also non-blocking — nodes initiate every round — so unlike DTG it
    needs no lockstep padding. *)

type result = {
  rounds : int option;
  metrics : Gossip_sim.Engine.metrics;
  sets : Rumor.t array;
}

(** [phase rng g ~ell ~max_rounds ?rumors ()] runs the protocol on the
    latency-[<= ell] subgraph until every node has heard from all its
    [G_ℓ]-neighbors.  [rumors] accumulates like {!Dtg.phase}. *)
val phase :
  Gossip_util.Rng.t ->
  Gossip_graph.Graph.t ->
  ell:int ->
  max_rounds:int ->
  ?rumors:Rumor.t array ->
  unit ->
  result

(** [local_broadcast rng g ~max_rounds] runs [phase] at the maximum
    latency and reports whether the local broadcast goal was reached. *)
val local_broadcast :
  Gossip_util.Rng.t -> Gossip_graph.Graph.t -> max_rounds:int -> result * bool
