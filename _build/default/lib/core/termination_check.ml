module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type result = { failed : bool array; rounds : int; unanimous : bool }

type gather = { frozen : Bitset.t; flag : bool; mismatch : bool }

let rr_rounds ~usable ~k =
  let delta_out = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 usable in
  (k * delta_out) + k

(* One round-robin flood with payload ['p]: each node cycles over its
   latency-<= k out-edges; [absorb u p] folds a received payload into
   node [u]'s state and [emit u] builds the next payload. *)
let flood ~base ~usable ~iterations ~k ~absorb ~emit =
  let handlers u =
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round ->
          if round >= iterations || Array.length usable.(u) = 0 then None
          else begin
            let peer, _ = usable.(u).(!cursor mod Array.length usable.(u)) in
            incr cursor;
            Some (peer, emit u)
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> emit u);
      on_push = (fun ~peer:_ ~round:_ payload -> absorb u payload);
      on_response = (fun ~peer:_ ~round:_ payload -> absorb u payload);
    }
  in
  let engine = Engine.create base ~handlers in
  for _ = 1 to iterations + k do
    Engine.step engine
  done;
  Engine.current_round engine

let run ~base ~out_edges ~k ~sets =
  let n = Graph.n base in
  if Array.length sets <> n then invalid_arg "Termination_check.run: sets size mismatch";
  let usable =
    Array.map
      (fun l -> Array.of_list (List.filter (fun (_, lat) -> lat <= k) (Array.to_list l)))
      out_edges
  in
  let iterations = rr_rounds ~usable ~k in
  (* Local flags: a neighbor missing from the rumor set. *)
  let frozen = Array.map Bitset.copy sets in
  let flag = Array.init n (fun u ->
      Array.exists (fun (v, _) -> not (Bitset.mem frozen.(u) v)) (Graph.neighbors base u))
  in
  let mismatch = Array.make n false in
  (* Pass 1: gather rumor-set fingerprints and flags. *)
  let rounds1 =
    flood ~base ~usable ~iterations ~k
      ~absorb:(fun u p ->
        if p.flag then flag.(u) <- true;
        if p.mismatch || not (Bitset.equal frozen.(u) p.frozen) then mismatch.(u) <- true)
      ~emit:(fun u -> { frozen = frozen.(u); flag = flag.(u); mismatch = mismatch.(u) })
  in
  (* Pass 2: flood the failed verdict. *)
  let failed = Array.init n (fun u -> flag.(u) || mismatch.(u)) in
  let rounds2 =
    flood ~base ~usable ~iterations ~k
      ~absorb:(fun u p -> if p then failed.(u) <- true)
      ~emit:(fun u -> failed.(u))
  in
  let unanimous =
    Array.for_all (fun f -> f = failed.(0)) failed
  in
  { failed; rounds = rounds1 + rounds2; unanimous }
