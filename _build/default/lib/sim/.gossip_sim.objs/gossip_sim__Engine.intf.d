lib/sim/engine.mli: Gossip_graph
