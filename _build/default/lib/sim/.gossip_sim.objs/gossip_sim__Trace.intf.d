lib/sim/trace.mli:
