lib/sim/proc.ml: Array Effect Engine Gossip_graph
