lib/sim/engine.ml: Array Gossip_graph Gossip_util Hashtbl List Option
