lib/sim/trace.ml: Buffer Float List Printf
