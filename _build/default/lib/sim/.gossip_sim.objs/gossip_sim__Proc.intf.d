lib/sim/proc.mli: Engine Gossip_graph
