module Graph = Gossip_graph.Graph

module Make (P : sig
  type payload
end) =
struct
  type fiber =
    | Unstarted
    | Running  (** transient: the fiber is executing right now *)
    | Sleeping of { wake : int; k : (unit, unit) Effect.Deep.continuation }
    | Awaiting_response of (P.payload, unit) Effect.Deep.continuation
    | Response_ready of { k : (P.payload, unit) Effect.Deep.continuation; payload : P.payload }
    | Finished

  type ctx = {
    node_id : Engine.node;
    g : Graph.t;
    mutable now : int;
    mutable fiber : fiber;
    mutable pending : (Engine.node * P.payload) option;
  }

  type _ Effect.t += Exchange : Engine.node * P.payload -> P.payload Effect.t
  type _ Effect.t += Wait : int -> unit Effect.t

  let id ctx = ctx.node_id

  let graph ctx = ctx.g

  let neighbors ctx = Graph.neighbors ctx.g ctx.node_id

  let round ctx = ctx.now

  let exchange _ctx ~peer payload = Effect.perform (Exchange (peer, payload))

  let wait _ctx d = if d > 0 then Effect.perform (Wait d)

  let is_done ctx = match ctx.fiber with Finished -> true | _ -> false

  (* Run or resume the fiber under a deep handler; the handler stores
     the suspension reason in [ctx.fiber]. *)
  let effc : type a. ctx -> a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
   fun ctx eff ->
    match eff with
    | Exchange (peer, payload) ->
        Some
          (fun k ->
            ctx.pending <- Some (peer, payload);
            ctx.fiber <- Awaiting_response k)
    | Wait d -> Some (fun k -> ctx.fiber <- Sleeping { wake = ctx.now + d; k })
    | _ -> None

  let handler ctx =
    {
      Effect.Deep.retc = (fun () -> ctx.fiber <- Finished);
      exnc = raise;
      effc = (fun eff -> effc ctx eff);
    }

  let start ctx program = Effect.Deep.match_with program ctx (handler ctx)

  (* The fiber advances during the initiation phase of each round: wake
     sleepers whose time has come, resume fibers whose response arrived
     in this round's delivery phase, and start fresh fibers. *)
  let on_round ctx program ~round =
    ctx.now <- round;
    (match ctx.fiber with
    | Unstarted ->
        ctx.fiber <- Running;
        start ctx program
    | Sleeping { wake; k } when wake <= round ->
        ctx.fiber <- Running;
        Effect.Deep.continue k ()
    | Response_ready { k; payload } ->
        ctx.fiber <- Running;
        Effect.Deep.continue k payload
    | Running -> invalid_arg "Proc: fiber re-entered"
    | Sleeping _ | Awaiting_response _ | Finished -> ());
    match ctx.pending with
    | Some initiation ->
        ctx.pending <- None;
        Some initiation
    | None -> None

  let on_response ctx ~peer:_ ~round:_ payload =
    match ctx.fiber with
    | Awaiting_response k -> ctx.fiber <- Response_ready { k; payload }
    | Unstarted | Running | Sleeping _ | Response_ready _ | Finished ->
        invalid_arg "Proc: response without an awaiting exchange"

  let make g u ~program ~on_request ~on_push =
    let ctx = { node_id = u; g; now = 0; fiber = Unstarted; pending = None } in
    let handlers =
      {
        Engine.on_round = (fun ~round -> on_round ctx program ~round);
        on_request;
        on_push;
        on_response = (fun ~peer ~round payload -> on_response ctx ~peer ~round payload);
      }
    in
    (ctx, handlers)

  let all_done ctxs = Array.for_all is_done ctxs
end
