type t = {
  name : string;
  mutable rev_samples : (int * float) list;
}

let create ~name = { name; rev_samples = [] }

let name t = t.name

let record t ~round value =
  match t.rev_samples with
  | (last_round, _) :: _ when round < last_round ->
      invalid_arg "Trace.record: rounds must be non-decreasing"
  | (_, last_value) :: _ when last_value = value -> ()
  | _ -> t.rev_samples <- (round, value) :: t.rev_samples

let samples t = List.rev t.rev_samples

let length t = List.length t.rev_samples

let last t = match t.rev_samples with [] -> None | s :: _ -> Some s

let to_csv traces =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "round";
  List.iter
    (fun t ->
      Buffer.add_char buf ',';
      Buffer.add_string buf t.name)
    traces;
  Buffer.add_char buf '\n';
  (* Union of rounds, sorted. *)
  let rounds =
    List.sort_uniq compare
      (List.concat_map (fun t -> List.map fst (samples t)) traces)
  in
  (* Walk each trace with a cursor carrying the last value forward. *)
  let cursors = List.map (fun t -> ref (samples t)) traces in
  let current = List.map (fun _ -> ref nan) traces in
  List.iter
    (fun round ->
      List.iter2
        (fun cursor value ->
          let rec advance () =
            match !cursor with
            | (r, v) :: rest when r <= round ->
                value := v;
                cursor := rest;
                advance ()
            | _ -> ()
          in
          advance ())
        cursors current;
      Buffer.add_string buf (string_of_int round);
      List.iter
        (fun value ->
          Buffer.add_char buf ',';
          if Float.is_nan !value then Buffer.add_string buf ""
          else Buffer.add_string buf (Printf.sprintf "%g" !value))
        current;
      Buffer.add_char buf '\n')
    rounds;
  Buffer.contents buf

let write_csv path traces =
  let oc = open_out path in
  (try output_string oc (to_csv traces)
   with e ->
     close_out oc;
     raise e);
  close_out oc
