(** Direct-style sequential node programs on top of {!Engine}.

    The paper's spanner-side algorithms (ℓ-DTG, RR broadcast, EID, path
    discovery) are naturally written as per-node sequential programs:
    "send rumors to [u_j]; wait [ℓ] time; add received rumors" (e.g.
    Algorithm 5).  This module runs such programs as cooperative fibers
    using OCaml effect handlers: [exchange] suspends the fiber until the
    response returns — exactly [ℓ] rounds later — and [wait] suspends
    for a number of rounds.

    One fiber per node; at most one outstanding blocking exchange per
    fiber, which respects the model's one-initiation-per-round rule.
    Responses to requests from {e other} nodes are handled by the
    protocol's [on_request] callback, independent of the fiber — the
    model's "automatic" responses.

    The module is a functor over the payload type because OCaml effect
    constructors are monomorphic. *)

module Make (P : sig
  type payload
end) : sig
  (** Per-node execution context, shared between the fiber and the
      engine callbacks. *)
  type ctx

  (** {1 Operations available inside a node program} *)

  (** [id ctx] is this node's identifier. *)
  val id : ctx -> Engine.node

  (** [graph ctx] is the (global) network; programs respecting the
      LOCAL model should only look at their own row. *)
  val graph : ctx -> Gossip_graph.Graph.t

  (** [neighbors ctx] is this node's incident [(peer, latency)] list. *)
  val neighbors : ctx -> (Engine.node * int) array

  (** [round ctx] is the current round. *)
  val round : ctx -> int

  (** [exchange ctx ~peer payload] initiates an exchange and blocks the
      fiber until the response arrives, [latency(id, peer)] rounds
      later; returns the peer's response payload.  Must only be called
      from inside the node program. *)
  val exchange : ctx -> peer:Engine.node -> P.payload -> P.payload

  (** [wait ctx d] suspends the fiber for [d] rounds (no-op when
      [d <= 0]). *)
  val wait : ctx -> int -> unit

  (** {1 Wiring into the engine} *)

  (** [is_done ctx] holds once the node program has returned. *)
  val is_done : ctx -> bool

  (** [make g u ~program ~on_request ~on_push] builds the engine
      handlers for node [u]: the fiber starts on the first round;
      [on_request] answers incoming requests at any time (read-only —
      see {!Engine.handlers}) and [on_push] merges the pushed
      payload. *)
  val make :
    Gossip_graph.Graph.t ->
    Engine.node ->
    program:(ctx -> unit) ->
    on_request:(peer:Engine.node -> round:int -> P.payload -> P.payload) ->
    on_push:(peer:Engine.node -> round:int -> P.payload -> unit) ->
    ctx * P.payload Engine.handlers

  (** [all_done ctxs] holds when every fiber has returned. *)
  val all_done : ctx array -> bool
end
