(** Time-series traces of protocol runs, exportable as CSV.

    Downstream users typically want the informed-set trajectory (the
    Markov process of Theorem 12's proof) or any per-round scalar for
    plotting.  A trace is a named sequence of (round, value) samples;
    [record] appends only when the value changed, keeping traces
    compact over long quiet periods. *)

type t

(** [create ~name] starts an empty trace. *)
val create : name:string -> t

val name : t -> string

(** [record t ~round value] appends a sample when [value] differs from
    the last recorded one (the first sample is always kept).  Rounds
    must be non-decreasing. *)
val record : t -> round:int -> float -> unit

(** [samples t] in chronological order. *)
val samples : t -> (int * float) list

val length : t -> int

(** [last t] is the most recent sample, if any. *)
val last : t -> (int * float) option

(** [to_csv traces] renders one or more traces as CSV with a header
    row [round,<name1>,<name2>,...]; traces are aligned on the union
    of their sample rounds, carrying the last value forward. *)
val to_csv : t list -> string

(** [write_csv path traces] writes [to_csv] to a file. *)
val write_csv : string -> t list -> unit
