type node = int

type edge = { u : node; v : node; latency : int }

type t = {
  n : int;
  adj : (node * int) array array; (* adj.(u) sorted by neighbor id *)
  m : int;
}

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let buckets = Array.make n [] in
  let count = ref 0 in
  let seen = Hashtbl.create (List.length edge_list) in
  List.iter
    (fun (u, v, latency) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      if latency < 1 then invalid_arg "Graph.of_edges: latency must be >= 1";
      let key = if u < v then (u, v) else (v, u) in
      if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: parallel edge";
      Hashtbl.add seen key ();
      buckets.(u) <- (v, latency) :: buckets.(u);
      buckets.(v) <- (u, latency) :: buckets.(v);
      incr count)
    edge_list;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort (fun (x, _) (y, _) -> compare x y) a;
        a)
      buckets
  in
  { n; adj; m = !count }

let n g = g.n

let m g = g.m

let neighbors g u =
  if u < 0 || u >= g.n then invalid_arg "Graph.neighbors: node out of range";
  g.adj.(u)

let degree g u = Array.length (neighbors g u)

let max_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

let latency g u v =
  let a = neighbors g u in
  (* Binary search on the sorted neighbor array. *)
  let rec go lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let w, lat = a.(mid) in
      if w = v then Some lat else if w < v then go (mid + 1) hi else go lo (mid - 1)
    end
  in
  go 0 (Array.length a - 1)

let mem_edge g u v = latency g u v <> None

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun (v, latency) -> if u < v then f { u; v; latency }) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun e -> acc := e :: !acc) g;
  List.rev !acc

let max_latency g =
  let best = ref 1 in
  iter_edges (fun e -> if e.latency > !best then best := e.latency) g;
  !best

let distinct_latencies g =
  let tbl = Hashtbl.create 16 in
  iter_edges (fun e -> Hashtbl.replace tbl e.latency ()) g;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let map_latencies f g =
  let acc = ref [] in
  iter_edges (fun e -> acc := (e.u, e.v, f e.u e.v e.latency) :: !acc) g;
  of_edges ~n:g.n !acc

let subgraph_le g l =
  let acc = ref [] in
  iter_edges (fun e -> if e.latency <= l then acc := (e.u, e.v, e.latency) :: !acc) g;
  of_edges ~n:g.n !acc

let is_connected g =
  if g.n <= 1 then true
  else begin
    let seen = Array.make g.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let visited = ref 1 in
    let rec loop () =
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          Array.iter
            (fun (v, _) ->
              if not seen.(v) then begin
                seen.(v) <- true;
                incr visited;
                stack := v :: !stack
              end)
            g.adj.(u);
          loop ()
    in
    loop ();
    !visited = g.n
  end

let volume g nodes = List.fold_left (fun acc u -> acc + degree g u) 0 nodes

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, Δ=%d, ℓmax=%d)" g.n g.m (max_degree g) (max_latency g)
