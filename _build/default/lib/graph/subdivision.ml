type t = { subdivided : Graph.t; original_nodes : int }

let subdivide g =
  let n = Graph.n g in
  let next = ref n in
  let acc = ref [] in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      if latency = 1 then acc := (u, v, 1) :: !acc
      else begin
        (* A chain u - a1 - ... - a(latency-1) - v of unit edges. *)
        let first = !next in
        next := !next + latency - 1;
        acc := (u, first, 1) :: !acc;
        for i = 0 to latency - 3 do
          acc := (first + i, first + i + 1, 1) :: !acc
        done;
        acc := (first + latency - 2, v, 1) :: !acc
      end)
    g;
  { subdivided = Graph.of_edges ~n:!next !acc; original_nodes = n }

let is_original t v = v < t.original_nodes
