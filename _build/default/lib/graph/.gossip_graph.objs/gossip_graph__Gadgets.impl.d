lib/graph/gadgets.ml: Array Buffer Float Gossip_util Graph Hashtbl List Paths Printf
