lib/graph/subdivision.mli: Graph
