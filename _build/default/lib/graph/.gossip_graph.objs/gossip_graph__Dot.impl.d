lib/graph/dot.ml: Array Buffer Graph Printf
