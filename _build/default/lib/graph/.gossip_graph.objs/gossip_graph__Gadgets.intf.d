lib/graph/gadgets.mli: Gossip_util Graph
