lib/graph/subdivision.ml: Graph
