lib/graph/gen.ml: Array Float Gossip_util Graph Hashtbl List
