lib/graph/paths.ml: Array Gossip_util Graph Hashtbl Queue
