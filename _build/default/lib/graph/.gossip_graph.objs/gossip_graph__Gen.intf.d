lib/graph/gen.mli: Gossip_util Graph
