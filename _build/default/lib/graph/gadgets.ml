module Rng = Gossip_util.Rng

type target = (int * int) list

let singleton_target rng ~m = [ (Rng.int rng m, Rng.int rng m) ]

let random_p_target rng ~m ~p =
  let acc = ref [] in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if Rng.bernoulli rng p then acc := (i, j) :: !acc
    done
  done;
  !acc

let check_target ~m target =
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= m || j < 0 || j >= m then
        invalid_arg "Gadgets: target pair out of range")
    target

let bipartite_edges ~m ~target ~fast_latency ~slow_latency ~with_right_clique =
  if m < 2 then invalid_arg "Gadgets: need m >= 2";
  if fast_latency < 1 || slow_latency < 1 then invalid_arg "Gadgets: latencies must be >= 1";
  check_target ~m target;
  let fast = Hashtbl.create (List.length target) in
  List.iter (fun ij -> Hashtbl.replace fast ij ()) target;
  let acc = ref [] in
  (* Clique on L at latency 1. *)
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      acc := (i, j, 1) :: !acc
    done
  done;
  if with_right_clique then
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        acc := (m + i, m + j, 1) :: !acc
      done
    done;
  (* Complete bipartite cross edges. *)
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let latency = if Hashtbl.mem fast (i, j) then fast_latency else slow_latency in
      acc := (i, m + j, latency) :: !acc
    done
  done;
  !acc

let g_p ~m ~target ~fast_latency ~slow_latency =
  Graph.of_edges ~n:(2 * m)
    (bipartite_edges ~m ~target ~fast_latency ~slow_latency ~with_right_clique:false)

let g_sym_p ~m ~target ~fast_latency ~slow_latency =
  Graph.of_edges ~n:(2 * m)
    (bipartite_edges ~m ~target ~fast_latency ~slow_latency ~with_right_clique:true)

type theorem6_info = { h_graph : Graph.t; h_target : target; h_delta : int }

let theorem6 rng ~n ~delta =
  if delta < 2 then invalid_arg "Gadgets.theorem6: need delta >= 2";
  if n < 2 * delta then invalid_arg "Gadgets.theorem6: need n >= 2*delta";
  let target = singleton_target rng ~m:delta in
  let gadget_edges =
    bipartite_edges ~m:delta ~target ~fast_latency:1 ~slow_latency:n ~with_right_clique:false
  in
  let clique_size = n - (2 * delta) in
  let base = 2 * delta in
  let acc = ref gadget_edges in
  for i = 0 to clique_size - 1 do
    for j = i + 1 to clique_size - 1 do
      acc := (base + i, base + j, 1) :: !acc
    done
  done;
  (* Attach the clique (when present) to gadget vertex 0. *)
  if clique_size > 0 then acc := (base, 0, 1) :: !acc;
  { h_graph = Graph.of_edges ~n !acc; h_target = target; h_delta = delta }

type theorem7_info = {
  t7_graph : Graph.t;
  t7_target : target;
  t7_ell : int;
  t7_phi : float;
}

let theorem7 rng ~n ~ell ~phi =
  if n < 2 then invalid_arg "Gadgets.theorem7: need n >= 2";
  if ell < 1 then invalid_arg "Gadgets.theorem7: need ell >= 1";
  if not (phi > 0.0 && phi <= 1.0) then invalid_arg "Gadgets.theorem7: phi out of (0,1]";
  let target = random_p_target rng ~m:n ~p:phi in
  let slow = max (2 * n) (ell + 1) in
  let t7_graph = g_p ~m:n ~target ~fast_latency:ell ~slow_latency:slow in
  { t7_graph; t7_target = target; t7_ell = ell; t7_phi = phi }

type theorem8_params = { c : float; layers : int; layer_size : int }

let theorem8_params ~n ~alpha =
  if n < 4 then invalid_arg "Gadgets.theorem8_params: need n >= 4";
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Gadgets.theorem8_params: alpha out of (0,1]";
  let nf = float_of_int n in
  let disc = 9.0 -. (8.0 /. (nf *. alpha)) in
  if disc < 0.0 then invalid_arg "Gadgets.theorem8_params: alpha below 8/(9n)";
  let c = 0.75 +. (0.25 *. sqrt disc) in
  let layers = max 4 (2 * int_of_float (Float.round (1.0 /. (c *. alpha)))) in
  let layer_size = max 2 (int_of_float (Float.round (c *. nf *. alpha))) in
  { c; layers; layer_size }

type theorem8_info = {
  t8_graph : Graph.t;
  t8_params : theorem8_params;
  t8_fast_edges : (Graph.node * Graph.node) array;
  t8_ell : int;
  t8_phi_analytic : float;
  t8_diameter_bound : int;
}

let theorem8_node ~layer_size ~layer ~index = (layer * layer_size) + index

let theorem8 rng ~layers ~layer_size ~ell =
  if layers < 3 then invalid_arg "Gadgets.theorem8: need layers >= 3";
  if layer_size < 2 then invalid_arg "Gadgets.theorem8: need layer_size >= 2";
  if ell < 1 then invalid_arg "Gadgets.theorem8: need ell >= 1";
  let node = theorem8_node ~layer_size in
  let acc = ref [] in
  for layer = 0 to layers - 1 do
    for i = 0 to layer_size - 1 do
      for j = i + 1 to layer_size - 1 do
        acc := (node ~layer ~index:i, node ~layer ~index:j, 1) :: !acc
      done
    done
  done;
  let fast_edges =
    Array.init layers (fun layer ->
        let next = (layer + 1) mod layers in
        let fi = Rng.int rng layer_size and fj = Rng.int rng layer_size in
        for i = 0 to layer_size - 1 do
          for j = 0 to layer_size - 1 do
            let latency = if i = fi && j = fj then 1 else ell in
            acc := (node ~layer ~index:i, node ~layer:next ~index:j, latency) :: !acc
          done
        done;
        (node ~layer ~index:fi, node ~layer:next ~index:fj))
  in
  let s = float_of_int layer_size in
  let half_nodes = float_of_int (layers / 2 * layer_size) in
  let volume_half = half_nodes *. ((3.0 *. s) -. 1.0) in
  let t8_phi_analytic = 2.0 *. s *. s /. volume_half in
  {
    t8_graph = Graph.of_edges ~n:(layers * layer_size) !acc;
    t8_params = { c = Float.nan; layers; layer_size };
    t8_fast_edges = fast_edges;
    t8_ell = ell;
    t8_phi_analytic;
    t8_diameter_bound = layers / 2;
  }

let describe_gadget ?(fast_latency = 1) g ~m =
  let buf = Buffer.create 256 in
  let fast = ref 0 and slow = ref 0 and slow_latency = ref 0 in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      let cross = (u < m && v >= m) || (v < m && u >= m) in
      if cross then
        if latency > fast_latency then begin
          incr slow;
          if latency > !slow_latency then slow_latency := latency
        end
        else incr fast)
    g;
  Buffer.add_string buf
    (Printf.sprintf "bipartite gadget: |L| = |R| = %d, n = %d, m = %d edges\n" m (Graph.n g)
       (Graph.m g));
  Buffer.add_string buf
    (Printf.sprintf "  cross edges: %d fast (thick/red in Fig. 1), %d slow at latency %d\n" !fast
       !slow !slow_latency);
  Buffer.add_string buf
    (Printf.sprintf "  max degree %d, weighted diameter %d\n" (Graph.max_degree g)
       (Paths.weighted_diameter g));
  Buffer.contents buf
