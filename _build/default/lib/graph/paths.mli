(** Shortest paths and diameters over latency-weighted graphs.

    The (weighted) diameter [D] — with latencies as weights — and the
    hop diameter [D_hop] are the distance parameters every bound in the
    paper is stated in. *)

(** [unreachable] is the distance reported for disconnected pairs. *)
val unreachable : int

(** [dijkstra g src] is the array of latency-weighted distances from
    [src]; [unreachable] marks unreachable nodes. *)
val dijkstra : Graph.t -> Graph.node -> int array

(** [distance g u v] is the weighted distance between [u] and [v]. *)
val distance : Graph.t -> Graph.node -> Graph.node -> int

(** [eccentricity g u] is the largest weighted distance from [u];
    [unreachable] when the graph is disconnected. *)
val eccentricity : Graph.t -> Graph.node -> int

(** [weighted_diameter g] is [D = max_u ecc(u)], by [n] Dijkstra runs.
    [unreachable] when disconnected. *)
val weighted_diameter : Graph.t -> int

(** [bfs_hops g src] is hop distances (every edge counting 1). *)
val bfs_hops : Graph.t -> Graph.node -> int array

(** [hop_diameter g] is the unweighted diameter [D_hop]. *)
val hop_diameter : Graph.t -> int

(** [weighted_radius g] is [min_u ecc(u)]. *)
val weighted_radius : Graph.t -> int

(** [stretch ~of_:s ~wrt:g] is the spanner stretch of subgraph [s] with
    respect to [g]: the maximum over edges [(u,v)] of [g] of
    [dist_s(u,v) / latency_g(u,v)].  It suffices to check edges of [g]
    because shortest paths are concatenations of edges.  Returns
    [infinity] when some edge's endpoints are disconnected in [s].
    Both graphs must have the same node count. *)
val stretch : of_:Graph.t -> wrt:Graph.t -> float
