let unreachable = max_int

let dijkstra g src =
  let dist = Array.make (Graph.n g) unreachable in
  let heap = Gossip_util.Heap.create () in
  dist.(src) <- 0;
  Gossip_util.Heap.push heap 0 src;
  while not (Gossip_util.Heap.is_empty heap) do
    let d, u = Gossip_util.Heap.pop_min heap in
    if d = dist.(u) then
      Array.iter
        (fun (v, latency) ->
          let nd = d + latency in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            Gossip_util.Heap.push heap nd v
          end)
        (Graph.neighbors g u)
  done;
  dist

let distance g u v = (dijkstra g u).(v)

let max_of_dist dist =
  Array.fold_left
    (fun acc d -> if d = unreachable || acc = unreachable then unreachable else max acc d)
    0 dist

let eccentricity g u = max_of_dist (dijkstra g u)

let weighted_diameter g =
  let best = ref 0 in
  let rec go u =
    if u >= Graph.n g then !best
    else begin
      let e = eccentricity g u in
      if e = unreachable then unreachable
      else begin
        if e > !best then best := e;
        go (u + 1)
      end
    end
  in
  if Graph.n g = 0 then 0 else go 0

let weighted_radius g =
  let best = ref unreachable in
  for u = 0 to Graph.n g - 1 do
    let e = eccentricity g u in
    if e < !best then best := e
  done;
  if Graph.n g = 0 then 0 else !best

let bfs_hops g src =
  let dist = Array.make (Graph.n g) unreachable in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun (v, _) ->
        if dist.(v) = unreachable then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  dist

let hop_diameter g =
  let best = ref 0 in
  let rec go u =
    if u >= Graph.n g then !best
    else begin
      let e = max_of_dist (bfs_hops g u) in
      if e = unreachable then unreachable
      else begin
        if e > !best then best := e;
        go (u + 1)
      end
    end
  in
  if Graph.n g = 0 then 0 else go 0

let stretch ~of_:s ~wrt:g =
  if Graph.n s <> Graph.n g then invalid_arg "Paths.stretch: node count mismatch";
  let worst = ref 1.0 in
  (* Cache Dijkstra-in-s runs per source to avoid recomputing for each
     incident edge. *)
  let cache = Hashtbl.create 64 in
  let dist_s u =
    match Hashtbl.find_opt cache u with
    | Some d -> d
    | None ->
        let d = dijkstra s u in
        Hashtbl.add cache u d;
        d
  in
  (try
     Graph.iter_edges
       (fun { Graph.u; v; latency } ->
         let d = (dist_s u).(v) in
         if d = unreachable then begin
           worst := infinity;
           raise Exit
         end;
         let ratio = float_of_int d /. float_of_int latency in
         if ratio > !worst then worst := ratio)
       g
   with Exit -> ());
  !worst
