let to_dot ?(name = "G") ?(fast_threshold = 1) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      let style =
        if latency <= fast_threshold then "style=bold"
        else Printf.sprintf "style=dashed, label=\"%d\"" latency
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d [%s];\n" u v style))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let oriented_to_dot ?(name = "G") ~out_edges g =
  if Array.length out_edges <> Graph.n g then
    invalid_arg "Dot.oriented_to_dot: orientation size mismatch";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Array.iteri
    (fun u edges ->
      Array.iter
        (fun (v, latency) ->
          Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=\"%d\"];\n" u v latency))
        edges)
    out_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write path dot =
  let oc = open_out path in
  (try output_string oc dot
   with e ->
     close_out oc;
     raise e);
  close_out oc
