(** Graph generators and latency assignment strategies.

    Standard topologies for tests, examples and benchmarks.  Each
    generator builds unit-latency edges; compose with [with_latencies]
    to install a latency distribution. *)

(** How to draw edge latencies. *)
type latency_spec =
  | Unit  (** every edge has latency 1 (the classical unweighted case) *)
  | Fixed of int  (** every edge has the given latency *)
  | Uniform of int * int  (** uniform integer in [\[lo, hi\]] *)
  | Bimodal of { fast : int; slow : int; p_fast : float }
      (** latency [fast] with probability [p_fast], else [slow] — the
          fast/slow dichotomy of the paper's gadgets *)
  | Power_law of { min_latency : int; max_latency : int; exponent : float }
      (** heavy-tailed latencies: P(ℓ) ∝ ℓ^-exponent over the range *)

(** [draw_latency rng spec] samples one latency. *)
val draw_latency : Gossip_util.Rng.t -> latency_spec -> int

(** [with_latencies rng spec g] redraws every edge latency from
    [spec]. *)
val with_latencies : Gossip_util.Rng.t -> latency_spec -> Graph.t -> Graph.t

(** {1 Deterministic topologies} (unit latencies) *)

(** [clique n] is the complete graph [K_n]. *)
val clique : int -> Graph.t

(** [star n] has node 0 as hub and [n-1] leaves. *)
val star : int -> Graph.t

(** [path n] is the path [0 - 1 - ... - n-1]. *)
val path : int -> Graph.t

(** [cycle n] is the [n]-cycle; requires [n >= 3]. *)
val cycle : int -> Graph.t

(** [grid rows cols] is the 2-D mesh. *)
val grid : int -> int -> Graph.t

(** [torus rows cols] is the 2-D mesh with wraparound; requires both
    dimensions [>= 3]. *)
val torus : int -> int -> Graph.t

(** [hypercube d] is the [d]-dimensional hypercube on [2^d] nodes. *)
val hypercube : int -> Graph.t

(** [binary_tree n] is the complete binary-heap-shaped tree on [n]
    nodes. *)
val binary_tree : int -> Graph.t

(** {1 Random topologies} *)

(** [erdos_renyi rng ~n ~p] is G(n, p) conditioned on nothing; callers
    needing connectivity should retry or take [p >= 2 ln n / n]. *)
val erdos_renyi : Gossip_util.Rng.t -> n:int -> p:float -> Graph.t

(** [erdos_renyi_connected rng ~n ~p] retries G(n,p) until connected
    (at most 1000 attempts).  @raise Failure when unlucky. *)
val erdos_renyi_connected : Gossip_util.Rng.t -> n:int -> p:float -> Graph.t

(** [random_regular rng ~n ~d] is a simple [d]-regular graph via the
    configuration model with restarts; requires [n * d] even and
    [d < n]. *)
val random_regular : Gossip_util.Rng.t -> n:int -> d:int -> Graph.t

(** {1 Composite topologies} *)

(** [ring_of_cliques ~cliques ~size ~bridge_latency] joins [cliques]
    cliques of [size] nodes into a ring; intra-clique edges have
    latency 1, consecutive cliques are bridged by one edge of latency
    [bridge_latency].  A classic low-conductance family. *)
val ring_of_cliques : cliques:int -> size:int -> bridge_latency:int -> Graph.t

(** [dumbbell ~size ~bridge_latency] is two cliques of [size] nodes
    joined by a single bridge edge — the minimal bottleneck graph. *)
val dumbbell : size:int -> bridge_latency:int -> Graph.t

(** [barabasi_albert rng ~n ~attach] grows a preferential-attachment
    graph: starting from a clique on [attach + 1] nodes, each new node
    attaches to [attach] distinct existing nodes chosen proportionally
    to degree — the social-network model for which rumor spreading is
    known to take Theta(log n) (Doerr et al., cited in the paper's
    related work).  Requires [n > attach >= 1]. *)
val barabasi_albert : Gossip_util.Rng.t -> n:int -> attach:int -> Graph.t

(** [watts_strogatz rng ~n ~k ~beta] is the small-world model: a ring
    lattice where each node connects to its [k] nearest neighbors on
    each side, with every edge rewired to a uniform endpoint with
    probability [beta].  Requires [n > 2 * k >= 2].  Rewiring keeps the
    graph simple; the result may in rare cases be disconnected. *)
val watts_strogatz : Gossip_util.Rng.t -> n:int -> k:int -> beta:float -> Graph.t
