(** Connected, undirected graphs with integer edge latencies.

    This is the network model of the paper (Section 1): [n] nodes,
    bidirectional edges, and a latency [>= 1] on every edge giving the
    round-trip time of one exchange over that edge.  The structure is
    immutable once built. *)

(** A node identifier in [\[0, n)]. *)
type node = int

(** An undirected edge [(u, v, latency)] with [u < v]. *)
type edge = { u : node; v : node; latency : int }

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on nodes [\[0, n)].

    Validation: endpoints in range, no self-loops, latencies [>= 1],
    and no parallel edges (the same unordered pair listed twice).
    @raise Invalid_argument when any check fails. *)
val of_edges : n:int -> (node * node * int) list -> t

(** [map_latencies f g] is [g] with every edge latency replaced by
    [f u v latency]; the result must still be [>= 1]. *)
val map_latencies : (node -> node -> int -> int) -> t -> t

(** {1 Accessors} *)

(** [n g] is the number of nodes. *)
val n : t -> int

(** [m g] is the number of (undirected) edges. *)
val m : t -> int

(** [neighbors g u] is the array of [(v, latency)] pairs incident to
    [u], in ascending neighbor order.  The returned array is owned by
    the graph; callers must not mutate it. *)
val neighbors : t -> node -> (node * int) array

(** [degree g u] is the number of edges incident to [u]. *)
val degree : t -> node -> int

(** [max_degree g] is [Δ]. *)
val max_degree : t -> int

(** [latency g u v] is the latency of edge [(u, v)], when present. *)
val latency : t -> node -> node -> int option

val mem_edge : t -> node -> node -> bool

(** [edges g] lists every edge once, with [u < v]. *)
val edges : t -> edge list

(** [iter_edges f g] applies [f] to every edge once, with [u < v]. *)
val iter_edges : (edge -> unit) -> t -> unit

(** [max_latency g] is the largest edge latency ([ℓ_max]); 1 on an
    edgeless graph. *)
val max_latency : t -> int

(** [distinct_latencies g] is the sorted list of distinct edge
    latencies. *)
val distinct_latencies : t -> int list

(** {1 Derived graphs} *)

(** [subgraph_le g l] keeps only edges of latency [<= l] (the graph
    [G_ℓ] of Section 4.1, without the self-loop multiplicities). *)
val subgraph_le : t -> int -> t

(** {1 Queries} *)

(** [is_connected g] tests connectivity (vacuously true for n <= 1). *)
val is_connected : t -> bool

(** [volume g nodes] is [Vol(U)] of Definition 1: the number of edge
    endpoints at nodes of [U], i.e. the sum of their degrees. *)
val volume : t -> node list -> int

val pp : Format.formatter -> t -> unit
