module Rng = Gossip_util.Rng

type latency_spec =
  | Unit
  | Fixed of int
  | Uniform of int * int
  | Bimodal of { fast : int; slow : int; p_fast : float }
  | Power_law of { min_latency : int; max_latency : int; exponent : float }

let draw_latency rng spec =
  match spec with
  | Unit -> 1
  | Fixed l ->
      if l < 1 then invalid_arg "Gen.draw_latency: Fixed < 1";
      l
  | Uniform (lo, hi) ->
      if lo < 1 || lo > hi then invalid_arg "Gen.draw_latency: bad Uniform range";
      Rng.int_in rng lo hi
  | Bimodal { fast; slow; p_fast } ->
      if fast < 1 || slow < 1 then invalid_arg "Gen.draw_latency: Bimodal < 1";
      if Rng.bernoulli rng p_fast then fast else slow
  | Power_law { min_latency; max_latency; exponent } ->
      if min_latency < 1 || min_latency > max_latency then
        invalid_arg "Gen.draw_latency: bad Power_law range";
      (* Inverse-CDF sampling of a bounded Pareto with the given
         exponent, rounded to an integer latency. *)
      let a = float_of_int min_latency and b = float_of_int max_latency in
      let alpha = exponent -. 1.0 in
      let u = Rng.float rng 1.0 in
      let x =
        if Float.abs alpha < 1e-9 then a *. ((b /. a) ** u)
        else begin
          let ha = a ** -.alpha and hb = b ** -.alpha in
          (ha -. (u *. (ha -. hb))) ** (-1.0 /. alpha)
        end
      in
      max min_latency (min max_latency (int_of_float (Float.round x)))

let with_latencies rng spec g =
  Graph.map_latencies (fun _ _ _ -> draw_latency rng spec) g

let clique n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v, 1) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let star n =
  if n < 1 then invalid_arg "Gen.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1, 1)))

let path n =
  if n < 1 then invalid_arg "Gen.path";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1, 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.of_edges ~n ((n - 1, 0, 1) :: List.init (n - 1) (fun i -> (i, i + 1, 1)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1), 1) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c, 1) :: !acc
    done
  done;
  Graph.of_edges ~n:(rows * cols) !acc

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: need dims >= 3";
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      acc := (id r c, id r ((c + 1) mod cols), 1) :: !acc;
      acc := (id r c, id ((r + 1) mod rows) c, 1) :: !acc
    done
  done;
  Graph.of_edges ~n:(rows * cols) !acc

let hypercube d =
  if d < 1 || d > 20 then invalid_arg "Gen.hypercube: d out of [1,20]";
  let n = 1 lsl d in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then acc := (u, v, 1) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let binary_tree n =
  if n < 1 then invalid_arg "Gen.binary_tree";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (((i + 1) - 1) / 2, i + 1, 1)))

let erdos_renyi rng ~n ~p =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then acc := (u, v, 1) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let erdos_renyi_connected rng ~n ~p =
  let rec go attempts =
    if attempts = 0 then failwith "Gen.erdos_renyi_connected: no connected sample in 1000 tries";
    let g = erdos_renyi rng ~n ~p in
    if Graph.is_connected g then g else go (attempts - 1)
  in
  go 1000

let random_regular rng ~n ~d =
  if d >= n || d < 1 then invalid_arg "Gen.random_regular: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n*d must be even";
  (* Configuration model with edge-swap repair: pair up half-edges,
     then fix self-loops and multi-edges by swapping endpoints with
     random good edges.  A full restart of the matching would almost
     never produce a simple graph for d beyond ~4. *)
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let rec attempt tries =
    if tries = 0 then failwith "Gen.random_regular: repair failed after 50 restarts";
    Rng.shuffle rng stubs;
    let pairs = Array.init (n * d / 2) (fun i -> (stubs.(2 * i), stubs.((2 * i) + 1))) in
    let seen = Hashtbl.create (n * d) in
    let key u v = if u < v then (u, v) else (v, u) in
    let good (u, v) = u <> v && not (Hashtbl.mem seen (key u v)) in
    (* First pass: register good pairs, queue the bad ones. *)
    let bad = ref [] in
    Array.iteri
      (fun i p -> if good p then Hashtbl.replace seen (key (fst p) (snd p)) i else bad := i :: !bad)
      pairs;
    (* Repair loop: swap a bad pair with a uniformly random pair. *)
    let budget = ref (200 * (List.length !bad + 1)) in
    let rec repair = function
      | [] -> true
      | i :: rest when good pairs.(i) ->
          Hashtbl.replace seen (key (fst pairs.(i)) (snd pairs.(i))) i;
          repair rest
      | i :: rest ->
          decr budget;
          if !budget <= 0 then false
          else begin
            let j = Rng.int rng (Array.length pairs) in
            let u, v = pairs.(i) and x, y = pairs.(j) in
            if j <> i
               && Hashtbl.find_opt seen (key x y) = Some j
               && u <> x && v <> y
               && key u x <> key v y
               && (not (Hashtbl.mem seen (key u x)))
               && not (Hashtbl.mem seen (key v y))
            then begin
              Hashtbl.remove seen (key x y);
              pairs.(i) <- (u, x);
              pairs.(j) <- (v, y);
              Hashtbl.replace seen (key v y) j;
              repair (i :: rest)
            end
            else repair (i :: rest)
          end
    in
    if repair !bad then
      Graph.of_edges ~n (Array.to_list (Array.map (fun (u, v) -> (u, v, 1)) pairs))
    else attempt (tries - 1)
  in
  attempt 50

let ring_of_cliques ~cliques ~size ~bridge_latency =
  if cliques < 3 then invalid_arg "Gen.ring_of_cliques: need >= 3 cliques";
  if size < 1 then invalid_arg "Gen.ring_of_cliques: need size >= 1";
  if bridge_latency < 1 then invalid_arg "Gen.ring_of_cliques: bad bridge latency";
  let n = cliques * size in
  let id c i = (c * size) + i in
  let acc = ref [] in
  for c = 0 to cliques - 1 do
    for i = 0 to size - 1 do
      for j = i + 1 to size - 1 do
        acc := (id c i, id c j, 1) :: !acc
      done
    done;
    (* Bridge from the last node of clique c to the first node of the
       next clique; distinct endpoints avoid parallel edges when
       size = 1 would otherwise collide. *)
    let next = (c + 1) mod cliques in
    acc := (id c (size - 1), id next 0, bridge_latency) :: !acc
  done;
  Graph.of_edges ~n !acc

let dumbbell ~size ~bridge_latency =
  if size < 2 then invalid_arg "Gen.dumbbell: need size >= 2";
  if bridge_latency < 1 then invalid_arg "Gen.dumbbell: bad bridge latency";
  let n = 2 * size in
  let acc = ref [] in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      acc := (u, v, 1) :: !acc;
      acc := (size + u, size + v, 1) :: !acc
    done
  done;
  acc := (size - 1, size, bridge_latency) :: !acc;
  Graph.of_edges ~n !acc

let barabasi_albert rng ~n ~attach =
  if attach < 1 || n <= attach then invalid_arg "Gen.barabasi_albert: need n > attach >= 1";
  (* Degree-proportional sampling via the repeated-endpoints list. *)
  let endpoints = ref [] in
  let acc = ref [] in
  let seed_size = attach + 1 in
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      acc := (u, v, 1) :: !acc;
      endpoints := u :: v :: !endpoints
    done
  done;
  let endpoints = ref (Array.of_list !endpoints) in
  let count = ref (Array.length !endpoints) in
  let push e =
    if !count >= Array.length !endpoints then begin
      let bigger = Array.make (2 * max 1 (Array.length !endpoints)) 0 in
      Array.blit !endpoints 0 bigger 0 !count;
      endpoints := bigger
    end;
    !endpoints.(!count) <- e;
    incr count
  in
  for u = seed_size to n - 1 do
    let chosen = Hashtbl.create attach in
    while Hashtbl.length chosen < attach do
      let v = !endpoints.(Rng.int rng !count) in
      if v <> u then Hashtbl.replace chosen v ()
    done;
    Hashtbl.iter
      (fun v () ->
        acc := (u, v, 1) :: !acc;
        push u;
        push v)
      chosen
  done;
  Graph.of_edges ~n !acc

let watts_strogatz rng ~n ~k ~beta =
  if k < 1 || n <= 2 * k then invalid_arg "Gen.watts_strogatz: need n > 2k >= 2";
  if not (beta >= 0.0 && beta <= 1.0) then invalid_arg "Gen.watts_strogatz: beta out of [0,1]";
  (* Ring lattice edges (u, u+j) for j = 1..k, each rewired with
     probability beta to a fresh random endpoint. *)
  let have = Hashtbl.create (n * k) in
  let key u v = if u < v then (u, v) else (v, u) in
  for u = 0 to n - 1 do
    for j = 1 to k do
      Hashtbl.replace have (key u ((u + j) mod n)) ()
    done
  done;
  for u = 0 to n - 1 do
    for j = 1 to k do
      if Rng.bernoulli rng beta then begin
        let v = (u + j) mod n in
        (* Try a few times to find a fresh endpoint; keep the lattice
           edge when the neighborhood is saturated. *)
        let rec rewire tries =
          if tries = 0 then ()
          else begin
            let w = Rng.int rng n in
            if w <> u && w <> v && not (Hashtbl.mem have (key u w)) then begin
              Hashtbl.remove have (key u v);
              Hashtbl.replace have (key u w) ()
            end
            else rewire (tries - 1)
          end
        in
        if Hashtbl.mem have (key u v) then rewire 32
      end
    done
  done;
  Graph.of_edges ~n (Hashtbl.fold (fun (u, v) () acc -> (u, v, 1) :: acc) have [])
