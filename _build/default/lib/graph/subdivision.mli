(** Edge subdivision — the strawman of footnote 3.

    One might model an edge of latency [w] as a path of [w] unit
    edges.  Footnote 3 of the paper explains why the classical
    conductance of the subdivided graph does {e not} characterise the
    original network: the imaginary intermediate nodes can relay (pull
    from both endpoints), the volume is inflated by the path nodes, and
    the resulting conductance value answers a question about a
    different network.  This module builds the subdivision so the
    mismatch can be measured (see the [ablation-subdivision] bench).

    Subdivided node numbering: original nodes keep their ids; the
    auxiliary nodes of each edge occupy a contiguous fresh range. *)

type t = {
  subdivided : Graph.t;
  original_nodes : int;  (** ids [< original_nodes] are real nodes *)
}

(** [subdivide g] replaces every edge of latency [w >= 2] by a path of
    [w] unit-latency edges through [w - 1] fresh nodes. *)
val subdivide : Graph.t -> t

(** [is_original t v] holds for the real (non-auxiliary) nodes. *)
val is_original : t -> Graph.node -> bool

(* The classical conductance of [subdivided] — the quantity footnote 3
   warns against — is [Gossip_conductance.Spectral.phi_ell sub 1]; it
   lives in the conductance library to keep dependencies acyclic. *)
