(** The paper's lower-bound gadget constructions.

    Section 3.2 builds networks from a bipartite "guessing game gadget":
    vertex sets [L] and [R] of [m] nodes each, a complete bipartite
    graph of [m²] cross edges, and a latency-1 clique on [L] (and on [R]
    for the symmetric variant).  Cross edges in the hidden target set
    are fast; all others are slow.  Figure 1 shows [G(P)] and
    [G_sym(P)]; Figure 2 wires symmetric gadgets into a ring
    (Theorem 8).

    Node numbering: [L = 0 .. m-1] and [R = m .. 2m-1] for the bipartite
    gadgets; layer-major for the ring. *)

(** A target set: pairs [(i, j)] of [L]-index and [R]-index, each in
    [\[0, m)]. *)
type target = (int * int) list

(** [singleton_target rng ~m] is one uniform pair of [L×R]
    (Lemma 4's predicate [|T| = 1]). *)
val singleton_target : Gossip_util.Rng.t -> m:int -> target

(** [random_p_target rng ~m ~p] includes each pair of [L×R]
    independently with probability [p] (the [Random_p] predicate). *)
val random_p_target : Gossip_util.Rng.t -> m:int -> p:float -> target

(** {1 Bipartite gadgets (Figure 1)} *)

(** [g_p ~m ~target ~fast_latency ~slow_latency] is the gadget [G(P)]:
    clique on [L] (latency 1), complete bipartite [L×R] with cross edge
    [(i, j)] at latency [fast_latency] when [(i, j) ∈ target] and
    [slow_latency] otherwise. *)
val g_p : m:int -> target:target -> fast_latency:int -> slow_latency:int -> Graph.t

(** [g_sym_p] is [G_sym(P)]: [g_p] plus a latency-1 clique on [R]. *)
val g_sym_p : m:int -> target:target -> fast_latency:int -> slow_latency:int -> Graph.t

(** {1 Theorem 6: the Ω(Δ) network H} *)

type theorem6_info = {
  h_graph : Graph.t;
  h_target : target;  (** the singleton fast pair *)
  h_delta : int;  (** gadget half-size; max degree is Θ(h_delta) *)
}

(** [theorem6 rng ~n ~delta] is the [n]-node network [H]: gadget
    [G(2·delta, |T|=1)] (fast edge latency 1, slow latency [n]) plus a
    latency-1 clique on the remaining [n - 2·delta] vertices, one of
    which attaches to gadget vertex 0.  Requires [n >= 2 * delta] and
    [delta >= 2]. *)
val theorem6 : Gossip_util.Rng.t -> n:int -> delta:int -> theorem6_info

(** {1 Theorem 7: the conductance gadget} *)

type theorem7_info = {
  t7_graph : Graph.t;
  t7_target : target;  (** pairs whose cross edge got latency [ell] *)
  t7_ell : int;
  t7_phi : float;  (** the requested φ_ℓ *)
}

(** [theorem7 rng ~n ~ell ~phi] is the [2n]-node gadget
    [G(Random_φ)]: clique on [L] at latency 1; every cross edge fast
    (latency [ell]) independently with probability [phi], slow
    (latency [2n]) otherwise.  W.h.p. the weighted diameter is [O(ell)]
    and the weighted conductance [Θ(phi)] for
    [phi >= Ω(log n / n)]. *)
val theorem7 : Gossip_util.Rng.t -> n:int -> ell:int -> phi:float -> theorem7_info

(** {1 Theorem 8: the layered ring (Figure 2)} *)

type theorem8_params = {
  c : float;  (** the constant [c ∈ \[1, 3/2)] of the proof *)
  layers : int;  (** [k], forced even and [>= 4] *)
  layer_size : int;  (** [s = c·n·α], forced [>= 2] *)
}

(** [theorem8_params ~n ~alpha] computes the proof's [c], [k = 2/(cα)]
    and [s = cnα], rounded to usable integers. *)
val theorem8_params : n:int -> alpha:float -> theorem8_params

type theorem8_info = {
  t8_graph : Graph.t;
  t8_params : theorem8_params;
  t8_fast_edges : (Graph.node * Graph.node) array;
      (** the one latency-1 cross edge per adjacent layer pair *)
  t8_ell : int;
  t8_phi_analytic : float;
      (** φ_ℓ of the half-ring cut (Lemma 9): [2s² / (Vol(C))] *)
  t8_diameter_bound : int;  (** Θ(k/2): layer count over two *)
}

(** [theorem8 rng ~layers ~layer_size ~ell] wires [layers] cliques of
    [layer_size] nodes into a ring: latency-1 cliques inside layers,
    complete bipartite graphs between adjacent layers with every cross
    edge at latency [ell] except one uniformly random latency-1 edge
    per pair.  Requires [layers >= 3] even or odd, [layer_size >= 2],
    [ell >= 1]. *)
val theorem8 : Gossip_util.Rng.t -> layers:int -> layer_size:int -> ell:int -> theorem8_info

(** [theorem8_node ~layer_size ~layer ~index] is the node id of the
    [index]-th vertex of layer [layer]. *)
val theorem8_node : layer_size:int -> layer:int -> index:int -> Graph.node

(** {1 Structure rendering (Figures 1–2)} *)

(** [describe_gadget ?fast_latency g ~m] is a short multi-line
    structural summary of a bipartite gadget (degrees, fast/slow edge
    counts) used by the figure-reproduction bench.  Cross edges of
    latency [<= fast_latency] (default 1) count as fast. *)
val describe_gadget : ?fast_latency:int -> Graph.t -> m:int -> string
