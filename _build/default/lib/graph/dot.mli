(** Graphviz DOT export.

    Renders latency-weighted graphs for inspection — in particular the
    paper's gadget constructions (Figure 1's fast/slow edge styling is
    reproduced: fast edges bold, slow edges dashed, labels carry
    latencies). *)

(** [to_dot ?name ?fast_threshold g] renders an undirected graph.
    Edges with latency [<= fast_threshold] (default 1) are drawn bold;
    others dashed with their latency as label. *)
val to_dot : ?name:string -> ?fast_threshold:int -> Graph.t -> string

(** [oriented_to_dot ?name ~out_edges g] renders a directed view of an
    edge orientation (e.g. a spanner's out-edges) over the node set of
    [g]. *)
val oriented_to_dot :
  ?name:string -> out_edges:(Graph.node * int) array array -> Graph.t -> string

(** [write path dot] writes a rendered string to a file. *)
val write : string -> string -> unit
