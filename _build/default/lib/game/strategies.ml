module Rng = Gossip_util.Rng

type outcome = { rounds : int; guesses : int }

type strategy = Rng.t -> Game.t -> max_rounds:int -> outcome option

let finish game = { rounds = Game.rounds_played game; guesses = Game.total_guesses game }

let play_rounds game ~max_rounds make_guesses =
  let rec go r =
    if Game.is_solved game then Some (finish game)
    else if r >= max_rounds then None
    else begin
      match make_guesses () with
      | [] -> None (* strategy gave up: nothing left to try *)
      | guesses ->
          let (_ : Game.pair list) = Game.guess game guesses in
          go (r + 1)
    end
  in
  go 0

let random_guessing rng game ~max_rounds =
  let m = Game.m game in
  let make () =
    let acc = ref [] in
    for a = 0 to m - 1 do
      acc := (a, Rng.int rng m) :: !acc
    done;
    for b = 0 to m - 1 do
      acc := (Rng.int rng m, b) :: !acc
    done;
    !acc
  in
  play_rounds game ~max_rounds make

let fresh_pairs rng game ~max_rounds =
  let m = Game.m game in
  (* For each B-element: a private random order over A and a cursor;
     hit B-elements are retired as the oracle reveals them. *)
  let orders =
    Array.init m (fun _ ->
        let o = Array.init m (fun i -> i) in
        Rng.shuffle rng o;
        o)
  in
  let cursor = Array.make m 0 in
  let retired = Array.make m false in
  let make () =
    let acc = ref [] in
    let count = ref 0 in
    let made_progress = ref true in
    (* Round-robin over live B-elements until the 2m budget fills. *)
    while !count < 2 * m && !made_progress do
      made_progress := false;
      for b = 0 to m - 1 do
        if (not retired.(b)) && cursor.(b) < m && !count < 2 * m then begin
          acc := (orders.(b).(cursor.(b)), b) :: !acc;
          cursor.(b) <- cursor.(b) + 1;
          incr count;
          made_progress := true
        end
      done
    done;
    !acc
  in
  let rec go r =
    if Game.is_solved game then Some (finish game)
    else if r >= max_rounds then None
    else begin
      match make () with
      | [] -> None
      | guesses ->
          let hits = Game.guess game guesses in
          List.iter (fun (_, b) -> retired.(b) <- true) hits;
          go (r + 1)
    end
  in
  go 0

let sequential_scan _rng game ~max_rounds =
  let m = Game.m game in
  let next = ref 0 in
  let make () =
    let acc = ref [] in
    let budget = min (2 * m) ((m * m) - !next) in
    for i = !next to !next + budget - 1 do
      acc := (i / m, i mod m) :: !acc
    done;
    next := !next + budget;
    if budget = 0 then next := 0;
    (* Wrap around: Eq. 2 can leave targets alive after a full pass only
       if they were removed, so a second pass never happens in a
       solvable game; wrapping keeps the strategy total anyway. *)
    if !acc = [] then [ (0, 0) ] else !acc
  in
  play_rounds game ~max_rounds make

let all =
  [
    ("random-guessing", random_guessing);
    ("fresh-pairs", fresh_pairs);
    ("sequential-scan", sequential_scan);
  ]
