(** Alice strategies for the guessing game (Lemmas 4–5).

    Each strategy plays a game to completion (or to a round cap) and
    returns the number of rounds used, [None] when the cap was hit.

    - [random_guessing] is the oblivious strategy of Lemma 5's second
      part — for each [a ∈ A] a uniform [b], for each [b ∈ B] a uniform
      [a], [2m] guesses per round.  This is exactly what push-pull does
      on the gadget, and it needs [Ω(log m / p)] rounds in expectation.
    - [fresh_pairs] is the adaptive strategy achieving the general
      [Θ(1/p)] bound: never repeat a guess, never guess a [B]-element
      already hit, spread guesses evenly over the still-unhit
      [B]-elements.
    - [sequential_scan] enumerates [A × B] in fixed order, [2m] pairs a
      round — the natural deterministic strategy; on a singleton target
      it exhibits the [Ω(m)] bound of Lemma 4. *)

type outcome = { rounds : int; guesses : int }

type strategy = Gossip_util.Rng.t -> Game.t -> max_rounds:int -> outcome option

val random_guessing : strategy

val fresh_pairs : strategy

val sequential_scan : strategy

(** [name_of s] for table output. *)
val all : (string * strategy) list
