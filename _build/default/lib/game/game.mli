(** The combinatorial guessing game of Section 3.1.

    [Guessing(2m, P)]: Alice faces an oracle holding a hidden target
    set [T_1 ⊆ A × B] drawn by predicate [P], with [|A| = |B| = m].
    Each round she submits at most [2m] guesses [X_r ⊆ A × B]; the
    oracle reveals the hits [X_r ∩ T_r] and then removes every target
    pair whose [B]-component was hit (Eq. 2):

    [T_{r+1} = T_r \ (T_r^A × ((X_r ∩ T_r)^B))]

    The game ends in the first round after which the target is empty.

    Pairs are [(a, b)] with [a, b ∈ [0, m)] indexing [A] and [B]. *)

type pair = int * int

type t

(** [create ~m ~target] starts a game.  Pair indices must lie in
    [\[0, m)]. *)
val create : m:int -> target:pair list -> t

(** [m t] is the side size. *)
val m : t -> int

(** [rounds_played t] counts completed [guess] calls. *)
val rounds_played : t -> int

(** [total_guesses t] counts all submitted pairs so far. *)
val total_guesses : t -> int

(** [target_size t] is [|T_r|] (0 once solved). *)
val target_size : t -> int

(** [initial_target_b t] is [T_1^B] — the set of B-elements Alice must
    eventually hit. *)
val initial_target_b : t -> int list

(** [is_solved t] holds when the target set is empty. *)
val is_solved : t -> bool

(** [guess t pairs] plays one round and returns the hits
    [X_r ∩ T_r].
    @raise Invalid_argument if more than [2m] guesses are submitted,
    an index is out of range, or the game is already solved. *)
val guess : t -> pair list -> pair list
