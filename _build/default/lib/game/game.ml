type pair = int * int

module Pair_set = Set.Make (struct
  type t = pair

  let compare = compare
end)

type t = {
  m : int;
  mutable target : Pair_set.t;
  initial_b : int list;
  mutable rounds : int;
  mutable guesses : int;
}

let check_pair m (a, b) =
  if a < 0 || a >= m || b < 0 || b >= m then invalid_arg "Game: pair index out of range"

let create ~m ~target =
  if m < 1 then invalid_arg "Game.create: need m >= 1";
  List.iter (check_pair m) target;
  let set = Pair_set.of_list target in
  let bs =
    Pair_set.fold (fun (_, b) acc -> if List.mem b acc then acc else b :: acc) set []
  in
  { m; target = set; initial_b = List.sort compare bs; rounds = 0; guesses = 0 }

let m t = t.m

let rounds_played t = t.rounds

let total_guesses t = t.guesses

let target_size t = Pair_set.cardinal t.target

let initial_target_b t = t.initial_b

let is_solved t = Pair_set.is_empty t.target

let guess t pairs =
  if is_solved t then invalid_arg "Game.guess: game already solved";
  if List.length pairs > 2 * t.m then invalid_arg "Game.guess: more than 2m guesses";
  List.iter (check_pair t.m) pairs;
  let hits = List.filter (fun p -> Pair_set.mem p t.target) pairs in
  (* Eq. 2: drop every target pair whose B-component was hit. *)
  let hit_bs = List.fold_left (fun acc (_, b) -> b :: acc) [] hits in
  t.target <- Pair_set.filter (fun (_, b) -> not (List.mem b hit_bs)) t.target;
  t.rounds <- t.rounds + 1;
  t.guesses <- t.guesses + List.length pairs;
  hits
