lib/game/game.ml: List Set
