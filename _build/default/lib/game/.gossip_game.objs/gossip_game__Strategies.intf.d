lib/game/strategies.mli: Game Gossip_util
