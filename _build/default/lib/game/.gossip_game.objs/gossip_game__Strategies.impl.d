lib/game/strategies.ml: Array Game Gossip_util List
