lib/game/game.mli:
