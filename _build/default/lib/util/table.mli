(** Aligned plain-text tables for experiment output.

    The bench harness prints one table per reproduced claim; this module
    renders headers, separators and right-aligned numeric columns so the
    output reads like the rows a paper would report. *)

type align = Left | Right

(** A table under construction. *)
type t

(** [create ~title ~columns] starts a table.  Each column is a header
    string with an alignment. *)
val create : title:string -> columns:(string * align) list -> t

(** [add_row t cells] appends one row; the number of cells must match
    the number of columns. *)
val add_row : t -> string list -> unit

(** Convenience cell formatters. *)
val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

(** [render t] is the full table as a string, including the title and a
    rule under the header. *)
val render : t -> string

(** [print t] writes [render t] to stdout followed by a blank line. *)
val print : t -> unit
