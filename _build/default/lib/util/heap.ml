type 'a t = { mutable keys : int array; mutable vals : 'a array; mutable size : int }

let create () = { keys = Array.make 16 0; vals = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.keys in
  if h.size >= cap then begin
    let keys' = Array.make (2 * cap) 0 in
    Array.blit h.keys 0 keys' 0 h.size;
    h.keys <- keys';
    let vals' = Array.make (2 * cap) x in
    Array.blit h.vals 0 vals' 0 h.size;
    h.vals <- vals'
  end
  else if Array.length h.vals = 0 then h.vals <- Array.make cap x

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h prio x =
  grow h x;
  h.keys.(h.size) <- prio;
  h.vals.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek_min h =
  if h.size = 0 then raise Not_found;
  (h.keys.(0), h.vals.(0))

let pop_min h =
  if h.size = 0 then raise Not_found;
  let k = h.keys.(0) and v = h.vals.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    sift_down h 0
  end;
  (k, v)

let clear h = h.size <- 0
