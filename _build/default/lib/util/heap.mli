(** Binary min-heap keyed by integer priority.

    Used by Dijkstra and by the simulator's event queue.  Duplicate
    priorities are permitted; ties pop in unspecified order. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h prio x] inserts [x] with priority [prio]. *)
val push : 'a t -> int -> 'a -> unit

(** [pop_min h] removes and returns the minimum-priority binding.
    @raise Not_found on an empty heap. *)
val pop_min : 'a t -> int * 'a

(** [peek_min h] returns the minimum-priority binding without removing
    it.  @raise Not_found on an empty heap. *)
val peek_min : 'a t -> int * 'a

val clear : 'a t -> unit
