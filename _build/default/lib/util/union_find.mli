(** Disjoint-set forest with path compression and union by rank.

    Used for connectivity checks and spanner validation. *)

type t

(** [create n] makes [n] singleton sets [0 .. n-1]. *)
val create : int -> t

(** [find t i] is the canonical representative of [i]'s set. *)
val find : t -> int -> int

(** [union t i j] merges the sets of [i] and [j]; returns [false] when
    they were already joined. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int
