lib/util/heap.mli:
