lib/util/rng.mli:
