lib/util/bitset.ml: Array Bytes Format List
