lib/util/table.mli:
