type align = Left | Right

type t = {
  title : string;
  columns : (string * align) array;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns = Array.of_list columns; rows = [] }

let add_row t cells =
  if List.length cells <> Array.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let cell_int = string_of_int

let cell_float ?(decimals = 2) x =
  if Float.is_integer x && Float.abs x < 1e15 && decimals = 0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" decimals x

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.init ncols (fun c -> String.length (fst t.columns.(c))) in
  List.iter
    (fun row ->
      List.iteri (fun c cell -> widths.(c) <- max widths.(c) (String.length cell)) row)
    rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad align width s =
    let missing = width - String.length s in
    if missing <= 0 then s
    else
      match align with
      | Left -> s ^ String.make missing ' '
      | Right -> String.make missing ' ' ^ s
  in
  let emit_row cells =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (snd t.columns.(c)) widths.(c) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (Array.to_list (Array.map fst t.columns));
  let rule_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
