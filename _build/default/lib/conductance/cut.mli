(** Cuts and the weight-ℓ conductance of a cut (Definition 1).

    For a node set [U ⊆ V] and a latency threshold [ℓ]:

    [φ_ℓ(U) = |E_ℓ(U, V \ U)| / min(Vol(U), Vol(V \ U))]

    where [E_ℓ] keeps only cut edges of latency ≤ ℓ and [Vol] counts
    all edge endpoints (full degrees, independent of ℓ). *)

(** A cut, as membership of the side containing it. *)
type side = bool array

(** [of_list g nodes] is the side containing exactly [nodes]. *)
val of_list : Gossip_graph.Graph.t -> Gossip_graph.Graph.node list -> side

(** [of_mask n mask] interprets bit [i] of [mask] as membership of node
    [i]; requires [n <= 62]. *)
val of_mask : int -> int -> side

(** [cut_edges_le g side l] counts cut edges of latency [<= l]. *)
val cut_edges_le : Gossip_graph.Graph.t -> side -> int -> int

(** [volumes g side] is [(Vol(U), Vol(V \ U))]. *)
val volumes : Gossip_graph.Graph.t -> side -> int * int

(** [phi_ell g side l] is the weight-ℓ conductance of the cut, per
    Definition 1.  Returns [infinity] when a side is empty (no cut). *)
val phi_ell : Gossip_graph.Graph.t -> side -> int -> float
