module Graph = Gossip_graph.Graph

let max_nodes = 22

let check g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Exact: need n >= 2";
  if n > max_nodes then invalid_arg "Exact: n too large for exhaustive enumeration"

(* Enumerate all subsets containing node 0; mask bit (i-1) encodes
   membership of node i.  For each cut, the numerator only counts edges
   of latency <= l. *)
let phi_ell_with_cut g l =
  check g;
  let n = Graph.n g in
  let edges = Array.of_list (Graph.edges g) in
  let degrees = Array.init n (Graph.degree g) in
  let total_volume = 2 * Graph.m g in
  let in_set mask u = u = 0 || mask land (1 lsl (u - 1)) <> 0 in
  let best = ref infinity in
  let best_mask = ref 0 in
  let limit = (1 lsl (n - 1)) - 1 in
  for mask = 0 to limit - 1 do
    let vol_in = ref degrees.(0) in
    for u = 1 to n - 1 do
      if mask land (1 lsl (u - 1)) <> 0 then vol_in := !vol_in + degrees.(u)
    done;
    let denom = min !vol_in (total_volume - !vol_in) in
    if denom > 0 then begin
      let cut = ref 0 in
      Array.iter
        (fun { Graph.u; v; latency } ->
          if latency <= l && in_set mask u <> in_set mask v then incr cut)
        edges;
      let phi = float_of_int !cut /. float_of_int denom in
      if phi < !best then begin
        best := phi;
        best_mask := mask
      end
    end
  done;
  let side = Array.init n (fun u -> in_set !best_mask u) in
  (!best, side)

let phi_ell g l = fst (phi_ell_with_cut g l)
