(** Exact weight-ℓ conductance by exhaustive cut enumeration.

    [φ_ℓ(G) = min_U φ_ℓ(U)] over all non-trivial cuts.  Conductance is
    invariant under complementation, so we enumerate the [2^(n-1) - 1]
    subsets containing node 0 (excluding the full set).  Feasible up to
    roughly [n = 22]. *)

(** Hard cap on [n] accepted by this module. *)
val max_nodes : int

(** [phi_ell g l] is the exact weight-ℓ conductance.
    @raise Invalid_argument when [Graph.n g > max_nodes] or [< 2]. *)
val phi_ell : Gossip_graph.Graph.t -> int -> float

(** [phi_ell_with_cut g l] also returns a minimizing side. *)
val phi_ell_with_cut : Gossip_graph.Graph.t -> int -> float * Cut.side
