module Graph = Gossip_graph.Graph

type side = bool array

let of_list g nodes =
  let side = Array.make (Graph.n g) false in
  List.iter
    (fun u ->
      if u < 0 || u >= Graph.n g then invalid_arg "Cut.of_list: node out of range";
      side.(u) <- true)
    nodes;
  side

let of_mask n mask =
  if n > 62 then invalid_arg "Cut.of_mask: n too large for an int mask";
  Array.init n (fun i -> mask land (1 lsl i) <> 0)

let cut_edges_le g side l =
  let count = ref 0 in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      if latency <= l && side.(u) <> side.(v) then incr count)
    g;
  !count

let volumes g side =
  let vol_in = ref 0 and vol_out = ref 0 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    if side.(u) then vol_in := !vol_in + d else vol_out := !vol_out + d
  done;
  (!vol_in, !vol_out)

let phi_ell g side l =
  let vol_in, vol_out = volumes g side in
  let denom = min vol_in vol_out in
  if denom = 0 then infinity
  else float_of_int (cut_edges_le g side l) /. float_of_int denom
