module Graph = Gossip_graph.Graph
module Rng = Gossip_util.Rng

(* One lazy-walk step on the multigraph G_l.  Self-loops (slow incident
   edges) keep probability mass in place, exactly as Eq. 3 demands. *)
let walk_step g adj_le degrees x =
  let n = Graph.n g in
  let y = Array.make n 0.0 in
  for u = 0 to n - 1 do
    let d = float_of_int degrees.(u) in
    if d > 0.0 then begin
      let fast = adj_le.(u) in
      let self_mult = float_of_int (degrees.(u) - Array.length fast) in
      (* Lazy half plus self-loop mass stays at u. *)
      y.(u) <- y.(u) +. (x.(u) *. (0.5 +. (0.5 *. self_mult /. d)));
      let share = 0.5 *. x.(u) /. d in
      Array.iter (fun v -> y.(v) <- y.(v) +. share) fast
    end
    else y.(u) <- x.(u)
  done;
  y

let phi_ell_with_cut ?(iterations = 200) ?(seed = 1) g l =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Spectral: need n >= 2";
  let degrees = Array.init n (Graph.degree g) in
  let adj_le =
    Array.init n (fun u ->
        let fast = ref [] in
        Array.iter (fun (v, lat) -> if lat <= l then fast := v :: !fast) (Graph.neighbors g u);
        Array.of_list !fast)
  in
  let total_volume = 2 * Graph.m g in
  if total_volume = 0 then (0.0, Array.init n (fun u -> u = 0))
  else begin
    (* Stationary distribution of the walk is pi(u) = deg(u)/2m. *)
    let pi = Array.map (fun d -> float_of_int d /. float_of_int total_volume) degrees in
    let deflate x =
      let proj = ref 0.0 in
      for u = 0 to n - 1 do
        proj := !proj +. (pi.(u) *. x.(u))
      done;
      Array.map (fun xu -> xu -. !proj) x
    in
    let normalize x =
      let norm = sqrt (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 x) in
      if norm > 0.0 then Array.map (fun v -> v /. norm) x else x
    in
    let rng = Rng.of_int seed in
    let x = ref (normalize (deflate (Array.init n (fun _ -> Rng.float rng 1.0 -. 0.5)))) in
    for _ = 1 to iterations do
      x := normalize (deflate (walk_step g adj_le degrees !x))
    done;
    (* Sweep: order by eigenvector entry, scan prefix cuts, maintain the
       latency-<= l cut size incrementally. *)
    let order = Array.init n (fun u -> u) in
    Array.sort (fun a b -> compare !x.(a) !x.(b)) order;
    let in_set = Array.make n false in
    let vol_in = ref 0 and cut = ref 0 in
    let best = ref infinity in
    let best_k = ref 0 in
    for k = 0 to n - 2 do
      let u = order.(k) in
      in_set.(u) <- true;
      vol_in := !vol_in + degrees.(u);
      Array.iter (fun v -> if in_set.(v) then decr cut else incr cut) adj_le.(u);
      let denom = min !vol_in (total_volume - !vol_in) in
      if denom > 0 then begin
        let phi = float_of_int !cut /. float_of_int denom in
        if phi < !best then begin
          best := phi;
          best_k := k
        end
      end
    done;
    let side = Array.make n false in
    for k = 0 to !best_k do
      side.(order.(k)) <- true
    done;
    ((if !best = infinity then 0.0 else !best), side)
  end

let phi_ell ?iterations ?seed g l = fst (phi_ell_with_cut ?iterations ?seed g l)
