(** Approximate weight-ℓ conductance via a spectral sweep cut.

    The strongly edge-induced multigraph [G_ℓ] (Eq. 3 of the paper)
    keeps each latency-[≤ ℓ] edge with multiplicity 1 and adds a
    self-loop of multiplicity [deg(u) - deg_ℓ(u)] at every node, so
    multigraph degrees equal the original degrees and
    [φ(G_ℓ) = φ_ℓ(G)].

    We approximate [φ(G_ℓ)] by the classical Cheeger sweep: power
    iteration finds (an approximation of) the second eigenvector of the
    lazy random walk on [G_ℓ]; sorting vertices by its entries and
    taking the best prefix cut yields a cut whose conductance [φ̂]
    satisfies [φ_ℓ ≤ φ̂ ≤ √(2 φ_ℓ)].  The returned value is therefore
    an upper bound on the true conductance, correct within the Cheeger
    square root. *)

(** [phi_ell ?iterations ?seed g l] runs the sweep.  [iterations]
    defaults to [200]; [seed] randomises the starting vector (default
    1). *)
val phi_ell : ?iterations:int -> ?seed:int -> Gossip_graph.Graph.t -> int -> float

(** As [phi_ell], also returning the sweep cut found. *)
val phi_ell_with_cut :
  ?iterations:int -> ?seed:int -> Gossip_graph.Graph.t -> int -> float * Cut.side
