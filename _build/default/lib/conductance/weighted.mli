(** Weighted conductance [φ*] and critical latency [ℓ*] (Definition 2).

    For the latency profile [Φ(G) = {φ_1, ..., φ_ℓmax}], the weighted
    conductance maximises [φ_ℓ / ℓ]:

    [φ*(G) = φ_{ℓ*}]  where  [ℓ* = argmax_ℓ φ_ℓ(G) / ℓ].

    [φ_ℓ] is a step function that changes only at distinct edge
    latencies, and within a step [φ_ℓ / ℓ] decreases in [ℓ]; it
    therefore suffices to evaluate [φ_ℓ] at the distinct latency
    values. *)

(** Which [φ_ℓ] backend to use. *)
type backend =
  | Exact  (** subset enumeration; [n <= 22] *)
  | Sweep  (** spectral sweep-cut approximation *)
  | Auto  (** [Exact] when [n <= 16], else [Sweep] *)

(** The latency profile and the maximiser. *)
type result = {
  phi_star : float;  (** [φ*(G)] *)
  ell_star : int;  (** [ℓ*], the critical latency *)
  profile : (int * float) list;  (** [(ℓ, φ_ℓ)] at distinct latencies *)
}

(** [phi_ell ?backend g l] is the weight-ℓ conductance with the chosen
    backend (default [Auto]). *)
val phi_ell : ?backend:backend -> Gossip_graph.Graph.t -> int -> float

(** [weighted_conductance ?backend g] computes [φ*], [ℓ*] and the full
    profile.  Requires a connected graph with [n >= 2]. *)
val weighted_conductance : ?backend:backend -> Gossip_graph.Graph.t -> result

(** [pushpull_round_bound g] is the Theorem 12 upper bound
    [(ell_star / phi_star) * ln n] as a float — the quantity
    push-pull's measured rounds are compared against in the benches. *)
val pushpull_round_bound : ?backend:backend -> Gossip_graph.Graph.t -> float
