lib/conductance/exact.ml: Array Gossip_graph
