lib/conductance/cut.mli: Gossip_graph
