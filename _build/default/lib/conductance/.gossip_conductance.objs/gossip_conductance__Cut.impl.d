lib/conductance/cut.ml: Array Gossip_graph List
