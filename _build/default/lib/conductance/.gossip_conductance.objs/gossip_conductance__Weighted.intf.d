lib/conductance/weighted.mli: Gossip_graph
