lib/conductance/spectral.ml: Array Gossip_graph Gossip_util
