lib/conductance/spectral.mli: Cut Gossip_graph
