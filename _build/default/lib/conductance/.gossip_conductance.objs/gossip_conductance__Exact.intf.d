lib/conductance/exact.mli: Cut Gossip_graph
