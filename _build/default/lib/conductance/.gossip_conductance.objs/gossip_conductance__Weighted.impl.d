lib/conductance/weighted.ml: Exact Gossip_graph List Spectral
