module Graph = Gossip_graph.Graph

type backend = Exact | Sweep | Auto

type result = { phi_star : float; ell_star : int; profile : (int * float) list }

let resolve backend g =
  match backend with
  | Exact -> Exact
  | Sweep -> Sweep
  | Auto -> if Graph.n g <= 16 then Exact else Sweep

let phi_ell ?(backend = Auto) g l =
  match resolve backend g with
  | Exact -> Exact.phi_ell g l
  | Sweep | Auto -> Spectral.phi_ell g l

let weighted_conductance ?(backend = Auto) g =
  if Graph.n g < 2 then invalid_arg "Weighted.weighted_conductance: need n >= 2";
  if not (Graph.is_connected g) then
    invalid_arg "Weighted.weighted_conductance: graph must be connected";
  let backend = resolve backend g in
  let latencies = Graph.distinct_latencies g in
  let profile = List.map (fun l -> (l, phi_ell ~backend g l)) latencies in
  let best (bl, bp) (l, p) =
    if p /. float_of_int l > bp /. float_of_int bl then (l, p) else (bl, bp)
  in
  match profile with
  | [] -> invalid_arg "Weighted.weighted_conductance: edgeless graph"
  | first :: rest ->
      let ell_star, phi_star = List.fold_left best first rest in
      { phi_star; ell_star; profile }

let pushpull_round_bound ?backend g =
  let { phi_star; ell_star; _ } = weighted_conductance ?backend g in
  float_of_int ell_star /. phi_star *. log (float_of_int (Graph.n g))
