(* Lower-bound experiments: E1 (Theorem 6), E2 (Theorem 7),
   E3 (Theorem 8), E9 (Lemmas 4-5), F1/F2 (Figures 1-2). *)

module Rng = Gossip_util.Rng
module Table = Gossip_util.Table
module Graph = Gossip_graph.Graph
module Gadgets = Gossip_graph.Gadgets
module Paths = Gossip_graph.Paths
module Weighted = Gossip_conductance.Weighted
module Game = Gossip_game.Game
module Strategies = Gossip_game.Strategies
module Push_pull = Gossip_core.Push_pull
module Reduction = Gossip_core.Reduction
open Common

let game_rounds strategy ~m ~target ~seed =
  let game = Game.create ~m ~target in
  if Game.is_solved game then 0.0
  else begin
    match strategy (Rng.of_int seed) game ~max_rounds:10_000_000 with
    | Some o -> float_of_int o.Strategies.rounds
    | None -> nan
  end

(* E1 — Theorem 6: finding the single fast edge of the gadget costs
   Omega(Delta) rounds, for push-pull (via the Lemma 3 reduction) and
   for the explicit game strategies. *)
let e1 () =
  section "E1  Theorem 6: Omega(Delta) lower bound via the degree gadget"
    "Rounds to discover the single fast cross edge of G(2*Delta, |T|=1),\n\
     mean over seeds.  Every column must grow linearly in Delta.";
  let deltas = [ 8; 16; 32; 64; 128 ] in
  let trials = 5 in
  let t =
    Table.create ~title:"E1: fast-edge discovery rounds vs Delta"
      ~columns:
        [
          ("Delta", Table.Right);
          ("push-pull", Table.Right);
          ("sequential-scan", Table.Right);
          ("fresh-pairs", Table.Right);
          ("random-guessing", Table.Right);
        ]
  in
  let pp_means = ref [] in
  List.iter
    (fun delta ->
      let pp =
        mean_of ~trials ~base_seed:(delta * 11) (fun seed ->
            let rng = Rng.of_int seed in
            let target = Gadgets.singleton_target rng ~m:delta in
            let o =
              Reduction.simulate_push_pull rng ~m:delta ~target ~fast_latency:1
                ~symmetric:false ~max_rounds:1_000_000
            in
            match o.Reduction.game_rounds with Some r -> float_of_int r | None -> nan)
      in
      let strat name =
        mean_of ~trials ~base_seed:(delta * 13) (fun seed ->
            let rng = Rng.of_int seed in
            let target = Gadgets.singleton_target rng ~m:delta in
            game_rounds (List.assoc name Strategies.all) ~m:delta ~target ~seed)
      in
      pp_means := (float_of_int delta, pp) :: !pp_means;
      Table.add_row t
        [
          fmt_i delta;
          fmt_f pp;
          fmt_f (strat "sequential-scan");
          fmt_f (strat "fresh-pairs");
          fmt_f (strat "random-guessing");
        ])
    deltas;
  Table.print t;
  let pts = List.rev !pp_means in
  let xs = Array.of_list (List.map fst pts) and ys = Array.of_list (List.map snd pts) in
  ignore (report_exponent ~label:"push-pull discovery vs Delta" ~claimed:"1.0 (linear)" xs ys)

(* E2 — Theorem 7: on the conductance gadget the weighted diameter is
   O(ell), the measured phi_ell tracks the requested phi, and local
   broadcast costs grow like 1/phi (log n/phi for push-pull). *)
let e2 () =
  section "E2  Theorem 7: Omega(1/phi + ell) via the conductance gadget"
    "G(Random_phi) with |L| = |R| = 96, fast latency ell = 2: measured\n\
     diameter, measured weight-ell conductance, and local-broadcast /\n\
     game rounds as phi shrinks.";
  let n = 96 and ell = 2 in
  let phis = [ 0.4; 0.2; 0.1; 0.05 ] in
  let trials = 3 in
  let t =
    Table.create ~title:"E2: conductance gadget, phi sweep"
      ~columns:
        [
          ("phi", Table.Right);
          ("diameter", Table.Right);
          ("phi_ell(meas)", Table.Right);
          ("pp local-bcast", Table.Right);
          ("ln(n)/phi + ell", Table.Right);
          ("fresh-pairs", Table.Right);
          ("random-guessing", Table.Right);
        ]
  in
  List.iter
    (fun phi ->
      let rng = Rng.of_int (int_of_float (phi *. 1000.0)) in
      let info = Gadgets.theorem7 rng ~n ~ell ~phi in
      let g = info.Gadgets.t7_graph in
      let diameter = Paths.weighted_diameter g in
      let phi_meas = Gossip_conductance.Spectral.phi_ell g ell in
      let pp =
        mean_of ~trials ~base_seed:(int_of_float (phi *. 331.0)) (fun seed ->
            let r = Push_pull.local_broadcast (Rng.of_int seed) g ~max_rounds:2_000_000 in
            float_of_int (rounds_exn r.Push_pull.rounds))
      in
      let prediction = (log (float_of_int (2 * n)) /. phi) +. float_of_int ell in
      let fresh =
        mean_of ~trials ~base_seed:7 (fun seed ->
            let rng = Rng.of_int seed in
            let target = Gadgets.random_p_target rng ~m:n ~p:phi in
            game_rounds Strategies.fresh_pairs ~m:n ~target ~seed)
      in
      let rand =
        mean_of ~trials ~base_seed:8 (fun seed ->
            let rng = Rng.of_int seed in
            let target = Gadgets.random_p_target rng ~m:n ~p:phi in
            game_rounds Strategies.random_guessing ~m:n ~target ~seed)
      in
      Table.add_row t
        [
          fmt_f ~d:3 phi;
          fmt_i diameter;
          fmt_f ~d:3 phi_meas;
          fmt_f pp;
          fmt_f prediction;
          fmt_f fresh;
          fmt_f rand;
        ])
    phis;
  Table.print t;
  Printf.printf
    "Check: diameter stays O(ell) while rounds grow ~1/phi; the oblivious\n\
     (push-pull-like) strategy pays an extra log factor over fresh-pairs.\n"

(* E3 — Theorem 8: the layered ring exhibits the
   min(Delta + D, ell/phi) trade-off; sweeping ell crosses over from
   the latency-bound branch to the search-bound branch. *)
let e3 () =
  section "E3  Theorem 8: the min(Delta + D, ell/phi) trade-off on the layered ring"
    "Ring of 6 layers x 16 nodes; every cross edge latency ell except one\n\
     random fast edge per boundary.  Broadcast rounds follow\n\
     min(ell, search) per boundary: linear in ell until the crossover,\n\
     then flat.";
  let layers = 6 and layer_size = 16 in
  let trials = 3 in
  let t =
    Table.create ~title:"E3: layered ring, ell sweep"
      ~columns:
        [
          ("ell", Table.Right);
          ("pp broadcast", Table.Right);
          ("pred: (k/2)*ell", Table.Right);
          ("pred: search cap", Table.Right);
          ("phi_ell (Lemma 9)", Table.Right);
        ]
  in
  let search_cap = float_of_int (layers / 2 * (3 * layer_size / 2)) in
  let measured = ref [] in
  List.iter
    (fun ell ->
      let pp =
        mean_of ~trials ~base_seed:(ell * 17) (fun seed ->
            let rng = Rng.of_int seed in
            let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell in
            let r =
              Push_pull.broadcast (Rng.of_int (seed + 1)) info.Gadgets.t8_graph ~source:0
                ~max_rounds:2_000_000
            in
            float_of_int (rounds_exn r.Push_pull.rounds))
      in
      let rng = Rng.of_int 1 in
      let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell in
      measured := (float_of_int ell, pp) :: !measured;
      Table.add_row t
        [
          fmt_i ell;
          fmt_f pp;
          fmt_f (float_of_int (layers / 2 * ell));
          fmt_f search_cap;
          fmt_f ~d:4 info.Gadgets.t8_phi_analytic;
        ])
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  Table.print t;
  Printf.printf
    "Check: measured rounds grow with ell and then saturate near the search\n\
     cap — the crossover of min(Delta + D, ell/phi_ell).\n"

(* E9 — Lemmas 4-5: guessing game round complexities. *)
let e9 () =
  section "E9  Lemmas 4-5: guessing game round complexity"
    "Singleton targets cost Omega(m) rounds for every protocol; random_p\n\
     targets cost Theta(1/p) for the adaptive protocol and\n\
     Theta(log m / p) for oblivious random guessing.";
  let trials = 5 in
  (* Part A: singleton, m sweep. *)
  let t =
    Table.create ~title:"E9a: singleton target, rounds vs m"
      ~columns:
        [
          ("m", Table.Right);
          ("sequential-scan", Table.Right);
          ("fresh-pairs", Table.Right);
          ("random-guessing", Table.Right);
        ]
  in
  let seq_pts = ref [] in
  List.iter
    (fun m ->
      let strat name =
        mean_of ~trials ~base_seed:(m * 3) (fun seed ->
            let rng = Rng.of_int seed in
            let target = Gadgets.singleton_target rng ~m in
            game_rounds (List.assoc name Strategies.all) ~m ~target ~seed)
      in
      let seq = strat "sequential-scan" in
      seq_pts := (float_of_int m, seq) :: !seq_pts;
      Table.add_row t
        [ fmt_i m; fmt_f seq; fmt_f (strat "fresh-pairs"); fmt_f (strat "random-guessing") ])
    [ 32; 64; 128; 256; 512 ];
  Table.print t;
  let pts = List.rev !seq_pts in
  ignore
    (report_exponent ~label:"sequential-scan rounds vs m" ~claimed:"1.0 (Lemma 4: Omega(m))"
       (Array.of_list (List.map fst pts))
       (Array.of_list (List.map snd pts)));
  (* Part B: random_p, p sweep at fixed m. *)
  let m = 64 in
  let t =
    Table.create ~title:"E9b: Random_p target at m = 64, rounds vs p"
      ~columns:
        [
          ("p", Table.Right);
          ("fresh-pairs", Table.Right);
          ("~1/p", Table.Right);
          ("random-guessing", Table.Right);
          ("~ln(m)/p", Table.Right);
          ("ratio rnd/fresh", Table.Right);
        ]
  in
  let fresh_pts = ref [] and rand_pts = ref [] in
  List.iter
    (fun p ->
      let run strategy base =
        mean_of ~trials ~base_seed:base (fun seed ->
            let rng = Rng.of_int seed in
            let target = Gadgets.random_p_target rng ~m ~p in
            game_rounds strategy ~m ~target ~seed)
      in
      let fresh = run Strategies.fresh_pairs 11 in
      let rand = run Strategies.random_guessing 12 in
      fresh_pts := (1.0 /. p, fresh) :: !fresh_pts;
      rand_pts := (1.0 /. p, rand) :: !rand_pts;
      Table.add_row t
        [
          fmt_f ~d:3 p;
          fmt_f fresh;
          fmt_f (1.0 /. p);
          fmt_f rand;
          fmt_f (log (float_of_int m) /. p);
          fmt_f ~d:2 (rand /. fresh);
        ])
    [ 0.4; 0.2; 0.1; 0.05; 0.025 ];
  Table.print t;
  let fit label pts claimed =
    let pts = List.rev pts in
    ignore
      (report_exponent ~label ~claimed
         (Array.of_list (List.map fst pts))
         (Array.of_list (List.map snd pts)))
  in
  fit "fresh-pairs rounds vs 1/p" !fresh_pts "1.0 (Theta(1/p))";
  fit "random-guessing rounds vs 1/p" !rand_pts "1.0 (Theta(log m / p))"

(* F1/F2 — structural reproduction of the figures. *)
let figures () =
  section "F1/F2  Figures 1-2: gadget structure"
    "Structural summaries of G(P), G_sym(P) and the layered ring,\n\
     standing in for the paper's diagrams.";
  let rng = Rng.of_int 7 in
  let m = 6 in
  let target = Gadgets.random_p_target rng ~m ~p:0.2 in
  let gp = Gadgets.g_p ~m ~target ~fast_latency:1 ~slow_latency:(2 * m) in
  let gsym = Gadgets.g_sym_p ~m ~target ~fast_latency:1 ~slow_latency:(2 * m) in
  Printf.printf "Figure 1a  G(P):\n%s\n" (Gadgets.describe_gadget gp ~m);
  Printf.printf "Figure 1b  G_sym(P):\n%s\n" (Gadgets.describe_gadget gsym ~m);
  let layers = 6 and layer_size = 4 in
  let info = Gadgets.theorem8 rng ~layers ~layer_size ~ell:9 in
  let g = info.Gadgets.t8_graph in
  let regular =
    let d = (3 * layer_size) - 1 in
    let ok = ref true in
    for v = 0 to Graph.n g - 1 do
      if Graph.degree g v <> d then ok := false
    done;
    !ok
  in
  Printf.printf
    "Figure 2   layered ring: %d layers x %d nodes, (3s-1)-regular: %b,\n\
    \           one latency-1 edge per boundary (%d total), weighted diameter %d\n"
    layers layer_size regular
    (Array.length info.Gadgets.t8_fast_edges)
    (Paths.weighted_diameter g);
  let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
  Printf.printf "           critical latency ell* = %d, phi* = %.4f (analytic Lemma 9: %.4f)\n"
    wc.Weighted.ell_star wc.Weighted.phi_star info.Gadgets.t8_phi_analytic
