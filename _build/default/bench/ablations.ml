(* Ablations and extensions beyond the paper's main claims:

   - robustness under crashes / message loss / jitter (Section 7's
     closing remarks: push-pull is robust, the spanner route is not);
   - the bounded in-degree restriction (Daum et al., Section 7);
   - footnote 3: why subdividing weighted edges misestimates
     connectivity;
   - Baswana-Sen vs the sequential greedy spanner;
   - deterministic vs randomized DTG linking;
   - related work: rumor spreading on preferential-attachment and
     small-world graphs. *)

module Rng = Gossip_util.Rng
module Table = Gossip_util.Table
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Paths = Gossip_graph.Paths
module Subdivision = Gossip_graph.Subdivision
module Weighted = Gossip_conductance.Weighted
module Spectral = Gossip_conductance.Spectral
module Push_pull = Gossip_core.Push_pull
module Robustness = Gossip_core.Robustness
module Spanner = Gossip_core.Spanner
module Greedy = Gossip_core.Greedy_spanner
module Dtg = Gossip_core.Dtg
open Common

(* ------------------------------------------------------------------ *)
(* Robustness *)

let robustness () =
  section "A1  Robustness: push-pull vs the spanner route under faults"
    "Section 7: push-pull is relatively robust to failures, the\n\
     structure-based routes are not.  Crash-stop a fraction of nodes at\n\
     round 3 and lose a fraction of exchanges: push-pull always informs\n\
     every live node; RR broadcast over a precomputed structure strands\n\
     survivors once the structure is sparse enough (the BFS tree loses\n\
     up to a third of them; the k=6 spanner survives on redundancy at\n\
     this density).";
  (* A dense random base keeps the live graph connected under crashes,
     while its sparse spanner loses whole branches. *)
  let rng0 = Rng.of_int 99 in
  let g =
    Gen.with_latencies (Rng.split rng0) (Gen.Uniform (1, 3))
      (Gen.erdos_renyi_connected (Rng.split rng0) ~n:64 ~p:0.2)
  in
  let n = Graph.n g in
  let t =
    Table.create ~title:"A1: broadcast under faults (dense ER-64; k=6 spanner; BFS tree)"
      ~columns:
        [
          ("fault plan", Table.Left);
          ("pp rounds", Table.Right);
          ("pp live coverage", Table.Left);
          ("rr spanner coverage", Table.Left);
          ("rr tree coverage", Table.Left);
        ]
  in
  let spanner = Spanner.build (Rng.of_int 5) g ~k:6 () in
  let k_rr = Paths.weighted_diameter g * 11 in
  (* The extreme sparse route: a BFS spanning tree oriented away from
     the source.  One crashed inner node strands its whole subtree. *)
  let tree =
    let out = Array.make n [] in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    let tree_edges = ref [] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun (v, lat) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            out.(u) <- (v, lat) :: out.(u);
            tree_edges := (u, v, lat) :: !tree_edges;
            Queue.add v queue
          end)
        (Graph.neighbors g u)
    done;
    {
      Spanner.base = g;
      spanner = Graph.of_edges ~n !tree_edges;
      out_edges = Array.map Array.of_list out;
      k = n;
    }
  in
  let plans =
    [
      ("none", fun _ -> Robustness.no_faults);
      ( "crash 10% @ r3",
        fun seed ->
          Robustness.crash_fraction (Rng.of_int seed) ~n ~fraction:0.10 ~from_round:3
            ~protect:[ 0 ] );
      ( "crash 25% @ r3",
        fun seed ->
          Robustness.crash_fraction (Rng.of_int seed) ~n ~fraction:0.25 ~from_round:3
            ~protect:[ 0 ] );
      ( "crash 40% @ r3",
        fun seed ->
          Robustness.crash_fraction (Rng.of_int seed) ~n ~fraction:0.40 ~from_round:3
            ~protect:[ 0 ] );
      ("drop 5%", fun seed -> Robustness.drop_rate (Rng.of_int seed) ~rate:0.05);
      ("drop 20%", fun seed -> Robustness.drop_rate (Rng.of_int seed) ~rate:0.20);
      ("jitter +0..4", fun seed -> Robustness.jitter_up_to (Rng.of_int seed) ~extra:4);
      ( "crash 20% + drop 10%",
        fun seed ->
          Robustness.combine
            [
              Robustness.crash_fraction (Rng.of_int seed) ~n ~fraction:0.20 ~from_round:3
                ~protect:[ 0 ];
              Robustness.drop_rate (Rng.of_int (seed + 1)) ~rate:0.10;
            ] );
    ]
  in
  List.iter
    (fun (name, make_plan) ->
      let pp =
        Robustness.pushpull_broadcast (Rng.of_int 31) g ~source:0 ~plan:(make_plan 101)
          ~max_rounds:1_000_000
      in
      let rr = Robustness.rr_broadcast spanner ~source:0 ~k:k_rr ~plan:(make_plan 101) in
      let rt = Robustness.rr_broadcast tree ~source:0 ~k:k_rr ~plan:(make_plan 101) in
      Table.add_row t
        [
          name;
          (match pp.Robustness.rounds with Some r -> fmt_i r | None -> "cap");
          Printf.sprintf "%d/%d" pp.Robustness.informed_live pp.Robustness.live;
          Printf.sprintf "%d/%d" rr.Robustness.informed_live rr.Robustness.live;
          Printf.sprintf "%d/%d" rt.Robustness.informed_live rt.Robustness.live;
        ])
    plans;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Bounded in-degree *)

let indegree () =
  section "A2  Bounded in-degree (Daum et al., Section 7)"
    "Each node serves at most c incoming requests per round; the rest\n\
     get no answer.  On a star, capacity 1 forces the hub to serve one\n\
     leaf at a time: Theta(n) instead of O(1).";
  let t =
    Table.create ~title:"A2: push-pull broadcast with bounded in-degree"
      ~columns:
        [
          ("graph", Table.Left);
          ("capacity", Table.Left);
          ("rounds", Table.Right);
          ("rejected", Table.Right);
        ]
  in
  let cases =
    [
      ("star-64", Gen.star 64);
      ("clique-64", Gen.clique 64);
      ("ring-of-cliques-4x8", Gen.ring_of_cliques ~cliques:4 ~size:8 ~bridge_latency:4);
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun capacity ->
          let r =
            match capacity with
            | None ->
                let p = Push_pull.broadcast (Rng.of_int 7) g ~source:0 ~max_rounds:1_000_000 in
                ( p.Push_pull.rounds,
                  p.Push_pull.metrics.Gossip_sim.Engine.rejected )
            | Some c ->
                let p =
                  Robustness.pushpull_bounded_indegree (Rng.of_int 7) g ~source:0 ~capacity:c
                    ~max_rounds:1_000_000
                in
                (p.Robustness.rounds, p.Robustness.metrics.Gossip_sim.Engine.rejected)
          in
          Table.add_row t
            [
              name;
              (match capacity with None -> "unbounded" | Some c -> string_of_int c);
              (match fst r with Some x -> fmt_i x | None -> "cap");
              fmt_i (snd r);
            ])
        [ None; Some 4; Some 1 ])
    cases;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Footnote 3: subdivision *)

let subdivision () =
  section "A3  Footnote 3: subdividing weighted edges misestimates connectivity"
    "Replacing a latency-w edge by w unit edges changes the network: the\n\
     imaginary nodes relay (pull from both endpoints) and inflate the\n\
     volume.  The classical conductance of the subdivided graph neither\n\
     matches phi* nor predicts push-pull on the real network.";
  let t =
    Table.create ~title:"A3: weighted conductance vs subdivided classical conductance"
      ~columns:
        [
          ("family", Table.Left);
          ("phi*", Table.Right);
          ("ell*", Table.Right);
          ("phi*/ell*", Table.Right);
          ("phi(subdivided)", Table.Right);
          ("pp real", Table.Right);
          ("pp subdivided", Table.Right);
        ]
  in
  let rng = Rng.of_int 3 in
  let families =
    [
      ("ring-of-cliques-4x6 (L=12)", Gen.ring_of_cliques ~cliques:4 ~size:6 ~bridge_latency:12);
      ("dumbbell-10 (L=16)", Gen.dumbbell ~size:10 ~bridge_latency:16);
      ( "er-32-bimodal(1,12)",
        Gen.with_latencies (Rng.split rng)
          (Gen.Bimodal { fast = 1; slow = 12; p_fast = 0.6 })
          (Gen.erdos_renyi_connected (Rng.split rng) ~n:32 ~p:0.2) );
    ]
  in
  List.iter
    (fun (name, g) ->
      let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
      let sub = Subdivision.subdivide g in
      let phi_sub = Spectral.phi_ell sub.Subdivision.subdivided 1 in
      let pp graph =
        let r = Push_pull.broadcast (Rng.of_int 17) graph ~source:0 ~max_rounds:1_000_000 in
        match r.Push_pull.rounds with Some x -> float_of_int x | None -> nan
      in
      Table.add_row t
        [
          name;
          fmt_f ~d:4 wc.Weighted.phi_star;
          fmt_i wc.Weighted.ell_star;
          fmt_f ~d:4 (wc.Weighted.phi_star /. float_of_int wc.Weighted.ell_star);
          fmt_f ~d:4 phi_sub;
          fmt_f ~d:0 (pp g);
          fmt_f ~d:0 (pp sub.Subdivision.subdivided);
        ])
    families;
  Table.print t;
  Printf.printf
    "The subdivided conductance tracks neither phi* nor phi*/ell*, and the\n\
     subdivided network broadcasts at a different speed: footnote 3's\n\
     objection, quantified.\n"

(* ------------------------------------------------------------------ *)
(* Spanner construction comparison *)

let spanner_comparison () =
  section "A4  Baswana-Sen vs the sequential greedy spanner"
    "Same stretch target (r = 2k-1): the distributed construction pays a\n\
     modest size factor for locality and its O(log n) out-degree\n\
     orientation; greedy is smaller but sequential and unoriented.";
  let t =
    Table.create ~title:"A4: spanner constructions (random weighted base, n = 128)"
      ~columns:
        [
          ("k (r=2k-1)", Table.Right);
          ("BS edges", Table.Right);
          ("BS stretch", Table.Right);
          ("BS max out-deg", Table.Right);
          ("greedy edges", Table.Right);
          ("greedy stretch", Table.Right);
        ]
  in
  let rng = Rng.of_int 11 in
  let g =
    Gen.with_latencies (Rng.split rng) (Gen.Uniform (1, 10))
      (Gen.erdos_renyi_connected (Rng.split rng) ~n:128 ~p:0.15)
  in
  List.iter
    (fun k ->
      let bs = Spanner.build (Rng.split rng) g ~k () in
      let gr = Greedy.build g ~r:((2 * k) - 1) in
      Table.add_row t
        [
          fmt_i k;
          fmt_i (Spanner.edge_count bs);
          fmt_f ~d:2 (Spanner.stretch bs);
          fmt_i (Spanner.max_out_degree bs);
          fmt_i (Greedy.edge_count gr);
          fmt_f ~d:2 (Greedy.stretch gr);
        ])
    [ 2; 3; 4; 5 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* DTG linking rule *)

let dtg_linking () =
  section "A5  DTG linking rule: deterministic vs randomized"
    "Algorithm 5 links 'any new neighbor'; we compare the lowest-id\n\
     choice against uniform random linking (the randomized Superstep\n\
     flavour).  Both complete local broadcast; rounds differ by small\n\
     constants.";
  let t =
    Table.create ~title:"A5: local broadcast rounds by algorithm"
      ~columns:
        [
          ("graph", Table.Left);
          ("DTG (lowest-id)", Table.Right);
          ("DTG (random link)", Table.Right);
          ("random-contact", Table.Right);
        ]
  in
  let cases =
    [
      ("clique-48", Gen.clique 48);
      ("grid-7x7", Gen.grid 7 7);
      ("star-48", Gen.star 48);
      ( "er-40",
        Gen.erdos_renyi_connected (Rng.of_int 2) ~n:40 ~p:0.2 );
    ]
  in
  List.iter
    (fun (name, g) ->
      let det = Dtg.phase g ~ell:(Graph.max_latency g) ~max_rounds:1_000_000 () in
      let rnd =
        Dtg.phase g ~ell:(Graph.max_latency g) ~max_rounds:1_000_000
          ~link_rng:(Rng.of_int 23) ()
      in
      let flat =
        Gossip_core.Random_local.phase (Rng.of_int 29) g ~ell:(Graph.max_latency g)
          ~max_rounds:1_000_000 ()
      in
      Table.add_row t
        [
          name;
          (match det.Dtg.rounds with Some r -> fmt_i r | None -> "cap");
          (match rnd.Dtg.rounds with Some r -> fmt_i r | None -> "cap");
          (match flat.Gossip_core.Random_local.rounds with
          | Some r -> fmt_i r
          | None -> "cap");
        ])
    cases;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Related work: social and small-world graphs *)

let social () =
  section "A6  Related work: rumor spreading on social-network models"
    "Doerr et al. (cited in the paper): push-pull on preferential-\n\
     attachment graphs finishes in Theta(log n).  We sweep n on\n\
     Barabasi-Albert and Watts-Strogatz graphs; rounds must grow\n\
     logarithmically (flat in log-log against n).";
  let t =
    Table.create ~title:"A6: push-pull on BA(attach=3) and WS(k=3, beta=0.2)"
      ~columns:
        [
          ("n", Table.Right);
          ("BA rounds", Table.Right);
          ("WS rounds", Table.Right);
          ("ln n", Table.Right);
        ]
  in
  let trials = 3 in
  let ba_pts = ref [] in
  List.iter
    (fun n ->
      let ba =
        mean_of ~trials ~base_seed:(n * 3) (fun seed ->
            let g = Gen.barabasi_albert (Rng.of_int seed) ~n ~attach:3 in
            let r = Push_pull.broadcast (Rng.of_int (seed + 1)) g ~source:0 ~max_rounds:100_000 in
            float_of_int (rounds_exn r.Push_pull.rounds))
      in
      let ws =
        mean_of ~trials ~base_seed:(n * 5) (fun seed ->
            let rec connected tries =
              if tries = 0 then failwith "ws: disconnected"
              else begin
                let g = Gen.watts_strogatz (Rng.of_int (seed + tries)) ~n ~k:3 ~beta:0.2 in
                if Graph.is_connected g then g else connected (tries - 1)
              end
            in
            let g = connected 50 in
            let r = Push_pull.broadcast (Rng.of_int (seed + 1)) g ~source:0 ~max_rounds:100_000 in
            float_of_int (rounds_exn r.Push_pull.rounds))
      in
      ba_pts := (float_of_int n, ba) :: !ba_pts;
      Table.add_row t [ fmt_i n; fmt_f ba; fmt_f ws; fmt_f (log (float_of_int n)) ])
    [ 64; 128; 256; 512; 1024 ];
  Table.print t;
  let pts = List.rev !ba_pts in
  ignore
    (report_exponent ~label:"BA push-pull rounds vs n" ~claimed:"~0 (logarithmic)"
       (Array.of_list (List.map fst pts))
       (Array.of_list (List.map snd pts)))

(* ------------------------------------------------------------------ *)
(* Section 6: message sizes *)

let message_sizes () =
  section "A7  Section 6: message-size accounting"
    "The paper notes push-pull works with small messages while the\n\
     spanner route needs large ones (an open question whether that is\n\
     inherent).  We count delivered payload in rumor units: a\n\
     single-rumor push-pull message is one unit; rumor-set messages\n\
     cost their cardinality.";
  let t =
    Table.create ~title:"A7: communication until completion (ring-of-cliques 4x8, L=6)"
      ~columns:
        [
          ("strategy", Table.Left);
          ("rounds", Table.Right);
          ("messages", Table.Right);
          ("payload units", Table.Right);
          ("units/message", Table.Right);
        ]
  in
  let g = Gen.ring_of_cliques ~cliques:4 ~size:8 ~bridge_latency:6 in
  let row name rounds (m : Gossip_sim.Engine.metrics) =
    Table.add_row t
      [
        name;
        (match rounds with Some r -> fmt_i r | None -> "cap");
        fmt_i m.Gossip_sim.Engine.deliveries;
        fmt_i m.Gossip_sim.Engine.payload_words;
        fmt_f ~d:1
          (float_of_int m.Gossip_sim.Engine.payload_words
          /. float_of_int (max 1 m.Gossip_sim.Engine.deliveries));
      ]
  in
  let pp = Push_pull.broadcast (Rng.of_int 3) g ~source:0 ~max_rounds:1_000_000 in
  row "push-pull broadcast (1 rumor)" pp.Push_pull.rounds pp.Push_pull.metrics;
  let ppa = Push_pull.all_to_all (Rng.of_int 3) g ~max_rounds:1_000_000 in
  row "push-pull all-to-all (rumor sets)" ppa.Push_pull.rounds ppa.Push_pull.metrics;
  let fl = Gossip_core.Flooding.flood_all g ~max_rounds:1_000_000 in
  row "round-robin flooding (rumor sets)" fl.Gossip_core.Flooding.rounds
    fl.Gossip_core.Flooding.metrics;
  let dtg, _ = Dtg.local_broadcast g ~max_rounds:1_000_000 in
  row "DTG local broadcast" dtg.Dtg.rounds dtg.Dtg.metrics;
  let spanner = Spanner.build (Rng.of_int 5) g ~k:3 () in
  let k_rr = Paths.weighted_diameter g * 5 in
  let rr = Gossip_core.Rr_broadcast.run_on_spanner spanner ~k:k_rr () in
  row "RR broadcast over spanner" (Some rr.Gossip_core.Rr_broadcast.rounds)
    rr.Gossip_core.Rr_broadcast.metrics;
  Table.print t;
  Printf.printf
    "Push-pull's single-rumor broadcast uses constant-size messages; every\n\
     rumor-set protocol pays tens of units per message — the Section 6\n\
     trade-off in numbers.\n"

(* ------------------------------------------------------------------ *)
(* n-hat sensitivity *)

let n_hat_sensitivity () =
  section "A8  Lemma 13: sensitivity to the network-size estimate n-hat"
    "EID needs a polynomial upper bound n-hat on n (the only place the\n\
     paper uses that assumption; Appendix E exists to avoid it).\n\
     Lemma 13: overestimating only degrades the spanner out-degree to\n\
     O(n-hat^(1/k) log n).  We run the spanner and full EID with\n\
     n-hat = n, n^2, n^3.";
  let t =
    Table.create ~title:"A8: spanner and EID vs n-hat (er-32, latencies 1-4)"
      ~columns:
        [
          ("n-hat", Table.Left);
          ("spanner edges", Table.Right);
          ("max out-deg", Table.Right);
          ("stretch", Table.Right);
          ("EID rounds", Table.Right);
          ("success", Table.Left);
        ]
  in
  let rng = Rng.of_int 21 in
  let g =
    Gen.with_latencies (Rng.split rng) (Gen.Uniform (1, 4))
      (Gen.erdos_renyi_connected (Rng.split rng) ~n:32 ~p:0.25)
  in
  let n = Graph.n g in
  List.iter
    (fun (label, n_hat) ->
      let s = Spanner.build (Rng.of_int 31) g ~k:5 ~n_hat () in
      let eid = Gossip_core.Eid.run (Rng.of_int 32) g ~n_hat () in
      Table.add_row t
        [
          label;
          fmt_i (Spanner.edge_count s);
          fmt_i (Spanner.max_out_degree s);
          fmt_f ~d:2 (Spanner.stretch s);
          fmt_i eid.Gossip_core.Eid.rounds;
          string_of_bool eid.Gossip_core.Eid.success;
        ])
    [ ("n", n); ("n^2", n * n); ("n^3", n * n * n) ];
  Table.print t;
  Printf.printf
    "Overestimates keep every spanner in play; the degree/size cost grows\n\
     mildly while EID's round count pays the extra log(n-hat) phases —\n\
     which is why Appendix E's Path Discovery (no estimate at all)\n\
     matters.\n"

(* ------------------------------------------------------------------ *)
(* Methodology: how good is the spectral sweep? *)

let sweep_quality () =
  section "A9  Methodology: spectral sweep vs exact conductance"
    "Most experiments use the Cheeger sweep to estimate phi_l on graphs\n\
     too large for exhaustive cuts.  On small instances we can compare:\n\
     exact <= sweep <= sqrt(2 * exact) must hold, and the ratio shows\n\
     how tight the estimate is in practice.";
  let t =
    Table.create ~title:"A9: exact vs sweep at the critical latency"
      ~columns:
        [
          ("family", Table.Left);
          ("ell*", Table.Right);
          ("exact phi", Table.Right);
          ("sweep phi", Table.Right);
          ("ratio", Table.Right);
          ("Cheeger cap", Table.Right);
        ]
  in
  let rng = Rng.of_int 41 in
  let families =
    [
      ("clique-12", Gen.clique 12);
      ("cycle-14", Gen.cycle 14);
      ("dumbbell-6 (L=4)", Gen.dumbbell ~size:6 ~bridge_latency:4);
      ("ring-of-cliques-3x4 (L=7)", Gen.ring_of_cliques ~cliques:3 ~size:4 ~bridge_latency:7);
      ( "er-12-lat(1,5)",
        Gen.with_latencies (Rng.split rng) (Gen.Uniform (1, 5))
          (Gen.erdos_renyi_connected (Rng.split rng) ~n:12 ~p:0.4) );
      ("grid-3x4", Gen.grid 3 4);
    ]
  in
  List.iter
    (fun (name, g) ->
      let wc = Weighted.weighted_conductance ~backend:Weighted.Exact g in
      let ell = wc.Weighted.ell_star in
      let exact = wc.Weighted.phi_star in
      let sweep = Spectral.phi_ell g ell in
      Table.add_row t
        [
          name;
          fmt_i ell;
          fmt_f ~d:4 exact;
          fmt_f ~d:4 sweep;
          fmt_f ~d:2 (sweep /. exact);
          fmt_f ~d:4 (sqrt (2.0 *. exact));
        ])
    families;
  Table.print t
