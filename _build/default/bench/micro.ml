(* Bechamel micro-benchmarks of the library kernels: one Test.make per
   experiment family, wall-clock per operation. *)

open Bechamel
open Toolkit
module Rng = Gossip_util.Rng
module Gen = Gossip_graph.Gen
module Gadgets = Gossip_graph.Gadgets

let bench_pushpull_broadcast () =
  let g = Gen.clique 64 in
  Test.make ~name:"push-pull broadcast clique-64"
    (Staged.stage (fun () ->
         let r = Gossip_core.Push_pull.broadcast (Rng.of_int 3) g ~source:0 ~max_rounds:10_000 in
         ignore r.Gossip_core.Push_pull.rounds))

let bench_dtg_phase () =
  let g = Gen.grid 6 6 in
  Test.make ~name:"dtg local broadcast grid-6x6"
    (Staged.stage (fun () -> ignore (Gossip_core.Dtg.local_broadcast g ~max_rounds:100_000)))

let bench_spanner_build () =
  let g = Gen.clique 128 in
  Test.make ~name:"spanner build clique-128 k=7"
    (Staged.stage (fun () -> ignore (Gossip_core.Spanner.build (Rng.of_int 5) g ~k:7 ())))

let bench_conductance_sweep () =
  let g = Gen.ring_of_cliques ~cliques:8 ~size:16 ~bridge_latency:6 in
  Test.make ~name:"spectral sweep ring-of-cliques-8x16"
    (Staged.stage (fun () -> ignore (Gossip_conductance.Spectral.phi_ell g 6)))

let bench_conductance_exact () =
  let g = Gen.dumbbell ~size:8 ~bridge_latency:3 in
  Test.make ~name:"exact conductance dumbbell-16"
    (Staged.stage (fun () -> ignore (Gossip_conductance.Exact.phi_ell g 3)))

let bench_game_round () =
  Test.make ~name:"guessing game fresh-pairs m=64 p=0.1"
    (Staged.stage (fun () ->
         let rng = Rng.of_int 11 in
         let target = Gadgets.random_p_target rng ~m:64 ~p:0.1 in
         let game = Gossip_game.Game.create ~m:64 ~target in
         ignore (Gossip_game.Strategies.fresh_pairs rng game ~max_rounds:1_000_000)))

let bench_dijkstra () =
  let rng = Rng.of_int 17 in
  let g =
    Gen.with_latencies rng (Gen.Uniform (1, 16)) (Gen.erdos_renyi_connected rng ~n:512 ~p:0.02)
  in
  Test.make ~name:"dijkstra er-512"
    (Staged.stage (fun () -> ignore (Gossip_graph.Paths.dijkstra g 0)))

let all_tests () =
  [
    bench_pushpull_broadcast ();
    bench_dtg_phase ();
    bench_spanner_build ();
    bench_conductance_sweep ();
    bench_conductance_exact ();
    bench_game_round ();
    bench_dijkstra ();
  ]

let run () =
  Printf.printf "\n=== Micro-benchmarks (Bechamel, monotonic clock) ===\n%!";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let results = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-45s (no estimate)\n%!" name)
        results)
    (all_tests ())
