bench/exp_lower_bounds.ml: Array Common Gossip_conductance Gossip_core Gossip_game Gossip_graph Gossip_util List Printf
