bench/main.ml: Ablations Array Exp_lower_bounds Exp_upper_bounds List Micro Printf Sys
