bench/common.ml: Array Gossip_util Printf
