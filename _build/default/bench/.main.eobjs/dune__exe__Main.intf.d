bench/main.mli:
