bench/micro.ml: Analyze Bechamel Benchmark Gossip_conductance Gossip_core Gossip_game Gossip_graph Gossip_util Hashtbl Instance List Measure Printf Staged Test Time Toolkit
