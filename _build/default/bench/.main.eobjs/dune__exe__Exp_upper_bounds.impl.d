bench/exp_upper_bounds.ml: Array Common Gossip_conductance Gossip_core Gossip_graph Gossip_util List
