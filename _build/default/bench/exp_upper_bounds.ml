(* Upper-bound experiments: E4 (Theorem 12), E5 (Lemma 13/Theorem 14),
   E6 (Lemma 15/Corollary 16), E7 (Theorem 19), E8 (Lemmas 24-25),
   E10 (Theorem 20), E11 (footnote 2). *)

module Rng = Gossip_util.Rng
module Table = Gossip_util.Table
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen
module Gadgets = Gossip_graph.Gadgets
module Paths = Gossip_graph.Paths
module Weighted = Gossip_conductance.Weighted
module Push_pull = Gossip_core.Push_pull
module Flooding = Gossip_core.Flooding
module Spanner = Gossip_core.Spanner
module Rr = Gossip_core.Rr_broadcast
module Eid = Gossip_core.Eid
module Pd = Gossip_core.Path_discovery
module Dis = Gossip_core.Dissemination
module Rumor = Gossip_core.Rumor
open Common

let ln x = log x

let upper_families () =
  let rng = Rng.of_int 99 in
  [
    ("clique-64", Gen.clique 64);
    ("er-48-p0.15", Gen.erdos_renyi_connected (Rng.split rng) ~n:48 ~p:0.15);
    ( "er-48-bimodal",
      Gen.with_latencies (Rng.split rng)
        (Gen.Bimodal { fast = 1; slow = 16; p_fast = 0.7 })
        (Gen.erdos_renyi_connected (Rng.split rng) ~n:48 ~p:0.15) );
    ("ring-of-cliques-6x8", Gen.ring_of_cliques ~cliques:6 ~size:8 ~bridge_latency:6);
    ("dumbbell-16", Gen.dumbbell ~size:16 ~bridge_latency:10);
  ]

(* E4 — Theorem 12: push-pull completes within
   O((ell_star/phi_star) ln n) rounds across graph families. *)
let e4 () =
  section "E4  Theorem 12: push-pull vs the weighted-conductance bound"
    "Measured broadcast rounds against (ell*/phi*) * ln n per family; the\n\
     ratio column must stay bounded by a small constant.";
  let trials = 3 in
  let t =
    Table.create ~title:"E4: push-pull upper bound"
      ~columns:
        [
          ("family", Table.Left);
          ("n", Table.Right);
          ("D", Table.Right);
          ("ell*", Table.Right);
          ("phi*", Table.Right);
          ("bound", Table.Right);
          ("measured", Table.Right);
          ("ratio", Table.Right);
        ]
  in
  List.iter
    (fun (name, g) ->
      let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
      let bound =
        float_of_int wc.Weighted.ell_star /. wc.Weighted.phi_star *. ln (float_of_int (Graph.n g))
      in
      let measured =
        mean_of ~trials ~base_seed:31 (fun seed ->
            let r = Push_pull.broadcast (Rng.of_int seed) g ~source:0 ~max_rounds:5_000_000 in
            float_of_int (rounds_exn r.Push_pull.rounds))
      in
      Table.add_row t
        [
          name;
          fmt_i (Graph.n g);
          fmt_i (Paths.weighted_diameter g);
          fmt_i wc.Weighted.ell_star;
          fmt_f ~d:4 wc.Weighted.phi_star;
          fmt_f bound;
          fmt_f measured;
          fmt_f ~d:2 (measured /. bound);
        ])
    (upper_families ());
  Table.print t

(* E5 — Lemma 13 / Theorem 14: spanner size O(n log n), out-degree
   O(log n), stretch O(log n) at k = log n. *)
let e5 () =
  section "E5  Lemma 13 / Theorem 14: Baswana-Sen spanner quality"
    "At k = ceil(log2 n): edge count vs n*log n, oriented out-degree vs\n\
     log n, and stretch vs 2k-1.  Then a k-sweep at n = 128.";
  let t =
    Table.create ~title:"E5a: spanner vs n (dense random base, k = log2 n)"
      ~columns:
        [
          ("n", Table.Right);
          ("base edges", Table.Right);
          ("spanner edges", Table.Right);
          ("n ln n", Table.Right);
          ("max out-deg", Table.Right);
          ("ln n", Table.Right);
          ("stretch", Table.Right);
          ("2k-1", Table.Right);
        ]
  in
  let edge_pts = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.of_int (n * 3) in
      let p = min 1.0 (4.0 *. ln (float_of_int n) /. float_of_int n) in
      let g =
        Gen.with_latencies rng (Gen.Uniform (1, 8)) (Gen.erdos_renyi_connected rng ~n ~p)
      in
      let k =
        let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
        go 0 1
      in
      let s = Spanner.build rng g ~k () in
      edge_pts := (float_of_int n, float_of_int (Spanner.edge_count s)) :: !edge_pts;
      Table.add_row t
        [
          fmt_i n;
          fmt_i (Graph.m g);
          fmt_i (Spanner.edge_count s);
          fmt_f (float_of_int n *. ln (float_of_int n));
          fmt_i (Spanner.max_out_degree s);
          fmt_f (ln (float_of_int n));
          fmt_f ~d:2 (Spanner.stretch s);
          fmt_i ((2 * k) - 1);
        ])
    [ 32; 64; 128; 256; 512 ];
  Table.print t;
  let pts = List.rev !edge_pts in
  ignore
    (report_exponent ~label:"spanner edges vs n" ~claimed:"~1.0 (O(n log n))"
       (Array.of_list (List.map fst pts))
       (Array.of_list (List.map snd pts)));
  let t =
    Table.create ~title:"E5b: k-sweep at n = 128 (clique base)"
      ~columns:
        [
          ("k", Table.Right);
          ("spanner edges", Table.Right);
          ("max out-deg", Table.Right);
          ("stretch", Table.Right);
          ("2k-1", Table.Right);
        ]
  in
  let g = Gen.clique 128 in
  List.iter
    (fun k ->
      let s = Spanner.build (Rng.of_int (k * 7)) g ~k () in
      Table.add_row t
        [
          fmt_i k;
          fmt_i (Spanner.edge_count s);
          fmt_i (Spanner.max_out_degree s);
          fmt_f ~d:2 (Spanner.stretch s);
          fmt_i ((2 * k) - 1);
        ])
    [ 1; 2; 3; 4; 6; 8 ];
  Table.print t

(* E6 — Lemma 15 / Corollary 16: RR broadcast runs in
   O(k * Delta_out + k) rounds and solves all-to-all over the
   spanner. *)
let e6 () =
  section "E6  Lemma 15 / Corollary 16: RR Broadcast over the oriented spanner"
    "RR(k) with k = stretch * D: rounds used (= k*Delta_out + 2k by\n\
     construction) and whether all-to-all completed.";
  let t =
    Table.create ~title:"E6: RR broadcast"
      ~columns:
        [
          ("family", Table.Left);
          ("D", Table.Right);
          ("k_rr", Table.Right);
          ("Delta_out", Table.Right);
          ("rounds", Table.Right);
          ("k*Dout+2k", Table.Right);
          ("all-to-all", Table.Left);
        ]
  in
  List.iter
    (fun (name, g) ->
      let rng = Rng.of_int 5 in
      let k_span = 3 in
      let s = Spanner.build rng g ~k:k_span () in
      let d = Paths.weighted_diameter g in
      let k_rr = d * ((2 * k_span) - 1) in
      let r = Rr.run_on_spanner s ~k:k_rr () in
      let dout =
        Array.fold_left
          (fun acc a ->
            max acc (Array.length (Array.of_list (List.filter (fun (_, l) -> l <= k_rr) (Array.to_list a)))))
          0 s.Spanner.out_edges
      in
      Table.add_row t
        [
          name;
          fmt_i d;
          fmt_i k_rr;
          fmt_i dout;
          fmt_i r.Rr.rounds;
          fmt_i ((k_rr * dout) + (2 * k_rr));
          string_of_bool (Rumor.all_to_all_done r.Rr.sets);
        ])
    (upper_families ());
  Table.print t

let eid_families () =
  let rng = Rng.of_int 1234 in
  [
    ("cycle-24", Gen.cycle 24);
    ("grid-5x5", Gen.grid 5 5);
    ("ring-of-cliques-4x6", Gen.ring_of_cliques ~cliques:4 ~size:6 ~bridge_latency:4);
    ( "er-32-lat(1,4)",
      Gen.with_latencies (Rng.split rng) (Gen.Uniform (1, 4))
        (Gen.erdos_renyi_connected (Rng.split rng) ~n:32 ~p:0.25) );
    ("dumbbell-8", Gen.dumbbell ~size:8 ~bridge_latency:6);
  ]

(* E7 — Theorem 19: General EID solves all-to-all in O(D log^3 n). *)
let e7 () =
  section "E7  Theorems 14 & 19: EID and General EID"
    "General EID (unknown D, guess-and-double + termination check): total\n\
     rounds against D * ln^3 n; ratio must stay bounded.  All verdicts\n\
     must be unanimous (Lemma 18).";
  let t =
    Table.create ~title:"E7: General EID"
      ~columns:
        [
          ("family", Table.Left);
          ("n", Table.Right);
          ("D", Table.Right);
          ("rounds", Table.Right);
          ("D*ln^3 n", Table.Right);
          ("ratio", Table.Right);
          ("k_final", Table.Right);
          ("attempts", Table.Right);
          ("ok", Table.Left);
        ]
  in
  List.iter
    (fun (name, g) ->
      let d = Paths.weighted_diameter g in
      let r = Eid.run (Rng.of_int 77) g () in
      let pred = float_of_int d *. (ln (float_of_int (Graph.n g)) ** 3.0) in
      Table.add_row t
        [
          name;
          fmt_i (Graph.n g);
          fmt_i d;
          fmt_i r.Eid.rounds;
          fmt_f pred;
          fmt_f ~d:2 (float_of_int r.Eid.rounds /. pred);
          fmt_i r.Eid.k_final;
          fmt_i (List.length r.Eid.attempts);
          string_of_bool (r.Eid.success && r.Eid.unanimous);
        ])
    (eid_families ());
  Table.print t;
  (* n-sweep on cycles (D grows linearly with n): General EID rounds
     must scale near-linearly in D * polylog. *)
  let t =
    Table.create ~title:"E7b: General EID on cycles, n sweep"
      ~columns:
        [ ("n = D+1", Table.Right); ("rounds", Table.Right); ("D*ln^3 n", Table.Right) ]
  in
  let pts = ref [] in
  List.iter
    (fun n ->
      let g = Gen.cycle n in
      let d = n / 2 in
      let r = Eid.run (Rng.of_int (n * 3)) g () in
      pts := (float_of_int d, float_of_int r.Eid.rounds) :: !pts;
      Table.add_row t
        [
          fmt_i n;
          fmt_i r.Eid.rounds;
          fmt_f (float_of_int d *. (ln (float_of_int n) ** 3.0));
        ])
    [ 8; 16; 32; 64; 128 ];
  Table.print t;
  let pts = List.rev !pts in
  ignore
    (report_exponent ~label:"EID rounds vs D" ~claimed:"<= 1 (the bound is linear in D; rumor accumulation across attempts finishes early)"
       (Array.of_list (List.map fst pts))
       (Array.of_list (List.map snd pts)))

(* E8 — Lemmas 24-25: the T(k) schedule. *)
let e8 () =
  section "E8  Lemmas 24-25: Path Discovery / T(k)"
    "Path Discovery (no bound on n needed): rounds against\n\
     D * ln^2 n * log2 D.";
  let t =
    Table.create ~title:"E8: Path Discovery"
      ~columns:
        [
          ("family", Table.Left);
          ("D", Table.Right);
          ("rounds", Table.Right);
          ("D*ln^2 n*log2 D", Table.Right);
          ("ratio", Table.Right);
          ("k_final", Table.Right);
          ("ok", Table.Left);
        ]
  in
  List.iter
    (fun (name, g) ->
      let d = Paths.weighted_diameter g in
      let r = Pd.run g in
      let pred =
        float_of_int d
        *. (ln (float_of_int (Graph.n g)) ** 2.0)
        *. (ln (float_of_int (max 2 d)) /. ln 2.0)
      in
      Table.add_row t
        [
          name;
          fmt_i d;
          fmt_i r.Pd.rounds;
          fmt_f pred;
          fmt_f ~d:2 (float_of_int r.Pd.rounds /. pred);
          fmt_i r.Pd.k_final;
          string_of_bool (r.Pd.success && r.Pd.unanimous);
        ])
    (eid_families ());
  Table.print t

(* E10 — Theorem 20: the unified algorithm.  We report both branches,
   the measured winner, and the winner the paper's formulas predict. *)
let e10 () =
  section "E10  Theorem 20: unified dissemination (both branches)"
    "Push-pull and the spanner route on each family, measured winner vs\n\
     the asymptotic prediction min(D log^3 n, (ell*/phi*) log n).  At\n\
     laptop scale the spanner route's polylog constants are visible:\n\
     push-pull wins wherever the two predictions are close.";
  let t =
    Table.create ~title:"E10: unified algorithm"
      ~columns:
        [
          ("family", Table.Left);
          ("pp rounds", Table.Right);
          ("spanner rounds", Table.Right);
          ("winner", Table.Left);
          ("pred pp", Table.Right);
          ("pred spanner", Table.Right);
          ("pred winner", Table.Left);
        ]
  in
  List.iter
    (fun (name, g) ->
      let r = Dis.all_to_all (Rng.of_int 9) g ~knowledge:Dis.Known_latencies ~max_rounds:5_000_000 in
      let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
      let nf = float_of_int (Graph.n g) in
      let pred_pp = float_of_int wc.Weighted.ell_star /. wc.Weighted.phi_star *. ln nf in
      let pred_spanner = float_of_int (Paths.weighted_diameter g) *. (ln nf ** 3.0) in
      Table.add_row t
        [
          name;
          (match r.Dis.pushpull_rounds with Some x -> fmt_i x | None -> "cap");
          fmt_i r.Dis.spanner_rounds;
          (match r.Dis.winner with
          | Dis.Push_pull_won -> "push-pull"
          | Dis.Spanner_route_won -> "spanner");
          fmt_f pred_pp;
          fmt_f pred_spanner;
          (if pred_pp <= pred_spanner then "push-pull" else "spanner");
        ])
    (eid_families ());
  Table.print t

(* E11 — footnote 2: without pull, a star takes Omega(nD). *)
let e11 () =
  section "E11  Footnote 2: push-only needs Omega(nD) on a star"
    "Blocking push-only flooding vs push-pull on stars of latency D = 4;\n\
     push-only grows linearly in n while push-pull stays flat.";
  let d = 4 in
  let t =
    Table.create ~title:"E11: star, push-only vs push-pull"
      ~columns:
        [
          ("n", Table.Right);
          ("push-only (blocking)", Table.Right);
          ("push-only (pipelined)", Table.Right);
          ("push-pull", Table.Right);
          ("(n-1)*D", Table.Right);
        ]
  in
  let push_pts = ref [] in
  List.iter
    (fun n ->
      let g = Gen.with_latencies (Rng.of_int n) (Gen.Fixed d) (Gen.star n) in
      let blocking =
        Flooding.push_round_robin g ~source:0 ~blocking:true ~max_rounds:5_000_000
      in
      let pipelined =
        Flooding.push_round_robin g ~source:0 ~blocking:false ~max_rounds:5_000_000
      in
      let pp = Push_pull.broadcast (Rng.of_int n) g ~source:0 ~max_rounds:5_000_000 in
      let b = rounds_exn blocking.Flooding.rounds in
      push_pts := (float_of_int n, float_of_int b) :: !push_pts;
      Table.add_row t
        [
          fmt_i n;
          fmt_i b;
          fmt_i (rounds_exn pipelined.Flooding.rounds);
          fmt_i (rounds_exn pp.Push_pull.rounds);
          fmt_i ((n - 1) * d);
        ])
    [ 16; 32; 64; 128; 256 ];
  Table.print t;
  let pts = List.rev !push_pts in
  ignore
    (report_exponent ~label:"blocking push-only rounds vs n" ~claimed:"1.0 (Omega(nD))"
       (Array.of_list (List.map fst pts))
       (Array.of_list (List.map snd pts)))
