module Csr = Gossip_scale.Csr
module Wheel_engine = Gossip_scale.Wheel_engine
module Rng = Gossip_util.Rng
module Stats = Gossip_util.Stats
module Json = Gossip_util.Json
module Gen = Gossip_graph.Gen
module Engine = Gossip_sim.Engine

type family =
  | Ring_of_cliques of { size : int; bridge_latency : int }
  | Barabasi_albert of { attach : int }
  | Watts_strogatz of { k : int; beta : float }

let family_name = function
  | Ring_of_cliques _ -> "ring-of-cliques"
  | Barabasi_albert _ -> "barabasi-albert"
  | Watts_strogatz _ -> "watts-strogatz"

let build family ~n ~seed =
  let rng = Rng.of_int seed in
  match family with
  | Ring_of_cliques { size; bridge_latency } ->
      let cliques = max 3 (n / size) in
      Csr.ring_of_cliques ~cliques ~size ~bridge_latency
  | Barabasi_albert { attach } -> Csr.barabasi_albert rng ~n ~attach
  | Watts_strogatz { k; beta } -> Csr.watts_strogatz rng ~n ~k ~beta

type job = {
  family : family;
  n : int;
  seed : int;
  protocol : Wheel_engine.protocol;
  latency : Gen.latency_spec option;
  max_rounds : int;
}

let make_jobs ~family ~n ~protocol ~trials ~base_seed ~max_rounds ?latency () =
  if trials < 1 then invalid_arg "Sweep.make_jobs: need trials >= 1";
  List.init trials (fun i ->
      { family; n; seed = base_seed + (i * 7919); protocol; latency; max_rounds })

type outcome = {
  job : job;
  n_actual : int;
  edges : int;
  rounds : int option;
  metrics : Wheel_engine.metrics;
  elapsed_s : float;
}

let run_job job =
  let started = Unix.gettimeofday () in
  let csr = build job.family ~n:job.n ~seed:job.seed in
  let csr =
    match job.latency with
    | None -> csr
    | Some spec -> Csr.with_latencies (Rng.of_int (job.seed + 7)) spec csr
  in
  let n_actual = Csr.n csr in
  let source = job.seed mod n_actual in
  let source = if source < 0 then source + n_actual else source in
  let result =
    Wheel_engine.broadcast
      (Rng.of_int (job.seed + 17))
      csr ~protocol:job.protocol ~source ~max_rounds:job.max_rounds
  in
  {
    job;
    n_actual;
    edges = Csr.m csr;
    rounds = result.Wheel_engine.rounds;
    metrics = result.Wheel_engine.metrics;
    elapsed_s = Unix.gettimeofday () -. started;
  }

let run ?workers ?telemetry jobs = Pool.map_list ?workers ?telemetry run_job jobs

type summary = {
  family : string;
  n : int;
  protocol : string;
  trials : int;
  completed : int;
  rounds : Stats.summary option;
  total_initiations : int;
  total_deliveries : int;
  total_dropped : int;
  mean_elapsed_s : float;
}

let summarize outcomes =
  let key o =
    (family_name o.job.family, o.job.n, Wheel_engine.protocol_name o.job.protocol)
  in
  let order = ref [] in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let k = key o in
      if not (Hashtbl.mem groups k) then begin
        order := k :: !order;
        Hashtbl.add groups k []
      end;
      Hashtbl.replace groups k (o :: Hashtbl.find groups k))
    outcomes;
  List.rev_map
    (fun ((family, n, protocol) as k) ->
      let members = List.rev (Hashtbl.find groups k) in
      let finished = List.filter_map (fun (o : outcome) -> o.rounds) members in
      let sum f = List.fold_left (fun acc o -> acc + f o) 0 members in
      {
        family;
        n;
        protocol;
        trials = List.length members;
        completed = List.length finished;
        rounds =
          (match finished with
          | [] -> None
          | _ ->
              Some
                (Stats.summarize (Array.of_list (List.map float_of_int finished))));
        total_initiations = sum (fun o -> o.metrics.Engine.initiations);
        total_deliveries = sum (fun o -> o.metrics.Engine.deliveries);
        total_dropped = sum (fun o -> o.metrics.Engine.dropped);
        mean_elapsed_s =
          (match members with
          | [] -> 0.0
          | _ ->
              List.fold_left (fun acc o -> acc +. o.elapsed_s) 0.0 members
              /. float_of_int (List.length members));
      })
    !order

let family_json = function
  | Ring_of_cliques { size; bridge_latency } ->
      Json.Obj
        [
          ("kind", Json.String "ring-of-cliques");
          ("size", Json.Int size);
          ("bridge_latency", Json.Int bridge_latency);
        ]
  | Barabasi_albert { attach } ->
      Json.Obj [ ("kind", Json.String "barabasi-albert"); ("attach", Json.Int attach) ]
  | Watts_strogatz { k; beta } ->
      Json.Obj
        [ ("kind", Json.String "watts-strogatz"); ("k", Json.Int k); ("beta", Json.Float beta) ]

let outcome_json o =
  Json.Obj
    [
      ("family", family_json o.job.family);
      ("n_requested", Json.Int o.job.n);
      ("n", Json.Int o.n_actual);
      ("edges", Json.Int o.edges);
      ("seed", Json.Int o.job.seed);
      ("protocol", Json.String (Wheel_engine.protocol_name o.job.protocol));
      ("max_rounds", Json.Int o.job.max_rounds);
      ("rounds", match o.rounds with Some r -> Json.Int r | None -> Json.Null);
      ("initiations", Json.Int o.metrics.Engine.initiations);
      ("deliveries", Json.Int o.metrics.Engine.deliveries);
      ("payload_words", Json.Int o.metrics.Engine.payload_words);
      ("dropped", Json.Int o.metrics.Engine.dropped);
      ("elapsed_s", Json.Float o.elapsed_s);
    ]

let stats_json (s : Stats.summary) =
  Json.Obj
    [
      ("n", Json.Int s.Stats.n);
      ("mean", Json.Float s.Stats.mean);
      ("stddev", Json.Float s.Stats.stddev);
      ("min", Json.Float s.Stats.min);
      ("p25", Json.Float s.Stats.p25);
      ("median", Json.Float s.Stats.median);
      ("p75", Json.Float s.Stats.p75);
      ("p95", Json.Float s.Stats.p95);
      ("max", Json.Float s.Stats.max);
    ]

let summary_json s =
  Json.Obj
    [
      ("family", Json.String s.family);
      ("n", Json.Int s.n);
      ("protocol", Json.String s.protocol);
      ("trials", Json.Int s.trials);
      ("completed", Json.Int s.completed);
      ("rounds", match s.rounds with Some st -> stats_json st | None -> Json.Null);
      ("total_initiations", Json.Int s.total_initiations);
      ("total_deliveries", Json.Int s.total_deliveries);
      ("total_dropped", Json.Int s.total_dropped);
      ("mean_elapsed_s", Json.Float s.mean_elapsed_s);
    ]

let to_json ?(meta = []) outcomes =
  Json.Obj
    [
      ("meta", Json.Obj meta);
      ("results", Json.List (List.map outcome_json outcomes));
      ("summaries", Json.List (List.map summary_json (summarize outcomes)));
    ]

let write_json path ?meta outcomes = Json.write path (to_json ?meta outcomes)

let job_event i o =
  [
    ("ev", Json.String "job");
    ("id", Json.Int i);
    ("family", Json.String (family_name o.job.family));
    ("n", Json.Int o.n_actual);
    ("edges", Json.Int o.edges);
    ("seed", Json.Int o.job.seed);
    ("protocol", Json.String (Wheel_engine.protocol_name o.job.protocol));
    ("max_rounds", Json.Int o.job.max_rounds);
    ("rounds", (match o.rounds with Some r -> Json.Int r | None -> Json.Null));
    ("initiations", Json.Int o.metrics.Engine.initiations);
    ("deliveries", Json.Int o.metrics.Engine.deliveries);
    ("dropped", Json.Int o.metrics.Engine.dropped);
    ("elapsed_s", Json.Float o.elapsed_s);
  ]

let write_telemetry path ?(meta = []) ?registry outcomes =
  Gossip_obs.Sink.with_jsonl path (fun sink ->
      Gossip_obs.Sink.event sink (("ev", Json.String "meta") :: meta);
      List.iteri (fun i o -> Gossip_obs.Sink.event sink (job_event i o)) outcomes;
      match registry with
      | None -> ()
      | Some reg ->
          Gossip_obs.Sink.registry sink reg;
          (match Gossip_obs.Registry.ring reg with
          | None -> ()
          | Some r -> Gossip_obs.Sink.ring sink r))
