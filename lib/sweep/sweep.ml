module Csr = Gossip_scale.Csr
module Wheel_engine = Gossip_scale.Wheel_engine
module Rng = Gossip_util.Rng
module Stats = Gossip_util.Stats
module Json = Gossip_util.Json
module Gen = Gossip_graph.Gen
module Engine = Gossip_sim.Engine
module Sink = Gossip_obs.Sink

type family =
  | Ring_of_cliques of { size : int; bridge_latency : int }
  | Braided_ring of { size : int; bridges : int; bridge_latency : int }
  | Barabasi_albert of { attach : int }
  | Watts_strogatz of { k : int; beta : float }

let family_name = function
  | Ring_of_cliques _ -> "ring-of-cliques"
  | Braided_ring _ -> "braided-ring"
  | Barabasi_albert _ -> "barabasi-albert"
  | Watts_strogatz _ -> "watts-strogatz"

(* The node count a family realizes for a requested [n] — computable
   without building the graph, so failed jobs can be grouped with the
   successes of the same realized size. *)
let realized_n family ~n =
  match family with
  | Ring_of_cliques { size; _ } | Braided_ring { size; _ } -> max 3 (n / size) * size
  | Barabasi_albert _ | Watts_strogatz _ -> n

let build family ~n ~seed =
  let rng = Rng.of_int seed in
  match family with
  | Ring_of_cliques { size; bridge_latency } ->
      let cliques = max 3 (n / size) in
      Csr.ring_of_cliques ~cliques ~size ~bridge_latency
  | Braided_ring { size; bridges; bridge_latency } ->
      let cliques = max 3 (n / size) in
      Csr.braided_ring ~cliques ~size ~bridges ~bridge_latency
  | Barabasi_albert { attach } -> Csr.barabasi_albert rng ~n ~attach
  | Watts_strogatz { k; beta } -> Csr.watts_strogatz rng ~n ~k ~beta

type job = {
  family : family;
  n : int;
  seed : int;
  protocol : Wheel_engine.protocol;
  latency : Gen.latency_spec option;
  scenario : Gossip_dyn.Scenario.t option;
  max_rounds : int;
}

let make_jobs ~family ~n ~protocol ~trials ~base_seed ~max_rounds ?latency ?scenario () =
  if trials < 1 then invalid_arg "Sweep.make_jobs: need trials >= 1";
  List.init trials (fun i ->
      {
        family;
        n;
        seed = base_seed + (i * 7919);
        protocol;
        latency;
        scenario;
        max_rounds;
      })

type job_key = string * int * int * string

let job_key j = (family_name j.family, j.n, j.seed, Wheel_engine.protocol_name j.protocol)

type outcome = {
  job : job;
  n_actual : int;
  edges : int;
  rounds : int option;
  metrics : Wheel_engine.metrics;
  elapsed_s : float;
}

type failure = {
  failed_job : job;
  message : string;
  backtrace : string;
  attempts : int;
}

let run_job ?timeout_s ?domains ?pool_capacity ?on_round job =
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> started +. s) timeout_s in
  let csr = build job.family ~n:job.n ~seed:job.seed in
  let csr =
    match job.latency with
    | None -> csr
    | Some spec -> Csr.with_latencies (Rng.of_int (job.seed + 7)) spec csr
  in
  let n_actual = Csr.n csr in
  let source = job.seed mod n_actual in
  let source = if source < 0 then source + n_actual else source in
  (* A dynamic scenario compiles against the realized graph into an
     engine environment plus the wheel bound its schedules need; the
     adversary (when present) aims at the spanner orientation, so it
     only resolves on [Rr_spanner] jobs. *)
  let compile_scenario ?oriented () =
    Option.map
      (fun s -> Gossip_dyn.Scenario.compile ?oriented s ~csr ~source)
      job.scenario
  in
  let env c = Option.map (fun c -> c.Gossip_dyn.Scenario.env) c in
  let wheel c = Option.map (fun c -> c.Gossip_dyn.Scenario.wheel_latency) c in
  let result =
    match job.protocol with
    | Wheel_engine.Rr_spanner { stretch_k } ->
        (* RR Broadcast needs a precomputed Baswana–Sen orientation.
           The spanner draws from its own seed stream (seed + 29), so
           the engine's RNG consumption is untouched by its
           construction; stretch_k = 0 means the canonical ⌈log₂ n⌉. *)
        let k_sp =
          if stretch_k > 0 then stretch_k
          else
            let rec go acc p = if p >= n_actual then acc else go (acc + 1) (2 * p) in
            max 1 (go 0 1)
        in
        let spanner =
          Gossip_core.Spanner.build
            (Rng.of_int (job.seed + 29))
            (Csr.to_graph csr) ~k:k_sp ~n_hat:n_actual ()
        in
        let oriented = Csr.of_oriented_spanner spanner.Gossip_core.Spanner.out_edges in
        let kernel =
          Gossip_scale.Kernel.rr_broadcast ~k:(Csr.oriented_max_latency oriented) oriented
        in
        let c = compile_scenario ~oriented () in
        Wheel_engine.broadcast_kernel ?env:(env c) ?wheel_latency:(wheel c) ?deadline
          ?domains ?pool_capacity ?on_round
          (Rng.of_int (job.seed + 17))
          csr ~kernel ~source ~max_rounds:job.max_rounds
    | Wheel_engine.Unknown_eid ->
        (* The unknown-latency chain is a kernel-chain driver, not a
           single kernel; it budgets its own phases, so [max_rounds]
           is unused.  Reported rounds are the chain total. *)
        let c = compile_scenario () in
        let r =
          Gossip_core.Eid.run_unknown_scale ?env:(env c) ?wheel_latency:(wheel c) ?deadline
            ?domains
            (Rng.of_int (job.seed + 17))
            csr ~source ()
        in
        {
          Wheel_engine.rounds =
            (if r.Gossip_core.Eid.u_success then Some r.Gossip_core.Eid.u_rounds else None);
          metrics = r.Gossip_core.Eid.u_metrics;
          history = [];
          informed = r.Gossip_core.Eid.u_informed;
        }
    | Wheel_engine.Unified ->
        let c = compile_scenario () in
        let r =
          Gossip_core.Dissemination.broadcast_scale ?env:(env c) ?wheel_latency:(wheel c)
            ?deadline ?domains
            (Rng.of_int (job.seed + 17))
            csr ~source ~max_rounds:job.max_rounds ()
        in
        {
          Wheel_engine.rounds =
            (if r.Gossip_core.Dissemination.b_success then
               Some r.Gossip_core.Dissemination.b_rounds
             else None);
          metrics = r.Gossip_core.Dissemination.b_metrics;
          history = [];
          informed = r.Gossip_core.Dissemination.b_informed;
        }
    | protocol ->
        let c = compile_scenario () in
        Wheel_engine.broadcast ?env:(env c) ?wheel_latency:(wheel c) ?deadline ?domains
          ?pool_capacity ?on_round
          (Rng.of_int (job.seed + 17))
          csr ~protocol ~source ~max_rounds:job.max_rounds
  in
  {
    job;
    n_actual;
    edges = Csr.m csr;
    rounds = result.Wheel_engine.rounds;
    metrics = result.Wheel_engine.metrics;
    elapsed_s = Unix.gettimeofday () -. started;
  }

(* When every job shards itself across [domains] engine domains, the
   pool must shrink so workers × domains never oversubscribes the
   machine; with [domains <= 1] the historical worker policy is kept
   byte-for-byte. *)
let budgeted_workers ?workers ?domains () =
  match domains with
  | Some d when d > 1 -> Some (Pool.budget_workers ?workers ~domains_per_job:d ())
  | _ -> workers

let run ?workers ?domains ?telemetry jobs =
  let workers = budgeted_workers ?workers ?domains () in
  Pool.map_list ?workers ?telemetry (fun job -> run_job ?domains job) jobs

(* ------------------------------------------------------------------ *)
(* JSON serialization *)

let family_json = function
  | Ring_of_cliques { size; bridge_latency } ->
      Json.Obj
        [
          ("kind", Json.String "ring-of-cliques");
          ("size", Json.Int size);
          ("bridge_latency", Json.Int bridge_latency);
        ]
  | Braided_ring { size; bridges; bridge_latency } ->
      Json.Obj
        [
          ("kind", Json.String "braided-ring");
          ("size", Json.Int size);
          ("bridges", Json.Int bridges);
          ("bridge_latency", Json.Int bridge_latency);
        ]
  | Barabasi_albert { attach } ->
      Json.Obj [ ("kind", Json.String "barabasi-albert"); ("attach", Json.Int attach) ]
  | Watts_strogatz { k; beta } ->
      Json.Obj
        [ ("kind", Json.String "watts-strogatz"); ("k", Json.Int k); ("beta", Json.Float beta) ]

let latency_json = function
  | Gen.Unit -> Json.Obj [ ("kind", Json.String "unit") ]
  | Gen.Fixed k -> Json.Obj [ ("kind", Json.String "fixed"); ("latency", Json.Int k) ]
  | Gen.Uniform (lo, hi) ->
      Json.Obj [ ("kind", Json.String "uniform"); ("lo", Json.Int lo); ("hi", Json.Int hi) ]
  | Gen.Bimodal { fast; slow; p_fast } ->
      Json.Obj
        [
          ("kind", Json.String "bimodal");
          ("fast", Json.Int fast);
          ("slow", Json.Int slow);
          ("p_fast", Json.Float p_fast);
        ]
  | Gen.Power_law { min_latency; max_latency; exponent } ->
      Json.Obj
        [
          ("kind", Json.String "powerlaw");
          ("min", Json.Int min_latency);
          ("max", Json.Int max_latency);
          ("exponent", Json.Float exponent);
        ]

let latency_of_json j =
  let field name = match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None in
  let int name = match field name with Some (Json.Int i) -> Some i | _ -> None in
  let flt name =
    match field name with
    | Some (Json.Float x) -> Some x
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match field "kind" with
  | Some (Json.String "unit") -> Some Gen.Unit
  | Some (Json.String "fixed") -> Option.map (fun k -> Gen.Fixed k) (int "latency")
  | Some (Json.String "uniform") -> (
      match (int "lo", int "hi") with
      | Some lo, Some hi -> Some (Gen.Uniform (lo, hi))
      | _ -> None)
  | Some (Json.String "bimodal") -> (
      match (int "fast", int "slow", flt "p_fast") with
      | Some fast, Some slow, Some p_fast -> Some (Gen.Bimodal { fast; slow; p_fast })
      | _ -> None)
  | Some (Json.String "powerlaw") -> (
      match (int "min", int "max", flt "exponent") with
      | Some min_latency, Some max_latency, Some exponent ->
          Some (Gen.Power_law { min_latency; max_latency; exponent })
      | _ -> None)
  | _ -> None

let outcome_json o =
  Json.Obj
    [
      ("family", family_json o.job.family);
      ("n_requested", Json.Int o.job.n);
      ("n", Json.Int o.n_actual);
      ("edges", Json.Int o.edges);
      ("seed", Json.Int o.job.seed);
      ("protocol", Json.String (Wheel_engine.protocol_name o.job.protocol));
      ("max_rounds", Json.Int o.job.max_rounds);
      ("rounds", match o.rounds with Some r -> Json.Int r | None -> Json.Null);
      ("initiations", Json.Int o.metrics.Engine.initiations);
      ("deliveries", Json.Int o.metrics.Engine.deliveries);
      ("payload_words", Json.Int o.metrics.Engine.payload_words);
      ("dropped", Json.Int o.metrics.Engine.dropped);
      ("elapsed_s", Json.Float o.elapsed_s);
    ]

let failure_json i (f : failure) =
  [
    ("ev", Json.String "job_error");
    ("id", Json.Int i);
    ("family", Json.String (family_name f.failed_job.family));
    ("n", Json.Int f.failed_job.n);
    ("seed", Json.Int f.failed_job.seed);
    ("protocol", Json.String (Wheel_engine.protocol_name f.failed_job.protocol));
    ("error", Json.String f.message);
    ("attempts", Json.Int f.attempts);
  ]

let retry_json i (job, attempt, message) =
  [
    ("ev", Json.String "retry");
    ("id", Json.Int i);
    ("family", Json.String (family_name job.family));
    ("n", Json.Int job.n);
    ("seed", Json.Int job.seed);
    ("protocol", Json.String (Wheel_engine.protocol_name job.protocol));
    ("attempt", Json.Int attempt);
    ("error", Json.String message);
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoints *)

type checkpoint_entry = Ckpt_done of outcome | Ckpt_failed of failure

(* A [ckpt_job] line is the outcome's JSON plus the metric fields the
   public result format omits, so resume can rebuild a byte-identical
   report without re-running the job. *)
let ckpt_job_event o =
  let fields = match outcome_json o with Json.Obj fs -> fs | _ -> assert false in
  (("ev", Json.String "ckpt_job") :: fields)
  @ [
      ("rounds_executed", Json.Int o.metrics.Engine.rounds);
      ("rejected", Json.Int o.metrics.Engine.rejected);
    ]

let ckpt_fail_event (f : failure) =
  [
    ("ev", Json.String "ckpt_fail");
    ("family", family_json f.failed_job.family);
    ("n_requested", Json.Int f.failed_job.n);
    ("seed", Json.Int f.failed_job.seed);
    ("protocol", Json.String (Wheel_engine.protocol_name f.failed_job.protocol));
    ("max_rounds", Json.Int f.failed_job.max_rounds);
    ("error", Json.String f.message);
    ("backtrace", Json.String f.backtrace);
    ("attempts", Json.Int f.attempts);
  ]

let protocol_of_name = Wheel_engine.protocol_of_string

let family_of_json j =
  let field name = match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None in
  let int name = match field name with Some (Json.Int i) -> Some i | _ -> None in
  let flt name =
    match field name with
    | Some (Json.Float x) -> Some x
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match field "kind" with
  | Some (Json.String "ring-of-cliques") -> (
      match (int "size", int "bridge_latency") with
      | Some size, Some bridge_latency -> Some (Ring_of_cliques { size; bridge_latency })
      | _ -> None)
  | Some (Json.String "braided-ring") -> (
      match (int "size", int "bridges", int "bridge_latency") with
      | Some size, Some bridges, Some bridge_latency ->
          Some (Braided_ring { size; bridges; bridge_latency })
      | _ -> None)
  | Some (Json.String "barabasi-albert") -> (
      match int "attach" with
      | Some attach -> Some (Barabasi_albert { attach })
      | None -> None)
  | Some (Json.String "watts-strogatz") -> (
      match (int "k", flt "beta") with
      | Some k, Some beta -> Some (Watts_strogatz { k; beta })
      | _ -> None)
  | _ -> None

(* A job spec as one standalone JSON object — the serialization the
   serve daemon journals at submit time, so a killed daemon can
   re-enqueue exactly the jobs it accepted.  Unlike the checkpoint
   records above, the latency redraw spec {e is} persisted: a pending
   job must rebuild its graph byte-identically when re-run. *)
let job_to_json j =
  Json.Obj
    ([
       ("family", family_json j.family);
       ("n", Json.Int j.n);
       ("seed", Json.Int j.seed);
       ("protocol", Json.String (Wheel_engine.protocol_name j.protocol));
       ("max_rounds", Json.Int j.max_rounds);
     ]
    @ (match j.latency with None -> [] | Some spec -> [ ("latency", latency_json spec) ])
    @
    match j.scenario with
    | None -> []
    | Some s -> [ ("scenario", Gossip_dyn.Scenario.to_json s) ])

let job_of_json j =
  let field name = match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None in
  let int name = match field name with Some (Json.Int i) -> Some i | _ -> None in
  let str name = match field name with Some (Json.String s) -> Some s | _ -> None in
  match (field "family", int "n", int "seed", str "protocol", int "max_rounds") with
  | Some fj, Some n, Some seed, Some pname, Some max_rounds -> (
      match (family_of_json fj, protocol_of_name pname) with
      | Some family, Some protocol -> (
          let latency =
            match field "latency" with
            | None | Some Json.Null -> Some None
            | Some lj -> (
                match latency_of_json lj with
                | Some spec -> Some (Some spec)
                | None -> None)
          in
          let scenario =
            match field "scenario" with
            | None | Some Json.Null -> Some None
            | Some sj -> (
                match Gossip_dyn.Scenario.of_json sj with
                | s -> Some (Some s)
                | exception Gossip_dyn.Scenario.Invalid_scenario _ -> None)
          in
          match (latency, scenario) with
          | Some latency, Some scenario ->
              Some { family; n; seed; protocol; latency; scenario; max_rounds }
          | _ -> None)
      | _ -> None)
  | _ -> None

let entry_of_json j =
  let field name = match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None in
  let int name = match field name with Some (Json.Int i) -> Some i | _ -> None in
  let str name = match field name with Some (Json.String s) -> Some s | _ -> None in
  let flt name =
    match field name with
    | Some (Json.Float x) -> Some x
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let parse_job () =
    match (field "family", int "n_requested", int "seed", str "protocol", int "max_rounds") with
    | Some fj, Some n, Some seed, Some pname, Some max_rounds -> (
        match (family_of_json fj, protocol_of_name pname) with
        | Some family, Some protocol ->
            (* The latency redraw and scenario specs only steer
               execution; every reported field is checkpointed, so they
               are not persisted. *)
            Some { family; n; seed; protocol; latency = None; scenario = None; max_rounds }
        | _ -> None)
    | _ -> None
  in
  match str "ev" with
  | Some "ckpt_job" -> (
      match (parse_job (), int "n", int "edges") with
      | Some job, Some n_actual, Some edges ->
          let g name = Option.value ~default:0 (int name) in
          Some
            (Ckpt_done
               {
                 job;
                 n_actual;
                 edges;
                 rounds = int "rounds";
                 metrics =
                   {
                     Engine.rounds = g "rounds_executed";
                     initiations = g "initiations";
                     deliveries = g "deliveries";
                     payload_words = g "payload_words";
                     rejected = g "rejected";
                     dropped = g "dropped";
                   };
                 elapsed_s = Option.value ~default:0.0 (flt "elapsed_s");
               })
      | _ -> None)
  | Some "ckpt_fail" -> (
      match parse_job () with
      | Some job ->
          Some
            (Ckpt_failed
               {
                 failed_job = job;
                 message = Option.value ~default:"unknown error" (str "error");
                 backtrace = Option.value ~default:"" (str "backtrace");
                 attempts = Option.value ~default:1 (int "attempts");
               })
      | None -> None)
  | _ -> None

let checkpoint_key = function
  | Ckpt_done o -> job_key o.job
  | Ckpt_failed f -> job_key f.failed_job

let checkpoint_event = function
  | Ckpt_done o -> ckpt_job_event o
  | Ckpt_failed f -> ckpt_fail_event f

let read_checkpoint path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         (* A torn final line (the process was killed mid-write) or a
            foreign event is skipped, not fatal: the checkpoint must be
            readable after any crash. *)
         match Json.of_string line with
         | Error _ -> ()
         | Ok j -> (
             match entry_of_json j with
             | Some e -> entries := e :: !entries
             | None -> ())
     done
   with
  | End_of_file -> close_in ic
  | e ->
      close_in ic;
      raise e);
  List.rev !entries

let resume path jobs =
  if not (Sys.file_exists path) then jobs
  else begin
    let recorded = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace recorded (checkpoint_key e) ()) (read_checkpoint path);
    List.filter (fun j -> not (Hashtbl.mem recorded (job_key j))) jobs
  end

(* A process killed mid-write leaves the checkpoint's last line torn,
   with no trailing newline; appending straight after it would weld the
   first new record onto the torn fragment and corrupt both.  Seal the
   file with a newline before reopening it for append. *)
let seal_torn_line path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let torn =
      len > 0
      && begin
           seek_in ic (len - 1);
           input_char ic <> '\n'
         end
    in
    close_in ic;
    if torn then begin
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_char oc '\n';
      close_out oc
    end
  end

let seal_checkpoint = seal_torn_line

(* ------------------------------------------------------------------ *)
(* Fault-tolerant runner *)

type report = {
  completed : outcome list;
  failed : failure list;
  skipped : int;
  retried : (job * int * string) list;
}

let failure_of_pool job (pf : Pool.failure) =
  {
    failed_job = job;
    message = Pool.failure_message pf;
    backtrace = Printexc.raw_backtrace_to_string pf.Pool.backtrace;
    attempts = pf.Pool.attempts;
  }

let run_ft ?workers ?(retries = 0) ?timeout_s ?domains ?pool_capacity ?checkpoint
    ?(resume = false) ?inject ?telemetry jobs =
  if resume && checkpoint = None then
    invalid_arg "Sweep.run_ft: ~resume:true requires a checkpoint path";
  let workers = budgeted_workers ?workers ?domains () in
  let prior = Hashtbl.create 64 in
  (match checkpoint with
  | Some path when resume && Sys.file_exists path ->
      List.iter (fun e -> Hashtbl.replace prior (checkpoint_key e) e) (read_checkpoint path)
  | _ -> ());
  let todo =
    List.filter (fun j -> not (Hashtbl.mem prior (job_key j))) jobs |> Array.of_list
  in
  let sink =
    match checkpoint with
    | None -> None
    | Some path ->
        let append = resume && Sys.file_exists path in
        if append then seal_torn_line path;
        Some (Sink.jsonl ~append path)
  in
  let run_one job =
    (match inject with None -> () | Some hook -> hook job);
    run_job ?timeout_s ?domains ?pool_capacity job
  in
  let retried = ref [] in
  let on_retry i ~attempt e =
    retried := (todo.(i), attempt, Printexc.to_string e) :: !retried
  in
  let on_result i r =
    match sink with
    | None -> ()
    | Some sink ->
        (match r with
        | Pool.Ok o -> Sink.event sink (ckpt_job_event o)
        | Pool.Failed pf -> Sink.event sink (ckpt_fail_event (failure_of_pool todo.(i) pf)));
        (* One flush per job: a killed or OOM'd sweep loses at most the
           record being written, and resume replays only that job. *)
        Sink.flush sink
  in
  let results =
    match Pool.run_outcomes ?workers ~retries ~on_retry ~on_result ?telemetry run_one todo with
    | results ->
        (match sink with Some s -> Sink.close s | None -> ());
        results
    | exception e ->
        (match sink with Some s -> Sink.close s | None -> ());
        raise e
  in
  let completed = ref [] and failed = ref [] and skipped = ref 0 in
  let next = ref 0 in
  List.iter
    (fun j ->
      match Hashtbl.find_opt prior (job_key j) with
      | Some (Ckpt_done o) ->
          incr skipped;
          completed := o :: !completed
      | Some (Ckpt_failed f) ->
          incr skipped;
          failed := f :: !failed
      | None -> (
          let r = results.(!next) in
          incr next;
          match r with
          | Pool.Ok o -> completed := o :: !completed
          | Pool.Failed pf -> failed := failure_of_pool j pf :: !failed))
    jobs;
  {
    completed = List.rev !completed;
    failed = List.rev !failed;
    skipped = !skipped;
    retried = List.rev !retried;
  }

(* ------------------------------------------------------------------ *)
(* Summaries *)

type summary = {
  family : string;
  n : int;
  protocol : string;
  trials : int;
  completed : int;
  failed : int;
  rounds : Stats.summary option;
  total_initiations : int;
  total_deliveries : int;
  total_dropped : int;
  mean_elapsed_s : float;
}

let summarize ?(failures = []) outcomes =
  (* Group by the node count that actually ran — ring-of-cliques
     rounds the requested n to a clique multiple, and rows must match
     the graphs behind them.  Failures are grouped by the realized
     count their job would have built. *)
  let okey o =
    (family_name o.job.family, o.n_actual, Wheel_engine.protocol_name o.job.protocol)
  in
  let fkey (f : failure) =
    ( family_name f.failed_job.family,
      realized_n f.failed_job.family ~n:f.failed_job.n,
      Wheel_engine.protocol_name f.failed_job.protocol )
  in
  let order = ref [] in
  let groups = Hashtbl.create 16 in
  let fail_counts = Hashtbl.create 16 in
  let touch k =
    if not (Hashtbl.mem groups k || Hashtbl.mem fail_counts k) then order := k :: !order
  in
  List.iter
    (fun o ->
      let k = okey o in
      touch k;
      Hashtbl.replace groups k (o :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    outcomes;
  List.iter
    (fun f ->
      let k = fkey f in
      touch k;
      Hashtbl.replace fail_counts k (1 + Option.value ~default:0 (Hashtbl.find_opt fail_counts k)))
    failures;
  List.rev_map
    (fun ((family, n, protocol) as k) ->
      let members = List.rev (Option.value ~default:[] (Hashtbl.find_opt groups k)) in
      let failed = Option.value ~default:0 (Hashtbl.find_opt fail_counts k) in
      let finished = List.filter_map (fun (o : outcome) -> o.rounds) members in
      let sum f = List.fold_left (fun acc o -> acc + f o) 0 members in
      {
        family;
        n;
        protocol;
        trials = List.length members + failed;
        completed = List.length finished;
        failed;
        rounds =
          (match finished with
          | [] -> None
          | _ ->
              Some
                (Stats.summarize (Array.of_list (List.map float_of_int finished))));
        total_initiations = sum (fun o -> o.metrics.Engine.initiations);
        total_deliveries = sum (fun o -> o.metrics.Engine.deliveries);
        total_dropped = sum (fun o -> o.metrics.Engine.dropped);
        mean_elapsed_s =
          (match members with
          | [] -> 0.0
          | _ ->
              List.fold_left (fun acc o -> acc +. o.elapsed_s) 0.0 members
              /. float_of_int (List.length members));
      })
    !order

let stats_json (s : Stats.summary) =
  Json.Obj
    [
      ("n", Json.Int s.Stats.n);
      ("mean", Json.Float s.Stats.mean);
      ("stddev", Json.Float s.Stats.stddev);
      ("min", Json.Float s.Stats.min);
      ("p25", Json.Float s.Stats.p25);
      ("median", Json.Float s.Stats.median);
      ("p75", Json.Float s.Stats.p75);
      ("p95", Json.Float s.Stats.p95);
      ("max", Json.Float s.Stats.max);
    ]

let summary_json s =
  Json.Obj
    [
      ("family", Json.String s.family);
      ("n", Json.Int s.n);
      ("protocol", Json.String s.protocol);
      ("trials", Json.Int s.trials);
      ("completed", Json.Int s.completed);
      ("failed", Json.Int s.failed);
      ("rounds", match s.rounds with Some st -> stats_json st | None -> Json.Null);
      ("total_initiations", Json.Int s.total_initiations);
      ("total_deliveries", Json.Int s.total_deliveries);
      ("total_dropped", Json.Int s.total_dropped);
      ("mean_elapsed_s", Json.Float s.mean_elapsed_s);
    ]

let error_json (f : failure) =
  Json.Obj
    [
      ("family", family_json f.failed_job.family);
      ("n_requested", Json.Int f.failed_job.n);
      ("seed", Json.Int f.failed_job.seed);
      ("protocol", Json.String (Wheel_engine.protocol_name f.failed_job.protocol));
      ("error", Json.String f.message);
      ("attempts", Json.Int f.attempts);
    ]

let to_json ?(meta = []) ?(failures = []) outcomes =
  Json.Obj
    ([
       ("meta", Json.Obj meta);
       ("results", Json.List (List.map outcome_json outcomes));
       ("summaries", Json.List (List.map summary_json (summarize ~failures outcomes)));
     ]
    @ if failures = [] then [] else [ ("errors", Json.List (List.map error_json failures)) ])

let write_json path ?meta ?failures outcomes = Json.write path (to_json ?meta ?failures outcomes)

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let job_event i o =
  [
    ("ev", Json.String "job");
    ("id", Json.Int i);
    ("family", Json.String (family_name o.job.family));
    ("n", Json.Int o.n_actual);
    ("edges", Json.Int o.edges);
    ("seed", Json.Int o.job.seed);
    ("protocol", Json.String (Wheel_engine.protocol_name o.job.protocol));
    ("max_rounds", Json.Int o.job.max_rounds);
    ("rounds", (match o.rounds with Some r -> Json.Int r | None -> Json.Null));
    ("initiations", Json.Int o.metrics.Engine.initiations);
    ("deliveries", Json.Int o.metrics.Engine.deliveries);
    ("dropped", Json.Int o.metrics.Engine.dropped);
    ("elapsed_s", Json.Float o.elapsed_s);
  ]

let write_telemetry path ?(meta = []) ?registry ?(failures = []) ?(retries = []) outcomes =
  Gossip_obs.Sink.with_jsonl path (fun sink ->
      Gossip_obs.Sink.event sink (("ev", Json.String "meta") :: meta);
      List.iteri (fun i o -> Gossip_obs.Sink.event sink (job_event i o)) outcomes;
      List.iteri (fun i r -> Gossip_obs.Sink.event sink (retry_json i r)) retries;
      List.iteri (fun i f -> Gossip_obs.Sink.event sink (failure_json i f)) failures;
      match registry with
      | None -> ()
      | Some reg ->
          Gossip_obs.Sink.registry sink reg;
          (match Gossip_obs.Registry.ring reg with
          | None -> ()
          | Some r -> Gossip_obs.Sink.ring sink r))
