(** A fixed-size domain pool with a mutex-protected job queue.

    OCaml 5 multicore, stdlib only: jobs are drawn from a shared
    counter under a [Mutex], each worker runs in its own [Domain], and
    results land in a pre-sized slot array, so output order matches
    input order regardless of scheduling.  Simulation jobs own all
    their mutable state (graph, wheel engine, RNG streams), so workers
    share nothing but the queue itself. *)

(** [default_workers ()] is [Domain.recommended_domain_count () - 1],
    clamped to at least 1 — one domain is left for the orchestrator. *)
val default_workers : unit -> int

(** [run ?workers f inputs] applies [f] to every element of [inputs]
    on a pool of [workers] domains (default {!default_workers};
    clamped to [1 <= workers <= Array.length inputs]) and returns the
    results in input order.  If any job raised, the exception of the
    lowest-indexed failing job is re-raised after all workers have
    drained the queue. *)
val run : ?workers:int -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list ?workers f jobs] is {!run} over a list. *)
val map_list : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
