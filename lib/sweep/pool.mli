(** A fixed-size domain pool with a mutex-protected job queue.

    OCaml 5 multicore, stdlib only: jobs are drawn from a shared
    counter under a [Mutex], each worker runs in its own [Domain], and
    results land in a pre-sized slot array, so output order matches
    input order regardless of scheduling.  Simulation jobs own all
    their mutable state (graph, wheel engine, RNG streams), so workers
    share nothing but the queue itself. *)

(** [default_workers ()] is [Domain.recommended_domain_count () - 1],
    clamped to at least 1 — one domain is left for the orchestrator. *)
val default_workers : unit -> int

(** [run ?workers ?telemetry f inputs] applies [f] to every element of
    [inputs] on a pool of [workers] domains (default
    {!default_workers}; clamped to [1 <= workers <= Array.length
    inputs]) and returns the results in input order.  If any job
    raised, the exception of the lowest-indexed failing job is
    re-raised after all workers have drained the queue.

    When [telemetry] is given, each worker keeps a private registry
    (no cross-domain contention) recording [pool.worker<w>.busy_us]
    and [pool.worker<w>.jobs] counters plus shared-name [pool.job_us]
    (per-job wall time, microseconds) and [pool.queue_depth] (jobs
    remaining at dequeue) histograms; all worker registries are merged
    into [telemetry] after the join.  Per-worker metrics are
    registered eagerly, so the merged name set depends only on the
    worker count, not on scheduling. *)
val run :
  ?workers:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** [map_list ?workers ?telemetry f jobs] is {!run} over a list. *)
val map_list :
  ?workers:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ('a -> 'b) ->
  'a list ->
  'b list
