(** A fixed-size domain pool with a mutex-protected job queue.

    OCaml 5 multicore, stdlib only: jobs are drawn from a shared
    counter under a [Mutex], each worker runs in its own [Domain], and
    results land in a pre-sized slot array, so output order matches
    input order regardless of scheduling.  Simulation jobs own all
    their mutable state (graph, wheel engine, RNG streams), so workers
    share nothing but the queue itself.

    The pool is fault tolerant: {!run_outcomes} captures each job's
    exception (with the backtrace of the failing attempt, taken at the
    catch site) as a structured {!outcome} instead of aborting the
    whole run, and can retry failing jobs a bounded number of times.
    {!run} keeps the historical fail-fast semantics on top of it. *)

(** [default_workers ()] is [Domain.recommended_domain_count () - 1],
    clamped to at least 1 — one domain is left for the orchestrator. *)
val default_workers : unit -> int

(** [budget_workers ?workers ~domains_per_job ()] is the worker count
    for a pool whose every job itself spawns [domains_per_job] domains
    (a sharded {!Gossip_scale.Wheel_engine} run): the requested count
    ([workers] or {!default_workers}) clamped so that
    [workers * domains_per_job] never exceeds
    [Domain.recommended_domain_count ()], and at least 1 — jobs slow
    down gracefully rather than oversubscribe the machine.
    @raise Invalid_argument if [domains_per_job < 1]. *)
val budget_workers : ?workers:int -> domains_per_job:int -> unit -> int

(** The error side of a job outcome.  [backtrace] is captured with
    [Printexc.get_raw_backtrace] at the catch site of the {e last}
    attempt, so it points at the failing job, not at the pool's join;
    [attempts] counts every execution of the job, so it is [1] without
    retries and at most [retries + 1]. *)
type failure = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;
}

type 'a outcome = Ok of 'a | Failed of failure

(** [failure_message f] is [Printexc.to_string f.exn]. *)
val failure_message : failure -> string

(** [us_of_seconds s] converts a wall-clock span in seconds to integer
    microseconds, rounding to nearest (truncation would record 0 for
    every sub-microsecond job). *)
val us_of_seconds : float -> int

(** [run_outcomes ?workers ?retries ?on_retry ?on_result ?telemetry f
    inputs] applies [f] to every element of [inputs] on a pool of
    [workers] domains (default {!default_workers}; clamped to
    [1 <= workers <= Array.length inputs]) and returns one {!outcome}
    per input, in input order.  A raising job never aborts the run: it
    is re-executed up to [retries] extra times (default [0]) by the
    same worker, and if every attempt raises the job yields [Failed].

    [on_retry i ~attempt e] fires after attempt [attempt] of job [i]
    raised [e] and a retry is about to run; [on_result i outcome]
    fires as soon as job [i]'s final outcome is known — before the
    pool joins, which is what makes streaming checkpoints possible.
    Both callbacks are serialized on a dedicated mutex (they may be
    invoked from any worker domain, but never concurrently) and must
    not raise.

    When [telemetry] is given, each worker keeps a private registry
    (no cross-domain contention) recording [pool.worker<w>.busy_us]
    and [pool.worker<w>.jobs] counters, shared-name [pool.retries]
    (retry attempts) and [pool.failures] (jobs that ultimately failed)
    counters, plus shared-name [pool.job_us] (per-job wall time,
    microseconds, rounded) and [pool.queue_depth] (jobs remaining at
    dequeue) histograms; all worker registries are merged into
    [telemetry] after the join.  Per-worker metrics are registered
    eagerly, so the merged name set depends only on the worker count,
    not on scheduling.
    @raise Invalid_argument if [retries < 0]. *)
val run_outcomes :
  ?workers:int ->
  ?retries:int ->
  ?on_retry:(int -> attempt:int -> exn -> unit) ->
  ?on_result:(int -> 'b outcome -> unit) ->
  ?telemetry:Gossip_obs.Registry.t ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array

(** [run ?workers ?telemetry f inputs] is {!run_outcomes} with the
    historical fail-fast contract: results come back in input order,
    and if any job raised, the exception of the lowest-indexed failing
    job is re-raised (with that job's captured backtrace) after all
    workers have drained the queue. *)
val run :
  ?workers:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** [map_list ?workers ?telemetry f jobs] is {!run} over a list. *)
val map_list :
  ?workers:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ('a -> 'b) ->
  'a list ->
  'b list
