(** Multicore experiment orchestrator over the flat-array runtime.

    A sweep is a list of [(family, n, seed, protocol)] jobs, fanned
    across a {!Pool} of domains; every job builds its own {!Csr} graph
    and {!Wheel_engine} run, so nothing mutable crosses domains.
    Per-group round counts are condensed into {!Gossip_util.Stats}
    summaries, and the whole record — raw results plus summaries — can
    be serialized as JSON for external plotting. *)

(** Large-graph families, built directly in CSR form. *)
type family =
  | Ring_of_cliques of { size : int; bridge_latency : int }
      (** [n / size] cliques of [size] nodes (at least 3 cliques; the
          realized node count is rounded to a multiple of [size]) *)
  | Barabasi_albert of { attach : int }
  | Watts_strogatz of { k : int; beta : float }

val family_name : family -> string

(** [build family ~n ~seed] materializes the graph; the realized node
    count may be rounded down (ring-of-cliques) and is reported in the
    job outcome. *)
val build : family -> n:int -> seed:int -> Gossip_scale.Csr.t

type job = {
  family : family;
  n : int;  (** requested node count *)
  seed : int;  (** drives both graph sampling and the protocol run *)
  protocol : Gossip_scale.Wheel_engine.protocol;
  latency : Gossip_graph.Gen.latency_spec option;
      (** optional redraw of edge latencies after construction *)
  max_rounds : int;
}

(** [make_jobs ~family ~n ~protocol ~trials ~base_seed ~max_rounds ()]
    builds [trials] jobs with well-spread seeds
    ([base_seed + i * 7919], the convention of the bench harness). *)
val make_jobs :
  family:family ->
  n:int ->
  protocol:Gossip_scale.Wheel_engine.protocol ->
  trials:int ->
  base_seed:int ->
  max_rounds:int ->
  ?latency:Gossip_graph.Gen.latency_spec ->
  unit ->
  job list

type outcome = {
  job : job;
  n_actual : int;  (** realized node count *)
  edges : int;  (** realized undirected edge count *)
  rounds : int option;  (** completion rounds, [None] when capped *)
  metrics : Gossip_scale.Wheel_engine.metrics;
  elapsed_s : float;  (** wall-clock build + run time of this job *)
}

(** [run_job job] executes one job in the calling domain. *)
val run_job : job -> outcome

(** [run ?workers ?telemetry jobs] fans the jobs across a domain pool
    (default {!Pool.default_workers}); results come back in job order
    and are deterministic per job regardless of [workers].
    [telemetry] is forwarded to {!Pool.run}: worker-local pool metrics
    (busy time, job latency histogram, queue depth) are merged into it
    at join. *)
val run :
  ?workers:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  job list ->
  outcome list

(** Aggregate statistics for one [(family, n, protocol)] group, in
    first-appearance order. *)
type summary = {
  family : string;
  n : int;
  protocol : string;
  trials : int;
  completed : int;  (** jobs that finished under the round cap *)
  rounds : Gossip_util.Stats.summary option;
      (** distribution of completion rounds over completed trials *)
  total_initiations : int;
  total_deliveries : int;
  total_dropped : int;
  mean_elapsed_s : float;
}

val summarize : outcome list -> summary list

(** [to_json ?meta outcomes] is an object with ["meta"], ["results"]
    (one object per job) and ["summaries"] fields. *)
val to_json : ?meta:(string * Gossip_util.Json.t) list -> outcome list -> Gossip_util.Json.t

(** [write_json path ?meta outcomes] serializes to a file. *)
val write_json : string -> ?meta:(string * Gossip_util.Json.t) list -> outcome list -> unit

(** [write_telemetry path ?meta ?registry outcomes] writes the
    sweep's telemetry as JSONL through {!Gossip_obs.Sink}: one
    ["meta"] event carrying [meta], one ["job"] event per outcome
    (id, family, n, edges, seed, protocol, rounds, counters,
    elapsed_s), then — when [registry] is given — a registry snapshot
    and, if the registry carries a ring, its trace events.  The file
    is readable back with {!Gossip_obs.Report.of_file}. *)
val write_telemetry :
  string ->
  ?meta:(string * Gossip_util.Json.t) list ->
  ?registry:Gossip_obs.Registry.t ->
  outcome list ->
  unit
