(** Multicore experiment orchestrator over the flat-array runtime.

    A sweep is a list of [(family, n, seed, protocol)] jobs, fanned
    across a {!Pool} of domains; every job builds its own {!Csr} graph
    and {!Wheel_engine} run, so nothing mutable crosses domains.
    Per-group round counts are condensed into {!Gossip_util.Stats}
    summaries, and the whole record — raw results plus summaries — can
    be serialized as JSON for external plotting.

    The runtime is fault tolerant: {!run_ft} records each job's
    outcome as it finishes to an append-only JSONL checkpoint, retries
    failing jobs a bounded number of times, enforces a cooperative
    per-job wall-clock budget, and returns structured failures instead
    of aborting the campaign — so one crashing job out of thousands
    costs one result, not the run, and a killed sweep restarts where
    it left off via {!resume}. *)

(** Large-graph families, built directly in CSR form. *)
type family =
  | Ring_of_cliques of { size : int; bridge_latency : int }
      (** [n / size] cliques of [size] nodes (at least 3 cliques; the
          realized node count is rounded to a multiple of [size]) *)
  | Braided_ring of { size : int; bridges : int; bridge_latency : int }
      (** ring of cliques joined by [bridges] parallel matching edges,
          bridge 0 one round faster than the rest (see
          {!Gossip_scale.Csr.braided_ring}) — the dynamic-scenario
          testbed family *)
  | Barabasi_albert of { attach : int }
  | Watts_strogatz of { k : int; beta : float }

val family_name : family -> string

(** [realized_n family ~n] is the node count [build] will materialize
    for a requested [n] — [max 3 (n / size) · size] for
    ring-of-cliques, [n] otherwise — computable without building the
    graph. *)
val realized_n : family -> n:int -> int

(** [build family ~n ~seed] materializes the graph; the realized node
    count may be rounded (ring-of-cliques, see {!realized_n}) and is
    reported in the job outcome. *)
val build : family -> n:int -> seed:int -> Gossip_scale.Csr.t

type job = {
  family : family;
  n : int;  (** requested node count *)
  seed : int;  (** drives both graph sampling and the protocol run *)
  protocol : Gossip_scale.Wheel_engine.protocol;
  latency : Gossip_graph.Gen.latency_spec option;
      (** optional redraw of edge latencies after construction *)
  scenario : Gossip_dyn.Scenario.t option;
      (** optional dynamic-network scenario, compiled per job against
          the realized graph (see {!run_job}); [None] is the static
          plan *)
  max_rounds : int;
}

(** [make_jobs ~family ~n ~protocol ~trials ~base_seed ~max_rounds ()]
    builds [trials] jobs with well-spread seeds
    ([base_seed + i * 7919], the convention of the bench harness). *)
val make_jobs :
  family:family ->
  n:int ->
  protocol:Gossip_scale.Wheel_engine.protocol ->
  trials:int ->
  base_seed:int ->
  max_rounds:int ->
  ?latency:Gossip_graph.Gen.latency_spec ->
  ?scenario:Gossip_dyn.Scenario.t ->
  unit ->
  job list

(** The identity a checkpoint records per job:
    [(family name, requested n, seed, protocol name)]. *)
type job_key = string * int * int * string

val job_key : job -> job_key

(** [family_json f] serializes a family descriptor as a JSON object
    keyed by ["kind"]; {!family_of_json} inverts it. *)
val family_json : family -> Gossip_util.Json.t

val family_of_json : Gossip_util.Json.t -> family option

(** [latency_json spec] serializes a latency redraw spec as a JSON
    object keyed by ["kind"]; {!latency_of_json} inverts it. *)
val latency_json : Gossip_graph.Gen.latency_spec -> Gossip_util.Json.t

val latency_of_json : Gossip_util.Json.t -> Gossip_graph.Gen.latency_spec option

(** [job_to_json job] is the job spec as one standalone JSON object —
    family, requested [n], seed, protocol, round cap, {e and} the
    latency redraw and scenario specs (unlike checkpoint records,
    which only report executed results, a persisted spec must rebuild
    its graph and environment byte-identically when re-run).  The
    serve daemon journals this at submit time so a killed daemon
    re-enqueues exactly the jobs it accepted. *)
val job_to_json : job -> Gossip_util.Json.t

(** [job_of_json j] inverts {!job_to_json}; [None] on any missing or
    malformed field (including a present-but-undecodable latency). *)
val job_of_json : Gossip_util.Json.t -> job option

type outcome = {
  job : job;
  n_actual : int;  (** realized node count *)
  edges : int;  (** realized undirected edge count *)
  rounds : int option;  (** completion rounds, [None] when capped *)
  metrics : Gossip_scale.Wheel_engine.metrics;
  elapsed_s : float;  (** wall-clock build + run time of this job *)
}

(** A job that ultimately failed (after every retry). *)
type failure = {
  failed_job : job;
  message : string;  (** [Printexc.to_string] of the final exception *)
  backtrace : string;  (** captured at the catch site of the final attempt *)
  attempts : int;
}

(** [run_job ?timeout_s ?domains ?pool_capacity job] executes one job
    in the calling domain.  [timeout_s] is a cooperative wall-clock
    budget threaded into {!Gossip_scale.Wheel_engine.broadcast} as an
    absolute deadline and checked between rounds, so it never perturbs
    trajectories.  [domains] shards the engine run itself across that
    many OCaml domains (trajectory-identical to 1, see
    {!Gossip_scale.Wheel_engine.broadcast}); [pool_capacity] bounds
    the engine's exchange pool so a runaway job fails fast with
    {!Gossip_scale.Wheel_engine.Pool_exhausted}.  An [Rr_spanner] job
    first builds the Baswana–Sen orientation (from its own seed
    stream, so the engine's draws are unperturbed) and runs the RR
    kernel through {!Gossip_scale.Wheel_engine.broadcast_kernel}.
    A job's [scenario] is compiled against the realized graph
    ({!Gossip_dyn.Scenario.compile}) into the engine's [?env] hook and
    wheel bound; an adversarial scenario aims at the spanner
    orientation, so it requires an [Rr_spanner] job and raises
    {!Gossip_dyn.Scenario.Invalid_scenario} (a structured failure
    under {!run_ft}) on any other protocol.
    [on_round] is threaded to the engine's between-round observer
    (see {!Gossip_scale.Wheel_engine.broadcast}): trajectory-neutral
    progress streaming, and cooperative cancellation by raising.
    @raise Gossip_scale.Wheel_engine.Deadline_exceeded over budget. *)
val run_job :
  ?timeout_s:float ->
  ?domains:int ->
  ?pool_capacity:int ->
  ?on_round:(round:int -> informed:int -> unit) ->
  job ->
  outcome

(** [run ?workers ?domains ?telemetry jobs] fans the jobs across a
    domain pool (default {!Pool.default_workers}); results come back
    in job order and are deterministic per job regardless of [workers]
    {e and} [domains].  Fail-fast: the first job failure is re-raised
    after the queue drains — use {!run_ft} for campaigns that must
    survive partial failure.  With [domains > 1] each job shards its
    engine run, and the worker count is budgeted through
    {!Pool.budget_workers} so workers × domains never oversubscribes
    the machine.  [telemetry] is forwarded to {!Pool.run}:
    worker-local pool metrics (busy time, job latency histogram, queue
    depth) are merged into it at join. *)
val run :
  ?workers:int ->
  ?domains:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  job list ->
  outcome list

(** One checkpoint record: a finished job or a recorded failure. *)
type checkpoint_entry = Ckpt_done of outcome | Ckpt_failed of failure

val checkpoint_key : checkpoint_entry -> job_key

(** [outcome_json o] is the result row the sweep's JSON report carries
    for one finished job (deterministic fields plus wall-clock
    [elapsed_s]) — exposed so the serve daemon's [results] frames are
    byte-identical to a direct sweep's rows. *)
val outcome_json : outcome -> Gossip_util.Json.t

(** [checkpoint_event e] is the JSONL event ([ckpt_job] / [ckpt_fail])
    {!run_ft} streams for [e] — the PR-3 checkpoint format, exposed so
    other runtimes (the serve daemon's job journal) persist through
    the same schema.  Extra fields appended by a caller are ignored by
    {!entry_of_json}. *)
val checkpoint_event : checkpoint_entry -> (string * Gossip_util.Json.t) list

(** [entry_of_json j] parses one checkpoint event; [None] for foreign
    or malformed events (never an exception — checkpoints must be
    readable after any crash). *)
val entry_of_json : Gossip_util.Json.t -> checkpoint_entry option

(** [seal_checkpoint path] terminates a torn final line (a process
    killed mid-write leaves no trailing newline) so appending cannot
    weld a new record onto the fragment.  A missing file is a no-op. *)
val seal_checkpoint : string -> unit

(** [read_checkpoint path] parses an append-only JSONL checkpoint.
    Torn lines (a process killed mid-write) and foreign events are
    skipped, never fatal. *)
val read_checkpoint : string -> checkpoint_entry list

(** [resume path jobs] drops every job whose {!job_key} is already
    recorded in the checkpoint at [path] (finished {e or} failed); a
    missing file leaves [jobs] untouched.  The surviving jobs are
    exactly what a restarted sweep still has to run. *)
val resume : string -> job list -> job list

(** What {!run_ft} hands back: [completed] and [failed] partition the
    submitted jobs (both in submission order, checkpointed entries
    included at their original positions), [skipped] counts jobs
    satisfied from the checkpoint, and [retried] logs every failed
    attempt that was retried as [(job, attempt, error)]. *)
type report = {
  completed : outcome list;
  failed : failure list;
  skipped : int;
  retried : (job * int * string) list;
}

(** [run_ft ?workers ?retries ?timeout_s ?checkpoint ?resume ?inject
    ?telemetry jobs] is the fault-tolerant {!run}: every job outcome
    comes back structured instead of the first exception aborting the
    campaign.

    - [retries] (default 0): extra attempts per failing job, via
      {!Pool.run_outcomes}.
    - [timeout_s]: cooperative per-job wall-clock budget (see
      {!run_job}); an over-budget job counts as failed.
    - [domains]: per-job engine sharding (see {!run_job}); the worker
      count is budgeted through {!Pool.budget_workers} so workers ×
      domains never oversubscribes the machine.
    - [pool_capacity]: per-job exchange-pool bound (see {!run_job});
      an exhausted pool records the job as a structured
      [Pool_exhausted] failure and the campaign continues.
    - [checkpoint]: stream every outcome to this JSONL file {e as it
      finishes} (one flush per record), as [ckpt_job] / [ckpt_fail]
      events keyed by {!job_key}.
    - [resume] (default false; requires [checkpoint]): load the
      existing checkpoint, skip recorded jobs, and append new records
      instead of truncating — re-running only unfinished jobs with
      per-job results identical to an uninterrupted run.
    - [inject]: test hook invoked before each attempt of each job; an
      exception it raises is recorded as that attempt's failure
      (failure-injection for the test-suite and CI).
    - [telemetry]: forwarded to the pool; gains [pool.retries] and
      [pool.failures] counters on top of the usual pool metrics.

    @raise Invalid_argument if [resume] is set without [checkpoint]. *)
val run_ft :
  ?workers:int ->
  ?retries:int ->
  ?timeout_s:float ->
  ?domains:int ->
  ?pool_capacity:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?inject:(job -> unit) ->
  ?telemetry:Gossip_obs.Registry.t ->
  job list ->
  report

(** Aggregate statistics for one [(family, realized n, protocol)]
    group, in first-appearance order. *)
type summary = {
  family : string;
  n : int;  (** {e realized} node count (see {!realized_n}) *)
  protocol : string;
  trials : int;  (** submitted jobs in the group, failures included *)
  completed : int;  (** jobs that finished under the round cap *)
  failed : int;  (** jobs that ultimately failed *)
  rounds : Gossip_util.Stats.summary option;
      (** distribution of completion rounds over completed trials *)
  total_initiations : int;
  total_deliveries : int;
  total_dropped : int;
  mean_elapsed_s : float;
}

(** [summarize ?failures outcomes] groups by [(family, realized n,
    protocol)] — the node count that actually ran, so summary rows
    match the graphs behind them — and folds [failures] into their
    groups' [trials] / [failed] counts. *)
val summarize : ?failures:failure list -> outcome list -> summary list

(** [to_json ?meta ?failures outcomes] is an object with ["meta"],
    ["results"] (one object per job) and ["summaries"] fields, plus an
    ["errors"] field when [failures] is non-empty. *)
val to_json :
  ?meta:(string * Gossip_util.Json.t) list ->
  ?failures:failure list ->
  outcome list ->
  Gossip_util.Json.t

(** [write_json path ?meta ?failures outcomes] serializes to a file. *)
val write_json :
  string ->
  ?meta:(string * Gossip_util.Json.t) list ->
  ?failures:failure list ->
  outcome list ->
  unit

(** [write_telemetry path ?meta ?registry ?failures ?retries outcomes]
    writes the sweep's telemetry as JSONL through {!Gossip_obs.Sink}:
    one ["meta"] event carrying [meta], one ["job"] event per outcome
    (id, family, n, edges, seed, protocol, rounds, counters,
    elapsed_s), one ["retry"] event per retried attempt, one
    ["job_error"] event per ultimate failure, then — when [registry]
    is given — a registry snapshot and, if the registry carries a
    ring, its trace events.  The file is readable back with
    {!Gossip_obs.Report.of_file}. *)
val write_telemetry :
  string ->
  ?meta:(string * Gossip_util.Json.t) list ->
  ?registry:Gossip_obs.Registry.t ->
  ?failures:failure list ->
  ?retries:(job * int * string) list ->
  outcome list ->
  unit
