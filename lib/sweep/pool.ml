let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let run ?workers f inputs =
  let n = Array.length inputs in
  let workers =
    let requested = match workers with Some w -> w | None -> default_workers () in
    max 1 (min requested n)
  in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = ref 0 in
    let mu = Mutex.create () in
    let take () =
      Mutex.protect mu (fun () ->
          if !next < n then begin
            let i = !next in
            incr next;
            i
          end
          else -1)
    in
    let worker () =
      let rec loop () =
        let i = take () in
        if i >= 0 then begin
          (results.(i) <- Some (try Ok (f inputs.(i)) with e -> Error e));
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker ()
    else begin
      let domains = Array.init workers (fun _ -> Domain.spawn worker) in
      Array.iter Domain.join domains
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list ?workers f jobs = Array.to_list (run ?workers f (Array.of_list jobs))
