module Registry = Gossip_obs.Registry

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let budget_workers ?workers ~domains_per_job () =
  if domains_per_job < 1 then invalid_arg "Pool.budget_workers: domains_per_job must be >= 1";
  let available = max 1 (Domain.recommended_domain_count () / domains_per_job) in
  let requested = match workers with Some w -> max 1 w | None -> default_workers () in
  min requested available

type failure = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;
}

type 'a outcome = Ok of 'a | Failed of failure

let failure_message f = Printexc.to_string f.exn

(* Round (not truncate) when converting wall-clock spans to integer
   microseconds: [int_of_float] alone maps every sub-microsecond job
   to 0, silently zeroing busy_us on fast workloads. *)
let us_of_seconds s = int_of_float (Float.round (s *. 1e6))

(* Per-worker telemetry lives in a worker-local registry so the hot
   path takes no lock beyond the job queue's; locals are merged into
   the caller's registry after the join.  Metrics are pre-registered
   eagerly so the merged set of names does not depend on which worker
   happened to win which job. *)
type worker_tel = {
  local : Registry.t;
  w_busy_us : Registry.counter;
  w_jobs : Registry.counter;
  w_retries : Registry.counter;
  w_failures : Registry.counter;
  h_job_us : Registry.histogram;
  h_queue_depth : Registry.histogram;
}

let make_worker_tel w =
  let local = Registry.create () in
  {
    local;
    w_busy_us = Registry.counter local (Printf.sprintf "pool.worker%d.busy_us" w);
    w_jobs = Registry.counter local (Printf.sprintf "pool.worker%d.jobs" w);
    w_retries = Registry.counter local "pool.retries";
    w_failures = Registry.counter local "pool.failures";
    h_job_us = Registry.histogram local "pool.job_us";
    h_queue_depth = Registry.histogram local "pool.queue_depth";
  }

let run_outcomes ?workers ?(retries = 0) ?on_retry ?on_result ?telemetry f inputs =
  if retries < 0 then invalid_arg "Pool.run_outcomes: retries must be >= 0";
  let n = Array.length inputs in
  let workers =
    let requested = match workers with Some w -> w | None -> default_workers () in
    max 1 (min requested n)
  in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = ref 0 in
    let mu = Mutex.create () in
    (* Callbacks (checkpoint writes, retry logs) are serialized on
       their own mutex so they never block job dispatch. *)
    let cb_mu = Mutex.create () in
    let take () =
      Mutex.protect mu (fun () ->
          if !next < n then begin
            let i = !next in
            incr next;
            i
          end
          else -1)
    in
    let notify_retry i ~attempt e =
      match on_retry with
      | None -> ()
      | Some cb -> Mutex.protect cb_mu (fun () -> cb i ~attempt e)
    in
    let notify_result i r =
      match on_result with
      | None -> ()
      | Some cb -> Mutex.protect cb_mu (fun () -> cb i r)
    in
    let tels =
      match telemetry with
      | None -> [||]
      | Some _ -> Array.init workers make_worker_tel
    in
    (* The backtrace is captured at the catch site, before any further
       allocation, so a [Failed] outcome points at the failing job —
       not at the pool's join. *)
    let attempt_job tel i =
      let rec go attempt =
        match f inputs.(i) with
        | v -> Ok v
        | exception e ->
            let backtrace = Printexc.get_raw_backtrace () in
            if attempt <= retries then begin
              (match tel with Some t -> Registry.incr t.w_retries | None -> ());
              notify_retry i ~attempt e;
              go (attempt + 1)
            end
            else begin
              (match tel with Some t -> Registry.incr t.w_failures | None -> ());
              Failed { exn = e; backtrace; attempts = attempt }
            end
      in
      go 1
    in
    let worker w () =
      let tel = if Array.length tels = 0 then None else Some tels.(w) in
      let rec loop () =
        let i = take () in
        if i >= 0 then begin
          let r =
            match tel with
            | None -> attempt_job None i
            | Some t ->
                (* depth of the queue *after* this job was taken *)
                Registry.observe t.h_queue_depth (n - i - 1);
                let t0 = Unix.gettimeofday () in
                let r = attempt_job tel i in
                let us = us_of_seconds (Unix.gettimeofday () -. t0) in
                Registry.add t.w_busy_us us;
                Registry.incr t.w_jobs;
                Registry.observe t.h_job_us us;
                r
          in
          results.(i) <- Some r;
          notify_result i r;
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker 0 ()
    else begin
      let domains = Array.init workers (fun w -> Domain.spawn (worker w)) in
      Array.iter Domain.join domains
    end;
    (match telemetry with
    | None -> ()
    | Some reg -> Array.iter (fun tel -> Registry.merge ~into:reg tel.local) tels);
    Array.map (function Some r -> r | None -> assert false) results
  end

let run ?workers ?telemetry f inputs =
  Array.map
    (function
      | Ok v -> v
      | Failed { exn; backtrace; _ } -> Printexc.raise_with_backtrace exn backtrace)
    (run_outcomes ?workers ?telemetry f inputs)

let map_list ?workers ?telemetry f jobs =
  Array.to_list (run ?workers ?telemetry f (Array.of_list jobs))
