module Registry = Gossip_obs.Registry

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

(* Per-worker telemetry lives in a worker-local registry so the hot
   path takes no lock beyond the job queue's; locals are merged into
   the caller's registry after the join.  Metrics are pre-registered
   eagerly so the merged set of names does not depend on which worker
   happened to win which job. *)
type worker_tel = {
  local : Registry.t;
  w_busy_us : Registry.counter;
  w_jobs : Registry.counter;
  h_job_us : Registry.histogram;
  h_queue_depth : Registry.histogram;
}

let make_worker_tel w =
  let local = Registry.create () in
  {
    local;
    w_busy_us = Registry.counter local (Printf.sprintf "pool.worker%d.busy_us" w);
    w_jobs = Registry.counter local (Printf.sprintf "pool.worker%d.jobs" w);
    h_job_us = Registry.histogram local "pool.job_us";
    h_queue_depth = Registry.histogram local "pool.queue_depth";
  }

let run ?workers ?telemetry f inputs =
  let n = Array.length inputs in
  let workers =
    let requested = match workers with Some w -> w | None -> default_workers () in
    max 1 (min requested n)
  in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = ref 0 in
    let mu = Mutex.create () in
    let take () =
      Mutex.protect mu (fun () ->
          if !next < n then begin
            let i = !next in
            incr next;
            i
          end
          else -1)
    in
    let tels =
      match telemetry with
      | None -> [||]
      | Some _ -> Array.init workers make_worker_tel
    in
    let worker w () =
      let tel = if Array.length tels = 0 then None else Some tels.(w) in
      let rec loop () =
        let i = take () in
        if i >= 0 then begin
          (match tel with
          | None ->
              results.(i) <- Some (try Ok (f inputs.(i)) with e -> Error e)
          | Some tel ->
              (* depth of the queue *after* this job was taken *)
              Registry.observe tel.h_queue_depth (n - i - 1);
              let t0 = Unix.gettimeofday () in
              let r = try Ok (f inputs.(i)) with e -> Error e in
              let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
              Registry.add tel.w_busy_us us;
              Registry.incr tel.w_jobs;
              Registry.observe tel.h_job_us us;
              results.(i) <- Some r);
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker 0 ()
    else begin
      let domains = Array.init workers (fun w -> Domain.spawn (worker w)) in
      Array.iter Domain.join domains
    end;
    (match telemetry with
    | None -> ()
    | Some reg -> Array.iter (fun tel -> Registry.merge ~into:reg tel.local) tels);
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list ?workers ?telemetry f jobs =
  Array.to_list (run ?workers ?telemetry f (Array.of_list jobs))
