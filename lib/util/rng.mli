(** Deterministic, splittable pseudo-random number generator.

    The generator is splitmix64 (Steele, Lea, Flood 2014): a tiny,
    high-quality 64-bit mixer with a jumpable stream.  Every source of
    randomness in the repository flows from one of these states, so a
    fixed seed reproduces an experiment bit-for-bit.  [split] derives an
    independent stream, which lets concurrent simulated nodes draw
    randomness without order-dependence. *)

type t

(** [create seed] makes a fresh generator from a 64-bit seed. *)
val create : int64 -> t

(** [of_int seed] is [create] on the sign-extended integer. *)
val of_int : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent
    generator; the two may be used in any interleaving. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive;
    requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [geometric t p] is the number of Bernoulli([p]) trials up to and
    including the first success (support 1, 2, ...).  Requires
    [0 < p <= 1].  Always finite and [>= 1]: draws whose inverse
    transform would overflow the integer range (tiny [p]) clamp to
    [max_int]. *)
val geometric : t -> float -> int

(** [shuffle t a] permutes [a] in place uniformly (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t a] is a uniform element of the non-empty array [a]. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] is a uniform element of the non-empty list [l]. *)
val pick_list : t -> 'a list -> 'a

(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in uniformly random order.  Requires [0 <= k <= n]. *)
val sample_without_replacement : t -> int -> int -> int array
