(* The stream state is 8 bytes of [Bytes.t] read and written with the
   little-endian int64 accessors, not a [{ mutable state : int64 }]
   record.  Same splitmix64 arithmetic, so every sequence is
   bit-identical to the boxed representation it replaced — but a
   stream costs 2 heap words instead of ~5 (record + boxed int64 that
   was re-boxed on every write), and [bits64]'s state update allocates
   nothing.  At 10^7 per-node streams that is the difference between
   160 MB and 400 MB of pure RNG state, and the per-draw write is what
   keeps the scale engine's round loop allocation-free. *)
type t = Bytes.t

(* The 8-byte state is accessed through the compiler's word-load
   primitives (native endianness — the state bytes are opaque, only
   the int64 value matters, and get/set agree on any platform).
   Unlike the [Bytes.get_int64_le] wrappers, these compile inline, so
   the int64 never crosses a function boundary and is never boxed. *)
external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64"

external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64"

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  let t = Bytes.create 8 in
  set64 t 0 seed;
  t

let of_int seed = create (Int64.of_int seed)

let copy t = Bytes.copy t

(* splitmix64 finaliser: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  let s = Int64.add (get64 t 0) golden_gamma in
  set64 t 0 s;
  mix s

(* [bits62 t] is the low 62 bits of the next draw as an immediate
   [int].  The [mix] chain is written out inline: without flambda a
   call to [mix] would box its int64 result, and this path runs on
   every push-pull initiation, where it must not allocate.  The
   arithmetic is byte-for-byte [mix] — the pinned-sequence test keeps
   the two in sync. *)
let bits62 t =
  let s = Int64.add (get64 t 0) golden_gamma in
  set64 t 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFF_FFFF_FFFF_FFFFL)

let split t =
  (* Derive a new stream whose state is decorrelated from the parent by
     a second, different mixing constant. *)
  let s = bits64 t in
  create (Int64.mul (Int64.logxor s 0xD1B54A32D192ED03L) 0xFF51AFD7ED558CCDL)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias.  A
     while-loop over non-escaping refs (unboxed by the compiler), not a
     local [rec draw] closure — this runs on every push-pull initiation
     and must not allocate. *)
  let r = ref (bits62 t) in
  let v = ref (!r mod bound) in
  while !r - !v > (1 lsl 62) - bound do
    r := bits62 t;
    v := !r mod bound
  done;
  !v

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int bits /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let geometric t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1.0 then 1
  else
    let u = float t 1.0 in
    (* Inverse transform: ceil(ln u / ln (1-p)), clamped to >= 1.  Two
       overflow hazards for tiny [p]: [1 - p] can round to [1] (zero
       denominator), and the quotient can exceed [max_int], where
       [int_of_float] is unspecified.  Both clamp to [max_int] — the
       true draw is astronomically large either way. *)
    let denom = log (1.0 -. p) in
    if denom = 0.0 then max_int
    else
      let v = ceil (log (1.0 -. u) /. denom) in
      if not (Float.is_finite v) || v >= float_of_int max_int then max_int
      else max 1 (int_of_float v)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
