type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> if Float.is_finite x then add_float buf x else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf key;
          Buffer.add_char buf ':';
          to_buffer buf value)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
              incr pos;
              let cp = hex4 () in
              let cp =
                (* Combine a surrogate pair; unpaired surrogates have
                   no UTF-8 encoding, so reject them. *)
                if cp >= 0xd800 && cp <= 0xdbff then begin
                  if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u') then
                    fail "unpaired high surrogate";
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  else fail "unpaired high surrogate"
                end
                else if cp >= 0xdc00 && cp <= 0xdfff then fail "unpaired low surrogate"
                else cp
              in
              add_utf8 buf cp
          | c -> fail (Printf.sprintf "bad escape %C" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    (* RFC 8259: int ["." 1*DIGIT] [("e"/"E") ["+"/"-"] 1*DIGIT] where
       int = "0" / %x31-39 *DIGIT — no leading zeros, and both the
       fraction and the exponent require at least one digit. *)
    let start = !pos in
    let skip_digits () =
      while (match peek () with '0' .. '9' -> true | _ -> false) do incr pos done
    in
    if peek () = '-' then incr pos;
    (match peek () with
    | '0' ->
        incr pos;
        (match peek () with
        | '0' .. '9' -> fail "leading zero in number"
        | _ -> ())
    | '1' .. '9' -> skip_digits ()
    | _ -> fail "expected digit in number");
    let integral = ref true in
    if peek () = '.' then begin
      integral := false;
      incr pos;
      (match peek () with
      | '0' .. '9' -> skip_digits ()
      | _ -> fail "expected digit after '.' in number")
    end;
    (match peek () with
    | 'e' | 'E' ->
        integral := false;
        incr pos;
        (match peek () with '+' | '-' -> incr pos | _ -> ());
        (match peek () with
        | '0' .. '9' -> skip_digits ()
        | _ -> fail "expected digit in exponent")
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some x -> Float x
          | None -> fail (Printf.sprintf "bad number %S" text))
    else
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (string_lit ())
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                incr pos;
                items (v :: acc)
            | ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            (key, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | ',' ->
                incr pos;
                fields (f :: acc)
            | '}' ->
                incr pos;
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | '-' | '0' .. '9' -> number ()
    | _ -> fail "expected a JSON value"
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let write path j =
  let oc = open_out path in
  (try
     output_string oc (to_string j);
     output_char oc '\n'
   with e ->
     close_out oc;
     raise e);
  close_out oc
