type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> if Float.is_finite x then add_float buf x else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf key;
          Buffer.add_char buf ':';
          to_buffer buf value)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let write path j =
  let oc = open_out path in
  (try
     output_string oc (to_string j);
     output_char oc '\n'
   with e ->
     close_out oc;
     raise e);
  close_out oc
