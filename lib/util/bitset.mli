(** Fixed-capacity mutable bitsets.

    Rumor sets in the dissemination algorithms are sets of node
    identifiers in [\[0, n)]; a packed bitset makes the per-round merge
    (set union) cheap and keeps simulations of large networks
    affordable. *)

type t

(** [create n] is the empty set over universe [\[0, n)]. *)
val create : int -> t

(** [capacity t] is the universe size [n]. *)
val capacity : t -> int

(** [singleton n i] is [{i}] over universe [\[0, n)]. *)
val singleton : int -> int -> t

(** [full n] is the complete set [\[0, n)]. *)
val full : int -> t

val copy : t -> t

(** [add t i] inserts [i]; bounds-checked. *)
val add : t -> int -> unit

(** [remove t i] deletes [i]; bounds-checked. *)
val remove : t -> int -> unit

val mem : t -> int -> bool

(** [cardinal t] is the number of members — O(1): the count is
    maintained incrementally by every mutator. *)
val cardinal : t -> int

val is_empty : t -> bool

(** [is_full t] tests whether every element of the universe is present
    — O(1) (it used to recompute a full popcount per call, which made
    the once-per-round completion check O(n · rounds) at scale). *)
val is_full : t -> bool

(** [union_into ~into src] adds every member of [src] to [into];
    returns [true] iff [into] changed.  Capacities must match. *)
val union_into : into:t -> t -> bool

(** [subset a b] tests [a ⊆ b].  Capacities must match. *)
val subset : t -> t -> bool

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list

val of_list : int -> int list -> t

(** [choose_missing t] is the smallest element of the universe not in
    [t], if any. *)
val choose_missing : t -> int option

val pp : Format.formatter -> t -> unit
