(** Minimal JSON tree and emitter.

    The sweep orchestrator serializes experiment results for external
    plotting; a hand-rolled emitter keeps the repository dependency-free
    (no yojson).  Output is compact RFC 8259 JSON: strings are escaped,
    and non-finite floats — which JSON cannot represent — are emitted
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string j] renders [j] compactly (no insignificant
    whitespace). *)
val to_string : t -> string

(** [to_buffer buf j] appends the rendering to [buf]. *)
val to_buffer : Buffer.t -> t -> unit

(** [of_string s] parses one JSON document (RFC 8259).  Numbers
    without a fraction or exponent that fit in an OCaml [int] become
    [Int], everything else [Float]; [\uXXXX] escapes (including
    surrogate pairs) decode to UTF-8.  The whole input must be
    consumed.  Errors report a byte offset. *)
val of_string : string -> (t, string) result

(** [write path j] writes [to_string j] followed by a newline. *)
val write : string -> t -> unit
