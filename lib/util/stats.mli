(** Descriptive statistics and least-squares fits for experiment output.

    All functions operate on float arrays.  Sample inputs are never
    mutated (quantile functions sort a copy). *)

(** Five-number-plus summary of a sample. *)
type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

val mean : float array -> float

(** Sample variance with the (n-1) denominator; 0 for n < 2. *)
val variance : float array -> float

val stddev : float array -> float

(** [percentile a p] for [p] in [\[0, 100\]], with linear interpolation
    between order statistics.  Requires a non-empty array.  Sorts with
    [Float.compare]; raises [Invalid_argument] if the sample contains a
    NaN (a NaN would make the order, and hence every quantile,
    meaningless). *)
val percentile : float array -> float -> float

val median : float array -> float

(** Like the individual accessors but sorts the sample exactly once.
    Raises [Invalid_argument] on an empty or NaN-containing sample. *)
val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Least-squares line fit.  [r2] is the coefficient of determination. *)
type fit = { slope : float; intercept : float; r2 : float }

(** [linear_fit xs ys] fits [y = slope * x + intercept].
    Requires equal lengths >= 2 and non-constant [xs]. *)
val linear_fit : float array -> float array -> fit

(** [loglog_fit xs ys] fits [log y = slope * log x + intercept]; the
    slope is the empirical growth exponent.  All values must be
    positive. *)
val loglog_fit : float array -> float array -> fit

(** [geometric_mean a] of a positive sample. *)
val geometric_mean : float array -> float

(** [mean_confidence95 a] is (mean, half-width) of a normal-theory 95%
    confidence interval (1.96 standard errors). *)
val mean_confidence95 : float array -> float * float
