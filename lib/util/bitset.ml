type t = { n : int; words : Bytes.t; mutable card : int }

(* One byte per 8 elements; Bytes gives cheap copies and blits.  The
   cardinality is tracked incrementally by every mutator, so
   [cardinal] and — critically — [is_full] are O(1): the scale drivers
   test completion with [is_full] once per round, and the old
   recompute-a-popcount-per-call version made that check O(n) per
   round, an accidental O(n · rounds) term at 10^7 nodes. *)

let bytes_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Bytes.make (bytes_for n) '\000'; card = 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  let bit = 1 lsl (i land 7) in
  if b land bit = 0 then begin
    Bytes.set_uint8 t.words (i lsr 3) (b lor bit);
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  let bit = 1 lsl (i land 7) in
  if b land bit <> 0 then begin
    Bytes.set_uint8 t.words (i lsr 3) (b land lnot bit);
    t.card <- t.card - 1
  end

let mem t i =
  check t i;
  Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0

let singleton n i =
  let t = create n in
  add t i;
  t

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    add t i
  done;
  t

let copy t = { n = t.n; words = Bytes.copy t.words; card = t.card }

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun b -> tbl.(b)

let cardinal t = t.card

let is_empty t = t.card = 0

let is_full t = t.card = t.n

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into ~into src =
  check_same into src;
  let changed = ref false in
  for w = 0 to Bytes.length into.words - 1 do
    let a = Bytes.get_uint8 into.words w in
    let b = Bytes.get_uint8 src.words w in
    let u = a lor b in
    if u <> a then begin
      changed := true;
      Bytes.set_uint8 into.words w u;
      (* The new bits are exactly those set in [u] but not in [a]. *)
      into.card <- into.card + popcount_byte (u lxor a)
    end
  done;
  !changed

let subset a b =
  check_same a b;
  let rec go w =
    w >= Bytes.length a.words
    ||
    let x = Bytes.get_uint8 a.words w and y = Bytes.get_uint8 b.words w in
    x land lnot y = 0 && go (w + 1)
  in
  go 0

let equal a b =
  check_same a b;
  Bytes.equal a.words b.words

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let choose_missing t =
  let rec go i = if i >= t.n then None else if mem t i then go (i + 1) else Some i in
  go 0

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    (to_list t)
