type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

let mean a =
  let n = Array.length a in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let reject_nan ctx a =
  if Array.exists Float.is_nan a then invalid_arg (ctx ^ ": NaN in sample")

let sorted_copy ctx a =
  reject_nan ctx a;
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  sorted

(* [sorted] must be NaN-free and ascending; [p] in [0, 100]. *)
let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  percentile_of_sorted (sorted_copy "Stats.percentile" a) p

let median a = percentile a 50.0

let summarize a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = sorted_copy "Stats.summarize" a in
  {
    n;
    mean = mean a;
    stddev = stddev a;
    min = sorted.(0);
    p25 = percentile_of_sorted sorted 25.0;
    median = percentile_of_sorted sorted 50.0;
    p75 = percentile_of_sorted sorted 75.0;
    p95 = percentile_of_sorted sorted 95.0;
    max = sorted.(n - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p25=%.2f med=%.2f p75=%.2f p95=%.2f max=%.2f"
    s.n s.mean s.stddev s.min s.p25 s.median s.p75 s.p95 s.max

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: constant xs";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let loglog_fit xs ys =
  let check a =
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.loglog_fit: non-positive value") a
  in
  check xs;
  check ys;
  linear_fit (Array.map log xs) (Array.map log ys)

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.geometric_mean: empty sample";
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value") a;
  exp (Array.fold_left (fun s x -> s +. log x) 0.0 a /. float_of_int n)

let mean_confidence95 a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean_confidence95: empty sample";
  let m = mean a in
  let se = stddev a /. sqrt (float_of_int n) in
  (m, 1.96 *. se)
