module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Gen = Gossip_graph.Gen

type t = { n : int; row_ptr : I32.t; col : I32.t; lat : I32.t }

(* Every constructor funnels its scalars through these checks, so an
   out-of-range node count, latency, or row_ptr entry raises the typed
   [I32.Overflow] instead of wrapping inside an int32 cell. *)
let check_n n = I32.check "node count" n

let check_len len = I32.check "row_ptr entry" len

let check_lat l = I32.check "latency" l

let n t = t.n

let m t = I32.length t.col / 2

let degree t u = I32.get t.row_ptr (u + 1) - I32.get t.row_ptr u

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    if degree t u > !best then best := degree t u
  done;
  !best

let max_latency t =
  let best = ref 1 in
  for i = 0 to I32.length t.lat - 1 do
    let l = I32.get t.lat i in
    if l > !best then best := l
  done;
  !best

let latency t u v =
  if u < 0 || u >= t.n then invalid_arg "Csr.latency: node out of range";
  let rec go lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let w = I32.get t.col mid in
      if w = v then Some (I32.get t.lat mid)
      else if w < v then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go (I32.get t.row_ptr u) (I32.get t.row_ptr (u + 1) - 1)

let iter_neighbors t u f =
  if u < 0 || u >= t.n then invalid_arg "Csr.iter_neighbors: node out of range";
  for i = I32.get t.row_ptr u to I32.get t.row_ptr (u + 1) - 1 do
    f (I32.get t.col i) (I32.get t.lat i)
  done

let is_connected t =
  if t.n <= 1 then true
  else begin
    let seen = Bytes.make t.n '\000' in
    let queue = Array.make t.n 0 in
    Bytes.set seen 0 '\001';
    queue.(0) <- 0;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      for i = I32.get t.row_ptr u to I32.get t.row_ptr (u + 1) - 1 do
        let v = I32.get t.col i in
        if Bytes.get seen v = '\000' then begin
          Bytes.set seen v '\001';
          queue.(!tail) <- v;
          incr tail
        end
      done
    done;
    !tail = t.n
  end

let equal a b =
  a.n = b.n && I32.equal a.row_ptr b.row_ptr && I32.equal a.col b.col
  && I32.equal a.lat b.lat

(* One int32 Bigarray costs its 4-byte payload plus a header the size
   of roughly three words (custom block + dimension); the record adds
   its own header and fields. *)
let ba_words a = 3 + ((I32.memory_bytes a + 7) / 8)

let memory_words t = 5 + ba_words t.row_ptr + ba_words t.col + ba_words t.lat

(* The same structure in the pre-int32 boxed layout (three [int
   array]s at a full word per element): the honest baseline bench e18
   compares resident bytes-per-edge against. *)
let boxed_memory_words t =
  4 + I32.length t.row_ptr + I32.length t.col + I32.length t.lat + 3

(* Build row_ptr from an int prefix sum, rejecting entries beyond the
   int32 range before anything is packed. *)
let pack_row_ptr row_ptr =
  check_len row_ptr.(Array.length row_ptr - 1);
  I32.of_int_array ~what:"row_ptr entry" row_ptr

let of_graph g =
  let n = Graph.n g in
  check_n n;
  let row_ptr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row_ptr.(u + 1) <- row_ptr.(u) + Graph.degree g u
  done;
  let len = row_ptr.(n) in
  let row_ptr = pack_row_ptr row_ptr in
  let col = I32.make len 0 and lat = I32.make len 0 in
  for u = 0 to n - 1 do
    let base = I32.get row_ptr u in
    Array.iteri
      (fun i (v, l) ->
        check_lat l;
        I32.set col (base + i) v;
        I32.set lat (base + i) l)
      (Graph.neighbors g u)
  done;
  { n; row_ptr; col; lat }

let to_graph t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for i = I32.get t.row_ptr (u + 1) - 1 downto I32.get t.row_ptr u do
      let v = I32.get t.col i in
      if u < v then acc := (u, v, I32.get t.lat i) :: !acc
    done
  done;
  Graph.of_edges ~n:t.n !acc

(* Insertion sort of one CSR row segment [lo, hi) by neighbor id.  The
   generators below emit rows that are sorted except for a couple of
   trailing entries (bridges, rewired edges), so this is effectively
   linear. *)
let sort_row col lat lo hi =
  for i = lo + 1 to hi - 1 do
    let c = I32.get col i and l = I32.get lat i in
    let j = ref (i - 1) in
    while !j >= lo && I32.get col !j > c do
      I32.set col (!j + 1) (I32.get col !j);
      I32.set lat (!j + 1) (I32.get lat !j);
      decr j
    done;
    I32.set col (!j + 1) c;
    I32.set lat (!j + 1) l
  done

(* Pack [count] undirected edges held in parallel arrays into CSR:
   count degrees, prefix-sum, scatter both directions, sort rows. *)
let of_undirected_arrays ~n eu ev el ~count =
  check_n n;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to count - 1 do
    row_ptr.(eu.(i) + 1) <- row_ptr.(eu.(i) + 1) + 1;
    row_ptr.(ev.(i) + 1) <- row_ptr.(ev.(i) + 1) + 1
  done;
  for u = 0 to n - 1 do
    row_ptr.(u + 1) <- row_ptr.(u + 1) + row_ptr.(u)
  done;
  let len = row_ptr.(n) in
  let cursor = Array.copy row_ptr in
  let row_ptr = pack_row_ptr row_ptr in
  let col = I32.make len 0 and lat = I32.make len 0 in
  for i = 0 to count - 1 do
    let u = eu.(i) and v = ev.(i) and l = el.(i) in
    check_lat l;
    I32.set col cursor.(u) v;
    I32.set lat cursor.(u) l;
    cursor.(u) <- cursor.(u) + 1;
    I32.set col cursor.(v) u;
    I32.set lat cursor.(v) l;
    cursor.(v) <- cursor.(v) + 1
  done;
  for u = 0 to n - 1 do
    sort_row col lat (I32.get row_ptr u) (I32.get row_ptr (u + 1))
  done;
  { n; row_ptr; col; lat }

let ring_of_cliques ~cliques ~size ~bridge_latency =
  if cliques < 3 then invalid_arg "Csr.ring_of_cliques: need >= 3 cliques";
  if size < 1 then invalid_arg "Csr.ring_of_cliques: need size >= 1";
  if bridge_latency < 1 then invalid_arg "Csr.ring_of_cliques: bad bridge latency";
  let n = cliques * size in
  check_n n;
  check_lat bridge_latency;
  let id c i = (c * size) + i in
  let deg i = size - 1 + (if i = 0 then 1 else 0) + if i = size - 1 then 1 else 0 in
  let row_ptr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row_ptr.(u + 1) <- row_ptr.(u) + deg (u mod size)
  done;
  let len = row_ptr.(n) in
  let row_ptr = pack_row_ptr row_ptr in
  let col = I32.make len 0 and lat = I32.make len 0 in
  for c = 0 to cliques - 1 do
    for i = 0 to size - 1 do
      let u = id c i in
      let p = ref (I32.get row_ptr u) in
      let push v l =
        I32.set col !p v;
        I32.set lat !p l;
        incr p
      in
      for j = 0 to size - 1 do
        if j <> i then push (id c j) 1
      done;
      if i = 0 then push (id ((c - 1 + cliques) mod cliques) (size - 1)) bridge_latency;
      if i = size - 1 then push (id ((c + 1) mod cliques) 0) bridge_latency;
      sort_row col lat (I32.get row_ptr u) (I32.get row_ptr (u + 1))
    done
  done;
  { n; row_ptr; col; lat }

let braided_ring ~cliques ~size ~bridges ~bridge_latency =
  if cliques < 3 then invalid_arg "Csr.braided_ring: need >= 3 cliques";
  if size < 1 then invalid_arg "Csr.braided_ring: need size >= 1";
  if bridges < 1 || bridges > size then
    invalid_arg "Csr.braided_ring: need 1 <= bridges <= size";
  if bridge_latency < 2 then
    invalid_arg "Csr.braided_ring: need bridge_latency >= 2 (bridge 0 runs at bridge_latency - 1)";
  let n = cliques * size in
  check_n n;
  check_lat bridge_latency;
  let id c i = (c * size) + i in
  let deg i = size - 1 + if i < bridges then 2 else 0 in
  let row_ptr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row_ptr.(u + 1) <- row_ptr.(u) + deg (u mod size)
  done;
  let len = row_ptr.(n) in
  let row_ptr = pack_row_ptr row_ptr in
  let col = I32.make len 0 and lat = I32.make len 0 in
  for c = 0 to cliques - 1 do
    for i = 0 to size - 1 do
      let u = id c i in
      let p = ref (I32.get row_ptr u) in
      let push v l =
        I32.set col !p v;
        I32.set lat !p l;
        incr p
      in
      for j = 0 to size - 1 do
        if j <> i then push (id c j) 1
      done;
      if i < bridges then begin
        (* Bridge 0 is the fast backbone; its siblings run one round
           slower, so a latency filter at [bridge_latency] touches the
           braid but never the backbone. *)
        let l = if i = 0 then bridge_latency - 1 else bridge_latency in
        push (id ((c - 1 + cliques) mod cliques) i) l;
        push (id ((c + 1) mod cliques) i) l
      end;
      sort_row col lat (I32.get row_ptr u) (I32.get row_ptr (u + 1))
    done
  done;
  { n; row_ptr; col; lat }

let barabasi_albert rng ~n ~attach =
  if attach < 1 || n <= attach then invalid_arg "Csr.barabasi_albert: need n > attach >= 1";
  check_n n;
  let seed_size = attach + 1 in
  let count = (attach * seed_size / 2) + ((n - seed_size) * attach) in
  let eu = Array.make count 0 and ev = Array.make count 0 in
  let el = Array.make count 1 in
  (* Degree-proportional sampling via the repeated-endpoints array:
     every edge contributes both endpoints, so a uniform index draw is
     a degree-weighted node draw. *)
  let endpoints = Array.make (2 * count) 0 in
  let ecount = ref 0 and ne = ref 0 in
  let add_edge u v =
    eu.(!ecount) <- u;
    ev.(!ecount) <- v;
    incr ecount;
    endpoints.(!ne) <- u;
    endpoints.(!ne + 1) <- v;
    ne := !ne + 2
  in
  for u = 0 to seed_size - 1 do
    for v = u + 1 to seed_size - 1 do
      add_edge u v
    done
  done;
  let chosen = Array.make attach (-1) in
  for u = seed_size to n - 1 do
    let picked = ref 0 in
    while !picked < attach do
      let v = endpoints.(Rng.int rng !ne) in
      let dup = ref (v = u) in
      for i = 0 to !picked - 1 do
        if chosen.(i) = v then dup := true
      done;
      if not !dup then begin
        chosen.(!picked) <- v;
        incr picked
      end
    done;
    for i = 0 to attach - 1 do
      add_edge u chosen.(i)
    done
  done;
  assert (!ecount = count);
  of_undirected_arrays ~n eu ev el ~count

let watts_strogatz rng ~n ~k ~beta =
  if k < 1 || n <= 2 * k then invalid_arg "Csr.watts_strogatz: need n > 2k >= 2";
  if not (beta >= 0.0 && beta <= 1.0) then invalid_arg "Csr.watts_strogatz: beta out of [0,1]";
  check_n n;
  (* Same rewiring process as [Gen.watts_strogatz], with edges dedup'd
     in a hash table keyed by the packed int [u * n + v], u < v. *)
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  let have = Hashtbl.create (n * k) in
  for u = 0 to n - 1 do
    for j = 1 to k do
      Hashtbl.replace have (key u ((u + j) mod n)) ()
    done
  done;
  for u = 0 to n - 1 do
    for j = 1 to k do
      if Rng.bernoulli rng beta then begin
        let v = (u + j) mod n in
        let rec rewire tries =
          if tries > 0 then begin
            let w = Rng.int rng n in
            if w <> u && w <> v && not (Hashtbl.mem have (key u w)) then begin
              Hashtbl.remove have (key u v);
              Hashtbl.replace have (key u w) ()
            end
            else rewire (tries - 1)
          end
        in
        if Hashtbl.mem have (key u v) then rewire 32
      end
    done
  done;
  let count = Hashtbl.length have in
  let eu = Array.make count 0 and ev = Array.make count 0 in
  let el = Array.make count 1 in
  let i = ref 0 in
  Hashtbl.iter
    (fun packed () ->
      eu.(!i) <- packed / n;
      ev.(!i) <- packed mod n;
      incr i)
    have;
  of_undirected_arrays ~n eu ev el ~count

let copy_i32 a =
  let b = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (I32.length a) in
  Bigarray.Array1.blit a b;
  b

let with_latencies rng spec t =
  let col = copy_i32 t.col and lat = copy_i32 t.lat in
  let result = { n = t.n; row_ptr = copy_i32 t.row_ptr; col; lat } in
  for u = 0 to t.n - 1 do
    for i = I32.get t.row_ptr u to I32.get t.row_ptr (u + 1) - 1 do
      let v = I32.get t.col i in
      if u < v then begin
        let l = Gen.draw_latency rng spec in
        check_lat l;
        I32.set lat i l;
        (* Mirror into the (v, u) entry, found by binary search. *)
        let rec go lo hi =
          if lo > hi then invalid_arg "Csr.with_latencies: asymmetric adjacency"
          else begin
            let mid = (lo + hi) / 2 in
            if I32.get col mid = u then I32.set lat mid l
            else if I32.get col mid < u then go (mid + 1) hi
            else go lo (mid - 1)
          end
        in
        go (I32.get t.row_ptr v) (I32.get t.row_ptr (v + 1) - 1)
      end
    done
  done;
  result

let pp ppf t =
  Format.fprintf ppf "csr(n=%d, m=%d, Δ=%d, ℓmax=%d)" t.n (m t) (max_degree t) (max_latency t)

(* ------------------------------------------------------------------ *)
(* Oriented (directed) contact structures *)

type oriented = {
  o_n : int;
  o_row_ptr : I32.t;
  o_col : I32.t;
  o_lat : I32.t;
}

let oriented_of_csr t = { o_n = t.n; o_row_ptr = t.row_ptr; o_col = t.col; o_lat = t.lat }

let oriented_n o = o.o_n

let oriented_out_degree o u = I32.get o.o_row_ptr (u + 1) - I32.get o.o_row_ptr u

let oriented_max_out_degree o =
  let best = ref 0 in
  for u = 0 to o.o_n - 1 do
    let d = oriented_out_degree o u in
    if d > !best then best := d
  done;
  !best

let oriented_edge_count o = I32.length o.o_col

let oriented_max_latency o =
  let best = ref 1 in
  for i = 0 to I32.length o.o_lat - 1 do
    let l = I32.get o.o_lat i in
    if l > !best then best := l
  done;
  !best

let oriented_iter_out o u f =
  if u < 0 || u >= o.o_n then invalid_arg "Csr.oriented_iter_out: node out of range";
  for i = I32.get o.o_row_ptr u to I32.get o.o_row_ptr (u + 1) - 1 do
    f (I32.get o.o_col i) (I32.get o.o_lat i)
  done

(* Keep only the out-edges of latency <= ell, preserving each row's
   edge order (RR Broadcast's cursor discipline depends on it). *)
let oriented_filter_le o ell =
  let n = o.o_n in
  let row_ptr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let kept = ref 0 in
    for i = I32.get o.o_row_ptr u to I32.get o.o_row_ptr (u + 1) - 1 do
      if I32.get o.o_lat i <= ell then incr kept
    done;
    row_ptr.(u + 1) <- row_ptr.(u) + !kept
  done;
  let len = row_ptr.(n) in
  let row_ptr = pack_row_ptr row_ptr in
  let col = I32.make len 0 and lat = I32.make len 0 in
  let p = ref 0 in
  for u = 0 to n - 1 do
    for i = I32.get o.o_row_ptr u to I32.get o.o_row_ptr (u + 1) - 1 do
      if I32.get o.o_lat i <= ell then begin
        I32.set col !p (I32.get o.o_col i);
        I32.set lat !p (I32.get o.o_lat i);
        incr p
      end
    done
  done;
  { o_n = n; o_row_ptr = row_ptr; o_col = col; o_lat = lat }

let of_oriented_spanner ?out_degree_bound out_edges =
  let n = Array.length out_edges in
  check_n n;
  let row_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let d = Array.length out_edges.(v) in
    (match out_degree_bound with
    | Some b when d > b ->
        invalid_arg
          (Printf.sprintf
             "Csr.of_oriented_spanner: out-degree %d of node %d exceeds the declared \
              Lemma 15 bound %d"
             d v b)
    | _ -> ());
    row_ptr.(v + 1) <- row_ptr.(v) + d
  done;
  let len = row_ptr.(n) in
  let row_ptr = pack_row_ptr row_ptr in
  let col = I32.make len 0 and lat = I32.make len 0 in
  for v = 0 to n - 1 do
    let base = I32.get row_ptr v in
    Array.iteri
      (fun i (peer, l) ->
        (* int32-range violations raise the typed error before the
           graph-shape checks see the value; negatives keep the
           existing [Invalid_argument] diagnostics below. *)
        if peer > I32.max_value then raise (I32.Overflow { what = "node id"; value = peer });
        if l > I32.max_value then raise (I32.Overflow { what = "latency"; value = l });
        if peer < 0 || peer >= n || peer = v then
          invalid_arg "Csr.of_oriented_spanner: out-edge peer out of range";
        if l < 1 then invalid_arg "Csr.of_oriented_spanner: latency must be >= 1";
        I32.set col (base + i) peer;
        I32.set lat (base + i) l)
      out_edges.(v)
  done;
  { o_n = n; o_row_ptr = row_ptr; o_col = col; o_lat = lat }
