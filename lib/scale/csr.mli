(** Compressed-sparse-row graphs for million-node simulations.

    {!Gossip_graph.Graph} stores one boxed [(neighbor, latency)] pair
    per directed edge — convenient for the paper's gadget graphs,
    hopeless at 10^6 nodes where pointer chasing dominates.  [Csr.t]
    packs the same undirected latency-weighted graph into three flat
    integer arrays (the classical CSR layout), so a neighbor scan is a
    contiguous walk and the whole structure costs 2 machine words per
    directed edge.

    The representation is exposed (read-only by convention) so hot
    loops — {!Wheel_engine} in particular — can index the arrays
    directly.  Invariants, checked by [of_graph] and the generators:

    - [Array.length row_ptr = n + 1], [row_ptr.(0) = 0], non-decreasing;
    - the directed entries of node [u] live at indices
      [row_ptr.(u) .. row_ptr.(u+1) - 1] of [col] / [lat];
    - each row is sorted by ascending neighbor id (same order as
      [Graph.neighbors]), with no self-loops or duplicates;
    - latencies are [>= 1] and symmetric: the entry [(u, v)] and its
      mirror [(v, u)] carry the same latency. *)

type t = private {
  n : int;  (** node count *)
  row_ptr : int array;  (** length [n + 1]; row boundaries *)
  col : int array;  (** neighbor ids, one entry per directed edge *)
  lat : int array;  (** latencies, parallel to [col] *)
}

(** {1 Accessors} *)

val n : t -> int

(** [m t] is the number of undirected edges. *)
val m : t -> int

val degree : t -> int -> int

(** [max_degree t] is [Δ]; 0 on an edgeless graph. *)
val max_degree : t -> int

(** [max_latency t] is [ℓ_max]; 1 on an edgeless graph (matching
    [Graph.max_latency]). *)
val max_latency : t -> int

(** [latency t u v] is the latency of edge [(u, v)], when present
    (binary search over the sorted row of [u]). *)
val latency : t -> int -> int -> int option

(** [iter_neighbors t u f] applies [f v latency] over the row of [u]
    in ascending neighbor order. *)
val iter_neighbors : t -> int -> (int -> int -> unit) -> unit

(** [is_connected t] tests connectivity with an array-based BFS
    (vacuously true for [n <= 1]). *)
val is_connected : t -> bool

(** [equal a b] is structural equality of the packed arrays. *)
val equal : t -> t -> bool

(** [memory_words t] is the approximate heap footprint in machine
    words — the honest denominator for rounds/sec comparisons. *)
val memory_words : t -> int

(** {1 Conversions} *)

(** [of_graph g] packs a {!Gossip_graph.Graph.t}; rows inherit the
    graph's ascending-neighbor order, so protocols that index neighbors
    by position behave identically on either representation. *)
val of_graph : Gossip_graph.Graph.t -> t

(** [to_graph t] unpacks into the boxed representation (validating via
    [Graph.of_edges]); intended for tests and for reusing the analysis
    code (conductance, diameters) on CSR-built graphs. *)
val to_graph : t -> Gossip_graph.Graph.t

(** {1 Direct generators}

    These rebuild the three large-graph families of {!Gossip_graph.Gen}
    straight into CSR form: degrees are counted (or bounded) first,
    [row_ptr] is a prefix sum, and edges are scattered into place — no
    intermediate OCaml lists of tuples, which at 10^6 nodes would cost
    more than the final structure. *)

(** [ring_of_cliques ~cliques ~size ~bridge_latency] is byte-for-byte
    the graph of [Gen.ring_of_cliques] (same ids, same orientation of
    the bridges), packed directly.  Requires [cliques >= 3],
    [size >= 1], [bridge_latency >= 1]. *)
val ring_of_cliques : cliques:int -> size:int -> bridge_latency:int -> t

(** [barabasi_albert rng ~n ~attach] grows a preferential-attachment
    graph (unit latencies) with the repeated-endpoints method of
    [Gen.barabasi_albert], accumulating edges into flat growable
    arrays.  The sample differs from [Gen]'s for the same seed (the
    two consume randomness in different orders) but follows the same
    distribution.  Requires [n > attach >= 1]. *)
val barabasi_albert : Gossip_util.Rng.t -> n:int -> attach:int -> t

(** [watts_strogatz rng ~n ~k ~beta] is the small-world model (unit
    latencies), dedup'd through an int-keyed hash table rather than an
    edge list.  Same caveats as [Gen.watts_strogatz]: the result is
    simple but may rarely be disconnected.  Requires [n > 2k >= 2] and
    [beta] in [\[0,1\]]. *)
val watts_strogatz : Gossip_util.Rng.t -> n:int -> k:int -> beta:float -> t

(** [with_latencies rng spec t] redraws every undirected edge latency
    from [spec], keeping the two directed mirrors equal.  Edges are
    visited in ascending [(u, v)] order. *)
val with_latencies : Gossip_util.Rng.t -> Gossip_graph.Gen.latency_spec -> t -> t

val pp : Format.formatter -> t -> unit
