(** Compressed-sparse-row graphs for million-node simulations.

    {!Gossip_graph.Graph} stores one boxed [(neighbor, latency)] pair
    per directed edge — convenient for the paper's gadget graphs,
    hopeless at 10^6 nodes where pointer chasing dominates.  [Csr.t]
    packs the same undirected latency-weighted graph into three flat
    {b int32} arrays (the classical CSR layout backed by
    {!I32.t} Bigarrays), so a neighbor scan is a contiguous walk and
    the whole structure costs 4 bytes per directed-edge entry — half
    the boxed-int [int array] layout it replaced, and off the OCaml
    heap, so the GC never scans it.

    {b int32 range contract.}  Node ids, latencies, and [row_ptr]
    entries must fit an int32.  Every constructor enforces this with
    the typed {!I32.Overflow} — a node count above [2^31 - 1], a
    latency above [Int32.max_int], or a directed-edge total whose
    prefix sum overflows the cell raises instead of silently wrapping.
    At 4 bytes per entry, an int32-breaking graph would cost > 16 GiB
    for [col]/[lat] alone, so the contract costs nothing real.

    The representation is exposed (read-only by convention) so hot
    loops — {!Wheel_engine} in particular — can index the arrays
    directly through {!I32.get}/{!I32.unsafe_get}.  Invariants,
    checked by [of_graph] and the generators:

    - [I32.length row_ptr = n + 1], [row_ptr.(0) = 0], non-decreasing;
    - the directed entries of node [u] live at indices
      [row_ptr.(u) .. row_ptr.(u+1) - 1] of [col] / [lat];
    - each row is sorted by ascending neighbor id (same order as
      [Graph.neighbors]), with no self-loops or duplicates;
    - latencies are [>= 1] and symmetric: the entry [(u, v)] and its
      mirror [(v, u)] carry the same latency. *)

type t = private {
  n : int;  (** node count *)
  row_ptr : I32.t;  (** length [n + 1]; row boundaries *)
  col : I32.t;  (** neighbor ids, one entry per directed edge *)
  lat : I32.t;  (** latencies, parallel to [col] *)
}

(** {1 Accessors} *)

val n : t -> int

(** [m t] is the number of undirected edges. *)
val m : t -> int

val degree : t -> int -> int

(** [max_degree t] is [Δ]; 0 on an edgeless graph. *)
val max_degree : t -> int

(** [max_latency t] is [ℓ_max]; 1 on an edgeless graph (matching
    [Graph.max_latency]). *)
val max_latency : t -> int

(** [latency t u v] is the latency of edge [(u, v)], when present
    (binary search over the sorted row of [u]). *)
val latency : t -> int -> int -> int option

(** [iter_neighbors t u f] applies [f v latency] over the row of [u]
    in ascending neighbor order. *)
val iter_neighbors : t -> int -> (int -> int -> unit) -> unit

(** [is_connected t] tests connectivity with an array-based BFS
    (vacuously true for [n <= 1]). *)
val is_connected : t -> bool

(** [equal a b] is structural equality of the packed arrays. *)
val equal : t -> t -> bool

(** [memory_words t] is the approximate heap footprint in machine
    words of the int32 layout — the honest denominator for rounds/sec
    and bytes-per-edge comparisons. *)
val memory_words : t -> int

(** [boxed_memory_words t] is what the same structure cost in the
    pre-int32 boxed layout (three [int array]s at one machine word per
    element): the baseline bench e18's bytes-per-edge reduction is
    measured against. *)
val boxed_memory_words : t -> int

(** {1 Conversions} *)

(** [of_graph g] packs a {!Gossip_graph.Graph.t}; rows inherit the
    graph's ascending-neighbor order, so protocols that index neighbors
    by position behave identically on either representation.
    @raise I32.Overflow on an out-of-int32-range node count or latency. *)
val of_graph : Gossip_graph.Graph.t -> t

(** [to_graph t] unpacks into the boxed representation (validating via
    [Graph.of_edges]); intended for tests and for reusing the analysis
    code (conductance, diameters) on CSR-built graphs. *)
val to_graph : t -> Gossip_graph.Graph.t

(** [of_undirected_arrays ~n eu ev el ~count] packs the first [count]
    undirected edges [(eu.(i), ev.(i))] with latency [el.(i)] into CSR
    (both directions scattered, rows sorted ascending by neighbor).
    Latencies and the node count are int32-range-checked
    ({!I32.Overflow}); beyond that, no validation — callers must
    supply in-range distinct endpoints with no duplicate edges.  This
    is how the unknown-latency drivers rebuild a graph from a
    discovered latency profile without round-tripping through boxed
    edge lists. *)
val of_undirected_arrays : n:int -> int array -> int array -> int array -> count:int -> t

(** {1 Direct generators}

    These rebuild the three large-graph families of {!Gossip_graph.Gen}
    straight into CSR form: degrees are counted (or bounded) first,
    [row_ptr] is a prefix sum, and edges are scattered into place — no
    intermediate OCaml lists of tuples, which at 10^6 nodes would cost
    more than the final structure.  All raise {!I32.Overflow} when the
    node count, a latency, or the directed-edge total exceeds the
    int32 range. *)

(** [ring_of_cliques ~cliques ~size ~bridge_latency] is byte-for-byte
    the graph of [Gen.ring_of_cliques] (same ids, same orientation of
    the bridges), packed directly.  Requires [cliques >= 3],
    [size >= 1], [bridge_latency >= 1]. *)
val ring_of_cliques : cliques:int -> size:int -> bridge_latency:int -> t

(** [braided_ring ~cliques ~size ~bridges ~bridge_latency] is a ring
    of [cliques] unit-latency cliques of [size] nodes where adjacent
    cliques are joined by [bridges] parallel matching edges: bridge
    [j] connects node [j] of each clique to node [j] of the next.
    Bridge 0 — the {e backbone} — has latency [bridge_latency - 1];
    bridges [1 .. bridges-1] have latency [bridge_latency].  The split
    makes the family the natural dynamic-scenario testbed: a drift
    schedule filtered to [lat >= bridge_latency] erodes the braid's
    fast cut capacity (raising [ℓ*/φ*]) while the backbone — and with
    it the latency-[<= bridge_latency - 1] contact subgraph a
    conductance-independent [Dtg_local] baseline walks — is untouched.
    Requires [cliques >= 3], [size >= 1], [1 <= bridges <= size],
    [bridge_latency >= 2]. *)
val braided_ring : cliques:int -> size:int -> bridges:int -> bridge_latency:int -> t

(** [barabasi_albert rng ~n ~attach] grows a preferential-attachment
    graph (unit latencies) with the repeated-endpoints method of
    [Gen.barabasi_albert], accumulating edges into flat growable
    arrays.  The sample differs from [Gen]'s for the same seed (the
    two consume randomness in different orders) but follows the same
    distribution.  Requires [n > attach >= 1]. *)
val barabasi_albert : Gossip_util.Rng.t -> n:int -> attach:int -> t

(** [watts_strogatz rng ~n ~k ~beta] is the small-world model (unit
    latencies), dedup'd through an int-keyed hash table rather than an
    edge list.  Same caveats as [Gen.watts_strogatz]: the result is
    simple but may rarely be disconnected.  Requires [n > 2k >= 2] and
    [beta] in [\[0,1\]]. *)
val watts_strogatz : Gossip_util.Rng.t -> n:int -> k:int -> beta:float -> t

(** [with_latencies rng spec t] redraws every undirected edge latency
    from [spec], keeping the two directed mirrors equal.  Edges are
    visited in ascending [(u, v)] order.
    @raise I32.Overflow when a drawn latency exceeds the int32 range. *)
val with_latencies : Gossip_util.Rng.t -> Gossip_graph.Gen.latency_spec -> t -> t

val pp : Format.formatter -> t -> unit

(** {1 Oriented contact structures}

    A protocol kernel ({!Kernel}) initiates exchanges over a {e
    directed} per-node edge list: the classic protocols contact over
    the symmetric CSR rows, RR Broadcast over a Baswana–Sen
    orientation, DTG over the latency-[<= ℓ] subrows.  [oriented]
    packs such a directed structure into the same flat int32 layout as
    {!t}, with one crucial difference: {b rows are in construction
    order, not sorted} — round-robin kernels step a cursor through a
    row, so the order itself is part of the protocol. *)

type oriented = {
  o_n : int;  (** node count *)
  o_row_ptr : I32.t;  (** length [n + 1]; row boundaries *)
  o_col : I32.t;  (** out-neighbor ids, construction order *)
  o_lat : I32.t;  (** latencies, parallel to [o_col] *)
}

(** [oriented_of_csr t] views the symmetric CSR as a directed contact
    structure (every undirected edge in both rows); shares [t]'s
    arrays, costs O(1). *)
val oriented_of_csr : t -> oriented

val oriented_n : oriented -> int
val oriented_out_degree : oriented -> int -> int

(** [oriented_max_out_degree o] is [Δ_out]; 0 on an edgeless
    structure. *)
val oriented_max_out_degree : oriented -> int

(** [oriented_edge_count o] counts directed out-edges. *)
val oriented_edge_count : oriented -> int

(** [oriented_max_latency o] is the largest out-edge latency; 1 on an
    edgeless structure (matching [max_latency]). *)
val oriented_max_latency : oriented -> int

(** [oriented_iter_out o u f] applies [f peer latency] over the row of
    [u] in row order. *)
val oriented_iter_out : oriented -> int -> (int -> int -> unit) -> unit

(** [oriented_filter_le o ell] keeps only out-edges of latency
    [<= ell], preserving each row's edge order. *)
val oriented_filter_le : oriented -> int -> oriented

(** [of_oriented_spanner ?out_degree_bound out_edges] packs
    {!Gossip_core.Spanner}'s orientation ([out_edges.(v)] = the
    [(peer, latency)] edges added by [v]) into flat arrays,
    edge-for-edge in the source order.  When [out_degree_bound] is
    given, any row longer than the bound raises [Invalid_argument] —
    the Lemma 15 precondition RR Broadcast's round bound rests on is
    asserted at construction rather than silently violated at run
    time.  Also validates peer ids and latencies [>= 1], and raises
    the typed {!I32.Overflow} when a peer id or latency exceeds the
    int32 range (never a wrapped value). *)
val of_oriented_spanner : ?out_degree_bound:int -> (int * int) array array -> oriented
