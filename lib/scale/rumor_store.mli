(** Kernel-owned per-node completion state for the wheel engine.

    A store is one byte per node ("has this node completed the run's
    dissemination goal?") plus a count of set bytes, owned by the
    {!Kernel.t} that built it.  The engine never interprets rumors: it
    seeds the store ([?informed] bytes and the broadcast source), asks
    {!count} for termination, marks nodes when a kernel hook says so,
    and forgets nodes on churn rejoin.  What completion {e means} is
    the kernel's business, wired in through two hooks:

    - [on_seed v] — the engine wants [v] seeded as an initial rumor
      holder.  Returns whether [v] is thereby {e completed}.  The
      default ([fun _ -> true]) is the classic single-rumor semantics:
      seeding is informing.  Multi-rumor kernels seed their own rumor
      state at construction and return [count v = k]-style predicates
      here instead.
    - [on_forget v] — [v] rejoined after churn with amnesia; the
      kernel must reset [v]'s private rumor state (a returning node
      keeps at most its own rumor).  Called before the completed byte
      is cleared.

    Both hooks touch only node [v]'s state, so every store operation
    is safe under the engine's owner-only sharding discipline. *)

type t

(** [create ?on_seed ?on_forget n] is an empty store over [n] nodes.
    @raise Invalid_argument when [n < 1]. *)
val create : ?on_seed:(int -> bool) -> ?on_forget:(int -> unit) -> int -> t

val capacity : t -> int

(** The completed byte array itself (one byte per node, nonzero =
    completed) — shared, not copied: the engine's result exposes it and
    the sharded runtime writes its own nodes' bytes directly. *)
val bytes : t -> Bytes.t

val completed : t -> int -> bool

(** [count t] is the number of completed nodes — maintained
    incrementally by {!mark}/{!seed}/{!forget} on the sequential path;
    the sharded engine installs the merged total via {!set_count}. *)
val count : t -> int

val set_count : t -> int -> unit

(** [mark t v] marks [v] completed; idempotent. *)
val mark : t -> int -> unit

(** [seed t v] offers [v] its initial rumor: runs [on_seed] and marks
    [v] iff the hook reports completion. *)
val seed : t -> int -> unit

(** [forget t v] is churn amnesia: runs [on_forget], then clears [v]'s
    completed byte (idempotent). *)
val forget : t -> int -> unit

(** [forget_state t v] runs only the [on_forget] hook — the sharded
    engine's half of {!forget}, which manages the completed byte and
    per-shard count itself. *)
val forget_state : t -> int -> unit
