(** Flat int32 storage for the scale runtime's hot state.

    {!Csr.t}, the wheel engine's exchange pool, and the sharded
    mailboxes all store node ids, latencies, and row offsets in int32
    {!Bigarray.Array1} cells: 4 bytes per element instead of a full
    machine word, off the OCaml heap so the GC never scans it.  The
    price is a range contract — every value must fit an int32 — and
    the contract is enforced at the edges: constructors raise the
    typed {!Overflow} instead of silently wrapping a too-large value
    through [Int32.of_int].

    Accessors convert at the boundary.  [Int32.to_int] composed
    directly over the Bigarray read compiles without materializing a
    boxed [int32] in native code, so a round loop indexing through
    {!get}/{!unsafe_get} allocates nothing (the
    [wheel.minor_words_per_round] budget asserted by the tests and
    bench e18 is the watchdog). *)

type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Raised by every constructor that packs caller ints into int32
    cells when a value falls outside [\[0, Int32.max_int\]].  [what]
    names the offending quantity (["node count"], ["latency"],
    ["row_ptr entry"], ...). *)
exception Overflow of { what : string; value : int }

(** [Int32.max_int] as an [int]: the largest value a cell holds. *)
val max_value : int

(** [check what v] raises {!Overflow} unless [0 <= v <= max_value]. *)
val check : string -> int -> unit

(** [make len v] is a fresh array of [len] cells, all [v] (unchecked —
    pass a small sentinel like [0] or [-1]... which must itself fit;
    negative sentinels are the caller's own convention and wrap to the
    same negative value on read). *)
val make : int -> int -> t

val length : t -> int

(** Bounds-checked read, as an [int]. *)
val get : t -> int -> int

(** Bounds-checked write; {b wraps} silently — callers validate with
    {!check} (or a constructor already did). *)
val set : t -> int -> int -> unit

val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
val fill : t -> int -> unit

(** [blit ~src ~dst len] copies the first [len] cells. *)
val blit : src:t -> dst:t -> int -> unit

(** [of_int_array ~what a] packs, {!check}ing every element.
    @raise Overflow naming [what] on the first out-of-range value. *)
val of_int_array : what:string -> int array -> t

val to_int_array : t -> int array

(** Structural equality (Bigarray custom compare). *)
val equal : t -> t -> bool

(** Payload bytes ([4 * length]); headers excluded. *)
val memory_bytes : t -> int
