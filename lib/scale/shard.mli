(** Infrastructure for domain-sharded engine runs: a balanced
    contiguous node partition, growable flat-int mailboxes, and a
    reusable phase barrier with a serial merge hook.

    The module is deliberately engine-agnostic — it knows nothing about
    protocols or wheels — so the determinism argument of the sharded
    {!Wheel_engine} rests on three small, separately testable pieces:

    - {!bounds}/{!owner} define one fixed partition of [0..n-1] into
      [k] contiguous ranges, so "which shard owns node [v]" is a pure
      function of [(n, k, v)];
    - {!Buf} mailboxes are written by exactly one shard per phase and
      drained in fixed [(src, dst)] order after a barrier, so the
      receiver sees a deterministic sequence regardless of domain
      scheduling;
    - {!Barrier} separates the writing phase from the reading phase
      (its mutex gives the happens-before edge) and lets the last
      arriver run a serial action — the per-round merge — while every
      other domain is parked. *)

(** [bounds ~n ~k] is the [k+1] partition boundaries: shard [i] owns
    nodes [bounds.(i) .. bounds.(i+1) - 1].  Ranges are contiguous,
    cover [0..n-1], and differ in size by at most one.
    @raise Invalid_argument unless [0 < k <= n]. *)
val bounds : n:int -> k:int -> int array

(** [owner ~n ~k v] is the index of the shard owning node [v] under
    {!bounds} — computed in O(1), no search. *)
val owner : n:int -> k:int -> int -> int

(** Growable flat int buffer: the per-[(src_shard, dst_shard)] mailbox
    for cross-shard records.  Not thread-safe by itself — safety comes
    from the protocol: one writer per phase, drained after a barrier. *)
module Buf : sig
  type t

  val create : unit -> t

  (** Number of ints currently stored. *)
  val length : t -> int

  val get : t -> int -> int

  val clear : t -> unit

  (** [reserve b k] grows the buffer by [k] slots and returns the base
      index of the reserved run; fill it with {!set}. *)
  val reserve : t -> int -> int

  val set : t -> int -> int -> unit
end

(** Cyclic sense-reversing barrier over [Mutex]/[Condition]. *)
module Barrier : sig
  type t

  (** [create parties] for a fixed number of participating domains. *)
  val create : int -> t

  (** [await ?serial t] blocks until all parties have arrived.  The
      last arriver runs [serial] (under the barrier lock, before any
      party is released), so [serial] reads every shard's phase output
      exclusively.  All parties of one phase must pass the same
      [serial]. *)
  val await : ?serial:(unit -> unit) -> t -> unit
end
