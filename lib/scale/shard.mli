(** Infrastructure for domain-sharded engine runs: a balanced
    contiguous node partition, growable flat-int32 mailboxes, and a
    reusable phase barrier with a serial merge hook.

    The module is deliberately engine-agnostic — it knows nothing about
    protocols or wheels — so the determinism argument of the sharded
    {!Wheel_engine} rests on three small, separately testable pieces:

    - {!bounds}/{!owner} define one fixed partition of [0..n-1] into
      [k] contiguous ranges, so "which shard owns node [v]" is a pure
      function of [(n, k, v)];
    - {!Buf} mailboxes are written by exactly one shard per phase and
      drained in fixed [(src, dst)] order after a barrier, so the
      receiver sees a deterministic sequence regardless of domain
      scheduling;
    - {!Barrier} separates the writing phase from the reading phase
      (its mutex gives the happens-before edge) and lets the last
      arriver run a serial action — the per-round merge — while every
      other domain is parked. *)

(** [bounds ~n ~k] is the [k+1] partition boundaries: shard [i] owns
    nodes [bounds.(i) .. bounds.(i+1) - 1].  Ranges are contiguous,
    cover [0..n-1], and differ in size by at most one.
    @raise Invalid_argument unless [0 < k <= n]. *)
val bounds : n:int -> k:int -> int array

(** [owner ~n ~k v] is the index of the shard owning node [v] under
    {!bounds} — computed in O(1), no search. *)
val owner : n:int -> k:int -> int -> int

(** Raised by {!Buf.reserve} when a reservation would exceed the
    buffer's growth ceiling (or overflow the length arithmetic
    itself) — a typed failure instead of the unguarded doubling loop
    that used to wrap negative and spin. *)
exception Buf_overflow of { need : int; limit : int }

(** Growable flat int32 buffer: the per-[(src_shard, dst_shard)]
    mailbox columns for cross-shard records (the engine keeps one
    [Buf] per record field — a structure of arrays — so each cell is
    4 bytes instead of a boxed word).  Values must respect the int32
    range contract of {!I32}; the engine's are covered by the {!Csr}
    constructor checks plus its round-bound guard.  Not thread-safe by
    itself — safety comes from the protocol: one writer per phase,
    drained after a barrier. *)
module Buf : sig
  type t

  (** Hard growth ceiling:
      [min Sys.max_array_length I32.max_value]. *)
  val max_capacity : int

  val create : unit -> t

  (** Number of cells currently stored. *)
  val length : t -> int

  val get : t -> int -> int

  val clear : t -> unit

  (** [reserve b k] grows the buffer by [k] cells and returns the base
      index of the reserved run; fill it with {!set}.  The capacity
      doubles as needed, clamped to {!max_capacity}.
      @raise Buf_overflow when the needed length exceeds
        {!max_capacity} (or overflows [int]).
      @raise Invalid_argument on a negative [k]. *)
  val reserve : t -> int -> int

  val set : t -> int -> int -> unit

  (** [push b v] appends one cell ([reserve b 1] + write).
      @raise Buf_overflow as {!reserve}. *)
  val push : t -> int -> unit

  (** Unchecked variants for drain/fill loops whose indices are in
      bounds by construction. *)
  val unsafe_get : t -> int -> int

  val unsafe_set : t -> int -> int -> unit
end

(** Cyclic sense-reversing barrier over [Mutex]/[Condition]. *)
module Barrier : sig
  type t

  (** [create parties] for a fixed number of participating domains. *)
  val create : int -> t

  (** [await t] blocks until all parties have arrived. *)
  val await : t -> unit

  (** [await_serial t serial] additionally has the last arriver run
      [serial] (under the barrier lock, before any party is released),
      so [serial] reads every shard's phase output exclusively.  All
      parties of one phase must pass the same [serial].  [serial] is a
      plain argument — an optional one would box in [Some] on every
      round of every shard. *)
  val await_serial : t -> (unit -> unit) -> unit
end
