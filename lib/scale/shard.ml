let bounds ~n ~k =
  if k <= 0 || k > n then invalid_arg "Shard.bounds: need 0 < k <= n";
  Array.init (k + 1) (fun i -> ((i * n) + k - 1) / k)

let owner ~n ~k v = v * k / n

exception Buf_overflow of { need : int; limit : int }

let () =
  Printexc.register_printer (function
    | Buf_overflow { need; limit } ->
        Some
          (Printf.sprintf
             "Gossip_scale.Shard.Buf_overflow: mailbox reservation of %d cells exceeds \
              the growth ceiling %d"
             need limit)
    | _ -> None)

module Buf = struct
  type t = { mutable data : I32.t; mutable len : int }

  (* Cells are int32 (the cross-shard records carry node ids, rounds,
     and payload bits, all covered by the CSR range contract), and the
     capacity is capped so the doubling loop can neither overflow to a
     negative request nor ask Bigarray for a bogus size. *)
  let max_capacity = min Sys.max_array_length I32.max_value

  let create () = { data = I32.make 64 0; len = 0 }

  let length b = b.len

  let get b i =
    if i < 0 || i >= b.len then invalid_arg "Shard.Buf.get: index out of bounds";
    I32.unsafe_get b.data i

  let clear b = b.len <- 0

  let reserve b k =
    if k < 0 then invalid_arg "Shard.Buf.reserve: negative reservation";
    let need = b.len + k in
    (* [need < 0] is [len + k] overflowing max_int itself. *)
    if need < 0 || need > max_capacity then
      raise (Buf_overflow { need; limit = max_capacity });
    if need > I32.length b.data then begin
      let cap = ref (I32.length b.data) in
      while !cap < need do
        (* cap <= max_capacity < 2^62, so the doubling cannot wrap. *)
        cap := min (2 * !cap) max_capacity
      done;
      let data = I32.make !cap 0 in
      I32.blit ~src:b.data ~dst:data b.len;
      b.data <- data
    end;
    let base = b.len in
    b.len <- need;
    base

  let set b i v =
    if i < 0 || i >= b.len then invalid_arg "Shard.Buf.set: index out of bounds";
    I32.unsafe_set b.data i v

  let push b v =
    let i = reserve b 1 in
    I32.unsafe_set b.data i v

  (* Unchecked accessors for the engine's drain/fill loops, whose
     indices come from [reserve]/[length] and are in bounds by
     construction. *)
  let unsafe_get b i = I32.unsafe_get b.data i

  let unsafe_set b i v = I32.unsafe_set b.data i v
end

module Barrier = struct
  type t = {
    mu : Mutex.t;
    cv : Condition.t;
    parties : int;
    mutable arrived : int;
    mutable epoch : int;
  }

  let create parties =
    if parties <= 0 then invalid_arg "Shard.Barrier.create: parties must be > 0";
    { mu = Mutex.create (); cv = Condition.create (); parties; arrived = 0; epoch = 0 }

  (* [serial] is a plain (not optional) argument: wrapping it in
     [Some] at every call would put two words of allocation in each
     shard's round loop. *)
  let await_serial t serial =
    Mutex.lock t.mu;
    let epoch = t.epoch in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      (* Last arriver: every other domain is parked on [cv], so the
         serial action owns all shard state exclusively. *)
      serial ();
      t.arrived <- 0;
      t.epoch <- epoch + 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu
    end
    else begin
      while t.epoch = epoch do
        Condition.wait t.cv t.mu
      done;
      Mutex.unlock t.mu
    end

  let await t = await_serial t ignore
end
