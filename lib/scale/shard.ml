let bounds ~n ~k =
  if k <= 0 || k > n then invalid_arg "Shard.bounds: need 0 < k <= n";
  Array.init (k + 1) (fun i -> ((i * n) + k - 1) / k)

let owner ~n ~k v = v * k / n

module Buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 64 0; len = 0 }

  let length b = b.len

  let get b i = b.data.(i)

  let clear b = b.len <- 0

  let reserve b k =
    let need = b.len + k in
    if need > Array.length b.data then begin
      let cap = ref (2 * Array.length b.data) in
      while !cap < need do cap := 2 * !cap done;
      let data = Array.make !cap 0 in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    let base = b.len in
    b.len <- need;
    base

  let set b i v = b.data.(i) <- v
end

module Barrier = struct
  type t = {
    mu : Mutex.t;
    cv : Condition.t;
    parties : int;
    mutable arrived : int;
    mutable epoch : int;
  }

  let create parties =
    if parties <= 0 then invalid_arg "Shard.Barrier.create: parties must be > 0";
    { mu = Mutex.create (); cv = Condition.create (); parties; arrived = 0; epoch = 0 }

  let await ?(serial = fun () -> ()) t =
    Mutex.lock t.mu;
    let epoch = t.epoch in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      (* Last arriver: every other domain is parked on [cv], so the
         serial action owns all shard state exclusively. *)
      serial ();
      t.arrived <- 0;
      t.epoch <- epoch + 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu
    end
    else begin
      while t.epoch = epoch do
        Condition.wait t.cv t.mu
      done;
      Mutex.unlock t.mu
    end
end
