(* The kernel-owned rumor store: completion state for the wheel engine.

   Before the rumor-state layer, [Wheel_engine] owned a single informed
   byte array and hard-coded "completion = everyone informed of the one
   rumor".  Multi-rumor kernels (k-rumor subsets, GF(2) rank tracking)
   need their own notion of per-node completion, so the store inverts
   the ownership: the kernel builds the store (optionally wiring in
   seeding/amnesia hooks over its private rumor state), and the engine
   consumes only the completion predicate — one byte per node, exactly
   the layout the informed array had, which is what keeps single-rumor
   runs bit-identical through the refactor.

   The byte array is also the shard-parity contract: under domain
   sharding each shard touches only its own nodes' bytes (idempotent
   monotone marks), and the per-shard completed counts are summed at
   the round barrier — the same discipline the informed bytes had. *)

type t = {
  n : int;
  completed : Bytes.t;
  mutable count : int;
  on_seed : int -> bool;
  on_forget : int -> unit;
}

let create ?(on_seed = fun _ -> true) ?(on_forget = fun _ -> ()) n =
  if n < 1 then invalid_arg "Rumor_store.create: need n >= 1";
  { n; completed = Bytes.make n '\000'; count = 0; on_seed; on_forget }

let capacity t = t.n

let bytes t = t.completed

let completed t v = Bytes.get t.completed v <> '\000'

let count t = t.count

(* The sharded engine maintains per-shard counts during the run and
   installs the merged total once the domains have joined. *)
let set_count t c = t.count <- c

let mark t v =
  if Bytes.get t.completed v = '\000' then begin
    Bytes.set t.completed v '\001';
    t.count <- t.count + 1
  end

let seed t v = if t.on_seed v then mark t v

let forget_state t v = t.on_forget v

let forget t v =
  t.on_forget v;
  if Bytes.get t.completed v <> '\000' then begin
    Bytes.set t.completed v '\000';
    t.count <- t.count - 1
  end
