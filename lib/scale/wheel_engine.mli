(** Flat-array gossip simulator for million-node graphs.

    {!Gossip_sim.Engine} is polymorphic in the payload and dispatches
    through per-node handler closures and a binary heap of boxed
    events — the right tool for the paper's gadgets, but at 10^6 nodes
    the allocation and pointer traffic dominate.  [Wheel_engine]
    specializes the three hot single-rumor broadcast protocols and
    keeps {e all} state flat:

    - the informed set is a byte array;
    - in-flight exchanges live in a pooled structure of parallel
      {b int32} columns ({!I32.t} Bigarrays — 4 bytes per field, off
      the OCaml heap), threaded into singly-linked lists; node ids and
      latencies fit by the {!Csr} range contract, and due rounds are
      guarded per round ({!step} raises {!I32.Overflow} rather than
      wrapping a due date);
    - the round loop is {e allocation-free}: no per-round closures,
      boxed ints, or escaping refs — enforced by asserting the
      ["wheel.minor_words_per_round"] gauge against
      {!minor_words_budget} in the tests and bench e18;
    - the event queue is a timing wheel of [ℓ_max + 1] slots indexed by
      [round mod (ℓ_max + 1)] — legal because every event is due at
      most [ℓ_max] rounds ahead, so insertion and extraction are O(1)
      with no comparisons;
    - per-node randomness comes from [Rng] streams split from the
      caller's seed in node order — the exact discipline of the
      handler-based protocols, which is what makes trajectory parity
      with [Gossip_core.Push_pull.broadcast] possible.

    The round semantics are identical to [Engine.step]: all deliveries
    due this round happen first (responses are generated before any
    push merge, from state as of the start of the round, so information
    never chains through several same-round deliveries), then every
    node may initiate, in ascending node order.  A latency-[ℓ] exchange
    initiated at round [r] arrives at [r + ⌈ℓ/2⌉] and its response
    returns at [r + ℓ].

    The protocol itself is a {!Kernel.t}: a directed contact structure
    plus the [on_initiate] / [on_deliver] / [on_response] hooks the
    round phases call (see {!Kernel} for the hook contract and why the
    RNG-stream discipline is part of it).  The engine owns everything
    else — pool, wheels, faults, deadline, RNG streams, telemetry,
    shard mailboxes. *)

(** The serializable protocol descriptors ({!Kernel.protocol},
    re-exported).  The classic descriptors spread one rumor from a
    source; the rumor-state descriptors ([K_rumor], [Rumor_rotation],
    [Algebraic]) run k-rumor all-to-all dissemination under a bounded
    per-message word budget.  They differ in who initiates, toward
    whom, over which contact structure, and in what a message
    carries. *)
type protocol = Kernel.protocol =
  | Push_pull
      (** every node contacts a uniformly random neighbor each round;
          the exchange pushes the rumor out and pulls it back —
          trajectory-identical to [Gossip_core.Push_pull.broadcast]
          for the same seed *)
  | Flood
      (** informed nodes cycle deterministically through their
          neighbors (round-robin push, responses carry nothing) —
          trajectory-identical to
          [Gossip_core.Flooding.push_round_robin ~blocking:false] *)
  | Random_contact
      (** informed nodes push to a uniformly random neighbor each
          round — the classical random-phone-call push half *)
  | Rr_spanner of { stretch_k : int }
      (** RR Broadcast over a Baswana–Sen oriented spanner ([stretch_k
          = 0] means [⌈log₂ n⌉]).  Needs a precomputed spanner, so
          {!broadcast} rejects it — build the kernel with
          {!Kernel.rr_broadcast} and run {!broadcast_kernel}. *)
  | Dtg_local of { ell : int }
      (** deterministic local broadcast over the latency-[<= ell]
          subgraph ([ell = 0] means [ℓ_max], i.e. flooding) *)
  | Unknown_eid
      (** the unknown-latency EID chain (Theorem 20's spanner branch).
          A kernel chain, so {!broadcast} rejects it — run
          [Gossip_core.Eid.run_unknown_scale]. *)
  | Unified
      (** Theorem 20's unified algorithm: push-pull raced against the
          unknown-latency chain.  A kernel chain — run
          [Gossip_core.Dissemination.broadcast_scale]. *)
  | K_rumor of { k : int; budget : int }
      (** [k]-rumor all-to-all push-pull: node [j < k] starts with
          rumor [j]; each exchange carries at most [budget] rumor ids
          (a rotating subset of what the initiator holds); completion
          = holding all [k].  [k = 0] means [min n 16]; [budget = 0]
          means 4 words. *)
  | Rumor_rotation of { k : int; budget : int }
      (** small-message dissemination: nodes rotate a [budget]-wide
          window deterministically over their [k]-rumor state and
          contact a uniform random neighbor each round (Dufoulon-style
          rumor rotation). *)
  | Algebraic of { k : int; budget : int }
      (** algebraic gossip (Avin et al.): messages are random GF(2)
          linear combinations of held coded rows; completion = rank
          [k].  [budget = 0] means exactly the [⌈k/30⌉] coefficient
          words a combination needs; an explicit budget below that is
          rejected. *)

val protocol_name : protocol -> string

(** [protocol_of_string s] inverts {!protocol_name} (single parser
    shared by the CLI and the sweep checkpoints). *)
val protocol_of_string : string -> protocol option

(** Canonical protocol names for help strings. *)
val known_protocols : string list

(** Fault injection is shared with the reference engine so experiment
    plans ({!Gossip_core.Robustness}-style crash/drop/jitter closures)
    run unchanged on either. *)
type faults = Gossip_sim.Engine.faults

val no_faults : faults

(** A time-indexed network environment — the generalization of
    {!faults} that dynamic scenarios ([lib/dyn]) compile into.  Where a
    fault plan sees only [(node, round)] or [(latency, round)], an
    environment additionally sees {e edge identity} ([u], [v]) for
    latency rewriting and {e presence intervals} for churn:

    - [env_alive ~node ~round]: may [node] act (initiate, respond,
      be counted live) at [round]?
    - [env_present_since ~node ~since ~round]: has [node] been
      continuously present from round [since] through [round]?  An
      in-flight exchange initiated at [since] is delivered to [node]
      only if this holds — a node that left and rejoined mid-flight
      missed the message (its incarnation changed).  For static plans
      this degenerates to [env_alive ~node ~round].
    - [env_drop ~initiator ~responder ~round]: suppress the initiation.
    - [env_latency ~u ~v ~latency ~round]: the effective latency of
      edge [(u, v)] (static latency [latency]) for an exchange
      initiated at [round].  Clamped to [>= 1] by the engine; must stay
      within the wheel bound or {!Jitter_overflow} is raised.
    - [env_rejoin ~node ~round]: [node] rejoins (with amnesia) at the
      start of [round] — the engine clears its informed bit before any
      deliveries, so completion still means "everyone currently
      informed".  Scanned only when [env_has_churn] is set, so static
      environments pay nothing.

    All closures must be pure (deterministic functions of their
    arguments): under [?domains > 1] the engine may evaluate them from
    any domain, and bit-identical parity with the sequential engine
    relies on it. *)
type env = {
  env_alive : node:int -> round:int -> bool;
  env_present_since : node:int -> since:int -> round:int -> bool;
  env_drop : initiator:int -> responder:int -> round:int -> bool;
  env_latency : u:int -> v:int -> latency:int -> round:int -> int;
  env_rejoin : node:int -> round:int -> bool;
  env_has_churn : bool;
}

(** [env_of_faults f] embeds a static fault plan as the trivial
    environment ([env_present_since] ignores [since]; no churn) —
    running it is bit-identical to running [f] directly.  When both
    [?faults] and [?env] are given to {!create} / {!broadcast}, they
    compose: alive conjoins, drop disjoins, and the fault plan's jitter
    feeds the environment's [env_latency]. *)
val env_of_faults : faults -> env

(** Counters are the reference engine's record, so downstream
    aggregation code needs no conversion. *)
type metrics = Gossip_sim.Engine.metrics

(** Raised by {!step} when a fault plan jitters a latency past the
    wheel bound mid-run.  A typed exception (with a registered
    printer) rather than [Invalid_argument] so a sweep runtime can
    record the run as a failed outcome instead of crashing. *)
exception Jitter_overflow of { latency : int; bound : int; round : int }

(** Raised by {!broadcast} between rounds once the wall-clock
    [deadline] has passed. *)
exception Deadline_exceeded of { round : int; elapsed_s : float }

(** Raised when the exchange pool cannot grow past [?pool_capacity]
    (or [Sys.max_array_length]).  [used] is the number of live pool
    slots at the failure; [round] the round being executed.  Typed
    (with a registered printer) so {!Sweep.run_ft} checkpoints the job
    as a structured failure instead of an opaque [Failure _]. *)
exception Pool_exhausted of { used : int; round : int }

(** The asserted ceiling for the ["wheel.minor_words_per_round"] gauge
    on static (fault-free closure-free) runs: the round loop allocates
    nothing per round, and the amortized leftovers (pool growth,
    history doubling) stay far below this once a run spans more than a
    handful of rounds.  Exported so the tests and bench e18 assert the
    same number. *)
val minor_words_budget : int

(** [gauge_of_minor_words ~total ~rounds] is the per-round
    minor-allocation gauge: [total /. rounds] rounded to {e nearest}
    ([Float.round], not [int_of_float] truncation — the bug class PR 3
    fixed in [busy_us] and PR 8 in [crash_fraction]).  Exposed so the
    rounding behavior itself is testable. *)
val gauge_of_minor_words : total:float -> rounds:int -> int

type t

(** [create ?faults ?wheel_latency ?max_jitter ?telemetry rng csr
    ~protocol ~source] builds a simulator with the source already
    informed.  [wheel_latency] sizes the timing wheel (default:
    [Csr.max_latency csr + max_jitter]); it must be an upper bound on
    every jittered latency the run will see.

    [max_jitter] (default [0]) declares the fault plan's maximum
    additive jitter.  Declaring it sizes the wheel to
    [ℓ_max + max_jitter] automatically and makes an undersized
    explicit [wheel_latency] fail fast here, with a clear message,
    instead of deep inside {!step} thousands of rounds later.

    [pool_capacity] bounds the exchange pool: it is both the initial
    size hint and a hard growth ceiling, so a run that would hold more
    concurrent exchanges fails fast with {!Pool_exhausted} instead of
    doubling toward the hard ceiling
    [min Sys.max_array_length I32.max_value] (pool indices live in
    int32 cells, so the ceiling is clamped to the int32 range; an
    explicit capacity above it is clamped too).  Default: unbounded up
    to that ceiling.  Under [?domains > 1] the capacity applies to
    {e each} shard's pool.

    [telemetry] attaches an observability registry: per round the
    engine observes delivery/initiation counts and the in-flight
    exchange population (= wheel-slot occupancy) into the
    ["wheel.round.deliveries"], ["wheel.round.initiations"] and
    ["wheel.inflight"] histograms, tracks the ["wheel.inflight.max"]
    gauge, and — when the registry carries a ring — records per-round
    [informed]/[deliveries]/[initiations]/[drops]/[queue] trace
    events.  Kernel-tagged traffic totals additionally accumulate into
    the ["wheel.kernel.<name>.deliveries"] /
    ["wheel.kernel.<name>.initiations"] counters, so a JSONL report
    shows which kernel produced a run's traffic, payload words
    accumulate into ["wheel.kernel.<name>.words_on_wire"], and the
    ["wheel.kernel.<name>.bits_budget"] gauge records the kernel's
    declared per-message bit budget ([32 * msg_words]) once at
    creation.  All handles are
    resolved at creation; a telemetry-off run pays one option match
    per round.  A full {!broadcast} run additionally sets the
    ["wheel.minor_words_per_round"] gauge — minor-heap words allocated
    per executed round on the orchestrating domain (ROADMAP item 3's
    allocation-free-round-loop enforcement hook).

    [env] is a time-indexed environment (see {!env}); it composes with
    [?faults] as documented at {!env_of_faults}.  A dynamic
    environment's [env_latency] must respect [wheel_latency] /
    [max_jitter] sizing exactly as a jitter fault plan would.

    [informed] seeds the initial informed set from a byte vector (any
    nonzero byte marks the node; the source is always added) — this is
    how {!Gossip_core.Eid}'s scale pipeline chains one kernel's final
    informed set into the next phase.  The bytes are copied, never
    shared.
    @raise Invalid_argument on a bad source, a negative [max_jitter],
    a wheel too small for [ℓ_max + max_jitter], an [informed] vector
    of the wrong length, or (for {!create}) the [Rr_spanner _]
    descriptor, which needs a precomputed spanner. *)
val create :
  ?faults:faults ->
  ?env:env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?pool_capacity:int ->
  ?informed:Bytes.t ->
  Gossip_util.Rng.t ->
  Csr.t ->
  protocol:protocol ->
  source:int ->
  t

(** [create_kernel rng csr ~kernel ~source] is {!create} for an
    explicit kernel — the only way to run protocols whose contact
    structure the engine cannot derive from [csr] alone (RR Broadcast
    over a precomputed spanner).  The kernel's contact structure must
    span exactly [Csr.n csr] nodes and its latencies must fit the
    wheel even under [max_jitter]; both are validated here.
    @raise Invalid_argument as {!create}, plus on a kernel contact
    mismatch. *)
val create_kernel :
  ?faults:faults ->
  ?env:env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?pool_capacity:int ->
  ?informed:Bytes.t ->
  Gossip_util.Rng.t ->
  Csr.t ->
  kernel:Kernel.t ->
  source:int ->
  t

val graph : t -> Csr.t

(** [current_round t] is the index of the next round to execute. *)
val current_round : t -> int

val metrics : t -> metrics

val informed : t -> int -> bool

val informed_count : t -> int

(** [step t] executes one round (deliveries, then initiations).
    @raise Jitter_overflow when a jittered latency exceeds the wheel
    bound. *)
val step : t -> unit

(** Result of a full broadcast run, shaped like
    [Gossip_core.Push_pull.result]. *)
type result = {
  rounds : int option;  (** rounds until all informed, [None] if capped *)
  metrics : metrics;
  history : (int * int) list;
      (** (round, informed-count) at every change — the informed-set
          trajectory of Theorem 12's proof *)
  informed : Bytes.t;
      (** final completion set, one byte per node ([informed.(v) <> 0]
          iff [v] completed — heard the rumor for single-rumor
          kernels, holds all [k] rumors / reached rank [k] for the
          rumor-state kernels) — what the sharded-parity property
          compares beyond the trajectory.  This is the kernel's
          {!Rumor_store} byte array, shared, not copied. *)
}

(** [broadcast ?faults ?wheel_latency ?max_jitter ?deadline ?domains
    rng csr ~protocol ~source ~max_rounds] runs until every node is
    informed or the round budget is spent.  [deadline] is an absolute
    wall-clock time ([Unix.gettimeofday] scale): it is checked
    cooperatively {e between} rounds — so it never perturbs RNG draws,
    delivery order, or trajectory parity — and once passed the run
    aborts with {!Deadline_exceeded}.

    [domains] (default 1) shards the run across that many OCaml
    domains: nodes are partitioned into contiguous shards
    ({!Shard.bounds}), each with its own exchange pool, wheels,
    informed-byte slice and RNG streams; cross-shard traffic moves
    through per-[(src, dst)] mailboxes drained in fixed shard order at
    phase barriers.  The trajectory ([history]), [metrics], final
    informed set, and RNG consumption are bit-identical to [domains =
    1] for every (protocol, seed, fault plan) — {e provided the fault
    plan's closures are pure} (deterministic functions of their
    arguments; the engine may evaluate them from any domain).  With
    [domains > 1] and [?telemetry], the registry additionally gains a
    ["wheel.shards"] gauge and per-shard
    ["wheel.shard.remote.initiations"] /
    ["wheel.shard.remote.responses"] counters merged in at the end of
    the run.  [domains] is clamped to the node count; 1 runs the plain
    sequential engine.

    [on_round] is a per-round observer with the deadline's guarantees:
    it fires strictly {e between} rounds (after round [round]'s
    deliveries and initiations are committed, with the informed count
    at that instant) on the orchestrating domain, so it can never
    perturb RNG draws, delivery order, or trajectory parity.  An
    exception it raises aborts the run and propagates — the
    cooperative-cancellation hook the serve daemon's progress
    streaming and job cancellation are built on.
    @raise Deadline_exceeded once [deadline] has passed.
    @raise Jitter_overflow when an undeclared jitter overruns the
    wheel mid-run.
    @raise Pool_exhausted when the pool hits [pool_capacity]. *)
val broadcast :
  ?faults:faults ->
  ?env:env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  ?on_round:(round:int -> informed:int -> unit) ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?pool_capacity:int ->
  ?informed:Bytes.t ->
  ?domains:int ->
  Gossip_util.Rng.t ->
  Csr.t ->
  protocol:protocol ->
  source:int ->
  max_rounds:int ->
  result

(** [broadcast_kernel rng csr ~kernel ~source ~max_rounds] is
    {!broadcast} for an explicit kernel (see {!create_kernel}); the
    sequential/sharded dispatch, determinism guarantees, and
    exceptions are identical.  This is the entry point for RR
    Broadcast over a precomputed spanner and for EID's phase-chained
    runs ([?informed] carries the previous phase's informed set). *)
val broadcast_kernel :
  ?faults:faults ->
  ?env:env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  ?on_round:(round:int -> informed:int -> unit) ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?pool_capacity:int ->
  ?informed:Bytes.t ->
  ?domains:int ->
  Gossip_util.Rng.t ->
  Csr.t ->
  kernel:Kernel.t ->
  source:int ->
  max_rounds:int ->
  result
