(** Protocol kernels for the flat timing-wheel engine.

    {!Wheel_engine} owns everything a gossip run needs except the
    protocol itself: the exchange pool, the arrival/response wheels,
    the fault plan, the deadline, per-node RNG streams, the telemetry
    handles, and (when sharded) the cross-domain mailboxes.  A
    {e kernel} supplies the protocol: a directed contact structure, a
    per-message payload budget, a completion store, and five hooks the
    engine calls at fixed points of its round.

    {2 Rumor-state layer}

    The kernel — not the engine — owns all rumor state.  Each kernel
    carries a {!Rumor_store.t} ([store]): one completed byte per node
    plus a count, which is all the engine reads (seeding, termination,
    [result.informed]).  What "completed" means is the kernel's choice:
    the classic single-rumor kernels use the store's default semantics
    (seeded = informed), the k-rumor family completes a node when it
    holds all [k] rumors, the algebraic kernel when its GF(2) basis
    reaches rank [k].

    Payloads are bounded word vectors, not single ints: a kernel
    declares [msg_words] (its per-message budget B, in int32 words — 32
    [msg_words] bits on the wire per message) and the engine hands
    every payload hook a word buffer [buf] plus the message's base
    offset [off]; the hook owns words [off .. off + msg_words - 1],
    which arrive zeroed on the emitting side.  Classic kernels are the
    [msg_words = 1] special case and write at most word [off].

    {2 Hook contract}

    The engine's round has four phases (1a/1b/1c/2, see
    {!Wheel_engine}); the kernel is consulted at all of them:

    - [on_initiate ~rngs ~round ~u ~deg ~informed] — phase 2, called
      once per alive node in ascending node order.  Returns a slot
      index into [u]'s contact row ([0 <= slot < deg]) or [-1] for no
      initiation this round.  This is the only hook that may consume
      randomness ([rngs.(u)]) or advance per-node kernel state whose
      update order matters, and the {b order and count of those effects
      are part of the kernel's observable API}: per-node RNG streams
      are split in node order at engine creation, and trajectory parity
      between the sequential and domain-sharded runtimes (and between
      engine generations) holds only because every kernel draws from
      [rngs.(u)] under exactly the same conditions in both.  The
      request payload is written by [req_pay ~u ~informed ~buf ~off],
      evaluated with [u]'s informed (completed) bit as of phase 2
      (after this round's deliveries); it must be a pure emission —
      read kernel state, write payload words, mutate nothing.
    - [on_deliver ~v ~informed ~buf ~off] — phase 1a, writes the
      response payload from the responder [v]'s {e round-start} state,
      before any of this round's push merges.  Also emission-pure.
    - [on_push ~v ~buf ~off] — phase 1b, absorbs the request payload
      into the responder [v]'s state and returns whether [v] is now
      completed (the engine then marks the store; the classic kernels
      return [pay = 1], state-carrying kernels merge and return their
      completion predicate).  The payload words are the kernel's to
      consume — they may be mutated in place (the engine retires them
      after the hook), which is how the algebraic kernel reduces
      incoming vectors without scratch allocation.
    - [on_response ~u ~slot ~rtt ~buf ~off] — phase 1c, absorbs the
      returning payload into the initiator [u], same contract as
      [on_push].  [slot] is the contact-row index [on_initiate]
      returned (the peer is [contact.o_col.(o_row_ptr.(u) + slot)]),
      and [rtt] is the exchange's measured round-trip time — its
      {e effective} latency under the run's fault plan and
      environment, which is how the discovery kernel learns the
      latency profile without any side channel.

    {2 Shard parity}

    Hooks other than [on_initiate] may mutate kernel state only in
    ways that are order-independent within a phase: idempotent
    monotone marks (boolean ORs into byte arrays), writes to
    per-(node, slot) cells that each receive at most one write per
    run, or merges whose end-of-phase state is insertion-order
    invariant (the algebraic kernel's canonical-RREF basis).  Every
    cell a hook touches must belong to the node the engine passed it
    ([u]/[v]) — the same owner-only discipline that protects the
    store's completed bytes — so the domain-sharded runtime stays
    bit-identical to the sequential one.

    {2 State layout}

    Kernels keep per-node state (round-robin cursors, rumor bitsets,
    GF(2) bases, discovered latencies, vote bits) in flat arrays
    captured by the hook closures.  A kernel instance is mutable and
    single-run: build a fresh kernel per broadcast.  Under domain
    sharding the one instance is shared by all shards, which is safe
    because the engine only calls each hook for nodes the calling
    shard owns. *)

(** {1 Protocol descriptors}

    The serializable names for the kernels the stack knows how to
    build; {!Wheel_engine} re-exports this type, and the sweep
    checkpoints and the CLI's [--protocol]/[--algorithm] options parse
    it through the single {!protocol_of_string} below.  A parameter of
    [0] means "choose automatically at build time" ([⌈log₂ n⌉] for the
    spanner parameter, the graph's [ℓ_max] for the DTG threshold,
    [min n 16] rumors / a 4-word budget for the k-rumor family). *)

type protocol =
  | Push_pull  (** uniform random neighbor, every node, every round *)
  | Flood  (** informed nodes cycle neighbors round-robin *)
  | Random_contact  (** informed nodes contact a uniform neighbor *)
  | Rr_spanner of { stretch_k : int }
      (** RR Broadcast over a Baswana–Sen oriented spanner built with
          parameter [stretch_k] (0 = [⌈log₂ n⌉]) *)
  | Dtg_local of { ell : int }
      (** deterministic local broadcast over the latency-[<= ell]
          subgraph (0 = [ℓ_max], i.e. flooding) *)
  | Unknown_eid
      (** the unknown-latency EID chain (Theorem 20's spanner branch):
          guess-and-double latency discovery → T(k) DTG schedule →
          spanner on the discovered profile → RR Broadcast →
          termination check, retrying while the vote is failed or
          non-unanimous.  A kernel chain, so {!of_protocol} rejects it
          — run [Gossip_core.Eid.run_unknown_scale]. *)
  | Unified
      (** Theorem 20's unified algorithm: push-pull and the
          unknown-latency EID chain raced, min taken.  A kernel chain
          — run [Gossip_core.Dissemination.broadcast_scale]. *)
  | K_rumor of { k : int; budget : int }
      (** k rumors seeded one per node (all-to-all when [k = n]),
          push-pull contact schedule, each message a random rumor
          subset of at most [budget] words (0 = auto for either
          field) *)
  | Rumor_rotation of { k : int; budget : int }
      (** same seeding, random contact, Dufoulon-style deterministic
          rumor rotation: the emission window slides [budget] positions
          per round *)
  | Algebraic of { k : int; budget : int }
      (** Avin et al. algebraic gossip: random GF(2) combinations of
          the decoded span, 30 coefficient bits per word; completion =
          rank [k].  [budget] must be at least [⌈k/30⌉] words (0 =
          exactly that). *)

val protocol_name : protocol -> string

(** [protocol_of_string s] inverts {!protocol_name}; also accepts the
    parameterless forms ["rr-spanner"] / ["dtg"] / ["k-rumor"] …
    (auto parameters) and the one-parameter k-rumor forms
    (["k-rumor:K"], auto budget). *)
val protocol_of_string : string -> protocol option

(** Canonical names for help strings: ["push-pull"; "flood";
    "random-contact"; "rr-spanner[:K]"; "dtg[:L]"; "unknown-eid";
    "unified"; "k-rumor[:K[:B]]"; "rotation[:K[:B]]";
    "algebraic[:K[:B]]"]. *)
val known_protocols : string list

(** {1 Kernels} *)

type t = {
  name : string;  (** tag for telemetry counters and display *)
  contact : Csr.oriented;  (** directed contact rows [on_initiate] indexes *)
  uses_rng : bool;  (** engine must split per-node RNG streams *)
  msg_words : int;  (** per-message payload budget B, in int32 words *)
  store : Rumor_store.t;  (** kernel-owned completion state *)
  on_initiate : rngs:Gossip_util.Rng.t array -> round:int -> u:int -> deg:int -> informed:bool -> int;
  req_pay : u:int -> informed:bool -> buf:I32.t -> off:int -> unit;
  on_deliver : v:int -> informed:bool -> buf:I32.t -> off:int -> unit;
  on_push : v:int -> buf:I32.t -> off:int -> bool;
  on_response : u:int -> slot:int -> rtt:int -> buf:I32.t -> off:int -> bool;
}

val name : t -> string

val contact : t -> Csr.oriented

val store : t -> Rumor_store.t

(** [completed t v] / [completed_count t] — the kernel's completion
    predicate, delegated to its store.  After a broadcast these are
    the per-node outcome ("holds the rumor" / "holds all k" / "rank
    k") and how many nodes reached it. *)
val completed : t -> int -> bool

val completed_count : t -> int

(** The classic three, bit-identical in trajectory, metrics, and RNG
    consumption to the closed-variant engine they replace. *)

val push_pull : Csr.t -> t

val flood : Csr.t -> t

val random_contact : Csr.t -> t

(** [rr_broadcast ?iterations ~k oriented] is RR Broadcast (Algorithm
    2 / Lemma 15) over a precomputed orientation: every node cycles a
    cursor through its out-edges of latency [<= k] (row order
    preserved — see {!Csr.oriented_filter_le}), initiating every round
    while [round < iterations].  [iterations] defaults to unbounded
    (run-to-completion broadcast); pass the lemma's [k·Δ_out + k] to
    reproduce {!Gossip_core.Rr_broadcast}'s finite window, e.g. for
    trajectory-parity tests.  Exchanges are bidirectional, so rumors
    flow against the orientation too. *)
val rr_broadcast : ?iterations:int -> k:int -> Csr.oriented -> t

(** [dtg_local ~ell csr] is the k-DTG local-broadcast kernel: informed
    nodes cycle round-robin through their neighbors of latency
    [<= ell] — deterministic single-rumor local broadcast over [G_ℓ]
    (the scale-runtime simplification of {!Gossip_core.Dtg}'s
    session-based phases; with [ell >= ℓ_max] it coincides exactly
    with {!flood}). *)
val dtg_local : ell:int -> Csr.t -> t

(** {1 The k-rumor family}

    ROADMAP item 2's workload: [k] rumors seeded rumor [j] at node [j]
    (all-to-all when [k = n]), per-node rumor state owned by the
    kernel, completion = "holds all k" / "rank k".  Boxed reference
    twins live in {!Gossip_core.Rumor} for trajectory-parity tests.

    Wire accounting: each kernel reports under
    [wheel.kernel.<name>.words_on_wire] (payload words delivered) and
    [wheel.kernel.<name>.bits_budget] (the declared per-message bit
    budget, [32 * msg_words]). *)

(** Handle over the subset kernels' rumor state, for tests and
    debugging: [rum_holds ~v ~r] is whether node [v] currently holds
    rumor [r], [rum_count ~v] how many of the [k] it holds. *)
type rumor = { rum_kernel : t; rum_holds : v:int -> r:int -> bool; rum_count : v:int -> int }

(** [k_rumor_push_pull ~k ~budget csr]: push-pull contact schedule
    (uniform random neighbor every round); each message carries up to
    [budget] held rumor ids, chosen by a cyclic scan from a uniformly
    redrawn per-round start position — a random subset within budget.
    @raise Invalid_argument unless [1 <= k <= n] and [budget >= 1]. *)
val k_rumor_push_pull : k:int -> budget:int -> Csr.t -> rumor

(** [rumor_rotation ~k ~budget csr]: Dufoulon et al. small-message
    regime — each node's emission window of [budget] rumor positions
    rotates deterministically by [budget] per round, so every held
    rumor hits the wire within [⌈k/budget⌉] rounds, while the contact
    is a uniform random neighbor (a deterministic neighbor cursor
    would alias with the rotation period and can freeze a rumor onto a
    disconnected neighbor subgraph). *)
val rumor_rotation : k:int -> budget:int -> Csr.t -> rumor

(** Handle over the algebraic kernel's per-node GF(2) state:
    [alg_rank ~v] is node [v]'s decoded rank, [alg_rows ~v] its
    canonical-RREF basis rows (each row [⌈k/30⌉] words of 30
    coefficient bits, ascending pivot order) — insertion-order
    invariant, which is what the twin-parity tests check. *)
type algebraic = { alg_kernel : t; alg_rank : v:int -> int; alg_rows : v:int -> int array array }

(** [algebraic ~k ~budget csr]: algebraic gossip (Avin et al.) —
    messages are uniform random GF(2) linear combinations of the
    sender's decoded span, completion is rank [k].
    @raise Invalid_argument unless [1 <= k <= n] and
    [budget >= ⌈k/30⌉]. *)
val algebraic : k:int -> budget:int -> Csr.t -> algebraic

(** {1 Unknown-latency kernels}

    The building blocks of the Theorem 20 chain.  Both are inert with
    respect to the engine's rumor machinery (payload 0 / return
    [false]): their results live in the arrays below, which the
    drivers in [Gossip_core.Discovery] / [Gossip_core.Termination_check]
    read back after the run. *)

(** The discovery kernel's handle: [disc_lat] is parallel to the
    contact structure's [o_col] — [disc_lat.(o_row_ptr.(u) + i)] is
    the measured round-trip latency of [u]'s [i]-th out-edge, or [-1]
    while undiscovered (probe still in flight, lost to a fault, or
    measured above [disc_d_bound]). *)
type discovery = { disc_kernel : t; disc_lat : int array; disc_d_bound : int }

(** [discovery ~d_bound csr] probes every contact edge once, one
    neighbor per round per node (cursor order), recording each
    response's measured round-trip time when it is [<= d_bound].  The
    schedule needs [Δ + d_bound] rounds to settle
    ({!Gossip_core.Discovery.probe_rounds}); run it through
    [Gossip_core.Discovery.probe_scale]. *)
val discovery : d_bound:int -> Csr.t -> discovery

(** The check kernel's handle: after the gather pass, [check_flag]
    marks nodes that saw (or heard of) an uninformed node, and
    [check_mismatch] marks nodes whose frozen informed bit disagreed
    with a received one. *)
type check = { check_kernel : t; check_flag : Bytes.t; check_mismatch : Bytes.t }

(** [termination_check ~iterations ~informed oriented] is pass 1 of
    the Section 5.3 vote, single-rumor form: the informed set is
    frozen at construction, every node floods (frozen, flag, mismatch)
    bit-packed payloads round-robin over [oriented] for [iterations]
    rounds, and absorbs received payloads by boolean OR.  A node
    starts flagged iff it is uninformed, so a unanimously clean
    verdict is exactly "everyone heard the rumor".  Run through
    [Gossip_core.Termination_check.run_scale], which adds the verdict
    pass. *)
val termination_check : iterations:int -> informed:Bytes.t -> Csr.oriented -> check

(** [verdict_flood ~iterations ~failed oriented] is pass 2: the
    per-node failed bits spread by OR under the same round-robin
    schedule, mutating [failed] in place. *)
val verdict_flood : iterations:int -> failed:Bytes.t -> Csr.oriented -> t

(** [of_protocol csr p] builds the kernel a descriptor denotes, on
    [csr]'s contact rows.  Raises [Invalid_argument] for
    [Rr_spanner _] (needs a precomputed oriented spanner the caller
    must supply through {!rr_broadcast} +
    {!Wheel_engine.broadcast_kernel}) and for [Unknown_eid] /
    [Unified] (kernel chains driven by [Gossip_core.Eid.run_unknown_scale]
    / [Gossip_core.Dissemination.broadcast_scale]). *)
val of_protocol : Csr.t -> protocol -> t
