(** Protocol kernels for the flat timing-wheel engine.

    {!Wheel_engine} owns everything a single-rumor gossip run needs
    except the protocol itself: the exchange pool, the arrival/response
    wheels, the fault plan, the deadline, per-node RNG streams, the
    telemetry handles, and (when sharded) the cross-domain mailboxes.
    A {e kernel} supplies the protocol: a directed contact structure
    plus five hooks the engine calls at fixed points of its round.

    {2 Hook contract}

    The engine's round has four phases (1a/1b/1c/2, see
    {!Wheel_engine}); the kernel is consulted at all of them:

    - [on_initiate ~rngs ~round ~u ~deg ~informed] — phase 2, called
      once per alive node in ascending node order.  Returns a slot
      index into [u]'s contact row ([0 <= slot < deg]) or [-1] for no
      initiation this round.  This is the only hook that may consume
      randomness ([rngs.(u)]) or advance per-node kernel state whose
      update order matters, and the {b order and count of those effects
      are part of the kernel's observable API}: per-node RNG streams
      are split in node order at engine creation, and trajectory parity
      between the sequential and domain-sharded runtimes (and between
      engine generations) holds only because every kernel draws from
      [rngs.(u)] under exactly the same conditions in both.  The
      request payload is [req_pay ~u ~informed], evaluated with [u]'s
      informed bit as of phase 2 (after this round's deliveries).
    - [on_deliver ~v ~informed] — phase 1a, computes the response
      payload from the responder [v]'s {e round-start} informed bit,
      before any of this round's push merges.
    - [on_push ~v ~pay] — phase 1b, decides whether the request
      payload marks the responder [v] informed (the classic kernels
      mark on [pay = 1]; state-carrying kernels absorb [pay] into
      their own arrays and return [false]).
    - [on_response ~u ~slot ~rtt ~pay] — phase 1c, decides whether the
      returning payload marks the initiator [u] informed.  [slot] is
      the contact-row index [on_initiate] returned (the peer is
      [contact.o_col.(o_row_ptr.(u) + slot)]), and [rtt] is the
      exchange's measured round-trip time — its {e effective} latency
      under the run's fault plan and environment, which is how the
      discovery kernel learns the latency profile without any side
      channel.

    {2 Shard parity}

    Hooks other than [on_initiate] may mutate kernel state only in
    ways that are order-independent within a phase: idempotent
    monotone marks (boolean ORs into byte arrays) or writes to
    per-(node, slot) cells that each receive at most one write per run.
    Every cell a hook touches must belong to the node the engine
    passed it ([u]/[v]) — the same owner-only discipline that protects
    the informed bytes — so the domain-sharded runtime stays
    bit-identical to the sequential one.

    {2 State layout}

    Kernels keep per-node state (round-robin cursors, discovered
    latencies, vote bits) in flat arrays captured by the hook
    closures.  A kernel instance is mutable and single-run: build a
    fresh kernel per broadcast.  Under domain sharding the one
    instance is shared by all shards, which is safe because the engine
    only calls each hook for nodes the calling shard owns. *)

(** {1 Protocol descriptors}

    The serializable names for the kernels the stack knows how to
    build; {!Wheel_engine} re-exports this type, and the sweep
    checkpoints and the CLI's [--protocol]/[--algorithm] options parse
    it through the single {!protocol_of_string} below.  A parameter of
    [0] means "choose automatically at build time" ([⌈log₂ n⌉] for the
    spanner parameter, the graph's [ℓ_max] for the DTG threshold). *)

type protocol =
  | Push_pull  (** uniform random neighbor, every node, every round *)
  | Flood  (** informed nodes cycle neighbors round-robin *)
  | Random_contact  (** informed nodes contact a uniform neighbor *)
  | Rr_spanner of { stretch_k : int }
      (** RR Broadcast over a Baswana–Sen oriented spanner built with
          parameter [stretch_k] (0 = [⌈log₂ n⌉]) *)
  | Dtg_local of { ell : int }
      (** deterministic local broadcast over the latency-[<= ell]
          subgraph (0 = [ℓ_max], i.e. flooding) *)
  | Unknown_eid
      (** the unknown-latency EID chain (Theorem 20's spanner branch):
          guess-and-double latency discovery → T(k) DTG schedule →
          spanner on the discovered profile → RR Broadcast →
          termination check, retrying while the vote is failed or
          non-unanimous.  A kernel chain, so {!of_protocol} rejects it
          — run [Gossip_core.Eid.run_unknown_scale]. *)
  | Unified
      (** Theorem 20's unified algorithm: push-pull and the
          unknown-latency EID chain raced, min taken.  A kernel chain
          — run [Gossip_core.Dissemination.broadcast_scale]. *)

val protocol_name : protocol -> string

(** [protocol_of_string s] inverts {!protocol_name}; also accepts the
    parameterless forms ["rr-spanner"] / ["dtg"] (auto parameters). *)
val protocol_of_string : string -> protocol option

(** Canonical names for help strings: ["push-pull"; "flood";
    "random-contact"; "rr-spanner[:K]"; "dtg[:L]"; "unknown-eid";
    "unified"]. *)
val known_protocols : string list

(** {1 Kernels} *)

type t = {
  name : string;  (** tag for telemetry counters and display *)
  contact : Csr.oriented;  (** directed contact rows [on_initiate] indexes *)
  uses_rng : bool;  (** engine must split per-node RNG streams *)
  on_initiate : rngs:Gossip_util.Rng.t array -> round:int -> u:int -> deg:int -> informed:bool -> int;
  req_pay : u:int -> informed:bool -> int;
  on_deliver : v:int -> informed:bool -> int;
  on_push : v:int -> pay:int -> bool;
  on_response : u:int -> slot:int -> rtt:int -> pay:int -> bool;
}

val name : t -> string

val contact : t -> Csr.oriented

(** The classic three, bit-identical in trajectory, metrics, and RNG
    consumption to the closed-variant engine they replace. *)

val push_pull : Csr.t -> t

val flood : Csr.t -> t

val random_contact : Csr.t -> t

(** [rr_broadcast ?iterations ~k oriented] is RR Broadcast (Algorithm
    2 / Lemma 15) over a precomputed orientation: every node cycles a
    cursor through its out-edges of latency [<= k] (row order
    preserved — see {!Csr.oriented_filter_le}), initiating every round
    while [round < iterations].  [iterations] defaults to unbounded
    (run-to-completion broadcast); pass the lemma's [k·Δ_out + k] to
    reproduce {!Gossip_core.Rr_broadcast}'s finite window, e.g. for
    trajectory-parity tests.  Exchanges are bidirectional, so rumors
    flow against the orientation too. *)
val rr_broadcast : ?iterations:int -> k:int -> Csr.oriented -> t

(** [dtg_local ~ell csr] is the k-DTG local-broadcast kernel: informed
    nodes cycle round-robin through their neighbors of latency
    [<= ell] — deterministic single-rumor local broadcast over [G_ℓ]
    (the scale-runtime simplification of {!Gossip_core.Dtg}'s
    session-based phases; with [ell >= ℓ_max] it coincides exactly
    with {!flood}). *)
val dtg_local : ell:int -> Csr.t -> t

(** {1 Unknown-latency kernels}

    The building blocks of the Theorem 20 chain.  Both are inert with
    respect to the engine's rumor machinery (payload 0 / return
    [false]): their results live in the arrays below, which the
    drivers in [Gossip_core.Discovery] / [Gossip_core.Termination_check]
    read back after the run. *)

(** The discovery kernel's handle: [disc_lat] is parallel to the
    contact structure's [o_col] — [disc_lat.(o_row_ptr.(u) + i)] is
    the measured round-trip latency of [u]'s [i]-th out-edge, or [-1]
    while undiscovered (probe still in flight, lost to a fault, or
    measured above [disc_d_bound]). *)
type discovery = { disc_kernel : t; disc_lat : int array; disc_d_bound : int }

(** [discovery ~d_bound csr] probes every contact edge once, one
    neighbor per round per node (cursor order), recording each
    response's measured round-trip time when it is [<= d_bound].  The
    schedule needs [Δ + d_bound] rounds to settle
    ({!Gossip_core.Discovery.probe_rounds}); run it through
    [Gossip_core.Discovery.probe_scale]. *)
val discovery : d_bound:int -> Csr.t -> discovery

(** The check kernel's handle: after the gather pass, [check_flag]
    marks nodes that saw (or heard of) an uninformed node, and
    [check_mismatch] marks nodes whose frozen informed bit disagreed
    with a received one. *)
type check = { check_kernel : t; check_flag : Bytes.t; check_mismatch : Bytes.t }

(** [termination_check ~iterations ~informed oriented] is pass 1 of
    the Section 5.3 vote, single-rumor form: the informed set is
    frozen at construction, every node floods (frozen, flag, mismatch)
    bit-packed payloads round-robin over [oriented] for [iterations]
    rounds, and absorbs received payloads by boolean OR.  A node
    starts flagged iff it is uninformed, so a unanimously clean
    verdict is exactly "everyone heard the rumor".  Run through
    [Gossip_core.Termination_check.run_scale], which adds the verdict
    pass. *)
val termination_check : iterations:int -> informed:Bytes.t -> Csr.oriented -> check

(** [verdict_flood ~iterations ~failed oriented] is pass 2: the
    per-node failed bits spread by OR under the same round-robin
    schedule, mutating [failed] in place. *)
val verdict_flood : iterations:int -> failed:Bytes.t -> Csr.oriented -> t

(** [of_protocol csr p] builds the kernel a descriptor denotes, on
    [csr]'s contact rows.  Raises [Invalid_argument] for
    [Rr_spanner _] (needs a precomputed oriented spanner the caller
    must supply through {!rr_broadcast} +
    {!Wheel_engine.broadcast_kernel}) and for [Unknown_eid] /
    [Unified] (kernel chains driven by [Gossip_core.Eid.run_unknown_scale]
    / [Gossip_core.Dissemination.broadcast_scale]). *)
val of_protocol : Csr.t -> protocol -> t
