(** Protocol kernels for the flat timing-wheel engine.

    {!Wheel_engine} owns everything a single-rumor gossip run needs
    except the protocol itself: the exchange pool, the arrival/response
    wheels, the fault plan, the deadline, per-node RNG streams, the
    telemetry handles, and (when sharded) the cross-domain mailboxes.
    A {e kernel} supplies the protocol: a directed contact structure
    plus three hooks the engine calls at fixed points of its round.

    {2 Hook contract}

    The engine's round has four phases (1a/1b/1c/2, see
    {!Wheel_engine}); the kernel is consulted at three of them:

    - [on_initiate ~rngs ~round ~u ~deg ~informed] — phase 2, called
      once per alive node in ascending node order.  Returns a slot
      index into [u]'s contact row ([0 <= slot < deg]) or [-1] for no
      initiation this round.  This is the only hook that may consume
      randomness ([rngs.(u)]) or advance per-node kernel state, and
      the {b order and count of those effects are part of the kernel's
      observable API}: per-node RNG streams are split in node order at
      engine creation, and trajectory parity between the sequential
      and domain-sharded runtimes (and between engine generations)
      holds only because every kernel draws from [rngs.(u)] under
      exactly the same conditions in both.  The request payload is
      [req_pay ~informed], evaluated with [u]'s informed bit as of
      phase 2 (after this round's deliveries).
    - [on_deliver ~informed] — phase 1a, computes the response payload
      from the responder's {e round-start} informed bit, before any of
      this round's push merges.
    - [on_response ~pay] — phase 1c, decides whether the returning
      payload marks the initiator informed.

    The engine applies the symmetric merge itself: a request payload
    of 1 marks the responder in phase 1b.

    {2 State layout}

    Kernels keep per-node state (round-robin cursors) in flat int
    arrays captured by the hook closures.  A kernel instance is
    mutable and single-run: build a fresh kernel per broadcast.  Under
    domain sharding the one instance is shared by all shards, which is
    safe because the engine only calls [on_initiate] for nodes the
    calling shard owns — the same disjointness that protects the RNG
    streams. *)

(** {1 Protocol descriptors}

    The serializable names for the kernels the stack knows how to
    build; {!Wheel_engine} re-exports this type, and the sweep
    checkpoints and the CLI's [--protocol]/[--algorithm] options parse
    it through the single {!protocol_of_string} below.  A parameter of
    [0] means "choose automatically at build time" ([⌈log₂ n⌉] for the
    spanner parameter, the graph's [ℓ_max] for the DTG threshold). *)

type protocol =
  | Push_pull  (** uniform random neighbor, every node, every round *)
  | Flood  (** informed nodes cycle neighbors round-robin *)
  | Random_contact  (** informed nodes contact a uniform neighbor *)
  | Rr_spanner of { stretch_k : int }
      (** RR Broadcast over a Baswana–Sen oriented spanner built with
          parameter [stretch_k] (0 = [⌈log₂ n⌉]) *)
  | Dtg_local of { ell : int }
      (** deterministic local broadcast over the latency-[<= ell]
          subgraph (0 = [ℓ_max], i.e. flooding) *)

val protocol_name : protocol -> string

(** [protocol_of_string s] inverts {!protocol_name}; also accepts the
    parameterless forms ["rr-spanner"] / ["dtg"] (auto parameters). *)
val protocol_of_string : string -> protocol option

(** Canonical names for help strings: ["push-pull"; "flood";
    "random-contact"; "rr-spanner[:K]"; "dtg[:L]"]. *)
val known_protocols : string list

(** {1 Kernels} *)

type t = {
  name : string;  (** tag for telemetry counters and display *)
  contact : Csr.oriented;  (** directed contact rows [on_initiate] indexes *)
  uses_rng : bool;  (** engine must split per-node RNG streams *)
  on_initiate : rngs:Gossip_util.Rng.t array -> round:int -> u:int -> deg:int -> informed:bool -> int;
  req_pay : informed:bool -> int;
  on_deliver : informed:bool -> int;
  on_response : pay:int -> bool;
}

val name : t -> string

val contact : t -> Csr.oriented

(** The classic three, bit-identical in trajectory, metrics, and RNG
    consumption to the closed-variant engine they replace. *)

val push_pull : Csr.t -> t

val flood : Csr.t -> t

val random_contact : Csr.t -> t

(** [rr_broadcast ?iterations ~k oriented] is RR Broadcast (Algorithm
    2 / Lemma 15) over a precomputed orientation: every node cycles a
    cursor through its out-edges of latency [<= k] (row order
    preserved — see {!Csr.oriented_filter_le}), initiating every round
    while [round < iterations].  [iterations] defaults to unbounded
    (run-to-completion broadcast); pass the lemma's [k·Δ_out + k] to
    reproduce {!Gossip_core.Rr_broadcast}'s finite window, e.g. for
    trajectory-parity tests.  Exchanges are bidirectional, so rumors
    flow against the orientation too. *)
val rr_broadcast : ?iterations:int -> k:int -> Csr.oriented -> t

(** [dtg_local ~ell csr] is the k-DTG local-broadcast kernel: informed
    nodes cycle round-robin through their neighbors of latency
    [<= ell] — deterministic single-rumor local broadcast over [G_ℓ]
    (the scale-runtime simplification of {!Gossip_core.Dtg}'s
    session-based phases; with [ell >= ℓ_max] it coincides exactly
    with {!flood}). *)
val dtg_local : ell:int -> Csr.t -> t

(** [of_protocol csr p] builds the kernel a descriptor denotes, on
    [csr]'s contact rows.  Raises [Invalid_argument] for
    [Rr_spanner _], which needs a precomputed oriented spanner the
    caller must supply through {!rr_broadcast} +
    {!Wheel_engine.broadcast_kernel}. *)
val of_protocol : Csr.t -> protocol -> t
