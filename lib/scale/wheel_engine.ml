module Rng = Gossip_util.Rng
module Engine = Gossip_sim.Engine

type protocol = Push_pull | Flood | Random_contact

let protocol_name = function
  | Push_pull -> "push-pull"
  | Flood -> "flood"
  | Random_contact -> "random-contact"

type faults = Engine.faults

let no_faults = Engine.no_faults

type metrics = Engine.metrics

exception Jitter_overflow of { latency : int; bound : int; round : int }

exception Deadline_exceeded of { round : int; elapsed_s : float }

let () =
  Printexc.register_printer (function
    | Jitter_overflow { latency; bound; round } ->
        Some
          (Printf.sprintf
             "Wheel_engine.Jitter_overflow: jittered latency %d exceeds the wheel bound %d \
              at round %d (declare the fault plan's maximum jitter via ?max_jitter)"
             latency bound round)
    | Deadline_exceeded { round; elapsed_s } ->
        Some
          (Printf.sprintf
             "Wheel_engine.Deadline_exceeded: wall-clock budget spent after %.3fs at round %d"
             elapsed_s round)
    | _ -> None)

(* Telemetry handles, resolved once at creation (see Engine.tel). *)
type tel = {
  tel_ring : Gossip_obs.Ring.t option;
  h_deliveries : Gossip_obs.Registry.histogram;
  h_initiations : Gossip_obs.Registry.histogram;
  h_inflight : Gossip_obs.Registry.histogram;
  g_inflight : Gossip_obs.Registry.gauge;
}

(* In-flight exchanges are pooled in parallel int arrays and threaded
   into singly-linked lists by [ex_next]: one arrival list and one
   response list per wheel slot, plus a free list.  An exchange id is
   an index into the pool; [-1] terminates a list. *)
type t = {
  csr : Csr.t;
  protocol : protocol;
  faults : faults;
  wheel : int;  (* slot count = wheel latency bound + 1 *)
  informed : Bytes.t;
  mutable count : int;
  rngs : Rng.t array;  (* per-node streams; empty for Flood *)
  cursor : int array;  (* round-robin position; empty unless Flood *)
  arrival_head : int array;  (* wheel slot -> exchange list *)
  response_head : int array;
  mutable ex_initiator : int array;
  mutable ex_responder : int array;
  mutable ex_req_pay : int array;  (* rumor bit carried by the request *)
  mutable ex_resp_pay : int array;  (* rumor bit carried by the response *)
  mutable ex_due : int array;  (* absolute response-due round *)
  mutable ex_next : int array;
  mutable free_head : int;
  mutable pool_used : int;  (* high-water mark of allocated slots *)
  mutable in_flight : int;  (* live exchanges = wheel-slot occupancy *)
  metrics : metrics;
  tel : tel option;
  mutable now : int;
}

let create ?(faults = no_faults) ?wheel_latency ?(max_jitter = 0) ?telemetry rng csr
    ~protocol ~source =
  let n = Csr.n csr in
  if source < 0 || source >= n then invalid_arg "Wheel_engine.create: source out of range";
  if max_jitter < 0 then invalid_arg "Wheel_engine.create: max_jitter must be >= 0";
  let bound =
    match wheel_latency with
    | None -> Csr.max_latency csr + max_jitter
    | Some b ->
        if b < Csr.max_latency csr then
          invalid_arg "Wheel_engine.create: wheel_latency below the graph's ℓ_max";
        if b < Csr.max_latency csr + max_jitter then
          invalid_arg
            (Printf.sprintf
               "Wheel_engine.create: wheel_latency %d cannot hold the fault plan's maximum \
                jitter (ℓ_max %d + max_jitter %d = %d)"
               b (Csr.max_latency csr) max_jitter
               (Csr.max_latency csr + max_jitter));
        b
  in
  let informed = Bytes.make n '\000' in
  Bytes.set informed source '\001';
  let rngs =
    match protocol with
    | Flood -> [||]
    | Push_pull | Random_contact -> Array.init n (fun _ -> Rng.split rng)
  in
  let cap = min (max 1024 n) Sys.max_array_length in
  {
    csr;
    protocol;
    faults;
    wheel = bound + 1;
    informed;
    count = 1;
    rngs;
    cursor = (match protocol with Flood -> Array.make n 0 | _ -> [||]);
    arrival_head = Array.make (bound + 1) (-1);
    response_head = Array.make (bound + 1) (-1);
    ex_initiator = Array.make cap 0;
    ex_responder = Array.make cap 0;
    ex_req_pay = Array.make cap 0;
    ex_resp_pay = Array.make cap 0;
    ex_due = Array.make cap 0;
    ex_next = Array.make cap (-1);
    free_head = -1;
    pool_used = 0;
    in_flight = 0;
    metrics =
      { rounds = 0; initiations = 0; deliveries = 0; payload_words = 0; rejected = 0; dropped = 0 };
    tel =
      Option.map
        (fun reg ->
          {
            tel_ring = Gossip_obs.Registry.ring reg;
            h_deliveries = Gossip_obs.Registry.histogram reg "wheel.round.deliveries";
            h_initiations = Gossip_obs.Registry.histogram reg "wheel.round.initiations";
            h_inflight = Gossip_obs.Registry.histogram reg "wheel.inflight";
            g_inflight = Gossip_obs.Registry.gauge reg "wheel.inflight.max";
          })
        telemetry;
    now = 0;
  }

let graph t = t.csr

let current_round t = t.now

let metrics t = t.metrics

let informed t u = Bytes.get t.informed u <> '\000'

let informed_count t = t.count

let mark t v =
  if Bytes.get t.informed v = '\000' then begin
    Bytes.set t.informed v '\001';
    t.count <- t.count + 1
  end

let grow t =
  let old = Array.length t.ex_next in
  let cap = min (2 * old) Sys.max_array_length in
  if cap = old then failwith "Wheel_engine: exchange pool exhausted";
  let extend a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 old;
    b
  in
  t.ex_initiator <- extend t.ex_initiator;
  t.ex_responder <- extend t.ex_responder;
  t.ex_req_pay <- extend t.ex_req_pay;
  t.ex_resp_pay <- extend t.ex_resp_pay;
  t.ex_due <- extend t.ex_due;
  t.ex_next <- extend t.ex_next

let alloc t =
  t.in_flight <- t.in_flight + 1;
  if t.free_head >= 0 then begin
    let e = t.free_head in
    t.free_head <- t.ex_next.(e);
    e
  end
  else begin
    if t.pool_used >= Array.length t.ex_next then grow t;
    let e = t.pool_used in
    t.pool_used <- t.pool_used + 1;
    e
  end

let free t e =
  t.in_flight <- t.in_flight - 1;
  t.ex_next.(e) <- t.free_head;
  t.free_head <- e

let step t =
  let round = t.now in
  let d0 = t.metrics.Engine.deliveries
  and i0 = t.metrics.Engine.initiations
  and x0 = t.metrics.Engine.dropped in
  let slot = round mod t.wheel in
  let alive node = t.faults.Engine.alive ~node ~round in
  (* Phase 1a: every response due to be generated this round reads the
     informed set as of the start of the round — before any of this
     round's push merges — matching Engine.step's sub-phase ordering.
     Requests whose responder is crashed are lost here, answer and
     all. *)
  let e = ref t.arrival_head.(slot) in
  while !e >= 0 do
    let ex = !e in
    if alive t.ex_responder.(ex) then
      t.ex_resp_pay.(ex) <- (if informed t t.ex_responder.(ex) then 1 else 0);
    e := t.ex_next.(ex)
  done;
  (* Phase 1b: merge the pushed rumor bits and park each surviving
     exchange on the response list of its due slot (for latency-1
     edges that is this very slot, delivered below in 1c). *)
  let e = ref t.arrival_head.(slot) in
  t.arrival_head.(slot) <- -1;
  while !e >= 0 do
    let ex = !e in
    let next = t.ex_next.(ex) in
    if alive t.ex_responder.(ex) then begin
      t.metrics.Engine.deliveries <- t.metrics.Engine.deliveries + 1;
      t.metrics.Engine.payload_words <- t.metrics.Engine.payload_words + 1;
      if t.ex_req_pay.(ex) = 1 then mark t t.ex_responder.(ex);
      let due_slot = t.ex_due.(ex) mod t.wheel in
      t.ex_next.(ex) <- t.response_head.(due_slot);
      t.response_head.(due_slot) <- ex
    end
    else begin
      t.metrics.Engine.dropped <- t.metrics.Engine.dropped + 1;
      free t ex
    end;
    e := next
  done;
  (* Phase 1c: deliver responses due this round; a crashed initiator
     cannot receive. *)
  let e = ref t.response_head.(slot) in
  t.response_head.(slot) <- -1;
  while !e >= 0 do
    let ex = !e in
    let next = t.ex_next.(ex) in
    if alive t.ex_initiator.(ex) then begin
      t.metrics.Engine.deliveries <- t.metrics.Engine.deliveries + 1;
      t.metrics.Engine.payload_words <- t.metrics.Engine.payload_words + 1;
      if t.ex_resp_pay.(ex) = 1 then mark t t.ex_initiator.(ex)
    end
    else t.metrics.Engine.dropped <- t.metrics.Engine.dropped + 1;
    free t ex;
    e := next
  done;
  (* Phase 2: initiations in ascending node order.  Neighbor indexing
     and RNG consumption mirror the handler-based protocols exactly:
     push-pull draws one uniform neighbor index per node per round
     (whether informed or not), flooding advances a deterministic
     cursor, random-contact draws only when informed. *)
  let row_ptr = t.csr.Csr.row_ptr and col = t.csr.Csr.col and lat = t.csr.Csr.lat in
  let n = Csr.n t.csr in
  for u = 0 to n - 1 do
    if alive u then begin
      let base = row_ptr.(u) in
      let deg = row_ptr.(u + 1) - base in
      let idx =
        match t.protocol with
        | Push_pull -> if deg = 0 then -1 else Rng.int t.rngs.(u) deg
        | Flood ->
            if deg = 0 || not (informed t u) then -1
            else begin
              let i = t.cursor.(u) mod deg in
              t.cursor.(u) <- t.cursor.(u) + 1;
              i
            end
        | Random_contact ->
            if deg = 0 || not (informed t u) then -1 else Rng.int t.rngs.(u) deg
      in
      if idx >= 0 then begin
        let peer = col.(base + idx) in
        t.metrics.Engine.initiations <- t.metrics.Engine.initiations + 1;
        if t.faults.Engine.drop ~initiator:u ~responder:peer ~round then
          t.metrics.Engine.dropped <- t.metrics.Engine.dropped + 1
        else begin
          let latency = max 1 (t.faults.Engine.jitter ~latency:lat.(base + idx) ~round) in
          if latency >= t.wheel then
            (* An undeclared jitter overrunning the wheel is a failed
               run, not a harness crash: the typed exception lets a
               sweep record this job as [Failed] and keep going. *)
            raise (Jitter_overflow { latency; bound = t.wheel - 1; round });
          let req_pay =
            match t.protocol with
            | Push_pull -> if informed t u then 1 else 0
            | Flood | Random_contact -> 1
          in
          let ex = alloc t in
          t.ex_initiator.(ex) <- u;
          t.ex_responder.(ex) <- peer;
          t.ex_req_pay.(ex) <- req_pay;
          t.ex_resp_pay.(ex) <- 0;
          t.ex_due.(ex) <- round + latency;
          let arrival_slot = (round + ((latency + 1) / 2)) mod t.wheel in
          t.ex_next.(ex) <- t.arrival_head.(arrival_slot);
          t.arrival_head.(arrival_slot) <- ex
        end
      end
    end
  done;
  t.now <- round + 1;
  t.metrics.Engine.rounds <- t.metrics.Engine.rounds + 1;
  match t.tel with
  | None -> ()
  | Some tel ->
      Gossip_obs.Registry.observe tel.h_deliveries (t.metrics.Engine.deliveries - d0);
      Gossip_obs.Registry.observe tel.h_initiations (t.metrics.Engine.initiations - i0);
      Gossip_obs.Registry.observe tel.h_inflight t.in_flight;
      Gossip_obs.Registry.record_max tel.g_inflight t.in_flight;
      (match tel.tel_ring with
      | None -> ()
      | Some ring ->
          let ev kind value = Gossip_obs.Ring.record ring ~round ~kind ~node:(-1) ~value in
          ev Gossip_obs.Ring.kind_informed t.count;
          ev Gossip_obs.Ring.kind_deliveries (t.metrics.Engine.deliveries - d0);
          ev Gossip_obs.Ring.kind_initiations (t.metrics.Engine.initiations - i0);
          ev Gossip_obs.Ring.kind_drops (t.metrics.Engine.dropped - x0);
          ev Gossip_obs.Ring.kind_queue t.in_flight)

type result = { rounds : int option; metrics : metrics; history : (int * int) list }

let broadcast ?faults ?wheel_latency ?max_jitter ?deadline ?telemetry rng csr ~protocol
    ~source ~max_rounds =
  let t = create ?faults ?wheel_latency ?max_jitter ?telemetry rng csr ~protocol ~source in
  let n = Csr.n csr in
  let started = match deadline with None -> 0.0 | Some _ -> Unix.gettimeofday () in
  let history = ref [ (0, t.count) ] in
  let rec go () =
    if t.count = n then Some t.now
    else if t.now >= max_rounds then None
    else begin
      (* The wall-clock budget is cooperative and checked only between
         rounds: it can abort a run but never alters RNG draws or
         delivery order, so trajectory parity is untouched. *)
      (match deadline with
      | Some d ->
          let now = Unix.gettimeofday () in
          if now > d then
            raise (Deadline_exceeded { round = t.now; elapsed_s = now -. started })
      | None -> ());
      step t;
      let _, last = List.hd !history in
      if t.count <> last then history := (t.now, t.count) :: !history;
      go ()
    end
  in
  let rounds = go () in
  { rounds; metrics = t.metrics; history = List.rev !history }
