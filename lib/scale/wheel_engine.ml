module Rng = Gossip_util.Rng
module Engine = Gossip_sim.Engine

type protocol = Kernel.protocol =
  | Push_pull
  | Flood
  | Random_contact
  | Rr_spanner of { stretch_k : int }
  | Dtg_local of { ell : int }
  | Unknown_eid
  | Unified
  | K_rumor of { k : int; budget : int }
  | Rumor_rotation of { k : int; budget : int }
  | Algebraic of { k : int; budget : int }

let protocol_name = Kernel.protocol_name

let protocol_of_string = Kernel.protocol_of_string

let known_protocols = Kernel.known_protocols

type faults = Engine.faults

let no_faults = Engine.no_faults

type metrics = Engine.metrics

(* The dynamic-network environment: a time-indexed generalization of
   [faults].  Where [faults.jitter] sees only (latency, round), the
   environment's latency map also sees the edge's endpoints — the hook
   `lib/dyn` scenarios use to drift, modulate, or adversarially jitter
   specific edges.  Churn adds two notions the static plan lacks:
   [env_present_since] asks whether a node has been continuously
   present over an exchange's lifetime (an exchange binds to both
   endpoints' incarnations — a node that departed and came back must
   not receive stale traffic from its previous life), and [env_rejoin]
   marks the amnesia point where a returning node forgets the rumor.
   [env_has_churn] gates the per-round rejoin scan so churn-free
   environments pay nothing for it. *)
type env = {
  env_alive : node:int -> round:int -> bool;
  env_present_since : node:int -> since:int -> round:int -> bool;
  env_drop : initiator:int -> responder:int -> round:int -> bool;
  env_latency : u:int -> v:int -> latency:int -> round:int -> int;
  env_rejoin : node:int -> round:int -> bool;
  env_has_churn : bool;
}

(* A static fault plan is the trivial environment: presence over an
   interval collapses to liveness at the evaluation round, the latency
   map ignores the endpoints, nobody rejoins.  Every check below then
   computes exactly what the pre-environment engine computed, which is
   what keeps static runs bit-identical. *)
let env_of_faults (f : faults) =
  {
    env_alive = (fun ~node ~round -> f.Engine.alive ~node ~round);
    env_present_since = (fun ~node ~since:_ ~round -> f.Engine.alive ~node ~round);
    env_drop =
      (fun ~initiator ~responder ~round -> f.Engine.drop ~initiator ~responder ~round);
    env_latency = (fun ~u:_ ~v:_ ~latency ~round -> f.Engine.jitter ~latency ~round);
    env_rejoin = (fun ~node:_ ~round:_ -> false);
    env_has_churn = false;
  }

(* ?faults and ?env compose: the static plan filters first (its jitter
   feeds the environment's latency map), the environment decides
   presence over intervals and rejoins. *)
let compose_env (f : faults) (e : env) =
  if f == no_faults then e
  else
    {
      env_alive =
        (fun ~node ~round -> f.Engine.alive ~node ~round && e.env_alive ~node ~round);
      env_present_since =
        (fun ~node ~since ~round ->
          f.Engine.alive ~node ~round && e.env_present_since ~node ~since ~round);
      env_drop =
        (fun ~initiator ~responder ~round ->
          f.Engine.drop ~initiator ~responder ~round
          || e.env_drop ~initiator ~responder ~round);
      env_latency =
        (fun ~u ~v ~latency ~round ->
          e.env_latency ~u ~v ~latency:(f.Engine.jitter ~latency ~round) ~round);
      env_rejoin = e.env_rejoin;
      env_has_churn = e.env_has_churn;
    }

let resolve_env ?env faults =
  match env with None -> env_of_faults faults | Some e -> compose_env faults e

exception Jitter_overflow of { latency : int; bound : int; round : int }

exception Deadline_exceeded of { round : int; elapsed_s : float }

exception Pool_exhausted of { used : int; round : int }

let () =
  Printexc.register_printer (function
    | Pool_exhausted { used; round } ->
        Some
          (Printf.sprintf
             "Wheel_engine.Pool_exhausted: exchange pool exhausted at %d live exchanges in \
              round %d (raise ?pool_capacity or let the pool grow unbounded)"
             used round)
    | Jitter_overflow { latency; bound; round } ->
        Some
          (Printf.sprintf
             "Wheel_engine.Jitter_overflow: jittered latency %d exceeds the wheel bound %d \
              at round %d (declare the fault plan's maximum jitter via ?max_jitter)"
             latency bound round)
    | Deadline_exceeded { round; elapsed_s } ->
        Some
          (Printf.sprintf
             "Wheel_engine.Deadline_exceeded: wall-clock budget spent after %.3fs at round %d"
             elapsed_s round)
    | _ -> None)

(* The asserted ceiling for [wheel.minor_words_per_round] on static
   runs: the round loop is allocation-free by construction (no
   per-round closures, refs that escape, or boxed ints), and the only
   amortized allocations left — pool growth, history doubling — stay
   far below this once a run is more than a handful of rounds long.
   Tests, bench e18, and the CI smoke hard-fail against it. *)
let minor_words_budget = 64

(* Round to nearest, not truncate: the same bug class PR 3 fixed in
   [busy_us] and PR 8 in [crash_fraction] — [int_of_float] alone maps
   a 7.9-words/round loop to gauge 7. *)
let gauge_of_minor_words ~total ~rounds =
  int_of_float (Float.round (total /. float_of_int rounds))

(* Telemetry handles, resolved once at creation (see Engine.tel).  The
   kernel-tagged counters carry the kernel name in the metric name
   itself, so a JSONL report shows which kernel produced the run's
   traffic — and, since the rumor-state layer, how many payload words
   it put on the wire against its declared per-message bit budget. *)
type tel = {
  tel_ring : Gossip_obs.Ring.t option;
  h_deliveries : Gossip_obs.Registry.histogram;
  h_initiations : Gossip_obs.Registry.histogram;
  h_inflight : Gossip_obs.Registry.histogram;
  g_inflight : Gossip_obs.Registry.gauge;
  g_minor_words : Gossip_obs.Registry.gauge;
  c_kernel_deliveries : Gossip_obs.Registry.counter;
  c_kernel_initiations : Gossip_obs.Registry.counter;
  c_kernel_words : Gossip_obs.Registry.counter;
}

(* In-flight exchanges are pooled in parallel int32 columns (a
   structure of arrays — 4 bytes per field instead of a boxed word)
   and threaded into singly-linked lists by [ex_next]: one arrival
   list and one response list per wheel slot, plus a free list.  An
   exchange id is an index into the pool; [-1] terminates a list.
   Everything a column stores — node ids, payload bits, absolute
   rounds, row slots, pool indices — fits int32 by the CSR range
   contract plus the per-round due-date guard in [step]. *)
type t = {
  csr : Csr.t;
  kernel : Kernel.t;  (* protocol hooks + directed contact rows *)
  env : env;
  wheel : int;  (* slot count = wheel latency bound + 1 *)
  store : Rumor_store.t;  (* the kernel's completion state (one byte per node) *)
  mw : int;  (* kernel msg_words: payload words per message *)
  rngs : Rng.t array;  (* per-node streams; empty for rng-free kernels *)
  arrival_head : int array;  (* wheel slot -> exchange list *)
  response_head : int array;
  mutable ex_initiator : I32.t;
  mutable ex_responder : I32.t;
  mutable ex_req_pay : I32.t;  (* mw request words per exchange, at ex * mw *)
  mutable ex_resp_pay : I32.t;  (* mw response words per exchange, at ex * mw *)
  mutable ex_due : I32.t;  (* absolute response-due round *)
  mutable ex_init : I32.t;  (* initiation round, for presence-interval checks *)
  mutable ex_slot : I32.t;  (* contact-row slot [on_initiate] picked *)
  mutable ex_next : I32.t;
  mutable free_head : int;
  mutable pool_used : int;  (* high-water mark of allocated slots *)
  mutable in_flight : int;  (* live exchanges = wheel-slot occupancy *)
  pool_limit : int;  (* hard growth ceiling of the exchange pool *)
  metrics : metrics;
  tel : tel option;
  mutable now : int;
}

(* Validation and derived state shared by the sequential [create] and
   the sharded broadcast path, so both size the wheel, bound the pool,
   and split per-node RNG streams identically. *)
let wheel_bound ?wheel_latency ~max_jitter csr =
  if max_jitter < 0 then invalid_arg "Wheel_engine.create: max_jitter must be >= 0";
  match wheel_latency with
  | None -> Csr.max_latency csr + max_jitter
  | Some b ->
      if b < Csr.max_latency csr then
        invalid_arg "Wheel_engine.create: wheel_latency below the graph's ℓ_max";
      if b < Csr.max_latency csr + max_jitter then
        invalid_arg
          (Printf.sprintf
             "Wheel_engine.create: wheel_latency %d cannot hold the fault plan's maximum \
              jitter (ℓ_max %d + max_jitter %d = %d)"
             b (Csr.max_latency csr) max_jitter
             (Csr.max_latency csr + max_jitter));
      b

(* Pool indices live in int32 cells ([ex_next], the free list), so the
   growth ceiling is clamped to the int32 range — the pool raises the
   typed [Pool_exhausted] there instead of wrapping an index. *)
let pool_limit_of = function
  | None -> min Sys.max_array_length I32.max_value
  | Some c ->
      if c < 1 then invalid_arg "Wheel_engine.create: pool_capacity must be >= 1";
      min c I32.max_value

(* Per-node RNG streams are split in node order — the one and only
   split sequence, shared by every kernel and both runtimes, so a
   fixed caller seed reproduces a trajectory across all of them.
   Rng-free kernels (flood, rr-spanner, dtg) get no streams at all,
   keeping their runs byte-identical to the pre-kernel engine. *)
let make_rngs ~uses_rng rng n =
  if uses_rng then Array.init n (fun _ -> Rng.split rng) else [||]

let resolve_tel ~kernel_name ~msg_words telemetry =
  Option.map
    (fun reg ->
      (* The bit budget is declared state, not traffic: a gauge set
         once at resolution (32 payload bits per int32 word). *)
      Gossip_obs.Registry.set
        (Gossip_obs.Registry.gauge reg
           (Printf.sprintf "wheel.kernel.%s.bits_budget" kernel_name))
        (32 * msg_words);
      {
        tel_ring = Gossip_obs.Registry.ring reg;
        h_deliveries = Gossip_obs.Registry.histogram reg "wheel.round.deliveries";
        h_initiations = Gossip_obs.Registry.histogram reg "wheel.round.initiations";
        h_inflight = Gossip_obs.Registry.histogram reg "wheel.inflight";
        g_inflight = Gossip_obs.Registry.gauge reg "wheel.inflight.max";
        g_minor_words = Gossip_obs.Registry.gauge reg "wheel.minor_words_per_round";
        c_kernel_deliveries =
          Gossip_obs.Registry.counter reg
            (Printf.sprintf "wheel.kernel.%s.deliveries" kernel_name);
        c_kernel_initiations =
          Gossip_obs.Registry.counter reg
            (Printf.sprintf "wheel.kernel.%s.initiations" kernel_name);
        c_kernel_words =
          Gossip_obs.Registry.counter reg
            (Printf.sprintf "wheel.kernel.%s.words_on_wire" kernel_name);
      })
    telemetry

(* The kernel's contact rows must fit the wheel even under the fault
   plan's worst jitter; for kernels derived from [csr] this is
   automatic (their latencies are a subset), so the check only bites
   on caller-supplied orientations. *)
let check_contact ~bound ~max_jitter kernel csr =
  let contact = kernel.Kernel.contact in
  if Csr.oriented_n contact <> Csr.n csr then
    invalid_arg "Wheel_engine.create: kernel contact node count differs from the graph";
  if Csr.oriented_edge_count contact > 0
     && Csr.oriented_max_latency contact > bound - max_jitter
  then
    invalid_arg
      (Printf.sprintf
         "Wheel_engine.create: kernel contact latency %d exceeds the wheel bound %d \
          (graph ℓ_max %d + max_jitter %d)"
         (Csr.oriented_max_latency contact)
         (bound - max_jitter) (Csr.max_latency csr) max_jitter)

(* Kernel-side validation shared by both runtimes: the store must
   cover the graph, and the declared payload budget must be positive
   and fit a mailbox reservation (the int32-safe ceiling — a kernel
   whose per-message word count could not even be reserved in a
   cross-shard column raises the same typed overflow the reservation
   itself would). *)
let check_kernel_shape ~n kernel =
  if Rumor_store.capacity kernel.Kernel.store <> n then
    invalid_arg "Wheel_engine.create: kernel store capacity differs from the node count";
  let mw = kernel.Kernel.msg_words in
  if mw < 1 then invalid_arg "Wheel_engine.create: kernel msg_words must be >= 1";
  if mw > Shard.Buf.max_capacity then
    raise (Shard.Buf_overflow { need = mw; limit = Shard.Buf.max_capacity });
  mw

(* Seed the kernel's store: an optional initial informed set (EID
   chains phases by handing one kernel's result bytes to the next —
   the bytes are read, never shared) plus the broadcast source.  For
   classic kernels seeding marks (single-rumor semantics); multi-rumor
   kernels seed their rumor state at construction and their on_seed
   hook decides whether a node is already completed. *)
let seed_store ?informed ~n ~source store =
  (match informed with
  | None -> ()
  | Some src ->
      if Bytes.length src <> n then
        invalid_arg "Wheel_engine.create: ?informed length differs from the node count";
      for v = 0 to n - 1 do
        if Bytes.get src v <> '\000' then Rumor_store.seed store v
      done);
  Rumor_store.seed store source

let create_kernel ?(faults = no_faults) ?env ?wheel_latency ?(max_jitter = 0) ?telemetry
    ?pool_capacity ?informed rng csr ~kernel ~source =
  let n = Csr.n csr in
  if source < 0 || source >= n then invalid_arg "Wheel_engine.create: source out of range";
  let bound = wheel_bound ?wheel_latency ~max_jitter csr in
  check_contact ~bound ~max_jitter kernel csr;
  let mw = check_kernel_shape ~n kernel in
  let pool_limit = pool_limit_of pool_capacity in
  let store = kernel.Kernel.store in
  seed_store ?informed ~n ~source store;
  let rngs = make_rngs ~uses_rng:kernel.Kernel.uses_rng rng n in
  let cap = min (max 1024 n) pool_limit in
  {
    csr;
    kernel;
    env = resolve_env ?env faults;
    wheel = bound + 1;
    store;
    mw;
    rngs;
    arrival_head = Array.make (bound + 1) (-1);
    response_head = Array.make (bound + 1) (-1);
    ex_initiator = I32.make cap 0;
    ex_responder = I32.make cap 0;
    ex_req_pay = I32.make (cap * mw) 0;
    ex_resp_pay = I32.make (cap * mw) 0;
    ex_due = I32.make cap 0;
    ex_init = I32.make cap 0;
    ex_slot = I32.make cap 0;
    ex_next = I32.make cap (-1);
    free_head = -1;
    pool_used = 0;
    in_flight = 0;
    pool_limit;
    metrics =
      { rounds = 0; initiations = 0; deliveries = 0; payload_words = 0; rejected = 0; dropped = 0 };
    tel = resolve_tel ~kernel_name:kernel.Kernel.name ~msg_words:mw telemetry;
    now = 0;
  }

let create ?faults ?env ?wheel_latency ?max_jitter ?telemetry ?pool_capacity ?informed rng
    csr ~protocol ~source =
  create_kernel ?faults ?env ?wheel_latency ?max_jitter ?telemetry ?pool_capacity ?informed
    rng csr
    ~kernel:(Kernel.of_protocol csr protocol)
    ~source

let graph t = t.csr

let current_round t = t.now

let metrics t = t.metrics

(* "Informed" in the engine's vocabulary now means "completed the
   kernel's dissemination goal" — the store's byte, which for classic
   kernels is exactly the old informed bit. *)
let informed t u = Rumor_store.completed t.store u

let informed_count t = Rumor_store.count t.store

let mark t v = Rumor_store.mark t.store v

(* A rejoining node comes back with amnesia: the kernel's forget hook
   resets its rumor state and its completed bit (if any) is cleared,
   so it must reach the goal again in its new incarnation. *)
let unmark t v = Rumor_store.forget t.store v

let grow t =
  let old = I32.length t.ex_next in
  let cap = min (2 * old) t.pool_limit in
  (* Hitting the ceiling is a failed run, not a harness crash: the
     typed exception (with a registered printer) lets [Sweep.run_ft]
     checkpoint the job as [Failed] with a useful message. *)
  if cap = old then raise (Pool_exhausted { used = t.pool_used; round = t.now });
  let extend w a =
    let b = I32.make (cap * w) 0 in
    I32.blit ~src:a ~dst:b (old * w);
    b
  in
  t.ex_initiator <- extend 1 t.ex_initiator;
  t.ex_responder <- extend 1 t.ex_responder;
  t.ex_req_pay <- extend t.mw t.ex_req_pay;
  t.ex_resp_pay <- extend t.mw t.ex_resp_pay;
  t.ex_due <- extend 1 t.ex_due;
  t.ex_init <- extend 1 t.ex_init;
  t.ex_slot <- extend 1 t.ex_slot;
  t.ex_next <- extend 1 t.ex_next

let alloc t =
  t.in_flight <- t.in_flight + 1;
  if t.free_head >= 0 then begin
    let e = t.free_head in
    t.free_head <- I32.get t.ex_next e;
    e
  end
  else begin
    if t.pool_used >= I32.length t.ex_next then grow t;
    let e = t.pool_used in
    t.pool_used <- t.pool_used + 1;
    e
  end

let free t e =
  t.in_flight <- t.in_flight - 1;
  I32.set t.ex_next e t.free_head;
  t.free_head <- e

(* The round loop is allocation-free: environment and kernel hooks are
   called directly (no per-round [alive]/[present] closures), loop
   cursors are non-escaping refs (unboxed by the compiler), and every
   pool access goes through the int32 columns, whose reads compile
   without boxing.  [minor_words_budget] is the enforced witness. *)
let step t =
  let round = t.now in
  (* Due dates [round + latency <= round + wheel - 1] must fit the
     pool's int32 cells; reject the run that could wrap rather than
     store a wrapped due round.  One compare per round. *)
  if round > I32.max_value - t.wheel then
    raise (I32.Overflow { what = "exchange due round"; value = round + t.wheel });
  let d0 = t.metrics.Engine.deliveries
  and i0 = t.metrics.Engine.initiations
  and x0 = t.metrics.Engine.dropped
  and p0 = t.metrics.Engine.payload_words in
  let slot = round mod t.wheel in
  (* Phase 0: churned nodes scheduled to rejoin this round come back
     with amnesia — the kernel's forget hook resets their rumor state
     and the completed bit is cleared before any of this round's
     deliveries, so stale in-flight traffic (already doomed by the
     presence-interval checks below) cannot re-complete them and the
     informed count stays an honest census of current incarnations. *)
  if t.env.env_has_churn then begin
    let n = Csr.n t.csr in
    for v = 0 to n - 1 do
      if t.env.env_rejoin ~node:v ~round then unmark t v
    done
  end;
  (* Phase 1a: every response due to be generated this round reads the
     informed set as of the start of the round — before any of this
     round's push merges — matching Engine.step's sub-phase ordering.
     Requests whose responder is crashed are lost here, answer and
     all.  An exchange is delivered only while both endpoints remain
     in the incarnation that initiated it; for a static environment
     that is plain liveness at [round]. *)
  let e = ref t.arrival_head.(slot) in
  while !e >= 0 do
    let ex = !e in
    let responder = I32.get t.ex_responder ex in
    if t.env.env_present_since ~node:responder ~since:(I32.get t.ex_init ex) ~round then
      t.kernel.Kernel.on_deliver ~v:responder ~informed:(informed t responder)
        ~buf:t.ex_resp_pay ~off:(ex * t.mw);
    e := I32.get t.ex_next ex
  done;
  (* Phase 1b: merge the pushed rumor bits and park each surviving
     exchange on the response list of its due slot (for latency-1
     edges that is this very slot, delivered below in 1c). *)
  let e = ref t.arrival_head.(slot) in
  t.arrival_head.(slot) <- -1;
  while !e >= 0 do
    let ex = !e in
    let next = I32.get t.ex_next ex in
    let responder = I32.get t.ex_responder ex in
    if t.env.env_present_since ~node:responder ~since:(I32.get t.ex_init ex) ~round then begin
      t.metrics.Engine.deliveries <- t.metrics.Engine.deliveries + 1;
      t.metrics.Engine.payload_words <- t.metrics.Engine.payload_words + t.mw;
      if t.kernel.Kernel.on_push ~v:responder ~buf:t.ex_req_pay ~off:(ex * t.mw) then
        mark t responder;
      let due_slot = I32.get t.ex_due ex mod t.wheel in
      I32.set t.ex_next ex t.response_head.(due_slot);
      t.response_head.(due_slot) <- ex
    end
    else begin
      t.metrics.Engine.dropped <- t.metrics.Engine.dropped + 1;
      free t ex
    end;
    e := next
  done;
  (* Phase 1c: deliver responses due this round; a crashed initiator
     cannot receive. *)
  let e = ref t.response_head.(slot) in
  t.response_head.(slot) <- -1;
  while !e >= 0 do
    let ex = !e in
    let next = I32.get t.ex_next ex in
    let initiator = I32.get t.ex_initiator ex in
    if t.env.env_present_since ~node:initiator ~since:(I32.get t.ex_init ex) ~round then begin
      t.metrics.Engine.deliveries <- t.metrics.Engine.deliveries + 1;
      t.metrics.Engine.payload_words <- t.metrics.Engine.payload_words + t.mw;
      if
        t.kernel.Kernel.on_response ~u:initiator ~slot:(I32.get t.ex_slot ex)
          ~rtt:(I32.get t.ex_due ex - I32.get t.ex_init ex)
          ~buf:t.ex_resp_pay ~off:(ex * t.mw)
      then mark t initiator
    end
    else t.metrics.Engine.dropped <- t.metrics.Engine.dropped + 1;
    free t ex;
    e := next
  done;
  (* Phase 2: initiations in ascending node order over the kernel's
     directed contact rows.  [on_initiate] is the only point where a
     kernel may consume randomness or advance a cursor, so the RNG
     discipline the handler-based protocols established is preserved
     verbatim: push-pull draws one uniform neighbor index per node per
     round (whether informed or not), flooding advances a
     deterministic cursor, random-contact draws only when informed. *)
  let contact = t.kernel.Kernel.contact in
  let row_ptr = contact.Csr.o_row_ptr
  and col = contact.Csr.o_col
  and lat = contact.Csr.o_lat in
  let n = Csr.n t.csr in
  for u = 0 to n - 1 do
    if t.env.env_alive ~node:u ~round then begin
      let base = I32.get row_ptr u in
      let deg = I32.get row_ptr (u + 1) - base in
      let informed_u = informed t u in
      let idx =
        t.kernel.Kernel.on_initiate ~rngs:t.rngs ~round ~u ~deg ~informed:informed_u
      in
      if idx >= 0 then begin
        let peer = I32.get col (base + idx) in
        t.metrics.Engine.initiations <- t.metrics.Engine.initiations + 1;
        if t.env.env_drop ~initiator:u ~responder:peer ~round then
          t.metrics.Engine.dropped <- t.metrics.Engine.dropped + 1
        else begin
          let latency =
            max 1 (t.env.env_latency ~u ~v:peer ~latency:(I32.get lat (base + idx)) ~round)
          in
          if latency >= t.wheel then
            (* An undeclared jitter overrunning the wheel is a failed
               run, not a harness crash: the typed exception lets a
               sweep record this job as [Failed] and keep going. *)
            raise (Jitter_overflow { latency; bound = t.wheel - 1; round });
          let ex = alloc t in
          I32.set t.ex_initiator ex u;
          I32.set t.ex_responder ex peer;
          (* Payload words are zeroed before the emission hook runs —
             the hook-contract's "words arrive zeroed" — covering pool
             reuse after a free. *)
          let pb = ex * t.mw in
          for w = 0 to t.mw - 1 do
            I32.set t.ex_req_pay (pb + w) 0;
            I32.set t.ex_resp_pay (pb + w) 0
          done;
          t.kernel.Kernel.req_pay ~u ~informed:informed_u ~buf:t.ex_req_pay ~off:pb;
          I32.set t.ex_due ex (round + latency);
          I32.set t.ex_init ex round;
          I32.set t.ex_slot ex idx;
          let arrival_slot = (round + ((latency + 1) / 2)) mod t.wheel in
          I32.set t.ex_next ex t.arrival_head.(arrival_slot);
          t.arrival_head.(arrival_slot) <- ex
        end
      end
    end
  done;
  t.now <- round + 1;
  t.metrics.Engine.rounds <- t.metrics.Engine.rounds + 1;
  match t.tel with
  | None -> ()
  | Some tel ->
      Gossip_obs.Registry.observe tel.h_deliveries (t.metrics.Engine.deliveries - d0);
      Gossip_obs.Registry.observe tel.h_initiations (t.metrics.Engine.initiations - i0);
      Gossip_obs.Registry.add tel.c_kernel_deliveries (t.metrics.Engine.deliveries - d0);
      Gossip_obs.Registry.add tel.c_kernel_initiations (t.metrics.Engine.initiations - i0);
      Gossip_obs.Registry.add tel.c_kernel_words (t.metrics.Engine.payload_words - p0);
      Gossip_obs.Registry.observe tel.h_inflight t.in_flight;
      Gossip_obs.Registry.record_max tel.g_inflight t.in_flight;
      (match tel.tel_ring with
      | None -> ()
      | Some ring ->
          Gossip_obs.Ring.record ring ~round ~kind:Gossip_obs.Ring.kind_informed
            ~node:(-1) ~value:(Rumor_store.count t.store);
          Gossip_obs.Ring.record ring ~round ~kind:Gossip_obs.Ring.kind_deliveries
            ~node:(-1)
            ~value:(t.metrics.Engine.deliveries - d0);
          Gossip_obs.Ring.record ring ~round ~kind:Gossip_obs.Ring.kind_initiations
            ~node:(-1)
            ~value:(t.metrics.Engine.initiations - i0);
          Gossip_obs.Ring.record ring ~round ~kind:Gossip_obs.Ring.kind_drops ~node:(-1)
            ~value:(t.metrics.Engine.dropped - x0);
          Gossip_obs.Ring.record ring ~round ~kind:Gossip_obs.Ring.kind_queue ~node:(-1)
            ~value:t.in_flight)

type result = {
  rounds : int option;
  metrics : metrics;
  history : (int * int) list;
  informed : Bytes.t;
}

(* The informed-count history, accumulated into growable int arrays
   during the measured loop (a cons per change would charge two-plus
   words per round to the allocation gauge) and converted to the
   result's association list only after the gauge is read. *)
type hist = {
  mutable h_round : int array;
  mutable h_count : int array;
  mutable h_len : int;
}

let hist_create round count =
  let h = { h_round = Array.make 64 0; h_count = Array.make 64 0; h_len = 1 } in
  h.h_round.(0) <- round;
  h.h_count.(0) <- count;
  h

let hist_push h round count =
  if h.h_len = Array.length h.h_round then begin
    let cap = 2 * h.h_len in
    let nr = Array.make cap 0 and nc = Array.make cap 0 in
    Array.blit h.h_round 0 nr 0 h.h_len;
    Array.blit h.h_count 0 nc 0 h.h_len;
    h.h_round <- nr;
    h.h_count <- nc
  end;
  h.h_round.(h.h_len) <- round;
  h.h_count.(h.h_len) <- count;
  h.h_len <- h.h_len + 1

let hist_last_count h = h.h_count.(h.h_len - 1)

let hist_to_list h = List.init h.h_len (fun i -> (h.h_round.(i), h.h_count.(i)))

let broadcast_seq ?faults ?env ?wheel_latency ?max_jitter ?deadline ?on_round ?telemetry
    ?pool_capacity ?informed rng csr ~kernel ~source ~max_rounds =
  let t =
    create_kernel ?faults ?env ?wheel_latency ?max_jitter ?telemetry ?pool_capacity ?informed
      rng csr ~kernel ~source
  in
  let n = Csr.n csr in
  let started = match deadline with None -> 0.0 | Some _ -> Unix.gettimeofday () in
  let minor0 = match t.tel with None -> 0.0 | Some _ -> Gc.minor_words () in
  let history = hist_create 0 (informed_count t) in
  let rec go () =
    if informed_count t = n then Some t.now
    else if t.now >= max_rounds then None
    else begin
      (* The wall-clock budget is cooperative and checked only between
         rounds: it can abort a run but never alters RNG draws or
         delivery order, so trajectory parity is untouched. *)
      (match deadline with
      | Some d ->
          let now = Unix.gettimeofday () in
          if now > d then
            raise (Deadline_exceeded { round = t.now; elapsed_s = now -. started })
      | None -> ());
      step t;
      (* Like the deadline, the observer runs strictly between rounds:
         it reads counts the engine already committed and can abort the
         run by raising, but can never perturb the trajectory. *)
      (match on_round with
      | Some f -> f ~round:t.now ~informed:(informed_count t)
      | None -> ());
      if informed_count t <> hist_last_count history then
        hist_push history t.now (informed_count t);
      go ()
    end
  in
  let rounds = go () in
  (* Per-round minor-allocation gauge (ROADMAP item 3: the watchdog for
     an allocation-free round loop).  Measured across the whole round
     loop — including history bookkeeping — on the static path. *)
  (match t.tel with
  | Some tel when t.metrics.Engine.rounds > 0 ->
      Gossip_obs.Registry.set tel.g_minor_words
        (gauge_of_minor_words
           ~total:(Gc.minor_words () -. minor0)
           ~rounds:t.metrics.Engine.rounds)
  | _ -> ());
  {
    rounds;
    metrics = t.metrics;
    history = hist_to_list history;
    informed = Rumor_store.bytes t.store;
  }

(* ------------------------------------------------------------------ *)
(* Domain-sharded broadcast.                                          *)
(*                                                                    *)
(* Nodes are partitioned into [k] contiguous shards (Shard.bounds);   *)
(* each shard owns its own exchange pool, arrival/response wheels,    *)
(* informed-byte slice, and RNG streams, so a round splits into two   *)
(* parallel stages separated by barriers:                             *)
(*                                                                    *)
(*   stage 1 (responder side): drain initiation mailboxes addressed   *)
(*     to this shard in ascending source-shard order, then phases     *)
(*     1a/1b of the sequential engine.  Responses whose initiator     *)
(*     lives elsewhere go to a response mailbox.                      *)
(*   -- barrier --                                                    *)
(*   stage 2 (initiator side): drain response mailboxes in ascending  *)
(*     source-shard order, then phase 1c and phase 2.  Initiations    *)
(*     toward a foreign responder go to an initiation mailbox,        *)
(*     drained at the next round's stage 1.                           *)
(*   -- barrier + serial merge --                                     *)
(*                                                                    *)
(* Determinism: every within-phase effect is order-independent        *)
(* (informed marks are idempotent, counters are commutative sums,     *)
(* response payloads are fixed in 1a from round-start state), every   *)
(* informed-byte access is own-shard-only, and each node's RNG        *)
(* stream is private to its owner — so for a pure fault plan the      *)
(* trajectory, metrics, and RNG consumption are bit-identical to the  *)
(* sequential wheel for any k and any domain schedule.                *)
(* ------------------------------------------------------------------ *)

type shard = {
  s_id : int;
  s_lo : int;
  s_hi : int;  (* owns nodes [s_lo, s_hi) *)
  s_arrival : int array;
  s_response : int array;
  mutable s_initiator : I32.t;
  mutable s_responder : I32.t;
  mutable s_req_pay : I32.t;  (* mw words per exchange, at ex * mw *)
  mutable s_resp_pay : I32.t;  (* mw words per exchange, at ex * mw *)
  s_scratch : I32.t;  (* mw words: req_pay staging for remote initiations *)
  mutable s_due : I32.t;
  mutable s_init : I32.t;
  mutable s_slot : I32.t;
  mutable s_next : I32.t;
  mutable s_free : int;
  mutable s_pool_used : int;
  mutable s_in_flight : int;
  mutable s_count : int;  (* informed nodes owned by this shard *)
  (* run-cumulative counters, summed by the merge *)
  mutable s_deliveries : int;
  mutable s_initiations : int;
  mutable s_dropped : int;
  mutable s_payload : int;
  (* first failure this round: (stage rank, node, exn); the merge
     picks the lexicographic minimum so the surfaced exception matches
     the sequential engine's first-in-phase-order failure *)
  mutable s_fail : (int * int * exn) option;
  mutable s_at : int;  (* node the shard is currently processing *)
  s_reg : Gossip_obs.Registry.t;  (* per-shard registry, merged at the end *)
  s_c_remote_inits : Gossip_obs.Registry.counter;
  s_c_remote_resps : Gossip_obs.Registry.counter;
}

(* Cross-shard mailboxes are structure-of-arrays: one int32 column
   ({!Shard.Buf}) per record field.  Record [i] of a mailbox is cell
   [i] of each scalar column — except the payload column, which
   carries [msg_words] cells per record (record [i]'s words start at
   [i * msg_words]), so multi-word kernels cross shard boundaries
   without any per-message boxing. *)
let init_cols = 7 (* initiator responder req_pay due arr_slot init_round slot *)

let resp_cols = 5 (* initiator resp_pay due init_round slot *)

type shared = {
  sh_csr : Csr.t;
  sh_kernel : Kernel.t;  (* one instance, owner-only per-node state access *)
  sh_env : env;
  sh_wheel : int;
  sh_mw : int;  (* kernel msg_words: payload words per message *)
  sh_informed : Bytes.t;  (* the store's bytes; disjoint per-shard slices *)
  sh_rngs : Rng.t array;
  sh_k : int;
  sh_pool_limit : int;
  (* per-(src shard, dst shard) mailboxes at [src * k + dst]; written
     in one stage, drained after a barrier, so no locking is needed *)
  sh_init_mail : Shard.Buf.t array array;
  sh_resp_mail : Shard.Buf.t array array;
}

let make_shard ctx id lo hi =
  let n_own = hi - lo in
  let cap = min (max 1024 n_own) ctx.sh_pool_limit in
  let reg = Gossip_obs.Registry.create () in
  {
    s_id = id;
    s_lo = lo;
    s_hi = hi;
    s_arrival = Array.make ctx.sh_wheel (-1);
    s_response = Array.make ctx.sh_wheel (-1);
    s_initiator = I32.make cap 0;
    s_responder = I32.make cap 0;
    s_req_pay = I32.make (cap * ctx.sh_mw) 0;
    s_resp_pay = I32.make (cap * ctx.sh_mw) 0;
    s_scratch = I32.make ctx.sh_mw 0;
    s_due = I32.make cap 0;
    s_init = I32.make cap 0;
    s_slot = I32.make cap 0;
    s_next = I32.make cap (-1);
    s_free = -1;
    s_pool_used = 0;
    s_in_flight = 0;
    s_count = 0;
    s_deliveries = 0;
    s_initiations = 0;
    s_dropped = 0;
    s_payload = 0;
    s_fail = None;
    s_at = lo;
    s_reg = reg;
    s_c_remote_inits = Gossip_obs.Registry.counter reg "wheel.shard.remote.initiations";
    s_c_remote_resps = Gossip_obs.Registry.counter reg "wheel.shard.remote.responses";
  }

let s_grow ctx sh round =
  let old = I32.length sh.s_next in
  let cap = min (2 * old) ctx.sh_pool_limit in
  if cap = old then raise (Pool_exhausted { used = sh.s_pool_used; round });
  let extend w a =
    let b = I32.make (cap * w) 0 in
    I32.blit ~src:a ~dst:b (old * w);
    b
  in
  sh.s_initiator <- extend 1 sh.s_initiator;
  sh.s_responder <- extend 1 sh.s_responder;
  sh.s_req_pay <- extend ctx.sh_mw sh.s_req_pay;
  sh.s_resp_pay <- extend ctx.sh_mw sh.s_resp_pay;
  sh.s_due <- extend 1 sh.s_due;
  sh.s_init <- extend 1 sh.s_init;
  sh.s_slot <- extend 1 sh.s_slot;
  sh.s_next <- extend 1 sh.s_next

let s_alloc ctx sh round =
  sh.s_in_flight <- sh.s_in_flight + 1;
  if sh.s_free >= 0 then begin
    let e = sh.s_free in
    sh.s_free <- I32.get sh.s_next e;
    e
  end
  else begin
    if sh.s_pool_used >= I32.length sh.s_next then s_grow ctx sh round;
    let e = sh.s_pool_used in
    sh.s_pool_used <- sh.s_pool_used + 1;
    e
  end

let s_free_ex sh e =
  sh.s_in_flight <- sh.s_in_flight - 1;
  I32.set sh.s_next e sh.s_free;
  sh.s_free <- e

let s_mark ctx sh v =
  if Bytes.get ctx.sh_informed v = '\000' then begin
    Bytes.set ctx.sh_informed v '\001';
    sh.s_count <- sh.s_count + 1
  end

(* Stage 1: mailbox drain + phases 1a/1b on the responder's shard. *)
let stage1 ctx sh round =
  sh.s_at <- sh.s_lo;
  let k = ctx.sh_k in
  let slot = round mod ctx.sh_wheel in
  (* Phase 0 (churn): rejoin-with-amnesia over this shard's own nodes,
     mirroring the sequential engine's pre-delivery scan.  The
     kernel's forget hook runs for every rejoiner — a multi-rumor node
     can hold partial state without being completed — and store bytes
     are own-shard-only, so this is race-free and the merge's count
     sum stays exact. *)
  if ctx.sh_env.env_has_churn then begin
    let st = ctx.sh_kernel.Kernel.store in
    for v = sh.s_lo to sh.s_hi - 1 do
      if ctx.sh_env.env_rejoin ~node:v ~round then begin
        Rumor_store.forget_state st v;
        if Bytes.get ctx.sh_informed v <> '\000' then begin
          Bytes.set ctx.sh_informed v '\000';
          sh.s_count <- sh.s_count - 1
        end
      end
    done
  end;
  for src = 0 to k - 1 do
    let m = ctx.sh_init_mail.((src * k) + sh.s_id) in
    let c_initiator = m.(0)
    and c_responder = m.(1)
    and c_req_pay = m.(2)
    and c_due = m.(3)
    and c_arr_slot = m.(4)
    and c_init_round = m.(5)
    and c_slot = m.(6) in
    let mw = ctx.sh_mw in
    let len = Shard.Buf.length c_initiator in
    for i = 0 to len - 1 do
      let ex = s_alloc ctx sh round in
      I32.set sh.s_initiator ex (Shard.Buf.unsafe_get c_initiator i);
      I32.set sh.s_responder ex (Shard.Buf.unsafe_get c_responder i);
      let pb = ex * mw and mb = i * mw in
      for w = 0 to mw - 1 do
        I32.set sh.s_req_pay (pb + w) (Shard.Buf.unsafe_get c_req_pay (mb + w));
        I32.set sh.s_resp_pay (pb + w) 0
      done;
      I32.set sh.s_due ex (Shard.Buf.unsafe_get c_due i);
      let arr_slot = Shard.Buf.unsafe_get c_arr_slot i in
      I32.set sh.s_init ex (Shard.Buf.unsafe_get c_init_round i);
      I32.set sh.s_slot ex (Shard.Buf.unsafe_get c_slot i);
      I32.set sh.s_next ex sh.s_arrival.(arr_slot);
      sh.s_arrival.(arr_slot) <- ex
    done;
    for c = 0 to init_cols - 1 do
      Shard.Buf.clear m.(c)
    done
  done;
  (* 1a: responses read the informed set as of the start of the round,
     before any of this round's push merges. *)
  let e = ref sh.s_arrival.(slot) in
  while !e >= 0 do
    let ex = !e in
    let responder = I32.get sh.s_responder ex in
    if ctx.sh_env.env_present_since ~node:responder ~since:(I32.get sh.s_init ex) ~round
    then
      ctx.sh_kernel.Kernel.on_deliver ~v:responder
        ~informed:(Bytes.get ctx.sh_informed responder <> '\000')
        ~buf:sh.s_resp_pay ~off:(ex * ctx.sh_mw);
    e := I32.get sh.s_next ex
  done;
  (* 1b: merge pushed bits; park the response at its due slot, or ship
     it to the initiator's shard. *)
  let e = ref sh.s_arrival.(slot) in
  sh.s_arrival.(slot) <- -1;
  while !e >= 0 do
    let ex = !e in
    let next = I32.get sh.s_next ex in
    let responder = I32.get sh.s_responder ex in
    if ctx.sh_env.env_present_since ~node:responder ~since:(I32.get sh.s_init ex) ~round
    then begin
      let mw = ctx.sh_mw in
      sh.s_deliveries <- sh.s_deliveries + 1;
      sh.s_payload <- sh.s_payload + mw;
      if ctx.sh_kernel.Kernel.on_push ~v:responder ~buf:sh.s_req_pay ~off:(ex * mw) then
        s_mark ctx sh responder;
      let initiator = I32.get sh.s_initiator ex in
      let due_slot = I32.get sh.s_due ex mod ctx.sh_wheel in
      let dst = Shard.owner ~n:(Csr.n ctx.sh_csr) ~k initiator in
      if dst = sh.s_id then begin
        I32.set sh.s_next ex sh.s_response.(due_slot);
        sh.s_response.(due_slot) <- ex
      end
      else begin
        let m = ctx.sh_resp_mail.((sh.s_id * k) + dst) in
        Shard.Buf.push m.(0) initiator;
        let b = Shard.Buf.reserve m.(1) mw in
        for w = 0 to mw - 1 do
          Shard.Buf.set m.(1) (b + w) (I32.get sh.s_resp_pay ((ex * mw) + w))
        done;
        Shard.Buf.push m.(2) (I32.get sh.s_due ex);
        Shard.Buf.push m.(3) (I32.get sh.s_init ex);
        Shard.Buf.push m.(4) (I32.get sh.s_slot ex);
        s_free_ex sh ex;
        Gossip_obs.Registry.incr sh.s_c_remote_resps
      end
    end
    else begin
      sh.s_dropped <- sh.s_dropped + 1;
      s_free_ex sh ex
    end;
    e := next
  done

(* Stage 2, first half: response-mailbox drain + phase 1c on the
   initiator's shard. *)
let stage2_deliver ctx sh round =
  sh.s_at <- sh.s_lo;
  let k = ctx.sh_k in
  let slot = round mod ctx.sh_wheel in
  for src = 0 to k - 1 do
    let m = ctx.sh_resp_mail.((src * k) + sh.s_id) in
    let c_initiator = m.(0)
    and c_resp_pay = m.(1)
    and c_due = m.(2)
    and c_init_round = m.(3)
    and c_slot = m.(4) in
    let mw = ctx.sh_mw in
    let len = Shard.Buf.length c_initiator in
    for i = 0 to len - 1 do
      let ex = s_alloc ctx sh round in
      I32.set sh.s_initiator ex (Shard.Buf.unsafe_get c_initiator i);
      let pb = ex * mw and mb = i * mw in
      for w = 0 to mw - 1 do
        I32.set sh.s_resp_pay (pb + w) (Shard.Buf.unsafe_get c_resp_pay (mb + w))
      done;
      let due = Shard.Buf.unsafe_get c_due i in
      I32.set sh.s_due ex due;
      I32.set sh.s_init ex (Shard.Buf.unsafe_get c_init_round i);
      I32.set sh.s_slot ex (Shard.Buf.unsafe_get c_slot i);
      let due_slot = due mod ctx.sh_wheel in
      I32.set sh.s_next ex sh.s_response.(due_slot);
      sh.s_response.(due_slot) <- ex
    done;
    for c = 0 to resp_cols - 1 do
      Shard.Buf.clear m.(c)
    done
  done;
  let e = ref sh.s_response.(slot) in
  sh.s_response.(slot) <- -1;
  while !e >= 0 do
    let ex = !e in
    let next = I32.get sh.s_next ex in
    let initiator = I32.get sh.s_initiator ex in
    if ctx.sh_env.env_present_since ~node:initiator ~since:(I32.get sh.s_init ex) ~round
    then begin
      sh.s_deliveries <- sh.s_deliveries + 1;
      sh.s_payload <- sh.s_payload + ctx.sh_mw;
      if
        ctx.sh_kernel.Kernel.on_response ~u:initiator ~slot:(I32.get sh.s_slot ex)
          ~rtt:(I32.get sh.s_due ex - I32.get sh.s_init ex)
          ~buf:sh.s_resp_pay ~off:(ex * ctx.sh_mw)
      then s_mark ctx sh initiator
    end
    else sh.s_dropped <- sh.s_dropped + 1;
    s_free_ex sh ex;
    e := next
  done

(* Stage 2, second half: phase 2 initiations over the shard's own
   nodes, in ascending node order. *)
let stage2_initiate ctx sh round =
  let k = ctx.sh_k in
  let n = Csr.n ctx.sh_csr in
  (* Same int32 due-date guard as the sequential [step]. *)
  if round > I32.max_value - ctx.sh_wheel then
    raise (I32.Overflow { what = "exchange due round"; value = round + ctx.sh_wheel });
  let contact = ctx.sh_kernel.Kernel.contact in
  let row_ptr = contact.Csr.o_row_ptr
  and col = contact.Csr.o_col
  and lat = contact.Csr.o_lat in
  for u = sh.s_lo to sh.s_hi - 1 do
    sh.s_at <- u;
    if ctx.sh_env.env_alive ~node:u ~round then begin
      let base = I32.get row_ptr u in
      let deg = I32.get row_ptr (u + 1) - base in
      let informed_u = Bytes.get ctx.sh_informed u <> '\000' in
      let idx =
        ctx.sh_kernel.Kernel.on_initiate ~rngs:ctx.sh_rngs ~round ~u ~deg
          ~informed:informed_u
      in
      if idx >= 0 then begin
        let peer = I32.get col (base + idx) in
        sh.s_initiations <- sh.s_initiations + 1;
        if ctx.sh_env.env_drop ~initiator:u ~responder:peer ~round then
          sh.s_dropped <- sh.s_dropped + 1
        else begin
          let latency =
            max 1
              (ctx.sh_env.env_latency ~u ~v:peer ~latency:(I32.get lat (base + idx)) ~round)
          in
          if latency >= ctx.sh_wheel then
            raise (Jitter_overflow { latency; bound = ctx.sh_wheel - 1; round });
          let mw = ctx.sh_mw in
          let due = round + latency in
          let arr_slot = (round + ((latency + 1) / 2)) mod ctx.sh_wheel in
          let dst = Shard.owner ~n ~k peer in
          if dst = sh.s_id then begin
            let ex = s_alloc ctx sh round in
            I32.set sh.s_initiator ex u;
            I32.set sh.s_responder ex peer;
            let pb = ex * mw in
            for w = 0 to mw - 1 do
              I32.set sh.s_req_pay (pb + w) 0;
              I32.set sh.s_resp_pay (pb + w) 0
            done;
            ctx.sh_kernel.Kernel.req_pay ~u ~informed:informed_u ~buf:sh.s_req_pay ~off:pb;
            I32.set sh.s_due ex due;
            I32.set sh.s_init ex round;
            I32.set sh.s_slot ex idx;
            I32.set sh.s_next ex sh.s_arrival.(arr_slot);
            sh.s_arrival.(arr_slot) <- ex
          end
          else begin
            (* The emission hook writes into the shard's scratch run,
               then the words are copied into the mailbox column — the
               hook never sees a Buf, only flat I32 words. *)
            for w = 0 to mw - 1 do
              I32.set sh.s_scratch w 0
            done;
            ctx.sh_kernel.Kernel.req_pay ~u ~informed:informed_u ~buf:sh.s_scratch ~off:0;
            let m = ctx.sh_init_mail.((sh.s_id * k) + dst) in
            Shard.Buf.push m.(0) u;
            Shard.Buf.push m.(1) peer;
            let b = Shard.Buf.reserve m.(2) mw in
            for w = 0 to mw - 1 do
              Shard.Buf.set m.(2) (b + w) (I32.get sh.s_scratch w)
            done;
            Shard.Buf.push m.(3) due;
            Shard.Buf.push m.(4) arr_slot;
            Shard.Buf.push m.(5) round;
            Shard.Buf.push m.(6) idx;
            Gossip_obs.Registry.incr sh.s_c_remote_inits
          end
        end
      end
    end
  done

(* The stage guard is a top-level five-argument function — passing the
   stage itself as a value keeps the worker loop free of the per-round
   [fun () -> stage ...] closures the boxed engine allocated. *)
let guard sh rank f ctx r =
  try f ctx sh r with e -> if sh.s_fail = None then sh.s_fail <- Some (rank, sh.s_at, e)

type control = {
  mutable c_round : int;  (* rounds fully executed *)
  mutable c_count : int;
  mutable c_stop : bool;
  mutable c_rounds : int option;
  mutable c_fail : exn option;
  c_hist : hist;
  (* merge scratch, written only inside the serial merge — mutable
     fields instead of local refs so the merge allocates nothing *)
  mutable c_worst : (int * int * exn) option;
  mutable c_deliveries : int;
  mutable c_initiations : int;
  mutable c_dropped : int;
  mutable c_payload : int;
  mutable c_sum : int;
  mutable c_in_flight : int;
  mutable c_prev_d : int;
  mutable c_prev_i : int;
  mutable c_prev_x : int;
  mutable c_prev_p : int;
}

let broadcast_sharded ~k ?(faults = no_faults) ?env ?wheel_latency ?(max_jitter = 0)
    ?deadline ?on_round ?telemetry ?pool_capacity ?informed rng csr ~kernel ~source
    ~max_rounds =
  let n = Csr.n csr in
  if source < 0 || source >= n then invalid_arg "Wheel_engine.create: source out of range";
  let bound = wheel_bound ?wheel_latency ~max_jitter csr in
  check_contact ~bound ~max_jitter kernel csr;
  let mw = check_kernel_shape ~n kernel in
  let store = kernel.Kernel.store in
  seed_store ?informed ~n ~source store;
  let informed = Rumor_store.bytes store in
  let count0 = Rumor_store.count store in
  let ctx =
    {
      sh_csr = csr;
      sh_kernel = kernel;
      sh_env = resolve_env ?env faults;
      sh_wheel = bound + 1;
      sh_mw = mw;
      sh_informed = informed;
      sh_rngs = make_rngs ~uses_rng:kernel.Kernel.uses_rng rng n;
      sh_k = k;
      sh_pool_limit = pool_limit_of pool_capacity;
      sh_init_mail =
        Array.init (k * k) (fun _ -> Array.init init_cols (fun _ -> Shard.Buf.create ()));
      sh_resp_mail =
        Array.init (k * k) (fun _ -> Array.init resp_cols (fun _ -> Shard.Buf.create ()));
    }
  in
  let bounds = Shard.bounds ~n ~k in
  let shards = Array.init k (fun i -> make_shard ctx i bounds.(i) bounds.(i + 1)) in
  Array.iter
    (fun sh ->
      let c = ref 0 in
      for v = sh.s_lo to sh.s_hi - 1 do
        if Bytes.get informed v <> '\000' then incr c
      done;
      sh.s_count <- !c)
    shards;
  let metrics =
    { Engine.rounds = 0; initiations = 0; deliveries = 0; payload_words = 0; rejected = 0;
      dropped = 0 }
  in
  let tel = resolve_tel ~kernel_name:kernel.Kernel.name ~msg_words:mw telemetry in
  (match telemetry with
  | Some reg -> Gossip_obs.Registry.set (Gossip_obs.Registry.gauge reg "wheel.shards") k
  | None -> ());
  let started = match deadline with None -> 0.0 | Some _ -> Unix.gettimeofday () in
  let ctl =
    { c_round = 0; c_count = count0; c_stop = false; c_rounds = None; c_fail = None;
      c_hist = hist_create 0 count0; c_worst = None; c_deliveries = 0; c_initiations = 0;
      c_dropped = 0; c_payload = 0; c_sum = 0; c_in_flight = 0; c_prev_d = 0; c_prev_i = 0;
      c_prev_x = 0; c_prev_p = 0 }
  in
  (* Pre-loop checks, in the sequential engine's precedence order. *)
  if ctl.c_count = n then ctl.c_rounds <- Some 0
  else if max_rounds <= 0 then ctl.c_rounds <- None
  else begin
    (match deadline with
    | Some d ->
        let now = Unix.gettimeofday () in
        if now > d then raise (Deadline_exceeded { round = 0; elapsed_s = now -. started })
    | None -> ());
    let bar1 = Shard.Barrier.create k and bar2 = Shard.Barrier.create k in
    let merge () =
      let r = ctl.c_round in
      (* First failure in stage order.  [c_worst] reuses the shards'
         own [Some] blocks, so the scan allocates only when a round
         actually failed. *)
      ctl.c_worst <- None;
      for i = 0 to k - 1 do
        let sh = shards.(i) in
        match (sh.s_fail, ctl.c_worst) with
        | None, _ -> ()
        | Some _, None -> ctl.c_worst <- sh.s_fail
        | Some f, Some w -> if f < w then ctl.c_worst <- sh.s_fail
      done;
      match ctl.c_worst with
      | Some (_, _, e) ->
          ctl.c_fail <- Some e;
          ctl.c_stop <- true
      | None ->
          ctl.c_deliveries <- 0;
          ctl.c_initiations <- 0;
          ctl.c_dropped <- 0;
          ctl.c_payload <- 0;
          ctl.c_sum <- 0;
          ctl.c_in_flight <- 0;
          for i = 0 to k - 1 do
            let sh = shards.(i) in
            ctl.c_deliveries <- ctl.c_deliveries + sh.s_deliveries;
            ctl.c_initiations <- ctl.c_initiations + sh.s_initiations;
            ctl.c_dropped <- ctl.c_dropped + sh.s_dropped;
            ctl.c_payload <- ctl.c_payload + sh.s_payload;
            ctl.c_sum <- ctl.c_sum + sh.s_count;
            ctl.c_in_flight <- ctl.c_in_flight + sh.s_in_flight
          done;
          (* Cross-shard initiations parked in mailboxes are live
             exchanges the sequential engine would have allocated in
             phase 2 — count them so the in-flight telemetry matches. *)
          for i = 0 to (k * k) - 1 do
            ctl.c_in_flight <-
              ctl.c_in_flight + Shard.Buf.length ctx.sh_init_mail.(i).(0)
          done;
          metrics.Engine.deliveries <- ctl.c_deliveries;
          metrics.Engine.initiations <- ctl.c_initiations;
          metrics.Engine.dropped <- ctl.c_dropped;
          metrics.Engine.payload_words <- ctl.c_payload;
          metrics.Engine.rounds <- r + 1;
          ctl.c_round <- r + 1;
          if ctl.c_sum <> ctl.c_count then hist_push ctl.c_hist (r + 1) ctl.c_sum;
          ctl.c_count <- ctl.c_sum;
          (match tel with
          | None -> ()
          | Some tel ->
              Gossip_obs.Registry.observe tel.h_deliveries (ctl.c_deliveries - ctl.c_prev_d);
              Gossip_obs.Registry.observe tel.h_initiations
                (ctl.c_initiations - ctl.c_prev_i);
              Gossip_obs.Registry.add tel.c_kernel_deliveries
                (ctl.c_deliveries - ctl.c_prev_d);
              Gossip_obs.Registry.add tel.c_kernel_initiations
                (ctl.c_initiations - ctl.c_prev_i);
              Gossip_obs.Registry.add tel.c_kernel_words (ctl.c_payload - ctl.c_prev_p);
              Gossip_obs.Registry.observe tel.h_inflight ctl.c_in_flight;
              Gossip_obs.Registry.record_max tel.g_inflight ctl.c_in_flight;
              (match tel.tel_ring with
              | None -> ()
              | Some ring ->
                  Gossip_obs.Ring.record ring ~round:r ~kind:Gossip_obs.Ring.kind_informed
                    ~node:(-1) ~value:ctl.c_count;
                  Gossip_obs.Ring.record ring ~round:r
                    ~kind:Gossip_obs.Ring.kind_deliveries ~node:(-1)
                    ~value:(ctl.c_deliveries - ctl.c_prev_d);
                  Gossip_obs.Ring.record ring ~round:r
                    ~kind:Gossip_obs.Ring.kind_initiations ~node:(-1)
                    ~value:(ctl.c_initiations - ctl.c_prev_i);
                  Gossip_obs.Ring.record ring ~round:r ~kind:Gossip_obs.Ring.kind_drops
                    ~node:(-1)
                    ~value:(ctl.c_dropped - ctl.c_prev_x);
                  Gossip_obs.Ring.record ring ~round:r ~kind:Gossip_obs.Ring.kind_queue
                    ~node:(-1) ~value:ctl.c_in_flight));
          ctl.c_prev_d <- ctl.c_deliveries;
          ctl.c_prev_i <- ctl.c_initiations;
          ctl.c_prev_x <- ctl.c_dropped;
          ctl.c_prev_p <- ctl.c_payload;
          (* The observer runs inside the serial merge — one domain at
             a time, strictly between rounds, counts already committed
             — so it is exactly as trajectory-neutral as in the
             sequential engine.  A raising observer aborts the run the
             way an expired deadline does. *)
          (match on_round with
          | Some f -> (
              try f ~round:(r + 1) ~informed:ctl.c_count
              with e ->
                ctl.c_fail <- Some e;
                ctl.c_stop <- true)
          | None -> ());
          if ctl.c_stop then ()
          else if ctl.c_count = n then begin
            ctl.c_rounds <- Some (r + 1);
            ctl.c_stop <- true
          end
          else if r + 1 >= max_rounds then begin
            ctl.c_rounds <- None;
            ctl.c_stop <- true
          end
          else
            match deadline with
            | Some d ->
                let now = Unix.gettimeofday () in
                if now > d then begin
                  ctl.c_fail <-
                    Some (Deadline_exceeded { round = r + 1; elapsed_s = now -. started });
                  ctl.c_stop <- true
                end
            | None -> ()
    in
    let worker sh =
      while not ctl.c_stop do
        let r = ctl.c_round in
        guard sh 0 stage1 ctx r;
        Shard.Barrier.await bar1;
        guard sh 1 stage2_deliver ctx r;
        guard sh 2 stage2_initiate ctx r;
        Shard.Barrier.await_serial bar2 merge
      done
    in
    let minor0 = match tel with None -> 0.0 | Some _ -> Gc.minor_words () in
    let domains =
      Array.init (k - 1) (fun i -> Domain.spawn (fun () -> worker shards.(i + 1)))
    in
    worker shards.(0);
    Array.iter Domain.join domains;
    (* Same gauge as the sequential path, measured from the
       orchestrating domain's minor heap (shard 0 + serial merges). *)
    (match tel with
    | Some tel when metrics.Engine.rounds > 0 ->
        Gossip_obs.Registry.set tel.g_minor_words
          (gauge_of_minor_words
             ~total:(Gc.minor_words () -. minor0)
             ~rounds:metrics.Engine.rounds)
    | _ -> ());
    (* Merge per-shard registries (cross-shard traffic counters) into
       the caller's registry once the run is over. *)
    (match telemetry with
    | Some reg -> Array.iter (fun sh -> Gossip_obs.Registry.merge ~into:reg sh.s_reg) shards
    | None -> ())
  end;
  (* During the run the store's count was shard-local (s_count); the
     merged total becomes the store's count once the domains joined,
     so Kernel.completed_count agrees with the result. *)
  Rumor_store.set_count store ctl.c_count;
  (match ctl.c_fail with Some e -> raise e | None -> ());
  { rounds = ctl.c_rounds; metrics; history = hist_to_list ctl.c_hist; informed }

let broadcast_kernel ?faults ?env ?wheel_latency ?max_jitter ?deadline ?on_round ?telemetry
    ?pool_capacity ?informed ?(domains = 1) rng csr ~kernel ~source ~max_rounds =
  if domains < 1 then invalid_arg "Wheel_engine.broadcast: domains must be >= 1";
  let k = min domains (Csr.n csr) in
  if k <= 1 then
    broadcast_seq ?faults ?env ?wheel_latency ?max_jitter ?deadline ?on_round ?telemetry
      ?pool_capacity ?informed rng csr ~kernel ~source ~max_rounds
  else
    broadcast_sharded ~k ?faults ?env ?wheel_latency ?max_jitter ?deadline ?on_round
      ?telemetry ?pool_capacity ?informed rng csr ~kernel ~source ~max_rounds

let broadcast ?faults ?env ?wheel_latency ?max_jitter ?deadline ?on_round ?telemetry
    ?pool_capacity ?informed ?domains rng csr ~protocol ~source ~max_rounds =
  broadcast_kernel ?faults ?env ?wheel_latency ?max_jitter ?deadline ?on_round ?telemetry
    ?pool_capacity ?informed ?domains rng csr
    ~kernel:(Kernel.of_protocol csr protocol)
    ~source ~max_rounds
