(* Flat int32 storage for the scale runtime's hot state.

   A Bigarray.Array1 of int32 costs 4 bytes per element against the 8
   bytes of a boxed-int [int array] element, and its payload lives
   outside the OCaml heap, so the GC never scans it.  The accessors
   below convert at the boundary: [Int32.to_int] composed directly
   over [Bigarray.Array1.get] compiles without materializing a boxed
   [int32] in native code, which is what keeps the round loop
   allocation-free (see the [wheel.minor_words_per_round] budget in
   the tests and bench e18). *)

type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Overflow of { what : string; value : int }

let () =
  Printexc.register_printer (function
    | Overflow { what; value } ->
        Some
          (Printf.sprintf
             "Gossip_scale.I32.Overflow: %s %d falls outside the int32 range of the \
              compact layout (the CSR/exchange-pool contract caps node ids, latencies, \
              and row_ptr entries at %ld)"
             what value Int32.max_int)
    | _ -> None)

let max_value = Int32.to_int Int32.max_int

(* [check what v] admits exactly the values an int32 cell can hold;
   anything else raises the typed error instead of silently wrapping
   through [Int32.of_int]. *)
let check what v = if v < 0 || v > max_value then raise (Overflow { what; value = v })

let make len v =
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len in
  Bigarray.Array1.fill a (Int32.of_int v);
  a

let length (a : t) = Bigarray.Array1.dim a

let get (a : t) i = Int32.to_int (Bigarray.Array1.get a i)

let set (a : t) i v = Bigarray.Array1.set a i (Int32.of_int v)

let unsafe_get (a : t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

let unsafe_set (a : t) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let fill (a : t) v = Bigarray.Array1.fill a (Int32.of_int v)

let blit ~src ~dst len =
  Bigarray.Array1.blit
    (Bigarray.Array1.sub src 0 len)
    (Bigarray.Array1.sub dst 0 len)

let of_int_array ~what src =
  let len = Array.length src in
  let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len in
  for i = 0 to len - 1 do
    check what src.(i);
    set a i src.(i)
  done;
  a

let to_int_array a = Array.init (length a) (fun i -> get a i)

let equal (a : t) (b : t) = a = b

(* Payload bytes only — headers are accounted by the callers that
   build memory tables (Csr.memory_words). *)
let memory_bytes a = 4 * length a
