module Rng = Gossip_util.Rng

(* ------------------------------------------------------------------ *)
(* Protocol descriptors *)

type protocol =
  | Push_pull
  | Flood
  | Random_contact
  | Rr_spanner of { stretch_k : int }
  | Dtg_local of { ell : int }

let protocol_name = function
  | Push_pull -> "push-pull"
  | Flood -> "flood"
  | Random_contact -> "random-contact"
  | Rr_spanner { stretch_k } ->
      if stretch_k = 0 then "rr-spanner" else Printf.sprintf "rr-spanner:%d" stretch_k
  | Dtg_local { ell } -> if ell = 0 then "dtg" else Printf.sprintf "dtg:%d" ell

(* "name" or "name:K" with K >= 1; K absent encodes the auto value 0. *)
let parse_param s prefix make =
  let pl = String.length prefix and sl = String.length s in
  if sl >= pl && String.sub s 0 pl = prefix then
    if sl = pl then Some (make 0)
    else if s.[pl] = ':' then
      match int_of_string_opt (String.sub s (pl + 1) (sl - pl - 1)) with
      | Some v when v >= 1 -> Some (make v)
      | _ -> None
    else None
  else None

let protocol_of_string s =
  match s with
  | "push-pull" -> Some Push_pull
  | "flood" -> Some Flood
  | "random-contact" -> Some Random_contact
  | _ -> (
      match parse_param s "rr-spanner" (fun k -> Rr_spanner { stretch_k = k }) with
      | Some p -> Some p
      | None -> parse_param s "dtg" (fun l -> Dtg_local { ell = l }))

let known_protocols =
  [ "push-pull"; "flood"; "random-contact"; "rr-spanner[:K]"; "dtg[:L]" ]

(* ------------------------------------------------------------------ *)
(* The kernel interface *)

type t = {
  name : string;
  contact : Csr.oriented;
  uses_rng : bool;
  on_initiate : rngs:Rng.t array -> round:int -> u:int -> deg:int -> informed:bool -> int;
  req_pay : informed:bool -> int;
  on_deliver : informed:bool -> int;
  on_response : pay:int -> bool;
}

let name t = t.name

let contact t = t.contact

(* The engine-generic halves of the classic exchange: responses carry
   the responder's round-start informed bit, a payload bit of 1 marks
   the receiver.  Kept as shared closures so kernels that want the
   default pay exactly the same indirect call. *)
let informed_bit ~informed = if informed then 1 else 0

let always_one ~informed:_ = 1

let mark_if_pay ~pay = pay = 1

let push_pull csr =
  {
    name = "push-pull";
    contact = Csr.oriented_of_csr csr;
    uses_rng = true;
    on_initiate =
      (fun ~rngs ~round:_ ~u ~deg ~informed:_ -> if deg = 0 then -1 else Rng.int rngs.(u) deg);
    req_pay = informed_bit;
    on_deliver = informed_bit;
    on_response = mark_if_pay;
  }

let flood csr =
  let cursor = Array.make (Csr.n csr) 0 in
  {
    name = "flood";
    contact = Csr.oriented_of_csr csr;
    uses_rng = false;
    on_initiate =
      (fun ~rngs:_ ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = always_one;
    on_deliver = informed_bit;
    on_response = mark_if_pay;
  }

let random_contact csr =
  {
    name = "random-contact";
    contact = Csr.oriented_of_csr csr;
    uses_rng = true;
    on_initiate =
      (fun ~rngs ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1 else Rng.int rngs.(u) deg);
    req_pay = always_one;
    on_deliver = informed_bit;
    on_response = mark_if_pay;
  }

let rr_broadcast ?iterations ~k oriented =
  if k < 1 then invalid_arg "Kernel.rr_broadcast: need k >= 1";
  let usable = Csr.oriented_filter_le oriented k in
  let iterations =
    match iterations with
    | Some i ->
        if i < 0 then invalid_arg "Kernel.rr_broadcast: iterations must be >= 0";
        i
    | None -> max_int
  in
  let cursor = Array.make (Csr.oriented_n usable) 0 in
  {
    name = "rr-spanner";
    contact = usable;
    uses_rng = false;
    on_initiate =
      (fun ~rngs:_ ~round ~u ~deg ~informed:_ ->
        if round >= iterations || deg = 0 then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = informed_bit;
    on_deliver = informed_bit;
    on_response = mark_if_pay;
  }

let dtg_local ~ell csr =
  if ell < 1 then invalid_arg "Kernel.dtg_local: need ell >= 1";
  let contact = Csr.oriented_filter_le (Csr.oriented_of_csr csr) ell in
  let cursor = Array.make (Csr.n csr) 0 in
  {
    name = "dtg";
    contact;
    uses_rng = false;
    on_initiate =
      (fun ~rngs:_ ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = always_one;
    on_deliver = informed_bit;
    on_response = mark_if_pay;
  }

let of_protocol csr = function
  | Push_pull -> push_pull csr
  | Flood -> flood csr
  | Random_contact -> random_contact csr
  | Dtg_local { ell } -> dtg_local ~ell:(if ell = 0 then Csr.max_latency csr else ell) csr
  | Rr_spanner _ ->
      invalid_arg
        "Kernel.of_protocol: rr-spanner needs a precomputed oriented spanner — build one \
         with Gossip_core.Spanner.build, pack it with Csr.of_oriented_spanner, and run \
         Kernel.rr_broadcast through Wheel_engine.broadcast_kernel (Sweep.run_job and \
         gossip-cli run --protocol rr-spanner do this)"
