module Rng = Gossip_util.Rng

(* ------------------------------------------------------------------ *)
(* Protocol descriptors *)

type protocol =
  | Push_pull
  | Flood
  | Random_contact
  | Rr_spanner of { stretch_k : int }
  | Dtg_local of { ell : int }
  | Unknown_eid
  | Unified
  | K_rumor of { k : int; budget : int }
  | Rumor_rotation of { k : int; budget : int }
  | Algebraic of { k : int; budget : int }

(* Minimal printing keeps names injective on descriptors: a trailing
   auto parameter (0) is omitted, but an explicit budget forces the k
   field out too ("k-rumor:0:2" = auto k, budget 2). *)
let rumor_name base k budget =
  if budget = 0 then
    if k = 0 then base else Printf.sprintf "%s:%d" base k
  else Printf.sprintf "%s:%d:%d" base k budget

let protocol_name = function
  | Push_pull -> "push-pull"
  | Flood -> "flood"
  | Random_contact -> "random-contact"
  | Rr_spanner { stretch_k } ->
      if stretch_k = 0 then "rr-spanner" else Printf.sprintf "rr-spanner:%d" stretch_k
  | Dtg_local { ell } -> if ell = 0 then "dtg" else Printf.sprintf "dtg:%d" ell
  | Unknown_eid -> "unknown-eid"
  | Unified -> "unified"
  | K_rumor { k; budget } -> rumor_name "k-rumor" k budget
  | Rumor_rotation { k; budget } -> rumor_name "rotation" k budget
  | Algebraic { k; budget } -> rumor_name "algebraic" k budget

(* "name" or "name:K" with K >= 1; K absent encodes the auto value 0. *)
let parse_param s prefix make =
  let pl = String.length prefix and sl = String.length s in
  if sl >= pl && String.sub s 0 pl = prefix then
    if sl = pl then Some (make 0)
    else if s.[pl] = ':' then
      match int_of_string_opt (String.sub s (pl + 1) (sl - pl - 1)) with
      | Some v when v >= 1 -> Some (make v)
      | _ -> None
    else None
  else None

(* "name", "name:K", or "name:K:B" with K, B >= 0 (0 = auto). *)
let parse_param2 s prefix make =
  let pl = String.length prefix and sl = String.length s in
  if sl >= pl && String.sub s 0 pl = prefix then
    if sl = pl then Some (make 0 0)
    else if s.[pl] = ':' then
      match String.split_on_char ':' (String.sub s (pl + 1) (sl - pl - 1)) with
      | [ ks ] -> (
          match int_of_string_opt ks with
          | Some k when k >= 0 -> Some (make k 0)
          | _ -> None)
      | [ ks; bs ] -> (
          match (int_of_string_opt ks, int_of_string_opt bs) with
          | Some k, Some b when k >= 0 && b >= 0 -> Some (make k b)
          | _ -> None)
      | _ -> None
    else None
  else None

let protocol_of_string s =
  match s with
  | "push-pull" -> Some Push_pull
  | "flood" -> Some Flood
  | "random-contact" -> Some Random_contact
  | "unknown-eid" -> Some Unknown_eid
  | "unified" -> Some Unified
  | _ -> (
      let ( <|> ) a b = match a with Some _ -> a | None -> b () in
      parse_param s "rr-spanner" (fun k -> Rr_spanner { stretch_k = k })
      <|> fun () ->
      parse_param s "dtg" (fun l -> Dtg_local { ell = l })
      <|> fun () ->
      parse_param2 s "k-rumor" (fun k budget -> K_rumor { k; budget })
      <|> fun () ->
      parse_param2 s "rotation" (fun k budget -> Rumor_rotation { k; budget })
      <|> fun () -> parse_param2 s "algebraic" (fun k budget -> Algebraic { k; budget }))

let known_protocols =
  [
    "push-pull";
    "flood";
    "random-contact";
    "rr-spanner[:K]";
    "dtg[:L]";
    "unknown-eid";
    "unified";
    "k-rumor[:K[:B]]";
    "rotation[:K[:B]]";
    "algebraic[:K[:B]]";
  ]

(* ------------------------------------------------------------------ *)
(* The kernel interface *)

type t = {
  name : string;
  contact : Csr.oriented;
  uses_rng : bool;
  msg_words : int;
  store : Rumor_store.t;
  on_initiate : rngs:Rng.t array -> round:int -> u:int -> deg:int -> informed:bool -> int;
  req_pay : u:int -> informed:bool -> buf:I32.t -> off:int -> unit;
  on_deliver : v:int -> informed:bool -> buf:I32.t -> off:int -> unit;
  on_push : v:int -> buf:I32.t -> off:int -> bool;
  on_response : u:int -> slot:int -> rtt:int -> buf:I32.t -> off:int -> bool;
}

let name t = t.name

let contact t = t.contact

let store t = t.store

let completed t v = Rumor_store.completed t.store v

let completed_count t = Rumor_store.count t.store

(* The engine-generic halves of the classic exchange: responses carry
   the responder's round-start informed bit, a payload word of 1 marks
   the receiver (request side in phase 1b, response side in phase 1c).
   Payload words arrive zeroed, so emitters only write the 1 case.
   Kept as shared closures so kernels that want the default pay exactly
   the same indirect call. *)
let req_informed ~u:_ ~informed ~buf ~off = if informed then I32.set buf off 1

let req_always ~u:_ ~informed:_ ~buf ~off = I32.set buf off 1

let deliver_informed ~v:_ ~informed ~buf ~off = if informed then I32.set buf off 1

let push_if_pay ~v:_ ~buf ~off = I32.get buf off = 1

let mark_if_pay ~u:_ ~slot:_ ~rtt:_ ~buf ~off = I32.get buf off = 1

let push_pull csr =
  {
    name = "push-pull";
    contact = Csr.oriented_of_csr csr;
    uses_rng = true;
    msg_words = 1;
    store = Rumor_store.create (Csr.n csr);
    on_initiate =
      (fun ~rngs ~round:_ ~u ~deg ~informed:_ -> if deg = 0 then -1 else Rng.int rngs.(u) deg);
    req_pay = req_informed;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let flood csr =
  let cursor = Array.make (Csr.n csr) 0 in
  {
    name = "flood";
    contact = Csr.oriented_of_csr csr;
    uses_rng = false;
    msg_words = 1;
    store = Rumor_store.create (Csr.n csr);
    on_initiate =
      (fun ~rngs:_ ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = req_always;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let random_contact csr =
  {
    name = "random-contact";
    contact = Csr.oriented_of_csr csr;
    uses_rng = true;
    msg_words = 1;
    store = Rumor_store.create (Csr.n csr);
    on_initiate =
      (fun ~rngs ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1 else Rng.int rngs.(u) deg);
    req_pay = req_always;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let rr_broadcast ?iterations ~k oriented =
  if k < 1 then invalid_arg "Kernel.rr_broadcast: need k >= 1";
  let usable = Csr.oriented_filter_le oriented k in
  let iterations =
    match iterations with
    | Some i ->
        if i < 0 then invalid_arg "Kernel.rr_broadcast: iterations must be >= 0";
        i
    | None -> max_int
  in
  let cursor = Array.make (Csr.oriented_n usable) 0 in
  {
    name = "rr-spanner";
    contact = usable;
    uses_rng = false;
    msg_words = 1;
    store = Rumor_store.create (Csr.oriented_n usable);
    on_initiate =
      (fun ~rngs:_ ~round ~u ~deg ~informed:_ ->
        if round >= iterations || deg = 0 then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = req_informed;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let dtg_local ~ell csr =
  if ell < 1 then invalid_arg "Kernel.dtg_local: need ell >= 1";
  let contact = Csr.oriented_filter_le (Csr.oriented_of_csr csr) ell in
  let cursor = Array.make (Csr.n csr) 0 in
  {
    name = "dtg";
    contact;
    uses_rng = false;
    msg_words = 1;
    store = Rumor_store.create (Csr.n csr);
    on_initiate =
      (fun ~rngs:_ ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = req_always;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

(* ------------------------------------------------------------------ *)
(* The k-rumor family (ROADMAP item 2): k rumors seeded one per node
   (all-to-all when k = n), per-node rumor state owned by the kernel,
   completion = "holds all k".  Two subset kernels share the flat
   rumor-set state below; the GF(2) network-coding kernel follows.

   Emission (req_pay / on_deliver) reads only round-start-stable state:
   the held-rumor bits of the emitting node (no absorb into it happens
   before its 1a/phase-2 hooks in either runtime) plus a selector
   cursor advanced only in on_initiate.  Absorption (on_push /
   on_response) is an idempotent monotone OR into the receiving node's
   own bits, so drain order cannot change end-of-round state — the
   shard-parity discipline the classic informed bytes follow. *)

type rumor_set = { rs_k : int; rs_bpr : int; rs_has : Bytes.t; rs_cnt : int array }

let rs_make ~k n =
  let bpr = (k + 7) / 8 in
  { rs_k = k; rs_bpr = bpr; rs_has = Bytes.make (n * bpr) '\000'; rs_cnt = Array.make n 0 }

let rs_holds rs v r =
  Char.code (Bytes.unsafe_get rs.rs_has ((v * rs.rs_bpr) + (r lsr 3))) land (1 lsl (r land 7))
  <> 0

let rs_learn rs v r =
  let i = (v * rs.rs_bpr) + (r lsr 3) in
  let b = Char.code (Bytes.unsafe_get rs.rs_has i) in
  let m = 1 lsl (r land 7) in
  if b land m = 0 then begin
    Bytes.unsafe_set rs.rs_has i (Char.unsafe_chr (b lor m));
    rs.rs_cnt.(v) <- rs.rs_cnt.(v) + 1
  end

(* Churn amnesia: a rejoining node keeps only its own rumor. *)
let rs_reset rs v =
  Bytes.fill rs.rs_has (v * rs.rs_bpr) rs.rs_bpr '\000';
  rs.rs_cnt.(v) <- 0;
  if v < rs.rs_k then rs_learn rs v v

let rs_absorb rs ~budget v buf off =
  for w = 0 to budget - 1 do
    let word = I32.get buf (off + w) in
    if word > 0 then rs_learn rs v (word - 1)
  done;
  rs.rs_cnt.(v) = rs.rs_k

(* Seed rumor j at node j and build the kernel-owned store around the
   "holds all k" completion predicate. *)
let rs_seeded_store rs n =
  let store =
    Rumor_store.create n
      ~on_seed:(fun v -> rs.rs_cnt.(v) = rs.rs_k)
      ~on_forget:(fun v -> rs_reset rs v)
  in
  for j = 0 to rs.rs_k - 1 do
    rs_learn rs j j;
    if rs.rs_cnt.(j) = rs.rs_k then Rumor_store.mark store j
  done;
  store

let check_rumor_args ~fn ~k ~budget n =
  if k < 1 || k > n then
    invalid_arg (Printf.sprintf "Kernel.%s: need 1 <= k <= n (k = %d, n = %d)" fn k n);
  if budget < 1 then invalid_arg (Printf.sprintf "Kernel.%s: need budget >= 1" fn)

type rumor = { rum_kernel : t; rum_holds : v:int -> r:int -> bool; rum_count : v:int -> int }

let k_rumor_push_pull ~k ~budget csr =
  let n = Csr.n csr in
  check_rumor_args ~fn:"k_rumor_push_pull" ~k ~budget n;
  let rs = rs_make ~k n in
  let store = rs_seeded_store rs n in
  (* sel.(u) is the cyclic scan start for u's next emissions, redrawn
     every round in on_initiate — a random rumor subset within budget,
     stable across the round for both the request and response sides. *)
  let sel = Array.make n 0 in
  let emit u buf off =
    let w = ref 0 and p = ref sel.(u) and scanned = ref 0 in
    while !w < budget && !scanned < k do
      if rs_holds rs u !p then begin
        I32.set buf (off + !w) (!p + 1);
        incr w
      end;
      p := if !p + 1 = k then 0 else !p + 1;
      incr scanned
    done
  in
  let absorb v buf off = rs_absorb rs ~budget v buf off in
  let rum_kernel =
    {
      name = "k-rumor";
      contact = Csr.oriented_of_csr csr;
      uses_rng = true;
      msg_words = budget;
      store;
      on_initiate =
        (fun ~rngs ~round:_ ~u ~deg ~informed:_ ->
          let i = if deg = 0 then -1 else Rng.int rngs.(u) deg in
          sel.(u) <- Rng.int rngs.(u) k;
          i);
      req_pay = (fun ~u ~informed:_ ~buf ~off -> emit u buf off);
      on_deliver = (fun ~v ~informed:_ ~buf ~off -> emit v buf off);
      on_push = (fun ~v ~buf ~off -> absorb v buf off);
      on_response = (fun ~u ~slot:_ ~rtt:_ ~buf ~off -> absorb u buf off);
    }
  in
  {
    rum_kernel;
    rum_holds = (fun ~v ~r -> rs_holds rs v r);
    rum_count = (fun ~v -> rs.rs_cnt.(v));
  }

let rumor_rotation ~k ~budget csr =
  let n = Csr.n csr in
  check_rumor_args ~fn:"rumor_rotation" ~k ~budget n;
  let rs = rs_make ~k n in
  let store = rs_seeded_store rs n in
  (* Dufoulon-style rotation: the emission window slides by budget
     positions per round, so every held rumor is on the wire within
     ceil(k/budget) rounds.  The window schedule is deterministic but
     the contact is a uniform random neighbor — a deterministic
     neighbor cursor would alias with the rotation period (both cycles
     advance once per round), freezing each rumor onto the fixed
     neighbor subset {c + t*gcd(ceil(k/budget), deg)} and disconnecting
     the per-rumor contact graph whenever the gcd exceeds 1. *)
  let pos = Array.make n 0 in
  let window = min budget k in
  let emit u buf off =
    let w = ref 0 in
    for j = 0 to window - 1 do
      let p = (pos.(u) + j) mod k in
      if rs_holds rs u p then begin
        I32.set buf (off + !w) (p + 1);
        incr w
      end
    done
  in
  let absorb v buf off = rs_absorb rs ~budget v buf off in
  let rum_kernel =
    {
      name = "rotation";
      contact = Csr.oriented_of_csr csr;
      uses_rng = true;
      msg_words = budget;
      store;
      on_initiate =
        (fun ~rngs ~round:_ ~u ~deg ~informed:_ ->
          pos.(u) <- (pos.(u) + budget) mod k;
          if deg = 0 then -1 else Rng.int rngs.(u) deg);
      req_pay = (fun ~u ~informed:_ ~buf ~off -> emit u buf off);
      on_deliver = (fun ~v ~informed:_ ~buf ~off -> emit v buf off);
      on_push = (fun ~v ~buf ~off -> absorb v buf off);
      on_response = (fun ~u ~slot:_ ~rtt:_ ~buf ~off -> absorb u buf off);
    }
  in
  {
    rum_kernel;
    rum_holds = (fun ~v ~r -> rs_holds rs v r);
    rum_count = (fun ~v -> rs.rs_cnt.(v));
  }

(* ------------------------------------------------------------------ *)
(* Algebraic gossip (Avin et al.): messages are uniform random GF(2)
   linear combinations of the sender's decoded span, packed 30
   coefficient bits per int32 payload word; each node keeps its basis
   in canonical reduced row echelon form (pivot = lowest set bit, full
   back-substitution), and completion is rank k.  Canonical RREF is
   what makes absorption order-independent — any insertion order over
   the same received vectors yields the same basis, rank, and rows —
   so the kernel satisfies the shard-parity discipline even though an
   absorb is much more than a monotone OR.  The incoming vector is
   reduced in place in the message buffer: the engine retires those
   payload words right after the hook, and mutating them avoids any
   per-delivery scratch allocation (the round loop stays inside
   minor_words_budget). *)

let coeff_bits = 30

type algebraic = { alg_kernel : t; alg_rank : v:int -> int; alg_rows : v:int -> int array array }

let algebraic ~k ~budget csr =
  let n = Csr.n csr in
  let cw = (k + coeff_bits - 1) / coeff_bits in
  check_rumor_args ~fn:"algebraic" ~k ~budget:(max budget 1) n;
  if budget < cw then
    invalid_arg
      (Printf.sprintf
         "Kernel.algebraic: budget %d words cannot carry k = %d coefficients (need >= %d \
          words at %d bits per word)"
         budget k cw coeff_bits);
  let basis = Array.make (n * k * cw) 0 in
  let present = Bytes.make (n * k) '\000' in
  let rank = Array.make n 0 in
  let coins = Array.make (n * cw) 0 in
  let row_base v p = ((v * k) + p) * cw in
  let has_row v p = Bytes.unsafe_get present ((v * k) + p) <> '\000' in
  (* Only ever called on an empty basis (construction / post-amnesia),
     where the unit vector is trivially canonical. *)
  let insert_unit v p =
    basis.(row_base v p + (p / coeff_bits)) <- 1 lsl (p mod coeff_bits);
    Bytes.set present ((v * k) + p) '\001';
    rank.(v) <- rank.(v) + 1
  in
  let reset v =
    Bytes.fill present (v * k) k '\000';
    Array.fill basis (v * k * cw) (k * cw) 0;
    rank.(v) <- 0;
    if v < k then insert_unit v v
  in
  let store = Rumor_store.create n ~on_seed:(fun v -> rank.(v) = k) ~on_forget:reset in
  for j = 0 to k - 1 do
    insert_unit j j;
    if rank.(j) = k then Rumor_store.mark store j
  done;
  let emit v buf off =
    for p = 0 to k - 1 do
      if
        has_row v p
        && coins.((v * cw) + (p / coeff_bits)) land (1 lsl (p mod coeff_bits)) <> 0
      then begin
        let b = row_base v p in
        for w = 0 to cw - 1 do
          I32.set buf (off + w) (I32.get buf (off + w) lxor basis.(b + w))
        done
      end
    done
  in
  let absorb v buf off =
    (* forward-reduce against the present pivots, ascending — a row
       XOR only sets bits above its pivot, so one pass suffices *)
    for p = 0 to k - 1 do
      if
        I32.get buf (off + (p / coeff_bits)) land (1 lsl (p mod coeff_bits)) <> 0
        && has_row v p
      then begin
        let b = row_base v p in
        for w = 0 to cw - 1 do
          I32.set buf (off + w) (I32.get buf (off + w) lxor basis.(b + w))
        done
      end
    done;
    (* lowest surviving bit is the new pivot; zero vector = redundant *)
    let piv = ref (-1) in
    (try
       for w = 0 to cw - 1 do
         let x = I32.get buf (off + w) in
         if x <> 0 then begin
           let b = ref 0 in
           while x land (1 lsl !b) = 0 do
             incr b
           done;
           piv := (w * coeff_bits) + !b;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv >= 0 then begin
      let p = !piv in
      (* back-substitute the new pivot out of the existing rows, then
         install — keeps the basis canonical *)
      for q = 0 to k - 1 do
        if
          has_row v q
          && basis.(row_base v q + (p / coeff_bits)) land (1 lsl (p mod coeff_bits)) <> 0
        then begin
          let bq = row_base v q in
          for w = 0 to cw - 1 do
            basis.(bq + w) <- basis.(bq + w) lxor I32.get buf (off + w)
          done
        end
      done;
      let bp = row_base v p in
      for w = 0 to cw - 1 do
        basis.(bp + w) <- I32.get buf (off + w)
      done;
      Bytes.set present ((v * k) + p) '\001';
      rank.(v) <- rank.(v) + 1
    end;
    rank.(v) = k
  in
  let alg_kernel =
    {
      name = "algebraic";
      contact = Csr.oriented_of_csr csr;
      uses_rng = true;
      msg_words = budget;
      store;
      on_initiate =
        (fun ~rngs ~round:_ ~u ~deg ~informed:_ ->
          let i = if deg = 0 then -1 else Rng.int rngs.(u) deg in
          for w = 0 to cw - 1 do
            coins.((u * cw) + w) <- Rng.int rngs.(u) (1 lsl coeff_bits)
          done;
          i);
      req_pay = (fun ~u ~informed:_ ~buf ~off -> emit u buf off);
      on_deliver = (fun ~v ~informed:_ ~buf ~off -> emit v buf off);
      on_push = (fun ~v ~buf ~off -> absorb v buf off);
      on_response = (fun ~u ~slot:_ ~rtt:_ ~buf ~off -> absorb u buf off);
    }
  in
  {
    alg_kernel;
    alg_rank = (fun ~v -> rank.(v));
    alg_rows =
      (fun ~v ->
        let rows = ref [] in
        for p = k - 1 downto 0 do
          if has_row v p then rows := Array.init cw (fun w -> basis.(row_base v p + w)) :: !rows
        done;
        Array.of_list !rows);
  }

(* ------------------------------------------------------------------ *)
(* Latency discovery (Section 4.2).  Each node walks a cursor over its
   full contact row, probing one neighbor per round; the response's
   round-trip time IS the edge's effective latency, measured by the
   engine itself (rtt = response round - initiation round), so the
   kernel needs no pending table — the engine's exchange pool plays
   that role.  Discovered latencies land in [disc_lat] at the probed
   slot's index, which makes every write order-independent (each
   (node, slot) pair is probed at most once per run): bit-identical
   under any domain count.  The rumor machinery is inert — probes
   carry payload 0 and never mark anyone. *)

type discovery = { disc_kernel : t; disc_lat : int array; disc_d_bound : int }

let discovery ~d_bound csr =
  if d_bound < 1 then invalid_arg "Kernel.discovery: need d_bound >= 1";
  let contact = Csr.oriented_of_csr csr in
  let row_ptr = contact.Csr.o_row_ptr in
  let n = Csr.n csr in
  let cursor = Array.make n 0 in
  let disc_lat = Array.make (Csr.oriented_edge_count contact) (-1) in
  let disc_kernel =
    {
      name = "discovery";
      contact;
      uses_rng = false;
      msg_words = 1;
      store = Rumor_store.create n;
      on_initiate =
        (fun ~rngs:_ ~round:_ ~u ~deg ~informed:_ ->
          if cursor.(u) >= deg then -1
          else begin
            let i = cursor.(u) in
            cursor.(u) <- i + 1;
            i
          end);
      req_pay = (fun ~u:_ ~informed:_ ~buf:_ ~off:_ -> ());
      on_deliver = (fun ~v:_ ~informed:_ ~buf:_ ~off:_ -> ());
      on_push = (fun ~v:_ ~buf:_ ~off:_ -> false);
      on_response =
        (fun ~u ~slot ~rtt ~buf:_ ~off:_ ->
          if rtt <= d_bound then disc_lat.(I32.get row_ptr u + slot) <- rtt;
          false);
    }
  in
  { disc_kernel; disc_lat; disc_d_bound = d_bound }

(* ------------------------------------------------------------------ *)
(* Termination check (Section 5.3, Lemma 15 voting), single-rumor
   adaptation: where Algorithm 1 compares accumulated rumor {e sets},
   a broadcast needs only the frozen informed {e bit} — a node flags
   itself when uninformed, so "unanimously clean" is equivalent to
   "every node heard the rumor".  Payloads bit-pack (frozen, flag,
   mismatch); absorbs are boolean ORs into kernel-owned byte arrays
   (idempotent and commutative, hence shard-parity-safe), and the
   engine's informed set is never touched.  The verdict flood is the
   check's second pass: failed bits spread by OR until everyone agrees
   (or provably cannot). *)

type check = { check_kernel : t; check_flag : Bytes.t; check_mismatch : Bytes.t }

let check_emit frozen flag mismatch w =
  (if Bytes.get frozen w <> '\000' then 1 else 0)
  lor (if Bytes.get flag w <> '\000' then 2 else 0)
  lor if Bytes.get mismatch w <> '\000' then 4 else 0

let check_absorb frozen flag mismatch w pay =
  if pay land 2 <> 0 then Bytes.set flag w '\001';
  if pay land 4 <> 0 || pay land 1 <> 0 <> (Bytes.get frozen w <> '\000') then
    Bytes.set mismatch w '\001'

(* Round-robin initiation over the whole contact row while the
   iteration window is open — the RR Broadcast schedule with a state
   payload instead of the rumor bit. *)
let rr_cursor ~iterations n =
  let cursor = Array.make n 0 in
  fun ~rngs:_ ~round ~u ~deg ~informed:_ ->
    if round >= iterations || deg = 0 then -1
    else begin
      let i = cursor.(u) mod deg in
      cursor.(u) <- cursor.(u) + 1;
      i
    end

let termination_check ~iterations ~informed oriented =
  if iterations < 0 then invalid_arg "Kernel.termination_check: iterations must be >= 0";
  let n = Csr.oriented_n oriented in
  if Bytes.length informed <> n then
    invalid_arg "Kernel.termination_check: informed length differs from the node count";
  let frozen = Bytes.make n '\000' in
  let flag = Bytes.make n '\000' in
  let mismatch = Bytes.make n '\000' in
  for v = 0 to n - 1 do
    if Bytes.get informed v <> '\000' then Bytes.set frozen v '\001'
    else (* an uninformed node is its own counterexample *)
      Bytes.set flag v '\001'
  done;
  let check_kernel =
    {
      name = "check";
      contact = oriented;
      uses_rng = false;
      msg_words = 1;
      store = Rumor_store.create n;
      on_initiate = rr_cursor ~iterations n;
      req_pay = (fun ~u ~informed:_ ~buf ~off -> I32.set buf off (check_emit frozen flag mismatch u));
      on_deliver =
        (fun ~v ~informed:_ ~buf ~off -> I32.set buf off (check_emit frozen flag mismatch v));
      on_push =
        (fun ~v ~buf ~off ->
          check_absorb frozen flag mismatch v (I32.get buf off);
          false);
      on_response =
        (fun ~u ~slot:_ ~rtt:_ ~buf ~off ->
          check_absorb frozen flag mismatch u (I32.get buf off);
          false);
    }
  in
  { check_kernel; check_flag = flag; check_mismatch = mismatch }

let verdict_flood ~iterations ~failed oriented =
  if iterations < 0 then invalid_arg "Kernel.verdict_flood: iterations must be >= 0";
  let n = Csr.oriented_n oriented in
  if Bytes.length failed <> n then
    invalid_arg "Kernel.verdict_flood: failed length differs from the node count";
  let absorb w pay = if pay = 1 then Bytes.set failed w '\001' in
  {
    name = "check";
    contact = oriented;
    uses_rng = false;
    msg_words = 1;
    store = Rumor_store.create n;
    on_initiate = rr_cursor ~iterations n;
    req_pay = (fun ~u ~informed:_ ~buf ~off -> if Bytes.get failed u <> '\000' then I32.set buf off 1);
    on_deliver =
      (fun ~v ~informed:_ ~buf ~off -> if Bytes.get failed v <> '\000' then I32.set buf off 1);
    on_push =
      (fun ~v ~buf ~off ->
        absorb v (I32.get buf off);
        false);
    on_response =
      (fun ~u ~slot:_ ~rtt:_ ~buf ~off ->
        absorb u (I32.get buf off);
        false);
  }

(* Auto parameters for the k-rumor family: a modest rumor count that
   still exercises multi-word budgets, and a 4-word subset budget
   (algebraic packs 30 coefficients per word, so its auto budget is
   the minimum that fits k). *)
let auto_rumor_k n = min n 16

let of_protocol csr = function
  | Push_pull -> push_pull csr
  | Flood -> flood csr
  | Random_contact -> random_contact csr
  | Dtg_local { ell } -> dtg_local ~ell:(if ell = 0 then Csr.max_latency csr else ell) csr
  | K_rumor { k; budget } ->
      let k = if k = 0 then auto_rumor_k (Csr.n csr) else k in
      let budget = if budget = 0 then 4 else budget in
      (k_rumor_push_pull ~k ~budget csr).rum_kernel
  | Rumor_rotation { k; budget } ->
      let k = if k = 0 then auto_rumor_k (Csr.n csr) else k in
      let budget = if budget = 0 then 4 else budget in
      (rumor_rotation ~k ~budget csr).rum_kernel
  | Algebraic { k; budget } ->
      let k = if k = 0 then auto_rumor_k (Csr.n csr) else k in
      let budget = if budget = 0 then (k + coeff_bits - 1) / coeff_bits else budget in
      (algebraic ~k ~budget csr).alg_kernel
  | Rr_spanner _ ->
      invalid_arg
        "Kernel.of_protocol: rr-spanner needs a precomputed oriented spanner — build one \
         with Gossip_core.Spanner.build, pack it with Csr.of_oriented_spanner, and run \
         Kernel.rr_broadcast through Wheel_engine.broadcast_kernel (Sweep.run_job and \
         gossip-cli run --protocol rr-spanner do this)"
  | Unknown_eid ->
      invalid_arg
        "Kernel.of_protocol: unknown-eid is a kernel chain, not a single kernel — run it \
         through Gossip_core.Eid.run_unknown_scale (Sweep.run_job and gossip-cli run \
         --protocol unknown-eid do this)"
  | Unified ->
      invalid_arg
        "Kernel.of_protocol: unified is a kernel chain, not a single kernel — run it \
         through Gossip_core.Dissemination.broadcast_scale (Sweep.run_job and gossip-cli \
         run --protocol unified do this)"
