module Rng = Gossip_util.Rng

(* ------------------------------------------------------------------ *)
(* Protocol descriptors *)

type protocol =
  | Push_pull
  | Flood
  | Random_contact
  | Rr_spanner of { stretch_k : int }
  | Dtg_local of { ell : int }
  | Unknown_eid
  | Unified

let protocol_name = function
  | Push_pull -> "push-pull"
  | Flood -> "flood"
  | Random_contact -> "random-contact"
  | Rr_spanner { stretch_k } ->
      if stretch_k = 0 then "rr-spanner" else Printf.sprintf "rr-spanner:%d" stretch_k
  | Dtg_local { ell } -> if ell = 0 then "dtg" else Printf.sprintf "dtg:%d" ell
  | Unknown_eid -> "unknown-eid"
  | Unified -> "unified"

(* "name" or "name:K" with K >= 1; K absent encodes the auto value 0. *)
let parse_param s prefix make =
  let pl = String.length prefix and sl = String.length s in
  if sl >= pl && String.sub s 0 pl = prefix then
    if sl = pl then Some (make 0)
    else if s.[pl] = ':' then
      match int_of_string_opt (String.sub s (pl + 1) (sl - pl - 1)) with
      | Some v when v >= 1 -> Some (make v)
      | _ -> None
    else None
  else None

let protocol_of_string s =
  match s with
  | "push-pull" -> Some Push_pull
  | "flood" -> Some Flood
  | "random-contact" -> Some Random_contact
  | "unknown-eid" -> Some Unknown_eid
  | "unified" -> Some Unified
  | _ -> (
      match parse_param s "rr-spanner" (fun k -> Rr_spanner { stretch_k = k }) with
      | Some p -> Some p
      | None -> parse_param s "dtg" (fun l -> Dtg_local { ell = l }))

let known_protocols =
  [
    "push-pull";
    "flood";
    "random-contact";
    "rr-spanner[:K]";
    "dtg[:L]";
    "unknown-eid";
    "unified";
  ]

(* ------------------------------------------------------------------ *)
(* The kernel interface *)

type t = {
  name : string;
  contact : Csr.oriented;
  uses_rng : bool;
  on_initiate : rngs:Rng.t array -> round:int -> u:int -> deg:int -> informed:bool -> int;
  req_pay : u:int -> informed:bool -> int;
  on_deliver : v:int -> informed:bool -> int;
  on_push : v:int -> pay:int -> bool;
  on_response : u:int -> slot:int -> rtt:int -> pay:int -> bool;
}

let name t = t.name

let contact t = t.contact

(* The engine-generic halves of the classic exchange: responses carry
   the responder's round-start informed bit, a payload bit of 1 marks
   the receiver (request side in phase 1b, response side in phase 1c).
   Kept as shared closures so kernels that want the default pay exactly
   the same indirect call. *)
let req_informed ~u:_ ~informed = if informed then 1 else 0

let req_always ~u:_ ~informed:_ = 1

let deliver_informed ~v:_ ~informed = if informed then 1 else 0

let push_if_pay ~v:_ ~pay = pay = 1

let mark_if_pay ~u:_ ~slot:_ ~rtt:_ ~pay = pay = 1

let push_pull csr =
  {
    name = "push-pull";
    contact = Csr.oriented_of_csr csr;
    uses_rng = true;
    on_initiate =
      (fun ~rngs ~round:_ ~u ~deg ~informed:_ -> if deg = 0 then -1 else Rng.int rngs.(u) deg);
    req_pay = req_informed;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let flood csr =
  let cursor = Array.make (Csr.n csr) 0 in
  {
    name = "flood";
    contact = Csr.oriented_of_csr csr;
    uses_rng = false;
    on_initiate =
      (fun ~rngs:_ ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = req_always;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let random_contact csr =
  {
    name = "random-contact";
    contact = Csr.oriented_of_csr csr;
    uses_rng = true;
    on_initiate =
      (fun ~rngs ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1 else Rng.int rngs.(u) deg);
    req_pay = req_always;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let rr_broadcast ?iterations ~k oriented =
  if k < 1 then invalid_arg "Kernel.rr_broadcast: need k >= 1";
  let usable = Csr.oriented_filter_le oriented k in
  let iterations =
    match iterations with
    | Some i ->
        if i < 0 then invalid_arg "Kernel.rr_broadcast: iterations must be >= 0";
        i
    | None -> max_int
  in
  let cursor = Array.make (Csr.oriented_n usable) 0 in
  {
    name = "rr-spanner";
    contact = usable;
    uses_rng = false;
    on_initiate =
      (fun ~rngs:_ ~round ~u ~deg ~informed:_ ->
        if round >= iterations || deg = 0 then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = req_informed;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

let dtg_local ~ell csr =
  if ell < 1 then invalid_arg "Kernel.dtg_local: need ell >= 1";
  let contact = Csr.oriented_filter_le (Csr.oriented_of_csr csr) ell in
  let cursor = Array.make (Csr.n csr) 0 in
  {
    name = "dtg";
    contact;
    uses_rng = false;
    on_initiate =
      (fun ~rngs:_ ~round:_ ~u ~deg ~informed ->
        if deg = 0 || not informed then -1
        else begin
          let i = cursor.(u) mod deg in
          cursor.(u) <- cursor.(u) + 1;
          i
        end);
    req_pay = req_always;
    on_deliver = deliver_informed;
    on_push = push_if_pay;
    on_response = mark_if_pay;
  }

(* ------------------------------------------------------------------ *)
(* Latency discovery (Section 4.2).  Each node walks a cursor over its
   full contact row, probing one neighbor per round; the response's
   round-trip time IS the edge's effective latency, measured by the
   engine itself (rtt = response round - initiation round), so the
   kernel needs no pending table — the engine's exchange pool plays
   that role.  Discovered latencies land in [disc_lat] at the probed
   slot's index, which makes every write order-independent (each
   (node, slot) pair is probed at most once per run): bit-identical
   under any domain count.  The rumor machinery is inert — probes
   carry payload 0 and never mark anyone. *)

type discovery = { disc_kernel : t; disc_lat : int array; disc_d_bound : int }

let discovery ~d_bound csr =
  if d_bound < 1 then invalid_arg "Kernel.discovery: need d_bound >= 1";
  let contact = Csr.oriented_of_csr csr in
  let row_ptr = contact.Csr.o_row_ptr in
  let n = Csr.n csr in
  let cursor = Array.make n 0 in
  let disc_lat = Array.make (Csr.oriented_edge_count contact) (-1) in
  let disc_kernel =
    {
      name = "discovery";
      contact;
      uses_rng = false;
      on_initiate =
        (fun ~rngs:_ ~round:_ ~u ~deg ~informed:_ ->
          if cursor.(u) >= deg then -1
          else begin
            let i = cursor.(u) in
            cursor.(u) <- i + 1;
            i
          end);
      req_pay = (fun ~u:_ ~informed:_ -> 0);
      on_deliver = (fun ~v:_ ~informed:_ -> 0);
      on_push = (fun ~v:_ ~pay:_ -> false);
      on_response =
        (fun ~u ~slot ~rtt ~pay:_ ->
          if rtt <= d_bound then disc_lat.(I32.get row_ptr u + slot) <- rtt;
          false);
    }
  in
  { disc_kernel; disc_lat; disc_d_bound = d_bound }

(* ------------------------------------------------------------------ *)
(* Termination check (Section 5.3, Lemma 15 voting), single-rumor
   adaptation: where Algorithm 1 compares accumulated rumor {e sets},
   a broadcast needs only the frozen informed {e bit} — a node flags
   itself when uninformed, so "unanimously clean" is equivalent to
   "every node heard the rumor".  Payloads bit-pack (frozen, flag,
   mismatch); absorbs are boolean ORs into kernel-owned byte arrays
   (idempotent and commutative, hence shard-parity-safe), and the
   engine's informed set is never touched.  The verdict flood is the
   check's second pass: failed bits spread by OR until everyone agrees
   (or provably cannot). *)

type check = { check_kernel : t; check_flag : Bytes.t; check_mismatch : Bytes.t }

let check_emit frozen flag mismatch w =
  (if Bytes.get frozen w <> '\000' then 1 else 0)
  lor (if Bytes.get flag w <> '\000' then 2 else 0)
  lor if Bytes.get mismatch w <> '\000' then 4 else 0

let check_absorb frozen flag mismatch w pay =
  if pay land 2 <> 0 then Bytes.set flag w '\001';
  if pay land 4 <> 0 || pay land 1 <> 0 <> (Bytes.get frozen w <> '\000') then
    Bytes.set mismatch w '\001'

(* Round-robin initiation over the whole contact row while the
   iteration window is open — the RR Broadcast schedule with a state
   payload instead of the rumor bit. *)
let rr_cursor ~iterations n =
  let cursor = Array.make n 0 in
  fun ~rngs:_ ~round ~u ~deg ~informed:_ ->
    if round >= iterations || deg = 0 then -1
    else begin
      let i = cursor.(u) mod deg in
      cursor.(u) <- cursor.(u) + 1;
      i
    end

let termination_check ~iterations ~informed oriented =
  if iterations < 0 then invalid_arg "Kernel.termination_check: iterations must be >= 0";
  let n = Csr.oriented_n oriented in
  if Bytes.length informed <> n then
    invalid_arg "Kernel.termination_check: informed length differs from the node count";
  let frozen = Bytes.make n '\000' in
  let flag = Bytes.make n '\000' in
  let mismatch = Bytes.make n '\000' in
  for v = 0 to n - 1 do
    if Bytes.get informed v <> '\000' then Bytes.set frozen v '\001'
    else (* an uninformed node is its own counterexample *)
      Bytes.set flag v '\001'
  done;
  let check_kernel =
    {
      name = "check";
      contact = oriented;
      uses_rng = false;
      on_initiate = rr_cursor ~iterations n;
      req_pay = (fun ~u ~informed:_ -> check_emit frozen flag mismatch u);
      on_deliver = (fun ~v ~informed:_ -> check_emit frozen flag mismatch v);
      on_push =
        (fun ~v ~pay ->
          check_absorb frozen flag mismatch v pay;
          false);
      on_response =
        (fun ~u ~slot:_ ~rtt:_ ~pay ->
          check_absorb frozen flag mismatch u pay;
          false);
    }
  in
  { check_kernel; check_flag = flag; check_mismatch = mismatch }

let verdict_flood ~iterations ~failed oriented =
  if iterations < 0 then invalid_arg "Kernel.verdict_flood: iterations must be >= 0";
  let n = Csr.oriented_n oriented in
  if Bytes.length failed <> n then
    invalid_arg "Kernel.verdict_flood: failed length differs from the node count";
  let absorb w pay = if pay = 1 then Bytes.set failed w '\001' in
  {
    name = "check";
    contact = oriented;
    uses_rng = false;
    on_initiate = rr_cursor ~iterations n;
    req_pay = (fun ~u ~informed:_ -> if Bytes.get failed u <> '\000' then 1 else 0);
    on_deliver = (fun ~v ~informed:_ -> if Bytes.get failed v <> '\000' then 1 else 0);
    on_push =
      (fun ~v ~pay ->
        absorb v pay;
        false);
    on_response =
      (fun ~u ~slot:_ ~rtt:_ ~pay ->
        absorb u pay;
        false);
  }

let of_protocol csr = function
  | Push_pull -> push_pull csr
  | Flood -> flood csr
  | Random_contact -> random_contact csr
  | Dtg_local { ell } -> dtg_local ~ell:(if ell = 0 then Csr.max_latency csr else ell) csr
  | Rr_spanner _ ->
      invalid_arg
        "Kernel.of_protocol: rr-spanner needs a precomputed oriented spanner — build one \
         with Gossip_core.Spanner.build, pack it with Csr.of_oriented_spanner, and run \
         Kernel.rr_broadcast through Wheel_engine.broadcast_kernel (Sweep.run_job and \
         gossip-cli run --protocol rr-spanner do this)"
  | Unknown_eid ->
      invalid_arg
        "Kernel.of_protocol: unknown-eid is a kernel chain, not a single kernel — run it \
         through Gossip_core.Eid.run_unknown_scale (Sweep.run_job and gossip-cli run \
         --protocol unknown-eid do this)"
  | Unified ->
      invalid_arg
        "Kernel.of_protocol: unified is a kernel chain, not a single kernel — run it \
         through Gossip_core.Dissemination.broadcast_scale (Sweep.run_job and gossip-cli \
         run --protocol unified do this)"
