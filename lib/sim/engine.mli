(** Synchronous gossip simulator with edge latencies.

    This implements the communication model of Section 1 of the paper:

    - time proceeds in synchronous rounds;
    - in each round every node may initiate {e one} exchange with a
      neighbor of its choice: it sends a message and automatically
      receives a response;
    - an exchange over an edge of latency [ℓ] completes [ℓ] rounds
      after initiation (the round trip takes time [ℓ]); the request
      reaches the responder after [⌈ℓ/2⌉] rounds and the response —
      computed from the responder's state at that moment — returns at
      [ℓ];
    - initiations are non-blocking: a node may initiate again in the
      next round even while earlier exchanges are in flight;
    - responses are automatic: the responder's [on_request] callback
      runs regardless of what its own protocol is doing.

    The engine is polymorphic in the payload type ['p] so protocols can
    exchange bitsets, rumor records, or structured neighborhood data.

    Determinism: within a round, deliveries are processed in event-queue
    order and initiations in ascending node order; all protocol
    randomness comes from RNG state owned by the protocol. *)

type node = Gossip_graph.Graph.node

(** Per-node behavior.  All three callbacks may share mutable protocol
    state through their closures. *)
type 'p handlers = {
  on_round : round:int -> (node * 'p) option;
      (** Called once per node per round, after deliveries.  Returning
          [Some (peer, payload)] initiates an exchange with [peer]
          (which must be a neighbor). *)
  on_request : peer:node -> round:int -> 'p -> 'p;
      (** Called at the responder when a request arrives; returns the
          response payload.  MUST NOT mutate protocol state: the engine
          computes {e all} of a round's responses before applying any of
          that round's merges, so that information cannot chain through
          several same-round deliveries (the classical synchronous
          rule: a response reflects the responder's state as of the
          start of the round). *)
  on_push : peer:node -> round:int -> 'p -> unit;
      (** Called at the responder after response generation, to fold
          the incoming request payload into local state — the "push"
          half of push-pull. *)
  on_response : peer:node -> round:int -> 'p -> unit;
      (** Called at the initiator when the response returns ([ℓ] rounds
          after initiation) — the "pull" half. *)
}

(** Failure injection (the robustness directions of Section 7).  All
    three predicates must be deterministic functions of their arguments
    (own an RNG in the closure if randomness is wanted) so runs stay
    reproducible. *)
type faults = {
  alive : node:node -> round:int -> bool;
      (** A node that is not alive initiates nothing, answers nothing,
          and receives nothing; exchanges touching it are lost.
          Crash-stop is [fun ~node ~round -> round < crash_time node]. *)
  drop : initiator:node -> responder:node -> round:int -> bool;
      (** Sampled once per exchange at initiation time; [true] loses
          the whole exchange (request and response). *)
  jitter : latency:int -> round:int -> int;
      (** Effective latency of an exchange (clamped to [>= 1]);
          identity for the paper's fixed-latency model. *)
}

(** The fault-free environment. *)
val no_faults : faults

(** Aggregate counters over a run. *)
type metrics = {
  mutable rounds : int;  (** rounds executed so far *)
  mutable initiations : int;  (** exchanges started *)
  mutable deliveries : int;  (** request + response messages delivered *)
  mutable payload_words : int;
      (** total delivered payload, in [payload_size] units — the
          message-size accounting of Section 6 *)
  mutable rejected : int;  (** requests refused by [in_capacity] *)
  mutable dropped : int;  (** messages lost to faults *)
}

(** [empty_metrics ()] is a fresh all-zero record — the accumulator
    seed for multi-phase drivers that sum per-phase engine metrics. *)
val empty_metrics : unit -> metrics

(** [add_metrics ~into m] adds every counter of [m] into [into]. *)
val add_metrics : into:metrics -> metrics -> unit

type 'p t

(** [create ?faults ?in_capacity ?payload_size g ~handlers] builds an
    engine; [handlers u] is called once per node at creation time.

    [in_capacity] bounds how many incoming requests a node serves per
    round (the restricted model of Daum et al. discussed in Section 7);
    excess requests are silently rejected and never answered.
    [payload_size] measures payloads for the [payload_words] metric
    (default: 1 per message).

    [telemetry] attaches an observability registry: every round
    observes per-round delivery and initiation counts into the
    ["engine.round.deliveries"] / ["engine.round.initiations"]
    histograms, and — when the registry carries a ring — records
    per-round [deliveries]/[initiations]/[drops]/[queue] trace events
    ([queue] is the pending-event heap length).  Handles are resolved
    once at creation, so the per-round overhead is a few integer
    stores and the default (no telemetry) costs one option match. *)
val create :
  ?faults:faults ->
  ?in_capacity:int ->
  ?payload_size:('p -> int) ->
  ?telemetry:Gossip_obs.Registry.t ->
  Gossip_graph.Graph.t ->
  handlers:(node -> 'p handlers) ->
  'p t

val graph : 'p t -> Gossip_graph.Graph.t

(** [current_round t] is the index of the next round to execute
    (0 before any [step]). *)
val current_round : 'p t -> int

val metrics : 'p t -> metrics

(** [step t] executes one round: deliveries first, then initiations.
    @raise Invalid_argument if a handler initiates toward a
    non-neighbor. *)
val step : 'p t -> unit

(** [run_until t ~max_rounds done_] steps until [done_ ()] holds
    (checked before the first step and after every step) or the round
    budget is exhausted.  Returns [Some rounds_taken] on success,
    [None] when [max_rounds] steps were executed without success. *)
val run_until : 'p t -> max_rounds:int -> (unit -> bool) -> int option
