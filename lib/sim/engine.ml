module Graph = Gossip_graph.Graph
module Heap = Gossip_util.Heap

type node = Gossip_graph.Graph.node

type 'p handlers = {
  on_round : round:int -> (node * 'p) option;
  on_request : peer:node -> round:int -> 'p -> 'p;
  on_push : peer:node -> round:int -> 'p -> unit;
  on_response : peer:node -> round:int -> 'p -> unit;
}

type faults = {
  alive : node:node -> round:int -> bool;
  drop : initiator:node -> responder:node -> round:int -> bool;
  jitter : latency:int -> round:int -> int;
}

let no_faults =
  {
    alive = (fun ~node:_ ~round:_ -> true);
    drop = (fun ~initiator:_ ~responder:_ ~round:_ -> false);
    jitter = (fun ~latency ~round:_ -> latency);
  }

type metrics = {
  mutable rounds : int;
  mutable initiations : int;
  mutable deliveries : int;
  mutable payload_words : int;
  mutable rejected : int;
  mutable dropped : int;
}

type 'p event =
  | Request of { initiator : node; responder : node; payload : 'p; response_due : int }
  | Response of { initiator : node; responder : node; payload : 'p }

(* Telemetry handles are resolved once at creation so the per-round
   hot path is option-match + integer stores, never a hash lookup. *)
type tel = {
  reg : Gossip_obs.Registry.t;
  tel_ring : Gossip_obs.Ring.t option;
  h_deliveries : Gossip_obs.Registry.histogram;
  h_initiations : Gossip_obs.Registry.histogram;
}

type 'p t = {
  graph : Graph.t;
  handlers : 'p handlers array;
  events : 'p event Heap.t;
  metrics : metrics;
  faults : faults;
  in_capacity : int option;
  payload_size : 'p -> int;
  tel : tel option;
  mutable now : int;
}

let empty_metrics () =
  { rounds = 0; initiations = 0; deliveries = 0; payload_words = 0; rejected = 0; dropped = 0 }

let add_metrics ~into m =
  into.rounds <- into.rounds + m.rounds;
  into.initiations <- into.initiations + m.initiations;
  into.deliveries <- into.deliveries + m.deliveries;
  into.payload_words <- into.payload_words + m.payload_words;
  into.rejected <- into.rejected + m.rejected;
  into.dropped <- into.dropped + m.dropped

let create ?(faults = no_faults) ?in_capacity ?(payload_size = fun _ -> 1) ?telemetry g
    ~handlers =
  (match in_capacity with
  | Some c when c < 1 -> invalid_arg "Engine.create: in_capacity must be >= 1"
  | Some _ | None -> ());
  {
    graph = g;
    handlers = Array.init (Graph.n g) handlers;
    events = Heap.create ();
    metrics =
      { rounds = 0; initiations = 0; deliveries = 0; payload_words = 0; rejected = 0; dropped = 0 };
    faults;
    in_capacity;
    payload_size;
    tel =
      Option.map
        (fun reg ->
          {
            reg;
            tel_ring = Gossip_obs.Registry.ring reg;
            h_deliveries = Gossip_obs.Registry.histogram reg "engine.round.deliveries";
            h_initiations = Gossip_obs.Registry.histogram reg "engine.round.initiations";
          })
        telemetry;
    now = 0;
  }

let graph t = t.graph

let current_round t = t.now

let metrics t = t.metrics

let step t =
  let round = t.now in
  let d0 = t.metrics.deliveries and i0 = t.metrics.initiations and x0 = t.metrics.dropped in
  let alive node = t.faults.alive ~node ~round in
  (* Phase 1: deliveries due this round, in three sub-phases that keep
     the classical synchronous semantics.  First every response is
     generated (read-only, against state as of the start of the round),
     then the request payloads are pushed into responder state, and
     finally the responses due this round — including those a latency-1
     edge generated just now — are delivered.  Information therefore
     never chains through several same-round deliveries. *)
  let rec pop_due acc =
    if Heap.is_empty t.events then List.rev acc
    else begin
      let due, _ = Heap.peek_min t.events in
      if due < round then invalid_arg "Engine.step: event from the past"
      else if due = round then pop_due (snd (Heap.pop_min t.events) :: acc)
      else List.rev acc
    end
  in
  let due_now = pop_due [] in
  let all_requests =
    List.filter_map (function Request _ as r -> Some r | Response _ -> None) due_now
  in
  let responses =
    List.filter_map (function Response _ as r -> Some r | Request _ -> None) due_now
  in
  (* Bounded in-degree (the restricted model discussed in Section 7):
     each node serves at most [in_capacity] incoming requests per
     round; the rest are rejected and simply get no response.  Service
     order rotates with the round so that persistent requesters are
     treated fairly rather than starved by a fixed arrival order. *)
  let requests =
    match t.in_capacity with
    | None -> all_requests
    | Some capacity ->
        let by_responder = Hashtbl.create 16 in
        List.iter
          (function
            | Request { responder; _ } as r ->
                let l = Option.value ~default:[] (Hashtbl.find_opt by_responder responder) in
                Hashtbl.replace by_responder responder (r :: l)
            | Response _ -> ())
          all_requests;
        let served = ref [] in
        Hashtbl.iter
          (fun _responder reversed ->
            let reqs = Array.of_list (List.rev reversed) in
            let total = Array.length reqs in
            let offset = if total = 0 then 0 else round * capacity mod total in
            for i = 0 to total - 1 do
              if i < capacity then served := reqs.((offset + i) mod total) :: !served
              else t.metrics.rejected <- t.metrics.rejected + 1
            done)
          by_responder;
        List.rev !served
  in
  (* A crashed responder never answers; the exchange is lost. *)
  let requests =
    List.filter
      (function
        | Request { responder; _ } ->
            if alive responder then true
            else begin
              t.metrics.dropped <- t.metrics.dropped + 1;
              false
            end
        | Response _ -> true)
      requests
  in
  (* Sub-phase 1a: generate responses from pre-merge state. *)
  List.iter
    (function
      | Request { initiator; responder; payload; response_due } ->
          let response =
            t.handlers.(responder).on_request ~peer:initiator ~round payload
          in
          Heap.push t.events response_due
            (Response { initiator; responder; payload = response })
      | Response _ -> ())
    requests;
  (* Sub-phase 1b: merge the pushed request payloads. *)
  List.iter
    (function
      | Request { initiator; responder; payload; response_due = _ } ->
          t.metrics.deliveries <- t.metrics.deliveries + 1;
          t.metrics.payload_words <- t.metrics.payload_words + t.payload_size payload;
          t.handlers.(responder).on_push ~peer:initiator ~round payload
      | Response _ -> ())
    requests;
  (* Sub-phase 1c: deliver responses, including same-round ones
     generated in 1a by latency-1 edges.  A crashed initiator cannot
     receive. *)
  let deliver_response = function
    | Response { initiator; responder; payload } ->
        if alive initiator then begin
          t.metrics.deliveries <- t.metrics.deliveries + 1;
          t.metrics.payload_words <- t.metrics.payload_words + t.payload_size payload;
          t.handlers.(initiator).on_response ~peer:responder ~round payload
        end
        else t.metrics.dropped <- t.metrics.dropped + 1
    | Request _ -> ()
  in
  List.iter deliver_response responses;
  List.iter deliver_response (pop_due []);
  (* Phase 2: initiations, in ascending node order; crashed nodes stay
     silent and lossy channels may eat the whole exchange. *)
  for u = 0 to Graph.n t.graph - 1 do
    if alive u then begin
      match t.handlers.(u).on_round ~round with
      | None -> ()
      | Some (peer, payload) -> begin
          match Graph.latency t.graph u peer with
          | None -> invalid_arg "Engine.step: initiation toward a non-neighbor"
          | Some latency ->
              t.metrics.initiations <- t.metrics.initiations + 1;
              if t.faults.drop ~initiator:u ~responder:peer ~round then
                t.metrics.dropped <- t.metrics.dropped + 1
              else begin
                let latency = max 1 (t.faults.jitter ~latency ~round) in
                let arrival = round + ((latency + 1) / 2) in
                let response_due = round + latency in
                Heap.push t.events arrival
                  (Request { initiator = u; responder = peer; payload; response_due })
              end
        end
    end
  done;
  t.now <- round + 1;
  t.metrics.rounds <- t.metrics.rounds + 1;
  match t.tel with
  | None -> ()
  | Some tel ->
      Gossip_obs.Registry.observe tel.h_deliveries (t.metrics.deliveries - d0);
      Gossip_obs.Registry.observe tel.h_initiations (t.metrics.initiations - i0);
      (match tel.tel_ring with
      | None -> ()
      | Some ring ->
          let ev kind value = Gossip_obs.Ring.record ring ~round ~kind ~node:(-1) ~value in
          ev Gossip_obs.Ring.kind_deliveries (t.metrics.deliveries - d0);
          ev Gossip_obs.Ring.kind_initiations (t.metrics.initiations - i0);
          ev Gossip_obs.Ring.kind_drops (t.metrics.dropped - x0);
          ev Gossip_obs.Ring.kind_queue (Heap.length t.events))

let run_until t ~max_rounds done_ =
  let start = t.now in
  let rec go () =
    if done_ () then Some (t.now - start)
    else if t.now - start >= max_rounds then None
    else begin
      step t;
      go ()
    end
  in
  go ()
