module Json = Gossip_util.Json
module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph

exception Invalid_scenario of string

let () =
  Printexc.register_printer (function
    | Invalid_scenario msg -> Some (Printf.sprintf "Invalid_scenario: %s" msg)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_scenario s)) fmt

type filter =
  | All
  | Lat_ge of int
  | Lat_le of int
  | Endpoint_mod of { modulus : int; residue : int }

type schedule =
  | Linear of { rate : float; cap : float }
  | Diurnal of { amplitude : float; period : int; phase : int }
  | Step of { at : int; factor : float }
  | Trace of { multipliers : float array; dilate : int }

type rule = { schedule : schedule; filter : filter }

type churn =
  | Leave of { node : int; leave : int; rejoin : int option }
  | Random_churn of { fraction : float; leave : int; down : int; period : int }

type adversary = { budget : int }

type t = {
  name : string;
  seed : int;
  rules : rule list;
  churn : churn list;
  adversary : adversary option;
  epoch : int;
  track_phi : bool;
}

let default_epoch = 32

let static =
  {
    name = "static";
    seed = 1;
    rules = [];
    churn = [];
    adversary = None;
    epoch = default_epoch;
    track_phi = false;
  }

let is_static s = s.rules = [] && s.churn = [] && s.adversary = None

(* ------------------------------------------------------------------ *)
(* JSON decoding.  Strict: unknown fields and unknown kinds are errors
   with the offending path in the message, so a typo'd scenario file
   fails loudly instead of silently running the static plan. *)

let obj ~ctx ~keys = function
  | Json.Obj fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k keys) then fail "%s: unknown field %S" ctx k)
        fields;
      fields
  | _ -> fail "%s: expected an object" ctx

let dec_int ~ctx = function
  | Json.Int i -> i
  | _ -> fail "%s: expected an integer" ctx

let dec_float ~ctx = function
  | Json.Int i -> float_of_int i
  | Json.Float f when Float.is_finite f -> f
  | _ -> fail "%s: expected a (finite) number" ctx

let dec_string ~ctx = function
  | Json.String s -> s
  | _ -> fail "%s: expected a string" ctx

let dec_bool ~ctx = function
  | Json.Bool b -> b
  | _ -> fail "%s: expected a boolean" ctx

let dec_list ~ctx = function
  | Json.List l -> l
  | _ -> fail "%s: expected a list" ctx

let req ~ctx fields k dec =
  match List.assoc_opt k fields with
  | Some j -> dec ~ctx:(ctx ^ "." ^ k) j
  | None -> fail "%s: missing field %S" ctx k

let opt ~ctx fields k dec ~default =
  match List.assoc_opt k fields with
  | Some j -> dec ~ctx:(ctx ^ "." ^ k) j
  | None -> default

let non_negative_int ~ctx fields k ~default =
  let v = opt ~ctx fields k dec_int ~default in
  if v < 0 then fail "%s.%s: must be >= 0 (got %d)" ctx k v;
  v

let filter_of_json ~ctx j =
  let fields = obj ~ctx ~keys:[ "kind"; "latency"; "modulus"; "residue" ] j in
  match req ~ctx fields "kind" dec_string with
  | "all" -> All
  | "lat-ge" ->
      let l = req ~ctx fields "latency" dec_int in
      if l < 1 then fail "%s.latency: must be >= 1 (got %d)" ctx l;
      Lat_ge l
  | "lat-le" ->
      let l = req ~ctx fields "latency" dec_int in
      if l < 1 then fail "%s.latency: must be >= 1 (got %d)" ctx l;
      Lat_le l
  | "endpoint-mod" ->
      let modulus = req ~ctx fields "modulus" dec_int in
      let residue = req ~ctx fields "residue" dec_int in
      if modulus < 1 then fail "%s.modulus: must be >= 1 (got %d)" ctx modulus;
      if residue < 0 || residue >= modulus then
        fail "%s.residue: must be in [0, %d) (got %d)" ctx modulus residue;
      Endpoint_mod { modulus; residue }
  | k ->
      fail "%s.kind: unknown filter kind %S (want all, lat-ge, lat-le, endpoint-mod)"
        ctx k

let rule_of_json ~ctx j =
  let keys =
    [
      "kind"; "rate"; "cap"; "amplitude"; "period"; "phase"; "at"; "factor";
      "multipliers"; "dilate"; "filter";
    ]
  in
  let fields = obj ~ctx ~keys j in
  let filter =
    match List.assoc_opt "filter" fields with
    | None -> All
    | Some j -> filter_of_json ~ctx:(ctx ^ ".filter") j
  in
  let schedule =
    match req ~ctx fields "kind" dec_string with
    | "linear" ->
        let rate = req ~ctx fields "rate" dec_float in
        let cap = req ~ctx fields "cap" dec_float in
        if rate < 0.0 then fail "%s.rate: must be >= 0 (got %g)" ctx rate;
        if cap < 1.0 then fail "%s.cap: must be >= 1 (got %g)" ctx cap;
        Linear { rate; cap }
    | "diurnal" ->
        let amplitude = req ~ctx fields "amplitude" dec_float in
        let period = req ~ctx fields "period" dec_int in
        let phase = non_negative_int ~ctx fields "phase" ~default:0 in
        if amplitude < 0.0 then
          fail "%s.amplitude: must be >= 0 (got %g)" ctx amplitude;
        if period < 1 then fail "%s.period: must be >= 1 (got %d)" ctx period;
        Diurnal { amplitude; period; phase }
    | "step" ->
        let at = req ~ctx fields "at" dec_int in
        let factor = req ~ctx fields "factor" dec_float in
        if at < 0 then fail "%s.at: must be >= 0 (got %d)" ctx at;
        if factor <= 0.0 then fail "%s.factor: must be > 0 (got %g)" ctx factor;
        Step { at; factor }
    | "trace" ->
        let ms =
          req ~ctx fields "multipliers" dec_list
          |> List.map (dec_float ~ctx:(ctx ^ ".multipliers"))
          |> Array.of_list
        in
        if Array.length ms = 0 then fail "%s.multipliers: must be non-empty" ctx;
        Array.iter
          (fun m ->
            if m <= 0.0 then fail "%s.multipliers: must be > 0 (got %g)" ctx m)
          ms;
        let dilate = opt ~ctx fields "dilate" dec_int ~default:1 in
        if dilate < 1 then fail "%s.dilate: must be >= 1 (got %d)" ctx dilate;
        Trace { multipliers = ms; dilate }
    | k ->
        fail "%s.kind: unknown schedule kind %S (want linear, diurnal, step, trace)"
          ctx k
  in
  { schedule; filter }

let churn_of_json ~ctx j =
  match j with
  | Json.Obj fields when List.mem_assoc "node" fields ->
      let fields = obj ~ctx ~keys:[ "node"; "leave"; "rejoin" ] j in
      let node = req ~ctx fields "node" dec_int in
      let leave = req ~ctx fields "leave" dec_int in
      if node < 0 then fail "%s.node: must be >= 0 (got %d)" ctx node;
      if leave < 0 then fail "%s.leave: must be >= 0 (got %d)" ctx leave;
      let rejoin =
        match List.assoc_opt "rejoin" fields with
        | None | Some Json.Null -> None
        | Some j ->
            let r = dec_int ~ctx:(ctx ^ ".rejoin") j in
            if r <= leave then
              fail "%s.rejoin: must be > leave round %d (got %d)" ctx leave r;
            Some r
      in
      Leave { node; leave; rejoin }
  | Json.Obj _ ->
      let fields =
        obj ~ctx ~keys:[ "kind"; "fraction"; "leave"; "down"; "period" ] j
      in
      (match req ~ctx fields "kind" dec_string with
      | "random" -> ()
      | k -> fail "%s.kind: unknown churn kind %S (want random)" ctx k);
      let fraction = req ~ctx fields "fraction" dec_float in
      let leave = req ~ctx fields "leave" dec_int in
      let down = req ~ctx fields "down" dec_int in
      let period = opt ~ctx fields "period" dec_int ~default:1 in
      if fraction < 0.0 || fraction > 1.0 then
        fail "%s.fraction: must be in [0, 1] (got %g)" ctx fraction;
      if leave < 0 then fail "%s.leave: must be >= 0 (got %d)" ctx leave;
      if down < 1 then fail "%s.down: must be >= 1 (got %d)" ctx down;
      if period < 1 then fail "%s.period: must be >= 1 (got %d)" ctx period;
      Random_churn { fraction; leave; down; period }
  | _ -> fail "%s: expected an object" ctx

let adversary_of_json ~ctx j =
  let fields = obj ~ctx ~keys:[ "budget"; "from" ] j in
  let budget = req ~ctx fields "budget" dec_int in
  if budget < 0 then fail "%s.budget: must be >= 0 (got %d)" ctx budget;
  (match opt ~ctx fields "from" dec_string ~default:"spanner" with
  | "spanner" -> ()
  | f -> fail "%s.from: unknown jitter target %S (want spanner)" ctx f);
  { budget }

let of_json j =
  let ctx = "scenario" in
  let keys =
    [ "name"; "seed"; "schedules"; "churn"; "adversary"; "epoch"; "track-phi" ]
  in
  let fields = obj ~ctx ~keys j in
  let name = opt ~ctx fields "name" dec_string ~default:"scenario" in
  let seed = opt ~ctx fields "seed" dec_int ~default:1 in
  let rules =
    opt ~ctx fields "schedules" dec_list ~default:[]
    |> List.mapi (fun i -> rule_of_json ~ctx:(Printf.sprintf "schedules[%d]" i))
  in
  let churn =
    opt ~ctx fields "churn" dec_list ~default:[]
    |> List.mapi (fun i -> churn_of_json ~ctx:(Printf.sprintf "churn[%d]" i))
  in
  let adversary =
    match List.assoc_opt "adversary" fields with
    | None | Some Json.Null -> None
    | Some j -> Some (adversary_of_json ~ctx:"adversary" j)
  in
  let epoch = opt ~ctx fields "epoch" dec_int ~default:default_epoch in
  if epoch < 1 then fail "%s.epoch: must be >= 1 (got %d)" ctx epoch;
  let track_phi = opt ~ctx fields "track-phi" dec_bool ~default:false in
  { name; seed; rules; churn; adversary; epoch; track_phi }

let filter_to_json = function
  | All -> Json.Obj [ ("kind", Json.String "all") ]
  | Lat_ge l -> Json.Obj [ ("kind", Json.String "lat-ge"); ("latency", Json.Int l) ]
  | Lat_le l -> Json.Obj [ ("kind", Json.String "lat-le"); ("latency", Json.Int l) ]
  | Endpoint_mod { modulus; residue } ->
      Json.Obj
        [
          ("kind", Json.String "endpoint-mod");
          ("modulus", Json.Int modulus);
          ("residue", Json.Int residue);
        ]

let rule_to_json { schedule; filter } =
  let base =
    match schedule with
    | Linear { rate; cap } ->
        [
          ("kind", Json.String "linear");
          ("rate", Json.Float rate);
          ("cap", Json.Float cap);
        ]
    | Diurnal { amplitude; period; phase } ->
        [
          ("kind", Json.String "diurnal");
          ("amplitude", Json.Float amplitude);
          ("period", Json.Int period);
          ("phase", Json.Int phase);
        ]
    | Step { at; factor } ->
        [
          ("kind", Json.String "step");
          ("at", Json.Int at);
          ("factor", Json.Float factor);
        ]
    | Trace { multipliers; dilate } ->
        [
          ("kind", Json.String "trace");
          ( "multipliers",
            Json.List
              (Array.to_list multipliers |> List.map (fun m -> Json.Float m)) );
          ("dilate", Json.Int dilate);
        ]
  in
  Json.Obj (base @ [ ("filter", filter_to_json filter) ])

let churn_to_json = function
  | Leave { node; leave; rejoin } ->
      Json.Obj
        ([ ("node", Json.Int node); ("leave", Json.Int leave) ]
        @ match rejoin with None -> [] | Some r -> [ ("rejoin", Json.Int r) ])
  | Random_churn { fraction; leave; down; period } ->
      Json.Obj
        [
          ("kind", Json.String "random");
          ("fraction", Json.Float fraction);
          ("leave", Json.Int leave);
          ("down", Json.Int down);
          ("period", Json.Int period);
        ]

let to_json s =
  Json.Obj
    ([
       ("name", Json.String s.name);
       ("seed", Json.Int s.seed);
       ("schedules", Json.List (List.map rule_to_json s.rules));
       ("churn", Json.List (List.map churn_to_json s.churn));
     ]
    @ (match s.adversary with
      | None -> []
      | Some { budget } ->
          [
            ( "adversary",
              Json.Obj
                [ ("budget", Json.Int budget); ("from", Json.String "spanner") ]
            );
          ])
    @ [ ("epoch", Json.Int s.epoch); ("track-phi", Json.Bool s.track_phi) ])

let of_string s =
  match Json.of_string s with
  | Ok j -> of_json j
  | Error e -> fail "scenario: bad JSON: %s" e

let load path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e -> fail "scenario: cannot read %s: %s" path e
  in
  of_string contents

(* ------------------------------------------------------------------ *)
(* Compilation: resolve the declarative plan against a concrete graph
   into pure closures.  Everything the closures capture is immutable
   after this point (int arrays, a frozen hash table), which is what
   makes them safe to evaluate from any domain under [?domains]. *)

(* splitmix64 finalizer — the deterministic hash behind per-edge trace
   offsets and per-(edge, round) adversary jitter. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash3 seed a b =
  let open Int64 in
  let z = mix64 (add (of_int seed) (mul (of_int (a + 1)) 0x9e3779b97f4a7c15L)) in
  let z = mix64 (add z (mul (of_int (b + 1)) 0xc2b2ae3d27d4eb4fL)) in
  to_int (logand z 0x3fffffffffffffffL)

let hash4 seed a b c =
  let open Int64 in
  let z = mix64 (add (of_int (hash3 seed a b)) (mul (of_int (c + 1)) 0x9e3779b97f4a7c15L)) in
  to_int (logand z 0x3fffffffffffffffL)

let two_pi = 2.0 *. Float.pi

let matches filter ~u ~v ~latency =
  match filter with
  | All -> true
  | Lat_ge l -> latency >= l
  | Lat_le l -> latency <= l
  | Endpoint_mod { modulus; residue } -> min u v mod modulus = residue

let rule_factor ~seed idx { schedule; filter } ~u ~v ~latency ~round =
  if not (matches filter ~u ~v ~latency) then 1.0
  else
    match schedule with
    | Linear { rate; cap } ->
        Float.min cap (1.0 +. (rate *. float_of_int round))
    | Diurnal { amplitude; period; phase } ->
        1.0
        +. amplitude
           *. (1.0
              +. sin (two_pi *. float_of_int (round + phase) /. float_of_int period))
           /. 2.0
    | Step { at; factor } -> if round >= at then factor else 1.0
    | Trace { multipliers; dilate } ->
        let len = Array.length multipliers in
        let off = hash3 (seed + idx) (min u v) (max u v) mod len in
        multipliers.(((round / dilate) + off) mod len)

let rule_max_factor { schedule; filter = _ } =
  match schedule with
  | Linear { cap; _ } -> cap
  | Diurnal { amplitude; _ } -> 1.0 +. amplitude
  | Step { factor; _ } -> Float.max 1.0 factor
  | Trace { multipliers; _ } ->
      Array.fold_left Float.max 1.0 multipliers

type compiled = {
  scenario : t;
  env : Gossip_scale.Wheel_engine.env;
  wheel_latency : int;
  epoch : int;
}

(* Absence intervals per node: [(leave, stop)] means the node is away
   during rounds [leave .. stop - 1]; [stop = max_int] means forever.
   A node that was away at any point of [since .. round] missed every
   exchange initiated toward its previous incarnation. *)
let churn_intervals s ~n ~source =
  let intervals = Array.make n [] in
  let add ~ctx node leave stop =
    if node < 0 || node >= n then
      fail "%s: node %d out of range for an n=%d graph" ctx node n;
    if node = source then
      fail
        "%s: plan churns the broadcast source (node %d); a run whose source \
         leaves is undefined"
        ctx node;
    intervals.(node) <- (leave, stop) :: intervals.(node)
  in
  List.iteri
    (fun i entry ->
      let ctx = Printf.sprintf "scenario.churn[%d]" i in
      match entry with
      | Leave { node; leave; rejoin } ->
          add ~ctx node leave (Option.value rejoin ~default:max_int)
      | Random_churn { fraction; leave; down; period } ->
          (* Round to nearest: truncation compiles small fractions on
             small graphs to zero churn, silently disabling the entry. *)
          let count = min n (int_of_float (Float.round (fraction *. float_of_int n))) in
          if fraction > 0.0 && count = 0 then
            fail
              "%s: fraction %g of an n=%d graph rounds to zero churned nodes — raise \
               the fraction or drop the entry"
              ctx fraction n;
          if count > 0 then begin
            let rng = Rng.of_int (s.seed + (7919 * (i + 1))) in
            Rng.sample_without_replacement rng count n
            |> Array.iteri (fun j node ->
                   if node <> source then
                     let l = leave + (j mod period) in
                     intervals.(node) <- (l, l + down) :: intervals.(node))
          end)
    s.churn;
  Array.iteri (fun v l -> intervals.(v) <- List.rev l) intervals;
  intervals

let compile ?oriented s ~csr ~source =
  let n = Gossip_scale.Csr.n csr in
  let intervals = churn_intervals s ~n ~source in
  let has_churn = Array.exists (fun l -> l <> []) intervals in
  let rules = Array.of_list s.rules in
  let seed = s.seed in
  let adv =
    match s.adversary with
    | None -> None
    | Some { budget } -> (
        match oriented with
        | None ->
            fail
              "scenario.adversary: targets spanner edges but no spanner \
               orientation was provided (adversarial scenarios need a spanner \
               protocol)"
        | Some o ->
            let edges = Hashtbl.create 1024 in
            for u = 0 to Gossip_scale.Csr.oriented_n o - 1 do
              Gossip_scale.Csr.oriented_iter_out o u (fun v _ ->
                  Hashtbl.replace edges ((min u v * n) + max u v) ())
            done;
            Some (edges, budget))
  in
  let env_alive ~node ~round =
    List.for_all (fun (l, r) -> round < l || round >= r) intervals.(node)
  in
  let env_present_since ~node ~since ~round =
    List.for_all (fun (l, r) -> l > round || r <= since) intervals.(node)
  in
  let env_rejoin ~node ~round =
    List.exists (fun (_, r) -> r = round) intervals.(node)
  in
  let env_latency ~u ~v ~latency ~round =
    let f = ref 1.0 in
    for i = 0 to Array.length rules - 1 do
      f := !f *. rule_factor ~seed i rules.(i) ~u ~v ~latency ~round
    done;
    let stretched =
      if !f = 1.0 then latency
      else max 1 (int_of_float (Float.round (float_of_int latency *. !f)))
    in
    match adv with
    | Some (edges, budget)
      when budget > 0 && Hashtbl.mem edges ((min u v * n) + max u v) ->
        stretched + (hash4 seed (min u v) (max u v) round mod (budget + 1))
    | _ -> stretched
  in
  let env : Gossip_scale.Wheel_engine.env =
    {
      env_alive;
      env_present_since;
      env_drop = (fun ~initiator:_ ~responder:_ ~round:_ -> false);
      env_latency;
      env_rejoin;
      env_has_churn = has_churn;
    }
  in
  let lmax = Gossip_scale.Csr.max_latency csr in
  let max_factor =
    List.fold_left (fun acc r -> acc *. rule_max_factor r) 1.0 s.rules
  in
  let budget = match s.adversary with None -> 0 | Some { budget } -> budget in
  let wheel_latency =
    max lmax (int_of_float (Float.ceil (float_of_int lmax *. max_factor))) + budget
  in
  { scenario = s; env; wheel_latency; epoch = s.epoch }

(* ------------------------------------------------------------------ *)
(* Live φ_ℓ / ℓ* tracking. *)

let max_epochs = 64
let max_probe_lats = 8

let subsample lats k =
  let n = List.length lats in
  if n <= k then lats
  else
    let a = Array.of_list lats in
    List.init k (fun i -> a.(i * (n - 1) / (k - 1))) |> List.sort_uniq compare

let probe ?(iterations = 60) c ~csr ~round =
  let g =
    Graph.map_latencies
      (fun u v l -> c.env.Gossip_scale.Wheel_engine.env_latency ~u ~v ~latency:l ~round)
      (Gossip_scale.Csr.to_graph csr)
  in
  let lats = subsample (Graph.distinct_latencies g) max_probe_lats in
  List.fold_left
    (fun acc l ->
      let phi =
        Gossip_conductance.Spectral.phi_ell ~iterations ~seed:c.scenario.seed g l
      in
      if phi > 0.0 then
        let bound = float_of_int l /. phi in
        match acc with
        | Some (_, _, best) when best <= bound -> acc
        | _ -> Some (l, phi, bound)
      else acc)
    None lats

let observer ?iterations c ~csr ~telemetry =
  if not c.scenario.track_phi then fun ~round:_ ~informed:_ -> ()
  else begin
    let next = ref 0 in
    let k = ref 0 in
    fun ~round ~informed:_ ->
      if !k < max_epochs && round >= !next then begin
        (match probe ?iterations c ~csr ~round with
        | Some (ell_star, phi, bound) ->
            let open Gossip_obs.Registry in
            set (gauge telemetry (Printf.sprintf "dyn.epoch.%d.ell_star" !k)) ell_star;
            set
              (gauge telemetry (Printf.sprintf "dyn.epoch.%d.phi_ell_ppm" !k))
              (int_of_float (phi *. 1e6));
            set
              (gauge telemetry (Printf.sprintf "dyn.epoch.%d.bound" !k))
              (int_of_float (Float.ceil bound))
        | None -> ());
        incr k;
        next := !next + c.epoch
      end
  end
