(** Declarative dynamic-network scenarios.

    The paper's guarantees — push-pull's [O(ℓ*/φ* · log n)] bound, the
    RR/spanner stack's weighted-diameter bounds — are proved on a {e
    static} latency assignment.  A [Scenario.t] describes how the
    network moves during a broadcast: latency {b schedules} (drift,
    diurnal swing, step changes, RTT-trace multipliers), node {b
    churn} (leave / rejoin with amnesia), and an {b adversary} that
    concentrates jitter on the Baswana–Sen spanner edges the RR stack
    depends on.  Scenarios are JSON-loadable, deterministic in the
    scenario [seed], and {!compile} to a {!Gossip_scale.Wheel_engine.env} — the
    time-indexed generalization of the engine's fault hook — so every
    kernel runs under the same plans unchanged.

    A scenario with no schedules, churn, or adversary is the {e
    trivial} scenario: its compiled environment never rewrites a
    latency or a presence bit, and runs are bit-identical to the
    static engine.

    {2 JSON schema}

    {v
    { "name": "drift",                       (optional, default "scenario")
      "seed": 1,                             (optional, default 1)
      "schedules": [                         (optional, default [])
        { "kind": "linear",  "rate": 0.05, "cap": 4.0,
          "filter": { "kind": "lat-ge", "latency": 4 } },
        { "kind": "diurnal", "amplitude": 0.5, "period": 64, "phase": 0 },
        { "kind": "step",    "at": 50, "factor": 2.0 },
        { "kind": "trace",   "multipliers": [1.0, 1.5, 2.0], "dilate": 10 } ],
      "churn": [                             (optional, default [])
        { "node": 5, "leave": 10, "rejoin": 20 },      (rejoin optional)
        { "kind": "random", "fraction": 0.01,
          "leave": 30, "down": 15, "period": 8 } ],    (period optional)
      "adversary": { "budget": 3, "from": "spanner" }, (optional)
      "epoch": 32,                           (optional, φ-probe spacing)
      "track-phi": true }                    (optional, default false)
    v}

    Filters select which edges a schedule rewrites: ["all"] (default),
    ["lat-ge"] / ["lat-le"] (by static latency), ["endpoint-mod"]
    (edges whose smaller endpoint id satisfies
    [min u v mod modulus = residue]).  Unknown kinds, unknown fields,
    and negative times are rejected with {!Invalid_scenario}. *)

(** Raised on any malformed scenario: bad JSON, unknown schedule /
    filter / churn kind, unknown field, negative time, out-of-range
    parameter, or a plan that churns the broadcast source.  The
    message names the offending field. *)
exception Invalid_scenario of string

(** Which edges a schedule applies to.  [Endpoint_mod] matches edges
    whose smaller endpoint satisfies [min u v mod modulus = residue] —
    a cheap deterministic way to single out a slice of the graph. *)
type filter =
  | All
  | Lat_ge of int
  | Lat_le of int
  | Endpoint_mod of { modulus : int; residue : int }

(** A latency multiplier as a function of the round (and, for
    [Trace], of the edge identity). *)
type schedule =
  | Linear of { rate : float; cap : float }
      (** factor [min cap (1 + rate·round)]; [rate >= 0], [cap >= 1] *)
  | Diurnal of { amplitude : float; period : int; phase : int }
      (** factor [1 + amplitude·(1 + sin 2π(round+phase)/period)/2] —
          swings between 1 and [1 + amplitude] *)
  | Step of { at : int; factor : float }
      (** factor 1 before round [at], [factor] from it on *)
  | Trace of { multipliers : float array; dilate : int }
      (** per-edge RTT trace: edge [(u,v)] at round [r] uses
          [multipliers.((r/dilate + offset(u,v)) mod length)] where
          [offset] is a deterministic hash of the scenario seed and
          the edge — every edge walks the same trace from its own
          phase *)

type rule = { schedule : schedule; filter : filter }

type churn =
  | Leave of { node : int; leave : int; rejoin : int option }
      (** [node] is absent during rounds [leave .. rejoin-1]
          ([rejoin = None]: forever); on rejoin it has {e forgotten
          the rumor} and must be re-informed *)
  | Random_churn of { fraction : float; leave : int; down : int; period : int }
      (** [⌊fraction·n⌋] nodes sampled from the scenario seed
          (never the source) leave at rounds staggered over
          [leave .. leave+period-1] and rejoin [down] rounds later *)

(** Adversarial jitter aimed at the spanner: every directed exchange
    over a spanner edge suffers additive jitter in [\[0, budget\]],
    drawn deterministically from (seed, edge, round).  Requires the
    spanner orientation at {!compile} time. *)
type adversary = { budget : int }

type t = {
  name : string;
  seed : int;
  rules : rule list;
  churn : churn list;
  adversary : adversary option;
  epoch : int;  (** rounds between φ_ℓ/ℓ* probes (default 32) *)
  track_phi : bool;
}

(** The trivial scenario: no schedules, churn, or adversary. *)
val static : t

(** [is_static s] holds when [s] rewrites nothing — compiled runs are
    bit-identical to the plain engine. *)
val is_static : t -> bool

(** {1 Serialization} *)

(** [of_json j] validates and decodes.  @raise Invalid_scenario *)
val of_json : Gossip_util.Json.t -> t

(** [to_json s] inverts {!of_json} ([of_json (to_json s) = s]) — the
    form the gossipd [submit] request embeds. *)
val to_json : t -> Gossip_util.Json.t

(** [of_string s] parses one JSON document.  @raise Invalid_scenario *)
val of_string : string -> t

(** [load path] reads and parses a scenario file.
    @raise Invalid_scenario on unreadable file or bad contents *)
val load : string -> t

(** {1 Compilation} *)

type compiled = {
  scenario : t;
  env : Gossip_scale.Wheel_engine.env;  (** pure closures — safe under [?domains] *)
  wheel_latency : int;
      (** upper bound on every effective latency the plan can produce
          ([ℓ_max · ∏ max-factors + budget]) — pass as the engine's
          [?wheel_latency] *)
  epoch : int;
}

(** [compile ?oriented s ~csr ~source] resolves the plan against a
    concrete graph: samples random churn, checks explicit churn nodes
    are in range, and builds the environment closures.  [oriented] is
    the spanner orientation the adversary targets — required when
    [s.adversary] is set.
    @raise Invalid_scenario when the plan churns [source] (the engine
    would otherwise never complete: a broadcast whose source leaves
    before informing anyone is undefined), when a churn node is out of
    range, or when an adversary has no orientation to aim at. *)
val compile : ?oriented:Gossip_scale.Csr.oriented -> t -> csr:Gossip_scale.Csr.t -> source:int -> compiled

(** {1 Live φ_ℓ / ℓ* tracking}

    [observer c ~csr ~telemetry] is an [?on_round] hook that, every
    [c.epoch] rounds (at most [max_epochs] times), rebuilds the
    effective latency assignment at that round and probes the weighted
    conductance profile with {!Gossip_conductance.Spectral.phi_ell}:
    for each distinct effective latency [ℓ] (at most [max_probe_lats],
    evenly subsampled beyond that) it estimates [φ_ℓ] and takes
    [ℓ* = argmin ℓ/φ_ℓ].  Epoch [k]'s result lands in three gauges:

    - [dyn.epoch.<k>.ell_star] — the minimizing latency [ℓ*];
    - [dyn.epoch.<k>.phi_ell_ppm] — [φ_{ℓ*}] in parts per million;
    - [dyn.epoch.<k>.bound] — [⌈ℓ*/φ_{ℓ*}⌉], the shape of push-pull's
      round bound, the series e16 asserts grows under drift.

    A no-op closure when [c.scenario.track_phi] is false.
    [iterations] tunes the spectral sweep (default 60: probes ride on
    the round loop, so they trade accuracy for latency). *)
val observer :
  ?iterations:int ->
  compiled ->
  csr:Gossip_scale.Csr.t ->
  telemetry:Gossip_obs.Registry.t ->
  round:int ->
  informed:int ->
  unit

val max_epochs : int

val max_probe_lats : int
