(** Fixed-capacity structured event buffer for round tracing.

    A ring holds [(round, kind, node, value)] integer records in four
    parallel arrays: recording is a handful of array stores — no
    allocation — so engines can trace every round of a 10^6-node run.
    Two knobs keep the volume bounded: a {e sampling} stride (keep
    every [sample]-th offered event) and the fixed capacity (once
    full, the oldest record is overwritten).  [seen]/[kept] counters
    make any loss visible downstream, so a telemetry file can never
    silently pass truncated data off as complete. *)

type t

(** Canonical event kinds shared by the instrumented layers (see the
    JSONL schema in DESIGN.md).  Instrumentation may use further kind
    ids; [kind_name] falls back to ["k<i>"] for them. *)

val kind_informed : int
(** informed-set size at the end of a round ([node = -1]) *)

val kind_deliveries : int
(** messages delivered during a round *)

val kind_initiations : int
(** exchanges initiated during a round *)

val kind_drops : int
(** messages lost to faults during a round *)

val kind_queue : int
(** pending-event population at the end of a round: heap length for
    the reference engine, in-flight exchanges for the wheel engine *)

val kind_name : int -> string

(** [create ?sample ~capacity ()] builds an empty ring.  [sample]
    (default 1) keeps every [sample]-th offered record, counting from
    the first.
    @raise Invalid_argument when [capacity < 1] or [sample < 1]. *)
val create : ?sample:int -> capacity:int -> unit -> t

val capacity : t -> int

val sample : t -> int

(** [record t ~round ~kind ~node ~value] offers one event.  Events
    skipped by sampling still advance the [seen] counter. *)
val record : t -> round:int -> kind:int -> node:int -> value:int -> unit

(** Records currently held (at most [capacity]). *)
val length : t -> int

(** Total events offered, including sampled-out and overwritten ones. *)
val seen : t -> int

(** Total events stored (length plus overwritten). *)
val kept : t -> int

(** [iter t f] visits held records oldest-first. *)
val iter : t -> (round:int -> kind:int -> node:int -> value:int -> unit) -> unit

(** Held records oldest-first, as [(round, kind, node, value)]. *)
val to_list : t -> (int * int * int * int) list
