(** A thread-safe mailbox for streaming telemetry between threads.

    The serve daemon's worker thread publishes per-round progress
    events while an engine run is in flight; the socket loop drains
    them on its next tick and fans them out to [watch] subscribers.
    The mailbox is the only synchronization point between the two
    sides: publishing is a mutex-protected enqueue (no allocation
    beyond the list cell), so it is cheap enough to call from an
    engine [on_round] hook, and draining hands back every pending
    event at once, oldest first.

    A bounded mailbox drops the {e oldest} events on overflow —
    progress streams are snapshots, so the freshest event is the one
    that must survive — and counts what it dropped, so a slow consumer
    degrades to coarser progress rather than unbounded memory. *)

type 'a t

(** [create ?capacity ()] builds an empty mailbox holding at most
    [capacity] pending events (default 4096).
    @raise Invalid_argument if [capacity < 1]. *)
val create : ?capacity:int -> unit -> 'a t

(** [publish t ev] enqueues [ev], evicting the oldest pending event
    when the mailbox is full. *)
val publish : 'a t -> 'a -> unit

(** [drain t] removes and returns every pending event, oldest first. *)
val drain : 'a t -> 'a list

(** [pending t] is the number of undrained events. *)
val pending : 'a t -> int

(** [dropped t] counts events evicted by overflow since [create]. *)
val dropped : 'a t -> int
