module Json = Gossip_util.Json

type report = {
  label : string;
  depth : int;
  elapsed_s : float;
  minor_words : float;
  promoted_words : float;
  major_collections : int;
}

type t = {
  span_label : string;
  span_depth : int;
  t0 : float;
  (* [Gc.quick_stat] only folds the running domain's minor allocations
     in at a minor collection, so a short span would read a zero delta;
     [Gc.minor_words] reads the live allocation pointer instead. *)
  m0 : float;
  gc0 : Gc.stat;
  mutable closed : bool;
}

let current_depth = ref 0

let enter label =
  let depth = !current_depth in
  incr current_depth;
  {
    span_label = label;
    span_depth = depth;
    t0 = Unix.gettimeofday ();
    m0 = Gc.minor_words ();
    gc0 = Gc.quick_stat ();
    closed = false;
  }

let exit t =
  if t.closed then invalid_arg "Span.exit: span already exited";
  t.closed <- true;
  decr current_depth;
  let t1 = Unix.gettimeofday () in
  let gc1 = Gc.quick_stat () in
  {
    label = t.span_label;
    depth = t.span_depth;
    elapsed_s = t1 -. t.t0;
    minor_words = Gc.minor_words () -. t.m0;
    promoted_words = gc1.Gc.promoted_words -. t.gc0.Gc.promoted_words;
    major_collections = gc1.Gc.major_collections - t.gc0.Gc.major_collections;
  }

let timed label f =
  let span = enter label in
  match f () with
  | y -> (y, exit span)
  | exception e ->
      ignore (exit span);
      raise e

let report_json r =
  [
    ("ev", Json.String "span");
    ("label", Json.String r.label);
    ("depth", Json.Int r.depth);
    ("elapsed_s", Json.Float r.elapsed_s);
    ("minor_words", Json.Float r.minor_words);
    ("promoted_words", Json.Float r.promoted_words);
    ("major_collections", Json.Int r.major_collections);
  ]

let pp_report ppf r =
  Format.fprintf ppf "%s%s: %.6fs (minor %.0fw, promoted %.0fw, major gcs %d)"
    (String.make (2 * r.depth) ' ')
    r.label r.elapsed_s r.minor_words r.promoted_words r.major_collections
