module Json = Gossip_util.Json
module Stats = Gossip_util.Stats

type hist = { hist_count : int; hist_sum : int; hist_mean : float }

type t = {
  path : string;
  events : int;
  parse_errors : int;
  by_ev : (string * int) list;
  job_elapsed_s : float array;
  job_rounds : float array;
  failed_jobs : int;
  job_latency : Stats.summary option;
  rounds_summary : Stats.summary option;
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist) list;
  final_informed : (int * int) option;
}

let field name = function Json.Obj fields -> List.assoc_opt name fields | _ -> None

let as_float = function
  | Some (Json.Float x) -> Some x
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let as_int = function Some (Json.Int i) -> Some i | _ -> None

let as_string = function Some (Json.String s) -> Some s | _ -> None

let of_file path =
  let ic = open_in path in
  let events = ref 0 and parse_errors = ref 0 in
  let ev_order = ref [] and ev_counts = Hashtbl.create 8 in
  let job_elapsed = ref [] and job_rounds = ref [] and failed_jobs = ref 0 in
  let counters = Hashtbl.create 8 and gauges = Hashtbl.create 8 and hists = Hashtbl.create 8 in
  let final_informed = ref None in
  let handle line =
    match Json.of_string line with
    | Error _ -> incr parse_errors
    | Ok j -> (
        incr events;
        let ev = Option.value ~default:"?" (as_string (field "ev" j)) in
        if not (Hashtbl.mem ev_counts ev) then begin
          ev_order := ev :: !ev_order;
          Hashtbl.add ev_counts ev 0
        end;
        Hashtbl.replace ev_counts ev (Hashtbl.find ev_counts ev + 1);
        match ev with
        | "job" ->
            (match as_float (field "elapsed_s" j) with
            | Some x -> job_elapsed := x :: !job_elapsed
            | None -> ());
            (match as_int (field "rounds" j) with
            | Some r -> job_rounds := float_of_int r :: !job_rounds
            | None -> ())
        | "job_error" -> incr failed_jobs
        | "counter" -> (
            match (as_string (field "name" j), as_int (field "value" j)) with
            | Some name, Some v -> Hashtbl.replace counters name v
            | _ -> ())
        | "gauge" -> (
            match (as_string (field "name" j), as_int (field "value" j)) with
            | Some name, Some v -> Hashtbl.replace gauges name v
            | _ -> ())
        | "hist" -> (
            match as_string (field "name" j) with
            | Some name ->
                let get f = Option.value ~default:0 (as_int (field f j)) in
                let mean = Option.value ~default:nan (as_float (field "mean" j)) in
                Hashtbl.replace hists name
                  { hist_count = get "count"; hist_sum = get "sum"; hist_mean = mean }
            | None -> ())
        | "trace" -> (
            match (as_string (field "kind" j), as_int (field "round" j), as_int (field "value" j)) with
            | Some "informed", Some round, Some value -> final_informed := Some (round, value)
            | _ -> ())
        | _ -> ())
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then handle line
     done
   with
  | End_of_file -> close_in ic
  | e ->
      close_in ic;
      raise e);
  let sorted table = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare in
  let job_elapsed_s = Array.of_list (List.rev !job_elapsed) in
  let job_rounds = Array.of_list (List.rev !job_rounds) in
  let summary a = if Array.length a = 0 then None else Some (Stats.summarize a) in
  {
    path;
    events = !events;
    parse_errors = !parse_errors;
    by_ev = List.rev_map (fun ev -> (ev, Hashtbl.find ev_counts ev)) !ev_order;
    job_elapsed_s;
    job_rounds;
    failed_jobs = !failed_jobs;
    job_latency = summary job_elapsed_s;
    rounds_summary = summary job_rounds;
    counters = sorted counters;
    gauges = sorted gauges;
    hists = sorted hists;
    final_informed = !final_informed;
  }

let job_percentile t p =
  if Array.length t.job_elapsed_s = 0 then nan else Stats.percentile t.job_elapsed_s p

let pp ppf t =
  Format.fprintf ppf "telemetry report: %s@\n" t.path;
  Format.fprintf ppf "  events: %d (parse errors: %d)@\n" t.events t.parse_errors;
  if t.by_ev <> [] then begin
    Format.fprintf ppf "  event counts:@\n";
    List.iter (fun (ev, n) -> Format.fprintf ppf "    %s: %d@\n" ev n) t.by_ev
  end;
  let jobs = Array.length t.job_elapsed_s in
  if jobs > 0 || t.failed_jobs > 0 then begin
    Format.fprintf ppf "  jobs: %d total, %d completed%t@\n" (jobs + t.failed_jobs)
      (Array.length t.job_rounds) (fun ppf ->
        if t.failed_jobs > 0 then Format.fprintf ppf ", %d failed" t.failed_jobs);
    (match t.rounds_summary with
    | Some s ->
        Format.fprintf ppf "    rounds: mean=%.1f p50=%.1f p95=%.1f max=%.0f@\n" s.Stats.mean
          s.Stats.median s.Stats.p95 s.Stats.max
    | None -> ());
    match t.job_latency with
    | Some s ->
        Format.fprintf ppf "    elapsed_s: mean=%.6f p50=%.6f p95=%.6f max=%.6f@\n" s.Stats.mean
          s.Stats.median s.Stats.p95 s.Stats.max
    | None -> ()
  end;
  if t.counters <> [] then begin
    Format.fprintf ppf "  counters:@\n";
    List.iter (fun (name, v) -> Format.fprintf ppf "    %s = %d@\n" name v) t.counters
  end;
  if t.gauges <> [] then begin
    Format.fprintf ppf "  gauges:@\n";
    List.iter (fun (name, v) -> Format.fprintf ppf "    %s = %d@\n" name v) t.gauges
  end;
  if t.hists <> [] then begin
    Format.fprintf ppf "  histograms:@\n";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "    %s: count=%d sum=%d mean=%.1f@\n" name h.hist_count h.hist_sum
          h.hist_mean)
      t.hists
  end;
  match t.final_informed with
  | Some (round, value) -> Format.fprintf ppf "  informed: %d at round %d@\n" value round
  | None -> ()
