(** Named counters, gauges, and log-bucketed integer histograms.

    The registry is the hot-path half of the telemetry subsystem:
    every metric is resolved to a handle once (a hash lookup at
    registration) and then updated by plain mutable-field writes or
    flat-int-array increments — zero allocation per update, so an
    instrumented engine round costs a handful of stores.

    Registries are {e mergeable}: each worker domain of a sweep owns a
    private registry and the orchestrator folds them together at join
    with {!merge}.  Merge is associative and commutative (counters and
    histogram buckets add, gauges take the maximum), so the fold order
    never changes the result — a property the test suite locks under
    qcheck.

    A registry can carry an optional {!Ring} so that layers which only
    receive a [Registry.t] (the engines' [?telemetry] argument) can
    also emit per-round trace events. *)

type t

type counter

type gauge

type histogram

(** [create ?ring ()] builds an empty registry, optionally carrying an
    event ring for round tracing. *)
val create : ?ring:Ring.t -> unit -> t

val ring : t -> Ring.t option

(** [counter t name] returns the counter registered under [name],
    creating it at zero on first use.
    @raise Invalid_argument if [name] is registered with another
    metric kind. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge

val histogram : t -> string -> histogram

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** [set g v] overwrites the gauge. *)
val set : gauge -> int -> unit

(** [record_max g v] raises the gauge to [v] if larger — high-water
    marks (queue depth, in-flight exchanges) merge cleanly this way. *)
val record_max : gauge -> int -> unit

val gauge_value : gauge -> int

(** [observe h v] increments the bucket containing [v].  Buckets are
    log-spaced with four sub-buckets per power of two (relative width
    <= 25%); negative and zero values share bucket 0.  Exact [count]
    and [sum] are kept alongside, so means are exact and only
    percentiles are approximate. *)
val observe : histogram -> int -> unit

val hist_count : histogram -> int

val hist_sum : histogram -> int

(** Mean of the observed values (exact); [nan] when empty. *)
val hist_mean : histogram -> float

(** [hist_percentile h p] for [p] in [0, 100]: linear interpolation
    inside the bucket holding the rank-[p] observation.  Accurate to
    the bucket width (<= 25% relative error); [nan] when empty. *)
val hist_percentile : histogram -> float -> float

(** Non-empty buckets as [(lo, hi, count)], ascending. *)
val hist_buckets : histogram -> (int * int * int) list

(** [merge ~into src] folds [src] into [into]: counters and histogram
    buckets add, gauges take the maximum.  Metrics missing from [into]
    are created.  [src] is not modified.
    @raise Invalid_argument on a name registered with different kinds
    in the two registries. *)
val merge : into:t -> t -> unit

(** Registered names with their kind ([`Counter | `Gauge | `Histogram]),
    sorted by name. *)
val names : t -> (string * [ `Counter | `Gauge | `Histogram ]) list

(** [counters t] is a point-in-time snapshot of every counter as
    [(name, value)], sorted by name — the scalar half of {!to_json}
    for layers (the serve daemon's [stats] response) that need typed
    values rather than a JSON tree. *)
val counters : t -> (string * int) list

(** [gauges t] is the gauge snapshot, shaped like {!counters}. *)
val gauges : t -> (string * int) list

(** Snapshot as a JSON object with ["counters"], ["gauges"] and
    ["histograms"] fields (names sorted; histogram entries carry
    [count], [sum], [mean] and non-empty [buckets]). *)
val to_json : t -> Gossip_util.Json.t
