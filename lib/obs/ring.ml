type t = {
  sample : int;
  capacity : int;
  rounds : int array;
  kinds : int array;
  nodes : int array;
  values : int array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable seen : int;
  mutable kept : int;
}

let kind_informed = 0

let kind_deliveries = 1

let kind_initiations = 2

let kind_drops = 3

let kind_queue = 4

let kind_name = function
  | 0 -> "informed"
  | 1 -> "deliveries"
  | 2 -> "initiations"
  | 3 -> "drops"
  | 4 -> "queue"
  | k -> Printf.sprintf "k%d" k

let create ?(sample = 1) ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  if sample < 1 then invalid_arg "Ring.create: sample must be >= 1";
  {
    sample;
    capacity;
    rounds = Array.make capacity 0;
    kinds = Array.make capacity 0;
    nodes = Array.make capacity 0;
    values = Array.make capacity 0;
    head = 0;
    len = 0;
    seen = 0;
    kept = 0;
  }

let capacity t = t.capacity

let sample t = t.sample

let record t ~round ~kind ~node ~value =
  let i = t.seen in
  t.seen <- i + 1;
  if i mod t.sample = 0 then begin
    let h = t.head in
    t.rounds.(h) <- round;
    t.kinds.(h) <- kind;
    t.nodes.(h) <- node;
    t.values.(h) <- value;
    t.head <- (if h + 1 = t.capacity then 0 else h + 1);
    if t.len < t.capacity then t.len <- t.len + 1;
    t.kept <- t.kept + 1
  end

let length t = t.len

let seen t = t.seen

let kept t = t.kept

let iter t f =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  for i = 0 to t.len - 1 do
    let j = (start + i) mod t.capacity in
    f ~round:t.rounds.(j) ~kind:t.kinds.(j) ~node:t.nodes.(j) ~value:t.values.(j)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun ~round ~kind ~node ~value -> acc := (round, kind, node, value) :: !acc);
  List.rev !acc
