(** Nestable wall-clock timing spans with GC-pressure deltas.

    A span brackets a region of work: [enter] snapshots
    [Unix.gettimeofday] and [Gc.quick_stat], [exit] returns the
    elapsed time plus the allocation and collection activity in
    between.  Spans nest — each report carries the depth at which it
    was opened, so a bench harness can indent a timing tree.

    Depth tracking uses a single global counter: spans are meant for
    the orchestrating domain (bench sections, sweep phases), not for
    concurrent use inside worker domains. *)

type t

(** What one span measured.  Word counts are in words, as reported by
    [Gc.quick_stat]. *)
type report = {
  label : string;
  depth : int;  (** nesting depth at [enter] (0 = outermost) *)
  elapsed_s : float;
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;
  major_collections : int;
}

val enter : string -> t

(** [exit t] closes the span.
    @raise Invalid_argument if [t] was already exited. *)
val exit : t -> report

(** [timed label f] runs [f] inside a span. If [f] raises, the span is
    unwound and the exception re-raised. *)
val timed : string -> (unit -> 'a) -> 'a * report

(** [report_json r] is the JSONL-schema rendering used by {!Sink}
    (["ev" = "span"]). *)
val report_json : report -> (string * Gossip_util.Json.t) list

val pp_report : Format.formatter -> report -> unit
