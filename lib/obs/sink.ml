module Json = Gossip_util.Json

type format = Jsonl | Csv of string list

type t = { oc : out_channel; format : format; buf : Buffer.t; mutable closed : bool }

let jsonl ?(append = false) path =
  let oc =
    if append then open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
    else open_out path
  in
  { oc; format = Jsonl; buf = Buffer.create 256; closed = false }

let csv_cell buf s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  end
  else Buffer.add_string buf s

let csv path ~header =
  let t = { oc = open_out path; format = Csv header; buf = Buffer.create 256; closed = false } in
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char t.buf ',';
      csv_cell t.buf name)
    header;
  Buffer.add_char t.buf '\n';
  Buffer.output_buffer t.oc t.buf;
  Buffer.clear t.buf;
  t

let event t fields =
  if t.closed then invalid_arg "Sink.event: sink is closed";
  (match t.format with
  | Jsonl -> Json.to_buffer t.buf (Json.Obj fields)
  | Csv header ->
      List.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char t.buf ',';
          match List.assoc_opt name fields with
          | None | Some Json.Null -> ()
          | Some (Json.String s) -> csv_cell t.buf s
          | Some j -> Buffer.add_string t.buf (Json.to_string j))
        header);
  Buffer.add_char t.buf '\n';
  Buffer.output_buffer t.oc t.buf;
  Buffer.clear t.buf

let flush t = if not t.closed then flush t.oc

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end

let with_jsonl path f =
  let t = jsonl path in
  match f t with
  | y ->
      close t;
      y
  | exception e ->
      close t;
      raise e

let registry t ?(prefix = "") reg =
  List.iter
    (fun (name, kind) ->
      let name_field = ("name", Json.String (prefix ^ name)) in
      match kind with
      | `Counter ->
          event t
            [
              ("ev", Json.String "counter");
              name_field;
              ("value", Json.Int (Registry.counter_value (Registry.counter reg name)));
            ]
      | `Gauge ->
          event t
            [
              ("ev", Json.String "gauge");
              name_field;
              ("value", Json.Int (Registry.gauge_value (Registry.gauge reg name)));
            ]
      | `Histogram ->
          let h = Registry.histogram reg name in
          event t
            [
              ("ev", Json.String "hist");
              name_field;
              ("count", Json.Int (Registry.hist_count h));
              ("sum", Json.Int (Registry.hist_sum h));
              ("mean", Json.Float (Registry.hist_mean h));
              ( "buckets",
                Json.List
                  (List.map
                     (fun (lo, hi, n) -> Json.List [ Json.Int lo; Json.Int hi; Json.Int n ])
                     (Registry.hist_buckets h)) );
            ])
    (Registry.names reg)

let ring t r =
  event t
    [
      ("ev", Json.String "ring");
      ("seen", Json.Int (Ring.seen r));
      ("kept", Json.Int (Ring.kept r));
      ("sample", Json.Int (Ring.sample r));
      ("capacity", Json.Int (Ring.capacity r));
    ];
  Ring.iter r (fun ~round ~kind ~node ~value ->
      event t
        [
          ("ev", Json.String "trace");
          ("round", Json.Int round);
          ("kind", Json.String (Ring.kind_name kind));
          ("node", Json.Int node);
          ("value", Json.Int value);
        ])
