(** Reader for telemetry JSONL files (the {!Sink} schema).

    [of_file] parses every line, tallies event kinds, and pulls out
    the distributions an operator asks for first: sweep-job latencies
    and round counts (summarized through {!Gossip_util.Stats}, so the
    printed percentiles agree exactly with offline analysis of the raw
    file), registry scalars, histogram snapshots, and the informed-set
    trajectory from trace events.  Unparseable lines are counted, not
    fatal — a truncated file still reports. *)

type hist = { hist_count : int; hist_sum : int; hist_mean : float }

type t = {
  path : string;
  events : int;  (** parsed events *)
  parse_errors : int;
  by_ev : (string * int) list;  (** event-kind counts, first-appearance order *)
  job_elapsed_s : float array;  (** ["job"] events, file order *)
  job_rounds : float array;  (** completed jobs only (non-null [rounds]) *)
  failed_jobs : int;  (** ["job_error"] events *)
  job_latency : Gossip_util.Stats.summary option;
      (** summary of [job_elapsed_s]; [None] when there are no jobs *)
  rounds_summary : Gossip_util.Stats.summary option;
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  hists : (string * hist) list;
  final_informed : (int * int) option;
      (** last ["trace"] event of kind ["informed"], as (round, value) *)
}

val of_file : string -> t

(** Percentile of [job_elapsed_s] via {!Gossip_util.Stats.percentile};
    [nan] when no jobs. *)
val job_percentile : t -> float -> float

val pp : Format.formatter -> t -> unit
