module Json = Gossip_util.Json

type counter = { mutable c : int }

type gauge = { mutable g : int }

(* Log-bucketed histogram: bucket 0 holds v <= 0, buckets 1..3 hold
   v = 1..3 exactly, and from v >= 4 each power of two is split into
   four sub-buckets, so bucket width is at most 25% of its lower
   bound.  62 octaves cover the whole int range in 248 buckets. *)
let nbuckets = 248

type histogram = { buckets : int array; mutable count : int; mutable sum : int }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { metrics : (string, metric) Hashtbl.t; ring : Ring.t option }

let create ?ring () = { metrics = Hashtbl.create 16; ring }

let ring t = t.ring

let kind_label = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register t name make wrap unwrap =
  match Hashtbl.find_opt t.metrics name with
  | None ->
      let m = make () in
      Hashtbl.add t.metrics name (wrap m);
      m
  | Some existing -> (
      match unwrap existing with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Registry: %S is already a %s" name (kind_label existing)))

let counter t name =
  register t name
    (fun () -> { c = 0 })
    (fun c -> Counter c)
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () -> { g = 0 })
    (fun g -> Gauge g)
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () -> { buckets = Array.make nbuckets 0; count = 0; sum = 0 })
    (fun h -> Histogram h)
    (function Histogram h -> Some h | _ -> None)

let incr c = c.c <- c.c + 1

let add c v = c.c <- c.c + v

let counter_value c = c.c

let set g v = g.g <- v

let record_max g v = if v > g.g then g.g <- v

let gauge_value g = g.g

(* Position of the most significant set bit of v > 0. *)
let msb v =
  let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
  go v 0

let bucket_index v =
  if v <= 0 then 0
  else if v < 4 then v
  else begin
    let k = msb v in
    (4 * (k - 1)) + ((v lsr (k - 2)) land 3)
  end

(* Inclusive [lo, hi] range of bucket [i]; the inverse of
   [bucket_index]. *)
let bucket_bounds i =
  if i = 0 then (min_int, 0)
  else if i < 4 then (i, i)
  else begin
    let k = (i / 4) + 1 and q = i mod 4 in
    let lo = (4 + q) lsl (k - 2) in
    (lo, lo + (1 lsl (k - 2)) - 1)
  end

let observe h v =
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v

let hist_count h = h.count

let hist_sum h = h.sum

let hist_mean h = if h.count = 0 then nan else float_of_int h.sum /. float_of_int h.count

let hist_percentile h p =
  if p < 0.0 || p > 100.0 then invalid_arg "Registry.hist_percentile: p out of [0,100]";
  if h.count = 0 then nan
  else begin
    let rank = p /. 100.0 *. float_of_int (h.count - 1) in
    let rec find i cum =
      let cum' = cum + h.buckets.(i) in
      if float_of_int cum' > rank || i = nbuckets - 1 then begin
        let lo, hi = bucket_bounds i in
        let lo = if i = 0 then 0 else lo in
        if h.buckets.(i) <= 1 then float_of_int lo
        else begin
          (* Interpolate across the bucket by rank position within it. *)
          let frac = (rank -. float_of_int cum) /. float_of_int (h.buckets.(i) - 1) in
          let frac = Float.max 0.0 (Float.min 1.0 frac) in
          float_of_int lo +. (frac *. float_of_int (hi - lo))
        end
      end
      else find (i + 1) cum'
    in
    find 0 0
  end

let hist_buckets h =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      let lo = if i = 0 then 0 else lo in
      acc := (lo, hi, h.buckets.(i)) :: !acc
    end
  done;
  !acc

let merge ~into src =
  Hashtbl.iter
    (fun name metric ->
      match metric with
      | Counter c -> add (counter into name) c.c
      | Gauge g -> record_max (gauge into name) g.g
      | Histogram h ->
          let dst = histogram into name in
          Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets;
          dst.count <- dst.count + h.count;
          dst.sum <- dst.sum + h.sum)
    src.metrics

let scalars kindp t =
  Hashtbl.fold
    (fun name metric acc -> match kindp metric with Some v -> (name, v) :: acc | None -> acc)
    t.metrics []
  |> List.sort compare

let counters t = scalars (function Counter c -> Some c.c | _ -> None) t

let gauges t = scalars (function Gauge g -> Some g.g | _ -> None) t

let names t =
  Hashtbl.fold
    (fun name metric acc ->
      let kind =
        match metric with
        | Counter _ -> `Counter
        | Gauge _ -> `Gauge
        | Histogram _ -> `Histogram
      in
      (name, kind) :: acc)
    t.metrics []
  |> List.sort compare

let to_json t =
  let sorted kindp f =
    Hashtbl.fold
      (fun name metric acc -> match kindp metric with Some m -> (name, m) :: acc | None -> acc)
      t.metrics []
    |> List.sort compare
    |> List.map (fun (name, m) -> (name, f m))
  in
  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("mean", Json.Float (hist_mean h));
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, n) -> Json.List [ Json.Int lo; Json.Int hi; Json.Int n ])
               (hist_buckets h)) );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (sorted (function Counter c -> Some c | _ -> None) (fun c -> Json.Int c.c)) );
      ("gauges", Json.Obj (sorted (function Gauge g -> Some g | _ -> None) (fun g -> Json.Int g.g)));
      ( "histograms",
        Json.Obj (sorted (function Histogram h -> Some h | _ -> None) hist_json) );
    ]
