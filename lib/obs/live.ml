type 'a t = {
  lock : Mutex.t;
  q : 'a Queue.t;
  capacity : int;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Live.create: capacity must be >= 1";
  { lock = Mutex.create (); q = Queue.create (); capacity; dropped = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let publish t ev =
  with_lock t (fun () ->
      if Queue.length t.q >= t.capacity then begin
        ignore (Queue.pop t.q);
        t.dropped <- t.dropped + 1
      end;
      Queue.push ev t.q)

let drain t =
  with_lock t (fun () ->
      let out = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      out)

let pending t = with_lock t (fun () -> Queue.length t.q)

let dropped t = with_lock t (fun () -> t.dropped)
