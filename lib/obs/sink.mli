(** Telemetry emitters: JSONL (one event object per line) and CSV.

    The JSONL schema is deliberately small and stable; DESIGN.md holds
    the authoritative table.  Every event is a flat JSON object whose
    ["ev"] field names its kind:

    - ["meta"] — free-form run metadata (tool, seed, timestamp, ...)
    - ["job"] — one sweep job outcome (family, n, rounds, elapsed_s, ...)
    - ["job_error"] — one sweep job that ultimately failed: job key
      fields plus [error] and [attempts]
    - ["retry"] — one failed attempt that was retried: job key fields
      plus [attempt] and [error]
    - ["ckpt_job"] / ["ckpt_fail"] — checkpoint records streamed by the
      sweep runtime as each job finishes (full outcome, resp. failure)
    - ["trace"] — one {!Ring} record: [round], [kind] (name), [node],
      [value]
    - ["ring"] — ring accounting preceding its trace events: [seen],
      [kept], [sample], [capacity]
    - ["counter"] / ["gauge"] — one registry scalar: [name], [value]
    - ["hist"] — one registry histogram: [name], [count], [sum],
      [mean], [buckets] as [[lo, hi, count], ...]
    - ["span"] — one {!Span.report}
    - ["bench"] — one bench-harness measurement row ([exp] names the
      experiment, remaining fields are experiment-specific)

    Files are written through [Buffer]-backed channels; [close] (or
    [with_jsonl]) flushes. *)

type t

(** [jsonl ?append path] opens a JSONL sink, truncating an existing
    file unless [append] is [true] (the mode checkpoint resume uses to
    extend a partial run's record). *)
val jsonl : ?append:bool -> string -> t

(** [csv path ~header] opens a CSV sink and writes the header row.
    Events are projected onto the header columns; missing fields
    render empty, strings are quoted only when they need it. *)
val csv : string -> header:string list -> t

(** [event t fields] writes one event.  Field order is preserved in
    JSONL output; CSV output follows the sink's header instead. *)
val event : t -> (string * Gossip_util.Json.t) list -> unit

(** [flush t] forces buffered events to disk without closing — called
    after every checkpoint record so a killed process loses at most
    the event being written. *)
val flush : t -> unit

val close : t -> unit

(** [with_jsonl path f] runs [f] over a fresh JSONL sink and closes it
    even if [f] raises. *)
val with_jsonl : string -> (t -> 'a) -> 'a

(** [registry t ?prefix reg] dumps a registry snapshot: one
    ["counter"]/["gauge"]/["hist"] event per metric, names sorted and
    prefixed with [prefix] (default none). *)
val registry : t -> ?prefix:string -> Registry.t -> unit

(** [ring t r] writes one ["ring"] accounting event followed by one
    ["trace"] event per held record, oldest first. *)
val ring : t -> Ring.t -> unit
