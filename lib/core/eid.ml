module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph

type attempt = {
  k : int;
  discovery_rounds : int;
  rr_rounds : int;
  check_rounds : int;
  spanner_out_degree : int;
  spanner_edges : int;
}

type result = {
  rounds : int;
  attempts : attempt list;
  k_final : int;
  sets : Rumor.t array;
  success : bool;
  unanimous : bool;
}

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  max 1 (go 0 1)

(* One EID(k) pass: discovery, spanner, RR broadcast.  [sets] is
   updated in place; returns the attempt record (check_rounds = 0) and
   the spanner orientation for the caller's termination check. *)
let eid_once rng g ~k ~n_hat ~sets =
  let iterations = ceil_log2 n_hat in
  let discovery_rounds = ref 0 in
  (* A DTG phase can only deadlock-guard on the cap; each phase is
     O(k log^2 n), so this cap is generous. *)
  let phase_cap = max 1000 (64 * k * iterations * iterations * 4) in
  for _ = 1 to iterations do
    let r = Dtg.phase g ~ell:k ~max_rounds:phase_cap ~rumors:sets () in
    match r.Dtg.rounds with
    | Some rounds -> discovery_rounds := !discovery_rounds + rounds
    | None -> discovery_rounds := !discovery_rounds + phase_cap
  done;
  let gk = Graph.subgraph_le g k in
  let k_spanner = ceil_log2 n_hat in
  let spanner = Spanner.build rng gk ~k:k_spanner ~n_hat () in
  let k_rr = k * ((2 * k_spanner) - 1) in
  let rr =
    Rr_broadcast.run ~base:g ~out_edges:spanner.Spanner.out_edges ~k:k_rr ~rumors:sets ()
  in
  let attempt =
    {
      k;
      discovery_rounds = !discovery_rounds;
      rr_rounds = rr.Rr_broadcast.rounds;
      check_rounds = 0;
      spanner_out_degree = Spanner.max_out_degree spanner;
      spanner_edges = Spanner.edge_count spanner;
    }
  in
  (attempt, spanner, k_rr)

let run_known_diameter rng g ~d ?n_hat () =
  if d < 1 then invalid_arg "Eid.run_known_diameter: need d >= 1";
  let n_hat = match n_hat with Some h -> max h (Graph.n g) | None -> Graph.n g in
  let sets = Rumor.initial g in
  let attempt, _spanner, _k_rr = eid_once rng g ~k:d ~n_hat ~sets in
  {
    rounds = attempt.discovery_rounds + attempt.rr_rounds;
    attempts = [ attempt ];
    k_final = d;
    sets;
    success = Rumor.all_to_all_done sets;
    unanimous = true;
  }

(* ------------------------------------------------------------------ *)
(* Known-diameter EID on the flat CSR scale engine: the same spanner
   route — k-DTG local spread, Baswana–Sen on G_k, RR Broadcast over
   the orientation — but single-rumor (broadcast from [source] rather
   than all-to-all) and run through Wheel_engine kernels, so it
   reaches 10^6 nodes.  The spanner is computed globally (the paper
   computes it locally from discovered neighborhoods using shared
   public coins — same object, different mechanics), and the DTG
   phase contributes the initial local spread plus its honest round
   cost. *)

module Scale_csr = Gossip_scale.Csr
module Scale_kernel = Gossip_scale.Kernel
module Scale_wheel = Gossip_scale.Wheel_engine

type scale_result = {
  scale_rounds : int;
  scale_dtg_rounds : int;
  scale_rr_rounds : int option;
  scale_spanner_out_degree : int;
  scale_spanner_edges : int;
  scale_informed : Bytes.t;
  scale_success : bool;
}

let run_known_diameter_scale ?n_hat ?domains ?telemetry ?max_rounds rng csr ~d ~source () =
  if d < 1 then invalid_arg "Eid.run_known_diameter_scale: need d >= 1";
  let n = Scale_csr.n csr in
  let n_hat = match n_hat with Some h -> max h n | None -> n in
  let lg = ceil_log2 n_hat in
  (* Phase 1: k-DTG local broadcast over the latency-<= d subgraph,
     budgeted at the discovery phase's 2·d·⌈log n̂⌉² rounds (the
     single-rumor shadow of the O(log n) DTG repetitions). *)
  let dtg_budget = max 64 (2 * d * lg * lg) in
  let dtg_kernel = Scale_kernel.dtg_local ~ell:(min d (Scale_csr.max_latency csr)) csr in
  let dtg_res =
    Scale_wheel.broadcast_kernel ?telemetry ?domains rng csr ~kernel:dtg_kernel ~source
      ~max_rounds:dtg_budget
  in
  let dtg_rounds = dtg_res.Scale_wheel.metrics.Gossip_sim.Engine.rounds in
  (* Phase 2: Baswana–Sen on G_d with k = ⌈log n̂⌉, packed into an
     oriented CSR with the Lemma 15 out-degree bound asserted at
     construction, then RR Broadcast seeded with phase 1's informed
     set. *)
  let gd = Graph.subgraph_le (Scale_csr.to_graph csr) d in
  let k_spanner = lg in
  let spanner = Spanner.build rng gd ~k:k_spanner ~n_hat () in
  let out_degree_bound =
    let nf = float_of_int (max 2 n) in
    int_of_float (ceil (8.0 *. (nf ** (1.0 /. float_of_int k_spanner)) *. log nf))
  in
  let oriented = Scale_csr.of_oriented_spanner ~out_degree_bound spanner.Spanner.out_edges in
  let k_rr = d * ((2 * k_spanner) - 1) in
  let rr_cap =
    match max_rounds with
    | Some m -> m
    | None -> (k_rr * Scale_csr.oriented_max_out_degree oriented) + (2 * k_rr)
  in
  let rr_kernel = Scale_kernel.rr_broadcast ~k:k_rr oriented in
  let rr_res =
    Scale_wheel.broadcast_kernel ?telemetry ?domains ~informed:dtg_res.Scale_wheel.informed
      rng csr ~kernel:rr_kernel ~source ~max_rounds:rr_cap
  in
  let final_count = ref 0 in
  Bytes.iter
    (fun c -> if c <> '\000' then incr final_count)
    rr_res.Scale_wheel.informed;
  {
    scale_rounds = dtg_rounds + rr_res.Scale_wheel.metrics.Gossip_sim.Engine.rounds;
    scale_dtg_rounds = dtg_rounds;
    scale_rr_rounds = rr_res.Scale_wheel.rounds;
    scale_spanner_out_degree = Spanner.max_out_degree spanner;
    scale_spanner_edges = Spanner.edge_count spanner;
    scale_informed = rr_res.Scale_wheel.informed;
    scale_success = !final_count = n;
  }

(* ------------------------------------------------------------------ *)
(* General EID with UNKNOWN latencies on the scale engine — the
   Theorem 20 spanner branch, end to end, with zero a-priori latency
   knowledge.  Per guess k (doubling from 1):

   1. probe every edge with wait bound k, timing the responses
      (Discovery.probe_scale) — this is the only place latencies
      enter, and they enter as measurements;
   2. run the T(k) DTG schedule over the DISCOVERED graph
      (Path_discovery.run_schedule_scale), informed set chained in;
   3. Baswana–Sen with ⌈log n̂⌉ on the discovered graph, RR Broadcast
      over the orientation for k_rr = k·(2·k_spanner − 1);
   4. the single-rumor termination check over the same orientation
      with parameter k_rr (Termination_check.run_scale);
   5. a failed (or vacuously clean-but-incomplete) verdict doubles k
      and retries, carrying the informed set forward.

   Phases 2–4 run with the discovered graph as the engine's base, so
   the wheel sizes itself from discovered latencies; when the caller
   pinned a wheel bound we widen it to cover them.  The true input
   only appears in the harness guard (the latency-sum cap that
   bounds the doubling loop, mirroring [run]) and in
   [Discovery.probe_scale]'s completeness audit. *)

type unknown_attempt = {
  ua_k : int;
  ua_discovery_rounds : int;
  ua_schedule_rounds : int;
  ua_rr_rounds : int;
  ua_check_rounds : int;
  ua_edges_known : int;
  ua_spanner_out_degree : int;
  ua_spanner_edges : int;
  ua_failed : bool;
  ua_unanimous : bool;
}

type unknown_result = {
  u_rounds : int;
  u_attempts : unknown_attempt list;
  u_k_final : int;
  u_informed : Bytes.t;
  u_success : bool;
  u_unanimous : bool;
  u_metrics : Gossip_sim.Engine.metrics;
}

let count_informed informed =
  let c = ref 0 in
  Bytes.iter (fun ch -> if ch <> '\000' then incr c) informed;
  !c

let run_unknown_scale ?n_hat ?domains ?telemetry ?faults ?env ?wheel_latency ?max_jitter
    ?deadline rng csr ~source () =
  let n = Scale_csr.n csr in
  let n_hat = match n_hat with Some h -> max h n | None -> n in
  let lg = ceil_log2 n_hat in
  let mj = match max_jitter with Some j -> j | None -> 0 in
  (* Harness guard on the doubling loop, from the TRUE latencies (the
     protocol never reads them): a guess beyond twice the latency sum
     cannot be beaten by any larger guess on a connected input. *)
  let latency_sum =
    let module I32 = Gossip_scale.I32 in
    let o = Scale_csr.oriented_of_csr csr in
    let acc = ref 0 in
    for i = 0 to I32.length o.Scale_csr.o_lat - 1 do
      acc := !acc + I32.get o.Scale_csr.o_lat i
    done;
    max 1 (!acc / 2)
  in
  let u_metrics = Gossip_sim.Engine.empty_metrics () in
  let rec attempt_loop k informed acc_attempts acc_rounds unanimous =
    let disc =
      Discovery.probe_scale ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry
        ?domains rng csr ~d_bound:k
    in
    let gk = disc.Discovery.s_discovered in
    (* Phases over the discovered graph: widen a pinned wheel to cover
       measured latencies (a jittered probe can measure above the
       static ℓ_max). *)
    let gk_wheel =
      match wheel_latency with
      | Some w -> Some (max w (Scale_csr.max_latency gk + mj))
      | None -> None
    in
    let sched =
      Path_discovery.run_schedule_scale ?faults ?env ?wheel_latency:gk_wheel ?max_jitter
        ?deadline ?telemetry ?domains ?informed rng gk ~k ~source
    in
    let k_spanner = lg in
    let spanner = Spanner.build rng (Scale_csr.to_graph gk) ~k:k_spanner ~n_hat () in
    let out_degree_bound =
      let nf = float_of_int (max 2 n) in
      int_of_float (ceil (8.0 *. (nf ** (1.0 /. float_of_int k_spanner)) *. log nf))
    in
    let oriented = Scale_csr.of_oriented_spanner ~out_degree_bound spanner.Spanner.out_edges in
    let k_rr = k * ((2 * k_spanner) - 1) in
    let rr_cap = (k_rr * Scale_csr.oriented_max_out_degree oriented) + (2 * k_rr) in
    let rr_kernel = Scale_kernel.rr_broadcast ~k:k_rr oriented in
    let rr_res =
      Scale_wheel.broadcast_kernel ?faults ?env ?wheel_latency:gk_wheel ?max_jitter ?deadline
        ?telemetry ?domains ~informed:sched.Path_discovery.ps_informed rng gk ~kernel:rr_kernel
        ~source ~max_rounds:rr_cap
    in
    let check =
      Termination_check.run_scale ?faults ?env ?wheel_latency:gk_wheel ?max_jitter ?deadline
        ?telemetry ?domains rng gk ~oriented ~k:k_rr
        ~informed:rr_res.Scale_wheel.informed
    in
    let attempt =
      {
        ua_k = k;
        ua_discovery_rounds = disc.Discovery.s_rounds;
        ua_schedule_rounds = sched.Path_discovery.ps_rounds;
        ua_rr_rounds = rr_res.Scale_wheel.metrics.Gossip_sim.Engine.rounds;
        ua_check_rounds = check.Termination_check.sc_rounds;
        ua_edges_known = disc.Discovery.s_edges_known;
        ua_spanner_out_degree = Spanner.max_out_degree spanner;
        ua_spanner_edges = Spanner.edge_count spanner;
        ua_failed = check.Termination_check.sc_any_failed;
        ua_unanimous = check.Termination_check.sc_unanimous;
      }
    in
    let acc_rounds =
      acc_rounds + attempt.ua_discovery_rounds + attempt.ua_schedule_rounds
      + attempt.ua_rr_rounds + attempt.ua_check_rounds
    in
    let acc_attempts = attempt :: acc_attempts in
    let unanimous = unanimous && check.Termination_check.sc_unanimous in
    let informed = rr_res.Scale_wheel.informed in
    Gossip_sim.Engine.add_metrics ~into:u_metrics disc.Discovery.s_metrics;
    Gossip_sim.Engine.add_metrics ~into:u_metrics sched.Path_discovery.ps_metrics;
    Gossip_sim.Engine.add_metrics ~into:u_metrics rr_res.Scale_wheel.metrics;
    Gossip_sim.Engine.add_metrics ~into:u_metrics check.Termination_check.sc_metrics;
    let finish success =
      {
        u_rounds = acc_rounds;
        u_attempts = List.rev acc_attempts;
        u_k_final = k;
        u_informed = informed;
        u_success = success;
        u_unanimous = unanimous;
        u_metrics;
      }
    in
    if not check.Termination_check.sc_any_failed then
      finish (count_informed informed = n)
    else if k > 2 * latency_sum then finish false
    else attempt_loop (2 * k) (Some informed) acc_attempts acc_rounds unanimous
  in
  attempt_loop 1 None [] 0 true

let run rng g ?n_hat () =
  let n_hat = match n_hat with Some h -> max h (Graph.n g) | None -> Graph.n g in
  let sets = Rumor.initial g in
  (* The estimate can never usefully exceed the sum of all latencies. *)
  let latency_sum =
    let acc = ref 0 in
    Graph.iter_edges (fun e -> acc := !acc + e.Graph.latency) g;
    max 1 !acc
  in
  let rec attempt_loop k acc_attempts acc_rounds unanimous =
    let attempt, spanner, k_rr = eid_once rng g ~k ~n_hat ~sets in
    let check =
      Termination_check.run ~base:g ~out_edges:spanner.Spanner.out_edges ~k:k_rr ~sets
    in
    let attempt = { attempt with check_rounds = check.Termination_check.rounds } in
    let rounds =
      acc_rounds + attempt.discovery_rounds + attempt.rr_rounds + attempt.check_rounds
    in
    let attempts = attempt :: acc_attempts in
    let unanimous = unanimous && check.Termination_check.unanimous in
    let failed = Array.exists (fun f -> f) check.Termination_check.failed in
    if not failed then
      {
        rounds;
        attempts = List.rev attempts;
        k_final = k;
        sets;
        success = Rumor.all_to_all_done sets;
        unanimous;
      }
    else if k > 2 * latency_sum then
      {
        rounds;
        attempts = List.rev attempts;
        k_final = k;
        sets;
        success = false;
        unanimous;
      }
    else attempt_loop (2 * k) attempts rounds unanimous
  in
  attempt_loop 1 [] 0 true
