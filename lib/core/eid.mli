(** Efficient Information Dissemination — EID (Algorithms 3–4;
    Theorems 14, 19).

    The spanner route to all-to-all dissemination with known latencies:

    + {b Neighborhood discovery}: [O(log n)] repetitions of [k]-DTG, so
      every node learns its [log n]-hop neighborhood in the
      latency-[<= k] subgraph [G_k] (each DTG phase pushes knowledge
      one hop further);
    + {b Spanner construction}: Baswana–Sen with [k_spanner = ⌈log n̂⌉]
      on [G_k], computed from the discovered neighborhoods (local
      computation; cluster sampling uses shared public coins);
    + {b RR Broadcast} over the oriented spanner with parameter
      [k · (2·k_spanner - 1)] (the spanner stretch turns distance-[k]
      pairs into that spanner distance).

    With [k = D] this takes [O(D log³ n)] rounds (Theorem 14 /
    Lemma 17).  When [D] is unknown, General EID (Algorithm 4) runs the
    guess-and-double loop with the Termination Check; Lemma 18
    guarantees a unanimous verdict each attempt and Theorem 19 the same
    [O(D log³ n)] total. *)

type attempt = {
  k : int;  (** the diameter estimate of this attempt *)
  discovery_rounds : int;
  rr_rounds : int;
  check_rounds : int;  (** 0 when no check ran (known-D mode) *)
  spanner_out_degree : int;
  spanner_edges : int;
}

type result = {
  rounds : int;  (** total engine rounds across phases and attempts *)
  attempts : attempt list;  (** in execution order *)
  k_final : int;  (** estimate in force at termination *)
  sets : Rumor.t array;
  success : bool;  (** all-to-all dissemination achieved *)
  unanimous : bool;  (** every check verdict was unanimous (Lemma 18) *)
}

(** [run_known_diameter rng g ~d ?n_hat ()] is one EID([d]) execution
    (no termination check).  [n_hat] defaults to [n]. *)
val run_known_diameter :
  Gossip_util.Rng.t -> Gossip_graph.Graph.t -> d:int -> ?n_hat:int -> unit -> result

(** [run rng g ?n_hat ()] is General EID: guess-and-double from
    [k = 1] with termination checks.  Terminates once a check passes
    (or after the estimate exceeds [2 · D_max] with [D_max] the sum of
    all latencies, which cannot happen on connected inputs). *)
val run : Gossip_util.Rng.t -> Gossip_graph.Graph.t -> ?n_hat:int -> unit -> result

(** {1 EID on the flat scale engine}

    The same spanner route at 10^6 nodes, single-rumor: a k-DTG
    local-broadcast kernel over the latency-[<= d] subgraph, then
    Baswana–Sen with [⌈log n̂⌉] on [G_d] (Lemma 15 out-degree bound
    asserted when the orientation is packed), then an RR Broadcast
    kernel over the orientation seeded with the DTG phase's informed
    set — all through {!Gossip_scale.Wheel_engine.broadcast_kernel}.
    The spanner is computed globally here (the paper derives it from
    locally discovered neighborhoods under shared public coins — the
    same object, cheaper mechanics at this scale). *)

type scale_result = {
  scale_rounds : int;  (** wheel rounds actually executed, both phases *)
  scale_dtg_rounds : int;
  scale_rr_rounds : int option;  (** [None] if the RR phase hit its cap *)
  scale_spanner_out_degree : int;
  scale_spanner_edges : int;
  scale_informed : Bytes.t;  (** final informed set, one byte per node *)
  scale_success : bool;  (** every node informed *)
}

(** [run_known_diameter_scale rng csr ~d ~source ()] runs the known-[d]
    pipeline above from [source].  [max_rounds] caps the RR phase
    (default: Lemma 15's [k_rr · Δ_out + k_rr] plus response slack);
    [domains] and [telemetry] pass through to the wheel engine.
    @raise Invalid_argument on [d < 1], a bad [source], or a spanner
    orientation violating the Lemma 15 bound. *)
val run_known_diameter_scale :
  ?n_hat:int ->
  ?domains:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?max_rounds:int ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  d:int ->
  source:int ->
  unit ->
  scale_result

(** {1 Unknown-latency EID on the scale engine (Theorem 20)}

    The spanner branch of the unified algorithm with {e zero} a-priori
    latency knowledge: per guess [k] (doubling from 1) the chain
    probes every edge with wait bound [k] and times the responses
    ({!Discovery.probe_scale}), runs the T([k]) DTG schedule over the
    {e discovered} graph ({!Path_discovery.run_schedule_scale}),
    builds a Baswana–Sen spanner on it and RR-broadcasts over the
    orientation, then runs the single-rumor termination check
    ({!Termination_check.run_scale}); a failed or incomplete verdict
    doubles [k] and retries, carrying the informed set forward.  The
    true input graph is only consulted by the harness (the
    latency-sum cap bounding the doubling loop), never by the
    protocol. *)

type unknown_attempt = {
  ua_k : int;  (** the wait-bound / diameter estimate of this attempt *)
  ua_discovery_rounds : int;
  ua_schedule_rounds : int;
  ua_rr_rounds : int;
  ua_check_rounds : int;
  ua_edges_known : int;  (** undirected edges measured both ways *)
  ua_spanner_out_degree : int;
  ua_spanner_edges : int;
  ua_failed : bool;  (** some check verdict failed *)
  ua_unanimous : bool;  (** the verdicts agreed (Lemma 18) *)
}

type unknown_result = {
  u_rounds : int;  (** wheel rounds, all phases and attempts *)
  u_attempts : unknown_attempt list;  (** in execution order *)
  u_k_final : int;
  u_informed : Bytes.t;
  u_success : bool;  (** every node informed *)
  u_unanimous : bool;  (** every attempt's verdict was unanimous *)
  u_metrics : Gossip_sim.Engine.metrics;  (** summed over every phase *)
}

(** [run_unknown_scale rng csr ~source ()] runs the chain above.
    Optional arguments pass through to every wheel-engine phase;
    [wheel_latency], when pinned, is widened per attempt to cover the
    measured (possibly jittered) latencies of the discovered graph. *)
val run_unknown_scale :
  ?n_hat:int ->
  ?domains:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?faults:Gossip_scale.Wheel_engine.faults ->
  ?env:Gossip_scale.Wheel_engine.env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  source:int ->
  unit ->
  unknown_result
