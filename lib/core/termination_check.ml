module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type result = { failed : bool array; rounds : int; unanimous : bool }

type gather = { frozen : Bitset.t; flag : bool; mismatch : bool }

let rr_rounds_of ~delta_out ~k = (k * delta_out) + k

let rr_rounds ~usable ~k =
  let delta_out = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 usable in
  rr_rounds_of ~delta_out ~k

(* One round-robin flood with payload ['p]: each node cycles over its
   latency-<= k out-edges; [absorb u p] folds a received payload into
   node [u]'s state and [emit u] builds the next payload. *)
let flood ~base ~usable ~iterations ~k ~absorb ~emit =
  let handlers u =
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round ->
          if round >= iterations || Array.length usable.(u) = 0 then None
          else begin
            let peer, _ = usable.(u).(!cursor mod Array.length usable.(u)) in
            incr cursor;
            Some (peer, emit u)
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> emit u);
      on_push = (fun ~peer:_ ~round:_ payload -> absorb u payload);
      on_response = (fun ~peer:_ ~round:_ payload -> absorb u payload);
    }
  in
  let engine = Engine.create base ~handlers in
  for _ = 1 to iterations + k do
    Engine.step engine
  done;
  Engine.current_round engine

let run ~base ~out_edges ~k ~sets =
  let n = Graph.n base in
  if Array.length sets <> n then invalid_arg "Termination_check.run: sets size mismatch";
  let usable =
    Array.map
      (fun l -> Array.of_list (List.filter (fun (_, lat) -> lat <= k) (Array.to_list l)))
      out_edges
  in
  let iterations = rr_rounds ~usable ~k in
  (* Local flags: a neighbor missing from the rumor set. *)
  let frozen = Array.map Bitset.copy sets in
  let flag = Array.init n (fun u ->
      Array.exists (fun (v, _) -> not (Bitset.mem frozen.(u) v)) (Graph.neighbors base u))
  in
  let mismatch = Array.make n false in
  (* Pass 1: gather rumor-set fingerprints and flags. *)
  let rounds1 =
    flood ~base ~usable ~iterations ~k
      ~absorb:(fun u p ->
        if p.flag then flag.(u) <- true;
        if p.mismatch || not (Bitset.equal frozen.(u) p.frozen) then mismatch.(u) <- true)
      ~emit:(fun u -> { frozen = frozen.(u); flag = flag.(u); mismatch = mismatch.(u) })
  in
  (* Pass 2: flood the failed verdict. *)
  let failed = Array.init n (fun u -> flag.(u) || mismatch.(u)) in
  let rounds2 =
    flood ~base ~usable ~iterations ~k
      ~absorb:(fun u p -> if p then failed.(u) <- true)
      ~emit:(fun u -> failed.(u))
  in
  let unanimous =
    Array.for_all (fun f -> f = failed.(0)) failed
  in
  { failed; rounds = rounds1 + rounds2; unanimous }

(* Single-rumor check, reference engine: the frozen "rumor set" is one
   bit (did u hear the rumor?) and a node starts flagged iff it is
   uninformed — a unanimously clean verdict is exactly "everyone heard
   it".  This is the semantics the scale kernel bit-packs, kept here
   in boxed form so the two runtimes can be qcheck'd against each
   other. *)
let run_single ~base ~out_edges ~k ~informed =
  let n = Graph.n base in
  if Array.length informed <> n then
    invalid_arg "Termination_check.run_single: informed size mismatch";
  let usable =
    Array.map
      (fun l -> Array.of_list (List.filter (fun (_, lat) -> lat <= k) (Array.to_list l)))
      out_edges
  in
  let iterations = rr_rounds ~usable ~k in
  let frozen = Array.copy informed in
  let flag = Array.map not frozen in
  let mismatch = Array.make n false in
  let rounds1 =
    flood ~base ~usable ~iterations ~k
      ~absorb:(fun u (f, fl, mm) ->
        if fl then flag.(u) <- true;
        if mm || f <> frozen.(u) then mismatch.(u) <- true)
      ~emit:(fun u -> (frozen.(u), flag.(u), mismatch.(u)))
  in
  let failed = Array.init n (fun u -> flag.(u) || mismatch.(u)) in
  let rounds2 =
    flood ~base ~usable ~iterations ~k
      ~absorb:(fun u p -> if p then failed.(u) <- true)
      ~emit:(fun u -> failed.(u))
  in
  let unanimous = Array.for_all (fun f -> f = failed.(0)) failed in
  { failed; rounds = rounds1 + rounds2; unanimous }

(* ------------------------------------------------------------------ *)
(* The single-rumor check on the flat CSR scale engine: pass 1 is the
   {!Gossip_scale.Kernel.termination_check} gather kernel, pass 2 the
   verdict flood, each run for its Lemma 15 window (iterations + k
   rounds — the engine's round cap IS the schedule; the kernels are
   inert for the rumor machinery, so the engine never exits early). *)

module Scale_csr = Gossip_scale.Csr
module Scale_kernel = Gossip_scale.Kernel
module Scale_wheel = Gossip_scale.Wheel_engine

type scale_result = {
  sc_failed : Bytes.t;
  sc_rounds : int;
  sc_unanimous : bool;
  sc_any_failed : bool;
  sc_metrics : Gossip_sim.Engine.metrics;
}

let run_scale ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry ?domains rng csr
    ~oriented ~k ~informed =
  let n = Scale_csr.n csr in
  if Bytes.length informed <> n then
    invalid_arg "Termination_check.run_scale: informed size mismatch";
  let usable = Scale_csr.oriented_filter_le oriented k in
  let delta_out = Scale_csr.oriented_max_out_degree usable in
  let iterations = rr_rounds_of ~delta_out ~k in
  let window = iterations + k in
  let check = Scale_kernel.termination_check ~iterations ~informed usable in
  (* Never pass ?informed here: when every node already holds the
     rumor the engine would observe a complete informed set before the
     first round and skip the run — which is exactly the case the
     check must confirm by actually talking. *)
  let res1 =
    Scale_wheel.broadcast_kernel ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry
      ?domains rng csr ~kernel:check.Scale_kernel.check_kernel ~source:0 ~max_rounds:window
  in
  let failed = Bytes.make n '\000' in
  for u = 0 to n - 1 do
    if
      Bytes.get check.Scale_kernel.check_flag u <> '\000'
      || Bytes.get check.Scale_kernel.check_mismatch u <> '\000'
    then Bytes.set failed u '\001'
  done;
  let verdict = Scale_kernel.verdict_flood ~iterations ~failed usable in
  let res2 =
    Scale_wheel.broadcast_kernel ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry
      ?domains rng csr ~kernel:verdict ~source:0 ~max_rounds:window
  in
  let first = Bytes.get failed 0 in
  let unanimous = ref true and any = ref false in
  Bytes.iter
    (fun c ->
      if c <> first then unanimous := false;
      if c <> '\000' then any := true)
    failed;
  let sc_metrics = Gossip_sim.Engine.empty_metrics () in
  Gossip_sim.Engine.add_metrics ~into:sc_metrics res1.Scale_wheel.metrics;
  Gossip_sim.Engine.add_metrics ~into:sc_metrics res2.Scale_wheel.metrics;
  {
    sc_failed = failed;
    sc_rounds = sc_metrics.Gossip_sim.Engine.rounds;
    sc_unanimous = !unanimous;
    sc_any_failed = !any;
    sc_metrics;
  }
