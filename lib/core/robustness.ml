module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type plan = Engine.faults

let no_faults = Engine.no_faults

let crash_fraction ?skipped rng ~n ~fraction ~from_round ~protect =
  if not (fraction >= 0.0 && fraction < 1.0) then
    invalid_arg "Robustness.crash_fraction: fraction out of [0,1)";
  let crashed = Array.make n false in
  (* Round to nearest, as the sweep pool does for durations: plain
     truncation maps e.g. fraction = 0.1, n = 9 to zero victims. *)
  let victims = min n (int_of_float (Float.round (fraction *. float_of_int n))) in
  let order = Rng.sample_without_replacement rng n n in
  let placed = ref 0 in
  Array.iter
    (fun v ->
      if !placed < victims && not (List.mem v protect) then begin
        crashed.(v) <- true;
        incr placed
      end)
    order;
  (match skipped with Some r -> r := victims - !placed | None -> ());
  {
    Engine.no_faults with
    Engine.alive = (fun ~node ~round -> (not crashed.(node)) || round < from_round);
  }

let drop_rate rng ~rate =
  if not (rate >= 0.0 && rate < 1.0) then invalid_arg "Robustness.drop_rate: rate out of [0,1)";
  {
    Engine.no_faults with
    Engine.drop = (fun ~initiator:_ ~responder:_ ~round:_ -> Rng.bernoulli rng rate);
  }

let jitter_up_to rng ~extra =
  if extra < 0 then invalid_arg "Robustness.jitter_up_to: negative extra";
  {
    Engine.no_faults with
    Engine.jitter = (fun ~latency ~round:_ -> latency + Rng.int rng (extra + 1));
  }

let combine plans =
  {
    Engine.alive =
      (fun ~node ~round -> List.for_all (fun p -> p.Engine.alive ~node ~round) plans);
    drop =
      (fun ~initiator ~responder ~round ->
        List.exists (fun p -> p.Engine.drop ~initiator ~responder ~round) plans);
    jitter =
      (fun ~latency ~round ->
        List.fold_left (fun latency p -> p.Engine.jitter ~latency ~round) latency plans);
  }

type result = {
  rounds : int option;
  informed_live : int;
  live : int;
  metrics : Engine.metrics;
}

let count_live_informed ~plan ~round informed =
  let live = ref 0 and informed_live = ref 0 in
  Array.iteri
    (fun node i ->
      if plan.Engine.alive ~node ~round then begin
        incr live;
        if i then incr informed_live
      end)
    informed;
  (!informed_live, !live)

let pushpull_broadcast rng g ~source ~plan ~max_rounds =
  let n = Graph.n g in
  let informed = Array.make n false in
  informed.(source) <- true;
  let handlers u =
    let node_rng = Rng.split rng in
    let nbrs = Graph.neighbors g u in
    {
      Engine.on_round =
        (fun ~round:_ ->
          if Array.length nbrs = 0 then None
          else begin
            let peer, _ = Rng.pick node_rng nbrs in
            Some (peer, informed.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> informed.(u));
      on_push = (fun ~peer:_ ~round:_ payload -> if payload then informed.(u) <- true);
      on_response = (fun ~peer:_ ~round:_ payload -> if payload then informed.(u) <- true);
    }
  in
  let engine = Engine.create ~faults:plan g ~handlers in
  let all_live_informed () =
    let informed_live, live = count_live_informed ~plan ~round:(Engine.current_round engine) informed in
    informed_live = live
  in
  let rounds = Engine.run_until engine ~max_rounds all_live_informed in
  let informed_live, live =
    count_live_informed ~plan ~round:(Engine.current_round engine) informed
  in
  { rounds; informed_live; live; metrics = Engine.metrics engine }

let rr_broadcast (s : Spanner.t) ~source ~k ~plan =
  let base = s.Spanner.base in
  let n = Graph.n base in
  let informed = Array.make n false in
  informed.(source) <- true;
  let usable =
    Array.map
      (fun l -> Array.of_list (List.filter (fun (_, lat) -> lat <= k) (Array.to_list l)))
      s.Spanner.out_edges
  in
  let delta_out = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 usable in
  let iterations = (k * delta_out) + k in
  let handlers u =
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round ->
          if round >= iterations || Array.length usable.(u) = 0 then None
          else begin
            let peer, _ = usable.(u).(!cursor mod Array.length usable.(u)) in
            incr cursor;
            Some (peer, informed.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> informed.(u));
      on_push = (fun ~peer:_ ~round:_ payload -> if payload then informed.(u) <- true);
      on_response = (fun ~peer:_ ~round:_ payload -> if payload then informed.(u) <- true);
    }
  in
  let engine = Engine.create ~faults:plan base ~handlers in
  for _ = 1 to iterations + k do
    Engine.step engine
  done;
  let informed_live, live =
    count_live_informed ~plan ~round:(Engine.current_round engine) informed
  in
  let rounds = if informed_live = live then Some (Engine.current_round engine) else None in
  { rounds; informed_live; live; metrics = Engine.metrics engine }

let pushpull_bounded_indegree rng g ~source ~capacity ~max_rounds =
  let n = Graph.n g in
  let informed = Array.make n false in
  informed.(source) <- true;
  let count = ref 1 in
  let mark v =
    if not informed.(v) then begin
      informed.(v) <- true;
      incr count
    end
  in
  let handlers u =
    let node_rng = Rng.split rng in
    let nbrs = Graph.neighbors g u in
    {
      Engine.on_round =
        (fun ~round:_ ->
          if Array.length nbrs = 0 then None
          else begin
            let peer, _ = Rng.pick node_rng nbrs in
            Some (peer, informed.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> informed.(u));
      on_push = (fun ~peer:_ ~round:_ payload -> if payload then mark u);
      on_response = (fun ~peer:_ ~round:_ payload -> if payload then mark u);
    }
  in
  let engine = Engine.create ~in_capacity:capacity g ~handlers in
  let rounds = Engine.run_until engine ~max_rounds (fun () -> !count = n) in
  { rounds; informed_live = !count; live = n; metrics = Engine.metrics engine }
