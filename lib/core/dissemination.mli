(** Unified information dissemination (Theorem 20).

    The paper's final algorithm runs push-pull and the spanner route in
    parallel and stops with whichever finishes first:

    - latencies {e unknown}:
      [O(min((D + Delta) log^3 n, (l_star/phi_star) log n))] — the spanner route must
      first discover latencies (Section 4.2);
    - latencies {e known}:
      [O(min(D log^3 n, (l_star/phi_star) log n))].

    Running two protocols in parallel in the model costs a factor of
    two (alternate rounds between them); we simulate each branch
    separately and report the minimum and the winner, which preserves
    every asymptotic claim. *)

type knowledge = Known_latencies | Unknown_latencies

type winner = Push_pull_won | Spanner_route_won

type result = {
  rounds : int;  (** the minimum of the two branches *)
  winner : winner;
  pushpull_rounds : int option;  (** [None] when push-pull hit the cap *)
  spanner_rounds : int;  (** EID (+ discovery when unknown) total *)
  discovery_rounds : int;  (** 0 with known latencies *)
  success : bool;
}

(** [all_to_all rng g ~knowledge ~max_rounds] solves all-to-all
    dissemination both ways and reports the unified outcome.
    [max_rounds] caps the push-pull branch only. *)
val all_to_all :
  Gossip_util.Rng.t ->
  Gossip_graph.Graph.t ->
  knowledge:knowledge ->
  max_rounds:int ->
  result

(** {1 The unified algorithm on the flat scale engine}

    Single-rumor Theorem 20 at 10^6 nodes with {e unknown} latencies:
    push-pull ({!Gossip_scale.Wheel_engine.broadcast}) raced against
    the unknown-latency EID chain ({!Eid.run_unknown_scale}), each on
    its own RNG split, winner = fewer rounds. *)

type scale_winner = Scale_push_pull_won | Scale_spanner_route_won

type scale_result = {
  b_rounds : int;  (** the minimum of the two branches *)
  b_winner : scale_winner;
  b_pushpull_rounds : int option;  (** [None] when push-pull hit the cap *)
  b_spanner_rounds : int;  (** EID chain total (discovery included) *)
  b_informed : Bytes.t;  (** the winning branch's final informed set *)
  b_success : bool;
  b_unanimous : bool;  (** the EID branch's check verdicts all agreed *)
  b_attempts : Eid.unknown_attempt list;  (** the EID branch's attempts *)
  b_metrics : Gossip_sim.Engine.metrics;  (** the winning branch's counters *)
}

(** [broadcast_scale rng csr ~source ~max_rounds ()] races the two
    branches.  [max_rounds] caps the push-pull branch only (the EID
    chain self-budgets per phase); the other optional arguments pass
    through to both branches. *)
val broadcast_scale :
  ?n_hat:int ->
  ?domains:int ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?faults:Gossip_scale.Wheel_engine.faults ->
  ?env:Gossip_scale.Wheel_engine.env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  scale_result
