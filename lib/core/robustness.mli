(** Fault tolerance and restricted models (Section 7).

    The paper closes by noting that push-pull is "relatively robust to
    failures, while our other approaches are not", and points at the
    bounded in-degree model of Daum et al. as a restriction worth
    studying.  This module makes both remarks measurable:

    - composable fault plans (crash-stop nodes, per-exchange message
      loss, latency jitter) injected into the engine;
    - push-pull and RR-broadcast runs under a plan, reporting how many
      live nodes were reached;
    - push-pull under a per-round bound on served incoming requests.

    All plans are deterministic given their RNG, so runs replay
    exactly. *)

type plan = Gossip_sim.Engine.faults

(** [no_faults] re-exported for convenience. *)
val no_faults : plan

(** [crash_fraction rng ~n ~fraction ~from_round ~protect] crash-stops
    [round (fraction · n)] uniformly chosen nodes at round [from_round]
    (never the nodes in [protect], e.g. the broadcast source).  The
    victim count rounds to nearest — truncation would silently crash
    zero nodes for small fractions on small graphs.  When [protect]
    leaves fewer than that many candidates, the shortfall is reported
    through [?skipped] (set to the number of victims that could not be
    placed; [0] when the full quota crashed). *)
val crash_fraction :
  ?skipped:int ref ->
  Gossip_util.Rng.t ->
  n:int ->
  fraction:float ->
  from_round:int ->
  protect:Gossip_graph.Graph.node list ->
  plan

(** [drop_rate rng ~rate] loses each exchange independently with
    probability [rate]. *)
val drop_rate : Gossip_util.Rng.t -> rate:float -> plan

(** [jitter_up_to rng ~extra] adds uniform [0..extra] rounds to each
    exchange's latency. *)
val jitter_up_to : Gossip_util.Rng.t -> extra:int -> plan

(** [combine plans] intersects liveness, unions drops, and composes
    jitter in order. *)
val combine : plan list -> plan

type result = {
  rounds : int option;
      (** rounds until every {e live} node was informed; [None] when
          the cap was reached first *)
  informed_live : int;  (** live nodes informed at the end *)
  live : int;  (** nodes still alive at the end *)
  metrics : Gossip_sim.Engine.metrics;
}

(** [pushpull_broadcast rng g ~source ~plan ~max_rounds] runs fault-
    injected push-pull until every live node knows the rumor. *)
val pushpull_broadcast :
  Gossip_util.Rng.t ->
  Gossip_graph.Graph.t ->
  source:Gossip_graph.Graph.node ->
  plan:plan ->
  max_rounds:int ->
  result

(** [rr_broadcast spanner ~source ~k ~plan] runs RR broadcast over
    the oriented spanner under the plan for its full schedule and
    reports live coverage — the spanner route's fragility: crashed
    nodes sever the only paths. *)
val rr_broadcast :
  Spanner.t ->
  source:Gossip_graph.Graph.node ->
  k:int ->
  plan:plan ->
  result

(** [pushpull_bounded_indegree rng g ~source ~capacity ~max_rounds]
    runs push-pull where each node serves at most [capacity] incoming
    requests per round (excess rejected, no response) — the Section 7
    restricted model.  Faults are off. *)
val pushpull_bounded_indegree :
  Gossip_util.Rng.t ->
  Gossip_graph.Graph.t ->
  source:Gossip_graph.Graph.node ->
  capacity:int ->
  max_rounds:int ->
  result
