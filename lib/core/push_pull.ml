module Rng = Gossip_util.Rng
module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

type result = {
  rounds : int option;
  metrics : Engine.metrics;
  history : (int * int) list;
}

(* Single-rumor broadcast uses boolean payloads: "do I know the rumor".
   This keeps messages O(1) — push-pull's small-message property that
   Section 6 highlights. *)
let broadcast ?telemetry rng g ~source ~max_rounds =
  let n = Graph.n g in
  let informed = Array.make n false in
  informed.(source) <- true;
  let count = ref 1 in
  let mark v =
    if not informed.(v) then begin
      informed.(v) <- true;
      incr count
    end
  in
  let handlers u =
    let node_rng = Rng.split rng in
    let nbrs = Graph.neighbors g u in
    {
      Engine.on_round =
        (fun ~round:_ ->
          if Array.length nbrs = 0 then None
          else begin
            let peer, _ = Rng.pick node_rng nbrs in
            Some (peer, informed.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> informed.(u));
      on_push = (fun ~peer:_ ~round:_ payload -> if payload then mark u);
      on_response = (fun ~peer:_ ~round:_ payload -> if payload then mark u);
    }
  in
  let engine = Engine.create ?telemetry g ~handlers in
  let tel_ring = Option.bind telemetry Gossip_obs.Registry.ring in
  let history = ref [ (0, !count) ] in
  let rec go () =
    if !count = n then Some (Engine.current_round engine)
    else if Engine.current_round engine >= max_rounds then None
    else begin
      Engine.step engine;
      (match tel_ring with
      | None -> ()
      | Some ring ->
          Gossip_obs.Ring.record ring
            ~round:(Engine.current_round engine - 1)
            ~kind:Gossip_obs.Ring.kind_informed ~node:(-1) ~value:!count);
      let _, last = List.hd !history in
      if !count <> last then history := (Engine.current_round engine, !count) :: !history;
      go ()
    end
  in
  let rounds = go () in
  { rounds; metrics = Engine.metrics engine; history = List.rev !history }

let run_with_sets rng g ~max_rounds ~done_ ~progress =
  let sets = Rumor.initial g in
  let handlers u =
    let node_rng = Rng.split rng in
    let nbrs = Graph.neighbors g u in
    {
      Engine.on_round =
        (fun ~round:_ ->
          if Array.length nbrs = 0 then None
          else begin
            let peer, _ = Rng.pick node_rng nbrs in
            Some (peer, Bitset.copy sets.(u))
          end);
      on_request = (fun ~peer:_ ~round:_ _payload -> Bitset.copy sets.(u));
      on_push =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
      on_response =
        (fun ~peer:_ ~round:_ payload ->
          let (_ : bool) = Bitset.union_into ~into:sets.(u) payload in
          ());
    }
  in
  let engine = Engine.create ~payload_size:Bitset.cardinal g ~handlers in
  let history = ref [ (0, progress sets) ] in
  let rec go () =
    if done_ sets then Some (Engine.current_round engine)
    else if Engine.current_round engine >= max_rounds then None
    else begin
      Engine.step engine;
      let p = progress sets in
      let _, last = List.hd !history in
      if p <> last then history := (Engine.current_round engine, p) :: !history;
      go ()
    end
  in
  let rounds = go () in
  { rounds; metrics = Engine.metrics engine; history = List.rev !history }

let count_full sets =
  Array.fold_left (fun acc s -> if Bitset.is_full s then acc + 1 else acc) 0 sets

let all_to_all rng g ~max_rounds =
  run_with_sets rng g ~max_rounds ~done_:Rumor.all_to_all_done ~progress:count_full

let local_broadcast rng g ~max_rounds =
  run_with_sets rng g ~max_rounds
    ~done_:(fun sets -> Rumor.local_broadcast_done g sets)
    ~progress:count_full
