module Graph = Gossip_graph.Graph

let rec next_pow2 k p = if p >= k then p else next_pow2 k (2 * p)

let t_sequence k =
  if k < 1 then invalid_arg "Path_discovery.t_sequence: need k >= 1";
  let k = next_pow2 k 1 in
  let rec build k = if k = 1 then [ 1 ] else build (k / 2) @ [ k ] @ build (k / 2) in
  build k

type result = {
  rounds : int;
  k_final : int;
  attempts : int;
  sets : Rumor.t array;
  success : bool;
  unanimous : bool;
}

(* Run the T(k) schedule over accumulated rumor sets; returns rounds. *)
let run_schedule g ~k ~sets =
  let n = Graph.n g in
  let total = ref 0 in
  List.iter
    (fun ell ->
      let cap = max 1000 (64 * ell * (n + 1)) in
      let r = Dtg.phase g ~ell ~max_rounds:cap ~rumors:sets () in
      match r.Dtg.rounds with
      | Some rounds -> total := !total + rounds
      | None -> total := !total + cap)
    (t_sequence k);
  !total

let full_adjacency g = Array.init (Graph.n g) (fun u -> Graph.neighbors g u)

(* ------------------------------------------------------------------ *)
(* The T(k) schedule on the flat CSR scale engine: each ℓ-DTG entry is
   a dtg_local kernel run for its budget, the informed set chaining
   from phase to phase.  Single-rumor, so the schedule's "any two
   nodes within distance k exchanged rumors" specializes to "the
   rumor reached everything within distance k of the informed set". *)

module Scale_csr = Gossip_scale.Csr
module Scale_kernel = Gossip_scale.Kernel
module Scale_wheel = Gossip_scale.Wheel_engine

type schedule_scale_result = {
  ps_rounds : int;
  ps_informed : Bytes.t;
  ps_metrics : Gossip_sim.Engine.metrics;
}

let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  max 1 (go 0 1)

let run_schedule_scale ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry ?domains
    ?informed rng csr ~k ~source =
  if k < 1 then invalid_arg "Path_discovery.run_schedule_scale: need k >= 1";
  let lg = ceil_log2 (max 2 (Scale_csr.n csr)) in
  let lmax = Scale_csr.max_latency csr in
  let total = ref 0 in
  let acc_metrics = Gossip_sim.Engine.empty_metrics () in
  let inf = ref (match informed with Some b -> Some (Bytes.copy b) | None -> None) in
  List.iter
    (fun ell ->
      (* The single-rumor shadow of one ℓ-DTG phase: local broadcast
         over G_ℓ, budgeted at 2·ℓ·⌈log n⌉² rounds (each phase of the
         paper's schedule is O(ℓ log² n)). *)
      let budget = max 64 (2 * ell * lg * lg) in
      let kernel = Scale_kernel.dtg_local ~ell:(min ell lmax) csr in
      let res =
        Scale_wheel.broadcast_kernel ?faults ?env ?wheel_latency ?max_jitter ?deadline
          ?telemetry ?domains ?informed:!inf rng csr ~kernel ~source ~max_rounds:budget
      in
      total := !total + res.Scale_wheel.metrics.Gossip_sim.Engine.rounds;
      Gossip_sim.Engine.add_metrics ~into:acc_metrics res.Scale_wheel.metrics;
      inf := Some res.Scale_wheel.informed)
    (t_sequence k);
  let informed =
    match !inf with Some b -> b | None -> assert false (* t_sequence is non-empty *)
  in
  { ps_rounds = !total; ps_informed = informed; ps_metrics = acc_metrics }

let run_known_diameter g ~d =
  let sets = Rumor.initial g in
  let rounds = run_schedule g ~k:d ~sets in
  {
    rounds;
    k_final = next_pow2 d 1;
    attempts = 1;
    sets;
    success = Rumor.all_to_all_done sets;
    unanimous = true;
  }

let run g =
  let sets = Rumor.initial g in
  let out_edges = full_adjacency g in
  let latency_sum =
    let acc = ref 0 in
    Graph.iter_edges (fun e -> acc := !acc + e.Graph.latency) g;
    max 1 !acc
  in
  let rec attempt_loop k attempts acc_rounds unanimous =
    let schedule_rounds = run_schedule g ~k ~sets in
    let check = Termination_check.run ~base:g ~out_edges ~k ~sets in
    let rounds = acc_rounds + schedule_rounds + check.Termination_check.rounds in
    let unanimous = unanimous && check.Termination_check.unanimous in
    let failed = Array.exists (fun f -> f) check.Termination_check.failed in
    if not failed then
      {
        rounds;
        k_final = k;
        attempts;
        sets;
        success = Rumor.all_to_all_done sets;
        unanimous;
      }
    else if k > 2 * latency_sum then
      { rounds; k_final = k; attempts; sets; success = false; unanimous }
    else attempt_loop (2 * k) (attempts + 1) rounds unanimous
  in
  attempt_loop 1 1 0 true
