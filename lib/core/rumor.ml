module Bitset = Gossip_util.Bitset
module Graph = Gossip_graph.Graph

type t = Bitset.t

let initial g = Array.init (Graph.n g) (fun v -> Bitset.singleton (Graph.n g) v)

let broadcast_done ~source sets = Array.for_all (fun s -> Bitset.mem s source) sets

let all_to_all_done sets = Array.for_all Bitset.is_full sets

let local_broadcast_done g ?ell sets =
  let ell = match ell with Some l -> l | None -> Graph.max_latency g in
  let ok = ref true in
  Graph.iter_edges
    (fun { Graph.u; v; latency } ->
      if latency <= ell && not (Bitset.mem sets.(u) v && Bitset.mem sets.(v) u) then ok := false)
    g;
  !ok

let count_knowing ~source sets =
  Array.fold_left (fun acc s -> if Bitset.mem s source then acc + 1 else acc) 0 sets

(* ------------------------------------------------------------------ *)
(* Boxed twins of the scale rumor kernels (lib/scale/kernel.ml).  Same
   semantics, deliberately different representation — bitsets and
   boxed option rows instead of flat bit-packed int32 payloads — so
   the parity tests can drive both sides through identical operation
   sequences and catch packing bugs in either. *)

module Kset = struct
  type state = { k : int; held : Bitset.t array }

  let create ~n ~k =
    if k < 1 || k > n then invalid_arg "Rumor.Kset.create: need 1 <= k <= n";
    let held =
      Array.init n (fun v ->
          let b = Bitset.create k in
          if v < k then Bitset.add b v;
          b)
    in
    { k; held }

  let holds t ~v ~r = Bitset.mem t.held.(v) r
  let count t ~v = Bitset.cardinal t.held.(v)
  let complete t ~v = Bitset.is_full t.held.(v)

  let reset t ~v =
    let b = Bitset.create t.k in
    if v < t.k then Bitset.add b v;
    t.held.(v) <- b

  (* k-rumor emission: cyclic scan from [start], collecting held ids
     until the budget fills or every position was considered once. *)
  let emit_scan t ~v ~start ~budget =
    let out = ref [] and w = ref 0 and p = ref start and scanned = ref 0 in
    while !w < budget && !scanned < t.k do
      if Bitset.mem t.held.(v) !p then begin
        out := !p :: !out;
        incr w
      end;
      p := if !p + 1 = t.k then 0 else !p + 1;
      incr scanned
    done;
    List.rev !out

  (* rotation emission: the fixed [min budget k]-wide window at [pos]. *)
  let emit_window t ~v ~pos ~budget =
    let out = ref [] in
    for j = 0 to min budget t.k - 1 do
      let p = (pos + j) mod t.k in
      if Bitset.mem t.held.(v) p then out := p :: !out
    done;
    List.rev !out

  let absorb t ~v ids =
    List.iter (fun r -> Bitset.add t.held.(v) r) ids;
    complete t ~v
end

module Gf2 = struct
  (* rows.(v).(p) is v's canonical-RREF basis row with pivot p (lowest
     set bit p), or [None] while no vector with that pivot arrived. *)
  type state = { k : int; rows : Bitset.t option array array }

  let xor_into ~into src =
    Bitset.iter (fun i -> if Bitset.mem into i then Bitset.remove into i else Bitset.add into i) src

  let create ~n ~k =
    if k < 1 || k > n then invalid_arg "Rumor.Gf2.create: need 1 <= k <= n";
    let rows =
      Array.init n (fun v ->
          Array.init k (fun p -> if v < k && p = v then Some (Bitset.singleton k v) else None))
    in
    { k; rows }

  let rank t ~v = Array.fold_left (fun a r -> if r = None then a else a + 1) 0 t.rows.(v)
  let complete t ~v = rank t ~v = t.k

  let reset t ~v =
    Array.fill t.rows.(v) 0 t.k None;
    if v < t.k then t.rows.(v).(v) <- Some (Bitset.singleton t.k v)

  let emit t ~v ~coins =
    let acc = Bitset.create t.k in
    for p = 0 to t.k - 1 do
      match t.rows.(v).(p) with
      | Some row when Bitset.mem coins p -> xor_into ~into:acc row
      | _ -> ()
    done;
    acc

  let absorb t ~v vec =
    let vec = Bitset.copy vec in
    (* forward-reduce against present pivots, ascending *)
    for p = 0 to t.k - 1 do
      match t.rows.(v).(p) with
      | Some row when Bitset.mem vec p -> xor_into ~into:vec row
      | _ -> ()
    done;
    (if not (Bitset.is_empty vec) then begin
       let p = Bitset.fold min vec max_int in
       (* back-substitute the new pivot out of existing rows, then
          install — the basis stays canonical *)
       for q = 0 to t.k - 1 do
         match t.rows.(v).(q) with
         | Some row when Bitset.mem row p -> xor_into ~into:row vec
         | _ -> ()
       done;
       t.rows.(v).(p) <- Some vec
     end);
    complete t ~v

  let rows t ~v = List.filter_map Fun.id (Array.to_list t.rows.(v))
end
