(** Latency discovery (Section 4.2).

    When nodes do not know the latencies of their incident edges, they
    can measure them: probe each neighbor in sequence (one initiation
    per round, non-blocking) and time the responses.  After [Δ] probing
    rounds plus a [d]-round wait, every edge of latency [<= d] is
    known, in [Δ + d] rounds total.  With guess-and-double over [d]
    this is the [Õ(D + Δ)] preprocessing that turns the known-latency
    spanner algorithm into an unknown-latency one (Theorem 20's first
    branch). *)

type result = {
  rounds : int;  (** engine rounds consumed ([Δ + d]) *)
  known : (Gossip_graph.Graph.node * int) list array;
      (** per node, the discovered [(neighbor, latency)] pairs *)
  complete : bool;  (** every edge of latency [<= d] was discovered *)
  metrics : Gossip_sim.Engine.metrics;
}

(** [probe g ~d_bound] runs one probing pass with wait bound
    [d_bound]. *)
val probe : Gossip_graph.Graph.t -> d_bound:int -> result

(** [probe_doubling g ~target] repeats [probe] with
    [d = 1, 2, 4, ...] until [d >= target], accumulating rounds — the
    guess-and-double cost [O(Δ log D + D)].  Returns the accumulated
    result with [rounds] summed over attempts. *)
val probe_doubling : Gossip_graph.Graph.t -> target:int -> result

(** [probe_rounds ~delta ~d_bound] is the schedule length one probe
    pass needs to settle: [Δ] probing rounds plus a [d_bound]-round
    wait for in-flight responses. *)
val probe_rounds : delta:int -> d_bound:int -> int

(** {1 Discovery on the flat scale engine}

    The same probe pass at 10^6 nodes, run through the
    {!Gossip_scale.Kernel.discovery} kernel: each node steps a cursor
    through its (sorted) contact row, one probe per round, and records
    the measured round-trip time of each response when it lands within
    [d_bound].  Because the timing wheel measures the exchange's {e
    effective} round trip, the discovered profile reflects the run's
    fault plan and environment — jittered edges are discovered at
    their jittered cost or not at all. *)

type scale_result = {
  s_rounds : int;  (** wheel rounds executed ([Δ + d], summed under doubling) *)
  s_discovered : Gossip_scale.Csr.t;
      (** the discovered graph: an undirected edge appears once both
          endpoints measured it, at the worse of the two measurements *)
  s_edges_known : int;  (** undirected edges in [s_discovered] *)
  s_complete : bool;
      (** every static edge of latency [<= d_bound] was measured in
          both directions (false under message loss or inflating
          jitter) *)
  s_lat : int array;
      (** raw per-direction measurements, parallel to
          [Csr.oriented_of_csr csr]'s [o_col]; [-1] = undiscovered *)
  s_metrics : Gossip_scale.Wheel_engine.metrics;
}

(** [probe_scale rng csr ~d_bound] is one probe pass with wait bound
    [d_bound]; optional arguments pass through to
    {!Gossip_scale.Wheel_engine.broadcast_kernel}. *)
val probe_scale :
  ?faults:Gossip_scale.Wheel_engine.faults ->
  ?env:Gossip_scale.Wheel_engine.env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?domains:int ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  d_bound:int ->
  scale_result

(** [probe_doubling_scale rng csr ~target] is guess-and-double over
    [probe_scale] with [d = 1, 2, 4, ...] until [d >= target];
    [s_rounds] accumulates over attempts, every other field is the
    final attempt's. *)
val probe_doubling_scale :
  ?faults:Gossip_scale.Wheel_engine.faults ->
  ?env:Gossip_scale.Wheel_engine.env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?domains:int ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  target:int ->
  scale_result
