module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph

type knowledge = Known_latencies | Unknown_latencies

type winner = Push_pull_won | Spanner_route_won

type result = {
  rounds : int;
  winner : winner;
  pushpull_rounds : int option;
  spanner_rounds : int;
  discovery_rounds : int;
  success : bool;
}

let all_to_all rng g ~knowledge ~max_rounds =
  let pp = Push_pull.all_to_all (Rng.split rng) g ~max_rounds in
  let discovery_rounds =
    match knowledge with
    | Known_latencies -> 0
    | Unknown_latencies ->
        (* Guess-and-double latency discovery up to the weighted
           diameter; the real protocol detects sufficiency through the
           same termination check EID runs (Section 4.2). *)
        let d = Gossip_graph.Paths.weighted_diameter g in
        (Discovery.probe_doubling g ~target:(max 1 d)).Discovery.rounds
  in
  let eid = Eid.run (Rng.split rng) g () in
  let spanner_rounds = discovery_rounds + eid.Eid.rounds in
  let pushpull_rounds = pp.Push_pull.rounds in
  let winner, rounds =
    match pushpull_rounds with
    | Some r when r <= spanner_rounds -> (Push_pull_won, r)
    | Some _ | None -> (Spanner_route_won, spanner_rounds)
  in
  {
    rounds;
    winner;
    pushpull_rounds;
    spanner_rounds;
    discovery_rounds;
    success = eid.Eid.success || pushpull_rounds <> None;
  }

(* ------------------------------------------------------------------ *)
(* Theorem 20's unified algorithm on the scale engine, single-rumor:
   push-pull raced against the unknown-latency EID chain, each branch
   on its own split of the caller's RNG (the same discipline as
   [all_to_all]), winner = fewer rounds.  Running the branches
   interleaved would cost the model a factor of two; simulating them
   separately and taking the minimum preserves every asymptotic
   claim. *)

module Scale_csr = Gossip_scale.Csr
module Scale_wheel = Gossip_scale.Wheel_engine

type scale_winner = Scale_push_pull_won | Scale_spanner_route_won

type scale_result = {
  b_rounds : int;
  b_winner : scale_winner;
  b_pushpull_rounds : int option;
  b_spanner_rounds : int;
  b_informed : Bytes.t;
  b_success : bool;
  b_unanimous : bool;
  b_attempts : Eid.unknown_attempt list;
  b_metrics : Gossip_sim.Engine.metrics;
}

let broadcast_scale ?n_hat ?domains ?telemetry ?faults ?env ?wheel_latency ?max_jitter
    ?deadline rng csr ~source ~max_rounds () =
  let pp_rng = Rng.split rng in
  let eid_rng = Rng.split rng in
  let pp =
    Scale_wheel.broadcast ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry
      ?domains pp_rng csr ~protocol:Scale_wheel.Push_pull ~source ~max_rounds
  in
  let eid =
    Eid.run_unknown_scale ?n_hat ?domains ?telemetry ?faults ?env ?wheel_latency ?max_jitter
      ?deadline eid_rng csr ~source ()
  in
  let winner, rounds, informed, metrics =
    match pp.Scale_wheel.rounds with
    | Some r when r <= eid.Eid.u_rounds ->
        (Scale_push_pull_won, r, pp.Scale_wheel.informed, pp.Scale_wheel.metrics)
    | Some _ | None ->
        (Scale_spanner_route_won, eid.Eid.u_rounds, eid.Eid.u_informed, eid.Eid.u_metrics)
  in
  {
    b_rounds = rounds;
    b_winner = winner;
    b_pushpull_rounds = pp.Scale_wheel.rounds;
    b_spanner_rounds = eid.Eid.u_rounds;
    b_informed = informed;
    b_success = eid.Eid.u_success || pp.Scale_wheel.rounds <> None;
    b_unanimous = eid.Eid.u_unanimous;
    b_attempts = eid.Eid.u_attempts;
    b_metrics = metrics;
  }
