(** Termination Check (Algorithm 1; Section 5.3; Lemma 18).

    After one execution of all-to-all dissemination with diameter
    estimate [k], every node [v] checks whether the estimate sufficed:

    + [v]'s {e flag} is set when some neighbor is missing from its
      rumor set;
    + [v] broadcasts its (frozen) rumor set and flag through its
      [k]-distance neighborhood and fails when it sees a different
      rumor set or a set flag;
    + a second broadcast floods the "failed" verdict so that everyone
      reaches the same decision (Lemma 18: either all nodes terminate,
      or none do, in the same round).

    The broadcasts run as round-robin exchanges over a supplied edge
    orientation (the spanner inside EID, the full adjacency inside Path
    Discovery) — any Lemma 15-style [k]-distance broadcast works here,
    as the paper notes.

    Rumor sets are compared {e frozen} (as of check start): exchanges
    during the check compare fingerprints rather than merging, so a
    genuine disagreement cannot be masked by the check itself. *)

type result = {
  failed : bool array;  (** per-node verdict after both passes *)
  rounds : int;  (** engine rounds consumed by the check *)
  unanimous : bool;  (** Lemma 18: all verdicts equal *)
}

(** [run ~base ~out_edges ~k ~sets] performs the check.  [sets] is read
    (frozen copies are taken), never modified. *)
val run :
  base:Gossip_graph.Graph.t ->
  out_edges:(Gossip_graph.Graph.node * int) array array ->
  k:int ->
  sets:Rumor.t array ->
  result

(** [rr_rounds_of ~delta_out ~k] is Lemma 15's round-robin window
    [k·Δ_out + k] — the iteration count both check passes flood for. *)
val rr_rounds_of : delta_out:int -> k:int -> int

(** [run_single ~base ~out_edges ~k ~informed] is the single-rumor
    form of the check: the frozen per-node state is one bit ([u] heard
    the rumor), and a node starts flagged iff it is uninformed, so a
    unanimously clean verdict means "everyone heard it".  Semantically
    the boxed twin of {!run_scale} (same flag/mismatch algebra),
    kept for cross-runtime parity tests. *)
val run_single :
  base:Gossip_graph.Graph.t ->
  out_edges:(Gossip_graph.Graph.node * int) array array ->
  k:int ->
  informed:bool array ->
  result

(** {1 The check on the flat scale engine} *)

type scale_result = {
  sc_failed : Bytes.t;  (** per-node verdict after the flood pass *)
  sc_rounds : int;  (** wheel rounds executed, both passes *)
  sc_unanimous : bool;  (** Lemma 18: all verdicts equal *)
  sc_any_failed : bool;  (** some node failed (retry needed) *)
  sc_metrics : Gossip_sim.Engine.metrics;  (** summed over both passes *)
}

(** [run_scale rng csr ~oriented ~k ~informed] runs the single-rumor
    check through the {!Gossip_scale.Kernel.termination_check} /
    [verdict_flood] kernels: gather over [oriented]'s latency-[<= k]
    out-edges for the Lemma 15 window, then flood the verdict for the
    same window.  [informed] is frozen at kernel construction (copied,
    never written).  Optional arguments pass through to
    {!Gossip_scale.Wheel_engine.broadcast_kernel}. *)
val run_scale :
  ?faults:Gossip_scale.Wheel_engine.faults ->
  ?env:Gossip_scale.Wheel_engine.env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?domains:int ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  oriented:Gossip_scale.Csr.oriented ->
  k:int ->
  informed:Bytes.t ->
  scale_result
