(** The T(k) doubling schedule and Path Discovery (Appendix E).

    [T(k)] is a recursively defined sequence of ℓ-DTG invocations:

    [T(1) = 1-DTG],  [T(2k) = T(k) · 2k-DTG · T(k)]

    so the parameter pattern for [k = 8] is
    [1 2 1 4 1 2 1 8 1 2 1 4 1 2 1].  Lemma 24: after executing
    [T(k)], any two nodes at weighted distance [<= k] have exchanged
    rumors.  Lemma 25: executing [T(D)] solves all-to-all
    dissemination in [O(D log² n log D)] time.  The schedule needs no
    bound on [n], and uses the heavy (latency-[2k]) edges only once
    between the two recursive halves — information is accumulated near
    a heavy edge before it is crossed.

    Path Discovery (Algorithm 6) handles unknown [D] by
    guess-and-double over [T(k)] with the Termination Check (the check
    broadcast rides on round-robin flooding over the latency-[<= k]
    adjacency, a valid [k]-distance broadcast per Section 5.3). *)

(** [t_sequence k] is the list of ℓ-DTG parameters of [T(k)]; [k] is
    rounded up to a power of two.  Length [2^log k + ... = 2·k' - 1]
    for [k'] the rounded value... precisely [2^(log2 k' + 1) - 1]
    entries. *)
val t_sequence : int -> int list

type result = {
  rounds : int;  (** total engine rounds *)
  k_final : int;
  attempts : int;  (** guess-and-double iterations (1 for known D) *)
  sets : Rumor.t array;
  success : bool;
  unanimous : bool;
}

(** [run_known_diameter g ~d] executes [T(d)] once. *)
val run_known_diameter : Gossip_graph.Graph.t -> d:int -> result

(** [run g] is Path Discovery with unknown diameter. *)
val run : Gossip_graph.Graph.t -> result

(** {1 The T(k) schedule on the flat scale engine} *)

type schedule_scale_result = {
  ps_rounds : int;  (** wheel rounds executed across all phases *)
  ps_informed : Bytes.t;  (** final informed set, one byte per node *)
  ps_metrics : Gossip_sim.Engine.metrics;  (** summed over all phases *)
}

(** [run_schedule_scale rng csr ~k ~source] executes [T(k)]
    single-rumor: each ℓ-DTG entry runs as a
    {!Gossip_scale.Kernel.dtg_local} kernel for its
    [max 64 (2·ℓ·⌈log n⌉²)] budget, the informed set chaining from
    phase to phase (seeded from [?informed], copied).  Phases after
    the rumor has reached everyone cost no rounds.  Optional
    arguments pass through to
    {!Gossip_scale.Wheel_engine.broadcast_kernel}. *)
val run_schedule_scale :
  ?faults:Gossip_scale.Wheel_engine.faults ->
  ?env:Gossip_scale.Wheel_engine.env ->
  ?wheel_latency:int ->
  ?max_jitter:int ->
  ?deadline:float ->
  ?telemetry:Gossip_obs.Registry.t ->
  ?domains:int ->
  ?informed:Bytes.t ->
  Gossip_util.Rng.t ->
  Gossip_scale.Csr.t ->
  k:int ->
  source:int ->
  schedule_scale_result
