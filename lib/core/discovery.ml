module Graph = Gossip_graph.Graph
module Engine = Gossip_sim.Engine

let probe_rounds ~delta ~d_bound = delta + d_bound

type result = {
  rounds : int;
  known : (Graph.node * int) list array;
  complete : bool;
  metrics : Engine.metrics;
}

let probe g ~d_bound =
  if d_bound < 1 then invalid_arg "Discovery.probe: need d_bound >= 1";
  let n = Graph.n g in
  let known = Array.make n [] in
  let pending : (int, int) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 8) in
  let handlers u =
    let nbrs = Graph.neighbors g u in
    let cursor = ref 0 in
    {
      Engine.on_round =
        (fun ~round ->
          if !cursor >= Array.length nbrs then None
          else begin
            let peer, _ = nbrs.(!cursor) in
            incr cursor;
            Hashtbl.replace pending.(u) peer round;
            Some (peer, ())
          end);
      on_request = (fun ~peer:_ ~round:_ () -> ());
      on_push = (fun ~peer:_ ~round:_ () -> ());
      on_response =
        (fun ~peer ~round () ->
          match Hashtbl.find_opt pending.(u) peer with
          | Some start ->
              Hashtbl.remove pending.(u) peer;
              let latency = round - start in
              if latency <= d_bound then known.(u) <- (peer, latency) :: known.(u)
          | None -> ());
    }
  in
  let engine = Engine.create g ~handlers in
  (* Probe for Delta rounds, then wait d_bound for late responses. *)
  for _ = 1 to probe_rounds ~delta:(Graph.max_degree g) ~d_bound do
    Engine.step engine
  done;
  let complete =
    let ok = ref true in
    Graph.iter_edges
      (fun { Graph.u; v; latency } ->
        if latency <= d_bound then begin
          let have side peer = List.mem_assoc peer known.(side) in
          if not (have u v && have v u) then ok := false
        end)
      g;
    !ok
  in
  { rounds = Engine.current_round engine; known; complete; metrics = Engine.metrics engine }

let probe_doubling g ~target =
  if target < 1 then invalid_arg "Discovery.probe_doubling: need target >= 1";
  let rec go d acc_rounds =
    let r = probe g ~d_bound:d in
    let acc_rounds = acc_rounds + r.rounds in
    if d >= target then { r with rounds = acc_rounds } else go (2 * d) acc_rounds
  in
  go 1 0

(* ------------------------------------------------------------------ *)
(* Discovery on the flat CSR scale engine: the same probe schedule —
   one neighbor per round per node, cursor order, a d_bound wait for
   stragglers — but run through the Wheel_engine discovery kernel,
   which times each exchange's measured round trip and records it at
   the probed slot.  The discovered profile is then packed back into a
   CSR graph (an edge counts once both directions are measured, at the
   worse of the two measurements), which is what the unknown-latency
   EID chain builds its spanner from. *)

module Scale_csr = Gossip_scale.Csr
module Scale_kernel = Gossip_scale.Kernel
module Scale_wheel = Gossip_scale.Wheel_engine

type scale_result = {
  s_rounds : int;
  s_discovered : Scale_csr.t;
  s_edges_known : int;
  s_complete : bool;
  s_lat : int array;
  s_metrics : Scale_wheel.metrics;
}

(* Index of [target] in [o]'s (sorted, symmetric) row of [u]; the
   reverse direction of an edge found by a forward row walk, so it is
   always present. *)
let slot_of o u target =
  let module I32 = Gossip_scale.I32 in
  let lo = ref (I32.get o.Scale_csr.o_row_ptr u)
  and hi = ref (I32.get o.Scale_csr.o_row_ptr (u + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = I32.get o.Scale_csr.o_col mid in
    if c = target then found := mid else if c < target then lo := mid + 1 else hi := mid - 1
  done;
  if !found < 0 then invalid_arg "Discovery.probe_scale: asymmetric CSR row";
  !found

let probe_scale ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry ?domains rng csr
    ~d_bound =
  if d_bound < 1 then invalid_arg "Discovery.probe_scale: need d_bound >= 1";
  let n = Scale_csr.n csr in
  let disc = Scale_kernel.discovery ~d_bound csr in
  let rounds = probe_rounds ~delta:(Scale_csr.max_degree csr) ~d_bound in
  (* The kernel is inert for the rumor machinery (nobody beyond the
     source is ever informed), so the engine runs exactly [rounds]
     rounds: the cap is the schedule. *)
  let res =
    Scale_wheel.broadcast_kernel ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry
      ?domains rng csr ~kernel:disc.Scale_kernel.disc_kernel ~source:0 ~max_rounds:rounds
  in
  let o = Scale_csr.oriented_of_csr csr in
  let lat = disc.Scale_kernel.disc_lat in
  let m = Scale_csr.m csr in
  let eu = Array.make (max 1 m) 0
  and ev = Array.make (max 1 m) 0
  and el = Array.make (max 1 m) 0 in
  let count = ref 0 in
  let complete = ref true in
  let module I32 = Gossip_scale.I32 in
  for u = 0 to n - 1 do
    for i = I32.get o.Scale_csr.o_row_ptr u to I32.get o.Scale_csr.o_row_ptr (u + 1) - 1 do
      if I32.get o.Scale_csr.o_lat i <= d_bound && lat.(i) < 0 then complete := false;
      let v = I32.get o.Scale_csr.o_col i in
      if v > u && lat.(i) >= 0 then begin
        let j = slot_of o v u in
        if lat.(j) >= 0 then begin
          eu.(!count) <- u;
          ev.(!count) <- v;
          el.(!count) <- max lat.(i) lat.(j);
          incr count
        end
      end
    done
  done;
  {
    s_rounds = res.Scale_wheel.metrics.Gossip_sim.Engine.rounds;
    s_discovered = Scale_csr.of_undirected_arrays ~n eu ev el ~count:!count;
    s_edges_known = !count;
    s_complete = !complete;
    s_lat = lat;
    s_metrics = res.Scale_wheel.metrics;
  }

let probe_doubling_scale ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry ?domains
    rng csr ~target =
  if target < 1 then invalid_arg "Discovery.probe_doubling_scale: need target >= 1";
  let acc_metrics = Engine.empty_metrics () in
  let rec go d acc =
    let r =
      probe_scale ?faults ?env ?wheel_latency ?max_jitter ?deadline ?telemetry ?domains rng csr
        ~d_bound:d
    in
    Engine.add_metrics ~into:acc_metrics r.s_metrics;
    let acc = acc + r.s_rounds in
    if d >= target then { r with s_rounds = acc; s_metrics = acc_metrics } else go (2 * d) acc
  in
  go 1 0
