(** Rumor sets and dissemination goals.

    A rumor is identified with the node that originated it, so a rumor
    set is a set of node identifiers (a {!Gossip_util.Bitset.t}).  In
    protocols where a rumor carries content (e.g. a node's adjacency in
    EID's neighborhood discovery), knowing an identifier stands for
    knowing that node's content — the content is a deterministic
    function of the originator, so the bitset is the whole state.

    The three completion predicates below are the paper's three
    problems: one-to-all broadcast, all-to-all dissemination, and local
    broadcast. *)

type t = Gossip_util.Bitset.t

(** [initial g] gives every node the singleton rumor set [{v}]. *)
val initial : Gossip_graph.Graph.t -> t array

(** [broadcast_done ~source sets] — every node knows [source]'s
    rumor. *)
val broadcast_done : source:Gossip_graph.Graph.node -> t array -> bool

(** [all_to_all_done sets] — every node knows every rumor. *)
val all_to_all_done : t array -> bool

(** [local_broadcast_done g ?ell sets] — for every edge [(u, v)] of
    latency [<= ell] (default: every edge), [u] knows [v]'s rumor and
    vice versa.  This is the [ℓ]-local broadcast goal of Section 5.1. *)
val local_broadcast_done : Gossip_graph.Graph.t -> ?ell:int -> t array -> bool

(** [count_knowing ~source sets] — how many nodes know [source]'s
    rumor (the informed-set size of Theorem 12's Markov process). *)
val count_knowing : source:Gossip_graph.Graph.node -> t array -> int

(** Boxed reference twin of the scale k-rumor subset kernels
    ([Gossip_scale.Kernel.k_rumor_push_pull] / [rumor_rotation]): each
    node holds a subset of [k] rumor ids, rumor [j] born at node [j].
    Same semantics as the flat kernels, deliberately different
    representation (bitsets instead of bit-packed int32 payloads), so
    the parity tests can replay identical operation sequences on both
    and catch packing bugs in either. *)
module Kset : sig
  type state

  (** @raise Invalid_argument unless [1 <= k <= n]. *)
  val create : n:int -> k:int -> state

  val holds : state -> v:int -> r:int -> bool
  val count : state -> v:int -> int
  val complete : state -> v:int -> bool

  (** Churn amnesia: [v] keeps at most its own rumor. *)
  val reset : state -> v:int -> unit

  (** [emit_scan t ~v ~start ~budget] — the k-rumor emission: scan
      cyclically from position [start], collecting held rumor ids
      until the budget fills or every position was considered once. *)
  val emit_scan : state -> v:int -> start:int -> budget:int -> int list

  (** [emit_window t ~v ~pos ~budget] — the rotation emission: the
      held ids within the fixed [min budget k]-wide window at [pos]. *)
  val emit_window : state -> v:int -> pos:int -> budget:int -> int list

  (** [absorb t ~v ids] learns the ids; returns whether [v] is now
      complete (holds all [k]). *)
  val absorb : state -> v:int -> int list -> bool
end

(** Boxed reference twin of [Gossip_scale.Kernel.algebraic]: per-node
    GF(2) coefficient spans over [k] coded rumors, kept in canonical
    reduced row echelon form (pivot = lowest set bit, full
    back-substitution) — the canonicalization that makes absorption
    order-independent.  Vectors are bitsets over coefficient positions
    [\[0, k)]. *)
module Gf2 : sig
  type state

  (** @raise Invalid_argument unless [1 <= k <= n].  Node [j < k]
      starts with the unit vector [e_j]. *)
  val create : n:int -> k:int -> state

  val rank : state -> v:int -> int
  val complete : state -> v:int -> bool

  (** Churn amnesia: [v] keeps at most its own unit vector. *)
  val reset : state -> v:int -> unit

  (** [emit t ~v ~coins] — the XOR of [v]'s basis rows whose pivot
      position is selected by [coins] (the random linear
      combination). *)
  val emit : state -> v:int -> coins:Gossip_util.Bitset.t -> Gossip_util.Bitset.t

  (** [absorb t ~v vec] reduces [vec] against [v]'s basis and installs
      the survivor (if independent); returns whether [v] reached rank
      [k].  [vec] is not mutated. *)
  val absorb : state -> v:int -> Gossip_util.Bitset.t -> bool

  (** [v]'s canonical basis rows in ascending pivot order. *)
  val rows : state -> v:int -> Gossip_util.Bitset.t list
end
