(** The classical push-pull random-phone-call protocol (Theorem 12).

    In every round each node initiates an exchange with a uniformly
    random neighbor; the exchange both pushes the node's rumors to the
    neighbor and pulls the neighbor's rumors back.  On a graph with
    weighted conductance [phi_star] and critical latency [ell_star], a
    broadcast completes in [O((ell_star / phi_star) log n)] rounds
    w.h.p.

    Initiations are non-blocking: a node initiates every round even
    while earlier exchanges over slow edges are still in flight. *)

type result = {
  rounds : int option;  (** rounds until completion, [None] if capped *)
  metrics : Gossip_sim.Engine.metrics;
  history : (int * int) list;
      (** (round, informed-set size) whenever the size changed —
          the Markov-process trajectory of Theorem 12's proof *)
}

(** [broadcast ?telemetry rng g ~source ~max_rounds] spreads a single
    rumor from [source] until every node is informed.  [telemetry] is
    passed through to {!Gossip_sim.Engine.create}; additionally, when
    the registry carries a ring, the informed-set size is recorded as
    an [informed] trace event after every round. *)
val broadcast :
  ?telemetry:Gossip_obs.Registry.t ->
  Gossip_util.Rng.t ->
  Gossip_graph.Graph.t ->
  source:Gossip_graph.Graph.node ->
  max_rounds:int ->
  result

(** [all_to_all rng g ~max_rounds] starts one rumor per node and runs
    push-pull with full rumor-set payloads until every node knows every
    rumor.  [history] tracks the number of fully-informed nodes. *)
val all_to_all :
  Gossip_util.Rng.t -> Gossip_graph.Graph.t -> max_rounds:int -> result

(** [local_broadcast rng g ~max_rounds] runs the all-to-all payloads
    but stops at the local broadcast goal (every node knows all its
    neighbors' rumors) — the problem the lower bounds of Section 3 are
    stated for. *)
val local_broadcast :
  Gossip_util.Rng.t -> Gossip_graph.Graph.t -> max_rounds:int -> result
