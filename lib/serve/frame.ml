module Json = Gossip_util.Json

type reader = {
  buf : Buffer.t;
  max_line : int;
  mutable discarding : bool;  (* inside an oversized frame, skip to '\n' *)
  mutable oversized : int;
}

let reader ?(max_line = 1 lsl 20) () =
  if max_line < 1 then invalid_arg "Frame.reader: max_line must be >= 1";
  { buf = Buffer.create 256; max_line; discarding = false; oversized = 0 }

(* One complete line left the buffer: strip the optional '\r' and skip
   blanks. *)
let emit acc line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.trim line = "" then acc else line :: acc

let feed r bytes ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Frame.feed: window out of bounds";
  let acc = ref [] in
  for i = off to off + len - 1 do
    let c = Bytes.get bytes i in
    if r.discarding then begin
      if c = '\n' then begin
        r.discarding <- false;
        r.oversized <- r.oversized + 1
      end
    end
    else if c = '\n' then begin
      acc := emit !acc (Buffer.contents r.buf);
      Buffer.clear r.buf
    end
    else begin
      Buffer.add_char r.buf c;
      if Buffer.length r.buf > r.max_line then begin
        Buffer.clear r.buf;
        r.discarding <- true
      end
    end
  done;
  List.rev !acc

let feed_string r s = feed r (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let pending r = Buffer.length r.buf

let oversized r = r.oversized

let frame j = Json.to_string j ^ "\n"
