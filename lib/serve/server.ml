module Json = Gossip_util.Json
module Sweep = Gossip_sweep.Sweep
module Live = Gossip_obs.Live
module Registry = Gossip_obs.Registry
module Sink = Gossip_obs.Sink

type config = {
  socket_path : string;
  journal : string option;
  telemetry : string option;
  capacity : int;
  max_line : int;
  tick_s : float;
  retries : int;
  timeout_s : float option;
  server_name : string;
  install_signals : bool;
  on_listening : (unit -> unit) option;
  before_job : (string -> unit) option;
}

let default ~socket_path =
  {
    socket_path;
    journal = None;
    telemetry = None;
    capacity = 64;
    max_line = 1 lsl 20;
    tick_s = 0.05;
    retries = 0;
    timeout_s = None;
    server_name = "gossipd";
    install_signals = true;
    on_listening = None;
    before_job = None;
  }

(* ------------------------------------------------------------------ *)
(* Cross-thread events: worker -> socket loop *)

type trial_ev = {
  t_job : string;
  t_trial : int;
  t_trials : int;
  t_seed : int;
  t_rounds : int option;
  t_ok : bool;
  t_entry : Sweep.checkpoint_entry;
}

type event =
  | Ev_progress of Protocol.progress
  | Ev_trial of trial_ev
  | Ev_done of { d_job : string; d_state : Protocol.job_state }

type conn = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  out : Buffer.t;
  mutable watching : string list;
  mutable alive : bool;
}

type state = {
  cfg : config;
  q : Jobq.t;
  events : event Live.t;
  stopping : bool Atomic.t;
  worker_done : bool Atomic.t;
  mutable conns : conn list;
  mutable journal_sink : Sink.t option;
  registry : Registry.t;
}

(* ------------------------------------------------------------------ *)
(* Worker thread *)

exception Abort_job of [ `Cancel | `Drain ]

let run_trials st id spec (jobs : Sweep.job array) =
  let trials = Array.length jobs in
  let n_real = Sweep.realized_n spec.Protocol.family ~n:spec.Protocol.n in
  Array.iteri
    (fun i job ->
      if not (Jobq.trial_done st.q ~id ~trial:i) then begin
        if Atomic.get st.stopping then raise (Abort_job `Drain);
        if Jobq.cancel_requested st.q id then raise (Abort_job `Cancel);
        let on_round ~round ~informed =
          Live.publish st.events
            (Ev_progress
               {
                 Protocol.p_job = id;
                 p_trial = i;
                 p_trials = trials;
                 p_seed = job.Sweep.seed;
                 p_round = round;
                 p_informed = informed;
                 p_n = n_real;
               });
          if Jobq.cancel_requested st.q id then raise (Abort_job `Cancel);
          if Atomic.get st.stopping then raise (Abort_job `Drain)
        in
        let rec attempt k =
          match Sweep.run_job ?timeout_s:st.cfg.timeout_s ~on_round job with
          | outcome -> Ok outcome
          | exception (Abort_job _ as e) -> raise e
          | exception e -> if k < st.cfg.retries then attempt (k + 1) else Error (e, k + 1)
        in
        match attempt 0 with
        | Ok o ->
            Jobq.mark_trial st.q ~id ~trial:i ~ok:true ~row:(Sweep.outcome_json o) ();
            Live.publish st.events
              (Ev_trial
                 {
                   t_job = id;
                   t_trial = i;
                   t_trials = trials;
                   t_seed = job.Sweep.seed;
                   t_rounds = o.Sweep.rounds;
                   t_ok = true;
                   t_entry = Sweep.Ckpt_done o;
                 })
        | Error (e, attempts) ->
            let failure =
              {
                Sweep.failed_job = job;
                message = Printexc.to_string e;
                backtrace = "";
                attempts;
              }
            in
            Jobq.mark_trial st.q ~id ~trial:i ~ok:false ();
            Live.publish st.events
              (Ev_trial
                 {
                   t_job = id;
                   t_trial = i;
                   t_trials = trials;
                   t_seed = job.Sweep.seed;
                   t_rounds = None;
                   t_ok = false;
                   t_entry = Sweep.Ckpt_failed failure;
                 })
      end)
    jobs

let finish_job st id =
  match Jobq.finish st.q id with
  | Some state -> Live.publish st.events (Ev_done { d_job = id; d_state = state })
  | None -> ()

let run_entry st id =
  (match st.cfg.before_job with Some f -> f id | None -> ());
  match Jobq.work st.q id with
  | None -> ()
  | Some (spec, jobs) -> (
      match run_trials st id spec jobs with
      | () -> finish_job st id
      | exception Abort_job `Cancel -> finish_job st id
      | exception Abort_job `Drain -> Jobq.requeue st.q id)

let worker st =
  let rec loop () =
    if not (Atomic.get st.stopping) then
      match Jobq.next st.q with
      | None -> ()
      | Some id ->
          if Atomic.get st.stopping then Jobq.requeue st.q id
          else begin
            run_entry st id;
            loop ()
          end
  in
  loop ();
  Atomic.set st.worker_done true

(* ------------------------------------------------------------------ *)
(* Journal *)

let journal_event st fields =
  match st.journal_sink with
  | None -> ()
  | Some sink ->
      Sink.event sink fields;
      Sink.flush sink

let journal_submit st id spec =
  journal_event st
    [
      ("ev", Json.String "serve_submit");
      ("job", Json.String id);
      ("spec", Protocol.spec_to_json spec);
    ]

let journal_trial st (t : trial_ev) =
  journal_event st
    (Sweep.checkpoint_event t.t_entry
    @ [ ("job", Json.String t.t_job); ("trial", Json.Int t.t_trial) ])

let journal_close st id state =
  journal_event st
    [
      ("ev", Json.String "serve_close");
      ("job", Json.String id);
      ("state", Json.String (Protocol.job_state_label state));
    ]

(* Replay a sealed journal: terminal jobs stay retired (their ids are
   absorbed so the generator never reissues them), incomplete jobs are
   re-enqueued with their checkpointed trials pre-marked. *)
let replay_journal q path =
  if Sys.file_exists path then begin
    Sweep.seal_checkpoint path;
    let lines =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    let parsed =
      List.filter_map (fun l -> Result.to_option (Json.of_string l)) lines
    in
    let field j name = match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None in
    let str j name = match field j name with Some (Json.String s) -> Some s | _ -> None in
    let int j name = match field j name with Some (Json.Int i) -> Some i | _ -> None in
    let closed = Hashtbl.create 8 in
    List.iter
      (fun j ->
        match (str j "ev", str j "job") with
        | Some "serve_close", Some id -> Hashtbl.replace closed id ()
        | _ -> ())
      parsed;
    List.iter
      (fun j ->
        match (str j "ev", str j "job") with
        | Some "serve_submit", Some id ->
            if Hashtbl.mem closed id then Jobq.absorb q id
            else (
              match field j "spec" with
              | Some sj -> (
                  match Protocol.spec_of_json sj with
                  | Ok spec -> (
                      match Jobq.submit q ~id spec with
                      | Ok _ -> ()
                      | Error `Full ->
                          Printf.eprintf
                            "gossipd: journal replay: queue full, dropping %s\n%!" id)
                  | Error msg ->
                      Printf.eprintf
                        "gossipd: journal replay: bad spec for %s (%s), dropping\n%!" id
                        msg)
              | None -> ())
        | Some ("ckpt_job" | "ckpt_fail"), Some id when not (Hashtbl.mem closed id) -> (
            match (int j "trial", Sweep.entry_of_json j) with
            | Some trial, Some (Sweep.Ckpt_done o) ->
                Jobq.mark_trial q ~id ~trial ~ok:true ~row:(Sweep.outcome_json o) ()
            | Some trial, Some (Sweep.Ckpt_failed _) ->
                Jobq.mark_trial q ~id ~trial ~ok:false ()
            | _ -> ())
        | _ -> ())
      parsed
  end

(* ------------------------------------------------------------------ *)
(* Socket loop *)

let send c resp = Buffer.add_string c.out (Frame.frame (Protocol.response_to_json resp))

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns
  end

let flush_conn st c =
  if c.alive && Buffer.length c.out > 0 then begin
    let s = Buffer.contents c.out in
    let len = String.length s in
    match Unix.write_substring c.fd s 0 len with
    | n ->
        Buffer.clear c.out;
        if n < len then Buffer.add_substring c.out s n (len - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> close_conn st c
  end

let request_verb = function
  | Protocol.Ping -> "ping"
  | Protocol.Submit _ -> "submit"
  | Protocol.Status _ -> "status"
  | Protocol.Watch _ -> "watch"
  | Protocol.Cancel _ -> "cancel"
  | Protocol.Results _ -> "results"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"

let count st name = Registry.incr (Registry.counter st.registry name)

let note_depth st =
  Registry.record_max (Registry.gauge st.registry "serve.queue_depth") (Jobq.depth st.q)

let unknown_job job =
  Protocol.Error { code = Protocol.Unknown_job; message = Printf.sprintf "unknown job %S" job }

let handle_request st c req =
  count st ("serve.requests." ^ request_verb req);
  match req with
  | Protocol.Ping ->
      send c (Protocol.Pong { proto = Protocol.version; server = st.cfg.server_name })
  | Protocol.Submit spec -> (
      match Protocol.validate_spec spec with
      | Error message -> send c (Protocol.Error { code = Protocol.Bad_request; message })
      | Ok () ->
          if Atomic.get st.stopping then
            send c
              (Protocol.Error
                 { code = Protocol.Shutting_down; message = "daemon is shutting down" })
          else (
            match Jobq.submit st.q spec with
            | Error `Full ->
                count st "serve.rejected";
                send c
                  (Protocol.Error
                     {
                       code = Protocol.Queue_full;
                       message =
                         Printf.sprintf "queue full (capacity %d)" (Jobq.capacity st.q);
                     })
            | Ok { Jobq.id; position; trials } ->
                journal_submit st id spec;
                note_depth st;
                send c (Protocol.Submitted { job = id; position; trials })))
  | Protocol.Status job -> (
      match Jobq.status st.q job with
      | Some s -> send c (Protocol.Job_status s)
      | None -> send c (unknown_job job))
  | Protocol.Watch job -> (
      match Jobq.status st.q job with
      | None -> send c (unknown_job job)
      | Some s ->
          send c (Protocol.Watching { job });
          (match s.Protocol.s_state with
          | Protocol.Queued | Protocol.Running -> c.watching <- job :: c.watching
          | _ -> send c (Protocol.Job_done s)))
  | Protocol.Cancel job -> (
      match Jobq.cancel st.q job with
      | None -> send c (unknown_job job)
      | Some state ->
          (* queued jobs die here and now; running ones are flagged and
             reach [Cancelled] when the worker aborts *)
          if state = Protocol.Cancelled then journal_close st job Protocol.Cancelled;
          send c (Protocol.Cancel_ok { job; state }))
  | Protocol.Results job -> (
      match Jobq.status st.q job with
      | None -> send c (unknown_job job)
      | Some _ ->
          let rows = Jobq.rows st.q job in
          List.iter (fun row -> send c (Protocol.Result_row { job; row })) rows;
          send c (Protocol.Results_end { job; count = List.length rows }))
  | Protocol.Stats ->
      send c
        (Protocol.Server_stats
           { counters = Registry.counters st.registry; gauges = Registry.gauges st.registry })
  | Protocol.Shutdown ->
      send c Protocol.Bye;
      Atomic.set st.stopping true

let handle_line st c line =
  match Json.of_string line with
  | Error msg ->
      count st "serve.requests.invalid";
      send c
        (Protocol.Error
           { code = Protocol.Bad_request; message = "invalid JSON: " ^ msg })
  | Ok j -> (
      match Protocol.request_of_json j with
      | Error (code, message) ->
          count st "serve.requests.invalid";
          send c (Protocol.Error { code; message })
      | Ok req -> handle_request st c req)

let read_conn st c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | 0 -> close_conn st c
  | n -> List.iter (handle_line st c) (Frame.feed c.reader buf ~off:0 ~len:n)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> close_conn st c

let accept_ready st lfd =
  let rec go () =
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        count st "serve.connections";
        st.conns <-
          { fd; reader = Frame.reader ~max_line:st.cfg.max_line (); out = Buffer.create 256;
            watching = []; alive = true }
          :: st.conns;
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let watchers st job = List.filter (fun c -> List.mem job c.watching) st.conns

let route_event st = function
  | Ev_progress p ->
      List.iter (fun c -> send c (Protocol.Progress p)) (watchers st p.Protocol.p_job)
  | Ev_trial t ->
      journal_trial st t;
      count st (if t.t_ok then "serve.trials.ok" else "serve.trials.failed");
      List.iter
        (fun c ->
          send c
            (Protocol.Trial_done
               {
                 job = t.t_job;
                 trial = t.t_trial;
                 trials = t.t_trials;
                 seed = t.t_seed;
                 rounds = t.t_rounds;
                 ok = t.t_ok;
               }))
        (watchers st t.t_job)
  | Ev_done { d_job; d_state } -> (
      journal_close st d_job d_state;
      count st ("serve.jobs." ^ Protocol.job_state_label d_state);
      match Jobq.status st.q d_job with
      | None -> ()
      | Some s ->
          List.iter
            (fun c ->
              send c (Protocol.Job_done s);
              c.watching <- List.filter (fun j -> j <> d_job) c.watching)
            (watchers st d_job))

let drain_events st = List.iter (route_event st) (Live.drain st.events)

let select_loop st lfd =
  let released = ref false in
  let finished = ref false in
  while not !finished do
    let stopping = Atomic.get st.stopping in
    if stopping && not !released then begin
      released := true;
      Jobq.release st.q
    end;
    let rfds = (if stopping then [] else [ lfd ]) @ List.map (fun c -> c.fd) st.conns in
    let wfds =
      List.filter_map (fun c -> if Buffer.length c.out > 0 then Some c.fd else None) st.conns
    in
    let readable, writable, _ =
      match Unix.select rfds wfds [] st.cfg.tick_s with
      | r -> r
      | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    if (not stopping) && List.mem lfd readable then accept_ready st lfd;
    List.iter
      (fun c -> if c.alive && List.mem c.fd readable then read_conn st c)
      st.conns;
    drain_events st;
    note_depth st;
    List.iter
      (fun c -> if c.alive && List.mem c.fd writable then flush_conn st c)
      st.conns;
    if !released && Atomic.get st.worker_done then begin
      (* worker is gone: one last drain, then best-effort flush *)
      drain_events st;
      List.iter (fun c -> flush_conn st c) st.conns;
      finished := true
    end
  done

(* ------------------------------------------------------------------ *)

let run cfg =
  if cfg.capacity < 1 then invalid_arg "Server.run: capacity must be >= 1";
  if cfg.retries < 0 then invalid_arg "Server.run: retries must be >= 0";
  if cfg.tick_s <= 0.0 then invalid_arg "Server.run: tick_s must be > 0";
  (match cfg.timeout_s with
  | Some t when t <= 0.0 || not (Float.is_finite t) ->
      invalid_arg "Server.run: timeout_s must be positive and finite"
  | _ -> ());
  let st =
    {
      cfg;
      q = Jobq.create ~capacity:cfg.capacity ();
      events = Live.create ();
      stopping = Atomic.make false;
      worker_done = Atomic.make false;
      conns = [];
      journal_sink = None;
      registry = Registry.create ();
    }
  in
  (* durability first: a journal from a killed daemon refills the queue
     before the socket opens, so clients never observe a half-restored
     server *)
  (match cfg.journal with
  | Some path ->
      replay_journal st.q path;
      st.journal_sink <- Some (Sink.jsonl ~append:true path)
  | None -> ());
  if cfg.install_signals then begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let stop = Sys.Signal_handle (fun _ -> Atomic.set st.stopping true) in
    Sys.set_signal Sys.sigint stop;
    Sys.set_signal Sys.sigterm stop
  end;
  (match Unix.unlink cfg.socket_path with
  | () -> ()
  | exception Unix.Unix_error (ENOENT, _, _) -> ());
  let lfd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (match Unix.unlink cfg.socket_path with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      (match st.journal_sink with Some s -> Sink.close s | None -> ());
      match cfg.telemetry with
      | Some path ->
          Sink.with_jsonl path (fun s ->
              Sink.event s
                [ ("ev", Json.String "meta"); ("tool", Json.String "gossipd") ];
              Sink.registry s st.registry)
      | None -> ())
    (fun () ->
      Unix.bind lfd (ADDR_UNIX cfg.socket_path);
      Unix.listen lfd 16;
      Unix.set_nonblock lfd;
      let worker_t = Thread.create worker st in
      (match cfg.on_listening with Some f -> f () | None -> ());
      select_loop st lfd;
      Thread.join worker_t;
      List.iter (fun c -> close_conn st c) st.conns)
