module Json = Gossip_util.Json
module Sweep = Gossip_sweep.Sweep
module Wheel = Gossip_scale.Wheel_engine

let version = 1

type spec = {
  family : Sweep.family;
  n : int;
  protocol : Wheel.protocol;
  trials : int;
  base_seed : int;
  max_rounds : int;
  latency : Gossip_graph.Gen.latency_spec option;
  scenario : Gossip_dyn.Scenario.t option;
}

let jobs_of_spec s =
  Sweep.make_jobs ~family:s.family ~n:s.n ~protocol:s.protocol ~trials:s.trials
    ~base_seed:s.base_seed ~max_rounds:s.max_rounds ?latency:s.latency
    ?scenario:s.scenario ()

let validate_spec s =
  if s.n < 1 then Error (Printf.sprintf "n must be >= 1 (got %d)" s.n)
  else if s.trials < 1 then Error (Printf.sprintf "trials must be >= 1 (got %d)" s.trials)
  else if s.max_rounds < 1 then
    Error (Printf.sprintf "max_rounds must be >= 1 (got %d)" s.max_rounds)
  else Ok ()

type request =
  | Ping
  | Submit of spec
  | Status of string
  | Watch of string
  | Cancel of string
  | Results of string
  | Stats
  | Shutdown

type job_state = Queued | Running | Done | Failed | Cancelled

let job_state_label = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let job_state_of_label = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

type status = {
  s_job : string;
  s_state : job_state;
  s_trials : int;
  s_completed : int;
  s_failed : int;
  s_position : int option;
}

type progress = {
  p_job : string;
  p_trial : int;
  p_trials : int;
  p_seed : int;
  p_round : int;
  p_informed : int;
  p_n : int;
}

type error_code = Bad_request | Version_mismatch | Unknown_job | Queue_full | Shutting_down

let error_code_label = function
  | Bad_request -> "bad_request"
  | Version_mismatch -> "version_mismatch"
  | Unknown_job -> "unknown_job"
  | Queue_full -> "queue_full"
  | Shutting_down -> "shutting_down"

let error_code_of_label = function
  | "bad_request" -> Some Bad_request
  | "version_mismatch" -> Some Version_mismatch
  | "unknown_job" -> Some Unknown_job
  | "queue_full" -> Some Queue_full
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type response =
  | Pong of { proto : int; server : string }
  | Submitted of { job : string; position : int; trials : int }
  | Job_status of status
  | Watching of { job : string }
  | Progress of progress
  | Trial_done of {
      job : string;
      trial : int;
      trials : int;
      seed : int;
      rounds : int option;
      ok : bool;
    }
  | Job_done of status
  | Result_row of { job : string; row : Json.t }
  | Results_end of { job : string; count : int }
  | Server_stats of { counters : (string * int) list; gauges : (string * int) list }
  | Cancel_ok of { job : string; state : job_state }
  | Bye
  | Error of { code : error_code; message : string }

(* ------------------------------------------------------------------ *)
(* Field helpers *)

let field j name = match j with Json.Obj fs -> List.assoc_opt name fs | _ -> None

let int_field j name = match field j name with Some (Json.Int i) -> Some i | _ -> None

let str_field j name = match field j name with Some (Json.String s) -> Some s | _ -> None

let bool_field j name = match field j name with Some (Json.Bool b) -> Some b | _ -> None

(* ------------------------------------------------------------------ *)
(* Spec *)

let spec_to_json s =
  Json.Obj
    ([
       ("family", Sweep.family_json s.family);
       ("n", Json.Int s.n);
       ("protocol", Json.String (Wheel.protocol_name s.protocol));
       ("trials", Json.Int s.trials);
       ("base_seed", Json.Int s.base_seed);
       ("max_rounds", Json.Int s.max_rounds);
     ]
    @ (match s.latency with None -> [] | Some l -> [ ("latency", Sweep.latency_json l) ])
    @
    (* The scenario field is optional and absent for static plans, so
       a v1 client that has never heard of scenarios emits and reads
       the exact frames it always did. *)
    match s.scenario with
    | None -> []
    | Some sc -> [ ("scenario", Gossip_dyn.Scenario.to_json sc) ])

let spec_of_json j =
  let need name = function
    | Some v -> Ok v
    | None -> Result.Error (Printf.sprintf "spec: missing or malformed %S" name)
  in
  let ( let* ) = Result.bind in
  let* fj = need "family" (field j "family") in
  let* family = need "family" (Sweep.family_of_json fj) in
  let* n = need "n" (int_field j "n") in
  let* pname = need "protocol" (str_field j "protocol") in
  let* protocol =
    match Wheel.protocol_of_string pname with
    | Some p -> Ok p
    | None -> Result.Error (Printf.sprintf "spec: unknown protocol %S" pname)
  in
  let* trials = need "trials" (int_field j "trials") in
  let* base_seed = need "base_seed" (int_field j "base_seed") in
  let* max_rounds = need "max_rounds" (int_field j "max_rounds") in
  let* latency =
    match field j "latency" with
    | None | Some Json.Null -> Ok None
    | Some lj -> (
        match Sweep.latency_of_json lj with
        | Some l -> Ok (Some l)
        | None -> Result.Error "spec: malformed latency")
  in
  let* scenario =
    match field j "scenario" with
    | None | Some Json.Null -> Ok None
    | Some sj -> (
        match Gossip_dyn.Scenario.of_json sj with
        | sc -> Ok (Some sc)
        | exception Gossip_dyn.Scenario.Invalid_scenario msg ->
            Result.Error (Printf.sprintf "spec: %s" msg))
  in
  Ok { family; n; protocol; trials; base_seed; max_rounds; latency; scenario }

(* ------------------------------------------------------------------ *)
(* Requests *)

let request_to_json r =
  let v = ("v", Json.Int version) in
  match r with
  | Ping -> Json.Obj [ v; ("req", Json.String "ping") ]
  | Submit s -> Json.Obj [ v; ("req", Json.String "submit"); ("spec", spec_to_json s) ]
  | Status job -> Json.Obj [ v; ("req", Json.String "status"); ("job", Json.String job) ]
  | Watch job -> Json.Obj [ v; ("req", Json.String "watch"); ("job", Json.String job) ]
  | Cancel job -> Json.Obj [ v; ("req", Json.String "cancel"); ("job", Json.String job) ]
  | Results job -> Json.Obj [ v; ("req", Json.String "results"); ("job", Json.String job) ]
  | Stats -> Json.Obj [ v; ("req", Json.String "stats") ]
  | Shutdown -> Json.Obj [ v; ("req", Json.String "shutdown") ]

let request_of_json j =
  match int_field j "v" with
  | None -> Result.Error (Bad_request, "missing protocol version field \"v\"")
  | Some v when v <> version ->
      Result.Error
        (Version_mismatch, Printf.sprintf "protocol version %d, server speaks %d" v version)
  | Some _ -> (
      let with_job k =
        match str_field j "job" with
        | Some job -> Ok (k job)
        | None -> Result.Error (Bad_request, "missing job id field \"job\"")
      in
      match str_field j "req" with
      | Some "ping" -> Ok Ping
      | Some "submit" -> (
          match field j "spec" with
          | None -> Result.Error (Bad_request, "submit: missing \"spec\"")
          | Some sj -> (
              match spec_of_json sj with
              | Ok s -> Ok (Submit s)
              | Result.Error msg -> Result.Error (Bad_request, msg)))
      | Some "status" -> with_job (fun job -> Status job)
      | Some "watch" -> with_job (fun job -> Watch job)
      | Some "cancel" -> with_job (fun job -> Cancel job)
      | Some "results" -> with_job (fun job -> Results job)
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Result.Error (Bad_request, Printf.sprintf "unknown request %S" other)
      | None -> Result.Error (Bad_request, "missing request field \"req\""))

(* ------------------------------------------------------------------ *)
(* Responses *)

let status_fields st =
  [
    ("job", Json.String st.s_job);
    ("state", Json.String (job_state_label st.s_state));
    ("trials", Json.Int st.s_trials);
    ("completed", Json.Int st.s_completed);
    ("failed", Json.Int st.s_failed);
  ]
  @ match st.s_position with None -> [] | Some p -> [ ("position", Json.Int p) ]

let status_of_json j =
  match
    ( str_field j "job",
      Option.bind (str_field j "state") job_state_of_label,
      int_field j "trials",
      int_field j "completed",
      int_field j "failed" )
  with
  | Some s_job, Some s_state, Some s_trials, Some s_completed, Some s_failed ->
      Ok { s_job; s_state; s_trials; s_completed; s_failed; s_position = int_field j "position" }
  | _ -> Result.Error "malformed status fields"

let scalar_obj kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)

let scalar_list name j =
  match field j name with
  | Some (Json.Obj fs) ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (k, Json.Int v) :: rest -> go ((k, v) :: acc) rest
        | _ -> None
      in
      go [] fs
  | _ -> None

let response_to_json r =
  let resp kind fields = Json.Obj (("resp", Json.String kind) :: fields) in
  match r with
  | Pong { proto; server } ->
      resp "pong" [ ("proto", Json.Int proto); ("server", Json.String server) ]
  | Submitted { job; position; trials } ->
      resp "submitted"
        [ ("job", Json.String job); ("position", Json.Int position); ("trials", Json.Int trials) ]
  | Job_status st -> resp "status" (status_fields st)
  | Watching { job } -> resp "watching" [ ("job", Json.String job) ]
  | Progress p ->
      resp "progress"
        [
          ("job", Json.String p.p_job);
          ("trial", Json.Int p.p_trial);
          ("trials", Json.Int p.p_trials);
          ("seed", Json.Int p.p_seed);
          ("round", Json.Int p.p_round);
          ("informed", Json.Int p.p_informed);
          ("n", Json.Int p.p_n);
        ]
  | Trial_done { job; trial; trials; seed; rounds; ok } ->
      resp "trial_done"
        [
          ("job", Json.String job);
          ("trial", Json.Int trial);
          ("trials", Json.Int trials);
          ("seed", Json.Int seed);
          ("rounds", match rounds with Some r -> Json.Int r | None -> Json.Null);
          ("ok", Json.Bool ok);
        ]
  | Job_done st -> resp "job_done" (status_fields st)
  | Result_row { job; row } -> resp "result" [ ("job", Json.String job); ("row", row) ]
  | Results_end { job; count } ->
      resp "results_end" [ ("job", Json.String job); ("count", Json.Int count) ]
  | Server_stats { counters; gauges } ->
      resp "stats" [ ("counters", scalar_obj counters); ("gauges", scalar_obj gauges) ]
  | Cancel_ok { job; state } ->
      resp "cancelled"
        [ ("job", Json.String job); ("state", Json.String (job_state_label state)) ]
  | Bye -> resp "bye" []
  | Error { code; message } ->
      resp "error"
        [ ("code", Json.String (error_code_label code)); ("message", Json.String message) ]

let response_of_json j =
  let need name = function
    | Some v -> Ok v
    | None -> Result.Error (Printf.sprintf "response: missing or malformed %S" name)
  in
  let ( let* ) = Result.bind in
  match str_field j "resp" with
  | Some "pong" ->
      let* proto = need "proto" (int_field j "proto") in
      let* server = need "server" (str_field j "server") in
      Ok (Pong { proto; server })
  | Some "submitted" ->
      let* job = need "job" (str_field j "job") in
      let* position = need "position" (int_field j "position") in
      let* trials = need "trials" (int_field j "trials") in
      Ok (Submitted { job; position; trials })
  | Some "status" ->
      let* st = status_of_json j in
      Ok (Job_status st)
  | Some "watching" ->
      let* job = need "job" (str_field j "job") in
      Ok (Watching { job })
  | Some "progress" ->
      let* p_job = need "job" (str_field j "job") in
      let* p_trial = need "trial" (int_field j "trial") in
      let* p_trials = need "trials" (int_field j "trials") in
      let* p_seed = need "seed" (int_field j "seed") in
      let* p_round = need "round" (int_field j "round") in
      let* p_informed = need "informed" (int_field j "informed") in
      let* p_n = need "n" (int_field j "n") in
      Ok (Progress { p_job; p_trial; p_trials; p_seed; p_round; p_informed; p_n })
  | Some "trial_done" ->
      let* job = need "job" (str_field j "job") in
      let* trial = need "trial" (int_field j "trial") in
      let* trials = need "trials" (int_field j "trials") in
      let* seed = need "seed" (int_field j "seed") in
      let* ok = need "ok" (bool_field j "ok") in
      let rounds = int_field j "rounds" in
      Ok (Trial_done { job; trial; trials; seed; rounds; ok })
  | Some "job_done" ->
      let* st = status_of_json j in
      Ok (Job_done st)
  | Some "result" ->
      let* job = need "job" (str_field j "job") in
      let* row = need "row" (field j "row") in
      Ok (Result_row { job; row })
  | Some "results_end" ->
      let* job = need "job" (str_field j "job") in
      let* count = need "count" (int_field j "count") in
      Ok (Results_end { job; count })
  | Some "stats" ->
      let* counters = need "counters" (scalar_list "counters" j) in
      let* gauges = need "gauges" (scalar_list "gauges" j) in
      Ok (Server_stats { counters; gauges })
  | Some "cancelled" ->
      let* job = need "job" (str_field j "job") in
      let* state = need "state" (Option.bind (str_field j "state") job_state_of_label) in
      Ok (Cancel_ok { job; state })
  | Some "bye" -> Ok Bye
  | Some "error" ->
      let* code = need "code" (Option.bind (str_field j "code") error_code_of_label) in
      let* message = need "message" (str_field j "message") in
      Ok (Error { code; message })
  | Some other -> Result.Error (Printf.sprintf "unknown response %S" other)
  | None -> Result.Error "missing response field \"resp\""
