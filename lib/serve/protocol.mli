(** The versioned JSONL wire protocol of the gossip daemon.

    Every frame is one line of compact JSON (see {!Frame}).  Requests
    carry [{"v": 1, "req": "<verb>", ...}]; the daemon answers with
    typed response frames [{"resp": "<kind>", ...}].  One request
    yields one response — except [watch], which acknowledges and then
    streams [progress] / [trial_done] frames until a terminal
    [job_done], and [results], which streams one [result] row per
    finished trial followed by [results_end].  Malformed input never
    kills the connection: the daemon answers a typed [error] frame and
    keeps reading.

    The full schema table (one row per message type) lives in
    DESIGN.md next to the telemetry schema. *)

(** Protocol version spoken by this build; a request carrying any
    other [v] is answered with a [version_mismatch] error. *)
val version : int

(** What a client submits: the same sweep family × protocol × seeded
    trials shape as [gossip-cli sweep], one daemon job per spec. *)
type spec = {
  family : Gossip_sweep.Sweep.family;
  n : int;  (** requested node count *)
  protocol : Gossip_scale.Wheel_engine.protocol;
  trials : int;  (** independent seeded trials *)
  base_seed : int;
  max_rounds : int;
  latency : Gossip_graph.Gen.latency_spec option;
  scenario : Gossip_dyn.Scenario.t option;
      (** optional dynamic-network scenario threaded into every trial
          job; the field is omitted from the wire frame when [None],
          so the protocol stays v1-compatible with static clients *)
}

(** [jobs_of_spec spec] expands the spec into its trial jobs with the
    sweep harness's seed spread — byte-identical to what
    [gossip-cli sweep] would run for the same arguments. *)
val jobs_of_spec : spec -> Gossip_sweep.Sweep.job list

(** [validate_spec spec] rejects non-positive [n] / [trials] /
    [max_rounds] with a clear message before any engine code runs. *)
val validate_spec : spec -> (unit, string) result

type request =
  | Ping
  | Submit of spec
  | Status of string  (** job id *)
  | Watch of string
  | Cancel of string
  | Results of string
  | Stats
  | Shutdown

(** Daemon-job lifecycle.  [Failed] means the job finished with at
    least one trial failing every retry. *)
type job_state = Queued | Running | Done | Failed | Cancelled

val job_state_label : job_state -> string

val job_state_of_label : string -> job_state option

(** A point-in-time job snapshot: [position] is the 0-based queue
    position while [Queued], [None] otherwise. *)
type status = {
  s_job : string;
  s_state : job_state;
  s_trials : int;
  s_completed : int;
  s_failed : int;
  s_position : int option;
}

(** One live progress sample of a running trial, published from the
    engine's between-round observer. *)
type progress = {
  p_job : string;
  p_trial : int;  (** trial index within the spec *)
  p_trials : int;
  p_seed : int;
  p_round : int;
  p_informed : int;
  p_n : int;  (** realized node count of this trial's graph *)
}

type error_code =
  | Bad_request
  | Version_mismatch
  | Unknown_job
  | Queue_full  (** typed backpressure: the bounded queue rejected a submit *)
  | Shutting_down

val error_code_label : error_code -> string

val error_code_of_label : string -> error_code option

type response =
  | Pong of { proto : int; server : string }
  | Submitted of { job : string; position : int; trials : int }
  | Job_status of status
  | Watching of { job : string }
  | Progress of progress
  | Trial_done of {
      job : string;
      trial : int;
      trials : int;
      seed : int;
      rounds : int option;  (** [None] when capped *)
      ok : bool;
    }
  | Job_done of status  (** terminal frame of a [watch] stream *)
  | Result_row of { job : string; row : Gossip_util.Json.t }
  | Results_end of { job : string; count : int }
  | Server_stats of { counters : (string * int) list; gauges : (string * int) list }
  | Cancel_ok of { job : string; state : job_state }
  | Bye  (** acknowledges [shutdown] *)
  | Error of { code : error_code; message : string }

val spec_to_json : spec -> Gossip_util.Json.t

val spec_of_json : Gossip_util.Json.t -> (spec, string) result

val request_to_json : request -> Gossip_util.Json.t

(** [request_of_json j] decodes one request frame; the error side is
    the typed frame the daemon should answer ([Bad_request] for shape
    problems, [Version_mismatch] for a foreign [v]). *)
val request_of_json : Gossip_util.Json.t -> (request, error_code * string) result

val response_to_json : response -> Gossip_util.Json.t

val response_of_json : Gossip_util.Json.t -> (response, string) result
