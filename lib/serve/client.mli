(** Blocking client for the daemon's wire protocol.

    One connection, one in-flight exchange at a time: {!rpc} for the
    one-request-one-response verbs, {!stream} for [watch] / [results],
    which keep yielding frames until the caller stops.  The socket is
    read through the same {!Frame} reader the daemon uses, so partial
    reads and coalesced frames are invisible here too. *)

type t

exception Closed
(** The daemon hung up mid-exchange. *)

(** [connect path] opens the daemon's Unix-domain socket.
    @raise Unix.Unix_error when nothing listens there. *)
val connect : string -> t

val close : t -> unit

(** [send t req] writes one request frame. *)
val send : t -> Protocol.request -> unit

(** [recv t] blocks for the next response frame.
    @raise Closed on EOF.
    @raise Failure on an undecodable frame (a foreign server). *)
val recv : t -> Protocol.response

(** [rpc t req] is [send] then [recv]. *)
val rpc : t -> Protocol.request -> Protocol.response

(** [stream t req f] sends [req] and hands every response frame to
    [f] until it returns [`Stop]. *)
val stream : t -> Protocol.request -> (Protocol.response -> [ `Continue | `Stop ]) -> unit

(** [with_connect path f] runs [f] over a fresh connection and closes
    it even if [f] raises. *)
val with_connect : string -> (t -> 'a) -> 'a
