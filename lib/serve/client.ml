module Json = Gossip_util.Json

type t = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  mutable inbox : string list;  (* decoded lines not yet consumed *)
  mutable eof : bool;
}

exception Closed

let connect path =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Frame.reader (); inbox = []; eof = false }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  let s = Frame.frame (Protocol.request_to_json req) in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring t.fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> raise Closed
  in
  go 0

let rec next_line t =
  match t.inbox with
  | line :: rest ->
      t.inbox <- rest;
      line
  | [] ->
      if t.eof then raise Closed;
      let buf = Bytes.create 4096 in
      (match Unix.read t.fd buf 0 4096 with
      | 0 -> t.eof <- true
      | n -> t.inbox <- Frame.feed t.reader buf ~off:0 ~len:n
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (ECONNRESET, _, _) -> t.eof <- true);
      next_line t

let recv t =
  let line = next_line t in
  match Json.of_string line with
  | Error msg -> failwith (Printf.sprintf "unparseable frame from server: %s" msg)
  | Ok j -> (
      match Protocol.response_of_json j with
      | Ok resp -> resp
      | Error msg -> failwith (Printf.sprintf "foreign frame from server: %s" msg))

let rpc t req =
  send t req;
  recv t

let stream t req f =
  send t req;
  let rec go () = match f (recv t) with `Continue -> go () | `Stop -> () in
  go ()

let with_connect path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
