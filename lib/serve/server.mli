(** The gossip daemon: a Unix-domain-socket server for the JSONL wire
    protocol.

    Two threads share the process.  The {e socket loop} (the calling
    thread) multiplexes every client connection plus the listening
    socket through [select] with a short tick, decodes request frames
    through {!Frame}, and answers from the shared {!Jobq}.  The
    {e worker thread} claims queued jobs one at a time and runs their
    trials through [Sweep.run_job] — per-trial retries, cooperative
    wall-clock budget, and a between-round observer that publishes
    progress into a {!Gossip_obs.Live} mailbox.  The mailbox is the
    only channel between the two: the socket loop drains it each tick
    and fans events out to [watch] subscribers, journals finished
    trials, and bumps the [serve.*] telemetry — so the registry and
    the journal sink are touched by one thread only.

    {2 Durability}

    With a [journal], every accepted job is persisted as a
    [serve_submit] event (the full spec, latency included), every
    finished trial as a PR-3 [ckpt_job] / [ckpt_fail] checkpoint
    record tagged with its job id, and every terminal job as a
    [serve_close] event.  On start the journal is sealed
    ({!Gossip_sweep.Sweep.seal_checkpoint}) and replayed: terminal
    jobs are dropped (their ids stay retired), incomplete jobs are
    re-enqueued with their finished trials pre-marked — so a daemon
    killed with [SIGKILL] mid-job re-runs only the trials that never
    checkpointed.

    {2 Shutdown}

    [SIGINT] / [SIGTERM] (or a [shutdown] request) flips one atomic
    flag.  The daemon then stops accepting connections and submits,
    the worker aborts its in-flight trial at the next round boundary
    (completed trials are already journaled) and re-queues the job,
    pending frames are flushed, the journal is closed and the socket
    unlinked, and {!run} returns — the CLI exits 0. *)

type config = {
  socket_path : string;
  journal : string option;  (** JSONL job journal; replayed at start *)
  telemetry : string option;
      (** write a [serve.*] registry snapshot here on shutdown, in the
          format [gossip-cli report] reads *)
  capacity : int;  (** bound on incomplete jobs (queued + running) *)
  max_line : int;  (** per-frame byte bound handed to {!Frame.reader} *)
  tick_s : float;  (** select timeout: progress fan-out latency *)
  retries : int;  (** extra attempts per failing trial *)
  timeout_s : float option;  (** cooperative per-trial wall-clock budget *)
  server_name : string;  (** reported in [pong] frames *)
  install_signals : bool;
      (** install SIGINT/SIGTERM handlers (and ignore SIGPIPE); off
          for in-process test servers *)
  on_listening : (unit -> unit) option;
      (** test hook: called once the socket accepts connections *)
  before_job : (string -> unit) option;
      (** test hook: called by the worker with the job id before
          running it — blocking here keeps the job [Running], which is
          how the backpressure tests hold the queue full
          deterministically *)
}

val default : socket_path:string -> config

(** [run config] serves until a shutdown request or signal, then
    drains and returns.  The socket path is created fresh (a stale
    file from a dead daemon is unlinked) and removed on exit.
    @raise Invalid_argument on a non-positive [capacity], [retries]
    (negative), [tick_s] or [timeout_s]. *)
val run : config -> unit
