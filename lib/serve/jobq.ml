module Json = Gossip_util.Json
module Sweep = Gossip_sweep.Sweep

type entry = {
  e_id : string;
  e_spec : Protocol.spec;
  e_jobs : Sweep.job array;
  e_ok : bool array;  (* trial finished successfully *)
  e_done : bool array;  (* trial finished (either way) *)
  e_rows : Json.t option array;
  mutable e_state : Protocol.job_state;
  mutable e_cancel : bool;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  cap : int;
  entries : (string, entry) Hashtbl.t;
  queue : string Queue.t;
  mutable seq : int;
  mutable released : bool;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Jobq.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    cap = capacity;
    entries = Hashtbl.create 16;
    queue = Queue.create ();
    seq = 0;
    released = false;
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incomplete_count t =
  Hashtbl.fold
    (fun _ e acc ->
      match e.e_state with Protocol.Queued | Protocol.Running -> acc + 1 | _ -> acc)
    t.entries 0

let depth t = locked t (fun () -> incomplete_count t)

type submitted = { id : string; position : int; trials : int }

(* A restored id like "job-17" must advance the generator so fresh ids
   never collide with journal-replayed ones. *)
let absorb_id t id =
  match String.index_opt id '-' with
  | Some i -> (
      match int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1)) with
      | Some n when n > t.seq -> t.seq <- n
      | _ -> ())
  | None -> ()

let absorb t id = locked t (fun () -> absorb_id t id)

let submit t ?id spec =
  locked t (fun () ->
      if incomplete_count t >= t.cap then Error `Full
      else begin
        let id =
          match id with
          | Some id ->
              absorb_id t id;
              id
          | None ->
              t.seq <- t.seq + 1;
              Printf.sprintf "job-%d" t.seq
        in
        let jobs = Array.of_list (Protocol.jobs_of_spec spec) in
        let trials = Array.length jobs in
        let entry =
          {
            e_id = id;
            e_spec = spec;
            e_jobs = jobs;
            e_ok = Array.make trials false;
            e_done = Array.make trials false;
            e_rows = Array.make trials None;
            e_state = Protocol.Queued;
            e_cancel = false;
          }
        in
        Hashtbl.replace t.entries id entry;
        let position = Queue.length t.queue in
        Queue.push id t.queue;
        Condition.signal t.nonempty;
        Ok { id; position; trials }
      end)

let find t id = Hashtbl.find_opt t.entries id

let mark_trial t ~id ~trial ~ok ?row () =
  locked t (fun () ->
      match find t id with
      | Some e when trial >= 0 && trial < Array.length e.e_done ->
          e.e_done.(trial) <- true;
          e.e_ok.(trial) <- ok;
          e.e_rows.(trial) <- row
      | _ -> ())

let trial_done t ~id ~trial =
  locked t (fun () ->
      match find t id with
      | Some e when trial >= 0 && trial < Array.length e.e_done -> e.e_done.(trial)
      | _ -> false)

let rec pop_queued t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some id -> (
      match find t id with
      (* cancelled-while-queued entries were removed from the table's
         live view only logically — their state flipped; skip them *)
      | Some e when e.e_state = Protocol.Queued -> Some e
      | _ -> pop_queued t)

let next t =
  locked t (fun () ->
      let rec wait () =
        match pop_queued t with
        | Some e ->
            e.e_state <- Protocol.Running;
            Some e.e_id
        | None ->
            if t.released then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let release t =
  locked t (fun () ->
      t.released <- true;
      Condition.broadcast t.nonempty)

let work t id =
  locked t (fun () ->
      match find t id with Some e -> Some (e.e_spec, e.e_jobs) | None -> None)

let count_done e pred =
  let c = ref 0 in
  Array.iteri (fun i d -> if d && pred e.e_ok.(i) then incr c) e.e_done;
  !c

let finish t id =
  locked t (fun () ->
      match find t id with
      | None -> None
      | Some e ->
          let failed = count_done e not in
          let state =
            if e.e_cancel then Protocol.Cancelled
            else if failed > 0 then Protocol.Failed
            else Protocol.Done
          in
          e.e_state <- state;
          Some state)

let requeue t id =
  locked t (fun () ->
      match find t id with
      | Some e when e.e_state = Protocol.Running ->
          e.e_state <- Protocol.Queued;
          (* head of the queue: a restarted daemon runs it first *)
          let rest = Queue.copy t.queue in
          Queue.clear t.queue;
          Queue.push id t.queue;
          Queue.transfer rest t.queue;
          Condition.signal t.nonempty
      | _ -> ())

let cancel t id =
  locked t (fun () ->
      match find t id with
      | None -> None
      | Some e -> (
          match e.e_state with
          | Protocol.Queued ->
              e.e_state <- Protocol.Cancelled;
              Some Protocol.Cancelled
          | Protocol.Running ->
              e.e_cancel <- true;
              Some Protocol.Running
          | terminal -> Some terminal))

let cancel_requested t id =
  locked t (fun () -> match find t id with Some e -> e.e_cancel | None -> false)

let queue_position t id =
  let pos = ref None and i = ref 0 in
  Queue.iter
    (fun qid ->
      (match find t qid with
      | Some e when e.e_state = Protocol.Queued ->
          if qid = id then pos := Some !i;
          incr i
      | _ -> ()))
    t.queue;
  !pos

let status_of t e =
  {
    Protocol.s_job = e.e_id;
    s_state = e.e_state;
    s_trials = Array.length e.e_jobs;
    s_completed = count_done e Fun.id;
    s_failed = count_done e not;
    s_position = (if e.e_state = Protocol.Queued then queue_position t e.e_id else None);
  }

let status t id =
  locked t (fun () -> match find t id with Some e -> Some (status_of t e) | None -> None)

let rows t id =
  locked t (fun () ->
      match find t id with
      | None -> []
      | Some e -> Array.to_list e.e_rows |> List.filter_map Fun.id)

let incomplete t =
  locked t (fun () ->
      let queued = ref [] in
      Queue.iter
        (fun qid ->
          match find t qid with
          | Some e when e.e_state = Protocol.Queued -> queued := qid :: !queued
          | _ -> ())
        t.queue;
      let running =
        Hashtbl.fold
          (fun id e acc -> if e.e_state = Protocol.Running then id :: acc else acc)
          t.entries []
      in
      List.rev !queued @ running)
