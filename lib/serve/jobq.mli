(** The daemon's bounded job queue.

    One entry per accepted [submit]: the spec, its expanded trial
    jobs, per-trial completion state, and the result rows collected so
    far.  The table is shared between the accept loop (submits,
    status, cancel, results) and the worker thread (claims jobs, runs
    trials), so every operation takes the internal lock.

    Backpressure is explicit: {!submit} rejects once the number of
    {e incomplete} entries (queued + running) reaches [capacity] —
    finished jobs stay readable without counting against the bound. *)

type t

(** [create ?capacity ()] builds an empty queue.  [capacity] (default
    64) bounds the incomplete entries.
    @raise Invalid_argument if [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Incomplete entries right now: queued + running. *)
val depth : t -> int

type submitted = { id : string; position : int; trials : int }

(** [submit t ?id spec] appends a job, generating a fresh id
    ([job-1], [job-2], …) unless [id] restores one from a journal;
    [Error `Full] is the typed backpressure signal.  A restored
    numeric id advances the generator past it so later fresh ids never
    collide. *)
val submit : t -> ?id:string -> Protocol.spec -> (submitted, [ `Full ]) result

(** [absorb t id] advances the id generator past a numeric id seen in
    a journal {e without} creating an entry — terminal jobs are not
    resurrected at restart, but their ids must never be reissued. *)
val absorb : t -> string -> unit

(** [mark_trial t ~id ~trial ~ok ?row ()] records one finished trial
    — [row] is the result row streamed back for [results] (present
    exactly when [ok]).  Used by the worker as trials finish and by
    journal replay at restart.  Unknown ids and out-of-range trial
    indices are ignored (a journal may outlive its jobs). *)
val mark_trial : t -> id:string -> trial:int -> ok:bool -> ?row:Gossip_util.Json.t -> unit -> unit

(** [trial_done t ~id ~trial] — already recorded (replayed from the
    journal), so the worker skips re-running it. *)
val trial_done : t -> id:string -> trial:int -> bool

(** [next t] blocks until a queued entry exists — claims the oldest,
    marks it [Running], and returns its id — or {!release} is called
    with nothing queued ([None]: time to exit). *)
val next : t -> string option

(** [release t] makes {!next} stop blocking: pending calls (and all
    future ones finding the queue empty) return [None]. *)
val release : t -> unit

(** The claimed work: the spec and its trial jobs, in trial order. *)
val work : t -> string -> (Protocol.spec * Gossip_sweep.Sweep.job array) option

(** [finish t id] moves a running entry to its terminal state —
    [Cancelled] if cancellation was requested, [Failed] if any trial
    failed, [Done] otherwise — and returns it. *)
val finish : t -> string -> Protocol.job_state option

(** [requeue t id] puts a running entry back at the {e head} of the
    queue (graceful shutdown: the claimed job isn't terminal, a
    restarted daemon must run it first). *)
val requeue : t -> string -> unit

(** [cancel t id] requests cancellation: a queued entry is removed
    and becomes [Cancelled] immediately; a running entry is flagged —
    the worker observes {!cancel_requested} between rounds and aborts.
    Returns the state after the call ([None]: unknown id). *)
val cancel : t -> string -> Protocol.job_state option

val cancel_requested : t -> string -> bool

(** Point-in-time snapshot; [s_position] is the 0-based queue position
    while queued. *)
val status : t -> string -> Protocol.status option

(** Result rows recorded so far, in trial order (failed trials carry
    no row). *)
val rows : t -> string -> Gossip_util.Json.t list

(** Ids of every incomplete entry, queued first (queue order) then the
    running one — what a graceful shutdown leaves for the journal to
    resurrect. *)
val incomplete : t -> string list
