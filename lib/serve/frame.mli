(** Line framing for the JSONL wire protocol.

    A socket read hands back an arbitrary byte window: it may end in
    the middle of a frame (a partial read), contain several frames, or
    both.  The reader accumulates bytes across feeds and yields only
    {e complete} lines — everything up to a ['\n'] — so a torn final
    line simply waits in the buffer for the rest of its bytes.  A
    trailing ['\r'] is stripped (telnet-style clients) and blank lines
    are skipped, so keep-alive newlines are free.

    A line that grows past [max_line] without a terminator is
    discarded wholesale (the reader skips to the next ['\n'] and
    counts the loss in {!oversized}) — one hostile or broken client
    cannot balloon the daemon's memory. *)

type reader

(** [reader ?max_line ()] builds an empty reader.  [max_line]
    (default [1 lsl 20] bytes) bounds a single frame.
    @raise Invalid_argument if [max_line < 1]. *)
val reader : ?max_line:int -> unit -> reader

(** [feed r bytes ~off ~len] appends a read window and returns the
    complete lines it unlocked, oldest first (without terminators,
    blank lines skipped). *)
val feed : reader -> Bytes.t -> off:int -> len:int -> string list

(** [feed_string r s] is {!feed} over a whole string. *)
val feed_string : reader -> string -> string list

(** [pending r] is the byte count of the partial line still waiting
    for its terminator. *)
val pending : reader -> int

(** [oversized r] counts frames discarded for exceeding [max_line]. *)
val oversized : reader -> int

(** [frame j] renders one wire frame: compact JSON plus ['\n']. *)
val frame : Gossip_util.Json.t -> string
