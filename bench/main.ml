(* Experiment harness: regenerates every quantitative claim of
   "Gossiping with Latencies" (see DESIGN.md section 5 for the index).

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- e1 e9     # selected experiments
     dune exec bench/main.exe -- --list    # list experiment ids *)

let experiments =
  [
    ("e1", "Theorem 6: Omega(Delta) degree lower bound", Exp_lower_bounds.e1);
    ("e2", "Theorem 7: Omega(1/phi + ell) conductance lower bound", Exp_lower_bounds.e2);
    ("e3", "Theorem 8: min(Delta + D, ell/phi) trade-off", Exp_lower_bounds.e3);
    ("e4", "Theorem 12: push-pull upper bound", Exp_upper_bounds.e4);
    ("e5", "Lemma 13 / Theorem 14: spanner quality", Exp_upper_bounds.e5);
    ("e6", "Lemma 15 / Corollary 16: RR broadcast", Exp_upper_bounds.e6);
    ("e7", "Theorems 14 & 19: EID / General EID", Exp_upper_bounds.e7);
    ("e8", "Lemmas 24-25: Path Discovery / T(k)", Exp_upper_bounds.e8);
    ("e9", "Lemmas 4-5: guessing game complexity", Exp_lower_bounds.e9);
    ("e10", "Theorem 20: unified dissemination", Exp_upper_bounds.e10);
    ("e11", "Footnote 2: push-only star Omega(nD)", Exp_upper_bounds.e11);
    ("e12", "Scale runtime: timing wheel vs reference engine", Exp_scale.e12);
    ("e13", "Telemetry overhead: instrumented vs bare wheel engine", Exp_scale.e13);
    ("e14", "Parallel wheel: domain-sharded vs sequential engine", Exp_scale.e14);
    ("e15", "Theorem 14 at scale: RR-on-spanner vs push-pull", Exp_scale.e15);
    ("e16", "Dynamic networks: broadcast under live latency drift", Exp_scale.e16);
    ("e17", "Theorem 20 at scale: unified unknown-latency vs push-pull", Exp_scale.e17);
    ("e18", "The scale ceiling: int32/SoA layout at n = 10^7", Exp_scale.e18);
    ("e19", "k-rumor / all-to-all: completion scaling in k and B", Exp_scale.e19);
    ("fig", "Figures 1-2: gadget structure", Exp_lower_bounds.figures);
    ("a1", "Ablation: robustness under faults (Section 7)", Ablations.robustness);
    ("a2", "Ablation: bounded in-degree (Daum et al.)", Ablations.indegree);
    ("a3", "Ablation: footnote 3 edge subdivision", Ablations.subdivision);
    ("a4", "Ablation: Baswana-Sen vs greedy spanner", Ablations.spanner_comparison);
    ("a5", "Ablation: DTG linking rule", Ablations.dtg_linking);
    ("a6", "Related work: social-network rumor spreading", Ablations.social);
    ("a7", "Ablation: message sizes (Section 6)", Ablations.message_sizes);
    ("a8", "Ablation: n-hat sensitivity (Lemma 13)", Ablations.n_hat_sensitivity);
    ("a9", "Methodology: sweep vs exact conductance", Ablations.sweep_quality);
  ]

let list_experiments () =
  print_endline "available experiments:";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-5s %s\n" id desc) experiments;
  print_endline "  micro  Bechamel kernel micro-benchmarks"

let run_one id =
  match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
  | Some (_, _, f) -> f ()
  | None ->
      if id = "micro" then Micro.run ()
      else begin
        Printf.eprintf "unknown experiment %S\n" id;
        list_experiments ();
        exit 2
      end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] | [ "--all" ] ->
      print_endline "Gossiping with Latencies - experiment harness";
      print_endline "(one experiment per quantitative claim; see DESIGN.md / EXPERIMENTS.md)";
      List.iter (fun (_, _, f) -> f ()) experiments;
      Micro.run ()
  | [ "--list" ] -> list_experiments ()
  | ids -> List.iter run_one ids
