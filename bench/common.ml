(* Shared helpers for the experiment harness. *)

module Rng = Gossip_util.Rng
module Stats = Gossip_util.Stats
module Table = Gossip_util.Table

let section title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

(* Run [f seed] for [trials] seeds and return the sample of float
   results. *)
let sample ~trials ~base_seed f =
  Array.init trials (fun i -> f (base_seed + (i * 7919)))

let mean_of ~trials ~base_seed f = Stats.mean (sample ~trials ~base_seed f)

let fmt_f ?(d = 1) x = Table.cell_float ~decimals:d x

let fmt_i = Table.cell_int

(* Render a log-log fit verdict line: measured growth exponent vs the
   claimed one. *)
let report_exponent ~label ~claimed xs ys =
  let fit = Stats.loglog_fit xs ys in
  Printf.printf "%s: measured growth exponent %.2f (claimed %s, r2 = %.3f)\n" label
    fit.Stats.slope claimed fit.Stats.r2;
  fit.Stats.slope

let rounds_exn = function
  | Some r -> r
  | None -> failwith "experiment run hit its round cap; enlarge max_rounds"

(* Write one BENCH_<exp>.json file of ["bench"] events (JSON-lines via
   the telemetry sink) so CI can archive machine-readable results next
   to the human-readable tables. *)
let bench_rows ~exp rows =
  let module Json = Gossip_util.Json in
  let path = Printf.sprintf "BENCH_%s.json" exp in
  Gossip_obs.Sink.with_jsonl path (fun sink ->
      List.iter
        (fun fields ->
          Gossip_obs.Sink.event sink
            (("ev", Json.String "bench") :: ("exp", Json.String exp) :: fields))
        rows);
  Printf.printf "bench rows written to %s\n" path
