(* E12 — the flat-array scale runtime (lib/scale) vs the reference
   engine (lib/sim).

   Part 1: rounds/sec of a full push-pull broadcast on the same graph
   with the same seed.  The two runtimes are trajectory-identical
   (test_scale locks this with a 120-case qcheck property), so the
   comparison is rounds-for-rounds fair and we assert the round counts
   agree here too.

   Part 2: Theorem 12 sanity on large ring-of-cliques graphs that only
   the wheel engine can sweep comfortably: measured completion rounds
   stay within a small constant of (ell_star / phi_star) ln n. *)

open Common
module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Weighted = Gossip_conductance.Weighted
module Push_pull = Gossip_core.Push_pull
module Csr = Gossip_scale.Csr
module Wheel = Gossip_scale.Wheel_engine

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let e12 () =
  section "E12  scale runtime: timing wheel vs reference engine"
    "Full push-pull broadcast on Barabasi-Albert graphs (attach 3, uniform\n\
     1-8 latencies), identical seeds: the wheel engine must reproduce the\n\
     reference round count and deliver >= 5x the rounds/sec at n = 10^5.";
  let t =
    Table.create ~title:"E12a: rounds/sec, reference engine vs timing wheel"
      ~columns:
        [
          ("n", Table.Right);
          ("edges", Table.Right);
          ("rounds", Table.Right);
          ("engine s", Table.Right);
          ("wheel s", Table.Right);
          ("engine r/s", Table.Right);
          ("wheel r/s", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let speedup_at = ref [] in
  let rows = ref [] in
  List.iter
    (fun n ->
      let seed = 1009 in
      let csr =
        Csr.with_latencies (Rng.of_int (seed + 7)) (Gossip_graph.Gen.Uniform (1, 8))
          (Csr.barabasi_albert (Rng.of_int seed) ~n ~attach:3)
      in
      let g = Csr.to_graph csr in
      let run_engine () =
        Push_pull.broadcast (Rng.of_int (seed + 17)) g ~source:0 ~max_rounds:10_000
      in
      let run_wheel () =
        Wheel.broadcast (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull ~source:0
          ~max_rounds:10_000
      in
      let er, engine_s = time run_engine in
      let wr, wheel_s = time run_wheel in
      let rounds = rounds_exn er.Push_pull.rounds in
      if Some rounds <> wr.Wheel.rounds then
        failwith "E12: wheel engine diverged from the reference engine";
      let per t = float_of_int rounds /. t in
      let speedup = engine_s /. wheel_s in
      speedup_at := (n, speedup) :: !speedup_at;
      (let module Json = Gossip_util.Json in
       rows :=
         [
           ("n", Json.Int n);
           ("edges", Json.Int (Csr.m csr));
           ("rounds", Json.Int rounds);
           ("engine_s", Json.Float engine_s);
           ("wheel_s", Json.Float wheel_s);
           ("engine_rps", Json.Float (per engine_s));
           ("wheel_rps", Json.Float (per wheel_s));
           ("speedup", Json.Float speedup);
         ]
         :: !rows);
      Table.add_row t
        [
          fmt_i n;
          fmt_i (Csr.m csr);
          fmt_i rounds;
          fmt_f ~d:3 engine_s;
          fmt_f ~d:3 wheel_s;
          fmt_f ~d:0 (per engine_s);
          fmt_f ~d:0 (per wheel_s);
          fmt_f ~d:1 speedup;
        ])
    [ 10_000; 100_000 ];
  Table.print t;
  bench_rows ~exp:"e12" (List.rev !rows);
  (match List.assoc_opt 100_000 !speedup_at with
  | Some s -> Printf.printf "speedup at n = 100000: %.1fx (target >= 5x: %b)\n" s (s >= 5.0)
  | None -> ());
  let t2 =
    Table.create
      ~title:"E12b: Theorem 12 on wheel-engine-scale ring-of-cliques"
      ~columns:
        [
          ("n", Table.Right);
          ("ell*", Table.Right);
          ("phi*", Table.Right);
          ("bound", Table.Right);
          ("measured", Table.Right);
          ("ratio", Table.Right);
        ]
  in
  List.iter
    (fun cliques ->
      let csr = Csr.ring_of_cliques ~cliques ~size:8 ~bridge_latency:6 in
      let g = Csr.to_graph csr in
      let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
      let bound =
        float_of_int wc.Weighted.ell_star /. wc.Weighted.phi_star
        *. log (float_of_int (Csr.n csr))
      in
      let measured =
        mean_of ~trials:3 ~base_seed:31 (fun seed ->
            let r =
              Wheel.broadcast (Rng.of_int seed) csr ~protocol:Wheel.Push_pull ~source:0
                ~max_rounds:5_000_000
            in
            float_of_int (rounds_exn r.Wheel.rounds))
      in
      Table.add_row t2
        [
          fmt_i (Csr.n csr);
          fmt_i wc.Weighted.ell_star;
          fmt_f ~d:4 wc.Weighted.phi_star;
          fmt_f bound;
          fmt_f measured;
          fmt_f ~d:2 (measured /. bound);
        ])
    [ 60; 240; 960 ];
  Table.print t2

(* E13 — cost of the telemetry subsystem on the wheel engine's hot
   loop.  Same workload as E12's wheel run (Barabasi-Albert, attach 3,
   uniform 1-8 latencies, n = 10^5, seed 1009), telemetry detached vs
   attached (registry + 65536-slot ring sampling 1/16).  Handles are
   resolved at create, so the detached run must match the bare e12
   throughput to measurement noise and the attached run must stay
   within 15%. *)
let e13 () =
  let module Obs = Gossip_obs in
  section "E13  telemetry overhead: instrumented vs bare wheel engine"
    "Push-pull broadcast on a Barabasi-Albert graph (attach 3, uniform 1-8\n\
     latencies, n = 10^5), wheel engine with telemetry detached vs attached\n\
     (registry + ring, 1/16 sampling).  Detached must sit within 3% of the\n\
     best bare run; attached within 15%.";
  let n = 100_000 in
  let seed = 1009 in
  let csr =
    Csr.with_latencies (Rng.of_int (seed + 7)) (Gossip_graph.Gen.Uniform (1, 8))
      (Csr.barabasi_albert (Rng.of_int seed) ~n ~attach:3)
  in
  let run ?telemetry () =
    Wheel.broadcast ?telemetry (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull
      ~source:0 ~max_rounds:10_000
  in
  (* warm up allocator and page cache before timing anything *)
  ignore (run ());
  let trials = 3 in
  let best f =
    let rounds = ref 0 in
    let best_s = ref infinity in
    for _ = 1 to trials do
      let r, s = time f in
      rounds := rounds_exn r.Wheel.rounds;
      if s < !best_s then best_s := s
    done;
    (!rounds, !best_s)
  in
  let off_rounds, off_s = best (fun () -> run ()) in
  let bare_rounds, bare_s = best (fun () -> run ()) in
  let on_registry = ref None in
  let on_rounds, on_s =
    best (fun () ->
        let ring = Obs.Ring.create ~sample:16 ~capacity:65536 () in
        let reg = Obs.Registry.create ~ring () in
        on_registry := Some reg;
        run ~telemetry:reg ())
  in
  if off_rounds <> on_rounds || off_rounds <> bare_rounds then
    failwith "E13: telemetry changed the trajectory";
  let rps s = float_of_int off_rounds /. s in
  let t =
    Table.create ~title:"E13: wheel-engine throughput with telemetry off/on"
      ~columns:
        [
          ("config", Table.Left);
          ("rounds", Table.Right);
          ("best s", Table.Right);
          ("rounds/s", Table.Right);
          ("vs bare", Table.Right);
        ]
  in
  let rel s = (rps s -. rps bare_s) /. rps bare_s *. 100.0 in
  List.iter
    (fun (label, s) ->
      Table.add_row t
        [ label; fmt_i off_rounds; fmt_f ~d:3 s; fmt_f ~d:0 (rps s); fmt_f ~d:1 (rel s) ])
    [ ("bare", bare_s); ("telemetry off", off_s); ("telemetry on", on_s) ];
  Table.print t;
  let off_overhead = 1.0 -. (rps off_s /. rps bare_s) in
  let on_overhead = 1.0 -. (rps on_s /. rps bare_s) in
  Printf.printf "telemetry-off overhead: %.1f%% (within 3%%: %b)\n" (off_overhead *. 100.0)
    (off_overhead <= 0.03);
  Printf.printf "telemetry-on overhead: %.1f%% (within 15%%: %b)\n" (on_overhead *. 100.0)
    (on_overhead <= 0.15);
  (match !on_registry with
  | Some reg ->
      let h = Obs.Registry.histogram reg "wheel.round.deliveries" in
      Printf.printf
        "attached registry saw %d rounds, %d deliveries (p95 deliveries/round ~ %.0f)\n"
        (Obs.Registry.hist_count h) (Obs.Registry.hist_sum h)
        (Obs.Registry.hist_percentile h 95.0);
      (match Obs.Registry.ring reg with
      | Some ring ->
          Printf.printf "ring kept %d of %d trace events (1/16 sampling)\n"
            (Obs.Ring.kept ring) (Obs.Ring.seen ring)
      | None -> ())
  | None -> ());
  let module Json = Gossip_util.Json in
  bench_rows ~exp:"e13"
    [
      [
        ("n", Json.Int n);
        ("rounds", Json.Int off_rounds);
        ("bare_s", Json.Float bare_s);
        ("off_s", Json.Float off_s);
        ("on_s", Json.Float on_s);
        ("off_overhead", Json.Float off_overhead);
        ("on_overhead", Json.Float on_overhead);
      ];
    ]

(* E14 — the domain-sharded wheel engine vs the sequential one.  Same
   workload family as E12 (Barabasi-Albert, attach 3, uniform 1-8
   latencies), one full push-pull broadcast per configuration.  The
   two paths are bit-identical by construction (test_scale locks this
   under qcheck for domains 1-4), so besides timing we hard-assert
   parity of rounds, trajectory, metrics, and the final informed set —
   a divergence fails the bench, which is what CI's e14 smoke step
   relies on.  Speedup is hardware-dependent (it needs the cores); the
   recorded rows carry the core count so results are interpretable.

   Env knobs for CI-sized runs: E14_N (comma-separated node counts,
   default "100000,1000000") and E14_DOMAINS (default 4). *)
let e14 () =
  let domains =
    match Sys.getenv_opt "E14_DOMAINS" with Some s -> int_of_string s | None -> 4
  in
  let sizes =
    match Sys.getenv_opt "E14_N" with
    | Some s -> String.split_on_char ',' s |> List.map String.trim |> List.map int_of_string
    | None -> [ 100_000; 1_000_000 ]
  in
  let cores = Domain.recommended_domain_count () in
  section "E14  parallel wheel: domain-sharded vs sequential engine"
    (Printf.sprintf
       "Full push-pull broadcast on Barabasi-Albert graphs (attach 3, uniform\n\
        1-8 latencies), sequential wheel vs the same run sharded across %d\n\
        domains (%d cores available).  Trajectory, metrics, and informed set\n\
        must be bit-identical; speedup is recorded in BENCH_e14.json." domains cores)
  ;
  let t =
    Table.create ~title:"E14: rounds/sec, sequential vs sharded wheel"
      ~columns:
        [
          ("n", Table.Right);
          ("edges", Table.Right);
          ("rounds", Table.Right);
          ("seq s", Table.Right);
          ("shard s", Table.Right);
          ("seq r/s", Table.Right);
          ("shard r/s", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let rows = ref [] in
  let speedup_at = ref [] in
  List.iter
    (fun n ->
      let seed = 1009 in
      let csr =
        Csr.with_latencies (Rng.of_int (seed + 7)) (Gossip_graph.Gen.Uniform (1, 8))
          (Csr.barabasi_albert (Rng.of_int seed) ~n ~attach:3)
      in
      let run d =
        Wheel.broadcast ~domains:d (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull
          ~source:0 ~max_rounds:10_000
      in
      if n <= 100_000 then ignore (run 1);
      let sr, seq_s = time (fun () -> run 1) in
      let pr, shard_s = time (fun () -> run domains) in
      if
        not
          (sr.Wheel.rounds = pr.Wheel.rounds
          && sr.Wheel.history = pr.Wheel.history
          && sr.Wheel.metrics = pr.Wheel.metrics
          && Bytes.equal sr.Wheel.informed pr.Wheel.informed)
      then failwith "E14: sharded engine diverged from the sequential wheel";
      let rounds = rounds_exn sr.Wheel.rounds in
      let per s = float_of_int rounds /. s in
      let speedup = seq_s /. shard_s in
      speedup_at := (n, speedup) :: !speedup_at;
      (let module Json = Gossip_util.Json in
       rows :=
         [
           ("n", Json.Int n);
           ("edges", Json.Int (Csr.m csr));
           ("domains", Json.Int domains);
           ("cores", Json.Int cores);
           ("rounds", Json.Int rounds);
           ("seq_s", Json.Float seq_s);
           ("shard_s", Json.Float shard_s);
           ("seq_rps", Json.Float (per seq_s));
           ("shard_rps", Json.Float (per shard_s));
           ("speedup", Json.Float speedup);
           ("parity", Json.Bool true);
         ]
         :: !rows);
      Table.add_row t
        [
          fmt_i n;
          fmt_i (Csr.m csr);
          fmt_i rounds;
          fmt_f ~d:3 seq_s;
          fmt_f ~d:3 shard_s;
          fmt_f ~d:0 (per seq_s);
          fmt_f ~d:0 (per shard_s);
          fmt_f ~d:2 speedup;
        ])
    sizes;
  Table.print t;
  bench_rows ~exp:"e14" (List.rev !rows);
  Printf.printf "parity: sharded == sequential on every configuration\n";
  match !speedup_at with
  | (n, s) :: _ ->
      Printf.printf "speedup at n = %d with %d domains on %d cores: %.2fx (target >= 2x: %b)\n"
        n domains cores s (s >= 2.0)
  | [] -> ()

(* E15 — Theorem 14's route at scale: RR Broadcast over a Baswana-Sen
   orientation vs randomized push-pull, both on the wheel engine, on
   the low-conductance ring-of-cliques family (size-16 cliques,
   latency-8 bridges).  Push-pull pays the conductance price at every
   bridge crossing; the spanner keeps the bridges but thins each
   clique to O(log n) out-edges, so the deterministic round-robin
   cursor reaches a bridge every few rounds instead of hitting it by
   luck.  Round counts are honest: a protocol that exhausts the cap
   records "capped", never a fabricated number.  The spanner build is
   timed and reported separately from the broadcast so the wall-clock
   comparison does not hide preprocessing.

   Sizing: on a ring of cliques the round count grows with the ring
   diameter (~ n / clique size), so wall-clock is Theta(n * rounds) ~
   n^2 — the defaults are sized for a single-core container (~30 s
   total).  E15_N picks other node counts (comma-separated, rounded
   down to clique multiples; E15_N=100000,1000000 is the full-scale
   run for a beefy host) and E15_DOMAINS shards both broadcasts across
   OCaml domains, which is trajectory-identical (bench e14) and so
   changes only the wall-clock column. *)
let e15 () =
  let module Kernel = Gossip_scale.Kernel in
  let module Spanner = Gossip_core.Spanner in
  let sizes =
    match Sys.getenv_opt "E15_N" with
    | Some s -> String.split_on_char ',' s |> List.map String.trim |> List.map int_of_string
    | None -> [ 10_000; 20_000 ]
  in
  let domains =
    match Sys.getenv_opt "E15_DOMAINS" with Some s -> int_of_string s | None -> 1
  in
  let clique = 16 and bridge = 8 in
  let max_rounds = 200_000 in
  let ceil_log2 x =
    let rec go k p = if p >= x then k else go (k + 1) (p * 2) in
    go 0 1
  in
  section "E15  Theorem 14 at scale: RR-on-spanner vs push-pull"
    (Printf.sprintf
       "One-to-all broadcast on ring-of-cliques (cliques of %d, latency-%d\n\
        bridges), wheel engine: randomized push-pull vs RR Broadcast over a\n\
        Baswana-Sen orientation with k = ceil(log2 n) (Lemma 15 out-degree\n\
        bound asserted at packing).  Rounds and seconds in BENCH_e15.json."
       clique bridge);
  let t =
    Table.create ~title:"E15: push-pull vs RR-on-spanner, low-conductance family"
      ~columns:
        [
          ("n", Table.Right);
          ("pp rounds", Table.Right);
          ("pp s", Table.Right);
          ("span edges", Table.Right);
          ("max outdeg", Table.Right);
          ("build s", Table.Right);
          ("rr rounds", Table.Right);
          ("rr s", Table.Right);
          ("round ratio", Table.Right);
        ]
  in
  let rows = ref [] in
  List.iter
    (fun n_req ->
      let seed = 1013 in
      let cliques = max 3 (n_req / clique) in
      let csr = Csr.ring_of_cliques ~cliques ~size:clique ~bridge_latency:bridge in
      let n = Csr.n csr in
      let pp, pp_s =
        time (fun () ->
            Wheel.broadcast ~domains (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull
              ~source:0 ~max_rounds)
      in
      let k_sp = ceil_log2 n in
      let sp, build_s =
        time (fun () -> Spanner.build (Rng.of_int (seed + 29)) (Csr.to_graph csr) ~k:k_sp ())
      in
      let bound =
        int_of_float
          (ceil
             (8.0
             *. (float_of_int n ** (1.0 /. float_of_int k_sp))
             *. log (float_of_int n)))
      in
      let oriented = Csr.of_oriented_spanner ~out_degree_bound:bound sp.Spanner.out_edges in
      let rr, rr_s =
        time (fun () ->
            Wheel.broadcast_kernel ~domains (Rng.of_int (seed + 17)) csr
              ~kernel:(Kernel.rr_broadcast ~k:(Csr.oriented_max_latency oriented) oriented)
              ~source:0 ~max_rounds)
      in
      let fmt_rounds = function Some r -> fmt_i r | None -> "capped" in
      let json_rounds = function
        | Some r -> Gossip_util.Json.Int r
        | None -> Gossip_util.Json.Null
      in
      let ratio =
        match (pp.Wheel.rounds, rr.Wheel.rounds) with
        | Some p, Some r when r > 0 -> Some (float_of_int p /. float_of_int r)
        | _ -> None
      in
      (let module Json = Gossip_util.Json in
       rows :=
         [
           ("n", Json.Int n);
           ("cliques", Json.Int cliques);
           ("clique_size", Json.Int clique);
           ("bridge_latency", Json.Int bridge);
           ("max_rounds", Json.Int max_rounds);
           ("domains", Json.Int domains);
           ("pp_rounds", json_rounds pp.Wheel.rounds);
           ("pp_s", Json.Float pp_s);
           ("spanner_k", Json.Int k_sp);
           ("spanner_edges", Json.Int (Csr.oriented_edge_count oriented));
           ("spanner_max_out_degree", Json.Int (Csr.oriented_max_out_degree oriented));
           ("spanner_out_degree_bound", Json.Int bound);
           ("spanner_build_s", Json.Float build_s);
           ("rr_rounds", json_rounds rr.Wheel.rounds);
           ("rr_s", Json.Float rr_s);
           ( "round_ratio",
             match ratio with Some x -> Json.Float x | None -> Json.Null );
         ]
         :: !rows);
      Table.add_row t
        [
          fmt_i n;
          fmt_rounds pp.Wheel.rounds;
          fmt_f ~d:2 pp_s;
          fmt_i (Csr.oriented_edge_count oriented);
          fmt_i (Csr.oriented_max_out_degree oriented);
          fmt_f ~d:2 build_s;
          fmt_rounds rr.Wheel.rounds;
          fmt_f ~d:2 rr_s;
          (match ratio with Some x -> fmt_f ~d:2 x | None -> "-");
        ])
    sizes;
  Table.print t;
  bench_rows ~exp:"e15" (List.rev !rows);
  print_endline
    "RR-on-spanner reaches every clique deterministically; push-pull pays the\n\
     conductance price at each latency-8 bridge."

(* E16 — dynamic networks: push-pull vs RR-on-spanner vs a
   drift-immune baseline while the low-conductance cut erodes.

   The testbed is the braided ring (lib/scale Csr.braided_ring): a
   ring of cliques where adjacent cliques are joined by [bridges]
   parallel bridges, one of which — the backbone — is one tick faster
   than the rest.  A linear lib/dyn drift schedule filtered to
   [lat-ge bridge_latency] stretches every braid bridge by up to the
   cap while leaving cliques and the backbone untouched, so the
   conductance profile degrades live: ell-star / phi-star grows with
   the cap, and the per-epoch [dyn.epoch.<k>.*] gauges from
   Scenario.observer record the climb inside the run itself.

   Three contenders per drift cap:
   - randomized push-pull, which pays the eroding cut in full;
   - RR Broadcast over a Baswana-Sen orientation, whose spanner may
     lean on braid bridges and so also feels the drift;
   - the conductance-independent baseline: the k-DTG local-broadcast
     kernel with ell = bridge_latency - 1, which only ever uses
     edges the filter exempts (cliques + backbone) and is therefore
     immune by construction — asserted to stay within 1.25x of its
     own static round count.

   Defaults are sized for a single-core container; E16_N picks other
   node counts (comma-separated; E16_N=100000 is the full-scale run
   for a beefy host).  Rounds, seconds, and the per-epoch gauge
   series land in BENCH_e16.json. *)
let e16 () =
  let module Kernel = Gossip_scale.Kernel in
  let module Spanner = Gossip_core.Spanner in
  let module Scenario = Gossip_dyn.Scenario in
  let module Registry = Gossip_obs.Registry in
  let module Json = Gossip_util.Json in
  let sizes =
    match Sys.getenv_opt "E16_N" with
    | Some s -> String.split_on_char ',' s |> List.map String.trim |> List.map int_of_string
    | None -> [ 12_000 ]
  in
  let clique = 16 and bridges = 4 and bridge = 8 in
  let caps = [ 1; 2; 4; 8 ] in
  let max_rounds = 1_000_000 in
  let ceil_log2 x =
    let rec go k p = if p >= x then k else go (k + 1) (p * 2) in
    go 0 1
  in
  section "E16  dynamic networks: broadcast under live latency drift"
    (Printf.sprintf
       "One-to-all broadcast on a braided ring (cliques of %d, %d bridges per\n\
        seam, backbone latency %d) while a linear drift schedule stretches\n\
        every latency->=%d braid bridge up to cap x: push-pull vs RR-on-spanner\n\
        vs the drift-immune DTG backbone walker (ell = %d).  Per-epoch\n\
        ell-star / phi-ell gauges and all rounds in BENCH_e16.json."
       clique bridges (bridge - 1) bridge (bridge - 1));
  let t =
    Table.create ~title:"E16: broadcast rounds as the braid cut erodes"
      ~columns:
        [
          ("n", Table.Right);
          ("cap", Table.Right);
          ("pp rounds", Table.Right);
          ("pp s", Table.Right);
          ("rr rounds", Table.Right);
          ("rr s", Table.Right);
          ("base rounds", Table.Right);
          ("base s", Table.Right);
          ("bound @0", Table.Right);
          ("bound @last", Table.Right);
        ]
  in
  let rows = ref [] in
  List.iter
    (fun n_req ->
      let seed = 1013 in
      let cliques = max 3 (n_req / clique) in
      let csr = Csr.braided_ring ~cliques ~size:clique ~bridges ~bridge_latency:bridge in
      let n = Csr.n csr in
      let k_sp = ceil_log2 n in
      let sp, _ = time (fun () -> Spanner.build (Rng.of_int (seed + 29)) (Csr.to_graph csr) ~k:k_sp ()) in
      let out_bound =
        int_of_float
          (ceil (8.0 *. (float_of_int n ** (1.0 /. float_of_int k_sp)) *. log (float_of_int n)))
      in
      let oriented = Csr.of_oriented_spanner ~out_degree_bound:out_bound sp.Spanner.out_edges in
      (* Both kernels carry round-robin cursors, so build a fresh one
         per run or the second cap inherits the first's state. *)
      let rr_kernel () = Kernel.rr_broadcast ~k:(Csr.oriented_max_latency oriented) oriented in
      let base_kernel () = Kernel.dtg_local ~ell:(bridge - 1) csr in
      let pp_static = ref 0 and base_static = ref 0 in
      List.iter
        (fun cap ->
          (* cap 1 is the static control: no env at all, so the run is
             bit-identical to the pre-lib/dyn engine. *)
          let compiled =
            if cap <= 1 then None
            else
              let scen =
                {
                  Scenario.static with
                  Scenario.name = Printf.sprintf "braid-drift-x%d" cap;
                  seed;
                  rules =
                    [
                      {
                        Scenario.schedule = Scenario.Linear { rate = 0.25; cap = float_of_int cap };
                        filter = Scenario.Lat_ge bridge;
                      };
                    ];
                  epoch = 1024;
                  track_phi = true;
                }
              in
              Some (Scenario.compile scen ~csr ~source:0)
          in
          let env = Option.map (fun c -> c.Scenario.env) compiled in
          let wheel_latency = Option.map (fun c -> c.Scenario.wheel_latency) compiled in
          let reg = Registry.create () in
          let on_round =
            Option.map (fun c -> Scenario.observer c ~csr ~telemetry:reg) compiled
          in
          let pp, pp_s =
            time (fun () ->
                Wheel.broadcast ?env ?wheel_latency ?on_round (Rng.of_int (seed + 17)) csr
                  ~protocol:Wheel.Push_pull ~source:0 ~max_rounds)
          in
          let rr, rr_s =
            time (fun () ->
                Wheel.broadcast_kernel ?env ?wheel_latency (Rng.of_int (seed + 17)) csr
                  ~kernel:(rr_kernel ()) ~source:0 ~max_rounds)
          in
          let base, base_s =
            time (fun () ->
                Wheel.broadcast_kernel ?env ?wheel_latency (Rng.of_int (seed + 17)) csr
                  ~kernel:(base_kernel ()) ~source:0 ~max_rounds)
          in
          let pp_r = rounds_exn pp.Wheel.rounds in
          let rr_r = rounds_exn rr.Wheel.rounds in
          let base_r = rounds_exn base.Wheel.rounds in
          (* Per-epoch gauge series: dyn.epoch.<k>.{ell_star,phi_ell_ppm,bound}. *)
          let epochs =
            let tbl = Hashtbl.create 8 in
            List.iter
              (fun (name, v) ->
                match String.split_on_char '.' name with
                | [ "dyn"; "epoch"; k; field ] ->
                    let k = int_of_string k in
                    let prev = try Hashtbl.find tbl k with Not_found -> [] in
                    Hashtbl.replace tbl k ((field, Json.Int v) :: prev)
                | _ -> ())
              (Registry.gauges reg);
            Hashtbl.fold (fun k fields acc -> (k, fields) :: acc) tbl []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          let bound_of k =
            match List.assoc_opt k epochs with
            | Some fields -> (
                match List.assoc_opt "bound" fields with Some (Json.Int b) -> Some b | _ -> None)
            | None -> None
          in
          let bound0 = bound_of 0 in
          let bound_last =
            match epochs with [] -> None | l -> bound_of (fst (List.nth l (List.length l - 1)))
          in
          if cap <= 1 then (
            pp_static := pp_r;
            base_static := base_r)
          else (
            (* Drift only ever slows push-pull: the eroding cut costs rounds. *)
            if pp_r < !pp_static then
              failwith
                (Printf.sprintf "e16: push-pull sped up under drift x%d (%d < static %d)" cap pp_r
                   !pp_static);
            (* The backbone walker never touches a drifted edge. *)
            if float_of_int base_r > 1.25 *. float_of_int !base_static then
              failwith
                (Printf.sprintf "e16: baseline not drift-immune at cap %d (%d vs static %d)" cap
                   base_r !base_static);
            match bound0 with
            | None -> failwith "e16: drifted run produced no dyn.epoch.0.bound gauge"
            | Some _ -> ());
          rows :=
            [
              ("n", Json.Int n);
              ("cliques", Json.Int cliques);
              ("clique_size", Json.Int clique);
              ("bridges", Json.Int bridges);
              ("bridge_latency", Json.Int bridge);
              ("drift_cap", Json.Int cap);
              ("pp_rounds", Json.Int pp_r);
              ("pp_s", Json.Float pp_s);
              ("rr_rounds", Json.Int rr_r);
              ("rr_s", Json.Float rr_s);
              ("baseline_rounds", Json.Int base_r);
              ("baseline_s", Json.Float base_s);
              ( "epochs",
                Json.List
                  (List.map
                     (fun (k, fields) -> Json.Obj (("epoch", Json.Int k) :: List.rev fields))
                     epochs) );
            ]
            :: !rows;
          let fmt_bound = function Some b -> fmt_i b | None -> "-" in
          Table.add_row t
            [
              fmt_i n;
              string_of_int cap ^ "x";
              fmt_i pp_r;
              fmt_f ~d:2 pp_s;
              fmt_i rr_r;
              fmt_f ~d:2 rr_s;
              fmt_i base_r;
              fmt_f ~d:2 base_s;
              fmt_bound bound0;
              fmt_bound bound_last;
            ])
        caps;
      let last_pp =
        match !rows with
        | row :: _ -> (match List.assoc "pp_rounds" row with Json.Int r -> r | _ -> 0)
        | [] -> 0
      in
      if last_pp <= !pp_static then
        failwith
          (Printf.sprintf "e16: push-pull did not slow down at the largest cap (%d vs static %d)"
             last_pp !pp_static))
    sizes;
  Table.print t;
  bench_rows ~exp:"e16" (List.rev !rows);
  print_endline
    "The drifting braid cut taxes push-pull round by round while the DTG\n\
     backbone walker, blind to conductance, never notices."

(* E17 — Theorem 20 closed at scale: the unified unknown-latency
   algorithm (push-pull raced against the discovery -> T(k) schedule ->
   spanner-RR -> termination-check chain) head-to-head with its own
   push-pull branch on a 10^6-node small-world graph, starting from
   zero latency knowledge.

   Configurations: a static control, a deterministic mild drop plan, a
   bounded jitter plan, and a lib/dyn linear latency-drift scenario —
   the same fault surface the parity qchecks sweep, at full scale.
   Every run must complete source-to-all and land within the Theorem
   20 budget O(min((D + Delta) log^3 n, (l_star/phi_star) log n)); we assert
   against the (D + Delta) log^3 n arm (D bounded by twice the source
   eccentricity — min(a, b) <= a, so the assertion is sound without a
   10^12-op conductance sweep).  A violation is a hard failure with a
   non-zero exit, which is what the CI smoke step leans on.

   The default is sized for a single-core container (~5 min);
   E17_N=1000000 is the full-scale run for a beefy host (the budget
   assertion holds at every size), E17_DOMAINS shards the wheel.
   Rows in BENCH_e17.json. *)
let e17 () =
  let module Kernel = Gossip_scale.Kernel in
  let module Dissemination = Gossip_core.Dissemination in
  let module Eid = Gossip_core.Eid in
  let module Robustness = Gossip_core.Robustness in
  let module Scenario = Gossip_dyn.Scenario in
  let module Gen = Gossip_graph.Gen in
  let module Paths = Gossip_graph.Paths in
  let module Engine = Gossip_sim.Engine in
  let module Json = Gossip_util.Json in
  ignore Kernel.known_protocols;
  let n_req =
    match Sys.getenv_opt "E17_N" with Some s -> int_of_string s | None -> 50_000
  in
  let domains =
    match Sys.getenv_opt "E17_DOMAINS" with Some s -> int_of_string s | None -> 1
  in
  let seed = 1013 in
  let deg = 8 and lmax = 4 in
  let max_rounds = 1_000_000 in
  let ceil_log2 x =
    let rec go k p = if p >= x then k else go (k + 1) (p * 2) in
    go 0 1
  in
  section "E17  Theorem 20 at scale: unified unknown-latency vs push-pull"
    (Printf.sprintf
       "One-to-all dissemination on a Watts-Strogatz graph (degree %d, uniform\n\
        1-%d latencies) with ZERO a-priori latency knowledge: push-pull raced\n\
        against discovery -> T(k) -> spanner RR -> termination check, under\n\
        static / drop / jitter / lib-dyn-drift conditions.  Rounds asserted\n\
        against the (D + Delta) log^3 n arm of the Theorem 20 budget; rows in\n\
        BENCH_e17.json."
       deg lmax);
  let grng = Rng.of_int seed in
  let g =
    Gen.with_latencies grng (Gen.Uniform (1, lmax)) (Gen.watts_strogatz grng ~n:n_req ~k:deg ~beta:0.1)
  in
  let csr = Csr.of_graph g in
  let n = Csr.n csr in
  let source = 0 in
  (* Budget: D <= 2 * ecc(source) (one Dijkstra, not all-pairs). *)
  let ecc = Paths.eccentricity g source in
  let delta = Graph.max_degree g in
  let lg = ceil_log2 (max 2 n) in
  let budget = 8 * ((2 * ecc) + delta) * lg * lg * lg in
  Printf.printf "n = %d, ecc(source) = %d, Delta = %d, budget = %d rounds\n\n" n ecc delta budget;
  let drift_compiled =
    let scen =
      {
        Scenario.static with
        Scenario.name = "e17-drift";
        seed;
        rules =
          [ { Scenario.schedule = Scenario.Linear { rate = 0.1; cap = 2.0 }; filter = Scenario.All } ];
      }
    in
    Scenario.compile scen ~csr ~source
  in
  let configs =
    [
      ("static", None, None, 0, None);
      ( "drop",
        Some
          {
            Wheel.no_faults with
            Engine.drop =
              (fun ~initiator ~responder ~round -> (initiator + (3 * responder) + round) mod 13 = 0);
          },
        None, 0, None );
      ("jitter", Some (Robustness.jitter_up_to (Rng.of_int (seed + 5)) ~extra:2), None, 2, None);
      ("drift", None, Some drift_compiled.Scenario.env, 0, Some drift_compiled.Scenario.wheel_latency);
    ]
  in
  let t =
    Table.create ~title:"E17: Theorem 20 unified race, unknown latencies"
      ~columns:
        [
          ("config", Table.Left);
          ("winner", Table.Left);
          ("rounds", Table.Right);
          ("pp rounds", Table.Right);
          ("eid rounds", Table.Right);
          ("attempts", Table.Right);
          ("k_final", Table.Right);
          ("s", Table.Right);
        ]
  in
  let rows = ref [] in
  List.iter
    (fun (label, faults, env, max_jitter, wheel_latency) ->
      let r, secs =
        time (fun () ->
            Dissemination.broadcast_scale ?faults ?env ?wheel_latency ~max_jitter ~domains
              (Rng.of_int (seed + 17))
              csr ~source ~max_rounds ())
      in
      if not r.Dissemination.b_success then
        failwith (Printf.sprintf "e17 %s: unified dissemination did not complete" label);
      let informed =
        let c = ref 0 in
        Bytes.iter (fun ch -> if ch <> '\000' then incr c) r.Dissemination.b_informed;
        !c
      in
      if informed <> n then
        failwith (Printf.sprintf "e17 %s: %d of %d nodes informed" label informed n);
      if r.Dissemination.b_rounds > budget then
        failwith
          (Printf.sprintf "e17 %s: %d rounds exceed the Theorem 20 budget %d" label
             r.Dissemination.b_rounds budget);
      let attempts = r.Dissemination.b_attempts in
      let k_final =
        match List.rev attempts with a :: _ -> a.Eid.ua_k | [] -> 0
      in
      let winner =
        match r.Dissemination.b_winner with
        | Dissemination.Scale_push_pull_won -> "push-pull"
        | Dissemination.Scale_spanner_route_won -> "eid-chain"
      in
      rows :=
        [
          ("config", Json.String label);
          ("n", Json.Int n);
          ("deg", Json.Int deg);
          ("lmax", Json.Int lmax);
          ("domains", Json.Int domains);
          ("budget", Json.Int budget);
          ("winner", Json.String winner);
          ("rounds", Json.Int r.Dissemination.b_rounds);
          ( "pp_rounds",
            match r.Dissemination.b_pushpull_rounds with Some x -> Json.Int x | None -> Json.Null );
          ("eid_rounds", Json.Int r.Dissemination.b_spanner_rounds);
          ("k_final", Json.Int k_final);
          ("seconds", Json.Float secs);
          ( "attempts",
            Json.List
              (List.map
                 (fun a ->
                   Json.Obj
                     [
                       ("k", Json.Int a.Eid.ua_k);
                       ("discovery_rounds", Json.Int a.Eid.ua_discovery_rounds);
                       ("schedule_rounds", Json.Int a.Eid.ua_schedule_rounds);
                       ("rr_rounds", Json.Int a.Eid.ua_rr_rounds);
                       ("check_rounds", Json.Int a.Eid.ua_check_rounds);
                       ("edges_known", Json.Int a.Eid.ua_edges_known);
                       ("failed", Json.Bool a.Eid.ua_failed);
                       ("unanimous", Json.Bool a.Eid.ua_unanimous);
                     ])
                 attempts) );
        ]
        :: !rows;
      Table.add_row t
        [
          label;
          winner;
          fmt_i r.Dissemination.b_rounds;
          (match r.Dissemination.b_pushpull_rounds with Some x -> fmt_i x | None -> "capped");
          fmt_i r.Dissemination.b_spanner_rounds;
          fmt_i (List.length attempts);
          fmt_i k_final;
          fmt_f ~d:1 secs;
        ])
    configs;
  Table.print t;
  bench_rows ~exp:"e17" (List.rev !rows);
  Printf.printf
    "Every configuration finished source-to-all from zero latency knowledge\n\
     within the Theorem 20 budget (%d rounds).\n"
    budget

(* E18 — the scale ceiling: the compact int32/SoA memory layout at
   n = 10^7.

   The runtime hot state (CSR arrays, the exchange pool's SoA columns,
   the per-node RNG streams) moved from boxed machine words to int32
   Bigarray cells / 8-byte RNG states; this experiment records the
   honest numbers at ten million nodes and hard-fails (non-zero exit,
   which the CI smoke step leans on) if any of the PR's claims
   regress:

   - resident bytes-per-directed-edge of the hot state, measured for
     the int32 layout and computed for the boxed layout it replaced
     (Csr.boxed_memory_words keeps the removed layout's arithmetic;
     the pool and RNG baselines are 8 machine words per exchange field
     row and 5 words per stream, the removed representations) — the
     reduction must be >= 2x;
   - the wheel.minor_words_per_round gauge must sit within
     Wheel.minor_words_budget: the round loop is allocation-free;
   - a domains=2 run must be bit-identical to the sequential run
     (trajectory, metrics, informed set) — the parity matrix at the
     bench's scale;
   - peak RSS (VmHWM) and rounds/sec are recorded in BENCH_e18.json;
     at n <= E18_REF_MAX (default 200k) the boxed reference engine
     (lib/sim) runs the same broadcast for an honest rounds/sec
     baseline — above that it is skipped, and the skip is printed, not
     silent.

   E18_N sizes the run (default 10^7; CI uses a small value). *)
let e18 () =
  let module Json = Gossip_util.Json in
  let module Registry = Gossip_obs.Registry in
  let n =
    match Sys.getenv_opt "E18_N" with Some s -> int_of_string s | None -> 10_000_000
  in
  let ref_max =
    match Sys.getenv_opt "E18_REF_MAX" with Some s -> int_of_string s | None -> 200_000
  in
  let seed = 1009 in
  section "E18  the scale ceiling: int32/SoA layout at n = 10^7"
    (Printf.sprintf
       "Full push-pull broadcast on a Barabasi-Albert graph (attach 3, uniform\n\
        1-8 latencies) at n = %d: resident bytes-per-edge of the int32 hot\n\
        state vs the boxed layout it replaced (>= 2x reduction asserted), the\n\
        allocation-free round loop (minor-words gauge <= %d asserted), and\n\
        sequential-vs-sharded parity.  Peak RSS and rounds/sec in\n\
        BENCH_e18.json." n Wheel.minor_words_budget);
  let peak_rss_kb () =
    (* VmHWM from /proc/self/status: the high-water resident set. *)
    try
      let ic = open_in "/proc/self/status" in
      let rec go () =
        match input_line ic with
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
            close_in ic;
            int_of_string
              (String.trim (String.sub line 6 (String.length line - 6 - 3)))
        | _ -> go ()
        | exception End_of_file ->
            close_in ic;
            0
      in
      go ()
    with Sys_error _ -> 0
  in
  let csr, build_s =
    time (fun () ->
        Csr.with_latencies (Rng.of_int (seed + 7)) (Gossip_graph.Gen.Uniform (1, 8))
          (Csr.barabasi_albert (Rng.of_int seed) ~n ~attach:3))
  in
  let directed = 2 * Csr.m csr in
  Printf.printf "graph built: %d nodes, %d directed edge entries, %.1f s\n" n directed build_s;
  (* Sequential run with telemetry: the timed run and the gauge run. *)
  let reg = Registry.create () in
  let seq, seq_s =
    time (fun () ->
        Wheel.broadcast ~telemetry:reg (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull
          ~source:0 ~max_rounds:10_000)
  in
  let rounds = rounds_exn seq.Wheel.rounds in
  let gauge = Registry.gauge_value (Registry.gauge reg "wheel.minor_words_per_round") in
  let inflight_max = Registry.gauge_value (Registry.gauge reg "wheel.inflight.max") in
  if gauge > Wheel.minor_words_budget then
    failwith
      (Printf.sprintf "E18: minor-words gauge %d over the budget %d — the round loop allocates"
         gauge Wheel.minor_words_budget);
  (* Parity: a domains=2 run must be bit-identical. *)
  let shard, shard_s =
    time (fun () ->
        Wheel.broadcast ~domains:2 (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull
          ~source:0 ~max_rounds:10_000)
  in
  if
    not
      (seq.Wheel.rounds = shard.Wheel.rounds
      && seq.Wheel.history = shard.Wheel.history
      && seq.Wheel.metrics = shard.Wheel.metrics
      && Bytes.equal seq.Wheel.informed shard.Wheel.informed)
  then failwith "E18: sharded run diverged from the sequential wheel";
  (* Resident bytes per directed edge entry: CSR + exchange pool +
     RNG streams, int32/SoA layout vs the boxed layout it replaced.
     The pool is sized by the peak in-flight population (the same
     population either layout would hold); the boxed columns were 8
     machine words per exchange vs 8 int32 cells, and a boxed RNG
     stream was a record holding a boxed int64 (~5 words) vs one
     8-byte Bytes payload (2 words). *)
  let word = 8 in
  let csr_bytes = word * Csr.memory_words csr in
  let csr_boxed_bytes = word * Csr.boxed_memory_words csr in
  let pool_bytes = inflight_max * 8 * 4 in
  let pool_boxed_bytes = inflight_max * 8 * word in
  let rng_bytes = n * 2 * word in
  let rng_boxed_bytes = n * 5 * word in
  let hot = csr_bytes + pool_bytes + rng_bytes in
  let hot_boxed = csr_boxed_bytes + pool_boxed_bytes + rng_boxed_bytes in
  let bpe = float_of_int hot /. float_of_int directed in
  let bpe_boxed = float_of_int hot_boxed /. float_of_int directed in
  let reduction = bpe_boxed /. bpe in
  if reduction < 2.0 then
    failwith
      (Printf.sprintf "E18: bytes-per-edge reduction %.2fx below the 2x floor (%.1f vs %.1f)"
         reduction bpe_boxed bpe);
  (* Boxed reference engine baseline, when affordable. *)
  let ref_row =
    if n <= ref_max then begin
      let g = Csr.to_graph csr in
      let er, ref_s =
        time (fun () ->
            Push_pull.broadcast (Rng.of_int (seed + 17)) g ~source:0 ~max_rounds:10_000)
      in
      if Some (rounds_exn er.Push_pull.rounds) <> seq.Wheel.rounds then
        failwith "E18: wheel diverged from the boxed reference engine";
      [ ("ref_engine_s", Json.Float ref_s);
        ("ref_engine_rps", Json.Float (float_of_int rounds /. ref_s)) ]
    end
    else begin
      Printf.printf
        "boxed reference engine skipped at n = %d (> E18_REF_MAX = %d): the boxed graph\n\
         alone would not be a fair same-machine baseline at this size\n"
        n ref_max;
      []
    end
  in
  let rss = peak_rss_kb () in
  let t =
    Table.create ~title:"E18: hot-state footprint, int32/SoA vs boxed"
      ~columns:
        [ ("component", Table.Left); ("int32 MB", Table.Right); ("boxed MB", Table.Right) ]
  in
  let mb b = fmt_f ~d:1 (float_of_int b /. 1048576.0) in
  Table.add_row t [ "csr"; mb csr_bytes; mb csr_boxed_bytes ];
  Table.add_row t [ "exchange pool (peak)"; mb pool_bytes; mb pool_boxed_bytes ];
  Table.add_row t [ "rng streams"; mb rng_bytes; mb rng_boxed_bytes ];
  Table.add_row t [ "total"; mb hot; mb hot_boxed ];
  Table.print t;
  Printf.printf
    "bytes/edge: %.1f int32 vs %.1f boxed (%.2fx reduction, floor 2x)\n\
     rounds: %d  seq: %.1f s (%.0f r/s)  sharded(2): %.1f s  parity: ok\n\
     minor words/round: %d (budget %d)  peak RSS: %d kB\n"
    bpe bpe_boxed reduction rounds seq_s
    (float_of_int rounds /. seq_s)
    shard_s gauge Wheel.minor_words_budget rss;
  bench_rows ~exp:"e18"
    [
      [
        ("n", Json.Int n);
        ("directed_edges", Json.Int directed);
        ("build_s", Json.Float build_s);
        ("rounds", Json.Int rounds);
        ("seq_s", Json.Float seq_s);
        ("seq_rps", Json.Float (float_of_int rounds /. seq_s));
        ("shard_s", Json.Float shard_s);
        ("parity", Json.Bool true);
        ("inflight_max", Json.Int inflight_max);
        ("csr_bytes", Json.Int csr_bytes);
        ("csr_boxed_bytes", Json.Int csr_boxed_bytes);
        ("pool_bytes", Json.Int pool_bytes);
        ("pool_boxed_bytes", Json.Int pool_boxed_bytes);
        ("rng_bytes", Json.Int rng_bytes);
        ("rng_boxed_bytes", Json.Int rng_boxed_bytes);
        ("bytes_per_edge", Json.Float bpe);
        ("bytes_per_edge_boxed", Json.Float bpe_boxed);
        ("reduction", Json.Float reduction);
        ("minor_words_per_round", Json.Int gauge);
        ("minor_words_budget", Json.Int Wheel.minor_words_budget);
        ("peak_rss_kb", Json.Int rss);
      ]
      @ ref_row;
    ];
  print_endline
    "The int32/SoA layout holds the 10^7-node hot state in half the bytes,\n\
     with an allocation-free round loop and bit-identical trajectories."

(* E19 — the rumor-state layer: k-rumor / all-to-all dissemination
   under bounded message budgets.

   Two sweeps over the three rumor kernels (k-rumor push-pull, rumor
   rotation, algebraic gossip), on a low-conductance ring-of-cliques
   and a small-world Watts-Strogatz graph:

   - completion rounds vs k at the tightest budget (B = 1 word), and
   - completion rounds vs B at fixed k (subset kernels only — the
     algebraic kernel's budget is pinned at the ceil(k/30) coefficient
     words a combination needs).

   Hard assertion: on the ring of cliques at the largest k and B = 1,
   algebraic gossip completes in strictly fewer mean rounds than rumor
   rotation — coded exchanges beat scheduling single rumor ids through
   a bottleneck, the order advantage of Avin et al.'s analysis. *)

let e19 () =
  let module Json = Gossip_util.Json in
  let module Registry = Gossip_obs.Registry in
  let n = match Sys.getenv_opt "E19_N" with Some s -> int_of_string s | None -> 1_504 in
  let kmax = match Sys.getenv_opt "E19_K" with Some s -> int_of_string s | None -> 16 in
  let seeds = [ 1; 2; 3 ] in
  let max_rounds = 50_000 in
  section "E19  k-rumor / all-to-all: completion scaling in k and B"
    (Printf.sprintf
       "All-to-all dissemination of k rumors under a B-word message budget:\n\
        k-rumor push-pull vs rumor rotation vs algebraic gossip, on a\n\
        ring-of-cliques (clique size 8, bridge latency 8) and a Watts-Strogatz\n\
        small world (k = 6, beta = 0.1, 1-4 latencies) at n ~ %d.  Mean\n\
        completion rounds over %d seeds; runs hitting the %d-round cap score\n\
        as the cap.  Hard floor: algebraic < rotation on the ring of cliques\n\
        at k = %d, B = 1.  Rows in BENCH_e19.json." n (List.length seeds) max_rounds kmax);
  let cliques = max 2 (n / 8) in
  let roc = Csr.ring_of_cliques ~cliques ~size:8 ~bridge_latency:8 in
  let ws =
    Csr.with_latencies
      (Rng.of_int 4099)
      (Gossip_graph.Gen.Uniform (1, 4))
      (Csr.watts_strogatz (Rng.of_int 4093) ~n ~k:6 ~beta:0.1)
  in
  let graphs = [ ("ring-of-cliques", roc); ("watts-strogatz", ws) ] in
  (* One run: mean completion rounds (cap-scored) and mean payload
     words on the wire across the seeds. *)
  let measure csr protocol =
    let words_key =
      Printf.sprintf "wheel.kernel.%s.words_on_wire"
        (match protocol with
        | Wheel.K_rumor _ -> "k-rumor"
        | Wheel.Rumor_rotation _ -> "rotation"
        | _ -> "algebraic")
    in
    let rounds_sum = ref 0 and words_sum = ref 0 and capped = ref 0 in
    List.iter
      (fun seed ->
        let reg = Registry.create () in
        let r =
          Wheel.broadcast ~telemetry:reg (Rng.of_int seed) csr ~protocol ~source:0 ~max_rounds
        in
        (match r.Wheel.rounds with
        | Some rounds -> rounds_sum := !rounds_sum + rounds
        | None ->
            incr capped;
            rounds_sum := !rounds_sum + max_rounds);
        words_sum := !words_sum + Registry.counter_value (Registry.counter reg words_key))
      seeds;
    let trials = List.length seeds in
    ( float_of_int !rounds_sum /. float_of_int trials,
      float_of_int !words_sum /. float_of_int trials,
      !capped )
  in
  let rows = ref [] in
  let record ~graph ~sweep ~proto ~k ~b (mean_rounds, mean_words, capped) =
    rows :=
      [
        ("graph", Json.String graph);
        ("sweep", Json.String sweep);
        ("protocol", Json.String proto);
        ("k", Json.Int k);
        ("budget", Json.Int b);
        ("mean_rounds", Json.Float mean_rounds);
        ("mean_words_on_wire", Json.Float mean_words);
        ("capped_runs", Json.Int capped);
        ("trials", Json.Int (List.length seeds));
        ("max_rounds", Json.Int max_rounds);
      ]
      :: !rows
  in
  let fmt_mean (mean_rounds, _, capped) =
    if capped > 0 then Printf.sprintf "%.0f*" mean_rounds else fmt_f ~d:0 mean_rounds
  in
  (* Sweep 1: k at the tightest budget, B = 1 word. *)
  let ks = List.sort_uniq compare [ max 2 (kmax / 4); max 2 (kmax / 2); kmax ] in
  let t1 =
    Table.create ~title:"E19a: mean completion rounds vs k (B = 1 word; * = hit cap)"
      ~columns:
        [
          ("graph", Table.Left);
          ("k", Table.Right);
          ("k-rumor", Table.Right);
          ("rotation", Table.Right);
          ("algebraic", Table.Right);
        ]
  in
  let roc_kmax = ref (nan, nan) in
  List.iter
    (fun (gname, csr) ->
      List.iter
        (fun k ->
          let kr = measure csr (Wheel.K_rumor { k; budget = 1 }) in
          let rot = measure csr (Wheel.Rumor_rotation { k; budget = 1 }) in
          let alg = measure csr (Wheel.Algebraic { k; budget = 0 }) in
          record ~graph:gname ~sweep:"k" ~proto:"k-rumor" ~k ~b:1 kr;
          record ~graph:gname ~sweep:"k" ~proto:"rotation" ~k ~b:1 rot;
          record ~graph:gname ~sweep:"k" ~proto:"algebraic" ~k ~b:0 alg;
          if gname = "ring-of-cliques" && k = kmax then begin
            let (am, _, _) = alg and (rm, _, _) = rot in
            roc_kmax := (am, rm)
          end;
          Table.add_row t1
            [ gname; string_of_int k; fmt_mean kr; fmt_mean rot; fmt_mean alg ])
        ks)
    graphs;
  Table.print t1;
  (* Sweep 2: budget at fixed k, subset kernels, ring of cliques. *)
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf "E19b: mean completion rounds vs budget (k = %d, ring of cliques)" kmax)
      ~columns:
        [ ("B words", Table.Right); ("k-rumor", Table.Right); ("rotation", Table.Right) ]
  in
  List.iter
    (fun b ->
      let kr = measure roc (Wheel.K_rumor { k = kmax; budget = b }) in
      let rot = measure roc (Wheel.Rumor_rotation { k = kmax; budget = b }) in
      record ~graph:"ring-of-cliques" ~sweep:"budget" ~proto:"k-rumor" ~k:kmax ~b kr;
      record ~graph:"ring-of-cliques" ~sweep:"budget" ~proto:"rotation" ~k:kmax ~b rot;
      Table.add_row t2 [ string_of_int b; fmt_mean kr; fmt_mean rot ])
    [ 1; 2; 4; 8 ];
  Table.print t2;
  let alg_mean, rot_mean = !roc_kmax in
  if not (alg_mean < rot_mean) then
    failwith
      (Printf.sprintf
         "E19: algebraic gossip (%.0f mean rounds) did not beat rumor rotation (%.0f) on the\n\
          ring of cliques at k = %d, B = 1 — the coded-exchange order advantage is gone"
         alg_mean rot_mean kmax);
  bench_rows ~exp:"e19" (List.rev !rows);
  Printf.printf
    "Under a 1-word budget on the low-conductance ring, coded exchanges finish in\n\
     %.0f mean rounds where rumor rotation needs %.0f (%.1fx): when every message\n\
     can carry only one rumor's worth of bits, mixing beats scheduling.\n"
    alg_mean rot_mean (rot_mean /. alg_mean)
