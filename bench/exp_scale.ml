(* E12 — the flat-array scale runtime (lib/scale) vs the reference
   engine (lib/sim).

   Part 1: rounds/sec of a full push-pull broadcast on the same graph
   with the same seed.  The two runtimes are trajectory-identical
   (test_scale locks this with a 120-case qcheck property), so the
   comparison is rounds-for-rounds fair and we assert the round counts
   agree here too.

   Part 2: Theorem 12 sanity on large ring-of-cliques graphs that only
   the wheel engine can sweep comfortably: measured completion rounds
   stay within a small constant of (ell_star / phi_star) ln n. *)

open Common
module Rng = Gossip_util.Rng
module Graph = Gossip_graph.Graph
module Weighted = Gossip_conductance.Weighted
module Push_pull = Gossip_core.Push_pull
module Csr = Gossip_scale.Csr
module Wheel = Gossip_scale.Wheel_engine

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let e12 () =
  section "E12  scale runtime: timing wheel vs reference engine"
    "Full push-pull broadcast on Barabasi-Albert graphs (attach 3, uniform\n\
     1-8 latencies), identical seeds: the wheel engine must reproduce the\n\
     reference round count and deliver >= 5x the rounds/sec at n = 10^5.";
  let t =
    Table.create ~title:"E12a: rounds/sec, reference engine vs timing wheel"
      ~columns:
        [
          ("n", Table.Right);
          ("edges", Table.Right);
          ("rounds", Table.Right);
          ("engine s", Table.Right);
          ("wheel s", Table.Right);
          ("engine r/s", Table.Right);
          ("wheel r/s", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let speedup_at = ref [] in
  List.iter
    (fun n ->
      let seed = 1009 in
      let csr =
        Csr.with_latencies (Rng.of_int (seed + 7)) (Gossip_graph.Gen.Uniform (1, 8))
          (Csr.barabasi_albert (Rng.of_int seed) ~n ~attach:3)
      in
      let g = Csr.to_graph csr in
      let run_engine () =
        Push_pull.broadcast (Rng.of_int (seed + 17)) g ~source:0 ~max_rounds:10_000
      in
      let run_wheel () =
        Wheel.broadcast (Rng.of_int (seed + 17)) csr ~protocol:Wheel.Push_pull ~source:0
          ~max_rounds:10_000
      in
      let er, engine_s = time run_engine in
      let wr, wheel_s = time run_wheel in
      let rounds = rounds_exn er.Push_pull.rounds in
      if Some rounds <> wr.Wheel.rounds then
        failwith "E12: wheel engine diverged from the reference engine";
      let per t = float_of_int rounds /. t in
      let speedup = engine_s /. wheel_s in
      speedup_at := (n, speedup) :: !speedup_at;
      Table.add_row t
        [
          fmt_i n;
          fmt_i (Csr.m csr);
          fmt_i rounds;
          fmt_f ~d:3 engine_s;
          fmt_f ~d:3 wheel_s;
          fmt_f ~d:0 (per engine_s);
          fmt_f ~d:0 (per wheel_s);
          fmt_f ~d:1 speedup;
        ])
    [ 10_000; 100_000 ];
  Table.print t;
  (match List.assoc_opt 100_000 !speedup_at with
  | Some s -> Printf.printf "speedup at n = 100000: %.1fx (target >= 5x: %b)\n" s (s >= 5.0)
  | None -> ());
  let t2 =
    Table.create
      ~title:"E12b: Theorem 12 on wheel-engine-scale ring-of-cliques"
      ~columns:
        [
          ("n", Table.Right);
          ("ell*", Table.Right);
          ("phi*", Table.Right);
          ("bound", Table.Right);
          ("measured", Table.Right);
          ("ratio", Table.Right);
        ]
  in
  List.iter
    (fun cliques ->
      let csr = Csr.ring_of_cliques ~cliques ~size:8 ~bridge_latency:6 in
      let g = Csr.to_graph csr in
      let wc = Weighted.weighted_conductance ~backend:Weighted.Sweep g in
      let bound =
        float_of_int wc.Weighted.ell_star /. wc.Weighted.phi_star
        *. log (float_of_int (Csr.n csr))
      in
      let measured =
        mean_of ~trials:3 ~base_seed:31 (fun seed ->
            let r =
              Wheel.broadcast (Rng.of_int seed) csr ~protocol:Wheel.Push_pull ~source:0
                ~max_rounds:5_000_000
            in
            float_of_int (rounds_exn r.Wheel.rounds))
      in
      Table.add_row t2
        [
          fmt_i (Csr.n csr);
          fmt_i wc.Weighted.ell_star;
          fmt_f ~d:4 wc.Weighted.phi_star;
          fmt_f bound;
          fmt_f measured;
          fmt_f ~d:2 (measured /. bound);
        ])
    [ 60; 240; 960 ];
  Table.print t2
